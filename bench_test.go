package bless

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§6). Each benchmark executes the corresponding
// experiment from internal/harness in reduced-scale (Quick) mode per
// iteration; run `go run ./cmd/blessbench -exp <id>` for the full-scale
// tables with the paper-reference notes.
//
// The simulations are deterministic, so op times measure the harness's
// wall-clock cost; the reproduced metrics themselves are printed by
// blessbench and recorded in EXPERIMENTS.md.

import (
	"testing"

	"bless/internal/chaos"
	"bless/internal/core"
	"bless/internal/harness"
	"bless/internal/model"
	"bless/internal/profiler"
	"bless/internal/sharing"
	"bless/internal/sim"
	"bless/internal/trace"
)

// benchExperiment runs one registered experiment per iteration. Skipped in
// -short mode so `go test -short -bench .` stays within the fast-gate budget.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	if testing.Short() {
		b.Skipf("skipping experiment %s in short mode", id)
	}
	e, err := harness.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(harness.Options{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1MotivationSchemes reproduces Fig 1 / Fig 4(b): one overlapped
// VGG11+ResNet50 request pair under STATIC, UNBOUND, REEF+ and BLESS.
func BenchmarkFig1MotivationSchemes(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkTable1Profiling reproduces Table 1: application properties and
// offline profiling cost.
func BenchmarkTable1Profiling(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig9Interference reproduces Fig 9: kernel- and application-level
// interference.
func BenchmarkFig9Interference(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10Estimators reproduces Fig 10: estimator predictions across
// the execution-configuration space.
func BenchmarkFig10Estimators(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkEstimatorAccuracy reproduces the §4.4.2 aggregate accuracy and
// optimal-configuration match-rate statistics.
func BenchmarkEstimatorAccuracy(b *testing.B) { benchExperiment(b, "estacc") }

// BenchmarkFig12LatencyCharts reproduces Fig 12: pair-wise latency charts
// across quota assignments.
func BenchmarkFig12LatencyCharts(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13Overall reproduces Fig 13: average latency of symmetric
// pairs under workloads A/B/C for all systems, plus the training comparison.
func BenchmarkFig13Overall(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14Deviation reproduces Fig 14: average latency deviation
// across uneven quota assignments.
func BenchmarkFig14Deviation(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkTraces reproduces the §6.3 real-world-trace comparison
// (synthetic Twitter- and Azure-shaped loads).
func BenchmarkTraces(b *testing.B) { benchExperiment(b, "traces") }

// BenchmarkFig15MultiApp reproduces Fig 15: 4- and 8-application
// co-location.
func BenchmarkFig15MultiApp(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16Biased reproduces Fig 16: the extremely biased workload E.
func BenchmarkFig16Biased(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkSLO reproduces §6.5: QoS violation rates under tight and loose
// targets.
func BenchmarkSLO(b *testing.B) { benchExperiment(b, "slo") }

// BenchmarkFig17SquadPolicies reproduces Fig 17: squad duration under
// SEQ/NSP/SP/Semi-SP.
func BenchmarkFig17SquadPolicies(b *testing.B) { benchExperiment(b, "fig17") }

// BenchmarkFig18FineGrained reproduces Fig 18: the squad timeline and the
// coordinated-training comparison.
func BenchmarkFig18FineGrained(b *testing.B) { benchExperiment(b, "fig18") }

// BenchmarkFig19SquadSize reproduces Fig 19(a): the squad-size sweep.
func BenchmarkFig19SquadSize(b *testing.B) { benchExperiment(b, "fig19a") }

// BenchmarkFig19SplitRatio reproduces Fig 19(b): the Semi-SP split-ratio
// sweep.
func BenchmarkFig19SplitRatio(b *testing.B) { benchExperiment(b, "fig19b") }

// BenchmarkFig19SMCount reproduces Fig 19(c): the SM-count sweep.
func BenchmarkFig19SMCount(b *testing.B) { benchExperiment(b, "fig19c") }

// BenchmarkFig20Ablation reproduces Fig 20: the component ablation.
func BenchmarkFig20Ablation(b *testing.B) { benchExperiment(b, "fig20") }

// BenchmarkOverheadAccounting reproduces §6.9: overhead accounting.
func BenchmarkOverheadAccounting(b *testing.B) { benchExperiment(b, "overhead") }

// BenchmarkFig3Timelines renders the Fig 3 scheduling-scheme timelines.
func BenchmarkFig3Timelines(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkLLMColocation runs the §6.10 autoregressive-application
// extension.
func BenchmarkLLMColocation(b *testing.B) { benchExperiment(b, "llm") }

// BenchmarkClusterDeployment runs the §4.2.2 multi-GPU extension.
func BenchmarkClusterDeployment(b *testing.B) { benchExperiment(b, "cluster") }

// BenchmarkDesignAblation ablates this implementation's own scheduling
// choices (see DESIGN.md).
func BenchmarkDesignAblation(b *testing.B) { benchExperiment(b, "design") }

// --- Scheduler micro-benchmarks (§6.9's host-side costs, measured as real
// Go wall time rather than the simulator's charged constants). ---

func benchClients(b *testing.B) []*sharing.Client {
	b.Helper()
	names := []string{"nasnet", "resnet50"}
	clients := make([]*sharing.Client, len(names))
	for i, n := range names {
		app := model.MustGet(n)
		prof, err := profiler.ProfileApp(app, profiler.Options{})
		if err != nil {
			b.Fatal(err)
		}
		clients[i] = &sharing.Client{ID: i, App: app, Profile: prof, Quota: 0.5}
	}
	return clients
}

// BenchmarkSchedulerOverhead measures one full BLESS scheduling round
// (squad generation + configuration search) in host wall time; the paper
// charges 6.7us per kernel for the same work.
func BenchmarkSchedulerOverhead(b *testing.B) {
	clients := benchClients(b)
	s := &core.Squad{Entries: []core.SquadEntry{
		{Client: clients[0], Request: &sharing.Request{Client: clients[0]}, Kernels: seq(0, 25)},
		{Client: clients[1], Request: &sharing.Request{Client: clients[1]}, Kernels: seq(0, 25)},
	}}
	quotas := []float64{0.5, 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Determine(s, 108, quotas, core.DetermineOptions{Partitions: 18})
	}
}

// BenchmarkEstimateSpatial measures one interference-free prediction.
func BenchmarkEstimateSpatial(b *testing.B) {
	clients := benchClients(b)
	s := &core.Squad{Entries: []core.SquadEntry{
		{Client: clients[0], Request: &sharing.Request{Client: clients[0]}, Kernels: seq(0, 25)},
		{Client: clients[1], Request: &sharing.Request{Client: clients[1]}, Kernels: seq(0, 25)},
	}}
	sms := []int{54, 54}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.EstimateSpatial(s, sms)
	}
}

// BenchmarkEstimateUnrestricted measures one workload-equivalence
// prediction.
func BenchmarkEstimateUnrestricted(b *testing.B) {
	clients := benchClients(b)
	s := &core.Squad{Entries: []core.SquadEntry{
		{Client: clients[0], Request: &sharing.Request{Client: clients[0]}, Kernels: seq(0, 25)},
		{Client: clients[1], Request: &sharing.Request{Client: clients[1]}, Kernels: seq(0, 25)},
	}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.EstimateUnrestricted(s, 108, 0.16)
	}
}

// BenchmarkSimulatorThroughput measures raw simulator event throughput: a
// closed-loop ResNet50 pair for 100ms of virtual time per iteration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	prof, err := profiler.ProfileApp(model.MustGet("resnet50"), profiler.Options{})
	if err != nil {
		b.Fatal(err)
	}
	solo := prof.Iso[prof.Partitions-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSession(SessionConfig{
			Clients: []ClientConfig{
				{App: "resnet50", Quota: 0.5},
				{App: "resnet50", Quota: 0.5},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		for c := 0; c < 2; c++ {
			s.SubmitClosedLoop(c, 0, 0, 100*1000*1000) // 100ms virtual
		}
		s.Run()
	}
	_ = solo
	_ = sim.DefaultConfig()
}

func seq(from, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = from + i
	}
	return out
}

// --- Fault-path benchmarks (see the "Fault model" section in DESIGN.md).
// The no-fault and zero-rate variants must stay indistinguishable: the
// zero-rate injector exercises every fault-path hook without injecting, so a
// gap between them is pure recovery-machinery overhead on the hot path. The
// bench-smoke gate enforces the same property in virtual time (digest
// identity plus the >10% mean-latency ceiling against the committed
// baseline). ---

// benchFaultPath runs the smoke pair for 100ms of virtual time per iteration
// under the given fault plan.
func benchFaultPath(b *testing.B, fp *harness.FaultPlan) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		sched, err := harness.NewSystem("BLESS")
		if err != nil {
			b.Fatal(err)
		}
		_, err = harness.Run(harness.RunConfig{
			Scheduler: sched,
			Clients: []harness.ClientSpec{
				{App: "resnet50", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 0)},
				{App: "vgg11", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 0)},
			},
			Horizon: 100 * sim.Millisecond,
			Faults:  fp,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultPathBaseline is the untouched hot path: no injector attached.
func BenchmarkFaultPathBaseline(b *testing.B) {
	b.ReportAllocs()
	benchFaultPath(b, nil)
}

// BenchmarkFaultPathZeroRate attaches an inert injector: every launch
// consults the fault hooks, none fire.
func BenchmarkFaultPathZeroRate(b *testing.B) {
	b.ReportAllocs()
	benchFaultPath(b, &harness.FaultPlan{ForceInjector: true})
}

// BenchmarkFaultPathOnePercent runs degraded: 1% kernel faults, each
// recovered through the capped-backoff retry path.
func BenchmarkFaultPathOnePercent(b *testing.B) {
	b.ReportAllocs()
	benchFaultPath(b, &harness.FaultPlan{
		Plan: chaos.Plan{Seed: 11, KernelFaultRate: 0.01},
	})
}
