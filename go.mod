module bless

go 1.22
