// Command blessprof runs BLESS's offline profiling stage (§4.2) for one or
// all built-in applications and prints the measured data: the isolated
// latency T[n%] at every SM partition, per-kernel statistics, and the
// profiling cost. With -csv, the full t[n%][k] grid is emitted as CSV for
// external analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bless/internal/model"
	"bless/internal/profiler"
	"bless/internal/sim"
)

func main() {
	app := flag.String("app", "", "application to profile (default: all)")
	partitions := flag.Int("partitions", profiler.DefaultPartitions, "number of SM partitions N")
	csv := flag.Bool("csv", false, "emit the per-kernel duration grid as CSV")
	saveDir := flag.String("save", "", "directory to write <app>.profile.json files into")
	verify := flag.String("verify", "", "load and validate a saved profile file, then exit")
	flag.Parse()

	if *verify != "" {
		f, err := os.Open(*verify)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		p, err := profiler.Load(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid profile, %d kernels, %d partitions\n", p.AppName, p.NumKernels(), p.Partitions)
		return
	}

	names := model.Names()
	if *app != "" {
		names = []string{*app}
	}
	cfg := sim.DefaultConfig()
	for _, name := range names {
		a, err := model.Get(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		prof, err := profiler.ProfileApp(a, profiler.Options{Partitions: *partitions, Config: cfg})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *saveDir != "" {
			path := filepath.Join(*saveDir, name+".profile.json")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := prof.Save(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n", path)
			continue
		}
		if *csv {
			emitCSV(prof)
			continue
		}
		fmt.Printf("%s (%s): %d kernels, %.1f MB, profiling cost %.2fs\n",
			name, a.Kind, prof.NumKernels(), float64(prof.MemoryBytes)/(1<<20),
			float64(prof.Cost)/float64(sim.Second))
		fmt.Printf("  isolated latency by partition:\n")
		for p := 0; p < prof.Partitions; p++ {
			fmt.Printf("    %3d SMs (%3.0f%%): %8.2fms\n",
				prof.PartitionSMs[p], float64(p+1)/float64(prof.Partitions)*100,
				prof.Iso[p].Milliseconds())
		}
		fmt.Println()
	}
}

// emitCSV prints one row per kernel with durations at every partition.
func emitCSV(p *profiler.Profile) {
	fmt.Printf("app,kernel,compute,max_sms")
	for _, sms := range p.PartitionSMs {
		fmt.Printf(",t_us@%dsm", sms)
	}
	fmt.Println()
	for k := range p.Kernels {
		kp := &p.Kernels[k]
		fmt.Printf("%s,%d,%t,%d", p.AppName, k, kp.IsCompute, kp.MaxSMs)
		for pt := 0; pt < p.Partitions; pt++ {
			fmt.Printf(",%.1f", kp.Dur[pt].Microseconds())
		}
		fmt.Println()
	}
}
