// Command blessd serves BLESS deployment planning over net/rpc (the paper's
// gRPC front-end substituted with the standard library): clients describe a
// multi-tenant deployment — applications, quotas, workload — and blessd
// simulates it under BLESS (or a baseline system) and returns the projected
// per-client latencies, utilization, and isolated-quota baselines.
//
// Because the execution substrate is a virtual-time simulator, blessd is a
// what-if planning service: a 2-second GPU workload is evaluated in
// milliseconds, deterministically.
//
// Start the daemon:
//
//	blessd -listen :7600 -debug :7601
//
// Call it (see PlanRequest/PlanReply in this package):
//
//	client, _ := rpc.Dial("tcp", "localhost:7600")
//	var reply blessd.PlanReply
//	client.Call("Planner.Plan", req, &reply)
//
// A PlanRequest may carry a FaultConfig: the plan then runs under a seeded
// fault and churn plan (kernel faults, device stalls, client crashes and
// leaves) and the reply's Chaos field reports the degraded-mode accounting.
// The Planner.Admit RPC builds on it for dynamic admission — "can this
// tenant join the running deployment?" — by simulating the join mid-run and
// rejecting if the candidate cannot be placed or an incumbent's quota
// attainment would break (see AdmitRequest/AdmitReply).
//
// With -debug set, the daemon also serves live introspection over HTTP:
//
//	GET /debug/bless/metrics  streaming-metrics snapshot (plan and admission
//	                          counters, chaos_* fault/churn counters,
//	                          per-app latency histograms, §6.9 overhead
//	                          accounting of the latest BLESS plan)
//	GET /debug/bless/trace    Chrome trace-event JSON of the most recent
//	                          plan (load in Perfetto or chrome://tracing)
//	GET /debug/bless/invariants  invariant report of the most recent plan
//	                          (violations, quota attainment, bubble
//	                          accounting, determinism digest)
//	GET /debug/bless/prom     accumulated metrics (daemon registry merged
//	                          with the fleet view of every cluster plan) plus
//	                          per-tenant SLO series, Prometheus text format
//	GET /debug/bless/slo      per-tenant SLO attainment JSON, aggregated
//	                          across every plan served
//	GET /debug/bless/fleet    most recent fleet plan's state: per-device
//	                          load, tenant placements, control-plane
//	                          counters, determinism digest
//	GET /debug/bless/snapshot most recent Planner.Snapshot's raw canonical
//	                          bytes (download, restart, feed back through
//	                          Planner.Restore)
//	GET /debug/bless/serve    open serving deployment's live stats (offered/
//	                          admitted/shed, wait percentiles, per-decision
//	                          overhead vs the §6.9 budget, per-tenant digests;
//	                          with ServeOpen{Trace:true}, the recent
//	                          decision-event ring)
//	GET /debug/pprof/         Go runtime profiles (net/http/pprof)
//	GET /debug/vars           expvar JSON (memstats, cmdline)
//
// Multi-device plans (PlanRequest.GPUs > 1) run across a simulated GPU pool:
// the §4.2.2 controller places the tenants, every device runs observed, and
// the fleet-merged metrics and SLO attainment land on the endpoints above.
//
// The fleet control plane is exposed through three more RPCs:
// Planner.FleetRoute answers the placement-only question (which device each
// tenant would land on under a routing policy), Planner.FleetPlan simulates
// a whole fleet scenario (heterogeneous pool, live migration, rebalancing,
// autoscaling, device crashes) under the fleet invariant checker, and
// Planner.FleetMigrate is the migration what-if variant (see
// FleetRouteRequest/FleetPlanRequest).
//
// Fleet runs snapshot and restore across process boundaries:
// Planner.Snapshot cuts a scenario at a virtual-time barrier and returns its
// canonical, digest-sealed encoding; Planner.Restore replays the embedded
// scenario to the barrier, proves the replayed state byte-identical to the
// snapshot, and continues the run to completion — digests match the
// uninterrupted run bit for bit (see SnapshotRequest/RestoreRequest).
//
// Beyond per-plan what-ifs, blessd also runs a sustained-load serving path:
// Planner.ServeOpen opens a deployment (placement admission over the pool,
// one deterministic admission lane per tenant), Planner.Serve decides one
// request per call at line rate through sharded, batching intake workers
// (admit, or shed with a retry-after when the tenant's virtual queueing
// delay exceeds its bound), and Planner.ServeStats / Planner.ServeClose
// report the accounting: throughput, wait percentiles, shed counts,
// measured per-decision overhead against the §6.9 budget, and the
// determinism digest that is bit-identical between serial and concurrent
// intake (wire types in internal/serveapi). cmd/blessload is the matching
// closed-loop generator:
//
//	blessd -listen :7600 &
//	blessload -addr localhost:7600 -rate 4000 -steps 4 -verify
package main

import (
	"expvar"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"net/rpc"

	"bless/cmd/blessd/internal/planner"
)

func main() {
	listen := flag.String("listen", ":7600", "TCP address to serve RPC on")
	debug := flag.String("debug", "", "HTTP address for debug endpoints (empty = disabled)")
	flag.Parse()

	p := planner.New()
	srv := rpc.NewServer()
	if err := srv.RegisterName("Planner", p.RPC()); err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}

	if *debug != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/bless/metrics", p.ServeMetrics)
		mux.HandleFunc("/debug/bless/trace", p.ServeTrace)
		mux.HandleFunc("/debug/bless/invariants", p.ServeInvariants)
		mux.HandleFunc("/debug/bless/prom", p.ServeProm)
		mux.HandleFunc("/debug/bless/slo", p.ServeSLO)
		mux.HandleFunc("/debug/bless/fleet", p.ServeFleet)
		mux.HandleFunc("/debug/bless/snapshot", p.ServeSnapshot)
		mux.HandleFunc("/debug/bless/serve", p.ServeServe)
		// Standard Go introspection, kept off the default mux so the RPC
		// surface stays clean: runtime profiles and expvar.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
		dl, err := net.Listen("tcp", *debug)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("blessd: debug endpoints on http://%s/debug/bless/{metrics,trace,invariants,prom,slo} and /debug/{pprof,vars}", dl.Addr())
		go func() {
			if err := http.Serve(dl, mux); err != nil {
				log.Printf("blessd: debug server: %v", err)
			}
		}()
	}

	log.Printf("blessd: planning service on %s", l.Addr())
	srv.Accept(l)
}
