// Command blessd serves BLESS deployment planning over net/rpc (the paper's
// gRPC front-end substituted with the standard library): clients describe a
// multi-tenant deployment — applications, quotas, workload — and blessd
// simulates it under BLESS (or a baseline system) and returns the projected
// per-client latencies, utilization, and isolated-quota baselines.
//
// Because the execution substrate is a virtual-time simulator, blessd is a
// what-if planning service: a 2-second GPU workload is evaluated in
// milliseconds, deterministically.
//
// Start the daemon:
//
//	blessd -listen :7600
//
// Call it (see PlanRequest/PlanReply in this package):
//
//	client, _ := rpc.Dial("tcp", "localhost:7600")
//	var reply blessd.PlanReply
//	client.Call("Planner.Plan", req, &reply)
package main

import (
	"flag"
	"log"
	"net"
	"net/rpc"

	"bless/cmd/blessd/internal/planner"
)

func main() {
	listen := flag.String("listen", ":7600", "TCP address to serve RPC on")
	flag.Parse()

	srv := rpc.NewServer()
	if err := srv.RegisterName("Planner", planner.New()); err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("blessd: planning service on %s", l.Addr())
	srv.Accept(l)
}
