package planner

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"testing"
	"time"
)

// serveTestTenants is the canonical mixed deployment: two in-quota tenants
// (low rate, never shed) and two overloaded ones (offered far beyond their
// quota's bubble-free throughput, must shed).
func serveTestTenants() []ServeTenant {
	return []ServeTenant{
		{Name: "calm-a", App: "resnet50", Quota: 0.2, RateRPS: 10},
		{Name: "calm-b", App: "vgg11", Quota: 0.2, RateRPS: 10},
		{Name: "hot-a", App: "resnet50", Quota: 0.2, RateRPS: 500000},
		{Name: "hot-b", App: "nasnet", Quota: 0.2, RateRPS: 500000},
	}
}

func mustServeOpen(t testing.TB, p *Planner, req ServeOpenRequest) ServeOpenReply {
	t.Helper()
	var reply ServeOpenReply
	if err := p.ServeOpen(req, &reply); err != nil {
		t.Fatal(err)
	}
	return reply
}

func TestServeOpenValidation(t *testing.T) {
	p := New()
	var reply ServeOpenReply
	if err := p.ServeOpen(ServeOpenRequest{}, &reply); err == nil {
		t.Error("tenant-less open accepted")
	}
	if err := p.ServeOpen(ServeOpenRequest{Tenants: []ServeTenant{
		{Name: "", App: "resnet50", Quota: 0.5, RateRPS: 10},
	}}, &reply); err == nil {
		t.Error("nameless tenant accepted")
	}
	if err := p.ServeOpen(ServeOpenRequest{Tenants: []ServeTenant{
		{Name: "a", App: "resnet50", Quota: 0.5, RateRPS: 0},
	}}, &reply); err == nil {
		t.Error("zero-rate tenant accepted")
	}
	if err := p.ServeOpen(ServeOpenRequest{Tenants: []ServeTenant{
		{Name: "a", App: "resnet50", Quota: 0.5, RateRPS: 10},
		{Name: "a", App: "vgg11", Quota: 0.3, RateRPS: 10},
	}}, &reply); err == nil {
		t.Error("duplicate tenant name accepted")
	}
	// Placement admission: two 0.9-quota tenants cannot co-place on one GPU.
	if err := p.ServeOpen(ServeOpenRequest{Tenants: []ServeTenant{
		{Name: "a", App: "resnet50", Quota: 0.9, RateRPS: 10},
		{Name: "b", App: "vgg11", Quota: 0.9, RateRPS: 10},
	}, GPUs: 1}, &reply); err == nil {
		t.Error("over-quota tenant set passed placement admission")
	}
	// Double-open rejects until closed.
	mustServeOpen(t, p, ServeOpenRequest{Tenants: serveTestTenants()})
	if err := p.ServeOpen(ServeOpenRequest{Tenants: serveTestTenants()}, &reply); err == nil {
		t.Error("second open accepted while deployment open")
	}
	var cl ServeCloseReply
	if err := p.ServeClose(struct{}{}, &cl); err != nil {
		t.Fatal(err)
	}
	mustServeOpen(t, p, ServeOpenRequest{Tenants: serveTestTenants()})
	if err := p.ServeClose(struct{}{}, &cl); err != nil {
		t.Fatal(err)
	}
}

// TestServeAdmitAndShed drives a mixed deployment serially and checks the
// admission contract: in-quota tenants never shed, overloaded tenants shed
// with a positive retry-after, accounting balances, and no invariant breaks.
func TestServeAdmitAndShed(t *testing.T) {
	p := New()
	open := mustServeOpen(t, p, ServeOpenRequest{Tenants: serveTestTenants(), Workers: 2})
	if len(open.Tenants) != 4 {
		t.Fatalf("opened %d tenants, want 4", len(open.Tenants))
	}
	for _, ti := range open.Tenants {
		if ti.ServiceNS <= 0 || ti.IntervalNS <= 0 || ti.BoundNS <= 0 {
			t.Errorf("tenant %s has degenerate lane params: %+v", ti.Name, ti)
		}
	}
	const perTenant = 300
	for seq := 0; seq < perTenant; seq++ {
		for _, ten := range serveTestTenants() {
			var rep ServeReply
			if err := p.Serve(ServeRequest{Tenant: ten.Name, Seq: seq}, &rep); err != nil {
				t.Fatal(err)
			}
			if rep.Seq != seq {
				t.Fatalf("tenant %s: reply seq %d, want %d", ten.Name, rep.Seq, seq)
			}
			if rep.Admitted && rep.ServiceNS <= 0 {
				t.Fatalf("tenant %s seq %d admitted with no service charge", ten.Name, seq)
			}
			if !rep.Admitted && rep.RetryAfterNS <= 0 {
				t.Fatalf("tenant %s seq %d shed with no retry-after", ten.Name, seq)
			}
		}
	}
	var rep ServeReply
	if err := p.Serve(ServeRequest{Tenant: "nobody", Seq: 0}, &rep); err == nil {
		t.Error("unknown tenant served")
	}

	var stats ServeStatsReply
	if err := p.ServeStats(struct{}{}, &stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Open {
		t.Error("stats report closed deployment")
	}
	if stats.Offered != 4*perTenant {
		t.Errorf("offered %d, want %d", stats.Offered, 4*perTenant)
	}
	if stats.Admitted+stats.Shed != stats.Offered {
		t.Errorf("admitted %d + shed %d != offered %d", stats.Admitted, stats.Shed, stats.Offered)
	}
	if len(stats.Violations) != 0 {
		t.Errorf("serve invariants violated: %v", stats.Violations)
	}
	perTen := make(map[string]ServeTenantStats)
	for _, ts := range stats.PerTenant {
		perTen[ts.Name] = ts
	}
	for _, name := range []string{"calm-a", "calm-b"} {
		if s := perTen[name]; s.Shed != 0 || s.Admitted != perTenant {
			t.Errorf("in-quota tenant %s shed %d of %d", name, s.Shed, s.Offered)
		}
	}
	for _, name := range []string{"hot-a", "hot-b"} {
		if s := perTen[name]; s.Shed == 0 {
			t.Errorf("overloaded tenant %s never shed", name)
		}
	}
	if stats.Batches == 0 || stats.BatchMeanSize <= 0 {
		t.Errorf("no batching windows accounted: %+v", stats)
	}
	if stats.BudgetNS <= 0 {
		t.Error("no §6.9 budget derived")
	}

	var cl ServeCloseReply
	if err := p.ServeClose(struct{}{}, &cl); err != nil {
		t.Fatal(err)
	}
	if cl.Stats.Open {
		t.Error("close reports open deployment")
	}
	if cl.Stats.Offered != stats.Offered || cl.Stats.Digest != stats.Digest {
		t.Errorf("close stats drifted from live stats: %+v vs %+v", cl.Stats, stats)
	}
	if err := p.Serve(ServeRequest{Tenant: "calm-a", Seq: perTenant}, &rep); err == nil {
		t.Error("serve accepted after close")
	}
	if err := p.ServeStats(struct{}{}, &stats); err == nil {
		t.Error("stats answered after close")
	}
}

// driveServe pushes perTenant requests for every tenant through p.Serve. With
// concurrent=true each tenant gets its own goroutine (per-tenant seq order
// preserved, cross-tenant interleaving scrambled); otherwise one goroutine
// round-robins.
func driveServe(t testing.TB, p *Planner, tenants []ServeTenant, perTenant int, concurrent bool) {
	t.Helper()
	if !concurrent {
		for seq := 0; seq < perTenant; seq++ {
			for _, ten := range tenants {
				var rep ServeReply
				if err := p.Serve(ServeRequest{Tenant: ten.Name, Seq: seq}, &rep); err != nil {
					t.Error(err)
					return
				}
			}
		}
		return
	}
	var wg sync.WaitGroup
	for _, ten := range tenants {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for seq := 0; seq < perTenant; seq++ {
				var rep ServeReply
				if err := p.Serve(ServeRequest{Tenant: name, Seq: seq}, &rep); err != nil {
					t.Error(err)
					return
				}
			}
		}(ten.Name)
	}
	wg.Wait()
}

// TestServeDigestSerialVsConcurrent is the metamorphic determinism gate: the
// same per-tenant request streams must produce bit-identical per-tenant and
// folded digests whether intake is serial on one worker or concurrent across
// many — including under load shed, so shed decisions are in the digest too.
func TestServeDigestSerialVsConcurrent(t *testing.T) {
	tenants := serveTestTenants()
	const perTenant = 500
	run := func(workers int, concurrent bool) ServeStatsReply {
		p := New()
		mustServeOpen(t, p, ServeOpenRequest{Tenants: tenants, Workers: workers, BatchMax: 8})
		driveServe(t, p, tenants, perTenant, concurrent)
		var cl ServeCloseReply
		if err := p.ServeClose(struct{}{}, &cl); err != nil {
			t.Fatal(err)
		}
		return cl.Stats
	}
	serial := run(1, false)
	if serial.Shed == 0 {
		t.Fatal("serial run never shed; digest identity not exercised under load-shed")
	}
	for round := 0; round < 3; round++ {
		conc := run(4, true)
		if conc.Digest != serial.Digest {
			t.Fatalf("round %d: concurrent digest %s != serial %s", round, conc.Digest, serial.Digest)
		}
		if conc.Admitted != serial.Admitted || conc.Shed != serial.Shed {
			t.Fatalf("round %d: concurrent admitted/shed %d/%d != serial %d/%d",
				round, conc.Admitted, conc.Shed, serial.Admitted, serial.Shed)
		}
		serialTen := make(map[string]ServeTenantStats)
		for _, ts := range serial.PerTenant {
			serialTen[ts.Name] = ts
		}
		for _, ts := range conc.PerTenant {
			if want := serialTen[ts.Name]; ts.Digest != want.Digest {
				t.Fatalf("round %d: tenant %s digest %s != serial %s", round, ts.Name, ts.Digest, want.Digest)
			}
		}
	}
}

// TestServeReorderedIntake exercises the per-tenant hold buffer: seqs
// arriving ahead of the cursor park until the gap fills, then the whole
// chain decides in seq order. A stale (already decided) seq errors.
func TestServeReorderedIntake(t *testing.T) {
	p := New()
	mustServeOpen(t, p, ServeOpenRequest{
		Tenants: []ServeTenant{{Name: "a", App: "resnet50", Quota: 0.5, RateRPS: 10}},
		Workers: 1,
	})
	const n = 4
	replies := make([]ServeReply, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	// Send seqs 3,2,1 first; they must park. Then seq 0 releases the chain.
	for seq := n - 1; seq >= 1; seq-- {
		wg.Add(1)
		go func(seq int) {
			defer wg.Done()
			errs[seq] = p.Serve(ServeRequest{Tenant: "a", Seq: seq}, &replies[seq])
		}(seq)
	}
	time.Sleep(20 * time.Millisecond)
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[0] = p.Serve(ServeRequest{Tenant: "a", Seq: 0}, &replies[0])
	}()
	wg.Wait()
	for seq := 0; seq < n; seq++ {
		if errs[seq] != nil {
			t.Fatalf("seq %d: %v", seq, errs[seq])
		}
		if replies[seq].Seq != seq || !replies[seq].Admitted {
			t.Fatalf("seq %d decided wrong: %+v", seq, replies[seq])
		}
	}
	// Replay of a decided seq is an error, never a second decision.
	var rep ServeReply
	if err := p.Serve(ServeRequest{Tenant: "a", Seq: 1}, &rep); err == nil {
		t.Error("stale seq decided twice")
	}
	var stats ServeStatsReply
	if err := p.ServeStats(struct{}{}, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Offered != n || stats.Admitted != n {
		t.Errorf("offered/admitted %d/%d, want %d/%d", stats.Offered, stats.Admitted, n, n)
	}
	var cl ServeCloseReply
	if err := p.ServeClose(struct{}{}, &cl); err != nil {
		t.Fatal(err)
	}
}

// TestServeCloseFlushesGap: a client that abandons its pipeline mid-stream
// (seq 1 sent, seq 0 never) leaves a parked item that can never decide;
// ServeClose must flush it with an error rather than hang.
func TestServeCloseFlushesGap(t *testing.T) {
	old := serveDrainDeadline
	serveDrainDeadline = 50 * time.Millisecond
	defer func() { serveDrainDeadline = old }()

	p := New()
	mustServeOpen(t, p, ServeOpenRequest{
		Tenants: []ServeTenant{{Name: "a", App: "resnet50", Quota: 0.5, RateRPS: 10}},
		Workers: 1,
	})
	errCh := make(chan error, 1)
	go func() {
		var rep ServeReply
		errCh <- p.Serve(ServeRequest{Tenant: "a", Seq: 1}, &rep)
	}()
	time.Sleep(20 * time.Millisecond)
	var cl ServeCloseReply
	if err := p.ServeClose(struct{}{}, &cl); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Error("gapped request decided instead of flushed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gapped Serve call hung across close")
	}
}

// TestServeOverRPCParallel drives the deployment through the real net/rpc
// surface with pipelined parallel clients — the configuration the race
// detector suite (make test-race) must prove clean. net/rpc runs each call
// on its own goroutine, so pipelining here also soaks the reorder path.
func TestServeOverRPCParallel(t *testing.T) {
	srv := rpc.NewServer()
	p := New()
	if err := srv.RegisterName("Planner", p.RPC()); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Accept(l)

	tenants := serveTestTenants()
	const perTenant = 400
	const window = 16

	dial := func() *rpc.Client {
		cl, err := rpc.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	admin := dial()
	defer admin.Close()
	var open ServeOpenReply
	if err := admin.Call("Planner.ServeOpen", ServeOpenRequest{Tenants: tenants, Workers: 4, BatchMax: 16}, &open); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for _, ten := range tenants {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			cl := dial()
			defer cl.Close()
			calls := make([]*rpc.Call, 0, window)
			reap := func() {
				c := calls[0]
				copy(calls, calls[1:])
				calls = calls[:len(calls)-1]
				<-c.Done
				if c.Error != nil {
					t.Error(c.Error)
				}
			}
			for seq := 0; seq < perTenant; seq++ {
				if len(calls) == window {
					reap()
				}
				calls = append(calls, cl.Go("Planner.Serve", ServeRequest{Tenant: name, Seq: seq}, &ServeReply{}, make(chan *rpc.Call, 1)))
			}
			for len(calls) > 0 {
				reap()
			}
		}(ten.Name)
	}
	wg.Wait()

	var cl ServeCloseReply
	if err := admin.Call("Planner.ServeClose", struct{}{}, &cl); err != nil {
		t.Fatal(err)
	}
	if want := uint64(len(tenants) * perTenant); cl.Stats.Offered != want {
		t.Errorf("offered %d, want %d", cl.Stats.Offered, want)
	}
	if cl.Stats.Admitted+cl.Stats.Shed != cl.Stats.Offered {
		t.Errorf("admitted %d + shed %d != offered %d", cl.Stats.Admitted, cl.Stats.Shed, cl.Stats.Offered)
	}
	if len(cl.Stats.Violations) != 0 {
		t.Errorf("serve invariants violated: %v", cl.Stats.Violations)
	}
}

// BenchmarkServeSteadyState measures the serve fast path end to end inside
// the process: pooled intake items, per-batch lock amortization, cached
// instruments. The steady state must not allocate — BENCH_sim.json gates
// allocs/op exactly.
func BenchmarkServeSteadyState(b *testing.B) {
	p := New()
	tenants := serveTestTenants()
	mustServeOpen(b, p, ServeOpenRequest{Tenants: tenants, Workers: 2})
	names := make([]string, len(tenants))
	for i, ten := range tenants {
		names[i] = ten.Name
	}
	// Prime the pools and instrument hot paths before measuring.
	var rep ServeReply
	seqs := make([]int, len(names))
	warm := 2048
	for i := 0; i < warm; i++ {
		k := i % len(names)
		if err := p.Serve(ServeRequest{Tenant: names[k], Seq: seqs[k]}, &rep); err != nil {
			b.Fatal(err)
		}
		seqs[k]++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(names)
		if err := p.Serve(ServeRequest{Tenant: names[k], Seq: seqs[k]}, &rep); err != nil {
			b.Fatal(err)
		}
		seqs[k]++
	}
	b.StopTimer()
	var cl ServeCloseReply
	if err := p.ServeClose(struct{}{}, &cl); err != nil {
		b.Fatal(err)
	}
	if got := fmt.Sprintf("%d", cl.Stats.Offered); got == "" {
		b.Fatal("unreachable")
	}
}
