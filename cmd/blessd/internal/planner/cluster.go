package planner

import (
	"fmt"

	"bless/internal/cluster"
	"bless/internal/harness"
	"bless/internal/metrics"
	"bless/internal/model"
	"bless/internal/obs"
	"bless/internal/sharing"
	"bless/internal/sim"
)

// planCluster is the multi-device plan path (PlanRequest.GPUs > 1): the
// deployment is placed across a GPU pool by the §4.2.2 controller and every
// device runs fully observed. The per-device registries and SLO trackers
// merge into the daemon's fleet view, which ServeProm and ServeSLO expose —
// per-tenant SLO attainment aggregated across the whole cluster run.
func (p *Planner) planCluster(req PlanRequest, reply *PlanReply) error {
	if req.Faults != nil {
		p.reg.Counter("plan_errors_total").Inc()
		return fmt.Errorf("planner: fault plans are single-device; drop Faults or set GPUs to 1")
	}
	horizon := ms(req.HorizonMS)
	if horizon <= 0 {
		horizon = sim.Second
	}
	gpuCfg := sim.DefaultConfig()
	if req.GPUSMs > 0 {
		gpuCfg.SMs = req.GPUSMs
	}

	eng := sim.NewEngine()
	clients := make([]*sharing.Client, len(req.Clients))
	for i, c := range req.Clients {
		app, err := model.Get(c.App)
		if err != nil {
			p.reg.Counter("plan_errors_total").Inc()
			return fmt.Errorf("planner: %w", err)
		}
		prof, err := harness.ProfileFor(c.App, gpuCfg)
		if err != nil {
			p.reg.Counter("plan_errors_total").Inc()
			return fmt.Errorf("planner: profiling %s: %w", c.App, err)
		}
		clients[i] = &sharing.Client{
			ID: i, App: app, Profile: prof,
			Quota:     c.Quota,
			SLOTarget: ms(c.SLOTargetMS),
		}
	}
	cl, err := cluster.Deploy(eng, clients, cluster.Config{
		GPUs:    req.GPUs,
		GPU:     gpuCfg,
		Observe: true,
	})
	if err != nil {
		p.reg.Counter("plan_errors_total").Inc()
		return err
	}

	// Closed-loop (or burst) load per tenant, mirroring the single-device
	// workload shapes.
	lats := make([][]sim.Time, len(clients))
	failed := make([]int, len(clients))
	seqs := make([]int, len(clients))
	cl.OnComplete(func(app int, r *sharing.Request) {
		if r.Failed {
			failed[app]++
		} else {
			lats[app] = append(lats[app], r.Latency())
		}
		c := req.Clients[app]
		if c.Workload == "burst" {
			return
		}
		if c.Requests > 0 && seqs[app] >= c.Requests {
			return
		}
		at := r.Done + ms(c.ThinkMS)
		if at > horizon {
			return
		}
		eng.Schedule(at, func() {
			seqs[app]++
			cl.Submit(app, seqs[app])
		})
	})
	for ai, c := range req.Clients {
		ai := ai
		n := 1
		if c.Workload == "burst" {
			n = c.Requests
			if n <= 0 {
				n = 1
			}
		}
		for s := 0; s < n; s++ {
			s := s
			eng.Schedule(0, func() {
				if s > 0 {
					seqs[ai]++
				}
				cl.Submit(ai, s)
			})
		}
	}
	eng.RunUntil(horizon)
	eng.Run()

	// Fold the run's fleet views into the daemon's accumulated state.
	p.mu.Lock()
	p.fleet = obs.MergeSnapshots(p.fleet, cl.FleetSnapshot())
	p.mu.Unlock()
	p.slo.Merge(cl.FleetSLOTracker())
	var buf writerBuf
	if err := cl.WriteChromeTrace(&buf); err == nil {
		p.mu.Lock()
		p.lastTrace = buf.b
		p.mu.Unlock()
	}
	p.reg.Counter("plans_total").Inc()
	p.reg.Counter("plans/cluster").Inc()

	reply.System = "BLESS"
	reply.GPUs = req.GPUs
	reply.Placement = make([]int, len(clients))
	var util float64
	for _, u := range cl.Utilization() {
		util += u
	}
	reply.Utilization = util / float64(cl.Devices())
	reply.ElapsedMS = float64(eng.Now()) / float64(sim.Millisecond)
	for ai, c := range clients {
		reply.Placement[ai] = cl.Host(ai)
		sum := metrics.Summarize(lats[ai])
		iso := c.Profile.IsoAtQuota(c.Quota)
		reply.PerClient = append(reply.PerClient, ClientOutcome{
			App:            c.App.Name,
			Quota:          c.Quota,
			Completed:      len(lats[ai]),
			Failed:         failed[ai],
			MeanLatencyMS:  float64(sum.Mean) / float64(sim.Millisecond),
			P99LatencyMS:   float64(sum.P99) / float64(sim.Millisecond),
			ISOLatencyMS:   float64(iso) / float64(sim.Millisecond),
			MeetsISOTarget: sum.Mean <= iso,
		})
	}
	return nil
}
