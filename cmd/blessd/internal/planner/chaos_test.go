package planner

import (
	"net"
	"net/rpc"
	"testing"
)

// TestPlanWithFaults: a plan carrying a fault config reports its chaos
// outcome and keeps incumbents' accounting exact.
func TestPlanWithFaults(t *testing.T) {
	var reply PlanReply
	err := New().Plan(PlanRequest{
		Clients: []ClientPlan{
			{App: "resnet50", Quota: 0.5, ThinkMS: 2},
			{App: "vgg11", Quota: 0.5, ThinkMS: 2},
		},
		HorizonMS: 200,
		Faults: &FaultConfig{
			Seed:            7,
			KernelFaultRate: 0.01,
			Crashes:         []ChurnEvent{{Client: 1, AtMS: 80}},
		},
	}, &reply)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Chaos == nil {
		t.Fatal("fault config ran but reply.Chaos is nil")
	}
	if reply.Chaos.Crashes != 1 {
		t.Errorf("crashes = %d, want 1", reply.Chaos.Crashes)
	}
	if reply.Chaos.KernelFaults == 0 || reply.Chaos.Retries == 0 {
		t.Errorf("no fault activity reported: %+v", reply.Chaos)
	}
	if reply.PerClient[0].Completed == 0 {
		t.Error("surviving client completed nothing")
	}
}

// TestAdmitAccepts: joining a half-loaded deployment is safe and the reply
// carries the candidate's projected outcome.
func TestAdmitAccepts(t *testing.T) {
	p := New()
	var reply AdmitReply
	err := p.Admit(AdmitRequest{
		Base: PlanRequest{
			Clients:   []ClientPlan{{App: "resnet50", Quota: 0.5, ThinkMS: 4}},
			HorizonMS: 200,
		},
		Candidate: ClientPlan{App: "vgg11", Quota: 0.5, ThinkMS: 4},
	}, &reply)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Admit {
		t.Fatalf("admission rejected: %s", reply.Reason)
	}
	if n := len(reply.Outcome.PerClient); n != 2 {
		t.Fatalf("%d clients in outcome, want 2", n)
	}
	if cand := reply.Outcome.PerClient[1]; cand.Completed == 0 {
		t.Error("admitted candidate completed nothing")
	}
	if reply.Outcome.Chaos == nil || reply.Outcome.Chaos.Joins != 1 {
		t.Errorf("join not reflected in chaos outcome: %+v", reply.Outcome.Chaos)
	}
}

// TestAdmitRejectsOnMemory: a candidate the device cannot fit is rejected
// with a resources reason, not an error.
func TestAdmitRejectsOnMemory(t *testing.T) {
	p := New()
	var reply AdmitReply
	err := p.Admit(AdmitRequest{
		Base: PlanRequest{
			// Three 12 GB tenants nearly fill the 40 GB device; a fourth
			// cannot fit.
			Clients: []ClientPlan{
				{App: "bert-train", Quota: 0.25, ThinkMS: 4},
				{App: "bert-train", Quota: 0.25, ThinkMS: 4},
				{App: "bert-train", Quota: 0.25, ThinkMS: 4},
			},
			HorizonMS: 120,
		},
		Candidate: ClientPlan{App: "bert-train", Quota: 0.25, ThinkMS: 4},
		JoinAtMS:  60,
	}, &reply)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Admit {
		t.Fatal("admission accepted though the candidate cannot fit in device memory")
	}
	if reply.Reason == "" {
		t.Error("rejection carries no reason")
	}
}

// TestAdmitValidation: an admission request without incumbents errors.
func TestAdmitValidation(t *testing.T) {
	var reply AdmitReply
	if err := New().Admit(AdmitRequest{Candidate: ClientPlan{App: "vgg11", Quota: 0.5}}, &reply); err == nil {
		t.Error("incumbent-less admission accepted")
	}
}

// TestAdmitOverRPC: Admit is reachable through the net/rpc surface.
func TestAdmitOverRPC(t *testing.T) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Planner", New().RPC()); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Accept(l)

	client, err := rpc.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var reply AdmitReply
	err = client.Call("Planner.Admit", AdmitRequest{
		Base: PlanRequest{
			Clients:   []ClientPlan{{App: "resnet50", Quota: 0.5, ThinkMS: 4}},
			HorizonMS: 150,
		},
		Candidate: ClientPlan{App: "vgg11", Quota: 0.5, ThinkMS: 4},
	}, &reply)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Admit {
		t.Fatalf("RPC admission rejected: %s", reply.Reason)
	}
}
