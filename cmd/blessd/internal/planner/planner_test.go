package planner

import (
	"net"
	"net/rpc"
	"testing"
)

func TestPlanBLESSvsStatic(t *testing.T) {
	p := New()
	req := PlanRequest{
		Clients: []ClientPlan{
			{App: "vgg11", Quota: 1.0 / 3, Workload: "burst", Requests: 1},
			{App: "resnet50", Quota: 2.0 / 3, Workload: "burst", Requests: 1},
		},
		HorizonMS: 200,
	}
	var blessReply PlanReply
	if err := p.Plan(req, &blessReply); err != nil {
		t.Fatal(err)
	}
	req.System = "STATIC"
	var staticReply PlanReply
	if err := p.Plan(req, &staticReply); err != nil {
		t.Fatal(err)
	}
	bAvg := (blessReply.PerClient[0].MeanLatencyMS + blessReply.PerClient[1].MeanLatencyMS) / 2
	sAvg := (staticReply.PerClient[0].MeanLatencyMS + staticReply.PerClient[1].MeanLatencyMS) / 2
	if bAvg >= sAvg {
		t.Errorf("BLESS plan %.2fms not below STATIC plan %.2fms", bAvg, sAvg)
	}
	for _, c := range blessReply.PerClient {
		if c.Completed != 1 {
			t.Errorf("%s completed %d, want 1", c.App, c.Completed)
		}
		if c.ISOLatencyMS <= 0 {
			t.Errorf("%s missing ISO baseline", c.App)
		}
	}
}

func TestPlanClosedLoop(t *testing.T) {
	var reply PlanReply
	err := New().Plan(PlanRequest{
		Clients: []ClientPlan{
			{App: "resnet50", Quota: 0.5, ThinkMS: 8.7},
			{App: "resnet50", Quota: 0.5, ThinkMS: 8.7},
		},
		HorizonMS: 300,
	}, &reply)
	if err != nil {
		t.Fatal(err)
	}
	if reply.PerClient[0].Completed < 5 {
		t.Errorf("closed loop completed only %d requests", reply.PerClient[0].Completed)
	}
	if reply.Utilization <= 0 {
		t.Error("no utilization reported")
	}
}

func TestPlanValidation(t *testing.T) {
	var reply PlanReply
	if err := New().Plan(PlanRequest{}, &reply); err == nil {
		t.Error("empty request accepted")
	}
	err := New().Plan(PlanRequest{
		Clients: []ClientPlan{{App: "vgg11", Quota: 0.5, Workload: "wat"}},
	}, &reply)
	if err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestPlanOverRPC(t *testing.T) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Planner", New()); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Accept(l)

	client, err := rpc.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var reply PlanReply
	err = client.Call("Planner.Plan", PlanRequest{
		Clients: []ClientPlan{
			{App: "vgg11", Quota: 0.5, Workload: "burst", Requests: 2},
			{App: "bert", Quota: 0.5, Workload: "burst", Requests: 2},
		},
		HorizonMS: 300,
	}, &reply)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.PerClient) != 2 {
		t.Fatalf("%d clients in reply, want 2", len(reply.PerClient))
	}
	if reply.PerClient[0].Completed != 2 || reply.PerClient[1].Completed != 2 {
		t.Errorf("completions %d/%d, want 2/2", reply.PerClient[0].Completed, reply.PerClient[1].Completed)
	}
}
