package planner

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"net/rpc"
	"testing"
)

func TestPlanBLESSvsStatic(t *testing.T) {
	p := New()
	req := PlanRequest{
		Clients: []ClientPlan{
			{App: "vgg11", Quota: 1.0 / 3, Workload: "burst", Requests: 1},
			{App: "resnet50", Quota: 2.0 / 3, Workload: "burst", Requests: 1},
		},
		HorizonMS: 200,
	}
	var blessReply PlanReply
	if err := p.Plan(req, &blessReply); err != nil {
		t.Fatal(err)
	}
	req.System = "STATIC"
	var staticReply PlanReply
	if err := p.Plan(req, &staticReply); err != nil {
		t.Fatal(err)
	}
	bAvg := (blessReply.PerClient[0].MeanLatencyMS + blessReply.PerClient[1].MeanLatencyMS) / 2
	sAvg := (staticReply.PerClient[0].MeanLatencyMS + staticReply.PerClient[1].MeanLatencyMS) / 2
	if bAvg >= sAvg {
		t.Errorf("BLESS plan %.2fms not below STATIC plan %.2fms", bAvg, sAvg)
	}
	for _, c := range blessReply.PerClient {
		if c.Completed != 1 {
			t.Errorf("%s completed %d, want 1", c.App, c.Completed)
		}
		if c.ISOLatencyMS <= 0 {
			t.Errorf("%s missing ISO baseline", c.App)
		}
	}
}

func TestPlanClosedLoop(t *testing.T) {
	var reply PlanReply
	err := New().Plan(PlanRequest{
		Clients: []ClientPlan{
			{App: "resnet50", Quota: 0.5, ThinkMS: 8.7},
			{App: "resnet50", Quota: 0.5, ThinkMS: 8.7},
		},
		HorizonMS: 300,
	}, &reply)
	if err != nil {
		t.Fatal(err)
	}
	if reply.PerClient[0].Completed < 5 {
		t.Errorf("closed loop completed only %d requests", reply.PerClient[0].Completed)
	}
	if reply.Utilization <= 0 {
		t.Error("no utilization reported")
	}
}

func TestPlanValidation(t *testing.T) {
	var reply PlanReply
	if err := New().Plan(PlanRequest{}, &reply); err == nil {
		t.Error("empty request accepted")
	}
	err := New().Plan(PlanRequest{
		Clients: []ClientPlan{{App: "vgg11", Quota: 0.5, Workload: "wat"}},
	}, &reply)
	if err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestDebugEndpoints(t *testing.T) {
	p := New()

	// Before any plan: metrics snapshot is valid JSON, trace is 404.
	rec := httptest.NewRecorder()
	p.ServeMetrics(rec, nil)
	if rec.Code != 200 {
		t.Fatalf("metrics status %d before any plan", rec.Code)
	}
	rec = httptest.NewRecorder()
	p.ServeTrace(rec, nil)
	if rec.Code != 404 {
		t.Fatalf("trace status %d before any plan, want 404", rec.Code)
	}

	var reply PlanReply
	if err := p.Plan(PlanRequest{
		Clients: []ClientPlan{
			{App: "vgg11", Quota: 0.5, Workload: "burst", Requests: 1},
			{App: "resnet50", Quota: 0.5, Workload: "burst", Requests: 1},
		},
		HorizonMS: 200,
	}, &reply); err != nil {
		t.Fatal(err)
	}

	// Metrics: counters and per-app latency histograms from the plan, plus
	// the BLESS overhead accounting.
	rec = httptest.NewRecorder()
	p.ServeMetrics(rec, nil)
	if got := rec.Header().Get("Content-Type"); got != "application/json" {
		t.Errorf("metrics content-type %q", got)
	}
	var snap struct {
		Counters   map[string]int64          `json:"counters"`
		Histograms map[string]map[string]any `json:"histograms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if snap.Counters["plans_total"] != 1 {
		t.Errorf("plans_total = %d, want 1", snap.Counters["plans_total"])
	}
	if snap.Counters["requests_completed_total"] != 2 {
		t.Errorf("requests_completed_total = %d, want 2", snap.Counters["requests_completed_total"])
	}
	for _, app := range []string{"vgg11", "resnet50"} {
		if _, ok := snap.Histograms["latency/"+app]; !ok {
			t.Errorf("no latency histogram for %s", app)
		}
	}
	if snap.Counters["squads_total"] == 0 {
		t.Error("no BLESS overhead accounting recorded")
	}

	// Trace: the latest plan as Chrome trace-event JSON with client lanes.
	rec = httptest.NewRecorder()
	p.ServeTrace(rec, nil)
	if rec.Code != 200 {
		t.Fatalf("trace status %d after a plan", rec.Code)
	}
	var events []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	lanes := map[string]bool{}
	for _, ev := range events {
		if ev["name"] == "thread_name" {
			lanes[ev["args"].(map[string]any)["name"].(string)] = true
		}
	}
	for _, want := range []string{"scheduler", "vgg11", "resnet50"} {
		if !lanes[want] {
			t.Errorf("trace missing lane %q (have %v)", want, lanes)
		}
	}
}

func TestPlanOverRPC(t *testing.T) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Planner", New().RPC()); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Accept(l)

	client, err := rpc.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	var reply PlanReply
	err = client.Call("Planner.Plan", PlanRequest{
		Clients: []ClientPlan{
			{App: "vgg11", Quota: 0.5, Workload: "burst", Requests: 2},
			{App: "bert", Quota: 0.5, Workload: "burst", Requests: 2},
		},
		HorizonMS: 300,
	}, &reply)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.PerClient) != 2 {
		t.Fatalf("%d clients in reply, want 2", len(reply.PerClient))
	}
	if reply.PerClient[0].Completed != 2 || reply.PerClient[1].Completed != 2 {
		t.Errorf("completions %d/%d, want 2/2", reply.PerClient[0].Completed, reply.PerClient[1].Completed)
	}
}
