package planner

import (
	"fmt"
	"net/http"
	"strconv"

	"bless/internal/harness"
	"bless/internal/sim"
	"bless/internal/snapshot"
)

// Snapshot/Restore RPCs: save/resume for fleet plans across a process
// boundary.
//
//   - Planner.Snapshot runs a fleet scenario to a virtual-time barrier and
//     returns the canonical snapshot encoding — the complete observable
//     logical state plus the generating scenario, cut mid-migration,
//     mid-fault-retry or wherever the barrier lands.
//   - Planner.Restore imports such a snapshot (from this daemon or any
//     other process): the embedded scenario is replayed to the barrier, the
//     replayed state proven byte-identical to the snapshot's state section,
//     and the run continued to completion under the fleet invariant
//     checker, reporting like FleetPlan.
//
// The most recent snapshot's raw bytes are served on
// GET /debug/bless/snapshot — download it, restart the daemon, and feed it
// back through Planner.Restore.

// SnapshotRequest cuts a fleet scenario at a virtual-time barrier.
type SnapshotRequest struct {
	// Plan is the scenario to run (same shape as Planner.FleetPlan).
	Plan FleetPlanRequest
	// AtMS is the barrier instant in virtual milliseconds (<= 0 cuts at
	// half the plan's horizon). A scenario that drains before the barrier
	// snapshots its final quiescent state.
	AtMS float64
	// Shards is the exporting run's engine-shard count (0 or 1 = single).
	// The canonical state excludes per-shard internals, so the snapshot
	// bytes are identical at every count.
	Shards int
}

// SnapshotReply is the cut snapshot and its summary.
type SnapshotReply struct {
	// Snapshot is the canonical encoding — self-describing, versioned,
	// digest-sealed; feed it to Planner.Restore in any process.
	Snapshot []byte
	// BarrierAtMS is the resolved barrier instant.
	BarrierAtMS float64
	// StateDigest fingerprints the canonical state section.
	StateDigest string
	// Devices/Tenants count the entities captured in the state.
	Devices int
	Tenants int
}

// RestoreRequest resumes a run from a snapshot.
type RestoreRequest struct {
	// Snapshot is a Planner.Snapshot (or blessbench -snapshot) encoding.
	Snapshot []byte
	// Shards overrides the replay's engine-shard count (0 = the exporting
	// run's count) — execution strategy only, digests are unaffected.
	Shards int
}

// RestoreReply is the completed run's outcome plus the restore provenance.
type RestoreReply struct {
	FleetPlanReply
	// BarrierAtMS is the snapshot's barrier — where the run resumed from.
	BarrierAtMS float64
	// StateDigest fingerprints the barrier state the replay was proven
	// against, byte for byte.
	StateDigest string
}

// Snapshot forwards to Planner.Snapshot.
func (s *PlanService) Snapshot(req SnapshotRequest, reply *SnapshotReply) error {
	return s.p.Snapshot(req, reply)
}

// Restore forwards to Planner.Restore.
func (s *PlanService) Restore(req RestoreRequest, reply *RestoreReply) error {
	return s.p.Restore(req, reply)
}

// Snapshot cuts the requested scenario at the barrier and returns the
// canonical encoding. The raw bytes also land on /debug/bless/snapshot.
func (p *Planner) Snapshot(req SnapshotRequest, reply *SnapshotReply) error {
	sc, err := fleetScenarioOf(req.Plan, "Planner.Snapshot")
	if err != nil {
		p.reg.Counter("plan_errors_total").Inc()
		return err
	}
	sc.Shards = req.Shards
	at := ms(req.AtMS)
	if at <= 0 {
		at = sc.Horizon / 2
	}
	data, err := harness.ExportFleet(sc, at)
	if err != nil {
		p.reg.Counter("plan_errors_total").Inc()
		return err
	}
	snap, err := snapshot.Decode(data)
	if err != nil {
		p.reg.Counter("plan_errors_total").Inc()
		return fmt.Errorf("planner: re-decoding fresh snapshot: %w", err)
	}
	reply.Snapshot = data
	reply.BarrierAtMS = float64(at) / float64(sim.Millisecond)
	reply.StateDigest = fmt.Sprintf("%016x", snapshot.StateDigest(&snap.State))
	reply.Devices = len(snap.State.Devices)
	reply.Tenants = len(snap.State.Tenants)

	p.mu.Lock()
	p.lastSnapshot = data
	p.mu.Unlock()
	p.reg.Counter("plans_total").Inc()
	p.reg.Counter("plans/snapshot").Inc()
	return nil
}

// Restore imports the snapshot — replay to the barrier, byte-identity proof,
// continue to completion — and reports like FleetPlan, including the
// /debug/bless/fleet state. Serialization drift, digest corruption, or a
// snapshot from a newer format version fail before the run continues.
func (p *Planner) Restore(req RestoreRequest, reply *RestoreReply) error {
	if len(req.Snapshot) == 0 {
		p.reg.Counter("plan_errors_total").Inc()
		return fmt.Errorf("planner: restore request carries no snapshot")
	}
	snap, err := snapshot.Decode(req.Snapshot)
	if err != nil {
		p.reg.Counter("plan_errors_total").Inc()
		return err
	}
	res, err := harness.ImportFleet(req.Snapshot, req.Shards)
	if err != nil {
		p.reg.Counter("plan_errors_total").Inc()
		return err
	}
	reply.BarrierAtMS = float64(snap.BarrierAt) / float64(sim.Millisecond)
	reply.StateDigest = fmt.Sprintf("%016x", snapshot.StateDigest(&snap.State))
	p.reg.Counter("plans/restore").Inc()
	return p.finishFleetPlan(res, &reply.FleetPlanReply)
}

// ServeSnapshot handles GET /debug/bless/snapshot: the most recent
// Planner.Snapshot's raw canonical bytes (application/octet-stream, with the
// state digest in X-Bless-State-Digest). 404 until a snapshot has been cut.
func (p *Planner) ServeSnapshot(w http.ResponseWriter, _ *http.Request) {
	p.mu.Lock()
	data := p.lastSnapshot
	p.mu.Unlock()
	if len(data) == 0 {
		http.Error(w, "no snapshot yet; call Planner.Snapshot first", http.StatusNotFound)
		return
	}
	snap, err := snapshot.Decode(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set("X-Bless-State-Digest", fmt.Sprintf("%016x", snapshot.StateDigest(&snap.State)))
	w.Write(data)
}
