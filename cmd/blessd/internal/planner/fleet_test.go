package planner

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// fleetPlanRequest is a small heterogeneous fleet with one scheduled live
// migration and the rebalancer enabled.
func fleetPlanRequest() FleetPlanRequest {
	return FleetPlanRequest{
		Seed: 7,
		Devices: []FleetDevice{
			{Name: "a100", SMs: 108, MemoryGB: 40},
			{Name: "a30", SMs: 80, MemoryGB: 24},
			{Name: "a10", SMs: 60, MemoryGB: 24},
		},
		Tenants: []FleetTenantPlan{
			{Name: "t0", App: "vgg11", Quota: 0.3, ThinkMS: 2},
			{Name: "t1", App: "resnet50", Quota: 0.3, ThinkMS: 2, SLOTargetMS: 120},
			{Name: "t2", App: "resnet101", Quota: 0.3, ThinkMS: 2},
			{Name: "t3", App: "bert", Quota: 0.3, ThinkMS: 2, SLOTargetMS: 200},
		},
		HorizonMS:  60,
		Migrations: []FleetMigrationPlan{{AtMS: 20, Tenant: "t0", Target: 1}},
		Rebalance:  true,
	}
}

func TestFleetRoute(t *testing.T) {
	p := New()
	req := FleetRouteRequest{
		Devices: []FleetDevice{{SMs: 108}, {SMs: 108}},
		Tenants: []FleetTenantPlan{
			{Name: "a", App: "vgg11", Quota: 0.4},
			{Name: "b", App: "resnet50", Quota: 0.4},
			{Name: "c", App: "resnet50", Quota: 0.9}, // nothing fits
		},
	}
	var reply FleetRouteReply
	if err := p.FleetRoute(req, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Assignments) != 3 {
		t.Fatalf("assignments = %d, want 3", len(reply.Assignments))
	}
	// Least-loaded spreads the first two across the pool.
	if reply.Assignments[0].Device != 0 || reply.Assignments[1].Device != 1 {
		t.Errorf("placement %v, want devices 0 and 1", reply.Assignments[:2])
	}
	rej := reply.Assignments[2]
	if rej.Device != -1 || rej.Reason == "" {
		t.Errorf("over-quota tenant not rejected: %+v", rej)
	}
	if len(reply.Devices) != 2 {
		t.Fatalf("device loads = %d, want 2", len(reply.Devices))
	}
	if reply.Devices[0].QuotaSubscribed != 0.4 {
		t.Errorf("device 0 subscription %g, want 0.4", reply.Devices[0].QuotaSubscribed)
	}
}

func TestFleetPlan(t *testing.T) {
	p := New()
	var reply FleetPlanReply
	if err := p.FleetPlan(fleetPlanRequest(), &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Violations) != 0 {
		t.Fatalf("violations: %v", reply.Violations)
	}
	if reply.Stats.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if reply.Stats.MigrationsCompleted == 0 {
		t.Error("scheduled migration never drained")
	}
	if reply.Digest == "" {
		t.Error("no determinism digest")
	}
	for _, tn := range reply.Tenants {
		if tn.Completed == 0 {
			t.Errorf("tenant %s completed nothing", tn.Name)
		}
	}
	// Same request, same digest.
	var again FleetPlanReply
	if err := p.FleetPlan(fleetPlanRequest(), &again); err != nil {
		t.Fatal(err)
	}
	if again.Digest != reply.Digest {
		t.Fatalf("digest not reproducible: %s vs %s", again.Digest, reply.Digest)
	}
}

func TestFleetMigrateRequiresMigrations(t *testing.T) {
	p := New()
	req := fleetPlanRequest()
	req.Migrations = nil
	var reply FleetPlanReply
	err := p.FleetMigrate(req, &reply)
	if err == nil || !strings.Contains(err.Error(), "at least one migration") {
		t.Fatalf("want migration-required error, got %v", err)
	}
	req = fleetPlanRequest()
	if err := p.FleetMigrate(req, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Stats.Migrations == 0 {
		t.Error("no migration recorded")
	}
}

func TestServeFleet(t *testing.T) {
	p := New()
	// 404 until a fleet plan ran.
	rec := httptest.NewRecorder()
	p.ServeFleet(rec, nil)
	if rec.Code != 404 {
		t.Fatalf("fleet endpoint before any plan: code %d, want 404", rec.Code)
	}

	var reply FleetPlanReply
	if err := p.FleetPlan(fleetPlanRequest(), &reply); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	p.ServeFleet(rec, nil)
	if rec.Code != 200 {
		t.Fatalf("fleet endpoint: code %d, want 200", rec.Code)
	}
	var body struct {
		Devices []struct {
			Device int     `json:"Device"`
			SMs    int     `json:"SMs"`
			Quota  float64 `json:"QuotaSubscribed"`
		} `json:"devices"`
		Tenants []struct {
			Name   string `json:"Name"`
			Device int    `json:"Device"`
		} `json:"tenants"`
		Digest string `json:"digest"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("fleet endpoint JSON: %v", err)
	}
	if len(body.Devices) != 3 {
		t.Errorf("devices = %d, want 3", len(body.Devices))
	}
	if len(body.Tenants) != 4 {
		t.Errorf("tenants = %d, want 4", len(body.Tenants))
	}
	if body.Digest != reply.Digest {
		t.Errorf("endpoint digest %s != reply digest %s", body.Digest, reply.Digest)
	}
}

func TestFleetPlanCrashStaysClean(t *testing.T) {
	p := New()
	req := fleetPlanRequest()
	req.DeviceCrashes = []FleetCrashPlan{{AtMS: 20, Device: 2}}
	var reply FleetPlanReply
	if err := p.FleetPlan(req, &reply); err != nil {
		t.Fatalf("crash plan must stay invariant-clean: %v", err)
	}
	if reply.Stats.DeviceCrashes != 1 {
		t.Errorf("device crashes = %d, want 1", reply.Stats.DeviceCrashes)
	}
}
