package planner

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"encoding/json"

	"bless/internal/core"
	"bless/internal/harness"
	"bless/internal/invariant"
	"bless/internal/metrics"
	"bless/internal/obs"
	"bless/internal/serveapi"
	"bless/internal/sim"
)

// The sustained-load serving front end: where Plan answers one what-if
// question per RPC, the Serve* surface keeps a deployment open and decides
// admission per request at line rate.
//
// Intake is sharded: ServeOpen spawns N workers, each owning the admission
// lanes of the tenants hashed to it. A Serve call enqueues a pooled item on
// its tenant's worker and waits; the worker drains whatever accumulated —
// the batching window — and decides the whole batch in one pass under one
// lock acquisition (core.ServeLane.Decide per item, core's batch-admission
// shape). Decisions are pure functions of per-tenant state and the
// client-stamped seq, so any interleaving across tenants — serial, N
// workers, any batching — produces bit-identical per-tenant digests; the
// cross-tenant fold (core.ServeDigest) is an XOR, insensitive to tenant
// order. That is what the serial-vs-concurrent digest gate in CI compares.
//
// Backpressure has two deterministic layers: per-tenant shedding when a
// request's virtual queueing delay behind its lane exceeds the tenant's
// bound (reject-with-retry-after keyed on how far the lane overran —
// overloaded tenants shed their own excess, in-quota tenants never shed),
// and bounded intake queues whose blocking slows producers down without
// influencing any admission decision. Nothing queues unboundedly and no
// decision depends on wall-clock timing.
//
// The steady-state fast path allocates nothing: items and their completion
// channels are pooled, replies are filled in place, and the per-batch lock
// amortizes across the window (BenchmarkServeSteadyState gates allocs/op
// exactly).

// The wire types live in internal/serveapi so RPC clients outside this
// internal tree (cmd/blessload) share them; aliased here to keep the
// planner's RPC surface self-describing.
type (
	// ServeTenant declares one tenant of an open serving deployment.
	ServeTenant = serveapi.ServeTenant
	// ServeOpenRequest opens a serving deployment.
	ServeOpenRequest = serveapi.ServeOpenRequest
	// ServeTenantInfo reports one tenant's derived admission parameters.
	ServeTenantInfo = serveapi.ServeTenantInfo
	// ServeOpenReply reports the opened deployment.
	ServeOpenReply = serveapi.ServeOpenReply
	// ServeRequest is one admission request (per-tenant seq order).
	ServeRequest = serveapi.ServeRequest
	// ServeReply is the admission decision.
	ServeReply = serveapi.ServeReply
	// ServeTenantStats is one tenant's accounting in ServeStatsReply.
	ServeTenantStats = serveapi.ServeTenantStats
	// ServeStatsReply is the open deployment's accounting.
	ServeStatsReply = serveapi.ServeStatsReply
	// ServeCloseReply carries the final stats of the closed deployment.
	ServeCloseReply = serveapi.ServeCloseReply
)

// serveItem is one in-flight admission decision, pooled: the Serve call
// fills tenant+seq, the owning worker fills dec (or err) and signals done.
type serveItem struct {
	t    *serveTenantState
	seq  int
	dec  core.ServeDecision
	err  error
	done chan struct{}
}

// serveTenantState binds a tenant to its lane and intake shard.
type serveTenantState struct {
	name    string
	device  int
	worker  *serveWorker
	lane    *core.ServeLane
	kernels int
	// hold reorders transport-scrambled arrivals: net/rpc serves each call
	// on its own goroutine, so a pipelining client's seq k+1 can reach the
	// worker before seq k. Ahead-of-order items wait here (sorted by seq)
	// until the lane's cursor catches up — decisions still execute in
	// strict per-tenant seq order, so reordering in flight cannot change
	// any decision or digest. Empty in the in-order steady state.
	hold []*serveItem
}

// serveWorker owns a shard of tenant lanes. Everything it touches per batch
// — the lanes, the wait digest, the batch counters — is guarded by mu,
// taken once per batching window.
type serveWorker struct {
	ch chan *serveItem

	mu        sync.Mutex
	wait      metrics.Digest
	decNS     int64
	decisions uint64
	batches   uint64
}

// serveState is one open deployment.
type serveState struct {
	tenants []*serveTenantState
	byName  map[string]*serveTenantState
	workers []*serveWorker
	pool    sync.Pool
	stop    chan struct{}
	wg      sync.WaitGroup
	// inflight tracks Serve calls between enqueue and completion so close
	// can drain before stopping the workers.
	inflight atomic.Int64
	budgetNS int64
	batchMax int
	window   time.Duration

	// trace, when enabled, keeps a bounded ring of recent decision events.
	trace   bool
	traceMu sync.Mutex
	events  []obs.Event

	// cached registry instruments (resolving by name is a map+lock).
	cOffered, cAdmitted, cShed, cBatches *obs.Counter
	hWait, hBatch                        *obs.Histogram
}

const serveTraceRing = 4096

// ServeOpen opens a serving deployment: profiles the tenants, runs the
// §4.2.2 placement admission pass over the pool (the whole tenant set as
// one batch — offered load beyond what places bubble-free is rejected
// here), builds the per-tenant admission lanes, and starts the intake
// workers.
func (p *Planner) ServeOpen(req ServeOpenRequest, reply *ServeOpenReply) error {
	if len(req.Tenants) == 0 {
		return fmt.Errorf("serve: no tenants")
	}
	gpus := req.GPUs
	if gpus <= 0 {
		gpus = 1
	}
	workers := req.Workers
	if workers <= 0 {
		workers = 4
	}
	batchMax := req.BatchMax
	if batchMax <= 0 {
		batchMax = 64
	}
	cfg := sim.DefaultConfig()
	if req.GPUSMs > 0 {
		cfg.SMs = req.GPUSMs
	}

	// Placement admission: every tenant must place bubble-free on the pool
	// before the deployment opens — quota headroom is established here, and
	// per-request shedding keys on the per-tenant lanes it implies.
	apps := make([]core.PlacementApp, len(req.Tenants))
	lanes := make([]*core.ServeLane, len(req.Tenants))
	kernels := make([]int, len(req.Tenants))
	for i, t := range req.Tenants {
		if t.Name == "" {
			return fmt.Errorf("serve: tenant %d needs a name", i)
		}
		if t.RateRPS <= 0 {
			return fmt.Errorf("serve: tenant %q needs a positive RateRPS", t.Name)
		}
		prof, err := harness.ProfileFor(t.App, cfg)
		if err != nil {
			return fmt.Errorf("serve: tenant %q: %w", t.Name, err)
		}
		apps[i] = core.PlacementApp{Name: t.Name, Profile: prof, Quota: t.Quota}
		service := prof.IsoAtQuota(t.Quota)
		interval := sim.Time(float64(sim.Second) / t.RateRPS)
		bound := ms(t.BoundMS)
		if bound <= 0 {
			bound = 4 * service
		}
		lane, err := core.NewServeLane(interval, service, bound)
		if err != nil {
			return fmt.Errorf("serve: tenant %q: %w", t.Name, err)
		}
		// Seed by name so same-parameter tenants cannot cancel in the fold.
		lane.SeedDigest(t.Name)
		lanes[i] = lane
		kernels[i] = prof.NumKernels()
	}
	pool := make([]core.PlacementGPU, gpus)
	for i := range pool {
		pool[i] = core.PlacementGPU{ID: fmt.Sprintf("gpu%d", i), Config: cfg}
	}
	placement, err := core.Place(apps, pool, core.PlacementOptions{})
	if err != nil {
		p.reg.Counter("serve/open_rejected_total").Inc()
		return fmt.Errorf("serve: placement admission failed: %w", err)
	}

	st := &serveState{
		byName:    make(map[string]*serveTenantState, len(req.Tenants)),
		workers:   make([]*serveWorker, workers),
		stop:      make(chan struct{}),
		batchMax:  batchMax,
		trace:     req.Trace,
		cOffered:  p.reg.Counter("serve/offered_total"),
		cAdmitted: p.reg.Counter("serve/admitted_total"),
		cShed:     p.reg.Counter("serve/shed_total"),
		cBatches:  p.reg.Counter("serve/batches_total"),
		hWait:     p.reg.Histogram("serve/wait_virtual_ns"),
		hBatch:    p.reg.Histogram("serve/batch_size"),
	}
	st.pool.New = func() any { return &serveItem{done: make(chan struct{}, 1)} }
	for i := range st.workers {
		st.workers[i] = &serveWorker{ch: make(chan *serveItem, 4*batchMax)}
	}
	var kernelSum, budget int64
	for i, t := range req.Tenants {
		if _, dup := st.byName[t.Name]; dup {
			return fmt.Errorf("serve: duplicate tenant %q", t.Name)
		}
		h := fnv.New32a()
		h.Write([]byte(t.Name))
		w := st.workers[int(h.Sum32())%workers]
		ts := &serveTenantState{
			name:    t.Name,
			device:  placement[i],
			worker:  w,
			lane:    lanes[i],
			kernels: kernels[i],
		}
		st.tenants = append(st.tenants, ts)
		st.byName[t.Name] = ts
		kernelSum += int64(kernels[i])
		reply.Tenants = append(reply.Tenants, ServeTenantInfo{
			Name:       t.Name,
			Device:     placement[i],
			Worker:     workerIndex(st.workers, w),
			IntervalNS: int64(lanes[i].Interval),
			ServiceNS:  int64(lanes[i].Service),
			BoundNS:    int64(lanes[i].Bound),
		})
	}
	// §6.9 per-request budget: SchedPerKernel x mean kernels per request.
	budget = 6700 * kernelSum / int64(len(req.Tenants))
	st.budgetNS = budget

	p.mu.Lock()
	if p.serve.Load() != nil {
		p.mu.Unlock()
		return fmt.Errorf("serve: deployment already open (call ServeClose first)")
	}
	for _, w := range st.workers {
		st.wg.Add(1)
		go st.run(w)
	}
	p.serve.Store(st)
	p.mu.Unlock()

	reply.Workers = workers
	reply.GPUs = gpus
	p.reg.Counter("serve/opens_total").Inc()
	return nil
}

func workerIndex(ws []*serveWorker, w *serveWorker) int {
	for i, x := range ws {
		if x == w {
			return i
		}
	}
	return -1
}

// run is one intake worker: block for the first item, drain the batching
// window, decide the whole batch in one pass under one lock acquisition,
// then signal every waiter. Ahead-of-order items park on their tenant's
// hold list and are decided the moment the seq cursor reaches them.
func (st *serveState) run(w *serveWorker) {
	defer st.wg.Done()
	batch := make([]*serveItem, 0, st.batchMax)
	ready := make([]*serveItem, 0, st.batchMax)
	for {
		var first *serveItem
		select {
		case first = <-w.ch:
		case <-st.stop:
			st.flush(w)
			return
		}
		batch = append(batch[:0], first)
		for len(batch) < st.batchMax {
			select {
			case it := <-w.ch:
				batch = append(batch, it)
			default:
				goto decide
			}
		}
	decide:
		ready = ready[:0]
		t0 := time.Now()
		w.mu.Lock()
		for _, it := range batch {
			t := it.t
			switch next := t.lane.Next(); {
			case it.seq == next:
				ready = w.decideChain(it, ready)
			case it.seq > next:
				t.parkHold(it)
			default:
				// Stale seq: already decided once — a client bug, surfaced
				// as an error, never a second decision.
				it.err = fmt.Errorf("serve: tenant %q seq %d already decided (cursor at %d)", t.name, it.seq, next)
				ready = append(ready, it)
			}
		}
		dt := time.Since(t0)
		w.decNS += int64(dt)
		w.decisions += uint64(len(ready))
		w.batches++
		w.mu.Unlock()

		st.cOffered.Add(int64(len(batch)))
		st.cBatches.Inc()
		st.hBatch.Observe(sim.Time(len(batch)))
		var admitted, decided int64
		for _, it := range ready {
			if it.err != nil {
				continue
			}
			decided++
			if it.dec.Admitted {
				admitted++
				st.hWait.Observe(it.dec.Wait)
			}
		}
		st.cAdmitted.Add(admitted)
		st.cShed.Add(decided - admitted)
		if st.trace {
			st.recordEvents(ready)
		}
		for i, it := range ready {
			it.done <- struct{}{}
			ready[i] = nil
		}
		for i := range batch {
			batch[i] = nil
		}
	}
}

// flush fails everything still queued or parked on this worker at close:
// items whose predecessors never arrived (an abandoned client pipeline)
// would otherwise block their Serve calls forever.
func (st *serveState) flush(w *serveWorker) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		select {
		case it := <-w.ch:
			it.err = errServeClosed
			it.done <- struct{}{}
		default:
			goto holds
		}
	}
holds:
	for _, t := range st.tenants {
		if t.worker != w {
			continue
		}
		for i, it := range t.hold {
			it.err = errServeClosed
			it.done <- struct{}{}
			t.hold[i] = nil
		}
		t.hold = t.hold[:0]
	}
}

// decideChain decides it and every parked successor it unblocks, appending
// the decided items to ready. Caller holds w.mu and has checked it.seq is
// the lane's cursor.
func (w *serveWorker) decideChain(it *serveItem, ready []*serveItem) []*serveItem {
	t := it.t
	for {
		t.lane.Decide(it.seq, &it.dec)
		if it.dec.Admitted {
			w.wait.Observe(it.dec.Wait)
		}
		ready = append(ready, it)
		if len(t.hold) == 0 || t.hold[0].seq != t.lane.Next() {
			return ready
		}
		it = t.hold[0]
		copy(t.hold, t.hold[1:])
		t.hold[len(t.hold)-1] = nil
		t.hold = t.hold[:len(t.hold)-1]
	}
}

// parkHold inserts it into the tenant's sorted hold list.
func (t *serveTenantState) parkHold(it *serveItem) {
	i := len(t.hold)
	t.hold = append(t.hold, it)
	for i > 0 && t.hold[i-1].seq > it.seq {
		t.hold[i] = t.hold[i-1]
		i--
	}
	t.hold[i] = it
}

// recordEvents appends the batch's decisions to the bounded trace ring.
func (st *serveState) recordEvents(batch []*serveItem) {
	st.traceMu.Lock()
	defer st.traceMu.Unlock()
	st.events = append(st.events, obs.Event{
		Kind:       obs.KindServeBatch,
		Considered: len(batch),
	})
	for _, it := range batch {
		ev := obs.Event{
			Kind:   obs.KindServeIntake,
			Client: it.t.name,
			Seq:    it.seq,
			At:     it.dec.Arrive,
			Actual: it.dec.Wait,
			Reason: "admit",
		}
		if !it.dec.Admitted {
			ev.Kind = obs.KindServeShed
			ev.Reason = "shed"
			ev.Predicted = it.dec.RetryAfter
		}
		st.events = append(st.events, ev)
	}
	if n := len(st.events); n > serveTraceRing {
		st.events = append(st.events[:0], st.events[n-serveTraceRing:]...)
	}
}

// Serve decides one request. The fast path allocates nothing: the item and
// its completion channel come from the pool, the reply is filled in place,
// and backpressure is the bounded intake queue blocking — never a
// timing-dependent decision.
func (p *Planner) Serve(req ServeRequest, reply *ServeReply) error {
	st := p.serve.Load()
	if st == nil {
		return errServeClosed
	}
	t := st.byName[req.Tenant]
	if t == nil {
		return fmt.Errorf("serve: unknown tenant %q", req.Tenant)
	}
	it := st.pool.Get().(*serveItem)
	it.t = t
	it.seq = req.Seq
	it.err = nil
	st.inflight.Add(1)
	t.worker.ch <- it
	<-it.done
	err := it.err
	reply.Seq = it.dec.Seq
	reply.Admitted = it.dec.Admitted
	reply.WaitNS = int64(it.dec.Wait)
	reply.ServiceNS = int64(it.dec.Service)
	reply.RetryAfterNS = int64(it.dec.RetryAfter)
	it.t = nil
	st.pool.Put(it)
	st.inflight.Add(-1)
	return err
}

var errServeClosed = fmt.Errorf("serve: no open deployment (call ServeOpen first)")

// serveDrainDeadline bounds how long ServeClose waits for in-flight requests
// before flushing parked items with an error (overridden in tests).
var serveDrainDeadline = 5 * time.Second

// ServeStats reports the open deployment's accounting without disturbing
// intake.
func (p *Planner) ServeStats(_ struct{}, reply *ServeStatsReply) error {
	st := p.serve.Load()
	if st == nil {
		return errServeClosed
	}
	st.fill(reply, true)
	return nil
}

// fill computes the stats reply from the state's workers and lanes.
func (st *serveState) fill(reply *ServeStatsReply, open bool) {
	reply.Open = open
	var wait metrics.Digest
	var decNS int64
	var decisions, batches uint64
	for _, w := range st.workers {
		w.mu.Lock()
		wait.Merge(&w.wait)
		decNS += w.decNS
		decisions += w.decisions
		batches += w.batches
		w.mu.Unlock()
	}
	lanes := make([]*core.ServeLane, len(st.tenants))
	checks := make([]invariant.ServeLaneStats, len(st.tenants))
	for i, t := range st.tenants {
		// Lane reads are safe under the owner worker's mu.
		t.worker.mu.Lock()
		lanes[i] = t.lane
		offered := t.lane.Offered()
		reply.PerTenant = append(reply.PerTenant, ServeTenantStats{
			Name:       t.name,
			Offered:    offered,
			Admitted:   t.lane.Admitted,
			Shed:       t.lane.Shed,
			Digest:     fmt.Sprintf("%016x", t.lane.Digest()),
			HeadroomNS: int64(t.lane.Headroom()),
		})
		checks[i] = invariant.ServeLaneStats{
			Tenant:   t.name,
			Interval: t.lane.Interval,
			Service:  t.lane.Service,
			Bound:    t.lane.Bound,
			Offered:  offered,
			Admitted: t.lane.Admitted,
			Shed:     t.lane.Shed,
			NextSeq:  int(offered),
		}
		reply.Offered += offered
		reply.Admitted += t.lane.Admitted
		reply.Shed += t.lane.Shed
		t.worker.mu.Unlock()
	}
	reply.Batches = batches
	if batches > 0 {
		reply.BatchMeanSize = float64(decisions) / float64(batches)
	}
	reply.Digest = fmt.Sprintf("%016x", core.ServeDigest(lanes))
	sum := wait.Summary()
	reply.WaitMeanNS = int64(sum.Mean)
	reply.WaitP50NS = int64(sum.P50)
	reply.WaitP99NS = int64(sum.P99)
	if decisions > 0 {
		reply.DecisionMeanNS = float64(decNS) / float64(decisions)
	}
	reply.BudgetNS = st.budgetNS
	reply.WithinBudget = reply.DecisionMeanNS <= float64(st.budgetNS)
	for _, v := range invariant.CheckServe(checks) {
		reply.Violations = append(reply.Violations, v.Msg)
	}
}

// ServeClose drains in-flight requests, stops the workers, and returns the
// final stats.
func (p *Planner) ServeClose(_ struct{}, reply *ServeCloseReply) error {
	p.mu.Lock()
	st := p.serve.Load()
	if st == nil {
		p.mu.Unlock()
		return errServeClosed
	}
	p.serve.Store(nil)
	p.mu.Unlock()
	// New Serve calls now reject; wait out the ones already past the gate.
	// A bounded wait: a client that abandoned a pipeline mid-stream can
	// leave a seq gap whose held successors never decide — after the
	// deadline the workers flush everything still parked with an error.
	deadline := time.Now().Add(serveDrainDeadline)
	for st.inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Microsecond)
	}
	close(st.stop)
	st.wg.Wait()
	for st.inflight.Load() > 0 {
		time.Sleep(50 * time.Microsecond)
	}
	st.fill(&reply.Stats, false)
	p.reg.Counter("serve/closes_total").Inc()
	return nil
}

// ServeServe handles GET /debug/bless/serve: the open deployment's live
// stats (and, when opened with Trace, the recent decision-event ring) as
// JSON. 404 when no deployment is open.
func (p *Planner) ServeServe(w http.ResponseWriter, _ *http.Request) {
	st := p.serve.Load()
	if st == nil {
		http.Error(w, "no serving deployment open; call Planner.ServeOpen first", http.StatusNotFound)
		return
	}
	var stats ServeStatsReply
	st.fill(&stats, true)
	type event struct {
		Kind   string `json:"kind"`
		Tenant string `json:"tenant,omitempty"`
		Seq    int    `json:"seq"`
		WaitNS int64  `json:"wait_ns,omitempty"`
		Batch  int    `json:"batch,omitempty"`
	}
	var events []event
	if st.trace {
		st.traceMu.Lock()
		for _, ev := range st.events {
			events = append(events, event{
				Kind:   ev.Kind.String(),
				Tenant: ev.Client,
				Seq:    ev.Seq,
				WaitNS: int64(ev.Actual),
				Batch:  ev.Considered,
			})
		}
		st.traceMu.Unlock()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"stats": stats, "events": events})
}

// RPC forwarding (see PlanService).

// ServeOpen forwards to Planner.ServeOpen.
func (s *PlanService) ServeOpen(req ServeOpenRequest, reply *ServeOpenReply) error {
	return s.p.ServeOpen(req, reply)
}

// Serve forwards to Planner.Serve.
func (s *PlanService) Serve(req ServeRequest, reply *ServeReply) error { return s.p.Serve(req, reply) }

// ServeStats forwards to Planner.ServeStats.
func (s *PlanService) ServeStats(req struct{}, reply *ServeStatsReply) error {
	return s.p.ServeStats(req, reply)
}

// ServeClose forwards to Planner.ServeClose.
func (s *PlanService) ServeClose(req struct{}, reply *ServeCloseReply) error {
	return s.p.ServeClose(req, reply)
}
