package planner

// Fault-plan plumbing and the Admit RPC: PlanRequest may carry a FaultConfig
// (seeded kernel/context fault rates, stall windows, client churn) and
// Planner.Admit answers the operator question behind dynamic admission —
// "can this tenant join the running deployment without breaking the
// incumbents' quotas?" — by simulating the join mid-run and inspecting the
// invariant report.

import (
	"fmt"

	"bless/internal/chaos"
	"bless/internal/harness"
	"bless/internal/invariant"
	"bless/internal/sim"
	"bless/internal/trace"
)

// StallConfig is one transient device-stall window.
type StallConfig struct {
	AtMS  float64
	DurMS float64
}

// ChurnEvent removes a deployed client (by slot index) at a simulated instant.
type ChurnEvent struct {
	Client int
	AtMS   float64
}

// JoinEvent admits a new tenant mid-run.
type JoinEvent struct {
	AtMS   float64
	Client ClientPlan
}

// FaultConfig is the JSON/gob-friendly fault and churn plan of a PlanRequest.
type FaultConfig struct {
	// Seed keys every hashed fault decision.
	Seed int64
	// KernelFaultRate and CtxFaultRate are injection probabilities; see
	// chaos.Plan.
	KernelFaultRate float64
	CtxFaultRate    float64
	// MaxFaultsPerKernel bounds consecutive faults per kernel (default 2).
	MaxFaultsPerKernel int
	// DeadlineMS, when positive, sets the scheduler's per-request deadline.
	DeadlineMS float64
	// Stalls, Crashes, Leaves and Joins schedule device stalls and client
	// churn.
	Stalls  []StallConfig
	Crashes []ChurnEvent
	Leaves  []ChurnEvent
	Joins   []JoinEvent
}

// ChaosOutcome summarizes a plan's degraded-mode activity in the reply.
type ChaosOutcome struct {
	KernelFaults   int64
	CtxFaults      int64
	StallDelays    int64
	Retries        int64
	RetryAborts    int64
	DeadlineAborts int64
	Crashes        int
	Leaves         int
	Joins          int
}

// ms converts a millisecond float to simulated time.
func ms(v float64) sim.Time { return sim.Time(v * float64(sim.Millisecond)) }

// specFor converts one ClientPlan to a harness spec.
func specFor(c ClientPlan) (harness.ClientSpec, error) {
	spec := harness.ClientSpec{
		App:       c.App,
		Quota:     c.Quota,
		SLOTarget: ms(c.SLOTargetMS),
	}
	switch c.Workload {
	case "", "closed":
		spec.Pattern = trace.Closed(ms(c.ThinkMS), c.Requests)
	case "burst":
		n := c.Requests
		if n <= 0 {
			n = 1
		}
		spec.Pattern = trace.Burst(n, 0)
	default:
		return spec, fmt.Errorf("planner: unknown workload %q", c.Workload)
	}
	return spec, nil
}

// faultPlanOf converts a FaultConfig to the harness representation.
func faultPlanOf(fc *FaultConfig) (*harness.FaultPlan, error) {
	if fc == nil {
		return nil, nil
	}
	fp := &harness.FaultPlan{
		Plan: chaos.Plan{
			Seed:               fc.Seed,
			KernelFaultRate:    fc.KernelFaultRate,
			CtxFaultRate:       fc.CtxFaultRate,
			MaxFaultsPerKernel: fc.MaxFaultsPerKernel,
		},
		Deadline: ms(fc.DeadlineMS),
	}
	for _, s := range fc.Stalls {
		fp.Plan.Stalls = append(fp.Plan.Stalls, chaos.Stall{At: ms(s.AtMS), Dur: ms(s.DurMS)})
	}
	for _, e := range fc.Crashes {
		fp.Plan.Crashes = append(fp.Plan.Crashes, chaos.ClientEvent{Client: e.Client, At: ms(e.AtMS)})
	}
	for _, e := range fc.Leaves {
		fp.Plan.Leaves = append(fp.Plan.Leaves, chaos.ClientEvent{Client: e.Client, At: ms(e.AtMS)})
	}
	for _, j := range fc.Joins {
		spec, err := specFor(j.Client)
		if err != nil {
			return nil, err
		}
		fp.Joins = append(fp.Joins, harness.Join{At: ms(j.AtMS), Spec: spec})
	}
	return fp, nil
}

// chaosOutcome converts a harness chaos report for the reply.
func chaosOutcome(rep *harness.ChaosReport) *ChaosOutcome {
	if rep == nil {
		return nil
	}
	return &ChaosOutcome{
		KernelFaults:   rep.Injector.KernelFaults,
		CtxFaults:      rep.Injector.CtxFaults,
		StallDelays:    rep.Injector.StallDelays,
		Retries:        rep.Runtime.Retries,
		RetryAborts:    rep.Runtime.RetryAborts,
		DeadlineAborts: rep.Runtime.DeadlineAborts,
		Crashes:        rep.Crashes,
		Leaves:         rep.Leaves,
		Joins:          rep.Joins,
	}
}

// AdmitRequest asks whether a new tenant can join a running deployment.
type AdmitRequest struct {
	// Base is the running deployment (System, Clients, HorizonMS, GPUSMs).
	Base PlanRequest
	// Candidate is the tenant that wants to join.
	Candidate ClientPlan
	// JoinAtMS is the admission instant (default: half the horizon).
	JoinAtMS float64
}

// AdmitReply is the admission verdict with the projected outcome.
type AdmitReply struct {
	// Admit reports whether the join is safe; Reason explains a rejection.
	Admit  bool
	Reason string
	// Outcome is the projected deployment including the candidate (the
	// candidate is the last PerClient entry when the join landed).
	Outcome PlanReply
}

// Admit forwards to Planner.Admit.
func (s *PlanService) Admit(req AdmitRequest, reply *AdmitReply) error { return s.p.Admit(req, reply) }

// Admit simulates the base deployment with the candidate joining mid-run and
// rejects the admission if the scheduler cannot place it (resources) or if an
// incumbent's quota attainment breaks after re-provisioning.
func (p *Planner) Admit(req AdmitRequest, reply *AdmitReply) error {
	base := req.Base
	if len(base.Clients) == 0 {
		p.reg.Counter("admit_errors_total").Inc()
		return fmt.Errorf("planner: no incumbent clients in admission request")
	}
	joinAt := req.JoinAtMS
	if joinAt <= 0 {
		h := base.HorizonMS
		if h <= 0 {
			h = 1000
		}
		joinAt = h / 2
	}
	if base.Faults == nil {
		base.Faults = &FaultConfig{}
	} else {
		fc := *base.Faults
		base.Faults = &fc
	}
	base.Faults.Joins = append(append([]JoinEvent(nil), base.Faults.Joins...),
		JoinEvent{AtMS: joinAt, Client: req.Candidate})

	// Quota breaches must surface in the report without failing the run: the
	// run is the admission probe.
	res, err := p.plan(base, &invariant.Options{Enforce: invariant.Universal(), FailOnViolation: true}, &reply.Outcome)
	if err != nil {
		p.reg.Counter("admit_errors_total").Inc()
		return err
	}
	p.reg.Counter("admissions_total").Inc()

	if res.Chaos == nil || res.Chaos.Joins == 0 {
		reply.Admit = false
		reply.Reason = fmt.Sprintf("scheduler rejected the admission of %q (insufficient resources)", req.Candidate.App)
		p.reg.Counter("admissions_rejected_total").Inc()
		return nil
	}
	if rep := res.Invariants; rep != nil {
		for i, cr := range rep.Clients {
			if i < len(base.Clients) && cr.Active && cr.Violated {
				reply.Admit = false
				reply.Reason = fmt.Sprintf("incumbent %q would attain only %.0f%% of its quota share after the join",
					cr.Client.Name, cr.Share*100)
				p.reg.Counter("admissions_rejected_total").Inc()
				return nil
			}
		}
	}
	reply.Admit = true
	return nil
}
