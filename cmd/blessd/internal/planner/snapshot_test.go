package planner

import (
	"net/http/httptest"
	"strings"
	"testing"

	"bless/internal/snapshot"
)

// TestSnapshotRestoreRoundTrip is the RPC-level restore proof: cut a
// snapshot mid-migration, restore it at a different shard count, and require
// the completed run to land on the same digest FleetPlan reports for the
// uninterrupted scenario.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := New()
	req := fleetPlanRequest()

	var ref FleetPlanReply
	if err := p.FleetPlan(req, &ref); err != nil {
		t.Fatalf("reference FleetPlan: %v", err)
	}

	var snapReply SnapshotReply
	// Cut just past the migration trigger (20 ms): the drain is in flight.
	if err := p.Snapshot(SnapshotRequest{Plan: req, AtMS: 20.05}, &snapReply); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if len(snapReply.Snapshot) == 0 || snapReply.StateDigest == "" {
		t.Fatalf("empty snapshot reply: %+v bytes=%d", snapReply, len(snapReply.Snapshot))
	}
	if snapReply.Devices == 0 || snapReply.Tenants != len(req.Tenants) {
		t.Fatalf("snapshot summary wrong: %d devices, %d tenants", snapReply.Devices, snapReply.Tenants)
	}
	snap, err := snapshot.Decode(snapReply.Snapshot)
	if err != nil {
		t.Fatalf("decode RPC snapshot: %v", err)
	}
	if snap.Scenario.Repro != "Planner.Snapshot" {
		t.Fatalf("snapshot repro = %q", snap.Scenario.Repro)
	}

	var restored RestoreReply
	if err := p.Restore(RestoreRequest{Snapshot: snapReply.Snapshot, Shards: 2}, &restored); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.Digest != ref.Digest {
		t.Fatalf("restored digest %s != uninterrupted %s", restored.Digest, ref.Digest)
	}
	if restored.Stats != ref.Stats {
		t.Fatalf("restored stats diverge:\n got %+v\nwant %+v", restored.Stats, ref.Stats)
	}
	if restored.BarrierAtMS != snapReply.BarrierAtMS || restored.StateDigest != snapReply.StateDigest {
		t.Fatalf("restore provenance %v/%s != snapshot %v/%s",
			restored.BarrierAtMS, restored.StateDigest, snapReply.BarrierAtMS, snapReply.StateDigest)
	}
	if len(restored.Violations) != 0 {
		t.Fatalf("violations after restore: %v", restored.Violations)
	}
}

func TestSnapshotDefaultBarrier(t *testing.T) {
	p := New()
	req := fleetPlanRequest()
	var reply SnapshotReply
	if err := p.Snapshot(SnapshotRequest{Plan: req}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.BarrierAtMS != req.HorizonMS/2 {
		t.Fatalf("default barrier %v ms, want half the horizon (%v ms)", reply.BarrierAtMS, req.HorizonMS/2)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	p := New()
	var reply RestoreReply
	if err := p.Restore(RestoreRequest{}, &reply); err == nil {
		t.Fatal("empty restore request accepted")
	}
	if err := p.Restore(RestoreRequest{Snapshot: []byte("not a snapshot")}, &reply); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

// TestServeSnapshot pins the debug endpoint: 404 before any snapshot, then
// the exact raw bytes with the state digest advertised in the header.
func TestServeSnapshot(t *testing.T) {
	p := New()
	rec := httptest.NewRecorder()
	p.ServeSnapshot(rec, nil)
	if rec.Code != 404 {
		t.Fatalf("status %d before any snapshot, want 404", rec.Code)
	}

	var snapReply SnapshotReply
	if err := p.Snapshot(SnapshotRequest{Plan: fleetPlanRequest(), AtMS: 10}, &snapReply); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	p.ServeSnapshot(rec, nil)
	if rec.Code != 200 {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	if got := rec.Body.Bytes(); string(got) != string(snapReply.Snapshot) {
		t.Fatalf("served %d bytes differ from the RPC's %d", len(got), len(snapReply.Snapshot))
	}
	if !strings.HasPrefix(rec.Body.String(), snapshot.Magic) {
		t.Fatal("served body does not start with the snapshot magic")
	}
	if got := rec.Header().Get("X-Bless-State-Digest"); got != snapReply.StateDigest {
		t.Fatalf("digest header %q != reply digest %q", got, snapReply.StateDigest)
	}
}
