package planner

import (
	"encoding/json"
	"fmt"
	"net/http"

	"bless/internal/chaos"
	"bless/internal/fleet"
	"bless/internal/harness"
	"bless/internal/model"
	"bless/internal/profiler"
	"bless/internal/sim"
)

// Fleet RPCs: the blessd front-end to the internal/fleet control plane.
//
//   - Planner.FleetRoute answers the pure placement question — which device
//     would each tenant land on, under a policy, with no simulation run.
//   - Planner.FleetPlan simulates a whole fleet scenario: heterogeneous
//     pool, load-aware routing, scheduled live migrations, device crashes,
//     rebalancing and autoscaling, with the fleet invariant checker
//     enforced and the determinism digest reported.
//   - Planner.FleetMigrate is FleetPlan specialized to migration what-ifs:
//     it requires at least one scheduled migration.
//
// The latest fleet state (device loads, placements, control-plane counters,
// digest) is served on GET /debug/bless/fleet.

// FleetDevice describes one pool device in a fleet request.
type FleetDevice struct {
	// Name labels the device (optional).
	Name string
	// SMs is the device's SM count — its speed class (default 108).
	SMs int
	// MemoryGB is the device memory (default 40).
	MemoryGB float64
}

func (d FleetDevice) spec() fleet.DeviceSpec {
	sms := d.SMs
	if sms <= 0 {
		sms = 108
	}
	mem := int64(d.MemoryGB * float64(1<<30))
	if mem <= 0 {
		mem = 40 << 30
	}
	return fleet.DeviceClass(d.Name, sms, mem)
}

// FleetTenantPlan describes one tenant in a fleet request.
type FleetTenantPlan struct {
	// Name uniquely identifies the tenant (defaults to "t<i>").
	Name string
	// App is a built-in application name (bless.Models).
	App string
	// Quota is the provisioned GPU fraction in (0, 1].
	Quota float64
	// SLOTargetMS optionally sets the pace/SLO target.
	SLOTargetMS float64
	// ThinkMS is the closed-loop think time (FleetPlan only).
	ThinkMS float64
	// Requests bounds the tenant's submissions (0 = until the horizon).
	Requests int
}

// FleetRouteRequest asks where a tenant set would be placed.
type FleetRouteRequest struct {
	Devices []FleetDevice
	Tenants []FleetTenantPlan
	// Policy is "least-loaded" (default), "quota-headroom" or
	// "slo-attainment".
	Policy string
}

// FleetAssignment is one tenant's routing decision.
type FleetAssignment struct {
	Tenant string
	Device int    // -1 when rejected
	Reason string // rejection reason, empty on success
}

// FleetRouteReply is the placement answer.
type FleetRouteReply struct {
	Assignments []FleetAssignment
	// Devices reports each device's resulting subscription.
	Devices []fleet.DeviceLoad
}

// FleetMigrationPlan schedules one live migration in a fleet plan.
type FleetMigrationPlan struct {
	AtMS   float64
	Tenant string
	Target int
}

// FleetCrashPlan schedules one device crash in a fleet plan.
type FleetCrashPlan struct {
	AtMS   float64
	Device int
}

// FleetPlanRequest describes a fleet scenario to simulate.
type FleetPlanRequest struct {
	Seed      int64
	Devices   []FleetDevice
	Tenants   []FleetTenantPlan
	HorizonMS float64 // default 100
	Policy    string
	// Migrations are explicit live-migration triggers.
	Migrations []FleetMigrationPlan
	// DeviceCrashes kill pool devices mid-run.
	DeviceCrashes []FleetCrashPlan
	// Rebalance enables the periodic rebalancer; Autoscale additionally
	// lets the pool grow/shrink (up to MaxDevices, default +4).
	Rebalance  bool
	Autoscale  bool
	MaxDevices int
}

// FleetTenantOutcome is one tenant's projection.
type FleetTenantOutcome struct {
	Name          string
	App           string
	Quota         float64
	Device        int
	Completed     int
	Failed        int
	MeanLatencyMS float64
	P99LatencyMS  float64
	Migrations    int
	Evicted       bool
}

// FleetPlanReply is the simulated fleet outcome.
type FleetPlanReply struct {
	Tenants []FleetTenantOutcome
	Devices []fleet.DeviceLoad
	Stats   fleet.Stats
	// Digest is the timing-free completion digest; bit-identical across
	// runs of one request.
	Digest string
	// Violations lists fleet invariant breaches (the plan fails on any).
	Violations []string
	ElapsedMS  float64
}

// FleetRoute forwards to Planner.FleetRoute.
func (s *PlanService) FleetRoute(req FleetRouteRequest, reply *FleetRouteReply) error {
	return s.p.FleetRoute(req, reply)
}

// FleetPlan forwards to Planner.FleetPlan.
func (s *PlanService) FleetPlan(req FleetPlanRequest, reply *FleetPlanReply) error {
	return s.p.FleetPlan(req, reply)
}

// FleetMigrate forwards to Planner.FleetMigrate.
func (s *PlanService) FleetMigrate(req FleetPlanRequest, reply *FleetPlanReply) error {
	return s.p.FleetMigrate(req, reply)
}

func fleetDevices(reqDevs []FleetDevice) ([]fleet.DeviceSpec, error) {
	if len(reqDevs) == 0 {
		return nil, fmt.Errorf("planner: fleet request has no devices")
	}
	specs := make([]fleet.DeviceSpec, len(reqDevs))
	for i, d := range reqDevs {
		specs[i] = d.spec()
		if specs[i].Name == "" {
			specs[i].Name = fmt.Sprintf("gpu%d", i)
		}
	}
	return specs, nil
}

func fleetPolicy(s string) fleet.Policy {
	if s == "" {
		return fleet.PolicyLeastLoaded
	}
	return fleet.Policy(s)
}

// FleetRoute answers the placement-only question: tenants are admitted one
// by one against the live pool state (no workload simulated) and the
// resulting assignment and per-device subscription returned. A tenant no
// device fits is reported rejected, not an error.
func (p *Planner) FleetRoute(req FleetRouteRequest, reply *FleetRouteReply) error {
	specs, err := fleetDevices(req.Devices)
	if err != nil {
		p.reg.Counter("plan_errors_total").Inc()
		return err
	}
	f, err := fleet.New(sim.NewEngine(), fleet.Config{
		Devices: specs,
		Policy:  fleetPolicy(req.Policy),
		Profile: fleetProfile,
	})
	if err != nil {
		p.reg.Counter("plan_errors_total").Inc()
		return err
	}
	for i, t := range req.Tenants {
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("t%d", i)
		}
		a := FleetAssignment{Tenant: name, Device: -1}
		err := f.Admit(fleet.TenantSpec{
			Name: name, App: t.App, Quota: t.Quota,
			SLOTarget: ms(t.SLOTargetMS),
		})
		if err != nil {
			a.Reason = err.Error()
		} else {
			for _, tp := range f.Snapshot().Tenants {
				if tp.Name == name {
					a.Device = tp.Device
				}
			}
		}
		reply.Assignments = append(reply.Assignments, a)
	}
	reply.Devices = f.Snapshot().Devices
	p.reg.Counter("plans_total").Inc()
	p.reg.Counter("plans/fleet_route").Inc()
	return nil
}

// fleetProfile resolves device-class profiles through the harness's
// process-wide cache, so repeated fleet RPCs don't re-profile.
func fleetProfile(app string, cfg sim.Config) (*model.App, *profiler.Profile, error) {
	a, err := model.Get(app)
	if err != nil {
		return nil, nil, err
	}
	p, err := harness.ProfileFor(app, cfg)
	if err != nil {
		return nil, nil, err
	}
	return a, p, nil
}

// FleetPlan simulates the fleet scenario and fills the reply. The fleet
// invariant class is enforced: any violation fails the plan. The resulting
// fleet state lands on /debug/bless/fleet.
func (p *Planner) FleetPlan(req FleetPlanRequest, reply *FleetPlanReply) error {
	sc, err := fleetScenarioOf(req, "Planner.FleetPlan")
	if err != nil {
		p.reg.Counter("plan_errors_total").Inc()
		return err
	}
	res, err := harness.RunFleet(sc)
	if err != nil {
		p.reg.Counter("plan_errors_total").Inc()
		return err
	}
	p.reg.Counter("plans/fleet").Inc()
	return p.finishFleetPlan(res, reply)
}

// fleetScenarioOf converts a fleet plan request to the declarative harness
// scenario — shared by FleetPlan, FleetMigrate and the Snapshot RPC. The
// fleet invariant checker is always attached.
func fleetScenarioOf(req FleetPlanRequest, repro string) (harness.FleetScenario, error) {
	specs, err := fleetDevices(req.Devices)
	if err != nil {
		return harness.FleetScenario{}, err
	}
	if len(req.Tenants) == 0 {
		return harness.FleetScenario{}, fmt.Errorf("planner: fleet plan has no tenants")
	}
	horizon := ms(req.HorizonMS)
	if horizon <= 0 {
		horizon = 100 * sim.Millisecond
	}
	sc := harness.FleetScenario{
		Seed:       req.Seed,
		Devices:    specs,
		Horizon:    horizon,
		Policy:     fleetPolicy(req.Policy),
		Invariants: true,
		Repro:      repro,
	}
	for i, t := range req.Tenants {
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("t%d", i)
		}
		sc.Tenants = append(sc.Tenants, harness.FleetTenant{
			Name: name, App: t.App, Quota: t.Quota,
			SLOTarget: ms(t.SLOTargetMS),
			Think:     ms(t.ThinkMS),
			Requests:  t.Requests,
		})
	}
	for _, m := range req.Migrations {
		sc.Migrations = append(sc.Migrations, harness.FleetMigration{
			At: ms(m.AtMS), Tenant: m.Tenant, Target: m.Target,
		})
	}
	for _, c := range req.DeviceCrashes {
		sc.DeviceCrashes = append(sc.DeviceCrashes, chaos.DeviceEvent{Device: c.Device, At: ms(c.AtMS)})
	}
	if req.Rebalance || req.Autoscale {
		sc.Rebalance = &fleet.RebalanceConfig{Interval: horizon / 8}
	}
	if req.Autoscale {
		maxDev := req.MaxDevices
		if maxDev <= 0 {
			maxDev = len(specs) + 4
		}
		sc.Autoscale = &fleet.AutoscaleConfig{
			Template: fleet.DeviceClass("gpu", 108, 40<<30),
			Min:      len(specs),
			Max:      maxDev,
		}
	}
	return sc, nil
}

// finishFleetPlan fills the reply from a finished fleet run, publishes the
// state on /debug/bless/fleet, and fails on any invariant violation — the
// shared tail of FleetPlan and Restore.
func (p *Planner) finishFleetPlan(res *harness.FleetResult, reply *FleetPlanReply) error {
	if res.Invariants != nil {
		for _, v := range res.Invariants.Violations {
			reply.Violations = append(reply.Violations, v.Error())
		}
	}
	reply.Stats = res.Stats
	reply.Devices = res.Devices
	reply.Digest = fmt.Sprintf("%016x", res.Digest)
	reply.ElapsedMS = float64(res.Elapsed) / float64(sim.Millisecond)
	for _, t := range res.Tenants {
		reply.Tenants = append(reply.Tenants, FleetTenantOutcome{
			Name:          t.Name,
			App:           t.App,
			Quota:         t.Quota,
			Device:        t.Device,
			Completed:     t.Completed,
			Failed:        t.Failed,
			MeanLatencyMS: float64(t.MeanLat) / float64(sim.Millisecond),
			P99LatencyMS:  float64(t.P99Lat) / float64(sim.Millisecond),
			Migrations:    t.Migrations,
			Evicted:       t.Evicted,
		})
	}

	var events int64
	if res.Invariants != nil {
		events = res.Invariants.Events
	}
	p.mu.Lock()
	p.lastFleet = &fleetState{
		Devices: res.Devices,
		Tenants: reply.Tenants,
		Stats:   res.Stats,
		Digest:  reply.Digest,
		Events:  events,
	}
	p.mu.Unlock()
	p.reg.Counter("plans_total").Inc()
	if len(reply.Violations) > 0 {
		p.reg.Counter("plan_errors_total").Inc()
		return fmt.Errorf("planner: fleet invariants violated: %s", reply.Violations[0])
	}
	return nil
}

// FleetMigrate is the migration what-if RPC: FleetPlan that requires at
// least one scheduled migration.
func (p *Planner) FleetMigrate(req FleetPlanRequest, reply *FleetPlanReply) error {
	if len(req.Migrations) == 0 {
		p.reg.Counter("plan_errors_total").Inc()
		return fmt.Errorf("planner: FleetMigrate needs at least one migration (use FleetPlan otherwise)")
	}
	return p.FleetPlan(req, reply)
}

// fleetState is what /debug/bless/fleet serves.
type fleetState struct {
	Devices []fleet.DeviceLoad   `json:"devices"`
	Tenants []FleetTenantOutcome `json:"tenants"`
	Stats   fleet.Stats          `json:"stats"`
	Digest  string               `json:"digest"`
	Events  int64                `json:"invariant_events"`
}

// ServeFleet handles GET /debug/bless/fleet: the most recent fleet plan's
// state — per-device load (subscription, in-flight, SLO attainment,
// utilization), tenant placements with migration counts, control-plane
// counters and the determinism digest — as JSON. 404 until a fleet plan has
// run.
func (p *Planner) ServeFleet(w http.ResponseWriter, _ *http.Request) {
	p.mu.Lock()
	st := p.lastFleet
	p.mu.Unlock()
	if st == nil {
		http.Error(w, "no fleet plan yet; call Planner.FleetPlan first", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}
