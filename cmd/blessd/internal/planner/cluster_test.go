package planner

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// clusterRequest is a 3-GPU deployment whose quotas force the controller to
// spread tenants: 0.6+0.6 cannot share a device.
func clusterRequest() PlanRequest {
	return PlanRequest{
		GPUs: 3,
		Clients: []ClientPlan{
			{App: "vgg11", Quota: 0.6, ThinkMS: 2, SLOTargetMS: 100},
			{App: "resnet50", Quota: 0.6, ThinkMS: 2, SLOTargetMS: 100},
			{App: "bert", Quota: 0.6, ThinkMS: 2, SLOTargetMS: 200},
			{App: "resnet101", Quota: 0.3, ThinkMS: 2},
		},
		HorizonMS: 100,
	}
}

func TestPlanCluster(t *testing.T) {
	p := New()
	var reply PlanReply
	if err := p.Plan(clusterRequest(), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.GPUs != 3 {
		t.Errorf("reply.GPUs = %d, want 3", reply.GPUs)
	}
	if len(reply.Placement) != 4 {
		t.Fatalf("placement for %d clients, want 4", len(reply.Placement))
	}
	hosts := map[int]bool{}
	for ai, gi := range reply.Placement {
		if gi < 0 || gi >= 3 {
			t.Errorf("client %d placed on gpu %d", ai, gi)
		}
		hosts[gi] = true
	}
	// Three 0.6 quotas cannot co-locate: the pool must actually be used.
	if len(hosts) < 3 {
		t.Errorf("placement %v uses %d devices, want 3", reply.Placement, len(hosts))
	}
	for _, c := range reply.PerClient {
		if c.Completed < 2 {
			t.Errorf("%s completed only %d requests", c.App, c.Completed)
		}
	}
	if reply.Utilization <= 0 {
		t.Error("no pool utilization reported")
	}
}

func TestPlanClusterRejectsFaults(t *testing.T) {
	req := clusterRequest()
	req.Faults = &FaultConfig{Seed: 1, KernelFaultRate: 0.01}
	var reply PlanReply
	if err := New().Plan(req, &reply); err == nil {
		t.Error("cluster plan with faults accepted")
	}
}

// TestClusterDebugEndpoints drives a multi-device plan and checks that the
// fleet-aggregated views land on the daemon's prom and slo endpoints.
func TestClusterDebugEndpoints(t *testing.T) {
	p := New()

	// Before any plan: prom serves (possibly empty) exposition, slo serves
	// an empty tenant list.
	rec := httptest.NewRecorder()
	p.ServeProm(rec, nil)
	if rec.Code != 200 {
		t.Fatalf("prom status %d before any plan", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/plain; version=0.0.4") {
		t.Errorf("prom content-type %q", got)
	}

	var reply PlanReply
	if err := p.Plan(clusterRequest(), &reply); err != nil {
		t.Fatal(err)
	}

	// Prometheus exposition: fleet-merged counters plus per-tenant SLO
	// series with tenant labels.
	rec = httptest.NewRecorder()
	p.ServeProm(rec, nil)
	body := rec.Body.String()
	for _, want := range []string{
		"bless_requests_completed_total",
		"bless_latency_request_ns",
		"bless_obs_events_total",
		`bless_slo_attainment_pct{tenant="vgg11"}`,
		`bless_slo_target_ns{tenant="bert"}`,
		"bless_plans_cluster",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}

	// SLO JSON: one entry per tenant, attainment populated for targeted
	// tenants, aggregated across the whole cluster run.
	rec = httptest.NewRecorder()
	p.ServeSLO(rec, nil)
	if rec.Code != 200 {
		t.Fatalf("slo status %d after a plan", rec.Code)
	}
	var snap struct {
		Tenants []struct {
			Tenant     string  `json:"tenant"`
			TargetNS   int64   `json:"target_ns"`
			Completed  int64   `json:"completed"`
			Attainment float64 `json:"attainment_pct"`
			P99NS      int64   `json:"p99_ns"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("slo not JSON: %v", err)
	}
	tenants := snap.Tenants
	if len(tenants) != 4 {
		t.Fatalf("%d SLO tenants, want 4", len(tenants))
	}
	byName := map[string]int{}
	for i, tn := range tenants {
		byName[tn.Tenant] = i
		if tn.Completed < 2 {
			t.Errorf("tenant %s completed %d", tn.Tenant, tn.Completed)
		}
		if tn.P99NS <= 0 {
			t.Errorf("tenant %s has no latency quantiles", tn.Tenant)
		}
	}
	for _, name := range []string{"vgg11", "resnet50", "bert", "resnet101"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("no SLO entry for %s", name)
		}
	}
	// 100ms targets over a 100ms horizon with millisecond-scale service
	// times: the targeted tenants should attain their SLO.
	if got := tenants[byName["vgg11"]].Attainment; got != 100 {
		t.Errorf("vgg11 attainment %.2f%%, want 100", got)
	}
	if got := tenants[byName["resnet101"]].TargetNS; got != 0 {
		t.Errorf("untargeted resnet101 has target %d", got)
	}

	// The cluster trace replaces the last single-device trace: lanes carry
	// device prefixes.
	rec = httptest.NewRecorder()
	p.ServeTrace(rec, nil)
	if rec.Code != 200 {
		t.Fatalf("trace status %d after cluster plan", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"gpu0/`) {
		t.Error("cluster trace has no device-prefixed lanes")
	}
}

// TestSingleDevicePlanFeedsSLO checks the single-device path reports into the
// same accumulated SLO tracker and prom exposition as cluster plans.
func TestSingleDevicePlanFeedsSLO(t *testing.T) {
	p := New()
	var reply PlanReply
	if err := p.Plan(PlanRequest{
		Clients: []ClientPlan{
			{App: "vgg11", Quota: 0.5, Workload: "burst", Requests: 2, SLOTargetMS: 500},
			{App: "resnet50", Quota: 0.5, Workload: "burst", Requests: 2},
		},
		HorizonMS: 200,
	}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.GPUs != 0 {
		t.Errorf("single-device reply.GPUs = %d, want 0", reply.GPUs)
	}

	rec := httptest.NewRecorder()
	p.ServeSLO(rec, nil)
	var snap struct {
		Tenants []struct {
			Tenant    string `json:"tenant"`
			Completed int64  `json:"completed"`
			Attained  int64  `json:"attained"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("slo not JSON: %v", err)
	}
	tenants := snap.Tenants
	if len(tenants) != 2 {
		t.Fatalf("%d SLO tenants after single-device plan, want 2", len(tenants))
	}
	for _, tn := range tenants {
		if tn.Completed != 2 {
			t.Errorf("tenant %s completed %d, want 2", tn.Tenant, tn.Completed)
		}
	}

	// The plan's tracing self-accounting is on the exposition too.
	rec = httptest.NewRecorder()
	p.ServeProm(rec, nil)
	for _, want := range []string{"bless_obs_events_total", "bless_obs_publish_wall_ns", "bless_obs_events_dropped_total"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}
}
