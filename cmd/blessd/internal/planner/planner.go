// Package planner implements blessd's RPC surface: simulate a multi-tenant
// GPU deployment and report the projected outcome. Every plan runs fully
// instrumented — kernel timeline, scheduler decision events and streaming
// metrics — and the accumulated state is exposed live over the daemon's
// debug HTTP endpoints (see ServeMetrics and ServeTrace).
package planner

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"bless/internal/core"
	"bless/internal/harness"
	"bless/internal/invariant"
	"bless/internal/obs"
	"bless/internal/sim"
)

// ClientPlan describes one tenant in a planning request.
type ClientPlan struct {
	// App is a built-in application name (bless.Models).
	App string
	// Quota is the provisioned GPU fraction in (0, 1].
	Quota float64
	// SLOTargetMS optionally replaces the ISO pace target.
	SLOTargetMS float64
	// Workload selects the arrival process: "closed" (closed loop with
	// ThinkMS think time, the default) or "burst" (Requests simultaneous
	// arrivals at t=0).
	Workload string
	// ThinkMS is the closed-loop think time in milliseconds.
	ThinkMS float64
	// Requests bounds the number of requests (0 = until the horizon).
	Requests int
}

// PlanRequest describes a deployment to evaluate.
type PlanRequest struct {
	// System selects the scheduler ("BLESS" default; see bless.System*).
	System string
	// Clients are the tenants.
	Clients []ClientPlan
	// HorizonMS bounds the simulated workload in milliseconds (default
	// 1000).
	HorizonMS float64
	// GPUSMs overrides the device SM count (default 108).
	GPUSMs int
	// GPUs, when > 1, evaluates the deployment across a multi-device pool:
	// the §4.2.2 controller places tenants, every device runs observed, and
	// the fleet-merged metrics and per-tenant SLO attainment land on the
	// daemon's /debug/bless/prom and /debug/bless/slo endpoints.
	GPUs int
	// Faults, if set, runs the plan under a seeded fault and churn plan;
	// the degraded-mode outcome lands in PlanReply.Chaos.
	Faults *FaultConfig
}

// ClientOutcome is one tenant's projection.
type ClientOutcome struct {
	App            string
	Quota          float64
	Completed      int
	Failed         int
	MeanLatencyMS  float64
	P99LatencyMS   float64
	ISOLatencyMS   float64
	MeetsISOTarget bool
}

// PlanReply is the projected outcome of a deployment.
type PlanReply struct {
	System      string
	PerClient   []ClientOutcome
	Utilization float64
	ElapsedMS   float64
	// Chaos summarizes fault injection and churn when the request carried a
	// FaultConfig; nil otherwise.
	Chaos *ChaosOutcome
	// GPUs echoes the pool size of a multi-device plan (0 single-device);
	// Placement maps each client to its host device index.
	GPUs      int
	Placement []int
}

// Planner is the RPC receiver. It accumulates observability state across
// plans: a streaming metrics registry (latency histograms per app, plan
// counters, the §6.9 overhead accounting of the latest BLESS plan) and the
// Chrome trace of the most recent plan.
type Planner struct {
	reg *obs.Registry
	// slo accumulates per-tenant SLO attainment across every plan served —
	// single-device plans observe completions directly, cluster plans fold
	// in their fleet-merged trackers.
	slo *obs.SLOTracker

	// serve is the open sustained-load deployment (nil when closed); the
	// Serve fast path reads it lock-free, open/close serialize on mu.
	serve atomic.Pointer[serveState]

	mu            sync.Mutex
	lastTrace     []byte
	lastInvariant *invariant.Report
	// fleet is the merged registry view of every cluster plan served.
	fleet obs.Snapshot
	// lastFleet is the most recent fleet plan's state (/debug/bless/fleet).
	lastFleet *fleetState
	// lastSnapshot is the most recent Planner.Snapshot's canonical bytes
	// (/debug/bless/snapshot).
	lastSnapshot []byte
}

// New returns a Planner.
func New() *Planner {
	return &Planner{reg: obs.NewRegistry(), slo: obs.NewSLOTracker()}
}

// PlanService is the net/rpc receiver: it exposes exactly the Plan method,
// keeping the Planner's HTTP debug handlers out of the RPC surface (net/rpc
// logs a warning per exported method with a non-RPC signature).
type PlanService struct{ p *Planner }

// RPC returns the receiver to register with an rpc.Server.
func (p *Planner) RPC() *PlanService { return &PlanService{p: p} }

// Plan forwards to Planner.Plan.
func (s *PlanService) Plan(req PlanRequest, reply *PlanReply) error { return s.p.Plan(req, reply) }

// Plan simulates the requested deployment and fills the reply. Every plan is
// verified: universal invariant violations fail the plan, quota and bubble
// assessments surface on /debug/bless/invariants.
func (p *Planner) Plan(req PlanRequest, reply *PlanReply) error {
	if req.GPUs > 1 {
		return p.planCluster(req, reply)
	}
	_, err := p.plan(req, &invariant.Options{FailOnViolation: true}, reply)
	return err
}

// plan is the shared run path behind Plan and Admit: it converts the request,
// runs the simulation fully instrumented, accumulates observability state,
// and fills the reply.
func (p *Planner) plan(req PlanRequest, inv *invariant.Options, reply *PlanReply) (*harness.Result, error) {
	if len(req.Clients) == 0 {
		p.reg.Counter("plan_errors_total").Inc()
		return nil, fmt.Errorf("planner: no clients in request")
	}
	horizon := ms(req.HorizonMS)
	if horizon <= 0 {
		horizon = sim.Second
	}
	system := req.System
	if system == "" {
		system = "BLESS"
	}
	gpuCfg := sim.DefaultConfig()
	if req.GPUSMs > 0 {
		gpuCfg.SMs = req.GPUSMs
	}

	sched, err := harness.NewSystem(system)
	if err != nil {
		p.reg.Counter("plan_errors_total").Inc()
		return nil, err
	}
	specs := make([]harness.ClientSpec, len(req.Clients))
	for i, c := range req.Clients {
		spec, err := specFor(c)
		if err != nil {
			p.reg.Counter("plan_errors_total").Inc()
			return nil, err
		}
		specs[i] = spec
	}
	fp, err := faultPlanOf(req.Faults)
	if err != nil {
		p.reg.Counter("plan_errors_total").Inc()
		return nil, err
	}

	col := obs.NewCollector()
	col.Recorder.LaneOf = obs.ClientLane
	col.MaxEvents = maxPlanEvents // bounded: overflow is counted, never OOM
	bus := obs.NewBus()
	bus.Subscribe(col)
	bus.SelfAccount(true) // meter the tracing layer's own cost (§6.9)
	res, err := harness.Run(harness.RunConfig{
		Scheduler:  sched,
		Clients:    specs,
		Horizon:    horizon,
		GPU:        gpuCfg,
		Tracers:    []sim.Tracer{col.Recorder},
		Bus:        bus,
		Registry:   p.reg,
		SLO:        p.slo,
		Invariants: inv,
		Faults:     fp,
	})
	harness.RecordTracingCost(p.reg, bus, col)
	if res != nil && res.Invariants != nil {
		p.mu.Lock()
		p.lastInvariant = res.Invariants
		p.mu.Unlock()
		p.reg.Counter("invariant_violations_total").Add(int64(len(res.Invariants.Violations)))
	}
	if err != nil {
		p.reg.Counter("plan_errors_total").Inc()
		return nil, err
	}
	p.reg.Counter("plans_total").Inc()
	p.reg.Counter("plans/" + res.System).Inc()
	if rt, ok := sched.(*core.Runtime); ok {
		harness.RecordOverheads(p.reg, rt.Stats(), rt.OverheadStats(), rt.HostOverhead())
	}
	p.captureTrace(col)

	reply.System = res.System
	reply.Utilization = res.Utilization
	reply.ElapsedMS = float64(res.Elapsed) / float64(sim.Millisecond)
	reply.Chaos = chaosOutcome(res.Chaos)
	for _, cs := range res.PerClient {
		reply.PerClient = append(reply.PerClient, ClientOutcome{
			App:            cs.App,
			Quota:          cs.Quota,
			Completed:      cs.Completed,
			Failed:         cs.Failed,
			MeanLatencyMS:  float64(cs.Summary.Mean) / float64(sim.Millisecond),
			P99LatencyMS:   float64(cs.Summary.P99) / float64(sim.Millisecond),
			ISOLatencyMS:   float64(cs.ISO) / float64(sim.Millisecond),
			MeetsISOTarget: cs.Summary.Mean <= cs.ISO,
		})
	}
	return res, nil
}

// maxPlanEvents bounds each plan's decision-event collector: long horizons
// cannot grow the daemon without bound, and every refused event is counted
// on obs/events_dropped_total.
const maxPlanEvents = 1 << 20

// captureTrace renders and stores the plan's Chrome trace for ServeTrace.
func (p *Planner) captureTrace(col *obs.Collector) {
	var buf writerBuf
	if err := col.WriteChromeTrace(&buf); err != nil {
		return
	}
	p.mu.Lock()
	p.lastTrace = buf.b
	p.mu.Unlock()
}

// writerBuf is a minimal io.Writer over a byte slice.
type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }

// ServeMetrics handles GET /debug/bless/metrics: the live streaming-metrics
// snapshot (counters, gauges, per-app latency histograms, the latest BLESS
// plan's overhead accounting) as JSON.
func (p *Planner) ServeMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := p.reg.Snapshot().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ServeInvariants handles GET /debug/bless/invariants: the most recent
// plan's invariant report — violations, per-client quota attainment, bubble
// accounting and the determinism digest — as JSON. 404 until a plan has run.
func (p *Planner) ServeInvariants(w http.ResponseWriter, _ *http.Request) {
	p.mu.Lock()
	rep := p.lastInvariant
	p.mu.Unlock()
	if rep == nil {
		http.Error(w, "no plan verified yet; call Planner.Plan first", http.StatusNotFound)
		return
	}
	type violation struct {
		Class string `json:"class"`
		AtNS  int64  `json:"at_ns"`
		Msg   string `json:"msg"`
		Repro string `json:"repro,omitempty"`
	}
	conv := func(vs []invariant.Violation) []violation {
		out := make([]violation, 0, len(vs))
		for _, v := range vs {
			out = append(out, violation{Class: v.Class.String(), AtNS: int64(v.At), Msg: v.Msg, Repro: v.Repro})
		}
		return out
	}
	type client struct {
		App      string  `json:"app"`
		Quota    float64 `json:"quota"`
		Share    float64 `json:"share"`
		Violated bool    `json:"violated"`
	}
	clients := make([]client, 0, len(rep.Clients))
	for _, cr := range rep.Clients {
		clients = append(clients, client{App: cr.Client.Name, Quota: cr.Client.Quota, Share: cr.Share, Violated: cr.Violated})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"violations":      conv(rep.Violations),
		"observations":    conv(rep.Observations),
		"clients":         clients,
		"bubble_fraction": rep.BubbleFraction,
		"kernels":         rep.Kernels,
		"samples":         rep.Samples,
		"digest":          fmt.Sprintf("%016x", rep.Digest),
	})
}

// ServeProm handles GET /debug/bless/prom: the accumulated metrics — the
// daemon registry merged with the fleet view of every cluster plan, followed
// by per-tenant SLO attainment — in Prometheus text exposition format.
func (p *Planner) ServeProm(w http.ResponseWriter, _ *http.Request) {
	p.mu.Lock()
	fleet := p.fleet
	p.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, obs.MergeSnapshots(p.reg.Snapshot(), fleet))
	obs.WritePrometheusSLO(w, p.slo.Snapshot())
}

// ServeSLO handles GET /debug/bless/slo: per-tenant SLO attainment — target,
// rolling attainment percentage, latency quantiles — accumulated across every
// plan served (cluster plans fold in fleet-merged trackers), as JSON.
func (p *Planner) ServeSLO(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := p.slo.Snapshot().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ServeTrace handles GET /debug/bless/trace: the most recent plan's Chrome
// trace-event JSON (load in Perfetto or chrome://tracing). 404 until a plan
// has been served.
func (p *Planner) ServeTrace(w http.ResponseWriter, _ *http.Request) {
	p.mu.Lock()
	tr := p.lastTrace
	p.mu.Unlock()
	if len(tr) == 0 {
		http.Error(w, "no plan traced yet; call Planner.Plan first", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(tr)
}
