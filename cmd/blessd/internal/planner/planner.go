// Package planner implements blessd's RPC surface: simulate a multi-tenant
// GPU deployment and report the projected outcome.
package planner

import (
	"fmt"
	"time"

	"bless"
)

// ClientPlan describes one tenant in a planning request.
type ClientPlan struct {
	// App is a built-in application name (bless.Models).
	App string
	// Quota is the provisioned GPU fraction in (0, 1].
	Quota float64
	// SLOTargetMS optionally replaces the ISO pace target.
	SLOTargetMS float64
	// Workload selects the arrival process: "closed" (closed loop with
	// ThinkMS think time, the default) or "burst" (Requests simultaneous
	// arrivals at t=0).
	Workload string
	// ThinkMS is the closed-loop think time in milliseconds.
	ThinkMS float64
	// Requests bounds the number of requests (0 = until the horizon).
	Requests int
}

// PlanRequest describes a deployment to evaluate.
type PlanRequest struct {
	// System selects the scheduler ("BLESS" default; see bless.System*).
	System string
	// Clients are the tenants.
	Clients []ClientPlan
	// HorizonMS bounds the simulated workload in milliseconds (default
	// 1000).
	HorizonMS float64
	// GPUSMs overrides the device SM count (default 108).
	GPUSMs int
}

// ClientOutcome is one tenant's projection.
type ClientOutcome struct {
	App            string
	Quota          float64
	Completed      int
	MeanLatencyMS  float64
	P99LatencyMS   float64
	ISOLatencyMS   float64
	MeetsISOTarget bool
}

// PlanReply is the projected outcome of a deployment.
type PlanReply struct {
	System      string
	PerClient   []ClientOutcome
	Utilization float64
	ElapsedMS   float64
}

// Planner is the RPC receiver.
type Planner struct{}

// New returns a Planner.
func New() *Planner { return &Planner{} }

// Plan simulates the requested deployment and fills the reply.
func (p *Planner) Plan(req PlanRequest, reply *PlanReply) error {
	if len(req.Clients) == 0 {
		return fmt.Errorf("planner: no clients in request")
	}
	horizon := time.Duration(req.HorizonMS * float64(time.Millisecond))
	if horizon <= 0 {
		horizon = time.Second
	}

	cfg := bless.SessionConfig{System: req.System, GPU: bless.GPUConfig{SMs: req.GPUSMs}}
	for _, c := range req.Clients {
		cfg.Clients = append(cfg.Clients, bless.ClientConfig{
			App:       c.App,
			Quota:     c.Quota,
			SLOTarget: time.Duration(c.SLOTargetMS * float64(time.Millisecond)),
		})
	}
	session, err := bless.NewSession(cfg)
	if err != nil {
		return err
	}
	for i, c := range req.Clients {
		switch c.Workload {
		case "", "closed":
			think := time.Duration(c.ThinkMS * float64(time.Millisecond))
			if err := session.SubmitClosedLoop(i, think, c.Requests, horizon); err != nil {
				return err
			}
		case "burst":
			n := c.Requests
			if n <= 0 {
				n = 1
			}
			for r := 0; r < n; r++ {
				if err := session.SubmitAt(i, 0); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("planner: unknown workload %q", c.Workload)
		}
	}
	res := session.Run()
	reply.System = req.System
	if reply.System == "" {
		reply.System = bless.SystemBLESS
	}
	reply.Utilization = res.Utilization
	reply.ElapsedMS = float64(res.Elapsed) / float64(time.Millisecond)
	for _, cs := range res.PerClient {
		reply.PerClient = append(reply.PerClient, ClientOutcome{
			App:            cs.App,
			Quota:          cs.Quota,
			Completed:      cs.Completed,
			MeanLatencyMS:  float64(cs.MeanLatency) / float64(time.Millisecond),
			P99LatencyMS:   float64(cs.P99Latency) / float64(time.Millisecond),
			ISOLatencyMS:   float64(cs.ISOLatency) / float64(time.Millisecond),
			MeetsISOTarget: cs.MeanLatency <= cs.ISOLatency,
		})
	}
	return nil
}
