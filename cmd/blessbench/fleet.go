package main

import (
	"fmt"
	"sort"
	"time"

	"bless/internal/harness"
	"bless/internal/sim"
)

// runFleet is the -fleet command: the canonical fleet-control-plane scenario
// — 200 tenants over a simulated 32-GPU heterogeneous pool (three device
// speed classes), live migration, sustained-shortfall rebalancing and
// autoscaling enabled — executed three ways and cross-checked:
//
//  1. serial reference run, fleet invariants enforced;
//  2. parallel copies under the deterministic executor — every digest must
//     equal the serial one;
//  3. a migration-order permutation — same-instant migration triggers
//     scheduled in reverse order must not move the digest by a bit.
//
// smoke scales down to 24 tenants x 4 devices (the check.sh gate).
func runFleet(smoke bool, seed int64, parallel int) error {
	tenants, devices, horizon := 200, 32, 250*sim.Millisecond
	if smoke {
		tenants, devices, horizon = 24, 4, 60*sim.Millisecond
	}
	sc := harness.FleetScenarioN(seed, tenants, devices, horizon)
	sc.Repro = fmt.Sprintf("go run ./cmd/blessbench -fleet -seed %d", seed)

	start := time.Now()
	ref, err := harness.RunFleet(sc)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	serialWall := time.Since(start)
	if err := ref.Invariants.Err(); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}

	// Parallel copies: bit-identical digests at any worker count.
	copies := []int{0, 1, 2}
	if parallel == 0 {
		parallel = len(copies)
	}
	results, err := harness.ForEachParallel(parallel, copies, func(_, _ int) (*harness.FleetResult, error) {
		return harness.RunFleet(sc)
	})
	if err != nil {
		return fmt.Errorf("fleet parallel: %w", err)
	}
	for i, r := range results {
		if r.Digest != ref.Digest || r.Invariants.Digest != ref.Invariants.Digest {
			return fmt.Errorf("fleet: parallel copy %d digest %016x/%016x != serial %016x/%016x — nondeterminism",
				i, r.Digest, r.Invariants.Digest, ref.Digest, ref.Invariants.Digest)
		}
	}

	// Migration-order permutation: reverse the trigger schedule.
	perm := sc
	perm.Migrations = make([]harness.FleetMigration, len(sc.Migrations))
	for i, m := range sc.Migrations {
		perm.Migrations[len(sc.Migrations)-1-i] = m
	}
	pres, err := harness.RunFleet(perm)
	if err != nil {
		return fmt.Errorf("fleet permuted: %w", err)
	}
	if pres.Digest != ref.Digest || pres.Invariants.Digest != ref.Invariants.Digest {
		return fmt.Errorf("fleet: migration-order permutation moved the digest (%016x vs %016x) — apply order leaked",
			pres.Digest, ref.Digest)
	}

	// Report.
	st := ref.Stats
	fmt.Printf("fleet: %d tenants over %d devices (+%d autoscaled), horizon %v, wall %v\n",
		len(sc.Tenants), len(sc.Devices), st.ScaleUps, sc.Horizon, serialWall.Round(time.Millisecond))
	fmt.Printf("  routed %d  completed %d  failed %d  | migrations %d (completed %d, rejected %d)  rebalances %d  epochs %d\n",
		st.Routed, st.Completed, st.Failed, st.Migrations, st.MigrationsCompleted, st.MigrationsRejected, st.Rebalances, st.Epochs)
	byClass := map[int][]int{}
	for _, d := range ref.Devices {
		byClass[d.SMs] = append(byClass[d.SMs], d.Device)
	}
	classes := make([]int, 0, len(byClass))
	for sms := range byClass {
		classes = append(classes, sms)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(classes)))
	for _, sms := range classes {
		var q, u float64
		n := 0
		for _, id := range byClass[sms] {
			d := ref.Devices[id]
			q += d.QuotaSubscribed
			u += d.Utilization
			n++
		}
		fmt.Printf("  class %3d SMs x%-2d  mean subscription %.2f  mean utilization %.2f\n",
			sms, n, q/float64(n), u/float64(n))
	}
	var slow harness.FleetTenantOutcome
	completed := 0
	for _, tn := range ref.Tenants {
		completed += tn.Completed
		if tn.MeanLat > slow.MeanLat {
			slow = tn
		}
	}
	fmt.Printf("  per-tenant completions %.1f mean; slowest %s (%s, q=%.2f): mean %.1fms over %d requests\n",
		float64(completed)/float64(len(ref.Tenants)), slow.Name, slow.App, slow.Quota,
		float64(slow.MeanLat)/float64(sim.Millisecond), slow.Completed)
	fmt.Printf("  digests: completion %016x  checker %016x — identical serial/parallel(x%d)/permuted ✓\n",
		ref.Digest, ref.Invariants.Digest, len(copies))
	fmt.Printf("  invariants: %d events folded, %d routed, %d completed, %d rerouted, 0 violations ✓\n",
		ref.Invariants.Events, ref.Invariants.Routed, ref.Invariants.Completed, ref.Invariants.Rerouted)
	return nil
}
