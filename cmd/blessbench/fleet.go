package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"bless/internal/harness"
	"bless/internal/sim"
)

// runFleet is the -fleet command: the canonical fleet-control-plane scenario
// — 200 tenants over a simulated 32-GPU heterogeneous pool (three device
// speed classes), live migration, sustained-shortfall rebalancing and
// autoscaling enabled — executed three ways and cross-checked:
//
//  1. serial reference run, fleet invariants enforced;
//  2. parallel copies under the deterministic executor — every digest must
//     equal the serial one;
//  3. a migration-order permutation — same-instant migration triggers
//     scheduled in reverse order must not move the digest by a bit.
//
// smoke scales down to 24 tenants x 4 devices (the check.sh gate).
//
// With shards > 0 it instead runs the shard-determinism gate: the scenario
// executes once on a single shard (the serial reference) and once across
// `shards` engine shards — plus a shard-mapping permutation — and any digest
// drift fails the run, writing the repro string to reproOut (the CI
// artifact).
func runFleet(smoke bool, seed int64, parallel, shards int, reproOut string) error {
	tenants, devices, horizon := 200, 32, 250*sim.Millisecond
	if smoke {
		tenants, devices, horizon = 24, 4, 60*sim.Millisecond
	}
	sc := harness.FleetScenarioN(seed, tenants, devices, horizon)
	sc.Repro = fmt.Sprintf("go run ./cmd/blessbench -fleet -seed %d", seed)
	if shards > 0 {
		return runFleetSharded(sc, smoke, seed, shards, reproOut)
	}

	start := time.Now()
	ref, err := harness.RunFleet(sc)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	serialWall := time.Since(start)
	if err := ref.Invariants.Err(); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}

	// Parallel copies: bit-identical digests at any worker count.
	copies := []int{0, 1, 2}
	if parallel == 0 {
		parallel = len(copies)
	}
	results, err := harness.ForEachParallel(parallel, copies, func(_, _ int) (*harness.FleetResult, error) {
		return harness.RunFleet(sc)
	})
	if err != nil {
		return fmt.Errorf("fleet parallel: %w", err)
	}
	for i, r := range results {
		if r.Digest != ref.Digest || r.Invariants.Digest != ref.Invariants.Digest {
			return fmt.Errorf("fleet: parallel copy %d digest %016x/%016x != serial %016x/%016x — nondeterminism",
				i, r.Digest, r.Invariants.Digest, ref.Digest, ref.Invariants.Digest)
		}
	}

	// Migration-order permutation: reverse the trigger schedule.
	perm := sc
	perm.Migrations = make([]harness.FleetMigration, len(sc.Migrations))
	for i, m := range sc.Migrations {
		perm.Migrations[len(sc.Migrations)-1-i] = m
	}
	pres, err := harness.RunFleet(perm)
	if err != nil {
		return fmt.Errorf("fleet permuted: %w", err)
	}
	if pres.Digest != ref.Digest || pres.Invariants.Digest != ref.Invariants.Digest {
		return fmt.Errorf("fleet: migration-order permutation moved the digest (%016x vs %016x) — apply order leaked",
			pres.Digest, ref.Digest)
	}

	// Report.
	st := ref.Stats
	fmt.Printf("fleet: %d tenants over %d devices (+%d autoscaled), horizon %v, wall %v\n",
		len(sc.Tenants), len(sc.Devices), st.ScaleUps, sc.Horizon, serialWall.Round(time.Millisecond))
	fmt.Printf("  routed %d  completed %d  failed %d  | migrations %d (completed %d, rejected %d)  rebalances %d  epochs %d\n",
		st.Routed, st.Completed, st.Failed, st.Migrations, st.MigrationsCompleted, st.MigrationsRejected, st.Rebalances, st.Epochs)
	byClass := map[int][]int{}
	for _, d := range ref.Devices {
		byClass[d.SMs] = append(byClass[d.SMs], d.Device)
	}
	classes := make([]int, 0, len(byClass))
	for sms := range byClass {
		classes = append(classes, sms)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(classes)))
	for _, sms := range classes {
		var q, u float64
		n := 0
		for _, id := range byClass[sms] {
			d := ref.Devices[id]
			q += d.QuotaSubscribed
			u += d.Utilization
			n++
		}
		fmt.Printf("  class %3d SMs x%-2d  mean subscription %.2f  mean utilization %.2f\n",
			sms, n, q/float64(n), u/float64(n))
	}
	var slow harness.FleetTenantOutcome
	completed := 0
	for _, tn := range ref.Tenants {
		completed += tn.Completed
		if tn.MeanLat > slow.MeanLat {
			slow = tn
		}
	}
	fmt.Printf("  per-tenant completions %.1f mean; slowest %s (%s, q=%.2f): mean %.1fms over %d requests\n",
		float64(completed)/float64(len(ref.Tenants)), slow.Name, slow.App, slow.Quota,
		float64(slow.MeanLat)/float64(sim.Millisecond), slow.Completed)
	fmt.Printf("  digests: completion %016x  checker %016x — identical serial/parallel(x%d)/permuted ✓\n",
		ref.Digest, ref.Invariants.Digest, len(copies))
	fmt.Printf("  invariants: %d events folded, %d routed, %d completed, %d rerouted, 0 violations ✓\n",
		ref.Invariants.Events, ref.Invariants.Routed, ref.Invariants.Completed, ref.Invariants.Rerouted)
	return nil
}

// runFleetSharded is the shard-determinism gate behind -fleet -shards N:
// the 1-shard reference, the N-shard run (including a device crash timed to
// land mid-migration, so exchange records are in flight), and an N-shard
// run with the device→shard mapping reversed must agree on every digest.
// On drift the repro string is written to reproOut for the CI artifact.
func runFleetSharded(sc harness.FleetScenario, smoke bool, seed int64, shards int, reproOut string) error {
	// Fold a crash into the scenario: the cross-shard recovery paths are
	// exactly what the matrix exists to gate.
	if len(sc.Migrations) > 0 {
		sc = sc.WithDeviceCrash(1, sc.Migrations[0].At)
	}
	repro := fmt.Sprintf("go run ./cmd/blessbench -fleet -seed %d -shards %d", seed, shards)
	if smoke {
		repro += " -smoke"
	}
	sc.Repro = repro

	fail := func(format string, args ...any) error {
		msg := fmt.Sprintf(format, args...)
		artifact := fmt.Sprintf("fleet shard-determinism failure\nrepro: %s\n%s\n", repro, msg)
		if err := os.WriteFile(reproOut, []byte(artifact), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing repro artifact %s: %v\n", reproOut, err)
		} else {
			fmt.Fprintf(os.Stderr, "repro artifact written to %s\n", reproOut)
		}
		return fmt.Errorf("fleet -shards %d: %s", shards, msg)
	}

	run := func(n int, shardOf func(int) int) (*harness.FleetResult, time.Duration, error) {
		cp := sc
		cp.Shards = n
		cp.ShardOf = shardOf
		start := time.Now()
		res, err := harness.RunFleet(cp)
		return res, time.Since(start), err
	}

	ref, serialWall, err := run(1, nil)
	if err != nil {
		return fmt.Errorf("fleet -shards: serial reference: %w", err)
	}
	if err := ref.Invariants.Err(); err != nil {
		return fail("serial reference violated invariants: %v", err)
	}
	got, wall, err := run(shards, nil)
	if err != nil {
		return fmt.Errorf("fleet -shards %d: %w", shards, err)
	}
	if err := got.Invariants.Err(); err != nil {
		return fail("sharded run violated invariants: %v", err)
	}
	if got.Digest != ref.Digest {
		return fail("completion digest drifted: %d shards %016x != serial %016x", shards, got.Digest, ref.Digest)
	}
	if got.Invariants.Digest != ref.Invariants.Digest {
		return fail("checker digest drifted: %d shards %016x != serial %016x", shards, got.Invariants.Digest, ref.Invariants.Digest)
	}
	perm, _, err := run(shards, func(dev int) int { return shards - 1 - dev%shards })
	if err != nil {
		return fmt.Errorf("fleet -shards %d (permuted mapping): %w", shards, err)
	}
	if perm.Digest != ref.Digest || perm.Invariants.Digest != ref.Invariants.Digest {
		return fail("permuted device→shard mapping moved a digest: %016x/%016x vs %016x/%016x",
			perm.Digest, perm.Invariants.Digest, ref.Digest, ref.Invariants.Digest)
	}

	st := got.Stats
	fmt.Printf("fleet shards: %d tenants over %d devices, horizon %v, crash mid-migration\n",
		len(sc.Tenants), len(sc.Devices), sc.Horizon)
	fmt.Printf("  serial %v | %d shards %v | routed %d completed %d resubmitted %d migrations %d crashes %d\n",
		serialWall.Round(time.Millisecond), shards, wall.Round(time.Millisecond),
		st.Routed, st.Completed, st.Resubmitted, st.Migrations, st.DeviceCrashes)
	fmt.Printf("  digests: completion %016x  checker %016x — identical at 1 and %d shards (+permuted mapping) ✓\n",
		ref.Digest, ref.Invariants.Digest, shards)
	return nil
}
