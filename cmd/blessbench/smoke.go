package main

import (
	"encoding/json"
	"fmt"
	"os"

	"bless/internal/harness"
	"bless/internal/invariant"
	"bless/internal/sim"
	"bless/internal/trace"
)

// smokeSummary is the benchmark-smoke artifact committed as the CI perf
// baseline (scripts/bench_baseline.json) and regenerated on every run.
type smokeSummary struct {
	System       string  `json:"system"`
	AvgLatencyNS int64   `json:"avg_latency_ns"`
	DeviationNS  int64   `json:"deviation_ns"`
	Utilization  float64 `json:"utilization"`
	Kernels      int64   `json:"kernels"`
	Digest       string  `json:"digest"`
}

// regressionTolerance is the allowed relative mean-latency growth over the
// committed baseline before the smoke gate fails CI.
const regressionTolerance = 0.10

// runSmoke executes the fixed smoke workload — BLESS on the canonical
// resnet50+vgg11 pair, workload-B pacing, even quotas — writes its summary to
// outPath, and compares against the committed baseline when given one. The
// workload is small (200ms horizon) so the gate adds seconds, not minutes,
// and fully deterministic so the digest doubles as a cross-platform
// determinism probe.
func runSmoke(outPath, baselinePath string, parallel int) error {
	prof, err := harness.ProfileFor("resnet50", sim.DefaultConfig())
	if err != nil {
		return err
	}
	mk := func(fp *harness.FaultPlan) func() (harness.RunConfig, error) {
		return func() (harness.RunConfig, error) {
			sched, err := harness.NewSystem("BLESS")
			if err != nil {
				return harness.RunConfig{}, err
			}
			return harness.RunConfig{
				Scheduler: sched,
				Clients: []harness.ClientSpec{
					{App: "resnet50", Quota: 0.5, Pattern: trace.Closed(prof.IsoAtQuota(0.5), 0)},
					{App: "vgg11", Quota: 0.5, Pattern: trace.Closed(0, 0)},
				},
				Horizon: 200 * sim.Millisecond,
				Invariants: &invariant.Options{
					FailOnViolation: true,
					Repro:           "go run ./cmd/blessbench -smoke " + outPath,
				},
				Faults: fp,
			}, nil
		}
	}
	// The two smoke runs — the measured one and its zero-rate fault-injector
	// twin — are independent, so they fan out across the worker pool; results
	// come back in input order regardless of which finishes first.
	results, err := harness.RunParallel(parallel, []func() (harness.RunConfig, error){
		mk(nil),
		mk(&harness.FaultPlan{ForceInjector: true}),
	})
	if err != nil {
		return fmt.Errorf("smoke run: %w", err)
	}
	res, inert := results[0], results[1]
	// The fault path must cost nothing when inert: the same workload with a
	// zero-rate injector attached must replay the exact simulated timeline.
	if inert.Invariants.Digest != res.Invariants.Digest {
		return fmt.Errorf("smoke: zero-rate fault injector perturbed the run: digest %016x != %016x",
			inert.Invariants.Digest, res.Invariants.Digest)
	}
	cur := smokeSummary{
		System:       res.System,
		AvgLatencyNS: int64(res.AvgLatency),
		DeviationNS:  int64(res.Deviation),
		Utilization:  res.Utilization,
		Kernels:      res.Invariants.Kernels,
		Digest:       fmt.Sprintf("%016x", res.Invariants.Digest),
	}

	data, err := json.MarshalIndent(cur, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("smoke: %s avg latency %v, deviation %v, utilization %.3f -> %s\n",
		cur.System, sim.Time(cur.AvgLatencyNS), sim.Time(cur.DeviationNS), cur.Utilization, outPath)

	if baselinePath == "" {
		return nil
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("smoke baseline: %w", err)
	}
	var base smokeSummary
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("smoke baseline %s: %w", baselinePath, err)
	}
	if base.AvgLatencyNS <= 0 {
		return fmt.Errorf("smoke baseline %s: non-positive avg_latency_ns %d", baselinePath, base.AvgLatencyNS)
	}
	growth := float64(cur.AvgLatencyNS-base.AvgLatencyNS) / float64(base.AvgLatencyNS)
	fmt.Printf("smoke: mean latency %+.2f%% vs baseline %s\n", growth*100, baselinePath)
	if growth > regressionTolerance {
		return fmt.Errorf("smoke: mean latency regressed %.1f%% over baseline (%v -> %v, tolerance %.0f%%)",
			growth*100, sim.Time(base.AvgLatencyNS), sim.Time(cur.AvgLatencyNS), regressionTolerance*100)
	}
	return nil
}
