package main

import (
	"fmt"
	"os"
	"time"

	"bless/internal/harness"
	"bless/internal/sim"
	"bless/internal/snapshot"
)

// runSnapshotExport is -fleet -snapshot FILE: run the fleet scenario (smoke
// or full scale, like -fleet itself) to a virtual-time barrier, cut the
// canonical snapshot there, and write it to FILE. The barrier defaults to
// half the horizon — mid-run, with migrations and rebalancing in flight —
// and -snapshot-at overrides it in virtual milliseconds.
//
// The exported bytes are process-independent: restore them with
// `blessbench -snapshot-import FILE` (any -shards count) or feed them to
// blessd's Planner.Restore.
func runSnapshotExport(path string, smoke bool, seed int64, shards int, atMS float64) error {
	tenants, devices, horizon := 200, 32, 250*sim.Millisecond
	if smoke {
		tenants, devices, horizon = 24, 4, 60*sim.Millisecond
	}
	sc := harness.FleetScenarioN(seed, tenants, devices, horizon)
	if shards > 0 {
		sc.Shards = shards
	}
	smokeFlag := ""
	if smoke {
		smokeFlag = " -smoke"
	}
	sc.Repro = fmt.Sprintf("go run ./cmd/blessbench -fleet%s -seed %d -snapshot FILE", smokeFlag, seed)

	at := sim.Time(atMS * float64(sim.Millisecond))
	if at <= 0 {
		at = horizon / 2
	}
	start := time.Now()
	data, err := harness.ExportFleet(sc, at)
	if err != nil {
		return fmt.Errorf("snapshot export: %w", err)
	}
	wall := time.Since(start)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("snapshot export: %w", err)
	}
	snap, err := snapshot.Decode(data)
	if err != nil {
		return fmt.Errorf("snapshot export: re-decoding fresh snapshot: %w", err)
	}
	fmt.Printf("snapshot: %d tenants over %d devices cut at %v (horizon %v), wall %v\n",
		len(sc.Tenants), len(sc.Devices), at, horizon, wall.Round(time.Millisecond))
	fmt.Printf("  %s: %d bytes, format v%d, state digest %016x\n",
		path, len(data), snapshot.Version, snapshot.StateDigest(&snap.State))
	fmt.Printf("  restore: go run ./cmd/blessbench -snapshot-import %s\n", path)
	return nil
}

// runSnapshotImport is -snapshot-import FILE: the cross-process restore
// proof. The snapshot's embedded scenario is replayed to the barrier, the
// replayed state compared byte-for-byte against the snapshot's state section,
// the run continued to completion, and the final digests checked against an
// uninterrupted replay of the same scenario. -shards overrides the replay's
// engine-shard count (0 = the exporting run's count); either way the digests
// must not move.
func runSnapshotImport(path string, shards int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("snapshot import: %w", err)
	}
	start := time.Now()
	v, err := harness.VerifyImport(data, shards)
	if err != nil {
		return fmt.Errorf("snapshot import %s: %w", path, err)
	}
	wall := time.Since(start)
	snap := v.Snapshot
	replayShards := shards
	if replayShards <= 0 {
		replayShards = snap.Shards
	}
	st := v.Imported.Stats
	fmt.Printf("snapshot import: %s (%d bytes) — barrier %v, exported at %d shard(s), replayed at %d, wall %v\n",
		path, len(data), snap.BarrierAt, snap.Shards, replayShards, wall.Round(time.Millisecond))
	fmt.Printf("  replay proof: state at %v byte-identical (digest %016x)\n",
		snap.BarrierAt, snapshot.StateDigest(&snap.State))
	fmt.Printf("  routed %d  completed %d  failed %d  | migrations %d  rebalances %d  crashes %d\n",
		st.Routed, st.Completed, st.Failed, st.Migrations, st.Rebalances, st.DeviceCrashes)
	fmt.Printf("  digests: completion %016x", v.Imported.Digest)
	if v.Imported.Invariants != nil {
		fmt.Printf("  checker %016x", v.Imported.Invariants.Digest)
	}
	fmt.Printf(" — identical to the uninterrupted run ✓\n")
	return nil
}
