package main

import (
	"fmt"

	"bless/internal/chaos"
	"bless/internal/harness"
	"bless/internal/invariant"
	"bless/internal/obs"
	"bless/internal/sim"
	"bless/internal/trace"
)

// chaosScenario builds the canonical degraded-mode demonstration: the
// fig13-style resnet50+vgg11 pair under a 1% kernel-fault rate and a transient
// device stall, with vgg11 crashing mid-run and resnet101 admitted afterwards.
func chaosScenario(horizon sim.Time) harness.RunConfig {
	return harness.RunConfig{
		Clients: []harness.ClientSpec{
			{App: "resnet50", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 0)},
			{App: "vgg11", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 0)},
		},
		Horizon: horizon,
		Invariants: &invariant.Options{
			FailOnViolation: true,
			Enforce: []invariant.Class{
				invariant.Conservation, invariant.Order, invariant.Delivery,
			},
			Repro: "go run ./cmd/blessbench -chaos",
		},
		Faults: &harness.FaultPlan{
			Plan: chaos.Plan{
				Seed:            1,
				KernelFaultRate: 0.01,
				Stalls:          []chaos.Stall{{At: horizon / 5, Dur: 2 * sim.Millisecond}},
				Crashes:         []chaos.ClientEvent{{Client: 1, At: 2 * horizon / 5}},
			},
			Joins: []harness.Join{{
				At: 3 * horizon / 5,
				Spec: harness.ClientSpec{
					App: "resnet101", Quota: 0.5,
					Pattern: trace.Closed(2*sim.Millisecond, 0),
				},
			}},
		},
	}
}

// runChaos executes the chaos scenario twice and reports the degraded-mode
// outcome: injected faults, retries, churn, per-client delivery accounting and
// the completion digest — which must be identical across the two same-seed
// runs, or the fault path itself is non-deterministic.
func runChaos(quick bool) error {
	horizon := 200 * sim.Millisecond
	if quick {
		horizon = 100 * sim.Millisecond
	}
	once := func() (*harness.Result, error) {
		sched, err := harness.NewSystem("BLESS")
		if err != nil {
			return nil, err
		}
		cfg := chaosScenario(horizon)
		cfg.Scheduler = sched
		return harness.Run(cfg)
	}
	res, err := once()
	if err != nil {
		return fmt.Errorf("chaos run: %w", err)
	}
	res2, err := once()
	if err != nil {
		return fmt.Errorf("chaos rerun: %w", err)
	}
	d1, d2 := harness.CompletionDigest(res), harness.CompletionDigest(res2)
	if d1 != d2 {
		return fmt.Errorf("chaos: same-seed runs diverged: completion digest %016x != %016x", d1, d2)
	}

	// Third run, fully traced: a collector on the decision bus. Tracing is
	// out-of-band, so the completion digest must stay bit-identical to the
	// untraced runs — and the collected events must reconstruct every
	// request's lifecycle, fault retries included.
	col := obs.NewCollector()
	sched3, err := harness.NewSystem("BLESS")
	if err != nil {
		return err
	}
	cfg3 := chaosScenario(horizon)
	cfg3.Scheduler = sched3
	bus := obs.NewBus()
	bus.Subscribe(col)
	cfg3.Bus = bus
	res3, err := harness.Run(cfg3)
	if err != nil {
		return fmt.Errorf("chaos traced run: %w", err)
	}
	if d3 := harness.CompletionDigest(res3); d3 != d1 {
		return fmt.Errorf("chaos: tracing perturbed the run: digest %016x != untraced %016x", d3, d1)
	}
	lifecycles := obs.Lifecycles(col.Events)

	ch := res.Chaos
	fmt.Printf("chaos: %s over %v, seed %d\n", res.System, horizon, chaosScenario(horizon).Faults.Plan.Seed)
	fmt.Printf("  injected: %d kernel faults, %d ctx faults, %d stalled launches\n",
		ch.Injector.KernelFaults, ch.Injector.CtxFaults, ch.Injector.StallDelays)
	fmt.Printf("  recovered: %d retries, %d retry aborts, %d deadline aborts, %d kernels cancelled\n",
		ch.Runtime.Retries, ch.Runtime.RetryAborts, ch.Runtime.DeadlineAborts, ch.Runtime.CancelledKernels)
	fmt.Printf("  churn: %d crash, %d leave, %d join\n", ch.Crashes, ch.Leaves, ch.Joins)
	for _, cs := range res.PerClient {
		fmt.Printf("  %-10s quota %.2f: %d submitted, %d completed, %d failed, mean %v\n",
			cs.App, cs.Quota, cs.Submitted, cs.Completed, cs.Failed, cs.Summary.Mean)
	}
	fmt.Printf("  completion digest %016x (reproducible, identical traced/untraced)\n", d1)

	// Reconstruct one request's full lifecycle from the exported spans:
	// prefer the bumpiest one (most faults), so the printout demonstrates
	// admission -> retries -> completion end to end.
	var pick *obs.RequestLifecycle
	var completed int
	for i := range lifecycles {
		l := &lifecycles[i]
		if !l.Completed {
			continue
		}
		completed++
		if pick == nil || l.Faults > pick.Faults {
			pick = l
		}
	}
	if pick == nil {
		return fmt.Errorf("chaos: no completed lifecycle reconstructed from %d events", len(col.Events))
	}
	fmt.Printf("  lifecycles: %d reconstructed, %d completed\n", len(lifecycles), completed)
	fmt.Printf("  deepest: %s seq %d — admitted %v, done %v (%s), latency %v, %d faults, %d retries, squads %v, %d span events\n",
		pick.Client, pick.Seq, pick.Admitted, pick.Done, outcome(pick), pick.Latency,
		pick.Faults, pick.Retries, pick.Squads, len(pick.Events))
	return nil
}

// outcome names a lifecycle's terminal state.
func outcome(l *obs.RequestLifecycle) string {
	if l.Failed {
		return "failed: " + l.AbortReason
	}
	return "ok"
}
