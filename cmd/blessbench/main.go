// Command blessbench regenerates the paper's tables and figures on the
// simulated testbed. Run with -list to enumerate experiment ids, -exp <id>
// to run one (or "all"), and -quick for reduced-scale smoke runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bless/internal/harness"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run, or 'all'")
	list := flag.Bool("list", false, "list experiment ids")
	quick := flag.Bool("quick", false, "reduced-scale smoke run")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opt := harness.Options{Quick: *quick}
	run := func(e harness.Experiment) {
		start := time.Now()
		table, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(table.Render())
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *exp == "all" {
		for _, e := range harness.Experiments() {
			run(e)
		}
		return
	}
	e, err := harness.Lookup(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	run(e)
}
