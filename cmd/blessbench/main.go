// Command blessbench regenerates the paper's tables and figures on the
// simulated testbed. Run with -list to enumerate experiment ids, -exp <id>
// to run one (or "all"), and -quick for reduced-scale smoke runs.
//
// Observability: -trace FILE and -metrics FILE execute one instrumented
// fig13-style pair run (resnet50+vgg11, even quotas, workload B) and export
// its Chrome trace-event JSON (loadable in Perfetto or chrome://tracing) and
// streaming-metrics snapshot. They combine freely with -exp.
//
// Verification: -invariants attaches the internal/invariant checker to every
// harness run an experiment performs and fails on any universal violation.
// -smoke FILE runs the fixed benchmark-smoke pair and writes its JSON
// summary; -baseline FILE additionally compares against a committed summary
// and fails on a >10% mean-latency regression (the CI perf gate). The smoke
// run also re-executes with a zero-rate fault injector attached and fails if
// the digest shifts — the fault path must be transparent when inert.
//
// Fault injection: -chaos runs the canonical degraded-mode scenario — the
// smoke pair under a 1% kernel-fault rate and a transient device stall, with
// vgg11 crashing mid-run and resnet101 admitted afterwards — twice, verifies
// the two same-seed runs produce identical completion digests, and prints the
// recovery accounting (retries, aborts, churn, per-client delivery).
//
// Fleet: -fleet runs the control-plane scenario — 200 tenants over a
// simulated 32-GPU heterogeneous pool with load-aware routing, live
// migration, rebalancing and autoscaling — serial, in parallel copies, and
// with the migration trigger order permuted, and fails unless all fleet
// invariants pass and every digest is bit-identical. -fleet -smoke is the
// scaled-down CI gate (24 tenants, 4 devices). Note -smoke doubles as the
// benchmark-smoke file flag: bare -smoke selects fleet-smoke mode alongside
// -fleet, -smoke=FILE writes the benchmark summary.
//
// Sharding: -fleet -shards N runs the shard-determinism gate instead — the
// same scenario (plus a device crash timed mid-migration) on one engine
// shard, on N shards, and on N shards with the device→shard mapping
// reversed; any completion- or checker-digest drift fails the run and
// writes a repro string to -repro-out (the CI artifact).
//
// Snapshot/restore: -fleet -snapshot FILE cuts the fleet scenario at a
// virtual-time barrier (-snapshot-at, in virtual milliseconds; default half
// the horizon) and writes the canonical digest-sealed snapshot to FILE.
// -snapshot-import FILE restores one in a fresh process: the embedded
// scenario is replayed to the barrier, the replayed state proven
// byte-identical to the snapshot's state section, and the run continued to
// completion — failing unless completion digest, checker digest and stats
// match an uninterrupted run. -shards applies to the replay side too, so an
// export cut at one shard count restores at any other.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bless/internal/harness"
	"bless/internal/invariant"
	"bless/internal/sim"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run, or 'all'")
	list := flag.Bool("list", false, "list experiment ids")
	quick := flag.Bool("quick", false, "reduced-scale smoke run")
	tracePath := flag.String("trace", "", "write Chrome trace JSON of an instrumented pair run to this file")
	metricsPath := flag.String("metrics", "", "write a metrics snapshot JSON of an instrumented pair run to this file")
	invariants := flag.Bool("invariants", false, "verify simulator invariants on every run; fail on violation")
	var smoke optionalString
	flag.Var(&smoke, "smoke", "-smoke=FILE runs the benchmark-smoke pair and writes its JSON summary; bare -smoke with -fleet selects the scaled-down fleet gate")
	baselinePath := flag.String("baseline", "", "with -smoke=FILE: committed summary to compare against (>10% mean-latency regression fails)")
	chaosFlag := flag.Bool("chaos", false, "run the chaos scenario (faults, stall, crash, join) twice and verify determinism")
	fleetFlag := flag.Bool("fleet", false, "run the fleet control-plane scenario (200 tenants, 32-GPU pool) and verify invariants + digest identity; with -smoke: reduced scale")
	seed := flag.Int64("seed", 7, "seed for the fleet control plane's deterministic decisions")
	parallel := flag.Int("parallel", 0, "worker count for independent experiment runs (0 = GOMAXPROCS, 1 = serial); output is identical at any setting")
	shards := flag.Int("shards", 0, "with -fleet: engine-shard count for the sharded run; compares its digests against the 1-shard reference and fails on any drift (0 = legacy three-way check)")
	reproOut := flag.String("repro-out", "fleet-shard-repro.txt", "with -fleet -shards: file the repro string is written to when digests mismatch (the CI artifact)")
	snapPath := flag.String("snapshot", "", "with -fleet: cut the scenario at a virtual-time barrier and write the canonical snapshot to this file")
	snapAt := flag.Float64("snapshot-at", 0, "with -fleet -snapshot: barrier instant in virtual milliseconds (0 = half the horizon)")
	snapImport := flag.String("snapshot-import", "", "restore a snapshot file in this process: replay to the barrier, prove byte-identity, continue, and verify digests against the uninterrupted run (-shards overrides the replay shard count)")
	flag.Parse()

	if *invariants {
		repro := "go run ./cmd/blessbench " + strings.Join(os.Args[1:], " ")
		harness.EnableInvariants(invariant.Options{FailOnViolation: true, Repro: repro})
	}

	if *snapImport != "" {
		if err := runSnapshotImport(*snapImport, *shards); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *snapPath != "" {
		if !*fleetFlag {
			fmt.Fprintln(os.Stderr, "-snapshot needs -fleet (it cuts the fleet scenario)")
			os.Exit(2)
		}
		if err := runSnapshotExport(*snapPath, smoke.set && smoke.val == "", *seed, *shards, *snapAt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *fleetFlag {
		if err := runFleet(smoke.set && smoke.val == "", *seed, *parallel, *shards, *reproOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *exp == "" && !*list && *tracePath == "" && *metricsPath == "" && !*chaosFlag && smoke.val == "" {
			return
		}
	}

	if smoke.set && smoke.val == "" && !*fleetFlag {
		fmt.Fprintln(os.Stderr, "bare -smoke needs -fleet; use -smoke=FILE for the benchmark-smoke summary")
		os.Exit(2)
	}
	if smoke.val != "" {
		if err := runSmoke(smoke.val, *baselinePath, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *exp == "" && !*list && *tracePath == "" && *metricsPath == "" && !*chaosFlag {
			return
		}
	}

	if *chaosFlag {
		if err := runChaos(*quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *exp == "" && !*list && *tracePath == "" && *metricsPath == "" {
			return
		}
	}

	observed := *tracePath != "" || *metricsPath != ""
	if *list || (*exp == "" && !observed) {
		fmt.Println("available experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-10s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	opt := harness.Options{Quick: *quick, Parallel: *parallel}
	run := func(e harness.Experiment) {
		start := time.Now()
		table, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(table.Render())
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	switch {
	case *exp == "all":
		for _, e := range harness.Experiments() {
			run(e)
		}
	case *exp != "":
		e, err := harness.Lookup(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		run(e)
	}

	if observed {
		if err := runObserved(*tracePath, *metricsPath, *quick); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// optionalString is a flag that may be given bare (-smoke) or with a value
// (-smoke=FILE). Bare usage leaves val empty with set true.
type optionalString struct {
	set bool
	val string
}

func (o *optionalString) String() string { return o.val }

func (o *optionalString) Set(s string) error {
	o.set = true
	if s != "true" {
		o.val = s
	}
	return nil
}

// IsBoolFlag lets the flag package accept bare -smoke.
func (o *optionalString) IsBoolFlag() bool { return true }

// runObserved executes the instrumented pair run behind -trace/-metrics and
// writes the requested artifacts.
func runObserved(tracePath, metricsPath string, quick bool) error {
	horizon := 500 * sim.Millisecond
	if quick {
		horizon = 100 * sim.Millisecond
	}
	o, err := harness.ObservedPairRun([2]string{"resnet50", "vgg11"}, [2]float64{0.5, 0.5}, "B", horizon)
	if err != nil {
		return fmt.Errorf("observed run: %w", err)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := o.Collector.WriteChromeTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace (%d kernel spans, %d decision events) to %s\n",
			len(o.Collector.Recorder.Spans), len(o.Collector.Events), tracePath)
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := o.Registry.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("writing metrics: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote metrics snapshot (%d series) to %s\n", len(o.Registry.Names()), metricsPath)
	}
	return nil
}
