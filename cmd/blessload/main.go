// Command blessload is the closed-loop load generator for blessd's
// sustained-load serving surface. It opens a serving deployment
// (Planner.ServeOpen), drives per-tenant request streams over TCP with
// bounded pipelining (the closed loop: a fixed in-flight window per tenant,
// a new request the moment one completes), ramps the declared offered rate
// step by step until it finds the knee — the point where the deployment
// stops absorbing offered load bubble-free and starts shedding — and
// reports, per step: achieved decision throughput, client-side latency
// quantiles, shed rate, and the daemon's measured per-decision scheduler
// cost against the paper's §6.9 budget.
//
// Offered rates are virtual-time declarations (they set each tenant's lane
// interval, hence its admit/shed split), while achieved throughput is wall
// clock — how many admission decisions per second the front end sustains.
// By default (-rate 0) the ramp is capacity-relative: blessload probes the
// deployment's iso service time and starts at half the per-tenant
// bubble-free rate (guaranteed in-quota, zero shed), doubling until the
// shed knee.
//
// A short smoke ramp (the CI service-load job):
//
//	blessload -addr localhost:7600 -tenants 4 -steps 4 -duration 2s \
//	    -check -min-rps 10000
//
// Deterministic-intake verification (the serial-vs-concurrent digest gate):
//
//	blessload -addr localhost:7600 -verify -verify-requests 4000
//
// -verify drives the exact same per-tenant seq streams through a 1-worker
// (serial) and an N-worker (concurrent) deployment — at rates high enough
// to shed — and requires the two completion digests to match bit for bit.
//
// The last line of output is a JSON result record (machine-readable for
// CI); with -check the exit status enforces -min-rps, the §6.9 budget, a
// shed-rate ceiling on the first (in-quota) step, and zero serve-invariant
// violations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/rpc"
	"sync"
	"time"

	"bless/internal/metrics"
	"bless/internal/serveapi"
	"bless/internal/sim"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7600", "blessd RPC address")
		tenants  = flag.Int("tenants", 4, "tenant count")
		app      = flag.String("app", "resnet50", "application per tenant")
		quota    = flag.Float64("quota", 0, "per-tenant quota (0 = spread 0.9/tenants)")
		gpus     = flag.Int("gpus", 1, "pool size for the placement pass")
		gpuSMs   = flag.Int("gpu-sms", 0, "per-device SM count (0 = 108)")
		workers  = flag.Int("workers", 4, "blessd intake workers")
		batchMax = flag.Int("batch-max", 64, "blessd batching window cap")
		boundMS  = flag.Float64("bound-ms", 0, "per-tenant shed bound in virtual ms (0 = 4x iso)")
		rate     = flag.Float64("rate", 0, "starting offered rate per tenant in virtual req/s (0 = half the probed bubble-free capacity)")
		ramp     = flag.Float64("ramp", 2, "rate multiplier per step")
		steps    = flag.Int("steps", 4, "max ramp steps")
		duration = flag.Duration("duration", 2*time.Second, "wall duration per step")
		inflight = flag.Int("inflight", 8, "pipelined in-flight requests per tenant")
		conns    = flag.Int("conns", 4, "TCP connections to spread tenants over")

		verify    = flag.Bool("verify", false, "run the serial-vs-concurrent digest check instead of a ramp")
		verifyReq = flag.Int("verify-requests", 4000, "requests per tenant in -verify mode")

		check    = flag.Bool("check", false, "exit nonzero when thresholds fail")
		minRPS   = flag.Float64("min-rps", 0, "aggregate achieved req/s floor (-check)")
		maxShed0 = flag.Float64("max-shed-first", 0.01, "shed-rate ceiling on the first, in-quota step (-check)")
		kneeShed = flag.Float64("knee-shed", 0.5, "shed fraction that marks the knee and stops the ramp")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("blessload: ")

	cfg := loadConfig{
		addr: *addr, tenants: *tenants, app: *app, quota: *quota,
		gpus: *gpus, gpuSMs: *gpuSMs, workers: *workers, batchMax: *batchMax,
		boundMS: *boundMS, inflight: *inflight, conns: *conns,
	}
	if cfg.quota <= 0 {
		cfg.quota = 0.9 * float64(cfg.gpus) / float64(cfg.tenants)
	}

	if *verify {
		if err := runVerify(cfg, *verifyReq); err != nil {
			log.Fatal(err)
		}
		return
	}

	result, err := runRamp(cfg, *rate, *ramp, *steps, *duration, *kneeShed)
	if err != nil {
		log.Fatal(err)
	}
	out, _ := json.Marshal(result)
	fmt.Println(string(out))
	if *check {
		if err := result.enforce(*minRPS, *maxShed0); err != nil {
			log.Fatal(err)
		}
	}
}

type loadConfig struct {
	addr              string
	tenants           int
	app               string
	quota             float64
	gpus, gpuSMs      int
	workers, batchMax int
	boundMS           float64
	inflight, conns   int
}

func (c loadConfig) tenantSpecs(rate float64) []serveapi.ServeTenant {
	out := make([]serveapi.ServeTenant, c.tenants)
	for i := range out {
		out[i] = serveapi.ServeTenant{
			Name:    fmt.Sprintf("t%03d", i),
			App:     c.app,
			Quota:   c.quota,
			RateRPS: rate,
			BoundMS: c.boundMS,
		}
	}
	return out
}

func (c loadConfig) dial() ([]*rpc.Client, error) {
	n := c.conns
	if n <= 0 {
		n = 1
	}
	clients := make([]*rpc.Client, n)
	for i := range clients {
		cl, err := rpc.Dial("tcp", c.addr)
		if err != nil {
			for _, done := range clients[:i] {
				done.Close()
			}
			return nil, fmt.Errorf("dial %s: %w", c.addr, err)
		}
		clients[i] = cl
	}
	return clients, nil
}

func closeAll(clients []*rpc.Client) {
	for _, cl := range clients {
		cl.Close()
	}
}

// stepResult is one ramp step's outcome.
type stepResult struct {
	TargetRPS     float64  `json:"offered_rps"`  // aggregate declared virtual rate
	AchievedRPS   float64  `json:"achieved_rps"` // completed decisions per wall second
	Completed     uint64   `json:"completed"`
	Admitted      uint64   `json:"admitted"`
	Shed          uint64   `json:"shed"`
	ShedRate      float64  `json:"shed_rate"`
	LatencyP50US  float64  `json:"latency_p50_us"` // client-side RPC round-trip
	LatencyP99US  float64  `json:"latency_p99_us"`
	DecisionNS    float64  `json:"decision_ns"` // server per-decision cost
	BudgetNS      int64    `json:"budget_ns"`   // §6.9 per-request budget
	WithinBudget  bool     `json:"within_budget"`
	BatchMeanSize float64  `json:"batch_mean_size"`
	Digest        string   `json:"digest"`
	Violations    []string `json:"violations,omitempty"`
}

// rampResult is the whole run's outcome; the knee is the last step driven.
type rampResult struct {
	Steps   []stepResult `json:"steps"`
	KneeRPS float64      `json:"knee_rps"` // last sustained aggregate rate
}

func (r rampResult) enforce(minRPS, maxShedFirst float64) error {
	if len(r.Steps) == 0 {
		return fmt.Errorf("check: no steps completed")
	}
	best := 0.0
	for _, s := range r.Steps {
		if s.AchievedRPS > best {
			best = s.AchievedRPS
		}
		if len(s.Violations) > 0 {
			return fmt.Errorf("check: serve invariant violations: %v", s.Violations)
		}
		if !s.WithinBudget {
			return fmt.Errorf("check: per-decision cost %.0fns exceeds §6.9 budget %dns at %.0f rps",
				s.DecisionNS, s.BudgetNS, s.TargetRPS)
		}
	}
	if first := r.Steps[0]; first.ShedRate > maxShedFirst {
		return fmt.Errorf("check: first (in-quota) step shed %.2f%% > %.2f%%",
			100*first.ShedRate, 100*maxShedFirst)
	}
	if best < minRPS {
		return fmt.Errorf("check: best achieved %.0f req/s < floor %.0f", best, minRPS)
	}
	return nil
}

// probeCapacity opens a throwaway 1-request-per-second deployment to read
// the derived lane parameters and returns the per-tenant bubble-free rate
// (1/iso service time) in virtual req/s.
func probeCapacity(cfg loadConfig) (float64, error) {
	clients, err := cfg.dial()
	if err != nil {
		return 0, err
	}
	defer closeAll(clients)
	ctl := clients[0]
	var opened serveapi.ServeOpenReply
	if err := ctl.Call("Planner.ServeOpen", serveapi.ServeOpenRequest{
		Tenants: cfg.tenantSpecs(1),
		GPUs:    cfg.gpus,
		GPUSMs:  cfg.gpuSMs,
		Workers: 1,
	}, &opened); err != nil {
		return 0, fmt.Errorf("capacity probe: %w", err)
	}
	var closed serveapi.ServeCloseReply
	if err := ctl.Call("Planner.ServeClose", struct{}{}, &closed); err != nil {
		return 0, fmt.Errorf("capacity probe close: %w", err)
	}
	service := opened.Tenants[0].ServiceNS
	if service <= 0 {
		return 0, fmt.Errorf("capacity probe: degenerate service time %dns", service)
	}
	return 1e9 / float64(service), nil
}

// runRamp drives the rate ladder and stops at the shed knee. With rate 0 the
// ladder is capacity-relative: it starts at half the probed per-tenant
// bubble-free rate, so the first step is in-quota by construction.
func runRamp(cfg loadConfig, rate, ramp float64, steps int, dur time.Duration, kneeShed float64) (rampResult, error) {
	var result rampResult
	if rate <= 0 {
		capacity, err := probeCapacity(cfg)
		if err != nil {
			return result, err
		}
		rate = capacity / 2
		log.Printf("probed capacity: %.1f virtual req/s per tenant; starting at %.1f", capacity, rate)
	}
	for i := 0; i < steps; i++ {
		step, err := runStep(cfg, rate, dur, 0)
		if err != nil {
			return result, fmt.Errorf("step %d (rate %.0f): %w", i, rate, err)
		}
		result.Steps = append(result.Steps, step)
		log.Printf("step %d: offered %.0f virtual rps, achieved %.0f rps, shed %.2f%%, p99 %.0fus, decision %.0fns (budget %dns)",
			i, step.TargetRPS, step.AchievedRPS, 100*step.ShedRate, step.LatencyP99US, step.DecisionNS, step.BudgetNS)
		result.KneeRPS = step.AchievedRPS
		if step.ShedRate > kneeShed {
			log.Printf("knee at offered %.0f virtual rps (shed %.2f%%)", step.TargetRPS, 100*step.ShedRate)
			break
		}
		rate *= ramp
	}
	return result, nil
}

// runStep opens a deployment, drives every tenant closed-loop for dur (or
// exactly requests per tenant when requests > 0), closes it, and folds the
// daemon's accounting with the client-side latency digest.
func runStep(cfg loadConfig, rate float64, dur time.Duration, requests int) (stepResult, error) {
	var step stepResult
	clients, err := cfg.dial()
	if err != nil {
		return step, err
	}
	defer closeAll(clients)
	ctl := clients[0]

	var opened serveapi.ServeOpenReply
	open := serveapi.ServeOpenRequest{
		Tenants:  cfg.tenantSpecs(rate),
		GPUs:     cfg.gpus,
		GPUSMs:   cfg.gpuSMs,
		Workers:  cfg.workers,
		BatchMax: cfg.batchMax,
	}
	if err := ctl.Call("Planner.ServeOpen", open, &opened); err != nil {
		return step, err
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		lat       metrics.Digest
		completed uint64
		driveErr  error
	)
	deadline := time.Now().Add(dur)
	for i, t := range open.Tenants {
		wg.Add(1)
		go func(name string, cl *rpc.Client) {
			defer wg.Done()
			var local metrics.Digest
			n, err := driveTenant(cl, name, deadline, requests, cfg.inflight, &local)
			mu.Lock()
			completed += n
			lat.Merge(&local)
			if err != nil && driveErr == nil {
				driveErr = err
			}
			mu.Unlock()
		}(t.Name, clients[i%len(clients)])
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	var closed serveapi.ServeCloseReply
	if err := ctl.Call("Planner.ServeClose", struct{}{}, &closed); err != nil {
		return step, err
	}
	if driveErr != nil {
		return step, driveErr
	}

	stats := closed.Stats
	step.TargetRPS = rate * float64(cfg.tenants)
	step.Completed = completed
	step.AchievedRPS = float64(completed) / elapsed.Seconds()
	step.Admitted = stats.Admitted
	step.Shed = stats.Shed
	if stats.Offered > 0 {
		step.ShedRate = float64(stats.Shed) / float64(stats.Offered)
	}
	sum := lat.Summary()
	step.LatencyP50US = float64(sum.P50) / 1e3
	step.LatencyP99US = float64(sum.P99) / 1e3
	step.DecisionNS = stats.DecisionMeanNS
	step.BudgetNS = stats.BudgetNS
	step.WithinBudget = stats.WithinBudget
	step.BatchMeanSize = stats.BatchMeanSize
	step.Digest = stats.Digest
	step.Violations = stats.Violations
	return step, nil
}

// driveTenant runs one tenant's closed loop: up to inflight pipelined calls,
// a new request issued the moment a slot frees, until the deadline (or
// exactly total requests when total > 0). The loop is deliberately unpaced —
// offered-rate semantics live in the lane's virtual clock, so wall-clock
// throughput here measures the front end, not the generator. The latency
// digest records wall round-trip times.
func driveTenant(cl *rpc.Client, name string, deadline time.Time, total, inflight int, lat *metrics.Digest) (uint64, error) {
	if inflight <= 0 {
		inflight = 1
	}
	type pending struct {
		call *rpc.Call
		sent time.Time
	}
	window := make([]pending, 0, inflight)
	reap := func(p pending) error {
		<-p.call.Done
		lat.Observe(sim.Time(time.Since(p.sent)))
		return p.call.Error
	}
	var n uint64
	for seq := 0; ; seq++ {
		if total > 0 {
			if seq >= total {
				break
			}
		} else if time.Now().After(deadline) {
			break
		}
		if len(window) == inflight {
			if err := reap(window[0]); err != nil {
				return n, fmt.Errorf("tenant %s seq %d: %w", name, window[0].call.Reply.(*serveapi.ServeReply).Seq, err)
			}
			n++
			copy(window, window[1:])
			window = window[:len(window)-1]
		}
		reply := &serveapi.ServeReply{}
		call := cl.Go("Planner.Serve", serveapi.ServeRequest{Tenant: name, Seq: seq}, reply, make(chan *rpc.Call, 1))
		window = append(window, pending{call: call, sent: time.Now()})
	}
	for _, p := range window {
		if err := reap(p); err != nil {
			return n, fmt.Errorf("tenant %s drain: %w", name, err)
		}
		n++
	}
	return n, nil
}

// runVerify proves intake determinism: the same per-tenant seq streams —
// overloaded enough to shed — through a serial (1-worker) and a concurrent
// (N-worker) deployment must produce bit-identical digests.
func runVerify(cfg loadConfig, requests int) error {
	// Overload deliberately: a rate far above the bubble-free quota rate
	// forces the shed path into the digest on both runs.
	rate := 1e6
	digests := make([]string, 2)
	sheds := make([]uint64, 2)
	for i, workers := range []int{1, cfg.workers} {
		run := cfg
		run.workers = workers
		step, err := runStep(run, rate, time.Minute, requests)
		if err != nil {
			return fmt.Errorf("verify (%d workers): %w", workers, err)
		}
		if step.Completed != uint64(requests*cfg.tenants) {
			return fmt.Errorf("verify (%d workers): completed %d of %d requests", workers, step.Completed, requests*cfg.tenants)
		}
		if len(step.Violations) > 0 {
			return fmt.Errorf("verify (%d workers): invariant violations: %v", workers, step.Violations)
		}
		digests[i] = step.Digest
		sheds[i] = step.Shed
		log.Printf("verify: %d worker(s): digest %s, shed %d/%d", workers, step.Digest, step.Shed, requests*cfg.tenants)
	}
	if digests[0] != digests[1] {
		fmt.Println(`{"verify":"FAIL"}`)
		return fmt.Errorf("verify: digest mismatch: serial %s != concurrent %s", digests[0], digests[1])
	}
	if sheds[0] == 0 {
		return fmt.Errorf("verify: workload never shed — raise -verify-requests to exercise the shed path")
	}
	fmt.Printf("{\"verify\":\"OK\",\"digest\":%q,\"shed\":%d}\n", digests[0], sheds[0])
	return nil
}
