package bless

import (
	"testing"
	"time"
)

func TestModelsCatalog(t *testing.T) {
	names := Models()
	if len(names) != 11 {
		t.Fatalf("catalog has %d models, want 11", len(names))
	}
	want := map[string]bool{"vgg11": true, "resnet50": true, "bert-train": true, "llm": true}
	for _, n := range names {
		delete(want, n)
	}
	for n := range want {
		t.Errorf("catalog missing %q", n)
	}
}

func TestSessionQuickstart(t *testing.T) {
	s, err := NewSession(SessionConfig{
		Clients: []ClientConfig{
			{App: "vgg11", Quota: 1.0 / 3},
			{App: "resnet50", Quota: 2.0 / 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitAt(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitAt(1, 0); err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if len(res.Requests) != 2 {
		t.Fatalf("%d requests completed, want 2", len(res.Requests))
	}
	for i, cs := range res.PerClient {
		if cs.Completed != 1 {
			t.Errorf("client %d completed %d, want 1", i, cs.Completed)
		}
		if cs.MeanLatency <= 0 {
			t.Errorf("client %d mean latency %v", i, cs.MeanLatency)
		}
	}
	// The pair's average latency must beat the average ISO baseline — the
	// headline bubble-squeezing claim.
	avg := (res.PerClient[0].MeanLatency + res.PerClient[1].MeanLatency) / 2
	iso := (res.PerClient[0].ISOLatency + res.PerClient[1].ISOLatency) / 2
	if avg >= iso {
		t.Errorf("BLESS average %v not below ISO average %v", avg, iso)
	}
}

func TestSessionClosedLoop(t *testing.T) {
	s, err := NewSession(SessionConfig{
		Clients: []ClientConfig{
			{App: "resnet50", Quota: 0.5},
			{App: "resnet50", Quota: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		if err := s.SubmitClosedLoop(c, 9*time.Millisecond, 0, 200*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Run()
	if res.PerClient[0].Completed < 5 || res.PerClient[1].Completed < 5 {
		t.Fatalf("closed loops completed %d/%d requests, want >= 5 each",
			res.PerClient[0].Completed, res.PerClient[1].Completed)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization %g out of range", res.Utilization)
	}
}

func TestSessionBaselines(t *testing.T) {
	for _, sys := range []string{SystemStatic, SystemTemporal, SystemGSlice, SystemUnbound, SystemREEF} {
		s, err := NewSession(SessionConfig{
			System: sys,
			Clients: []ClientConfig{
				{App: "vgg11", Quota: 0.5},
				{App: "resnet50", Quota: 0.5},
			},
		})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		s.SubmitAt(0, 0)
		s.SubmitAt(1, 0)
		res := s.Run()
		if len(res.Requests) != 2 {
			t.Errorf("%s: %d requests completed, want 2", sys, len(res.Requests))
		}
	}
}

func TestSessionValidation(t *testing.T) {
	if _, err := NewSession(SessionConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewSession(SessionConfig{Clients: []ClientConfig{{App: "nope", Quota: 0.5}}}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := NewSession(SessionConfig{System: "WAT", Clients: []ClientConfig{{App: "vgg11", Quota: 0.5}}}); err == nil {
		t.Error("unknown system accepted")
	}
	s, err := NewSession(SessionConfig{Clients: []ClientConfig{{App: "vgg11", Quota: 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SubmitAt(3, 0); err == nil {
		t.Error("out-of-range client accepted")
	}
	s.SubmitAt(0, 0)
	s.Run()
	if err := s.SubmitAt(0, 0); err == nil {
		t.Error("submit after Run accepted")
	}
}

func TestSessionSLOTarget(t *testing.T) {
	iso, err := ISOLatency("resnet50", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(SessionConfig{
		Clients: []ClientConfig{
			{App: "resnet50", Quota: 0.5, SLOTarget: 2 * iso},
			{App: "vgg11", Quota: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SubmitAt(0, 0)
	s.SubmitAt(1, 0)
	res := s.Run()
	if res.PerClient[0].MeanLatency > 2*iso {
		t.Errorf("SLO-targeted client latency %v exceeds its loose 2x target %v",
			res.PerClient[0].MeanLatency, 2*iso)
	}
}

func TestSessionCustomGPU(t *testing.T) {
	s, err := NewSession(SessionConfig{
		GPU: GPUConfig{SMs: 56},
		Clients: []ClientConfig{
			{App: "resnet50", Quota: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SubmitAt(0, 0)
	res := s.Run()
	full, _ := SoloLatency("resnet50")
	if res.PerClient[0].MeanLatency <= full {
		t.Errorf("latency on a 56-SM device (%v) not above the 108-SM solo (%v)",
			res.PerClient[0].MeanLatency, full)
	}
}

func TestSessionZicoTraining(t *testing.T) {
	s, err := NewSession(SessionConfig{
		System: SystemZico,
		Clients: []ClientConfig{
			{App: "vgg11-train", Quota: 0.5},
			{App: "resnet50-train", Quota: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SubmitAt(0, 0)
	s.SubmitAt(1, 0)
	res := s.Run()
	if len(res.Requests) != 2 {
		t.Errorf("%d iterations completed, want 2", len(res.Requests))
	}
}

func TestISOAndSoloLatency(t *testing.T) {
	solo, err := SoloLatency("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	iso, err := ISOLatency("resnet50", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if iso <= solo {
		t.Errorf("ISO at half quota (%v) not above full-GPU solo (%v)", iso, solo)
	}
	if _, err := ISOLatency("nope", 0.5); err == nil {
		t.Error("unknown app accepted")
	}
	// Table 1: resnet50 solo is 8.7ms.
	if solo < 8500*time.Microsecond || solo > 8900*time.Microsecond {
		t.Errorf("resnet50 solo %v, want ~8.7ms (Table 1)", solo)
	}
}

func TestSessionTuning(t *testing.T) {
	s, err := NewSession(SessionConfig{
		Tuning: Tuning{MaxSquadKernels: 10, SplitRatio: 0.75},
		Clients: []ClientConfig{
			{App: "vgg11", Quota: 0.5},
			{App: "resnet50", Quota: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SubmitAt(0, 0)
	s.SubmitAt(1, 0)
	if res := s.Run(); len(res.Requests) != 2 {
		t.Errorf("tuned session completed %d requests, want 2", len(res.Requests))
	}
}

func TestPlaceApps(t *testing.T) {
	pl, err := PlaceApps([]ClientConfig{
		{App: "vgg11", Quota: 0.6},
		{App: "resnet50", Quota: 0.6},
		{App: "bert", Quota: 0.4},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl) != 3 {
		t.Fatalf("placed %d apps, want 3", len(pl))
	}
	if pl[0] == pl[1] {
		t.Error("two 0.6-quota apps on one GPU")
	}
	if _, err := PlaceApps(nil, 0); err == nil {
		t.Error("zero GPUs accepted")
	}
	if _, err := PlaceApps([]ClientConfig{{App: "nope", Quota: 0.5}}, 1); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := PlaceApps([]ClientConfig{
		{App: "vgg11", Quota: 0.9}, {App: "resnet50", Quota: 0.9},
	}, 1); err == nil {
		t.Error("infeasible placement accepted")
	}
}
