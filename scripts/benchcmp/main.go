// Command benchcmp gates the simulator's recorded performance envelope. It
// parses `go test -bench -benchmem` output on stdin and compares every
// benchmark present in the baseline file (BENCH_sim.json):
//
//   - allocs/op may not exceed the recorded value by more than 1% — per-run
//     allocation counts are deterministic (the slack only absorbs one-time
//     setup amortized over a varying iteration count), so the zero-alloc
//     hot-path benchmarks are gated exactly and any growth is a real
//     regression, not noise;
//   - when the entry records a pre-optimization baseline, allocs/op must stay
//     at or below half of it (the issue's ">=50% allocation drop" acceptance
//     criterion, enforced continuously rather than once);
//   - ns/op may exceed the recorded value by at most -tolerance (default 50%,
//     generous because shared CI runners are noisy; the deterministic
//     virtual-time smoke gate is the tight latency check).
//
// With -record, the recorded values are instead rewritten from stdin (the
// pre-optimization baselines are preserved) — run after an intentional
// performance change.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

type metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type entry struct {
	// Package documents where the benchmark lives.
	Package string `json:"package"`
	// PreOpt is the frozen pre-optimization measurement the allocation-drop
	// criterion is checked against; never rewritten by -record.
	PreOpt *metrics `json:"baseline_pre_opt,omitempty"`
	// Recorded is the committed post-optimization measurement.
	Recorded metrics `json:"recorded"`
}

type baseline struct {
	Note       string           `json:"note"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

// benchLine matches one -benchmem result row, e.g.
// "BenchmarkReschedule-8  3049242  392.8 ns/op  0 B/op  0 allocs/op".
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func main() {
	basePath := flag.String("baseline", "BENCH_sim.json", "committed benchmark baseline")
	tol := flag.Float64("tolerance", 0.50, "allowed relative ns/op growth over the recorded value")
	record := flag.Bool("record", false, "rewrite recorded values from stdin instead of comparing")
	flag.Parse()

	raw, err := os.ReadFile(*basePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("%s: %w", *basePath, err))
	}

	got := map[string]metrics{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		var cur metrics
		cur.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			cur.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
			cur.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		got[m[1]] = cur
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	if *record {
		for name, cur := range got {
			e, ok := base.Benchmarks[name]
			if !ok {
				continue
			}
			e.Recorded = cur
			base.Benchmarks[name] = e
		}
		out, err := json.MarshalIndent(&base, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*basePath, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcmp: recorded %d benchmarks to %s\n", len(got), *basePath)
		return
	}

	failed := false
	for name, e := range base.Benchmarks {
		cur, ok := got[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcmp: FAIL %s: not present in bench output (gate did not run it)\n", name)
			failed = true
			continue
		}
		entryOK := true
		if cur.AllocsPerOp > e.Recorded.AllocsPerOp*1.01 {
			fmt.Fprintf(os.Stderr, "benchcmp: FAIL %s: %g allocs/op exceeds recorded %g by more than 1%% (allocation counts are deterministic)\n",
				name, cur.AllocsPerOp, e.Recorded.AllocsPerOp)
			entryOK = false
		}
		if e.PreOpt != nil && cur.AllocsPerOp > 0.5*e.PreOpt.AllocsPerOp {
			fmt.Fprintf(os.Stderr, "benchcmp: FAIL %s: %g allocs/op is not a >=50%% drop from the pre-optimization %g\n",
				name, cur.AllocsPerOp, e.PreOpt.AllocsPerOp)
			entryOK = false
		}
		if limit := e.Recorded.NsPerOp * (1 + *tol); cur.NsPerOp > limit {
			fmt.Fprintf(os.Stderr, "benchcmp: FAIL %s: %.1f ns/op exceeds recorded %.1f by more than %.0f%%\n",
				name, cur.NsPerOp, e.Recorded.NsPerOp, *tol*100)
			entryOK = false
		}
		if entryOK {
			fmt.Printf("benchcmp: ok %s: %.1f ns/op, %g allocs/op (recorded %.1f ns/op, %g allocs/op)\n",
				name, cur.NsPerOp, cur.AllocsPerOp, e.Recorded.NsPerOp, e.Recorded.AllocsPerOp)
		} else {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcmp:", err)
	os.Exit(1)
}
