#!/bin/sh
# check.sh — the repository's CI gate: formatting, vet, build, the full test
# suite under the race detector (which also runs the harness fuzz test's seed
# corpus), the simulator invariant stage (every experiment verified by
# internal/invariant) and the determinism stage (same-configuration runs must
# fold to identical event digests). Run from anywhere inside the repo.
#
# SHORT=1 keeps the local gate fast: tests run with -short (reduced trial
# counts) and the invariant stage covers one experiment instead of three.
set -eu

cd "$(dirname "$0")/.."

# Preflight: fail fast with a real message instead of dying mid-gate on the
# first `go` invocation. `command -v` covers a missing toolchain; the version
# probe covers a toolchain that exists but cannot run (e.g. the go.mod
# toolchain directive needs a download and the module cache / GOTOOLCHAIN
# area is cold or read-only).
if ! command -v go >/dev/null 2>&1; then
    echo "check.sh: 'go' not found on PATH — install the Go toolchain (go.mod pins the version)" >&2
    exit 1
fi
if ! go version >/dev/null 2>&1; then
    echo "check.sh: 'go version' failed — the toolchain pinned by go.mod may need a download and the cache is cold; run 'go version' by hand to see why" >&2
    exit 1
fi
if ! command -v gofmt >/dev/null 2>&1; then
    echo "check.sh: 'gofmt' not found on PATH — it ships with the Go toolchain" >&2
    exit 1
fi

SHORT="${SHORT:-}"
short_flag=""
if [ -n "$SHORT" ]; then
    short_flag="-short"
fi

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race $short_flag ./...

echo "== invariants =="
# Replay representative experiments with the invariant checker enforcing the
# universal classes (SM conservation, event order/FIFO) on every run.
if [ -n "$SHORT" ]; then
    go run ./cmd/blessbench -invariants -quick -exp fig1
else
    for e in fig1 fig12 fig16; do
        go run ./cmd/blessbench -invariants -quick -exp "$e"
    done
fi

echo "== observability goldens =="
# Exported formats are byte-stable: Chrome trace, Prometheus exposition and
# the per-tenant SLO JSON must match their committed goldens exactly
# (refresh intentionally with: go test ./internal/obs/ -run Golden -update-golden).
go test -run 'TestChromeTraceGolden|TestPrometheusGolden|TestSLOJSONGolden' -count=1 ./internal/obs/

echo "== fleet control plane =="
# The fleet smoke gate: 24 tenants over a 4-device heterogeneous pool with
# live migration, rebalancing and autoscaling; fails unless every fleet
# invariant passes and the digest is bit-identical across serial, parallel
# and migration-order-permuted runs.
go run ./cmd/blessbench -fleet -smoke

echo "== fleet shard determinism =="
# The sharded engine gate: the smoke fleet scenario (with a device crash
# timed mid-migration) run on 1 shard, on 4 engine shards, and with the
# device→shard mapping reversed must produce bit-identical completion and
# checker digests. CI runs the full-scale matrix at 1/2/4/8 shards.
go run ./cmd/blessbench -fleet -smoke -shards 4

echo "== snapshot replay =="
# The snapshot/restore gate, across a real process boundary: export the smoke
# fleet scenario at the mid-horizon barrier, then restore it in a separate
# process — the import replays the embedded scenario to the barrier, proves
# the replayed state byte-identical to the snapshot's state section,
# continues to completion, and fails unless completion digest, checker digest
# and stats match an uninterrupted run (here at a different shard count).
snap_file=$(mktemp)
trap 'rm -f "$snap_file"' EXIT
go run ./cmd/blessbench -fleet -smoke -snapshot "$snap_file"
go run ./cmd/blessbench -snapshot-import "$snap_file" -shards 2
rm -f "$snap_file"

echo "== serving front end =="
# The serving-path smoke gate over real TCP: blessd boots, blessload proves
# serial-vs-concurrent digest identity (under load shed) and runs a
# closed-loop ramp to the shed knee with first-step shed, §6.9 overhead and
# throughput enforcement.
if [ -n "$SHORT" ]; then
    DUR=1s MIN_RPS=5000 ./scripts/service_load.sh
else
    ./scripts/service_load.sh
fi

echo "== determinism =="
# Same-seed runs must produce byte-identical event digests, and the
# metamorphic relations (client permutation, quota scaling) must hold.
go test -run 'TestDeterminismDigest|TestMetamorphicInvariantVerdicts' -count=1 $short_flag ./internal/harness/

echo "OK"
