#!/bin/sh
# check.sh — the repository's CI gate: formatting, vet, build, the full test
# suite under the race detector (which also runs the harness fuzz test's seed
# corpus), the simulator invariant stage (every experiment verified by
# internal/invariant) and the determinism stage (same-configuration runs must
# fold to identical event digests). Run from anywhere inside the repo.
#
# SHORT=1 keeps the local gate fast: tests run with -short (reduced trial
# counts) and the invariant stage covers one experiment instead of three.
set -eu

cd "$(dirname "$0")/.."

SHORT="${SHORT:-}"
short_flag=""
if [ -n "$SHORT" ]; then
    short_flag="-short"
fi

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race $short_flag ./...

echo "== invariants =="
# Replay representative experiments with the invariant checker enforcing the
# universal classes (SM conservation, event order/FIFO) on every run.
if [ -n "$SHORT" ]; then
    go run ./cmd/blessbench -invariants -quick -exp fig1
else
    for e in fig1 fig12 fig16; do
        go run ./cmd/blessbench -invariants -quick -exp "$e"
    done
fi

echo "== observability goldens =="
# Exported formats are byte-stable: Chrome trace, Prometheus exposition and
# the per-tenant SLO JSON must match their committed goldens exactly
# (refresh intentionally with: go test ./internal/obs/ -run Golden -update-golden).
go test -run 'TestChromeTraceGolden|TestPrometheusGolden|TestSLOJSONGolden' -count=1 ./internal/obs/

echo "== fleet control plane =="
# The fleet smoke gate: 24 tenants over a 4-device heterogeneous pool with
# live migration, rebalancing and autoscaling; fails unless every fleet
# invariant passes and the digest is bit-identical across serial, parallel
# and migration-order-permuted runs.
go run ./cmd/blessbench -fleet -smoke

echo "== determinism =="
# Same-seed runs must produce byte-identical event digests, and the
# metamorphic relations (client permutation, quota scaling) must hold.
go test -run 'TestDeterminismDigest|TestMetamorphicInvariantVerdicts' -count=1 $short_flag ./internal/harness/

echo "OK"
