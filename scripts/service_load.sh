#!/bin/sh
# service_load.sh — the serving-path smoke gate: build blessd and blessload,
# boot the daemon, and run the two blessload gates against it over real TCP:
#
#   1. the determinism gate (-verify): identical per-tenant request streams
#      through a serial (1-worker) and a concurrent (N-worker) deployment —
#      overloaded enough to shed — must fold to bit-identical digests;
#   2. the closed-loop ramp (-check): capacity-relative rate ladder up to the
#      shed knee, failing on first-step (in-quota) shedding, on per-decision
#      scheduler cost above the §6.9 budget, on serve-invariant violations,
#      or on sustained throughput below MIN_RPS.
#
#   ./scripts/service_load.sh                 full gate (MIN_RPS=10000)
#   DUR=1s MIN_RPS=5000 ./scripts/service_load.sh   faster local variant
set -eu

cd "$(dirname "$0")/.."

PORT="${PORT:-7641}"
DUR="${DUR:-2s}"
MIN_RPS="${MIN_RPS:-10000}"
STEPS="${STEPS:-4}"

bindir=$(mktemp -d)
blessd_pid=""
cleanup() {
    if [ -n "$blessd_pid" ]; then
        kill "$blessd_pid" 2>/dev/null || true
    fi
    rm -rf "$bindir"
}
trap cleanup EXIT

echo "== build blessd + blessload =="
go build -o "$bindir/blessd" ./cmd/blessd
go build -o "$bindir/blessload" ./cmd/blessload

echo "== boot blessd on 127.0.0.1:$PORT =="
"$bindir/blessd" -listen "127.0.0.1:$PORT" &
blessd_pid=$!

# Readiness: the daemon listens before accepting, so the first dial that
# succeeds means it is up; retry briefly to cover process startup.
i=0
until "$bindir/blessload" -addr "127.0.0.1:$PORT" -verify -verify-requests 100 >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 25 ]; then
        echo "service_load.sh: blessd did not come up on 127.0.0.1:$PORT" >&2
        exit 1
    fi
    sleep 0.2
done

echo "== digest gate: serial vs concurrent intake (under load shed) =="
"$bindir/blessload" -addr "127.0.0.1:$PORT" -verify -verify-requests 4000

echo "== closed-loop ramp to the shed knee =="
"$bindir/blessload" -addr "127.0.0.1:$PORT" -steps "$STEPS" -duration "$DUR" \
    -check -min-rps "$MIN_RPS"

echo "OK"
