#!/bin/sh
# bench_compare.sh — the simulator performance gate: runs the hot-path and
# executor benchmarks and compares them against the committed envelope in
# BENCH_sim.json (see scripts/benchcmp for the exact rules — deterministic
# allocation counts gate exactly, the frozen pre-optimization baseline
# enforces the >=50% allocation drop, ns/op carries a noise tolerance).
#
#   ./scripts/bench_compare.sh              compare against BENCH_sim.json
#   RECORD=1 ./scripts/bench_compare.sh     refresh the recorded values
#   NSOP_TOL=0.25 ./scripts/bench_compare.sh   tighten the ns/op tolerance
set -eu

cd "$(dirname "$0")/.."

out=$(mktemp)
trap 'rm -f "$out"' EXIT

echo "== bench: simulator hot path =="
go test -run '^$' -bench 'BenchmarkReschedule$|BenchmarkKernelHotPathUntraced$' -benchmem ./internal/sim/ | tee -a "$out"
echo "== bench: untraced observability fast path (must stay zero-alloc) =="
go test -run '^$' -bench 'BenchmarkUntracedSpanPath$' -benchmem ./internal/obs/ | tee -a "$out"
echo "== bench: experiment batch (serial vs parallel executor) =="
go test -run '^$' -bench 'BenchmarkExperimentBatch' -benchmem ./internal/harness/ | tee -a "$out"
echo "== bench: end-to-end simulator throughput =="
go test -run '^$' -bench 'BenchmarkSimulatorThroughput$' -benchmem . | tee -a "$out"
echo "== bench: fleet control plane (smoke scenario) =="
go test -run '^$' -bench 'BenchmarkFleetSmoke$' -benchmem ./internal/harness/ | tee -a "$out"

mode=""
if [ -n "${RECORD:-}" ]; then
    mode="-record"
fi
go run ./scripts/benchcmp -baseline BENCH_sim.json -tolerance "${NSOP_TOL:-0.50}" $mode <"$out"
