#!/bin/sh
# bench_compare.sh — the simulator performance gate: runs the hot-path and
# executor benchmarks and compares them against the committed envelope in
# BENCH_sim.json (see scripts/benchcmp for the exact rules — deterministic
# allocation counts gate exactly, the frozen pre-optimization baseline
# enforces the >=50% allocation drop, ns/op carries a noise tolerance).
#
#   ./scripts/bench_compare.sh              compare against BENCH_sim.json
#   RECORD=1 ./scripts/bench_compare.sh     refresh the recorded values
#   NSOP_TOL=0.25 ./scripts/bench_compare.sh   tighten the ns/op tolerance
set -eu

cd "$(dirname "$0")/.."

out=$(mktemp)
step=$(mktemp)
trap 'rm -f "$out" "$step"' EXIT

# bench <pattern> <package>: run one benchmark invocation, echo its output
# and append it to the comparison transcript. POSIX sh has no pipefail, so a
# plain `go test | tee` would mask a benchmark failure behind tee's exit 0 —
# capture to a file first and propagate go test's status explicitly.
bench() {
    if ! go test -run '^$' -bench "$1" -benchmem "$2" >"$step" 2>&1; then
        cat "$step" >&2
        echo "bench_compare.sh: benchmark $1 in $2 failed" >&2
        exit 1
    fi
    cat "$step"
    cat "$step" >>"$out"
}

echo "== bench: simulator hot path =="
bench 'BenchmarkReschedule$|BenchmarkKernelHotPathUntraced$' ./internal/sim/
echo "== bench: untraced observability fast path (must stay zero-alloc) =="
bench 'BenchmarkUntracedSpanPath$' ./internal/obs/
echo "== bench: experiment batch (serial vs parallel executor) =="
bench 'BenchmarkExperimentBatch' ./internal/harness/
echo "== bench: end-to-end simulator throughput =="
bench 'BenchmarkSimulatorThroughput$' .
echo "== bench: fleet control plane (smoke scenario) =="
bench 'BenchmarkFleetSmoke$' ./internal/harness/
echo "== bench: sharded fleet engine (32-GPU scenario at 1/4/8 shards) =="
bench 'BenchmarkFleetSharded(1|4|8)$' ./internal/harness/
echo "== bench: snapshot export (smoke scenario cut at the mid-horizon barrier) =="
bench 'BenchmarkSnapshotExport$' ./internal/harness/
echo "== bench: serving fast path (steady state must stay zero-alloc) =="
bench 'BenchmarkServeSteadyState$' ./cmd/blessd/internal/planner/

mode=""
if [ -n "${RECORD:-}" ]; then
    mode="-record"
fi
go run ./scripts/benchcmp -baseline BENCH_sim.json -tolerance "${NSOP_TOL:-0.50}" $mode <"$out"
