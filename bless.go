// Package bless is a Go reproduction of BLESS, the bubble-less
// spatial-temporal GPU sharing system of "Improving GPU Sharing Performance
// through Adaptive Bubbleless Spatial-Temporal Sharing" (EuroSys '25).
//
// Multiple applications share one GPU, each provisioned a quota (a fraction
// of the GPU's SMs). BLESS schedules their kernels in fine-grained kernel
// squads, picks a per-squad execution configuration (spatial partitioning
// through MPS-style SM-restricted contexts, or unrestricted sharing), and
// squeezes the "bubbles" — idle GPU capacity that static quota isolation
// wastes — so that co-located applications see latencies at or below their
// isolated-quota baselines.
//
// The original system drives a physical Nvidia A100 through CUDA and MPS.
// This reproduction runs on a deterministic discrete-event GPU simulator
// (contexts with SM affinity, per-context device queues, a fair hardware
// scheduler, bandwidth contention, DMA transfers), so everything here
// executes in virtual time: simulations of seconds of GPU work complete in
// milliseconds of wall clock and are exactly reproducible.
//
// # Quick start
//
//	session, err := bless.NewSession(bless.SessionConfig{
//	    Clients: []bless.ClientConfig{
//	        {App: "vgg11", Quota: 1.0 / 3},
//	        {App: "resnet50", Quota: 2.0 / 3},
//	    },
//	})
//	...
//	session.SubmitAt(0, 0) // client 0, t=0
//	session.SubmitAt(1, 0)
//	result := session.Run()
//
// See the examples directory for complete programs, and internal/harness for
// the benchmark harness that regenerates every table and figure of the
// paper's evaluation.
package bless

import (
	"fmt"
	"sync"
	"time"

	"bless/internal/baselines"
	"bless/internal/core"
	"bless/internal/metrics"
	"bless/internal/model"
	"bless/internal/profiler"
	"bless/internal/sharing"
	"bless/internal/sim"
)

// profileCache memoizes offline profiles per (app, SM count) process-wide.
// Profiling is deterministic and profiles are treated as immutable after
// construction, so sessions can share them; re-profiling per session
// dominated session-construction cost (and allocation count) otherwise.
var profileCache sync.Map // "app/SMs" -> *profiler.Profile

func profileFor(app *model.App, cfg sim.Config) (*profiler.Profile, error) {
	key := fmt.Sprintf("%s/%d", app.Name, cfg.SMs)
	if p, ok := profileCache.Load(key); ok {
		return p.(*profiler.Profile), nil
	}
	p, err := profiler.ProfileApp(app, profiler.Options{Config: cfg})
	if err != nil {
		return nil, err
	}
	actual, _ := profileCache.LoadOrStore(key, p)
	return actual.(*profiler.Profile), nil
}

// Models lists the built-in Table 1 applications: the five inference models
// ("vgg11", "resnet50", "resnet101", "nasnet", "bert") and their "-train"
// variants.
func Models() []string { return model.Names() }

// System names accepted by SessionConfig.System.
const (
	// SystemBLESS is the paper's contribution (default).
	SystemBLESS = "BLESS"
	// SystemStatic is fixed MPS quota isolation (the ISO baseline when run
	// with a single client).
	SystemStatic = "STATIC"
	// SystemTemporal is round-robin time slicing.
	SystemTemporal = "TEMPORAL"
	// SystemMIG is hardware slicing with isolated bandwidth.
	SystemMIG = "MIG"
	// SystemGSlice is adaptive MPS spatial sharing.
	SystemGSlice = "GSLICE"
	// SystemUnbound is hardware-scheduler sharing without restrictions.
	SystemUnbound = "UNBOUND"
	// SystemREEF is biased sharing with even spatial partitioning.
	SystemREEF = "REEF+"
	// SystemZico is coordinated training sharing (exactly two clients).
	SystemZico = "ZICO"
)

// ClientConfig declares one application deployed on the shared GPU.
type ClientConfig struct {
	// App is a built-in application name (see Models).
	App string
	// Quota is the provisioned GPU fraction in (0, 1]. Quotas across
	// clients must sum to at most 1.
	Quota float64
	// SLOTarget, if non-zero, replaces the isolated-quota latency as the
	// client's pace target (§6.5 of the paper).
	SLOTarget time.Duration
}

// GPUConfig describes the simulated device. The zero value selects the
// paper's A100 testbed (108 SMs, 40 GB).
type GPUConfig struct {
	// SMs is the streaming-multiprocessor count (default 108).
	SMs int
	// MemoryBytes is device memory (default 40 GiB).
	MemoryBytes int64
}

// Tuning adjusts BLESS scheduler parameters; zero values select the paper's
// defaults.
type Tuning struct {
	// MaxSquadKernels caps kernels per squad (default 50).
	MaxSquadKernels int
	// SplitRatio is the Semi-SP split c% in (0,1] (default 0.5).
	SplitRatio float64
	// DisableFairSelection ablates the multi-task scheduler.
	DisableFairSelection bool
	// DisableDeterminer ablates the execution-configuration determiner.
	DisableDeterminer bool
}

// SessionConfig assembles a sharing deployment.
type SessionConfig struct {
	// System selects the scheduler (default SystemBLESS).
	System string
	// Clients are the co-located applications.
	Clients []ClientConfig
	// GPU selects the device (zero = A100 defaults).
	GPU GPUConfig
	// Tuning adjusts BLESS parameters (ignored for baselines).
	Tuning Tuning
}

// RequestResult reports one completed request.
type RequestResult struct {
	// Client is the owning client's index.
	Client int
	// Seq numbers the client's requests from 0.
	Seq int
	// Arrival and Latency are in virtual time.
	Arrival, Latency time.Duration
}

// ClientStats summarizes one client's requests after Run.
type ClientStats struct {
	// App and Quota echo the configuration.
	App string
	// Quota is the provisioned fraction.
	Quota float64
	// Completed counts finished requests.
	Completed int
	// MeanLatency, P99Latency summarize the latency distribution.
	MeanLatency, P99Latency time.Duration
	// ISOLatency is the isolated-quota baseline T[n%] from the offline
	// profile — the paper's comparison target.
	ISOLatency time.Duration
}

// Result is a completed session's outcome.
type Result struct {
	// PerClient holds per-application statistics in deployment order.
	PerClient []ClientStats
	// Requests lists every completed request in completion order.
	Requests []RequestResult
	// Utilization is average SM utilization in [0,1] over the session.
	Utilization float64
	// Elapsed is the virtual time consumed.
	Elapsed time.Duration
}

// Session is a single-GPU sharing deployment on the simulated device. Create
// with NewSession, schedule work with SubmitAt (or SubmitClosedLoop), then
// call Run once. Sessions are not safe for concurrent use and cannot be
// reused after Run.
type Session struct {
	eng     *sim.Engine
	gpu     *sim.GPU
	env     *sharing.Env
	sched   sharing.Scheduler
	clients []*sharing.Client
	seqs    []int
	results []RequestResult
	arena   sharing.RequestArena
	ran     bool
}

// NewSession validates the configuration, profiles the applications offline
// (§4.2 — results are deterministic), and deploys the chosen scheduler.
func NewSession(cfg SessionConfig) (*Session, error) {
	if len(cfg.Clients) == 0 {
		return nil, fmt.Errorf("bless: no clients configured")
	}
	simCfg := sim.DefaultConfig()
	if cfg.GPU.SMs > 0 {
		simCfg.SMs = cfg.GPU.SMs
	}
	if cfg.GPU.MemoryBytes > 0 {
		simCfg.MemoryBytes = cfg.GPU.MemoryBytes
	}

	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, simCfg)
	clients := make([]*sharing.Client, len(cfg.Clients))
	for i, cc := range cfg.Clients {
		app, err := model.Get(cc.App)
		if err != nil {
			return nil, fmt.Errorf("bless: %w", err)
		}
		prof, err := profileFor(app, simCfg)
		if err != nil {
			return nil, fmt.Errorf("bless: profiling %s: %w", cc.App, err)
		}
		clients[i] = &sharing.Client{
			ID:        i,
			App:       app,
			Profile:   prof,
			Quota:     cc.Quota,
			SLOTarget: sim.Time(cc.SLOTarget),
		}
	}

	sched, err := newScheduler(cfg)
	if err != nil {
		return nil, err
	}
	env := &sharing.Env{Eng: eng, GPU: gpu, Clients: clients}
	s := &Session{eng: eng, gpu: gpu, env: env, sched: sched, clients: clients, seqs: make([]int, len(clients))}
	env.OnComplete = func(r *sharing.Request) {
		s.results = append(s.results, RequestResult{
			Client:  r.Client.ID,
			Seq:     r.Seq,
			Arrival: time.Duration(r.Arrival),
			Latency: time.Duration(r.Latency()),
		})
	}
	if err := sched.Deploy(env); err != nil {
		return nil, fmt.Errorf("bless: %w", err)
	}
	return s, nil
}

func newScheduler(cfg SessionConfig) (sharing.Scheduler, error) {
	switch cfg.System {
	case "", SystemBLESS:
		o := core.DefaultOptions()
		if cfg.Tuning.MaxSquadKernels > 0 {
			o.MaxSquadKernels = cfg.Tuning.MaxSquadKernels
		}
		if cfg.Tuning.SplitRatio > 0 {
			o.SplitRatio = cfg.Tuning.SplitRatio
		}
		o.DisableFairSelection = cfg.Tuning.DisableFairSelection
		o.DisableDeterminer = cfg.Tuning.DisableDeterminer
		return core.New(o), nil
	case SystemStatic:
		return baselines.NewStatic(), nil
	case SystemTemporal:
		return baselines.NewTemporal(), nil
	case SystemMIG:
		return baselines.NewMIG(), nil
	case SystemGSlice:
		return baselines.NewGSlice(), nil
	case SystemUnbound:
		return baselines.NewUnbound(), nil
	case SystemREEF:
		return baselines.NewREEFPlus(), nil
	case SystemZico:
		return baselines.NewZico(), nil
	default:
		return nil, fmt.Errorf("bless: unknown system %q", cfg.System)
	}
}

// SubmitAt schedules one request for the given client at virtual time at.
func (s *Session) SubmitAt(client int, at time.Duration) error {
	if client < 0 || client >= len(s.clients) {
		return fmt.Errorf("bless: client index %d out of range", client)
	}
	if s.ran {
		return fmt.Errorf("bless: session already ran")
	}
	c := s.clients[client]
	r := s.arena.New(c, s.seqs[client], sim.Time(at))
	s.seqs[client]++
	s.eng.Schedule(sim.Time(at), func() { s.sched.Submit(r) })
	return nil
}

// SubmitClosedLoop schedules a closed-loop request stream for the client:
// count requests, each submitted think after the previous one completes
// (count <= 0 keeps the loop running until the Run horizon).
func (s *Session) SubmitClosedLoop(client int, think time.Duration, count int, horizon time.Duration) error {
	if client < 0 || client >= len(s.clients) {
		return fmt.Errorf("bless: client index %d out of range", client)
	}
	if s.ran {
		return fmt.Errorf("bless: session already ran")
	}
	c := s.clients[client]
	prev := s.env.OnComplete
	s.env.OnComplete = func(r *sharing.Request) {
		prev(r)
		if r.Client != c {
			return
		}
		if count > 0 && s.seqs[client] >= count {
			return
		}
		at := r.Done + sim.Time(think)
		if horizon > 0 && at > sim.Time(horizon) {
			return
		}
		nr := s.arena.New(c, s.seqs[client], at)
		s.seqs[client]++
		s.eng.Schedule(at, func() { s.sched.Submit(nr) })
	}
	return s.SubmitAt(client, 0)
}

// Run executes the session until all submitted work drains and returns the
// aggregated result. Run may be called once.
func (s *Session) Run() *Result {
	s.ran = true
	s.eng.Run()
	res := &Result{
		Requests:    s.results,
		Utilization: s.gpu.Utilization(),
		Elapsed:     time.Duration(s.eng.Now()),
	}
	perClient := make([][]sim.Time, len(s.clients))
	for _, rr := range s.results {
		perClient[rr.Client] = append(perClient[rr.Client], sim.Time(rr.Latency))
	}
	for i, c := range s.clients {
		sum := metrics.Summarize(perClient[i])
		res.PerClient = append(res.PerClient, ClientStats{
			App:         c.App.Name,
			Quota:       c.Quota,
			Completed:   sum.Count,
			MeanLatency: time.Duration(sum.Mean),
			P99Latency:  time.Duration(sum.P99),
			ISOLatency:  time.Duration(c.Profile.IsoAtQuota(c.Quota)),
		})
	}
	return res
}

// ISOLatency returns the isolated-quota latency baseline T[n%] for an
// application at a quota on the default device — the paper's per-client
// comparison target — without building a session.
func ISOLatency(app string, quota float64) (time.Duration, error) {
	a, err := model.Get(app)
	if err != nil {
		return 0, err
	}
	prof, err := profileFor(a, sim.DefaultConfig())
	if err != nil {
		return 0, err
	}
	return time.Duration(prof.IsoAtQuota(quota)), nil
}

// PlacementResult maps each application index in the request to a GPU index.
type PlacementResult map[int]int

// PlaceApps runs the §4.2.2 multi-GPU placement controller: assign each
// (application, quota) pair to one of gpuCount identical default-configured
// GPUs such that per-GPU quotas, memory footprints (including per-client MPS
// contexts) and the kernel-duration compatibility checks all hold.
func PlaceApps(apps []ClientConfig, gpuCount int) (PlacementResult, error) {
	if gpuCount < 1 {
		return nil, fmt.Errorf("bless: gpuCount must be >= 1")
	}
	cfg := sim.DefaultConfig()
	pas := make([]core.PlacementApp, len(apps))
	for i, a := range apps {
		m, err := model.Get(a.App)
		if err != nil {
			return nil, fmt.Errorf("bless: %w", err)
		}
		prof, err := profileFor(m, cfg)
		if err != nil {
			return nil, fmt.Errorf("bless: profiling %s: %w", a.App, err)
		}
		pas[i] = core.PlacementApp{Name: a.App, Profile: prof, Quota: a.Quota}
	}
	gpus := make([]core.PlacementGPU, gpuCount)
	for i := range gpus {
		gpus[i] = core.PlacementGPU{ID: fmt.Sprintf("gpu%d", i), Config: cfg}
	}
	pl, err := core.Place(pas, gpus, core.PlacementOptions{})
	if err != nil {
		return nil, err
	}
	return PlacementResult(pl), nil
}

// SoloLatency returns an application's full-GPU solo latency (Table 1's
// duration column) on the default device.
func SoloLatency(app string) (time.Duration, error) {
	a, err := model.Get(app)
	if err != nil {
		return 0, err
	}
	prof, err := profileFor(a, sim.DefaultConfig())
	if err != nil {
		return 0, err
	}
	return time.Duration(prof.Iso[prof.Partitions-1]), nil
}
