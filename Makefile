# Makefile — developer entry points, mirroring the CI pipeline
# (.github/workflows/ci.yml). `make check` is the full local gate;
# `make check SHORT=1` is the fast pre-push variant.

GO ?= go

.PHONY: check test test-race test-sim-nondeterminism test-sim-import-export test-sim-after-import bench bench-smoke bench-compare bench-serve service-load fmt

## check: formatting, vet, build, race tests, invariant + determinism stages
check:
	SHORT=$(SHORT) ./scripts/check.sh

## test: the tier-1 gate (build + full test suite)
test:
	$(GO) build ./...
	$(GO) test ./...

## test-race: the full test suite (chaos/churn suites included) under the
## race detector, with caching disabled so every push re-exercises the races
test-race:
	$(GO) test -race -count=1 ./...

## test-sim-nondeterminism: the multi-seed determinism & metamorphic suite,
## including the digest-corpus serial-vs-parallel identity check (the suites
## fan their runs out through internal/harness's parallel executor).
## INVARIANT_SEEDS widens the metamorphic sweep (CI long mode uses 12).
test-sim-nondeterminism:
	INVARIANT_SEEDS=$(or $(INVARIANT_SEEDS),8) $(GO) test -race -count=1 \
		-run 'TestDeterminismDigest|TestMetamorphicInvariantVerdicts|TestRandomDeploymentsInvariants|TestDigestCorpus' \
		./internal/harness/

## test-sim-import-export: the export-side snapshot gate — the wire format
## (round trip, golden header/digest, forward-incompatibility and corruption
## rejection) plus the export matrix: snapshots cut at every barrier point
## must be bit-identical across exporting shard counts.
test-sim-import-export:
	$(GO) test -race -count=1 ./internal/snapshot/
	$(GO) test -race -count=1 \
		-run 'TestImportExport|TestSnapshotMidFaultRetry|TestSnapshotCrashRecovery|TestSnapshotQuiescent|TestSnapshotRejectsUnserializable|TestVerifyImport' \
		./internal/harness/

## test-sim-after-import: the restore-side gate — import, replay to the
## barrier, byte-identity proof, continue; completion digest, checker digest
## and stats must match the uninterrupted run across the multi-seed ×
## barrier-point × shard-count matrix (including cross-count export/import).
test-sim-after-import:
	$(GO) test -race -count=1 -run 'TestSimulationAfterImport' ./internal/harness/

## bench: the repository-root micro/macro benchmarks
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

## bench-smoke: run the smoke workload and gate against the committed baseline
bench-smoke:
	$(GO) run ./cmd/blessbench -smoke=BENCH_smoke.json -baseline scripts/bench_baseline.json

## bench-compare: run the hot-path/executor benchmarks and gate against the
## committed envelope in BENCH_sim.json (RECORD=1 refreshes it)
bench-compare:
	./scripts/bench_compare.sh

## bench-serve: the serving fast-path benchmark — one Serve decision through
## the sharded intake pipeline; the steady state must stay zero-alloc
## (exact gate in BENCH_sim.json via bench-compare)
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServeSteadyState$$' -benchmem ./cmd/blessd/internal/planner/

## service-load: boot blessd and run both blessload gates over real TCP —
## the serial-vs-concurrent digest check and the closed-loop ramp with
## shed-rate / §6.9-overhead / throughput enforcement
service-load:
	./scripts/service_load.sh

fmt:
	gofmt -w .
