// Multigpu demonstrates the §4.2.2 extension: a central controller places
// eight applications across a pool of GPUs using the offline profiles'
// memory requirements, quota sums and kernel-compatibility checks, then runs
// each GPU's deployment under BLESS.
package main

import (
	"fmt"
	"log"
	"time"

	"bless"
)

func main() {
	apps := []bless.ClientConfig{
		{App: "vgg11", Quota: 0.5},
		{App: "resnet50", Quota: 0.5},
		{App: "resnet101", Quota: 0.4},
		{App: "bert", Quota: 0.6},
		{App: "nasnet", Quota: 0.5},
		{App: "vgg11", Quota: 0.5},
		{App: "resnet50", Quota: 0.4},
		{App: "bert", Quota: 0.6},
	}

	const gpuCount = 4
	placement, err := bless.PlaceApps(apps, gpuCount)
	if err != nil {
		log.Fatal(err)
	}

	perGPU := make([][]int, gpuCount)
	for ai, gi := range placement {
		perGPU[gi] = append(perGPU[gi], ai)
	}
	fmt.Println("placement:")
	for gi, ais := range perGPU {
		fmt.Printf("  gpu%d:", gi)
		for _, ai := range ais {
			fmt.Printf(" %s(%.0f%%)", apps[ai].App, apps[ai].Quota*100)
		}
		fmt.Println()
	}

	// Run each GPU's deployment under BLESS with a medium closed-loop load.
	fmt.Println("\nper-GPU outcome under BLESS (1s of load):")
	for gi, ais := range perGPU {
		if len(ais) == 0 {
			continue
		}
		var clients []bless.ClientConfig
		for _, ai := range ais {
			clients = append(clients, apps[ai])
		}
		session, err := bless.NewSession(bless.SessionConfig{Clients: clients})
		if err != nil {
			log.Fatalf("gpu%d: %v", gi, err)
		}
		for c, ai := range ais {
			solo, err := bless.SoloLatency(apps[ai].App)
			if err != nil {
				log.Fatal(err)
			}
			if err := session.SubmitClosedLoop(c, solo*2/3, 0, time.Second); err != nil {
				log.Fatal(err)
			}
		}
		res := session.Run()
		fmt.Printf("  gpu%d (utilization %.0f%%):\n", gi, res.Utilization*100)
		for _, cs := range res.PerClient {
			mark := ""
			if cs.MeanLatency <= cs.ISOLatency {
				mark = "  <- beats its isolated-quota baseline"
			}
			fmt.Printf("    %-10s quota %.0f%%  mean %8v  iso %8v%s\n",
				cs.App, cs.Quota*100, cs.MeanLatency.Round(10_000), cs.ISOLatency.Round(10_000), mark)
		}
	}
}
