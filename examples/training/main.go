// Training co-locates two training jobs (continuous iterations) on one GPU
// and compares coordinated tick-tock sharing (ZICO) with BLESS squad
// scheduling — the Fig 18(b) experiment: BLESS reclaims the bubbles that
// iteration-level coordination leaves behind.
package main

import (
	"fmt"
	"log"
	"time"

	"bless"
)

func main() {
	jobs := []bless.ClientConfig{
		{App: "vgg11-train", Quota: 0.5},
		{App: "resnet50-train", Quota: 0.5},
	}

	type outcome struct {
		iters int
		mean  [2]time.Duration
	}
	results := map[string]outcome{}
	for _, sys := range []string{bless.SystemZico, bless.SystemBLESS} {
		session, err := bless.NewSession(bless.SessionConfig{System: sys, Clients: jobs})
		if err != nil {
			log.Fatal(err)
		}
		// Back-to-back iterations for one simulated second.
		for c := range jobs {
			if err := session.SubmitClosedLoop(c, 0, 0, time.Second); err != nil {
				log.Fatal(err)
			}
		}
		res := session.Run()
		o := outcome{}
		for i, cs := range res.PerClient {
			o.iters += cs.Completed
			o.mean[i] = cs.MeanLatency
		}
		results[sys] = o
		fmt.Printf("%-6s: %3d iterations in 1s; mean iteration latency %v (%s) / %v (%s)\n",
			sys, o.iters, o.mean[0].Round(10_000), jobs[0].App, o.mean[1].Round(10_000), jobs[1].App)
	}

	z, b := results[bless.SystemZico], results[bless.SystemBLESS]
	zAvg := (z.mean[0] + z.mean[1]) / 2
	bAvg := (b.mean[0] + b.mean[1]) / 2
	fmt.Printf("\nBLESS vs ZICO average iteration latency: %+.1f%% (paper: -8.5%%)\n",
		(float64(bAvg)/float64(zAvg)-1)*100)
}
