// SLO shows BLESS's native service-level-objective mode (§6.5): replacing a
// client's isolated-quota pace target with an explicit QoS latency target.
// The relaxed client cedes its slack to its co-tenant while both stay within
// their objectives.
package main

import (
	"fmt"
	"log"
	"time"

	"bless"
)

func main() {
	isoR50, err := bless.ISOLatency("resnet50", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	isoBert, err := bless.ISOLatency("bert", 0.5)
	if err != nil {
		log.Fatal(err)
	}

	// resnet50 gets a tight 1.2x target, bert a loose 2x target.
	targets := []time.Duration{isoR50 * 12 / 10, isoBert * 2}
	session, err := bless.NewSession(bless.SessionConfig{
		Clients: []bless.ClientConfig{
			{App: "resnet50", Quota: 0.5, SLOTarget: targets[0]},
			{App: "bert", Quota: 0.5, SLOTarget: targets[1]},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	solo, _ := bless.SoloLatency("resnet50")
	soloB, _ := bless.SoloLatency("bert")
	if err := session.SubmitClosedLoop(0, solo*2/3, 0, time.Second); err != nil {
		log.Fatal(err)
	}
	if err := session.SubmitClosedLoop(1, soloB*2/3, 0, time.Second); err != nil {
		log.Fatal(err)
	}

	res := session.Run()
	violations := 0
	for _, rr := range res.Requests {
		if rr.Latency > targets[rr.Client] {
			violations++
		}
	}
	for i, cs := range res.PerClient {
		fmt.Printf("%-9s quota %.2f  SLO %8v  mean %8v  p99 %8v  (%d requests)\n",
			cs.App, cs.Quota, targets[i].Round(10_000),
			cs.MeanLatency.Round(10_000), cs.P99Latency.Round(10_000), cs.Completed)
	}
	fmt.Printf("QoS violations: %d / %d requests (paper: BLESS 0.6%%)\n", violations, len(res.Requests))
}
