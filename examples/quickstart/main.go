// Quickstart: two DNN inference services share one simulated A100 under
// BLESS with provisioned quotas, and both requests finish at or below their
// isolated-quota baselines — the bubble-squeezing headline of the paper.
package main

import (
	"fmt"
	"log"

	"bless"
)

func main() {
	session, err := bless.NewSession(bless.SessionConfig{
		Clients: []bless.ClientConfig{
			{App: "vgg11", Quota: 1.0 / 3},
			{App: "resnet50", Quota: 2.0 / 3},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Both requests arrive at the same instant — the hardest case for
	// quota isolation, and Fig 1's motivating example.
	if err := session.SubmitAt(0, 0); err != nil {
		log.Fatal(err)
	}
	if err := session.SubmitAt(1, 0); err != nil {
		log.Fatal(err)
	}

	res := session.Run()
	fmt.Println("two overlapped requests under BLESS:")
	for _, cs := range res.PerClient {
		fmt.Printf("  %-9s quota %.2f  latency %8v  (isolated-quota baseline %8v)\n",
			cs.App, cs.Quota, cs.MeanLatency.Round(10_000), cs.ISOLatency.Round(10_000))
	}
	fmt.Printf("GPU utilization: %.0f%%\n", res.Utilization*100)
}
