// Colocation sweeps the seven quota assignments of the paper's Table 2 over
// a VGG11 + ResNet50 pair under medium load and prints the latency chart of
// Fig 12: each quota split's (lat1, lat2) next to the ISO bound, under BLESS
// and under static MPS partitioning.
package main

import (
	"fmt"
	"log"
	"time"

	"bless"
)

var quotaSplits = [][2]float64{
	{1.0 / 3, 2.0 / 3},
	{7.0 / 18, 11.0 / 18},
	{4.0 / 9, 5.0 / 9},
	{0.5, 0.5},
	{5.0 / 9, 4.0 / 9},
	{11.0 / 18, 7.0 / 18},
	{2.0 / 3, 1.0 / 3},
}

func main() {
	apps := [2]string{"vgg11", "resnet50"}
	// Medium load: think time = 2/3 of each model's solo latency.
	var think [2]time.Duration
	for i, a := range apps {
		solo, err := bless.SoloLatency(a)
		if err != nil {
			log.Fatal(err)
		}
		think[i] = solo * 2 / 3
	}

	fmt.Printf("%-12s %-8s %22s %22s\n", "quota split", "system", apps[0], apps[1])
	for _, q := range quotaSplits {
		for _, sys := range []string{bless.SystemStatic, bless.SystemBLESS} {
			session, err := bless.NewSession(bless.SessionConfig{
				System: sys,
				Clients: []bless.ClientConfig{
					{App: apps[0], Quota: q[0]},
					{App: apps[1], Quota: q[1]},
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			horizon := time.Second
			for c := 0; c < 2; c++ {
				if err := session.SubmitClosedLoop(c, think[c], 0, horizon); err != nil {
					log.Fatal(err)
				}
			}
			res := session.Run()
			fmt.Printf("%.2f/%.2f    %-8s", q[0], q[1], sys)
			for _, cs := range res.PerClient {
				mark := " "
				if cs.MeanLatency <= cs.ISOLatency {
					mark = "*" // inside the ISO region
				}
				fmt.Printf("   %8.2fms (iso %6.2f)%s",
					float64(cs.MeanLatency)/1e6, float64(cs.ISOLatency)/1e6, mark)
			}
			fmt.Println()
		}
	}
	fmt.Println("\n'*' marks latencies at or below the isolated-quota baseline (inside the ISO region of Fig 12)")
}
