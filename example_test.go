package bless_test

import (
	"fmt"
	"log"
	"time"

	"bless"
)

// Example shows the minimal flow: deploy two applications with quotas on one
// simulated GPU under BLESS and run two overlapped requests.
func Example() {
	session, err := bless.NewSession(bless.SessionConfig{
		Clients: []bless.ClientConfig{
			{App: "vgg11", Quota: 1.0 / 3},
			{App: "resnet50", Quota: 2.0 / 3},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	session.SubmitAt(0, 0)
	session.SubmitAt(1, 0)
	res := session.Run()
	for _, c := range res.PerClient {
		fmt.Printf("%s completed %d request(s)\n", c.App, c.Completed)
	}
	// Output:
	// vgg11 completed 1 request(s)
	// resnet50 completed 1 request(s)
}

// ExampleSession_SubmitClosedLoop drives a closed-loop workload: each client
// resubmits a think-time after its previous request completes, until the
// horizon.
func ExampleSession_SubmitClosedLoop() {
	session, err := bless.NewSession(bless.SessionConfig{
		Clients: []bless.ClientConfig{
			{App: "resnet50", Quota: 0.5},
			{App: "bert", Quota: 0.5},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		if err := session.SubmitClosedLoop(c, 10*time.Millisecond, 0, 100*time.Millisecond); err != nil {
			log.Fatal(err)
		}
	}
	res := session.Run()
	fmt.Printf("both clients completed requests: %v\n",
		res.PerClient[0].Completed > 0 && res.PerClient[1].Completed > 0)
	// Output:
	// both clients completed requests: true
}

// ExamplePlaceApps runs the multi-GPU placement controller (§4.2.2 of the
// paper): quotas exceeding one GPU force a split across the pool.
func ExamplePlaceApps() {
	placement, err := bless.PlaceApps([]bless.ClientConfig{
		{App: "vgg11", Quota: 0.8},
		{App: "resnet50", Quota: 0.8},
	}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("apps split across devices: %v\n", placement[0] != placement[1])
	// Output:
	// apps split across devices: true
}
