package sharing

import (
	"testing"

	"bless/internal/model"
	"bless/internal/sim"
)

func mkClients(quotas ...float64) []*Client {
	out := make([]*Client, len(quotas))
	for i, q := range quotas {
		out[i] = &Client{ID: i, App: model.MustGet("vgg11"), Quota: q}
	}
	return out
}

func TestQuotaSMs(t *testing.T) {
	c := &Client{Quota: 0.5}
	if got := c.QuotaSMs(108); got != 54 {
		t.Errorf("QuotaSMs(0.5) = %d, want 54", got)
	}
	c.Quota = 1.0 / 3
	if got := c.QuotaSMs(108); got != 36 {
		t.Errorf("QuotaSMs(1/3) = %d, want 36", got)
	}
	c.Quota = 0.001
	if got := c.QuotaSMs(108); got != 1 {
		t.Errorf("tiny quota = %d SMs, want clamp to 1", got)
	}
	c.Quota = 1.0
	if got := c.QuotaSMs(108); got != 108 {
		t.Errorf("full quota = %d SMs, want 108", got)
	}
}

func TestRequestLatency(t *testing.T) {
	r := &Request{Arrival: 10 * sim.Millisecond, Done: 25 * sim.Millisecond}
	if r.Latency() != 15*sim.Millisecond {
		t.Errorf("Latency = %v, want 15ms", r.Latency())
	}
}

func TestEnvComplete(t *testing.T) {
	eng := sim.NewEngine()
	env := &Env{Eng: eng}
	var seen *Request
	env.OnComplete = func(r *Request) { seen = r }
	r := &Request{Arrival: 0}
	eng.Schedule(7*sim.Millisecond, func() { env.Complete(r) })
	eng.Run()
	if r.Done != 7*sim.Millisecond {
		t.Errorf("Done = %v, want 7ms", r.Done)
	}
	if seen != r {
		t.Error("OnComplete not invoked")
	}
	if env.Completed() != 1 {
		t.Errorf("Completed = %d, want 1", env.Completed())
	}
}

func TestValidateDeployment(t *testing.T) {
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())

	ok := &Env{Eng: eng, GPU: gpu, Clients: mkClients(0.4, 0.6)}
	if err := ValidateDeployment(ok, false); err != nil {
		t.Errorf("valid deployment rejected: %v", err)
	}

	if err := ValidateDeployment(&Env{Eng: eng, GPU: gpu}, false); err == nil {
		t.Error("empty deployment accepted")
	}

	over := &Env{Eng: eng, GPU: gpu, Clients: mkClients(0.7, 0.7)}
	if err := ValidateDeployment(over, false); err == nil {
		t.Error("oversubscribed quotas accepted")
	}

	bad := &Env{Eng: eng, GPU: gpu, Clients: mkClients(0.5, 0)}
	if err := ValidateDeployment(bad, false); err == nil {
		t.Error("zero quota accepted")
	}

	// Dense ID check.
	scrambled := mkClients(0.4, 0.4)
	scrambled[1].ID = 5
	if err := ValidateDeployment(&Env{Eng: eng, GPU: gpu, Clients: scrambled}, false); err == nil {
		t.Error("non-dense client IDs accepted")
	}

	// Profile requirement.
	noProf := &Env{Eng: eng, GPU: gpu, Clients: mkClients(0.5)}
	if err := ValidateDeployment(noProf, true); err == nil {
		t.Error("profile-less client accepted when profiles required")
	}
}
