// Package sharing defines the common harness contract for multi-user GPU
// sharing systems: deployed clients with quotas, request lifecycles, and the
// Scheduler interface that BLESS and every baseline (TEMPORAL, MIG, GSLICE,
// UNBOUND, REEF+, ZICO, ...) implement. All systems drive the same simulated
// device, so experiments compare scheduling policy only.
package sharing

import (
	"fmt"

	"bless/internal/model"
	"bless/internal/profiler"
	"bless/internal/sim"
)

// Client is one application deployed on the shared GPU with a provisioned
// quota.
type Client struct {
	// ID is the client's slot index, dense from 0.
	ID int
	// App is the deployed application.
	App *model.App
	// Profile is the offline profile (§4.2); nil only for systems that do
	// not need profiling (the paper notes BLESS degrades to plain MPS
	// without it).
	Profile *profiler.Profile
	// Quota is the provisioned GPU fraction in (0, 1]. Quotas of co-located
	// clients sum to at most 1.
	Quota float64
	// SLOTarget, when non-zero, replaces the isolated latency as the pace
	// target (§6.5).
	SLOTarget sim.Time
}

// QuotaSMs returns the client's quota in whole SMs on the given device.
func (c *Client) QuotaSMs(deviceSMs int) int {
	s := int(c.Quota*float64(deviceSMs) + 0.5)
	if s < 1 {
		s = 1
	}
	if s > deviceSMs {
		s = deviceSMs
	}
	return s
}

// Request is one unit of client work (an inference request or a training
// iteration): executing the client's whole kernel sequence once.
type Request struct {
	// Client owns the request.
	Client *Client
	// Seq numbers the client's requests from 0.
	Seq int
	// Arrival is when the request entered the system.
	Arrival sim.Time
	// Done is the completion instant; zero until completed.
	Done sim.Time
	// Failed marks a request the scheduler aborted instead of finishing
	// (retry budget exhausted or deadline exceeded). Failed requests still
	// complete exactly once, but their latency is not a service latency.
	Failed bool
}

// Latency returns Done-Arrival; call only after completion.
func (r *Request) Latency() sim.Time { return r.Done - r.Arrival }

// RequestArena hands out Request objects carved from chunked backing arrays,
// cutting per-submission heap traffic to one allocation per chunk. It never
// recycles: schedulers compare in-flight requests by pointer identity, so
// every handed-out object stays distinct for the arena's lifetime (one run).
// Not safe for concurrent use — one arena per engine, like everything else.
type RequestArena struct {
	chunk []Request
}

const requestArenaChunk = 256

// New returns a zeroed-then-initialized request from the arena.
func (a *RequestArena) New(c *Client, seq int, at sim.Time) *Request {
	if len(a.chunk) == 0 {
		a.chunk = make([]Request, requestArenaChunk)
	}
	r := &a.chunk[0]
	a.chunk = a.chunk[1:]
	r.Client, r.Seq, r.Arrival = c, seq, at
	return r
}

// Env is the execution environment the harness hands to a Scheduler: the
// simulation engine, the device, the deployed clients, and the completion
// hook. Schedulers must call Complete exactly once per submitted request.
type Env struct {
	// Eng is the simulation engine.
	Eng *sim.Engine
	// GPU is the shared device.
	GPU *sim.GPU
	// Clients are the deployed applications, indexed by Client.ID.
	Clients []*Client
	// OnComplete, if set, observes every completed request (the harness
	// uses it to record latency and to drive closed-loop workloads).
	OnComplete func(*Request)

	completed int
}

// Complete marks a request finished at the current virtual time and notifies
// the harness. Schedulers call this when the request's last kernel retires.
func (e *Env) Complete(r *Request) {
	r.Done = e.Eng.Now()
	e.completed++
	if e.OnComplete != nil {
		e.OnComplete(r)
	}
}

// Completed reports how many requests have finished.
func (e *Env) Completed() int { return e.completed }

// Scheduler is a GPU-sharing system under test.
type Scheduler interface {
	// Name returns the system's display name ("BLESS", "GSLICE", ...).
	Name() string
	// Deploy prepares device state (contexts, queues) for env's clients.
	// It returns an error if the deployment is unsupported — e.g. MIG with
	// quota splits its hardware slicing cannot express.
	Deploy(env *Env) error
	// Submit hands a request to the scheduler. The request's Arrival is
	// already set; Submit is called at that virtual time.
	Submit(r *Request)
}

// Dynamic is implemented by schedulers that support client churn after
// Deploy. AddClient admits a new client mid-run (its ID must be the next
// dense slot); RemoveClient retires an existing one — gracefully (crashed
// false: the backlog drains, then resources release) or abruptly (crashed
// true: queued work is cancelled, resources release immediately). Both
// re-provision the surviving clients' effective quotas so the device stays
// fully subscribed.
type Dynamic interface {
	Scheduler
	AddClient(c *Client) error
	RemoveClient(id int, crashed bool) error
}

// ClientQuota is one client's current effective quota.
type ClientQuota struct {
	ID    int
	Quota float64
}

// QuotaReporter is implemented by schedulers whose effective quotas can
// drift from the provisioned ones (churn re-normalization); observers use it
// to keep quota-attainment accounting in sync.
type QuotaReporter interface {
	EffectiveQuotas() []ClientQuota
}

// ValidateDeployment checks the common preconditions every scheduler shares:
// at least one client, quotas in range and summing to at most 1 (with slack
// for rounding), and profiles present when required.
func ValidateDeployment(env *Env, needProfiles bool) error {
	if len(env.Clients) == 0 {
		return fmt.Errorf("sharing: no clients deployed")
	}
	sum := 0.0
	for i, c := range env.Clients {
		if c.ID != i {
			return fmt.Errorf("sharing: client %d has ID %d; IDs must be dense slot indices", i, c.ID)
		}
		if c.Quota <= 0 || c.Quota > 1 {
			return fmt.Errorf("sharing: client %q quota %g outside (0,1]", c.App.Name, c.Quota)
		}
		if needProfiles && c.Profile == nil {
			return fmt.Errorf("sharing: client %q has no offline profile", c.App.Name)
		}
		sum += c.Quota
	}
	if sum > 1.0001 {
		return fmt.Errorf("sharing: quotas sum to %g > 1", sum)
	}
	return nil
}
