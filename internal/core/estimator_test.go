package core

import (
	"testing"

	"bless/internal/profiler"
	"bless/internal/sharing"
	"bless/internal/sim"
)

// estProfile builds a two-partition synthetic profile (10 and 20 SMs on a
// 20-SM device) with three kernels chosen for hand-checkable estimates:
//
//	k0: compute, 200ns@10 → 100ns@20, saturates the device (MaxSMs 20)
//	k1: compute, 400ns@10 → 200ns@20, saturates at 10 SMs (MaxSMs 10)
//	k2: memcpy, 50ns at every width (memory-management kernels are summed
//	    uniformly, §4.4.2)
func estProfile() *profiler.Profile {
	return &profiler.Profile{
		AppName:      "synthetic",
		Partitions:   2,
		DeviceSMs:    20,
		PartitionSMs: []int{10, 20},
		Kernels: []profiler.KernelProfile{
			{Dur: []sim.Time{200, 100}, MaxSMs: 20, IsCompute: true},
			{Dur: []sim.Time{400, 200}, MaxSMs: 10, IsCompute: true},
			{Dur: []sim.Time{50, 50}, MaxSMs: 0, IsCompute: false},
		},
	}
}

func estClient(p *profiler.Profile) *sharing.Client { return &sharing.Client{Profile: p} }

// TestEstimateSpatial: Equation 1 is the max over per-client kernel stacks,
// with zero-length stacks, memcpy kernels and interpolated SM widths handled.
func TestEstimateSpatial(t *testing.T) {
	p := estProfile()
	cases := []struct {
		name    string
		kernels [][]int
		smAlloc []int
		want    sim.Time
	}{
		{
			name:    "max of stacks",
			kernels: [][]int{{0, 1}, {0}},
			smAlloc: []int{10, 20},
			// client 0: 200 + 400 = 600 at 10 SMs; client 1: 100 at 20 SMs.
			want: 600,
		},
		{
			name:    "empty squad",
			kernels: nil,
			smAlloc: nil,
			want:    0,
		},
		{
			name:    "zero-length kernel run",
			kernels: [][]int{{}, {0}},
			smAlloc: []int{10, 20},
			want:    100,
		},
		{
			name:    "memcpy ignores allocation width",
			kernels: [][]int{{2, 2}},
			smAlloc: []int{10},
			// Memory-management kernels always contribute the full-GPU
			// measurement: 50 + 50.
			want: 100,
		},
		{
			name:    "interpolated width",
			kernels: [][]int{{0}},
			smAlloc: []int{15},
			// Linear between 200@10 and 100@20.
			want: 150,
		},
		{
			name:    "width clamps at device size",
			kernels: [][]int{{1}},
			smAlloc: []int{40},
			want:    200,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := &Squad{}
			for _, ks := range c.kernels {
				s.Entries = append(s.Entries, SquadEntry{Client: estClient(p), Kernels: ks})
			}
			if got := EstimateSpatial(s, c.smAlloc); got != c.want {
				t.Fatalf("EstimateSpatial = %d, want %d", got, c.want)
			}
		})
	}
}

// TestEstimateUnrestricted: Equation 2 sums breadth-first rounds at the
// group's combined active SM count, with the beta interference stretch
// applied only under oversubscription and capped at 2x.
func TestEstimateUnrestricted(t *testing.T) {
	p := estProfile()
	cases := []struct {
		name    string
		kernels [][]int
		beta    float64
		want    sim.Time
	}{
		{
			name:    "overlapped group shares combined SMs",
			kernels: [][]int{{0}, {0}},
			beta:    0,
			// raw = 20+20 clamps to the 20-SM device; each kernel runs at its
			// saturated 100ns: 200 total.
			want: 200,
		},
		{
			name:    "unbounded extrapolation past saturation",
			kernels: [][]int{{1}, {1}},
			beta:    0,
			// raw = 10+10 = 20; k1 saturates at 10 SMs so its duration keeps
			// shrinking: 200 * 10/20 = 100 each.
			want: 200,
		},
		{
			name:    "beta stretches oversubscribed rounds",
			kernels: [][]int{{0}, {0}},
			beta:    0.5,
			// Oversubscription (40-20)/20 = 1: stretch 1.5 over the 200.
			want: 300,
		},
		{
			name:    "stretch caps at 2x",
			kernels: [][]int{{0}, {0}},
			beta:    50,
			want:    400,
		},
		{
			name:    "no stretch without oversubscription",
			kernels: [][]int{{1}},
			beta:    0.5,
			// raw = 10 <= 20: pure Equation 2, k1 at 10 SMs.
			want: 400,
		},
		{
			name:    "memcpy-only round clamps combined SMs to one",
			kernels: [][]int{{2}, {2}},
			beta:    0,
			// raw = 0 (no compute): combined clamps to 1, memcpy still
			// contributes its fixed 50ns each.
			want: 100,
		},
		{
			name:    "uneven run lengths pad shorter entries",
			kernels: [][]int{{0, 1}, {0}},
			beta:    0,
			// Round 0: raw 40 → 20 SMs, 100+100. Round 1: only k1 at its own
			// raw 10 SMs: 400.
			want: 600,
		},
		{
			name:    "empty squad",
			kernels: nil,
			beta:    1,
			want:    0,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := &Squad{}
			for _, ks := range c.kernels {
				s.Entries = append(s.Entries, SquadEntry{Client: estClient(p), Kernels: ks})
			}
			if got := EstimateUnrestricted(s, p.DeviceSMs, c.beta); got != c.want {
				t.Fatalf("EstimateUnrestricted = %d, want %d", got, c.want)
			}
		})
	}
}

// TestEstimatorsAgreeOnSaturatingSolo: for a lone client whose kernels
// saturate the device, the two predictors describe identical physics — every
// round's combined active SMs equals the full device, so Equation 2
// degenerates to Equation 1's single stack — and neither estimate can grow
// when kernels are dropped.
func TestEstimatorsAgreeOnSaturatingSolo(t *testing.T) {
	p := estProfile()
	s := &Squad{Entries: []SquadEntry{{Client: estClient(p), Kernels: []int{0, 0, 0}}}}
	spatial := EstimateSpatial(s, []int{p.DeviceSMs})
	unres := EstimateUnrestricted(s, p.DeviceSMs, 0.5)
	if spatial != unres {
		t.Fatalf("saturating solo squad: spatial %d != unrestricted %d", spatial, unres)
	}
	small := &Squad{Entries: []SquadEntry{{Client: estClient(p), Kernels: []int{0}}}}
	if EstimateSpatial(small, []int{p.DeviceSMs}) > spatial {
		t.Fatal("dropping kernels increased the spatial estimate")
	}
	if EstimateUnrestricted(small, p.DeviceSMs, 0.5) > unres {
		t.Fatal("dropping kernels increased the unrestricted estimate")
	}
}
