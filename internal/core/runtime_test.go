package core

import (
	"testing"

	"bless/internal/model"
	"bless/internal/sharing"
	"bless/internal/sim"
)

// newEnv wires an engine, device and clients into a sharing.Env.
func newEnv(t testing.TB, clients []*sharing.Client) *sharing.Env {
	t.Helper()
	eng := sim.NewEngine()
	return &sharing.Env{
		Eng:     eng,
		GPU:     sim.NewGPU(eng, sim.DefaultConfig()),
		Clients: clients,
	}
}

// deployBLESS creates and deploys a runtime, failing the test on error.
func deployBLESS(t testing.TB, env *sharing.Env, opts Options) *Runtime {
	t.Helper()
	rt := New(opts)
	if err := rt.Deploy(env); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return rt
}

// submitAt schedules a request submission at the given virtual time.
func submitAt(env *sharing.Env, rt *Runtime, c *sharing.Client, seq int, at sim.Time) *sharing.Request {
	r := &sharing.Request{Client: c, Seq: seq, Arrival: at}
	env.Eng.Schedule(at, func() { rt.Submit(r) })
	return r
}

func TestRuntimeSingleRequestUsesWholeGPU(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "resnet50", "vgg11")
	env := newEnv(t, clients)
	rt := deployBLESS(t, env, DefaultOptions())

	r := submitAt(env, rt, clients[0], 0, 0)
	env.Eng.Run()
	if r.Done == 0 {
		t.Fatal("request never completed")
	}
	// Despite a 50% quota, an uncontended request may use the entire GPU:
	// its latency must be near the FULL-GPU solo latency, far below the
	// 50%-quota isolated latency.
	solo := clients[0].Profile.Iso[clients[0].Profile.Partitions-1]
	iso50 := clients[0].Profile.IsoAtQuota(0.5)
	lat := r.Latency()
	if lat > solo+solo/5 {
		t.Errorf("uncontended latency %v, want near full-GPU solo %v", lat, solo)
	}
	if lat >= iso50 {
		t.Errorf("uncontended latency %v not below 50%%-quota ISO %v: bubbles unexploited", lat, iso50)
	}
}

func TestRuntimeOverlappedPairBeatsISO(t *testing.T) {
	// The headline claim (Fig 1c, §6.3): two overlapped requests with
	// quotas (1/3, 2/3) both finish no later than their quota-isolated
	// latencies, and at least one strictly earlier.
	clients := testClients(t, []float64{1.0 / 3, 2.0 / 3}, "vgg11", "resnet50")
	env := newEnv(t, clients)
	rt := deployBLESS(t, env, DefaultOptions())

	r0 := submitAt(env, rt, clients[0], 0, 0)
	r1 := submitAt(env, rt, clients[1], 0, 0)
	env.Eng.Run()

	iso0 := clients[0].Profile.IsoAtQuota(clients[0].Quota)
	iso1 := clients[1].Profile.IsoAtQuota(clients[1].Quota)
	// The request that outlives its peer must strictly beat ISO (it expands
	// into the freed GPU — the squeezed bubble); the co-runner may pay a
	// bounded squad-granularity premium (the paper's heterogeneous-kernel
	// pairs, Fig 12(d), sit closest to the ISO bound).
	if r0.Latency() >= iso0 {
		t.Errorf("vgg11 latency %v not below ISO %v at quota 1/3: bubbles unexploited", r0.Latency(), iso0)
	}
	if r1.Latency() > iso1+iso1/5 {
		t.Errorf("resnet50 latency %v exceeds ISO %v at quota 2/3 by more than 20%%", r1.Latency(), iso1)
	}
	// Jointly the pair must still clearly beat the isolated deployment.
	if avgLat, avgISO := (r0.Latency()+r1.Latency())/2, (iso0+iso1)/2; avgLat > avgISO*17/20 {
		t.Errorf("average latency %v above 85%% of average ISO %v", avgLat, avgISO)
	}
}

func TestRuntimeBackToBackRequestsAllComplete(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	env := newEnv(t, clients)
	rt := deployBLESS(t, env, DefaultOptions())

	var reqs []*sharing.Request
	for seq := 0; seq < 5; seq++ {
		for _, c := range clients {
			reqs = append(reqs, submitAt(env, rt, c, seq, sim.Time(seq)*2*sim.Millisecond))
		}
	}
	env.Eng.Run()
	for _, r := range reqs {
		if r.Done == 0 {
			t.Fatalf("request %s/%d never completed", r.Client.App.Name, r.Seq)
		}
	}
	if got := env.Completed(); got != len(reqs) {
		t.Errorf("env counted %d completions, want %d", got, len(reqs))
	}
	// Per-client FIFO: completion order must follow sequence order.
	for _, c := range clients {
		var prev sim.Time
		for _, r := range reqs {
			if r.Client != c {
				continue
			}
			if r.Done < prev {
				t.Errorf("%s: request %d completed at %v before its predecessor at %v",
					c.App.Name, r.Seq, r.Done, prev)
			}
			prev = r.Done
		}
	}
}

func TestRuntimeArrivalDuringExecution(t *testing.T) {
	// A request arriving mid-execution of another's squad joins the next
	// squad: the earlier request's resources shrink (§1: "shrinks its
	// resources instantly when other requests arrive").
	clients := testClients(t, []float64{0.5, 0.5}, "nasnet", "resnet50")
	env := newEnv(t, clients)
	rt := deployBLESS(t, env, DefaultOptions())

	r0 := submitAt(env, rt, clients[0], 0, 0)
	r1 := submitAt(env, rt, clients[1], 0, 8*sim.Millisecond)
	env.Eng.Run()

	if r0.Done == 0 || r1.Done == 0 {
		t.Fatal("requests did not complete")
	}
	// The late arrival waits out at most one in-flight squad before joining;
	// its latency stays within ISO plus that bounded wait.
	iso1 := clients[1].Profile.IsoAtQuota(0.5)
	if r1.Latency() > iso1+iso1/5 {
		t.Errorf("late-arriving request latency %v exceeds ISO %v + 20%%", r1.Latency(), iso1)
	}
}

func TestRuntimeStatsCounters(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	env := newEnv(t, clients)
	rt := deployBLESS(t, env, DefaultOptions())
	submitAt(env, rt, clients[0], 0, 0)
	submitAt(env, rt, clients[1], 0, 0)
	env.Eng.Run()

	st := rt.Stats()
	if st.SquadsExecuted == 0 {
		t.Error("no squads recorded")
	}
	wantKernels := int64(clients[0].App.NumKernels() + clients[1].App.NumKernels())
	if st.KernelsScheduled != wantKernels {
		t.Errorf("KernelsScheduled = %d, want %d", st.KernelsScheduled, wantKernels)
	}
	if st.ConfigsEvaluated == 0 {
		t.Error("determiner never ran")
	}
}

func TestRuntimeDeployRejectsBadQuotas(t *testing.T) {
	clients := testClients(t, []float64{0.7, 0.7}, "vgg11", "resnet50")
	env := newEnv(t, clients)
	rt := New(DefaultOptions())
	if err := rt.Deploy(env); err == nil {
		t.Error("quota sum 1.4 accepted")
	}
}

func TestRuntimeDeployRejectsMissingProfile(t *testing.T) {
	app := model.MustGet("vgg11")
	clients := []*sharing.Client{{ID: 0, App: app, Quota: 0.5}}
	env := newEnv(t, clients)
	rt := New(DefaultOptions())
	if err := rt.Deploy(env); err == nil {
		t.Error("client without profile accepted")
	}
}

func TestRuntimeDeployRejectsOOM(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	eng := sim.NewEngine()
	cfg := sim.DefaultConfig()
	cfg.MemoryBytes = 1 << 30 // too small for both apps
	env := &sharing.Env{Eng: eng, GPU: sim.NewGPU(eng, cfg), Clients: clients}
	rt := New(DefaultOptions())
	if err := rt.Deploy(env); err == nil {
		t.Error("memory-exceeding deployment accepted")
	}
}

func TestRuntimeAblationsStillCorrect(t *testing.T) {
	// Both ablations must preserve correctness (all requests complete);
	// they only cost performance (Fig 20 quantifies how much — that lives
	// in the harness).
	for _, opts := range []Options{
		{DisableFairSelection: true},
		{DisableDeterminer: true},
		{DisableFairSelection: true, DisableDeterminer: true},
		{DisableSemiSP: true},
	} {
		clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
		env := newEnv(t, clients)
		rt := deployBLESS(t, env, opts)
		r0 := submitAt(env, rt, clients[0], 0, 0)
		r1 := submitAt(env, rt, clients[1], 0, 0)
		env.Eng.Run()
		if r0.Done == 0 || r1.Done == 0 {
			t.Errorf("ablation %+v: requests did not complete", opts)
		}
	}
}

func TestRuntimeSquadSizeTradeoff(t *testing.T) {
	// Larger squads lower overhead; tiny squads still work. Both complete.
	for _, cap := range []int{5, 100} {
		clients := testClients(t, []float64{0.5, 0.5}, "resnet50", "resnet50")
		env := newEnv(t, clients)
		rt := deployBLESS(t, env, Options{MaxSquadKernels: cap})
		r0 := submitAt(env, rt, clients[0], 0, 0)
		r1 := submitAt(env, rt, clients[1], 0, 0)
		env.Eng.Run()
		if r0.Done == 0 || r1.Done == 0 {
			t.Fatalf("cap %d: incomplete requests", cap)
		}
		st := rt.Stats()
		if cap == 5 && st.SquadsExecuted < 20 {
			t.Errorf("cap 5 executed only %d squads; expected many small squads", st.SquadsExecuted)
		}
	}
}

func TestRuntimeSLOMode(t *testing.T) {
	// With relaxed SLO targets, requests still complete and the system does
	// not violate a loose 3x-ISO target under light load.
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	for _, c := range clients {
		c.SLOTarget = 3 * c.Profile.IsoAtQuota(c.Quota)
	}
	env := newEnv(t, clients)
	rt := deployBLESS(t, env, DefaultOptions())
	r0 := submitAt(env, rt, clients[0], 0, 0)
	r1 := submitAt(env, rt, clients[1], 0, 0)
	env.Eng.Run()
	for _, r := range []*sharing.Request{r0, r1} {
		if r.Done == 0 {
			t.Fatal("request incomplete")
		}
		if r.Latency() > r.Client.SLOTarget {
			t.Errorf("%s violated its loose SLO: %v > %v", r.Client.App.Name, r.Latency(), r.Client.SLOTarget)
		}
	}
}

func TestRuntimeManyClients(t *testing.T) {
	// Eight co-located clients (§6.4's largest configuration).
	names := []string{"vgg11", "resnet50", "vgg11", "resnet50", "vgg11", "resnet50", "vgg11", "resnet50"}
	quotas := []float64{0.05, 0.05, 0.10, 0.10, 0.15, 0.15, 0.20, 0.20}
	clients := testClients(t, quotas, names...)
	env := newEnv(t, clients)
	rt := deployBLESS(t, env, DefaultOptions())
	var reqs []*sharing.Request
	for _, c := range clients {
		reqs = append(reqs, submitAt(env, rt, c, 0, 0))
	}
	env.Eng.Run()
	for _, r := range reqs {
		if r.Done == 0 {
			t.Fatalf("client %d request incomplete", r.Client.ID)
		}
	}
}

func TestRuntimeGPUQuiescentAfterDrain(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	env := newEnv(t, clients)
	rt := deployBLESS(t, env, DefaultOptions())
	submitAt(env, rt, clients[0], 0, 0)
	submitAt(env, rt, clients[1], 0, sim.Millisecond)
	env.Eng.Run()
	if !env.GPU.Quiescent() {
		t.Error("device not quiescent after all requests drained")
	}
}

func TestDeployFailureReleasesMemory(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	eng := sim.NewEngine()
	cfg := sim.DefaultConfig()
	cfg.MemoryBytes = clients[0].App.MemoryBytes + cfg.ContextMemBytes + 100<<20
	env := &sharing.Env{Eng: eng, GPU: sim.NewGPU(eng, cfg), Clients: clients}
	if err := New(DefaultOptions()).Deploy(env); err == nil {
		t.Fatal("over-memory deployment accepted")
	}
	if used := env.GPU.MemUsed(); used != 0 {
		t.Errorf("failed deployment left %d bytes reserved", used)
	}
}
