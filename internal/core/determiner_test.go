package core

import (
	"testing"

	"bless/internal/sharing"
	"bless/internal/sim"
)

// squadOf builds a squad with the first n kernels of each client.
func squadOf(clients []*sharing.Client, counts ...int) *Squad {
	s := &Squad{}
	for i, c := range clients {
		ks := make([]int, counts[i])
		for j := range ks {
			ks[j] = j
		}
		s.Entries = append(s.Entries, SquadEntry{
			Client:  c,
			Request: &sharing.Request{Client: c},
			Kernels: ks,
		})
	}
	return s
}

func TestEstimateSpatialIsMaxOfStacks(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	s := squadOf(clients, 5, 5)
	est := EstimateSpatial(s, []int{54, 54})
	var stacks [2]sim.Time
	for i, e := range s.Entries {
		for _, k := range e.Kernels {
			stacks[i] += e.Client.Profile.KernelDurAt(k, 54)
		}
	}
	want := stacks[0]
	if stacks[1] > want {
		want = stacks[1]
	}
	if est != want {
		t.Errorf("EstimateSpatial = %v, want max-of-stacks %v", est, want)
	}
}

func TestEstimateSpatialMoreSMsFaster(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	s := squadOf(clients, 8, 8)
	wide := EstimateSpatial(s, []int{72, 72})
	narrow := EstimateSpatial(s, []int{24, 24})
	if wide > narrow {
		t.Errorf("more SMs estimated slower: %v > %v", wide, narrow)
	}
}

func TestEstimateUnrestrictedPositive(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "nasnet", "resnet50")
	s := squadOf(clients, 10, 10)
	if est := EstimateUnrestricted(s, 108, 0); est <= 0 {
		t.Errorf("EstimateUnrestricted = %v, want > 0", est)
	}
}

func TestEstimateUnrestrictedSingleEntryMatchesSolo(t *testing.T) {
	// With one entry, the "overlapped group" is the kernel alone running at
	// its own d% SM usage — the solo full-occupancy duration stack.
	clients := testClients(t, []float64{1.0}, "vgg11")
	s := squadOf(clients, 6)
	est := EstimateUnrestricted(s, 108, 0)
	var want sim.Time
	for _, k := range s.Entries[0].Kernels {
		kp := &clients[0].Profile.Kernels[k]
		sms := kp.MaxSMs
		if !kp.IsCompute {
			sms = 108
		}
		want += clients[0].Profile.KernelDurAt(k, sms)
	}
	if est != want {
		t.Errorf("EstimateUnrestricted = %v, want %v", est, want)
	}
}

// estimatorAccuracy runs a squad's kernels through the simulator under the
// given configuration and returns (actual, predicted) durations.
func runSquadActual(t *testing.T, s *Squad, sms []int) sim.Time {
	t.Helper()
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())
	var last sim.Time
	for i := range s.Entries {
		e := &s.Entries[i]
		limit := 0
		if sms != nil {
			limit = sms[i]
		}
		ctx, err := gpu.NewContext(sim.ContextOptions{SMLimit: limit, NoMemCharge: true})
		if err != nil {
			t.Fatal(err)
		}
		q := ctx.NewQueue(e.Client.App.Name)
		for _, k := range e.Kernels {
			q.Enqueue(0, &e.Client.App.Kernels[k], func(at sim.Time) {
				if at > last {
					last = at
				}
			})
		}
	}
	eng.Run()
	return last
}

func TestInterferenceFreePredictorAccuracy(t *testing.T) {
	// The paper reports 6.7% average error for the interference-free
	// predictor; give our reproduction a 15% budget on a typical squad.
	clients := testClients(t, []float64{0.5, 0.5}, "nasnet", "bert")
	s := squadOf(clients, 20, 20)
	sms := []int{54, 54}
	actual := runSquadActual(t, s, sms)
	pred := EstimateSpatial(s, sms)
	errFrac := abs(float64(pred-actual)) / float64(actual)
	if errFrac > 0.15 {
		t.Errorf("interference-free predictor error %.1f%% (pred %v, actual %v), want <= 15%%",
			errFrac*100, pred, actual)
	}
}

func TestWorkloadEquivalencePredictorAccuracy(t *testing.T) {
	// Paper: 7.1% average error; budget 25% for a single squad here (the
	// aggregate accuracy experiment lives in the harness).
	clients := testClients(t, []float64{0.5, 0.5}, "nasnet", "resnet50")
	s := squadOf(clients, 20, 20)
	actual := runSquadActual(t, s, nil)
	pred := EstimateUnrestricted(s, 108, 0)
	errFrac := abs(float64(pred-actual)) / float64(actual)
	if errFrac > 0.25 {
		t.Errorf("workload-equivalence predictor error %.1f%% (pred %v, actual %v), want <= 25%%",
			errFrac*100, pred, actual)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestDetermineSingleEntryUnrestricted(t *testing.T) {
	clients := testClients(t, []float64{1.0}, "vgg11")
	s := squadOf(clients, 10)
	cfg := Determine(s, 108, []float64{1.0}, DetermineOptions{})
	if cfg.Spatial {
		t.Error("single-request squad spatially restricted; must use the whole GPU")
	}
}

func TestDetermineSearchSpaceSize(t *testing.T) {
	// K=2 active requests, N=18 partitions: C(17,1)=17 spatial splits plus
	// the unrestricted case = 18 configurations (§4.4.1).
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	s := squadOf(clients, 10, 10)
	cfg := Determine(s, 108, []float64{0.5, 0.5}, DetermineOptions{Partitions: 18})
	if cfg.Considered != 18 {
		t.Errorf("considered %d configurations, want 18", cfg.Considered)
	}
}

func TestDetermineSpatialAllocationsCoverDevice(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "nasnet", "bert")
	s := squadOf(clients, 25, 25)
	cfg := Determine(s, 108, []float64{0.5, 0.5}, DetermineOptions{Partitions: 18})
	if cfg.Spatial {
		sum := 0
		for _, v := range cfg.SMs {
			if v < 6 {
				t.Errorf("allocation %d below one partition", v)
			}
			sum += v
		}
		if sum > 108 {
			t.Errorf("allocations sum to %d > 108", sum)
		}
	}
}

func TestDetermineAblationForcesQuotaSplit(t *testing.T) {
	clients := testClients(t, []float64{0.25, 0.75}, "vgg11", "resnet50")
	s := squadOf(clients, 10, 10)
	cfg := Determine(s, 108, []float64{0.25, 0.75}, DetermineOptions{ForceSpatialQuota: true, Partitions: 18})
	if !cfg.Spatial {
		t.Fatal("ablation did not force spatial partitioning")
	}
	if cfg.Considered != 1 {
		t.Errorf("ablation evaluated %d configs, want 1 (no search)", cfg.Considered)
	}
	// Quota split ~ 27/81 SMs.
	if cfg.SMs[0] >= cfg.SMs[1] {
		t.Errorf("quota split %v does not follow quotas (0.25, 0.75)", cfg.SMs)
	}
}

func TestDetermineHillClimbManyEntries(t *testing.T) {
	// 5 entries exceed the enumeration bound; hill climbing must still
	// produce a valid configuration.
	clients := testClients(t, []float64{0.2, 0.2, 0.2, 0.2, 0.2},
		"vgg11", "resnet50", "resnet101", "nasnet", "bert")
	s := squadOf(clients, 8, 8, 8, 8, 8)
	cfg := Determine(s, 108, []float64{0.2, 0.2, 0.2, 0.2, 0.2}, DetermineOptions{Partitions: 18})
	if cfg.Estimate <= 0 {
		t.Error("no estimate produced")
	}
	if cfg.Spatial {
		sum := 0
		for _, v := range cfg.SMs {
			sum += v
		}
		if sum > 108 {
			t.Errorf("hill-climbed allocations sum to %d > 108", sum)
		}
	}
}

func TestDetermineChoosesBetterOfBothWorlds(t *testing.T) {
	// Without the quota guard, the chosen configuration's estimate must
	// equal the minimum over the whole space: never worse than either pure
	// strategy.
	clients := testClients(t, []float64{0.5, 0.5}, "nasnet", "resnet50")
	s := squadOf(clients, 20, 20)
	cfg := Determine(s, 108, []float64{0.5, 0.5}, DetermineOptions{Partitions: 18})
	nsp := EstimateUnrestricted(s, 108, 0)
	if cfg.Estimate > nsp {
		t.Errorf("chosen estimate %v worse than unrestricted %v", cfg.Estimate, nsp)
	}
	for p := 1; p <= 17; p++ {
		sms := []int{108 * p / 18, 108 * (18 - p) / 18}
		if e := EstimateSpatial(s, sms); e < cfg.Estimate {
			t.Errorf("split %v estimate %v beats chosen %v", sms, e, cfg.Estimate)
		}
	}
}

func TestDetermineQuotaGuardProtectsPace(t *testing.T) {
	// With the guard enabled, the chosen spatial configuration never lets an
	// entry's estimated stack exceed its quota-pace budget while a
	// pace-feasible alternative exists. The quota-proportional split is
	// always feasible, so whatever wins must be feasible too.
	clients := testClients(t, []float64{1.0 / 3, 2.0 / 3}, "vgg11", "resnet50")
	s := squadOf(clients, 8, 30)
	cfg := Determine(s, 108, []float64{1.0 / 3, 2.0 / 3}, DetermineOptions{Partitions: 18, QuotaGuard: true})
	if !cfg.Spatial {
		return // NSP won: it must have fit within every budget, fine.
	}
	for i := range s.Entries {
		e := &s.Entries[i]
		qsms := e.Client.QuotaSMs(108)
		var budget, stack sim.Time
		for _, k := range e.Kernels {
			budget += e.Client.Profile.KernelDurAt(k, qsms)
			stack += e.Client.Profile.KernelDurAt(k, cfg.SMs[i])
		}
		if stack > budget+budget/50 {
			t.Errorf("%s: stack %v at %d SMs exceeds quota budget %v",
				e.Client.App.Name, stack, cfg.SMs[i], budget)
		}
	}
}

func TestDetermineOptimalSplitNearBalanced(t *testing.T) {
	// Fig 10's {NasNet + ResNet50} squad: the predicted optimum is the
	// balanced 54/54 split. Symmetric-ish squads should land near balance.
	clients := testClients(t, []float64{0.5, 0.5}, "resnet50", "resnet50")
	s := squadOf(clients, 20, 20)
	cfg := Determine(s, 108, []float64{0.5, 0.5}, DetermineOptions{Partitions: 18})
	if cfg.Spatial {
		d := cfg.SMs[0] - cfg.SMs[1]
		if d < 0 {
			d = -d
		}
		if d > 24 {
			t.Errorf("symmetric squad split %v far from balanced", cfg.SMs)
		}
	}
}

func TestEnumerateCompositionsCountProperty(t *testing.T) {
	// C(n-1, k-1) compositions of n into k positive parts.
	binom := func(n, k int) int {
		if k < 0 || k > n {
			return 0
		}
		r := 1
		for i := 0; i < k; i++ {
			r = r * (n - i) / (i + 1)
		}
		return r
	}
	for _, c := range []struct{ n, k int }{{18, 1}, {18, 2}, {18, 3}, {10, 4}, {6, 6}} {
		count := 0
		enumerateCompositions(c.n, c.k, func(parts []int) sim.Time {
			count++
			sum := 0
			for _, p := range parts {
				if p < 1 {
					t.Fatalf("composition with non-positive part: %v", parts)
				}
				sum += p
			}
			if sum != c.n {
				t.Fatalf("composition sums to %d, want %d: %v", sum, c.n, parts)
			}
			return 0
		})
		if want := binom(c.n-1, c.k-1); count != want {
			t.Errorf("n=%d k=%d: %d compositions, want C(%d,%d)=%d", c.n, c.k, count, c.n-1, c.k-1, want)
		}
	}
}

func TestQuotaSplitProperties(t *testing.T) {
	cases := [][]float64{
		{0.5, 0.5},
		{1.0 / 3, 2.0 / 3},
		{0.1, 0.2, 0.3, 0.4},
		{0.05, 0.05, 0.1, 0.1, 0.15, 0.15, 0.2, 0.2},
		{0.9, 0.1},
	}
	for _, quotas := range cases {
		sms := quotaSplit(108, 18, quotas)
		if len(sms) != len(quotas) {
			t.Fatalf("split length %d, want %d", len(sms), len(quotas))
		}
		total := 0
		for i, v := range sms {
			if v < 1 {
				t.Errorf("quotas %v: entry %d got %d SMs", quotas, i, v)
			}
			total += v
		}
		if total > 108 {
			t.Errorf("quotas %v: split %v exceeds the device", quotas, sms)
		}
		// Ordering: a larger quota never receives fewer SMs than a smaller
		// one by more than one partition's rounding.
		for i := range quotas {
			for j := range quotas {
				if quotas[i] > quotas[j]+1e-9 && sms[i]+6 < sms[j] {
					t.Errorf("quotas %v: larger quota %d got %d SMs vs %d's %d", quotas, i, sms[i], j, sms[j])
				}
			}
		}
	}
}

func TestDetermineDeterministic(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "nasnet", "bert")
	s1 := squadOf(clients, 15, 15)
	s2 := squadOf(clients, 15, 15)
	a := Determine(s1, 108, []float64{0.5, 0.5}, DetermineOptions{Partitions: 18})
	b := Determine(s2, 108, []float64{0.5, 0.5}, DetermineOptions{Partitions: 18})
	if a.Spatial != b.Spatial || a.Estimate != b.Estimate || a.Considered != b.Considered {
		t.Errorf("Determine not deterministic: %+v vs %+v", a, b)
	}
}
