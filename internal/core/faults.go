package core

// Fault handling and graceful degradation for the BLESS runtime: kernel
// retry with capped exponential backoff, per-request deadline timeouts,
// crash teardown that releases a dead client's resources, and dynamic
// admission (sharing.Dynamic) with bubble-free quota re-provisioning over
// the live client set. All hooks are consulted at deterministic points of
// the simulation, so runs under a seeded fault plan replay bit-identically.

import (
	"fmt"
	"sort"

	"bless/internal/obs"
	"bless/internal/sharing"
	"bless/internal/sim"
)

// FaultInjector supplies the runtime's fault decisions; *chaos.Injector
// satisfies it. Implementations must be deterministic in their arguments
// (plus internal state that evolves deterministically), so two runs of the
// same plan fault identically.
type FaultInjector interface {
	// KernelFault reports whether the attempt-th execution (0-based) of
	// kernel index kernel of request seq from client faults on completion.
	// Implementations bound consecutive faults so retries converge.
	KernelFault(client, seq, kernel, attempt int) bool
	// ContextFault reports whether establishing an SM-restricted context of
	// the given size fails for the client.
	ContextFault(client, sms int) bool
	// ReleaseAfter maps a launch instant to the earliest instant the device
	// accepts the launch (transient stalls); identity when no stall holds.
	ReleaseAfter(at sim.Time) sim.Time
}

// FaultStats counts the runtime's degraded-mode activity.
type FaultStats struct {
	// KernelFaults counts injected kernel-execution faults observed.
	KernelFaults int64
	// Retries counts relaunches of faulted kernels.
	Retries int64
	// RetryAborts counts requests failed after exhausting the retry budget;
	// DeadlineAborts counts requests failed by the per-request deadline.
	RetryAborts    int64
	DeadlineAborts int64
	// CtxFaults counts injected context-establishment failures.
	CtxFaults int64
	// StallDelays counts launches deferred past a transient device stall.
	StallDelays int64
	// Crashes, Leaves and Joins count client churn handled.
	Crashes int64
	Leaves  int64
	Joins   int64
	// CancelledKernels counts launches dropped or skipped in crash teardown.
	CancelledKernels int64
}

// FaultStats returns a snapshot of the degraded-mode counters.
func (rt *Runtime) FaultStats() FaultStats { return rt.faults }

// SetFaultInjector attaches (or clears) the fault injector. Call before the
// first Submit; with a nil injector the launch hot path is unchanged.
func (rt *Runtime) SetFaultInjector(inj FaultInjector) { rt.opts.Injector = inj }

// SetRequestDeadline sets the per-request deadline (see
// Options.RequestDeadline); zero disables it.
func (rt *Runtime) SetRequestDeadline(d sim.Time) { rt.opts.RequestDeadline = d }

// maxRetries returns the per-kernel relaunch budget.
func (rt *Runtime) maxRetries() int {
	if rt.opts.MaxRetries > 0 {
		return rt.opts.MaxRetries
	}
	return 8
}

// backoff returns the capped exponential retry delay before the attempt-th
// relaunch (1-based).
func (rt *Runtime) backoff(attempt int) sim.Time {
	base := rt.opts.RetryBackoff
	if base <= 0 {
		base = 20 * sim.Microsecond
	}
	limit := rt.opts.RetryBackoffCap
	if limit <= 0 {
		limit = sim.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < limit; i++ {
		d *= 2
	}
	if d > limit {
		d = limit
	}
	return d
}

// withRetry wraps a kernel-completion callback with the fault/retry
// protocol: a faulted execution is relaunched after capped exponential
// backoff; exhausting the budget aborts the owning request. With no
// injector the callback is returned unwrapped, keeping the fault-free hot
// path byte-identical. done must only be invoked once the kernel's
// execution finally counts (success or terminal abort) — it carries the
// Semi-SP gate arrival and squad bookkeeping.
func (rt *Runtime) withRetry(cs *clientState, q *sim.Queue, k *sim.Kernel, seq, kIdx int, done func(sim.Time)) func(sim.Time) {
	inj := rt.opts.Injector
	if inj == nil {
		return done
	}
	attempt := 0
	kLaunch := rt.env.GPU.Config().KernelLaunch
	var cb func(sim.Time)
	cb = func(at sim.Time) {
		if cs.dead || !inj.KernelFault(cs.c.ID, seq, kIdx, attempt) {
			done(at)
			return
		}
		rt.faults.KernelFaults++
		attempt++
		if rt.bus.Enabled() {
			rt.bus.Emit(obs.Event{
				At: at, Kind: obs.KindKernelFault, Squad: rt.curSquad,
				Client: cs.c.App.Name, Seq: seq,
				Reason: fmt.Sprintf("k%d attempt %d", kIdx, attempt),
			})
		}
		if attempt > rt.maxRetries() {
			rt.faults.RetryAborts++
			if rt.bus.Enabled() {
				// One abort event per terminal fault, even when the request
				// was already aborted by a sibling kernel — the Delivery
				// invariant balances faults against retries plus aborts.
				rt.bus.Emit(obs.Event{
					At: at, Kind: obs.KindRequestAbort, Squad: rt.curSquad,
					Client: cs.c.App.Name, Seq: seq, Reason: "retries-exhausted",
				})
			}
			rt.abortActive(cs)
			done(at) // terminal: the gate and squad bookkeeping must advance
			return
		}
		rt.faults.Retries++
		relaunch := at + rt.backoff(attempt)
		if s := inj.ReleaseAfter(relaunch); s > relaunch {
			rt.faults.StallDelays++
			relaunch = s
		}
		if rt.bus.Enabled() {
			rt.bus.Emit(obs.Event{
				At: at, Kind: obs.KindKernelRetry, Squad: rt.curSquad,
				Client: cs.c.App.Name, Seq: seq,
				Reason:    fmt.Sprintf("k%d attempt %d", kIdx, attempt),
				Predicted: relaunch,
			})
		}
		rt.host.LaunchAt(q, k, relaunch, cb)
		cs.ovh.Launches++
		cs.ovh.LaunchTime += kLaunch
	}
	return cb
}

// stallFloor defers a launch instant past any active injected device stall.
func (rt *Runtime) stallFloor(at sim.Time) sim.Time {
	if inj := rt.opts.Injector; inj != nil {
		if s := inj.ReleaseAfter(at); s > at {
			rt.faults.StallDelays++
			return s
		}
	}
	return at
}

// abortActive fails the client's active request: its unscheduled kernels
// are skipped and it completes, marked Failed, once nothing of it remains
// in flight (immediately when idle). Callers emit the KindRequestAbort
// event themselves, with the triggering reason.
func (rt *Runtime) abortActive(cs *clientState) {
	a := cs.active
	if a == nil || a.aborted {
		return
	}
	a.aborted = true
	a.req.Failed = true
	if a.inFlight == 0 {
		rt.completeRequest(cs, a.req)
	}
}

// enforceDeadlines aborts overdue active requests at a squad boundary — the
// only deterministic preemption point, since kernels are un-preemptable.
func (rt *Runtime) enforceDeadlines() {
	d := rt.opts.RequestDeadline
	if d <= 0 {
		return
	}
	now := rt.env.Eng.Now()
	for _, cs := range rt.clients {
		if !cs.live() {
			continue
		}
		a := cs.active
		if a == nil || a.aborted || a.inFlight > 0 {
			continue
		}
		if now-a.serviceStart() > d {
			rt.faults.DeadlineAborts++
			if rt.bus.Enabled() {
				rt.bus.Emit(obs.Event{
					At: now, Kind: obs.KindRequestAbort, Squad: rt.curSquad,
					Client: cs.c.App.Name, Seq: a.req.Seq, Reason: "deadline",
				})
			}
			rt.abortActive(cs)
		}
	}
}

// skipKernel settles squad bookkeeping for a kernel that will never launch
// (its client crashed, or its request aborted, between planning and launch).
func (rt *Runtime) skipKernel(at sim.Time) {
	rt.faults.CancelledKernels++
	rt.squadPendings--
	if rt.squadPendings == 0 {
		rt.squadDone(at)
	}
}

// queues returns the client's device queues in deterministic order (default
// first, then restricted slots by ascending SM grant).
func (cs *clientState) queues() []*sim.Queue {
	out := []*sim.Queue{cs.defaultQ}
	sms := make([]int, 0, len(cs.restricted))
	for s := range cs.restricted {
		sms = append(sms, s)
	}
	sort.Ints(sms)
	for _, s := range sms {
		out = append(out, cs.restricted[s].q)
	}
	return out
}

// releaseClient hands the client's device memory back (application
// footprint plus every context it established).
func (rt *Runtime) releaseClient(cs *clientState) {
	if cs.released {
		return
	}
	cs.released = true
	mem := cs.c.App.MemoryBytes +
		rt.env.GPU.Config().ContextMemBytes*int64(1+len(cs.restricted))
	rt.env.GPU.FreeMemory(mem)
}

// reprovision re-normalizes effective quotas over the live clients: each
// keeps its provisioned share of the live provisioned sum, so survivors
// absorb a departed client's quota (no bubbles) and a joiner squeezes the
// incumbents proportionally. Active requests re-derive their quota
// partition and pace so the next squad forms — and its Semi-SP split ratios
// are selected — against the new quotas.
func (rt *Runtime) reprovision(at sim.Time) {
	sum := 0.0
	for _, cs := range rt.clients {
		if cs.live() {
			sum += cs.prov
		}
	}
	if sum <= 0 {
		return
	}
	for _, cs := range rt.clients {
		if !cs.live() {
			continue
		}
		eff := cs.prov / sum
		if eff > 1 {
			eff = 1
		}
		if eff == cs.c.Quota {
			continue
		}
		cs.c.Quota = eff
		if a := cs.active; a != nil {
			a.partIdx = cs.c.Profile.QuotaPartition(eff)
			if cs.c.SLOTarget > 0 {
				if iso := cs.c.Profile.Iso[a.partIdx]; iso > 0 {
					a.pace = float64(cs.c.SLOTarget) / float64(iso)
				}
			}
		}
		if rt.bus.Enabled() {
			rt.bus.Emit(obs.Event{
				At: at, Kind: obs.KindQuotaReprovision, Squad: rt.curSquad,
				Client: cs.c.App.Name, Reason: fmt.Sprintf("quota %.4f", eff),
			})
		}
	}
}

// EffectiveQuotas implements sharing.QuotaReporter: the current effective
// quota of every live client.
func (rt *Runtime) EffectiveQuotas() []sharing.ClientQuota {
	out := make([]sharing.ClientQuota, 0, len(rt.clients))
	for _, cs := range rt.clients {
		if cs.live() {
			out = append(out, sharing.ClientQuota{ID: cs.c.ID, Quota: cs.c.Quota})
		}
	}
	return out
}

// AddClient implements sharing.Dynamic: it admits a new client mid-run,
// provisioning its memory and default context, and re-normalizes effective
// quotas so the device stays fully subscribed. The client's ID must be the
// next dense slot. On resource exhaustion the admission is rejected with
// everything rolled back.
func (rt *Runtime) AddClient(c *sharing.Client) error {
	if rt.env == nil {
		return fmt.Errorf("core: AddClient before Deploy")
	}
	if c.ID != len(rt.clients) {
		return fmt.Errorf("core: AddClient: client ID %d is not the next slot %d", c.ID, len(rt.clients))
	}
	if c.Quota <= 0 || c.Quota > 1 {
		return fmt.Errorf("core: AddClient: client %q quota %g outside (0,1]", c.App.Name, c.Quota)
	}
	if c.Profile == nil {
		return fmt.Errorf("core: AddClient: client %q has no offline profile", c.App.Name)
	}
	if err := rt.env.GPU.AllocMemory(c.App.MemoryBytes); err != nil {
		return fmt.Errorf("core: admitting %q: %w", c.App.Name, err)
	}
	ctx, err := rt.env.GPU.NewContext(sim.ContextOptions{
		Label: c.App.Name + "/default",
		Owner: sim.OwnerTag(c.ID),
	})
	if err != nil {
		rt.env.GPU.FreeMemory(c.App.MemoryBytes)
		return fmt.Errorf("core: admitting %q: %w", c.App.Name, err)
	}
	now := rt.env.Eng.Now()
	rt.clients = append(rt.clients, &clientState{
		c:          c,
		prov:       c.Quota,
		defaultCtx: ctx,
		defaultQ:   ctx.NewQueue(c.App.Name + "/q"),
		restricted: make(map[int]*restrictedSlot),
		ovh:        ClientOverhead{Client: c.App.Name},
	})
	rt.env.Clients = append(rt.env.Clients, c)
	rt.faults.Joins++
	if rt.bus.Enabled() {
		rt.bus.Emit(obs.Event{
			At: now, Kind: obs.KindClientJoin, Squad: rt.curSquad,
			Client: c.App.Name,
		})
	}
	rt.reprovision(now)
	rt.kick()
	return nil
}

// RemoveClient implements sharing.Dynamic. A graceful leave (crashed false)
// stops admitting new work and releases the client's resources once its
// backlog drains. A crash tears the client down immediately: queued kernel
// launches are cancelled (the running one completes — kernels are
// un-preemptable), its memory and quota release, and squad formation plus
// Semi-SP split-ratio selection re-run over the survivors at the next
// boundary.
func (rt *Runtime) RemoveClient(id int, crashed bool) error {
	if rt.env == nil {
		return fmt.Errorf("core: RemoveClient before Deploy")
	}
	if id < 0 || id >= len(rt.clients) {
		return fmt.Errorf("core: RemoveClient: unknown client %d", id)
	}
	cs := rt.clients[id]
	if !cs.live() {
		return fmt.Errorf("core: RemoveClient: client %d already removed", id)
	}
	now := rt.env.Eng.Now()
	if !crashed {
		if cs.leaving {
			return fmt.Errorf("core: RemoveClient: client %d already leaving", id)
		}
		rt.faults.Leaves++
		if rt.bus.Enabled() {
			rt.bus.Emit(obs.Event{
				At: now, Kind: obs.KindClientLeave, Squad: rt.curSquad,
				Client: cs.c.App.Name, Reason: "drain",
			})
		}
		if cs.active == nil && len(cs.queue) == 0 {
			rt.releaseClient(cs)
			rt.reprovision(now)
		} else {
			cs.leaving = true
		}
		return nil
	}
	rt.faults.Crashes++
	if rt.bus.Enabled() {
		rt.bus.Emit(obs.Event{
			At: now, Kind: obs.KindClientCrash, Squad: rt.curSquad,
			Client: cs.c.App.Name,
		})
	}
	cs.dead = true
	cs.leaving = false
	cs.active = nil
	cs.queue = nil
	// Cancel every queued launch. The cancelled records' completion
	// callbacks are invoked now: with cs.dead set they flow through the
	// dead-client guards and settle the running squad's bookkeeping, so
	// the squad cycle survives losing a member mid-flight.
	for _, q := range cs.queues() {
		for _, pk := range q.CancelPending() {
			rt.faults.CancelledKernels++
			if pk.OnDone != nil {
				pk.OnDone(now)
			}
		}
	}
	rt.releaseClient(cs)
	rt.reprovision(now)
	rt.kick()
	return nil
}
