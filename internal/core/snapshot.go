package core

import "bless/internal/snapshot"

// ExportState captures the runtime's serializable logical state in canonical
// client-ID order: per-client quotas, backlogs and in-service progress, the
// squad counters, and the fault/retry counters. Pending engine events
// (kernel completions, retries, deadline timers) are closures and are not
// captured here — the fleet export records their firing instants and the
// import proof reconstructs them by replay.
func (rt *Runtime) ExportState() snapshot.RuntimeState {
	st := snapshot.RuntimeState{
		SquadsExecuted:   rt.squadsExecuted,
		SpatialSquads:    rt.spatialSquads,
		KernelsScheduled: rt.kernelsScheduled,
		ConfigsEvaluated: rt.configsEvaluated,
		SquadRunning:     rt.squadRunning,
		Faults:           snapshot.FaultCounts(rt.faults),
	}
	st.Clients = make([]snapshot.ClientState, 0, len(rt.clients))
	for _, cs := range rt.clients {
		c := snapshot.ClientState{
			ID:          cs.c.ID,
			Provisioned: cs.prov,
			Effective:   cs.c.Quota,
			Queued:      len(cs.queue),
			ActiveSeq:   -1,
			Leaving:     cs.leaving,
			Dead:        cs.dead,
			Released:    cs.released,
		}
		if cs.active != nil {
			c.ActiveSeq = cs.active.req.Seq
			c.ActiveNextK = cs.active.nextK
			c.ActiveInFlight = cs.active.inFlight
		}
		st.Clients = append(st.Clients, c)
	}
	return st
}
