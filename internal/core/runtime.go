package core

import (
	"errors"
	"fmt"
	"sort"

	"bless/internal/obs"
	"bless/internal/sharing"
	"bless/internal/sim"
)

// Options configures the BLESS runtime.
type Options struct {
	// MaxSquadKernels caps kernels per squad (default 50, §6.7).
	MaxSquadKernels int
	// SplitRatio is the Semi-SP split c%: the leading fraction of each
	// entry's kernels that run spatially restricted before the manager
	// removes the restriction for the tail (default 0.5, §6.7).
	SplitRatio float64
	// Partitions is the configuration-space granularity N (default: the
	// profiles' partition count, 18).
	Partitions int
	// SchedPerKernel is the host scheduling cost per kernel: multi-task
	// scheduling 3.7us + configuration search 2us + squad generation 1us =
	// 6.7us (§6.9). Overlapped with device execution.
	SchedPerKernel sim.Time
	// DisableFairSelection ablates the multi-task scheduler (Fig 20):
	// round-robin kernel selection instead of progress-based.
	DisableFairSelection bool
	// DisableDeterminer ablates the execution configuration determiner
	// (Fig 20): every multi-entry squad runs quota-proportionally
	// partitioned without searching.
	DisableDeterminer bool
	// DisableSemiSP disables the mid-squad context switch, keeping strict
	// spatial partitioning for whole squads (the SP row of Fig 17).
	DisableSemiSP bool
	// QuotaGuard forwards to DetermineOptions.QuotaGuard: constrain
	// configuration search to quota-pace-feasible splits.
	QuotaGuard bool
	// NoAdaptiveSizing forwards to GenerateOptions.NoAdaptiveSizing: squads
	// are bounded by the raw kernel cap only, without the pace-margin
	// duration cap (used by the Fig 19a sweep).
	NoAdaptiveSizing bool
	// NoFlush forwards to GenerateOptions.NoFlush: disable the endgame
	// flush (design ablation).
	NoFlush bool
	// TraceSquad, if set, observes every scheduled squad with its chosen
	// execution configuration — the hook behind the fine-grained timeline
	// analysis (Fig 18) and debugging.
	TraceSquad func(at sim.Time, squad *Squad, cfg ExecConfig)

	// Injector, when non-nil, supplies fault decisions (see FaultInjector):
	// kernel executions may fault and be retried with capped exponential
	// backoff, restricted-context establishment may fail, and launches may
	// be deferred past transient device stalls. *chaos.Injector satisfies
	// it; nil keeps the hot path byte-identical to the fault-free build.
	Injector FaultInjector
	// RetryBackoff is the base delay before relaunching a faulted kernel
	// (default 20us), doubling per consecutive attempt up to
	// RetryBackoffCap (default 1ms).
	RetryBackoff    sim.Time
	RetryBackoffCap sim.Time
	// MaxRetries caps relaunch attempts per kernel (default 8); exhausting
	// it aborts the owning request, which completes marked Failed.
	MaxRetries int
	// RequestDeadline, when positive, bounds a request's time in service:
	// requests still unfinished past it are aborted at the next squad
	// boundary (the only deterministic preemption point — kernels are
	// un-preemptable) and their remaining kernels skipped.
	RequestDeadline sim.Time
}

// DefaultOptions returns the paper's testbed settings.
func DefaultOptions() Options {
	return Options{
		MaxSquadKernels: DefaultMaxSquadKernels,
		SplitRatio:      0.5,
		SchedPerKernel:  6700, // 6.7us
	}
}

// clientState is the runtime's per-client bookkeeping.
type clientState struct {
	c      *sharing.Client
	queue  []*sharing.Request // FIFO backlog, excluding the active request
	active *activeRequest

	defaultCtx *sim.Context
	defaultQ   *sim.Queue
	restricted map[int]*restrictedSlot // keyed by SM grant

	// lastCtxSMs tracks which context the client's launches last targeted
	// (0 = the unrestricted default); redirecting launches to a different
	// context opens a ~50us vacuum for this client's kernels (§6.9). The
	// vacuum begins once launches to the old context stop, so it is counted
	// from lastLaunchAt — by the time the next squad issues, it has usually
	// elapsed behind ongoing execution.
	lastCtxSMs int
	// lastLaunchAt is the host timestamp of the client's most recent kernel
	// launch.
	lastLaunchAt sim.Time
	// lastArrival is when the client's most recent kernel reaches its
	// device queue (>= lastLaunchAt when a redirection vacuum applies);
	// graph followers must not arrive before it.
	lastArrival sim.Time

	// ovh accumulates this client's share of the host-side overheads
	// (§6.9), attributed at the decision points that incur them.
	ovh ClientOverhead

	// prov is the provisioned (deploy-time) quota; c.Quota holds the
	// effective quota, re-normalized over live clients after churn.
	prov float64
	// leaving marks a graceful departure: no new work is admitted and the
	// client's resources release once its backlog drains.
	leaving bool
	// dead marks an abrupt crash: queued kernels were cancelled and the
	// client no longer participates in squads.
	dead bool
	// released records that the client's memory was given back.
	released bool
}

// live reports whether the client still participates in scheduling (a
// leaving client does, until its backlog drains).
func (cs *clientState) live() bool { return !cs.dead && !cs.released }

type restrictedSlot struct {
	ctx *sim.Context
	q   *sim.Queue
}

// Runtime is the assembled BLESS system: it implements sharing.Scheduler by
// composing the multi-task scheduler, the execution configuration determiner
// and the concurrent kernel manager on top of the simulated device.
type Runtime struct {
	opts Options
	env  *sharing.Env
	host *sim.Host

	clients []*clientState

	squadRunning  bool
	kickPending   bool
	squadPendings int
	prevSquadDur  sim.Time
	squadStarted  sim.Time

	// bus receives decision events when a subscriber is attached (obs
	// package); nil-safe, zero cost when unobserved.
	bus *obs.Bus
	// current squad decision context, for SquadDone and context-switch
	// events and for splitting the completion sync among the members.
	curSquad     int64
	curMode      string
	curPredicted sim.Time
	curMembers   []int // client IDs of the running squad's entries

	// detCache memoizes execution-configuration decisions by squad
	// signature (see determineCache); per-Runtime, so per-run.
	detCache determineCache

	// launchSquad scratch, reused across squads (single-threaded engine;
	// nothing retains these past one launchSquad call).
	planScratch []plannedLaunch
	gateScratch []*launchGate
	planSort    planSorter
	// kdFree pools kernel-completion continuations: one is live per launched
	// kernel, returned when it fires (see kernelDone).
	kdFree []*kernelDone
	// tlFree pools Semi-SP tail-launch continuations the same way: one is
	// live per gated tail kernel, returned when its gate opens and the
	// launch issues (see tailLaunch). A fresh closure per tail kernel was a
	// top remaining allocation site on the steady-state path.
	tlFree []*tailLaunch
	// gateFree pools launch gates; gates used by a squad are recycled at the
	// next launchSquad (the previous squad has fully drained by then), with
	// their waiter slices kept for capacity reuse.
	gateFree []*launchGate
	gateUsed []*launchGate
	// genScratch holds squad generation's selection state (squad.go).
	genScratch genScratch
	// startSquad scratch: the per-round active/client/quota views handed to
	// squad generation and the determiner, rebuilt every round but never
	// retained past it.
	activesScratch []*activeRequest
	clientsScratch []*sharing.Client
	quotasScratch  []float64
	// kickFn is the scheduling-round closure, bound once: kick runs per
	// request arrival and completion, so a fresh closure per kick shows up
	// at sustained load.
	kickFn func()

	// stats
	squadsExecuted   int64
	spatialSquads    int64
	kernelsScheduled int64
	configsEvaluated int64

	// faults counts degraded-mode activity (see faults.go).
	faults FaultStats
}

// New creates a BLESS runtime with the given options.
func New(opts Options) *Runtime {
	if opts.MaxSquadKernels <= 0 {
		opts.MaxSquadKernels = DefaultMaxSquadKernels
	}
	if opts.SplitRatio <= 0 || opts.SplitRatio > 1 {
		opts.SplitRatio = 0.5
	}
	if opts.SchedPerKernel <= 0 {
		opts.SchedPerKernel = 6700
	}
	return &Runtime{opts: opts}
}

// Name implements sharing.Scheduler.
func (rt *Runtime) Name() string { return "BLESS" }

// Observe implements obs.Observable: the runtime publishes its scheduling
// decisions (squad formation, configuration choice, context switches,
// pace-guard trips, endgame flushes, squad completion) to the bus. Attach
// before Deploy/first Submit; a nil or subscriber-less bus costs nothing.
func (rt *Runtime) Observe(bus *obs.Bus) { rt.bus = bus }

// Deploy implements sharing.Scheduler: it validates the deployment, reserves
// application memory and establishes each client's default (unrestricted)
// GPU context. Restricted contexts are pre-established lazily per distinct
// SM grant the determiner selects, each charged the MPS context footprint.
func (rt *Runtime) Deploy(env *sharing.Env) error {
	if err := sharing.ValidateDeployment(env, true); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	rt.env = env
	rt.host = sim.NewHost(env.GPU)
	rt.clients = make([]*clientState, len(env.Clients))
	var reserved int64
	fail := func(c *sharing.Client, err error) error {
		env.GPU.FreeMemory(reserved)
		rt.clients = nil
		return fmt.Errorf("core: deploying %q: %w", c.App.Name, err)
	}
	for i, c := range env.Clients {
		if err := env.GPU.AllocMemory(c.App.MemoryBytes); err != nil {
			return fail(c, err)
		}
		reserved += c.App.MemoryBytes
		ctx, err := env.GPU.NewContext(sim.ContextOptions{
			Label: c.App.Name + "/default",
			Owner: sim.OwnerTag(c.ID),
		})
		if err != nil {
			return fail(c, err)
		}
		reserved += env.GPU.Config().ContextMemBytes
		rt.clients[i] = &clientState{
			c:          c,
			prov:       c.Quota,
			defaultCtx: ctx,
			defaultQ:   ctx.NewQueue(c.App.Name + "/q"),
			restricted: make(map[int]*restrictedSlot),
			ovh:        ClientOverhead{Client: c.App.Name},
		}
	}
	return nil
}

// Submit implements sharing.Scheduler.
func (rt *Runtime) Submit(r *sharing.Request) {
	cs := rt.clients[r.Client.ID]
	if !cs.live() || cs.leaving {
		// The client is gone or draining out; the request is dropped. The
		// harness stops counting a removed client's submissions itself.
		return
	}
	if cs.active == nil {
		cs.active = rt.newActive(r)
	} else {
		cs.queue = append(cs.queue, r)
	}
	if rt.bus.Enabled() {
		// Host-clock stamped (the admission decision happens on the host,
		// which can run ahead of the engine clock); the exact arrival
		// instant is recoverable from the completion event's latency.
		rt.bus.Emit(obs.Event{
			At: rt.host.Now(), Kind: obs.KindRequestAdmitted,
			Client: r.Client.App.Name, Seq: r.Seq,
		})
	}
	rt.kick()
}

// kick arms a scheduling round at the end of the current virtual instant, so
// that all same-instant arrivals join the same squad rather than the first
// arrival racing ahead of its simultaneous peers.
func (rt *Runtime) kick() {
	if rt.squadRunning || rt.kickPending {
		return
	}
	rt.kickPending = true
	if rt.kickFn == nil {
		rt.kickFn = func() {
			rt.kickPending = false
			if !rt.squadRunning {
				rt.startSquad()
			}
		}
	}
	rt.env.Eng.Schedule(rt.env.Eng.Now(), rt.kickFn)
}

// newActive initializes progress tracking for a request entering service.
func (rt *Runtime) newActive(r *sharing.Request) *activeRequest {
	c := r.Client
	partIdx := c.Profile.QuotaPartition(c.Quota)
	pace := 1.0
	if c.SLOTarget > 0 {
		iso := c.Profile.Iso[partIdx]
		if iso > 0 {
			pace = float64(c.SLOTarget) / float64(iso)
		}
	}
	return &activeRequest{
		req: r, partIdx: partIdx, pace: pace,
		activated:   rt.env.Eng.Now(),
		fromArrival: c.SLOTarget > 0,
	}
}

// startSquad runs one scheduling round: generate the squad, determine its
// execution configuration, and launch it through the kernel manager. The
// cycle re-arms itself from the squad-completion callback.
func (rt *Runtime) startSquad() {
	rt.enforceDeadlines()
	if cap(rt.activesScratch) < len(rt.clients) {
		rt.activesScratch = make([]*activeRequest, len(rt.clients))
		rt.clientsScratch = make([]*sharing.Client, len(rt.clients))
	}
	actives := rt.activesScratch[:len(rt.clients)]
	clients := rt.clientsScratch[:len(rt.clients)]
	for i, cs := range rt.clients {
		actives[i], clients[i] = nil, nil
		if !cs.live() {
			continue // departed: generation sees a nil slot
		}
		if a := cs.active; a != nil && !a.aborted {
			actives[i] = a
		}
		clients[i] = cs.c
	}
	squad, gen := generateSquadInfo(actives, clients, rt.host.Now(), GenerateOptions{
		MaxKernels:       rt.opts.MaxSquadKernels,
		RoundRobin:       rt.opts.DisableFairSelection,
		NoAdaptiveSizing: rt.opts.NoAdaptiveSizing,
		NoFlush:          rt.opts.NoFlush,
	}, &rt.genScratch)
	if squad == nil {
		rt.squadRunning = false
		return
	}
	seq := rt.squadsExecuted + 1

	if rt.bus.Enabled() {
		formedAt := rt.host.Now()
		members := make([]obs.SquadMember, len(squad.Entries))
		for i := range squad.Entries {
			e := &squad.Entries[i]
			members[i] = obs.SquadMember{
				Client: e.Client.App.Name,
				From:   e.Kernels[0],
				To:     e.Kernels[len(e.Kernels)-1] + 1,
			}
		}
		rt.bus.Emit(obs.Event{
			At: formedAt, Kind: obs.KindSquadFormed, Squad: seq,
			Reason: gen.stopReason, Members: members,
		})
		if gen.stopReason == "pace-cap" && gen.paceLimited >= 0 {
			rt.bus.Emit(obs.Event{
				At: formedAt, Kind: obs.KindPaceGuardTrip, Squad: seq,
				Client: clients[gen.paceLimited].App.Name, Reason: "duration-cap",
			})
		}
		if gen.flushClient >= 0 {
			rt.bus.Emit(obs.Event{
				At: formedAt, Kind: obs.KindEndgameFlush, Squad: seq,
				Client: clients[gen.flushClient].App.Name,
			})
		}
	}

	if cap(rt.quotasScratch) < len(squad.Entries) {
		rt.quotasScratch = make([]float64, len(squad.Entries))
	}
	quotas := rt.quotasScratch[:len(squad.Entries)]
	for i := range squad.Entries {
		quotas[i] = squad.Entries[i].Client.Quota
	}
	cfg := rt.detCache.determine(squad, rt.env.GPU.Config().SMs, quotas, DetermineOptions{
		Partitions:        rt.partitions(squad),
		ForceSpatialQuota: rt.opts.DisableDeterminer,
		InterferenceBeta:  rt.env.GPU.Config().InterferenceBeta,
		QuotaGuard:        rt.opts.QuotaGuard,
	})
	mode := "NSP"
	if cfg.Spatial {
		mode = "Semi-SP"
		if rt.opts.DisableSemiSP {
			mode = "SP"
		}
	}

	if rt.bus.Enabled() {
		members := make([]obs.SquadMember, len(squad.Entries))
		for i := range squad.Entries {
			e := &squad.Entries[i]
			members[i] = obs.SquadMember{
				Client: e.Client.App.Name,
				From:   e.Kernels[0],
				To:     e.Kernels[len(e.Kernels)-1] + 1,
			}
			if cfg.Spatial && i < len(cfg.SMs) {
				members[i].SMs = cfg.SMs[i]
			}
		}
		rt.bus.Emit(obs.Event{
			At: rt.host.Now(), Kind: obs.KindConfigChosen, Squad: seq,
			Mode: mode, Predicted: cfg.Estimate, Considered: cfg.Considered,
			Members: members,
		})
	}

	// Host scheduling cost (§6.9), overlapped with the previous squad's
	// device execution: only the overspend beyond the previous squad's
	// duration delays the GPU. The full cost is attributed per client in
	// proportion to its kernels in the squad.
	schedCost := rt.opts.SchedPerKernel * sim.Time(squad.Size())
	if over := schedCost - rt.prevSquadDur; over > 0 {
		rt.host.Spend(over)
	}

	rt.squadRunning = true
	rt.squadStarted = rt.host.Now()
	rt.curSquad = seq
	rt.curMode = mode
	rt.curPredicted = cfg.Estimate
	rt.curMembers = rt.curMembers[:0]
	for i := range squad.Entries {
		e := &squad.Entries[i]
		rt.curMembers = append(rt.curMembers, e.Client.ID)
		cs := rt.clients[e.Client.ID]
		cs.ovh.Kernels += int64(len(e.Kernels))
		cs.ovh.SchedTime += rt.opts.SchedPerKernel * sim.Time(len(e.Kernels))
	}
	if rt.opts.TraceSquad != nil {
		rt.opts.TraceSquad(rt.squadStarted, squad, cfg)
	}
	rt.squadsExecuted++
	rt.kernelsScheduled += int64(squad.Size())
	rt.configsEvaluated += int64(cfg.Considered)
	if cfg.Spatial {
		rt.spatialSquads++
	}
	rt.launchSquad(squad, cfg)
}

// partitions returns the determiner granularity, defaulting to the first
// entry's profile grid.
func (rt *Runtime) partitions(s *Squad) int {
	if rt.opts.Partitions > 0 {
		return rt.opts.Partitions
	}
	return s.Entries[0].Client.Profile.Partitions
}

// launchSquad is the concurrent kernel manager (§4.5): it launches the
// squad's kernels into per-client GPU contexts according to the execution
// configuration, realizing Semi-SP spatial-temporal sharing by redirecting
// each client's tail kernels to its unrestricted context once the restricted
// head completes. The squad-completion callback synchronizes (20us) and
// starts the next scheduling round.
func (rt *Runtime) launchSquad(squad *Squad, cfg ExecConfig) {
	rt.squadPendings = squad.Size()

	// Recycle the previous squad's gates: by this launch the prior squad
	// has fully drained (launchSquad only runs from a completed cycle), so
	// every pooled gate has opened and emptied its waiters. Waiter slices
	// are kept for capacity reuse.
	for i, g := range rt.gateUsed {
		g.expect, g.arrived, g.launchEnd, g.openAt, g.open = 0, 0, 0, 0, false
		g.waiters = g.waiters[:0]
		rt.gateFree = append(rt.gateFree, g)
		rt.gateUsed[i] = nil
	}
	rt.gateUsed = rt.gateUsed[:0]

	// Breadth-first launch order across entries starts cross-client
	// concurrency as early as possible; the host serializes the 3us
	// launches either way. The plan and gate slices are per-Runtime scratch:
	// nothing holds them past this call (closures capture value copies), and
	// a squad launches per few kernels, so per-squad allocation adds up.
	plan := rt.planScratch[:0]
	defer func() { rt.planScratch = plan }()

	if cap(rt.gateScratch) < len(squad.Entries) {
		rt.gateScratch = make([]*launchGate, len(squad.Entries))
	}
	gates := rt.gateScratch[:len(squad.Entries)]
	for i := range gates {
		gates[i] = nil
	}
	for i := range squad.Entries {
		e := &squad.Entries[i]
		cs := rt.clients[e.Client.ID]
		cs.active.inFlight += len(e.Kernels)

		if !cfg.Spatial {
			for _, k := range e.Kernels {
				plan = append(plan, plannedLaunch{entry: e, kIdx: k, q: cs.defaultQ})
			}
			continue
		}

		slot, err := rt.restrictedSlot(cs, cfg.SMs[i])
		if err != nil {
			// Context establishment failed (device memory exhausted by
			// application footprints): degrade this entry to the default
			// unrestricted context rather than stalling the squad.
			for _, k := range e.Kernels {
				plan = append(plan, plannedLaunch{entry: e, kIdx: k, q: cs.defaultQ})
			}
			continue
		}

		// Semi-SP: first c% of the entry's kernels run restricted; the
		// manager waits for them and redirects the tail to the unrestricted
		// context (Fig 7c). With Semi-SP disabled the whole entry stays
		// restricted (strict SP).
		split := len(e.Kernels)
		if !rt.opts.DisableSemiSP {
			split = int(float64(len(e.Kernels))*rt.opts.SplitRatio + 0.9999)
			if split < 1 {
				split = 1
			}
			if split > len(e.Kernels) {
				split = len(e.Kernels)
			}
		}
		head, tail := e.Kernels[:split], e.Kernels[split:]
		for _, k := range head {
			plan = append(plan, plannedLaunch{entry: e, kIdx: k, q: slot.q, smTag: cfg.SMs[i]})
		}
		if len(tail) > 0 {
			gate := rt.newGate()
			gates[i] = gate
			for _, k := range tail {
				plan = append(plan, plannedLaunch{entry: e, kIdx: k, q: cs.defaultQ, after: gate})
			}
		}
	}

	// Interleave entries breadth-first: sort by (position within entry,
	// entry order). The plan was built entry-major; re-order stably. The
	// persistent sorter keeps this allocation-free (sort.SliceStable builds
	// its less closure and reflection swapper per call).
	rt.planSort.plan = plan
	sort.Stable(&rt.planSort)
	rt.planSort.plan = nil

	// Wire gate triggers: a gate opens when the last restricted (head)
	// kernel of its entry completes, plus the context-switch vacuum.
	ctxSwitch := rt.env.GPU.Config().ContextSwitch
	kLaunch := rt.env.GPU.Config().KernelLaunch
	for i := range squad.Entries {
		if gates[i] == nil {
			continue
		}
		e := &squad.Entries[i]
		split := 0
		for _, pl := range plan {
			if pl.entry == e && pl.after == nil {
				split++
			}
		}
		gates[i].expect = split
	}

	for _, pl := range plan {
		pl := pl
		cs := rt.clients[pl.entry.Client.ID]
		k := &pl.entry.Client.App.Kernels[pl.kIdx]
		kd := rt.newKernelDone(pl.entry, pl.kIdx)
		gate := gateFor(gates, squad, pl.entry)

		if gate != nil && pl.after == nil {
			// Head kernel: completing it counts toward opening the gate.
			// The redirection vacuum runs concurrently with head execution
			// (launches to the restricted context stop during the squad's
			// launch phase), so the gate opens at the later of head
			// completion and vacuum end.
			kd.gate = gate
			kd.ctxSwitch = ctxSwitch
		}
		wrapped := kd.fn
		// The retry wrapper goes outermost: a faulted head kernel must not
		// open its Semi-SP gate (or advance squad bookkeeping) until a
		// relaunch actually succeeds.
		wrapped = rt.withRetry(cs, pl.q, k, pl.entry.Request.Seq, pl.kIdx, wrapped)

		if pl.after != nil {
			// Tail kernel: defer the launch until the gate opens (the open
			// time already includes the context-redirection vacuum), through
			// a pooled continuation — see tailLaunch.
			pl.after.then(rt.newTailLaunch(cs, pl.q, k, pl.entry.Request, wrapped, ctxSwitch, kLaunch).fn)
			continue
		}

		// Context-redirection vacuum when this client's launches move to a
		// different context than last time (§6.9): the client's kernels may
		// not arrive until the vacuum has elapsed since launches to the OLD
		// context ceased — by the next squad that is usually already behind
		// the previous squad's execution, so the vacuum hides.
		var notBefore sim.Time
		if cs.lastCtxSMs != pl.smTag {
			notBefore = cs.lastLaunchAt + ctxSwitch
			reason := "restrict"
			switch {
			case pl.smTag == 0:
				reason = "unrestrict"
			case cs.lastCtxSMs != 0:
				reason = "re-restrict"
			}
			cs.lastCtxSMs = pl.smTag
			cs.ovh.Switches++
			cs.ovh.SwitchTime += ctxSwitch
			if rt.bus.Enabled() {
				rt.bus.Emit(obs.Event{
					At: rt.host.Now(), Kind: obs.KindContextSwitch, Squad: rt.curSquad,
					Client: cs.c.App.Name, Reason: reason,
				})
			}
		}
		// CUDA-graph launch units (§6.10): only the first kernel of a graph
		// pays the host launch latency; the rest of the graph rides the same
		// call. A follower must never arrive before its leader, so it
		// arrives at the later of the host clock and the entry's previous
		// kernel's arrival (engine events at equal instants keep FIFO
		// order).
		app := pl.entry.Client.App
		graphFollower := app.GraphEnds != nil && pl.kIdx > 0 && app.GraphEnd(pl.kIdx-1) != pl.kIdx
		switch {
		case graphFollower && notBefore == 0:
			at := rt.host.Now()
			if cs.lastArrival > at {
				at = cs.lastArrival
			}
			at = rt.stallFloor(at)
			pl.q.Enqueue(at, k, wrapped)
			cs.lastArrival = at
		case notBefore > 0:
			notBefore = rt.stallFloor(notBefore)
			rt.host.LaunchAt(pl.q, k, notBefore, wrapped)
			cs.lastArrival = notBefore
			if hf := rt.host.Now(); hf > cs.lastArrival {
				cs.lastArrival = hf
			}
			cs.ovh.Launches++
			cs.ovh.LaunchTime += kLaunch
		default:
			if nb := rt.stallFloor(rt.host.Now()); nb > rt.host.Now() {
				// A device stall holds the launch; the host moves on.
				rt.host.LaunchAt(pl.q, k, nb, wrapped)
				cs.lastArrival = nb
				if hf := rt.host.Now(); hf > cs.lastArrival {
					cs.lastArrival = hf
				}
			} else {
				rt.host.Launch(pl.q, k, wrapped)
				cs.lastArrival = rt.host.Now()
			}
			cs.ovh.Launches++
			cs.ovh.LaunchTime += kLaunch
		}
		cs.lastLaunchAt = rt.host.Now()
		if gate != nil && pl.after == nil && cs.lastLaunchAt > gate.launchEnd {
			gate.launchEnd = cs.lastLaunchAt
		}
	}
}

// planSorter orders a squad's launch plan breadth-first: by the kernel's
// 0-based position within its entry (kIdx - Kernels[0]), stably, so entry
// order breaks ties. A persistent Runtime field with pointer-receiver
// methods keeps the per-squad sort allocation-free.
type planSorter struct{ plan []plannedLaunch }

func (p *planSorter) Len() int      { return len(p.plan) }
func (p *planSorter) Swap(a, b int) { p.plan[a], p.plan[b] = p.plan[b], p.plan[a] }
func (p *planSorter) Less(a, b int) bool {
	return p.plan[a].kIdx-p.plan[a].entry.Kernels[0] < p.plan[b].kIdx-p.plan[b].entry.Kernels[0]
}

// kernelDone is one kernel's completion continuation — the callback the sim
// fires when the kernel retires (wrapping in the Semi-SP head gate when the
// entry has one). Every launched kernel needs exactly one, so the Runtime
// pools them with their method closure pre-bound: a fresh closure per kernel
// was the simulator throughput benchmark's largest allocation site.
type kernelDone struct {
	rt     *Runtime
	client int
	req    *sharing.Request
	// last marks the request's final kernel (retiring it completes the
	// request).
	last bool
	// gate, when non-nil, receives this head kernel's arrival (Semi-SP);
	// the gate opens at the later of head completion and the
	// context-redirection vacuum end.
	gate      *launchGate
	ctxSwitch sim.Time
	// fn is kd.fire bound once at pool insertion and reused for the pooled
	// object's lifetime.
	fn func(sim.Time)
}

// newKernelDone takes a continuation from the pool (or mints one) and arms
// it for the given kernel.
func (rt *Runtime) newKernelDone(e *SquadEntry, kernelIdx int) *kernelDone {
	var kd *kernelDone
	if n := len(rt.kdFree); n > 0 {
		kd = rt.kdFree[n-1]
		rt.kdFree[n-1] = nil
		rt.kdFree = rt.kdFree[:n-1]
	} else {
		kd = &kernelDone{rt: rt}
		kd.fn = kd.fire
	}
	kd.client = e.Client.ID
	kd.req = e.Request
	kd.last = kernelIdx == e.Client.App.NumKernels()-1
	kd.gate = nil
	kd.ctxSwitch = 0
	return kd
}

// fire is the completion callback body. It releases kd back to the pool
// before the squad bookkeeping runs: squadDone may synchronously start the
// next squad, which re-arms pooled continuations for its own kernels.
func (kd *kernelDone) fire(at sim.Time) {
	rt := kd.rt
	if g := kd.gate; g != nil {
		ready := g.launchEnd + kd.ctxSwitch
		if at > ready {
			ready = at
		}
		g.arrive(ready)
	}
	cs := rt.clients[kd.client]
	req, last := kd.req, kd.last
	kd.req, kd.gate = nil, nil
	rt.kdFree = append(rt.kdFree, kd)

	if cs.dead {
		// Crash teardown already settled the request; only the squad
		// bookkeeping remains.
		rt.squadPendings--
		if rt.squadPendings == 0 {
			rt.squadDone(at)
		}
		return
	}
	if a := cs.active; a != nil && a.req == req {
		a.inFlight--
		// An aborted request completes (Failed) when its last launched
		// kernel drains; a healthy one when its final kernel retires.
		if last || (a.aborted && a.inFlight == 0) {
			rt.completeRequest(cs, req)
		}
	}
	rt.squadPendings--
	if rt.squadPendings == 0 {
		rt.squadDone(at)
	}
}

// tailLaunch is one Semi-SP tail kernel's gate continuation: the launch
// issued when its entry's head gate opens. Pooled like kernelDone — one is
// live per gated tail kernel, returned to the pool when its gate fires it —
// because a fresh closure per tail kernel was a top remaining allocation
// site on the steady-state path.
type tailLaunch struct {
	rt        *Runtime
	cs        *clientState
	q         *sim.Queue
	k         *sim.Kernel
	req       *sharing.Request
	wrapped   func(sim.Time)
	ctxSwitch sim.Time
	kLaunch   sim.Time
	// fn is tl.fire bound once at pool insertion and reused for the pooled
	// object's lifetime.
	fn func(sim.Time)
}

// newTailLaunch takes a continuation from the pool (or mints one) and arms it
// for the given tail kernel.
func (rt *Runtime) newTailLaunch(cs *clientState, q *sim.Queue, k *sim.Kernel, req *sharing.Request, wrapped func(sim.Time), ctxSwitch, kLaunch sim.Time) *tailLaunch {
	var tl *tailLaunch
	if n := len(rt.tlFree); n > 0 {
		tl = rt.tlFree[n-1]
		rt.tlFree[n-1] = nil
		rt.tlFree = rt.tlFree[:n-1]
	} else {
		tl = &tailLaunch{rt: rt}
		tl.fn = tl.fire
	}
	tl.cs, tl.q, tl.k, tl.req, tl.wrapped = cs, q, k, req, wrapped
	tl.ctxSwitch, tl.kLaunch = ctxSwitch, kLaunch
	return tl
}

// fire runs when the gate opens. It releases tl back to the pool before any
// bookkeeping: skipKernel may synchronously finish the squad and start the
// next round, which re-arms pooled continuations for its own kernels.
func (tl *tailLaunch) fire(openAt sim.Time) {
	rt, cs, q, k, req, wrapped := tl.rt, tl.cs, tl.q, tl.k, tl.req, tl.wrapped
	ctxSwitch, kLaunch := tl.ctxSwitch, tl.kLaunch
	tl.cs, tl.q, tl.k, tl.req, tl.wrapped = nil, nil, nil, nil, nil
	rt.tlFree = append(rt.tlFree, tl)

	if cs.dead {
		// The client crashed between planning and gate open: the kernel
		// never launches, settle its bookkeeping.
		rt.skipKernel(openAt)
		return
	}
	if a := cs.active; a != nil && a.req == req && a.aborted {
		// The request was aborted while its head ran: skip the tail
		// outright instead of burning device time on it.
		a.inFlight--
		if a.inFlight == 0 {
			rt.completeRequest(cs, a.req)
		}
		rt.skipKernel(openAt)
		return
	}
	if cs.lastCtxSMs != 0 {
		// First tail launch redirects this client back to its unrestricted
		// context: one switch per gate trip.
		cs.lastCtxSMs = 0
		cs.ovh.Switches++
		cs.ovh.SwitchTime += ctxSwitch
		if rt.bus.Enabled() {
			rt.bus.Emit(obs.Event{
				At: openAt, Kind: obs.KindContextSwitch, Squad: rt.curSquad,
				Client: cs.c.App.Name, Reason: "unrestrict",
			})
		}
	}
	rt.host.LaunchAt(q, k, rt.stallFloor(openAt), wrapped)
	cs.lastLaunchAt = rt.host.Now()
	cs.ovh.Launches++
	cs.ovh.LaunchTime += kLaunch
}

// newGate takes a launch gate from the pool (or mints one) and tracks it for
// recycling at the next launchSquad.
func (rt *Runtime) newGate() *launchGate {
	var g *launchGate
	if n := len(rt.gateFree); n > 0 {
		g = rt.gateFree[n-1]
		rt.gateFree[n-1] = nil
		rt.gateFree = rt.gateFree[:n-1]
	} else {
		g = &launchGate{}
	}
	rt.gateUsed = append(rt.gateUsed, g)
	return g
}

// gateFor finds the gate belonging to the entry, if any.
func gateFor(gates []*launchGate, s *Squad, e *SquadEntry) *launchGate {
	for i := range s.Entries {
		if &s.Entries[i] == e {
			return gates[i]
		}
	}
	return nil
}

// plannedLaunch is one kernel launch in a squad's breadth-first plan
// (launchSquad); the Runtime reuses one plan slice across squads.
type plannedLaunch struct {
	entry *SquadEntry
	kIdx  int
	q     *sim.Queue
	smTag int // context identity for vacuum accounting (0=default)
	after *launchGate
}

// launchGate delays tail launches until all head kernels of an entry finish.
type launchGate struct {
	expect    int
	arrived   int
	launchEnd sim.Time // host time of the last head-kernel launch
	openAt    sim.Time
	open      bool
	waiters   []func(sim.Time)
}

func (g *launchGate) arrive(readyAt sim.Time) {
	g.arrived++
	if readyAt > g.openAt {
		g.openAt = readyAt
	}
	if g.arrived >= g.expect && !g.open {
		g.open = true
		// Detach the waiter list before firing: the LAST waiter can
		// synchronously finish the squad (skip path) and start the next
		// round, which recycles this pooled gate and re-arms it with new
		// waiters — iterating the live field would then run the next
		// squad's continuations with this squad's open time. Only the final
		// waiter can recurse (each unfired waiter holds a pending kernel),
		// so the detached list is never appended to mid-loop.
		ws := g.waiters
		g.waiters = nil
		for _, w := range ws {
			w(g.openAt)
		}
		if g.waiters == nil {
			// Not recycled during the loop (or recycled but not re-armed):
			// hand the backing array back for capacity reuse.
			g.waiters = ws[:0]
		}
	}
}

func (g *launchGate) then(f func(sim.Time)) {
	if g.open {
		f(g.openAt)
		return
	}
	g.waiters = append(g.waiters, f)
}

// restrictedSlot returns (establishing on first use) the client's MPS context
// restricted to sms SMs. Establishment charges the per-context memory
// footprint; on exhaustion the nearest existing slot is reused.
func (rt *Runtime) restrictedSlot(cs *clientState, sms int) (*restrictedSlot, error) {
	if slot, ok := cs.restricted[sms]; ok {
		return slot, nil
	}
	if inj := rt.opts.Injector; inj != nil && inj.ContextFault(cs.c.ID, sms) {
		// Injected establishment failure: degrade to the nearest existing
		// restricted slot, or (via the error path) the default context. The
		// next establishment attempt for this size succeeds.
		rt.faults.CtxFaults++
		if rt.bus.Enabled() {
			rt.bus.Emit(obs.Event{
				At: rt.host.Now(), Kind: obs.KindContextFault, Squad: rt.curSquad,
				Client: cs.c.App.Name, Reason: fmt.Sprintf("sm%d", sms),
			})
		}
		if slot := cs.nearestSlot(sms); slot != nil {
			return slot, nil
		}
		return nil, fmt.Errorf("core: injected context fault for %q at %d SMs", cs.c.App.Name, sms)
	}
	ctx, err := rt.env.GPU.NewContext(sim.ContextOptions{
		SMLimit: sms,
		Label:   fmt.Sprintf("%s/sm%d", cs.c.App.Name, sms),
		Owner:   sim.OwnerTag(cs.c.ID),
	})
	if err != nil {
		if errors.Is(err, sim.ErrOutOfMemory) {
			if slot := cs.nearestSlot(sms); slot != nil {
				return slot, nil
			}
		}
		return nil, err
	}
	slot := &restrictedSlot{ctx: ctx, q: ctx.NewQueue(fmt.Sprintf("%s/q%d", cs.c.App.Name, sms))}
	cs.restricted[sms] = slot
	return slot, nil
}

// nearestSlot finds the established restricted context closest in SM count.
func (cs *clientState) nearestSlot(sms int) *restrictedSlot {
	var best *restrictedSlot
	bestGap := 1 << 30
	for got, slot := range cs.restricted {
		gap := got - sms
		if gap < 0 {
			gap = -gap
		}
		if gap < bestGap {
			bestGap, best = gap, slot
		}
	}
	return best
}

// completeRequest retires a finished request and activates the client's next
// queued one (FIFO, one active request per client — §4.3).
func (rt *Runtime) completeRequest(cs *clientState, r *sharing.Request) {
	if rt.bus.Enabled() {
		// Emitted at the completion instant, before the harness callback
		// fires, so subscribers see the span close ahead of any downstream
		// bookkeeping. Actual carries the exact latency.
		now := rt.env.Eng.Now()
		reason := "ok"
		if r.Failed {
			reason = "failed"
		}
		rt.bus.Emit(obs.Event{
			At: now, Kind: obs.KindRequestDone,
			Client: r.Client.App.Name, Seq: r.Seq,
			Reason: reason, Actual: now - r.Arrival,
		})
	}
	rt.env.Complete(r)
	cs.active = nil
	if len(cs.queue) > 0 {
		next := cs.queue[0]
		cs.queue = cs.queue[1:]
		cs.active = rt.newActive(next)
	} else if cs.leaving {
		// Graceful departure: the backlog just drained, hand the client's
		// resources back and re-provision the survivors.
		cs.leaving = false
		rt.releaseClient(cs)
		rt.reprovision(rt.env.Eng.Now())
	}
}

// squadDone fires when the squad's last kernel retires: synchronize with the
// device (20us, §6.9) and arm the next scheduling round. The round is kicked
// through the engine so that completions and arrivals landing at the same
// instant are all visible to squad generation.
func (rt *Runtime) squadDone(at sim.Time) {
	rt.prevSquadDur = at - rt.squadStarted
	rt.host.Sync()
	// Attribute the squad-boundary sync equally among the squad's members,
	// remainder to the first, so per-client sums stay exactly equal to
	// squads x SquadSync.
	if n := len(rt.curMembers); n > 0 {
		sync := rt.env.GPU.Config().SquadSync
		per := sync / sim.Time(n)
		for i, id := range rt.curMembers {
			cs := rt.clients[id]
			cs.ovh.Syncs++
			if i == 0 {
				cs.ovh.SyncTime += sync - per*sim.Time(n-1)
			} else {
				cs.ovh.SyncTime += per
			}
		}
	}
	if rt.bus.Enabled() {
		rt.bus.Emit(obs.Event{
			At: at, Kind: obs.KindSquadDone, Squad: rt.curSquad,
			Mode: rt.curMode, Predicted: rt.curPredicted, Actual: rt.prevSquadDur,
		})
	}
	rt.squadRunning = false
	rt.kick()
}

// Stats reports runtime counters for the overhead analysis.
type Stats struct {
	// SquadsExecuted counts completed scheduling rounds.
	SquadsExecuted int64
	// SpatialSquads counts squads the determiner chose to partition.
	SpatialSquads int64
	// KernelsScheduled counts kernels placed into squads.
	KernelsScheduled int64
	// ConfigsEvaluated counts estimator invocations across all rounds.
	ConfigsEvaluated int64
}

// Stats returns a snapshot of the runtime counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		SquadsExecuted:   rt.squadsExecuted,
		SpatialSquads:    rt.spatialSquads,
		KernelsScheduled: rt.kernelsScheduled,
		ConfigsEvaluated: rt.configsEvaluated,
	}
}

// ClientOverhead is one client's share of the host-side overheads (§6.9),
// attributed at the decision points that incur them: per-kernel launch calls
// (3us each), context-redirection vacuums (50us per switch), squad-boundary
// synchronization (20us per squad, split among the members) and host
// scheduling work (6.7us per kernel, overlapped with device execution).
type ClientOverhead struct {
	// Client is the owning application's name.
	Client string
	// Kernels counts kernels scheduled into squads for this client.
	Kernels int64
	// Launches counts host launch calls (graph followers ride their
	// leader's call and are excluded).
	Launches int64
	// Switches counts context redirections (restrict, unrestrict or
	// re-restrict trips).
	Switches int64
	// Syncs counts squad-boundary synchronizations this client took part in.
	Syncs int64
	// LaunchTime, SwitchTime, SyncTime and SchedTime are the attributed
	// overhead times per source.
	LaunchTime sim.Time
	SwitchTime sim.Time
	SyncTime   sim.Time
	SchedTime  sim.Time
}

// Total sums the attributed overhead time across all four sources.
func (o ClientOverhead) Total() sim.Time {
	return o.LaunchTime + o.SwitchTime + o.SyncTime + o.SchedTime
}

// OverheadStats returns the per-client overhead breakdown, in deployment
// order. The launch and sync columns sum exactly to the host's independently
// measured accounting (see HostOverhead); switch and sched columns are
// decision-count times the §6.9 unit costs.
func (rt *Runtime) OverheadStats() []ClientOverhead {
	out := make([]ClientOverhead, len(rt.clients))
	for i, cs := range rt.clients {
		out[i] = cs.ovh
	}
	return out
}

// HostOverhead returns the simulated host's ground-truth time accounting,
// for cross-checking the decision-level attribution.
func (rt *Runtime) HostOverhead() sim.HostOverhead {
	if rt.host == nil {
		return sim.HostOverhead{}
	}
	return rt.host.Overhead()
}
