package core

import (
	"testing"
)

// TestDetermineCacheEquivalence checks the memoized path returns exactly what
// a fresh search returns — decision, grants, estimate AND the Considered
// count (which feeds overhead accounting and decision traces) — on both the
// miss and the hit. The returned SMs slice is shared with the cache and
// read-only by contract (the copy-per-call this replaced was a top hot-path
// allocation site), so repeated hits must keep returning the same values.
func TestDetermineCacheEquivalence(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	opts := DetermineOptions{Partitions: 18}
	quotas := []float64{0.5, 0.5}

	var cache determineCache
	shapes := [][]int{{8, 8}, {8, 12}, {3, 20}}
	for round := 0; round < 2; round++ { // round 0 misses, round 1 hits
		for _, sh := range shapes {
			s := squadOf(clients, sh...)
			want := Determine(s, 108, quotas, opts)
			got := cache.determine(s, 108, quotas, opts)
			if got.Spatial != want.Spatial || got.Estimate != want.Estimate || got.Considered != want.Considered {
				t.Fatalf("round %d: cached = %+v, direct = %+v", round, got, want)
			}
			if len(got.SMs) != len(want.SMs) {
				t.Fatalf("round %d: SMs %v != %v", round, got.SMs, want.SMs)
			}
			for i := range got.SMs {
				if got.SMs[i] != want.SMs[i] {
					t.Fatalf("round %d: SMs %v != %v", round, got.SMs, want.SMs)
				}
			}
		}
	}
	if cache.hits != 3 || cache.misses != 3 {
		t.Fatalf("hits=%d misses=%d, want 3/3", cache.hits, cache.misses)
	}

	// Distinct inputs that a sloppy key would conflate must miss.
	if cfg := cache.determine(squadOf(clients, 8, 8), 108, quotas, DetermineOptions{Partitions: 18, QuotaGuard: true}); cfg.Considered == 0 {
		t.Fatal("quota-guard variant returned empty config")
	}
	if cache.misses != 4 {
		t.Fatalf("option variant should miss the cache, misses=%d", cache.misses)
	}
}
