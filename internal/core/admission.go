package core

import (
	"fmt"

	"bless/internal/sim"
)

// Serve-path admission: the deterministic per-tenant lane model behind
// blessd's sustained-load front end.
//
// A ServeLane is a G/D/1 queue in virtual time for one tenant. Arrivals are
// client-stamped — request seq arrives at seq x Interval — and service is
// the tenant's bubble-free cost at its provisioned quota (the §4.2.2
// admission contract: a quota-q tenant is promised the throughput of a
// dedicated q-fraction device, i.e. one request per IsoAtQuota(q)). A
// request is admitted when its queueing delay behind the lane's backlog
// stays within Bound; otherwise it is shed with a retry-after that tells
// the client when the lane drains back to feasible.
//
// Every decision is a pure function of (lane state, seq), and lane state
// advances only by per-tenant seq order — cross-tenant interleaving cannot
// influence any decision. That is the determinism backbone of the serving
// path: any sharding of tenants across intake workers, any batching window,
// and any concurrent arrival order produce bit-identical per-tenant
// decision digests, which fold order-independently (XOR) into the serve
// digest compared between serial and concurrent runs.
type ServeLane struct {
	// Interval is the tenant's nominal inter-arrival gap: request seq
	// arrives at seq x Interval of virtual time.
	Interval sim.Time
	// Service is the bubble-free per-request cost at the tenant's quota
	// (Profile.IsoAtQuota), charged on admission.
	Service sim.Time
	// Bound is the maximum queueing delay an admitted request may see; a
	// request that would wait longer is shed.
	Bound sim.Time

	// busy is the lane's busy-until instant: the virtual time at which all
	// admitted work drains.
	busy sim.Time
	// next is the next expected seq (requests must arrive in per-tenant seq
	// order; the intake pipeline's tenant sharding preserves it).
	next int
	// Admitted and Shed count decisions.
	Admitted, Shed uint64
	// digest chains every decision: FNV-1a over (seq, admitted, start).
	digest uint64
}

// ServeDecision is the outcome of one admission decision. All times are
// virtual.
type ServeDecision struct {
	Seq      int
	Admitted bool
	// Arrive is the client-stamped arrival (Seq x Interval); Start is when
	// service begins; Wait = Start - Arrive is the queueing delay.
	Arrive, Start, Wait sim.Time
	// Service is the charged bubble-free cost (admitted only).
	Service sim.Time
	// RetryAfter is how far beyond the bound the lane's backlog runs — the
	// virtual delay after which a retry of this request would be admitted
	// (shed only).
	RetryAfter sim.Time
}

// NewServeLane builds a lane. Interval and Service must be positive; Bound
// may be zero (admit only bubble-free-immediate requests).
func NewServeLane(interval, service, bound sim.Time) (*ServeLane, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("core: serve lane interval must be positive, got %d", interval)
	}
	if service <= 0 {
		return nil, fmt.Errorf("core: serve lane service must be positive, got %d", service)
	}
	if bound < 0 {
		return nil, fmt.Errorf("core: serve lane bound must be >= 0, got %d", bound)
	}
	return &ServeLane{Interval: interval, Service: service, Bound: bound, digest: fnvOffset}, nil
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvFold(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// Decide runs one admission decision for seq, filling d in place (the serve
// fast path allocates nothing). Seqs must arrive in order per lane; a gap or
// replay is a pipeline bug and panics with the lane's evidence.
func (l *ServeLane) Decide(seq int, d *ServeDecision) {
	if seq != l.next {
		panic(fmt.Sprintf("core: serve lane got seq %d, want %d (per-tenant FIFO broken)", seq, l.next))
	}
	l.next++
	arrive := sim.Time(seq) * l.Interval
	start := arrive
	if l.busy > start {
		start = l.busy
	}
	wait := start - arrive
	d.Seq = seq
	d.Arrive = arrive
	d.Start = start
	d.Wait = wait
	d.RetryAfter = 0
	d.Service = 0
	if wait <= l.Bound {
		d.Admitted = true
		d.Service = l.Service
		l.busy = start + l.Service
		l.Admitted++
	} else {
		d.Admitted = false
		d.RetryAfter = wait - l.Bound
		l.Shed++
	}
	h := fnvFold(l.digest, uint64(seq))
	var adm uint64
	if d.Admitted {
		adm = 1
	}
	h = fnvFold(h, adm)
	l.digest = fnvFold(h, uint64(start))
}

// DecideBatch decides a contiguous run of n requests starting at firstSeq in
// one pass, appending the decisions to out and returning the extended slice
// — the batch-admission entry point the intake pipeline uses to plan one
// batching window without per-request round-trips through the lane.
func (l *ServeLane) DecideBatch(firstSeq, n int, out []ServeDecision) []ServeDecision {
	for i := 0; i < n; i++ {
		var d ServeDecision
		l.Decide(firstSeq+i, &d)
		out = append(out, d)
	}
	return out
}

// Digest is the lane's decision-chain digest.
func (l *ServeLane) Digest() uint64 { return l.digest }

// SeedDigest mixes a tenant-identifying tag into the digest chain. Without
// it, tenants with identical lane parameters and identical request streams
// produce identical digests, and an even number of them cancels to zero in
// the XOR fold — seeding by tenant name keeps the fold sensitive to every
// lane. Call before the first decision.
func (l *ServeLane) SeedDigest(tag string) {
	for i := 0; i < len(tag); i++ {
		l.digest = (l.digest ^ uint64(tag[i])) * fnvPrime
	}
}

// Next is the next seq the lane will decide. Intake pipelines use it to
// reorder transport-scrambled arrivals back into per-tenant seq order
// before deciding.
func (l *ServeLane) Next() int { return l.next }

// Offered is the number of decisions taken (admitted + shed).
func (l *ServeLane) Offered() uint64 { return l.Admitted + l.Shed }

// Headroom reports how much bound the lane has left at its current backlog:
// negative values mean the next on-time arrival would shed.
func (l *ServeLane) Headroom() sim.Time {
	arrive := sim.Time(l.next) * l.Interval
	wait := l.busy - arrive
	if wait < 0 {
		wait = 0
	}
	return l.Bound - wait
}

// ServeDigest folds per-lane digests order-independently (XOR), so the fold
// is invariant to tenant enumeration order and to how tenants were sharded
// across intake workers.
func ServeDigest(lanes []*ServeLane) uint64 {
	var h uint64
	for _, l := range lanes {
		h ^= l.digest
	}
	return h
}
