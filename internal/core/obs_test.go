package core

import (
	"testing"

	"bless/internal/obs"
	"bless/internal/sharing"
	"bless/internal/sim"
)

// runObservedPair deploys a two-client runtime with a subscribed bus, runs
// one overlapped request per client, and returns the collected events.
func runObservedPair(t *testing.T, opts Options) (*Runtime, []obs.Event, []*sharing.Client) {
	t.Helper()
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	env := newEnv(t, clients)
	rt := New(opts)
	bus := obs.NewBus()
	var events []obs.Event
	bus.Subscribe(obs.SubscriberFunc(func(ev obs.Event) { events = append(events, ev) }))
	rt.Observe(bus)
	if err := rt.Deploy(env); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	submitAt(env, rt, clients[0], 0, 0)
	submitAt(env, rt, clients[1], 0, 0)
	env.Eng.Run()
	return rt, events, clients
}

func TestRuntimeDecisionEvents(t *testing.T) {
	rt, events, _ := runObservedPair(t, DefaultOptions())
	if len(events) == 0 {
		t.Fatal("no decision events published")
	}

	byKind := map[obs.Kind][]obs.Event{}
	var prev sim.Time
	for _, ev := range events {
		if ev.At < prev {
			t.Errorf("event %s at %v out of virtual-time order (prev %v)", ev.Kind, ev.At, prev)
		}
		prev = ev.At
		byKind[ev.Kind] = append(byKind[ev.Kind], ev)
	}

	squads := rt.Stats().SquadsExecuted
	if got := int64(len(byKind[obs.KindSquadFormed])); got != squads {
		t.Errorf("squad_formed events = %d, want one per squad (%d)", got, squads)
	}
	if got := int64(len(byKind[obs.KindConfigChosen])); got != squads {
		t.Errorf("config_chosen events = %d, want one per squad (%d)", got, squads)
	}
	if got := int64(len(byKind[obs.KindSquadDone])); got != squads {
		t.Errorf("squad_done events = %d, want one per squad (%d)", got, squads)
	}

	// Squad IDs ascend 1..N on formation events.
	for i, ev := range byKind[obs.KindSquadFormed] {
		if ev.Squad != int64(i)+1 {
			t.Errorf("squad_formed #%d has Squad=%d, want %d", i, ev.Squad, i+1)
		}
		if ev.Reason == "" {
			t.Errorf("squad_formed #%d has no stop reason", i)
		}
		if len(ev.Members) == 0 {
			t.Errorf("squad_formed #%d has no members", i)
		}
		for _, m := range ev.Members {
			if m.Client == "" || m.From < 0 || m.To <= m.From {
				t.Errorf("squad_formed #%d bad member %+v", i, m)
			}
		}
	}

	validModes := map[string]bool{"SP": true, "NSP": true, "Semi-SP": true}
	for i, ev := range byKind[obs.KindConfigChosen] {
		if !validModes[ev.Mode] {
			t.Errorf("config_chosen #%d has mode %q", i, ev.Mode)
		}
		if ev.Predicted <= 0 {
			t.Errorf("config_chosen #%d has non-positive prediction %v", i, ev.Predicted)
		}
		if ev.Considered <= 0 {
			t.Errorf("config_chosen #%d evaluated no configurations", i)
		}
	}

	for i, ev := range byKind[obs.KindSquadDone] {
		if ev.Actual <= 0 {
			t.Errorf("squad_done #%d has non-positive measured duration %v", i, ev.Actual)
		}
		if !validModes[ev.Mode] {
			t.Errorf("squad_done #%d has mode %q", i, ev.Mode)
		}
	}

	// A co-run of two clients through Semi-SP squads must redirect contexts.
	if len(byKind[obs.KindContextSwitch]) == 0 {
		t.Error("no context_switch events in a Semi-SP co-run")
	}
	validReasons := map[string]bool{"restrict": true, "unrestrict": true, "re-restrict": true}
	for i, ev := range byKind[obs.KindContextSwitch] {
		if !validReasons[ev.Reason] {
			t.Errorf("context_switch #%d has reason %q", i, ev.Reason)
		}
		if ev.Client == "" {
			t.Errorf("context_switch #%d has no client", i)
		}
	}
}

func TestRuntimeSemiSPDisabledModeTag(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableSemiSP = true
	_, events, _ := runObservedPair(t, opts)
	for _, ev := range events {
		if ev.Kind == obs.KindConfigChosen && ev.Mode == "Semi-SP" {
			t.Fatalf("Semi-SP mode reported with DisableSemiSP: %+v", ev)
		}
	}
}

func TestRuntimeOverheadAccountingIdentities(t *testing.T) {
	rt, _, clients := runObservedPair(t, DefaultOptions())

	ovh := rt.OverheadStats()
	if len(ovh) != len(clients) {
		t.Fatalf("OverheadStats len = %d, want %d", len(ovh), len(clients))
	}
	host := rt.HostOverhead()
	cfg := sim.DefaultConfig()

	var launches, switches, kernels int64
	var launchTime, switchTime, syncTime, schedTime sim.Time
	for i, o := range ovh {
		if o.Client != clients[i].App.Name {
			t.Errorf("overhead[%d].Client = %q, want %q", i, o.Client, clients[i].App.Name)
		}
		if o.Kernels > 0 && o.Total() <= 0 {
			t.Errorf("%s scheduled %d kernels but has zero overhead", o.Client, o.Kernels)
		}
		launches += o.Launches
		switches += o.Switches
		kernels += o.Kernels
		launchTime += o.LaunchTime
		switchTime += o.SwitchTime
		syncTime += o.SyncTime
		schedTime += o.SchedTime
	}

	// Launch attribution must match the host's independent measurement
	// exactly: same call count, same total time.
	if launches != host.Launches {
		t.Errorf("attributed launches %d != host launches %d", launches, host.Launches)
	}
	if launchTime != host.LaunchTime {
		t.Errorf("attributed launch time %v != host launch time %v", launchTime, host.LaunchTime)
	}
	// Sync attribution: the per-client split must sum exactly to the host's
	// measured synchronization time (one 20us sync per squad).
	if syncTime != host.SyncTime {
		t.Errorf("attributed sync time %v != host sync time %v", syncTime, host.SyncTime)
	}
	if host.Syncs != rt.Stats().SquadsExecuted {
		t.Errorf("host syncs %d != squads executed %d", host.Syncs, rt.Stats().SquadsExecuted)
	}
	// Definitional identities for the modeled costs.
	if kernels != rt.Stats().KernelsScheduled {
		t.Errorf("attributed kernels %d != kernels scheduled %d", kernels, rt.Stats().KernelsScheduled)
	}
	if want := rt.opts.SchedPerKernel * sim.Time(kernels); schedTime != want {
		t.Errorf("attributed sched time %v != kernels x unit cost %v", schedTime, want)
	}
	if want := cfg.ContextSwitch * sim.Time(switches); switchTime != want {
		t.Errorf("attributed switch time %v != switches x unit cost %v", switchTime, want)
	}
	if switches == 0 {
		t.Error("no context switches attributed in a Semi-SP co-run")
	}
}

func TestRuntimeUnobservedStillAccounts(t *testing.T) {
	// Without a bus the runtime must not publish (or panic) but the
	// overhead accounting still accrues.
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	env := newEnv(t, clients)
	rt := deployBLESS(t, env, DefaultOptions())
	submitAt(env, rt, clients[0], 0, 0)
	submitAt(env, rt, clients[1], 0, 0)
	env.Eng.Run()

	var total sim.Time
	for _, o := range rt.OverheadStats() {
		total += o.Total()
	}
	if total <= 0 {
		t.Fatal("no overhead attributed without a bus")
	}
	if rt.HostOverhead().Total() <= 0 {
		t.Fatal("host overhead empty")
	}
}

func TestRuntimeRequestLifecycleEvents(t *testing.T) {
	_, events, clients := runObservedPair(t, DefaultOptions())

	var admitted, done []obs.Event
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindRequestAdmitted:
			admitted = append(admitted, ev)
		case obs.KindRequestDone:
			done = append(done, ev)
		}
	}
	if len(admitted) != len(clients) {
		t.Fatalf("request_admitted events = %d, want %d", len(admitted), len(clients))
	}
	if len(done) != len(clients) {
		t.Fatalf("request_done events = %d, want %d", len(done), len(clients))
	}
	for i, ev := range done {
		if ev.Reason != "ok" {
			t.Errorf("request_done #%d reason = %q, want ok", i, ev.Reason)
		}
		if ev.Actual <= 0 {
			t.Errorf("request_done #%d latency %v, want > 0", i, ev.Actual)
		}
	}

	// Every request reconstructs into a complete lifecycle.
	ls := obs.Lifecycles(events)
	if len(ls) != len(clients) {
		t.Fatalf("lifecycles = %d, want %d", len(ls), len(clients))
	}
	for _, c := range clients {
		l := obs.FindLifecycle(ls, "", c.App.Name, 0)
		if l == nil {
			t.Fatalf("no lifecycle for %s/0", c.App.Name)
		}
		if !l.Completed || l.Failed {
			t.Errorf("%s lifecycle completed/failed = %v/%v", c.App.Name, l.Completed, l.Failed)
		}
		if l.Done <= 0 || l.Latency <= 0 || l.Done != l.Arrival+l.Latency {
			t.Errorf("%s lifecycle timing inconsistent: %+v", c.App.Name, l)
		}
		if len(l.Squads) == 0 {
			t.Errorf("%s lifecycle names no squads", c.App.Name)
		}
		// Admission, at least one squad-scoped annotation, completion.
		if len(l.Events) < 3 {
			t.Errorf("%s lifecycle has only %d events", c.App.Name, len(l.Events))
		}
	}
}
