// Package core implements BLESS itself: the multi-task scheduler that forms
// kernel squads (§4.3), the two kernel-squad performance estimators and the
// execution-configuration determiner (§4.4), and the concurrent kernel
// manager that realizes spatial-temporal sharing through multiple GPU
// contexts (§4.5). The assembled Runtime implements sharing.Scheduler.
package core

import (
	"fmt"
	"math"
	"strconv"

	"bless/internal/sharing"
	"bless/internal/sim"
)

// SquadEntry is one client's contribution to a kernel squad: a contiguous
// ascending run of kernel indices from its active request.
type SquadEntry struct {
	// Client owns the kernels.
	Client *sharing.Client
	// Request is the active request the kernels belong to.
	Request *sharing.Request
	// Kernels are indices into the client app's kernel sequence.
	Kernels []int
}

// Squad is a kernel squad: a group of kernels drawn from the concurrently
// active requests, scheduled and executed as a unit (§4.3.2).
type Squad struct {
	Entries []SquadEntry
}

// Size returns the total kernel count across entries.
func (s *Squad) Size() int {
	n := 0
	for i := range s.Entries {
		n += len(s.Entries[i].Kernels)
	}
	return n
}

// Validate checks squad well-formedness: non-empty entries with ascending,
// contiguous, in-range kernel indices.
func (s *Squad) Validate() error {
	if len(s.Entries) == 0 {
		return fmt.Errorf("core: empty squad")
	}
	for _, e := range s.Entries {
		if len(e.Kernels) == 0 {
			return fmt.Errorf("core: squad entry for %q has no kernels", e.Client.App.Name)
		}
		nk := e.Client.App.NumKernels()
		for i, k := range e.Kernels {
			if k < 0 || k >= nk {
				return fmt.Errorf("core: squad entry for %q: kernel index %d out of range [0,%d)", e.Client.App.Name, k, nk)
			}
			if i > 0 && k != e.Kernels[i-1]+1 {
				return fmt.Errorf("core: squad entry for %q: kernel indices not contiguous at %d", e.Client.App.Name, i)
			}
		}
	}
	return nil
}

// determineCache memoizes the execution-configuration search per squad
// signature. Closed-loop workloads re-form the same squad shapes over and
// over (same apps, same kernel windows, same quotas), so the C(N-1,K-1)
// configuration enumeration repeats with identical inputs; caching the
// decision removes that cost from the scheduling path.
//
// The cache lives on a Runtime, never across runs, so it is confined to one
// single-threaded simulation. The key is an exact spelling of every input
// Determine reads — the device SM count, the search options, and each
// entry's profile identity (app name), kernel window and quota — not a hash:
// a colliding key would replay the wrong configuration and silently corrupt
// determinism digests. A cached hit returns the identical ExecConfig a fresh
// search would produce, including the Considered count the overhead
// accounting and decision tracing publish.
type determineCache struct {
	m      map[string]ExecConfig
	keyBuf []byte
	hits   int64
	misses int64
}

// appendKey appends the exact cache key for one Determine call.
func (c *determineCache) appendKey(buf []byte, s *Squad, deviceSMs int, quotas []float64, opts DetermineOptions) []byte {
	buf = strconv.AppendInt(buf, int64(deviceSMs), 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(opts.Partitions), 10)
	buf = append(buf, '|')
	buf = strconv.AppendInt(buf, int64(opts.MaxEnumerate), 10)
	buf = append(buf, '|')
	if opts.ForceSpatialQuota {
		buf = append(buf, 'F')
	}
	if opts.QuotaGuard {
		buf = append(buf, 'G')
	}
	buf = append(buf, '|')
	buf = strconv.AppendUint(buf, math.Float64bits(opts.InterferenceBeta), 16)
	for i := range s.Entries {
		e := &s.Entries[i]
		buf = append(buf, ';')
		buf = append(buf, e.Client.App.Name...)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(e.Kernels[0]), 10)
		buf = append(buf, '+')
		buf = strconv.AppendInt(buf, int64(len(e.Kernels)), 10)
		buf = append(buf, '@')
		buf = strconv.AppendUint(buf, math.Float64bits(e.Client.Quota), 16)
	}
	for _, q := range quotas {
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, math.Float64bits(q), 16)
	}
	return buf
}

// determine answers from the cache or falls through to Determine. The
// returned SMs slice is shared with the cache entry and is read-only: the
// Runtime only indexes it, and closed-loop workloads hit the cache on
// nearly every squad, so a defensive copy per call was a top allocation
// site on the simulator hot path.
func (c *determineCache) determine(s *Squad, deviceSMs int, quotas []float64, opts DetermineOptions) ExecConfig {
	c.keyBuf = c.appendKey(c.keyBuf[:0], s, deviceSMs, quotas, opts)
	if cfg, ok := c.m[string(c.keyBuf)]; ok {
		c.hits++
		return cfg
	}
	c.misses++
	cfg := Determine(s, deviceSMs, quotas, opts)
	if c.m == nil {
		c.m = make(map[string]ExecConfig)
	}
	c.m[string(c.keyBuf)] = cfg
	return cfg
}

// activeRequest tracks the scheduling progress of one client's in-service
// request (§4.3.1). The multi-task scheduler handles one request per client
// at a time, FIFO.
type activeRequest struct {
	req *sharing.Request
	// nextK is the next unscheduled kernel index.
	nextK int
	// remaining counts launched-but-unfinished kernels of this request.
	inFlight int
	// partIdx is the quota's partition index into the client profile.
	partIdx int
	// pace scales the expected cumulative timeline: 1.0 targets the
	// isolated latency T[n%]; SLO mode stretches it to the QoS target
	// (§6.5).
	pace float64
	// activated is when the request entered service (left the client's FIFO
	// backlog). Pace tracking measures from activation, not arrival: a
	// client with a deep backlog is behind on throughput, not entitled to
	// starve its peers' per-request pace (the workload-E property, §6.4).
	activated sim.Time
	// fromArrival switches pace tracking back to the request's arrival.
	// SLO mode (§6.5) sets it: a QoS target is end-to-end, so queueing
	// delay must count as lag and be compensated.
	fromArrival bool
	// aborted marks a request the fault layer failed (retry budget or
	// deadline); its unscheduled kernels are skipped and it completes —
	// Failed — once nothing of it remains in flight.
	aborted bool
}

// expectedCum returns the expected time from request arrival to the end of
// the last scheduled kernel (tau[n%][k] scaled by pace). Zero scheduled
// kernels yield zero.
func (a *activeRequest) expectedCum(c *sharing.Client) sim.Time {
	if a.nextK == 0 {
		return 0
	}
	tau := c.Profile.Kernels[a.nextK-1].Cum[a.partIdx]
	return sim.Time(float64(tau) * a.pace)
}

// urgency computes the inverse relative progress of the request at time now:
// larger means the request is further behind its quota-isolated pace (§4.3.1,
// P~ = Pr/Pe with the quota target cancelled). Exposed for tests; squad
// generation embeds the same ratio with the in-squad frontier added.
func (a *activeRequest) urgency(c *sharing.Client, now sim.Time) float64 {
	te := now - a.serviceStart()
	if te < 1 {
		te = 1
	}
	exp := a.expectedCum(c)
	if exp < 1 {
		first := sim.Time(float64(c.Profile.Kernels[0].Cum[a.partIdx]) * a.pace)
		if first < 1 {
			first = 1
		}
		exp = first
	}
	return float64(te) / float64(exp)
}

// serviceStart returns when pace tracking begins: the request's arrival in
// SLO mode, else its activation.
func (a *activeRequest) serviceStart() sim.Time {
	if !a.fromArrival && a.activated > a.req.Arrival {
		return a.activated
	}
	return a.req.Arrival
}

// GenerateOptions tunes squad generation.
type GenerateOptions struct {
	// MaxKernels caps the squad size (the paper's empirical default is 50,
	// §6.7).
	MaxKernels int
	// RoundRobin disables fair progress-based selection (the Fig 20
	// ablation "w/o multi-task scheduler"): kernels are taken from active
	// requests in fixed rotation regardless of progress.
	RoundRobin bool
	// NoFlush disables the endgame flush (design ablation): squads never
	// fast-finish a nearly-done request, so lightly loaded clients stay in
	// pace-based sharing instead of settling into alternation.
	NoFlush bool
	// NoAdaptiveSizing disables the duration cap below; used by ablations
	// and the Fig 19(a) squad-size sweep, which measures the raw kernel cap.
	//
	// With sizing on (default), squad generation also stops once the
	// longest per-entry quota-pace timeline reaches the smallest pace
	// safety margin (theta) among the active requests. Pace guards act only
	// at squad boundaries, so a squad longer than theta could silently push
	// a peer behind its quota-isolated pace; the duration cap keeps
	// re-composition frequent enough for the guard to hold — and gives a
	// lone request short squads, so an arriving peer's resources are
	// re-configured "instantly" (§1).
	NoAdaptiveSizing bool
}

// DefaultMaxSquadKernels is the paper's testbed squad granularity (§6.7).
const DefaultMaxSquadKernels = 50

// paceSafetyFrac is the pace-guard margin: a request is treated as at risk of
// falling behind its quota-isolated timeline while its scheduled-work lead
// over elapsed time is below this fraction of the isolated latency.
const paceSafetyFrac = 0.1

// flushDeadlineSlack bounds the harm the endgame flush may impose on a peer:
// flushing is allowed only while every peer's projected completion under the
// flush (wait it out, then run at full-GPU speed) stays within this multiple
// of the peer's quota-isolated target measured from its service start. The
// deadline anchor is fixed, so repeated flushes against the same peer cannot
// compound — once earlier waits have consumed the slack, further flushes are
// denied and pace-based sharing resumes. The slack is what breaks
// phase-locked overlap into alternation, whose steady state is far below ISO
// for everyone; tight-target peers (biased deployments, low-occupancy apps
// that co-run for free) fail the check outright.
const flushDeadlineSlack = 1.15

// genInfo describes how squad generation ended, for decision tracing.
type genInfo struct {
	// stopReason says why generation stopped: "kernel-cap" (size cap
	// reached), "pace-cap" (the pace-guard duration cap tripped),
	// "request-end" (a selected kernel completes its request), "flush"
	// (endgame flush finished a request), or "drained" (no more selectable
	// kernels).
	stopReason string
	// flushClient is the flushed request's slot index, -1 when no flush.
	flushClient int
	// paceLimited is the slot index of the request whose in-squad timeline
	// hit the duration cap (-1 unless stopReason is "pace-cap").
	paceLimited int
}

// genScratch is squad generation's per-call selection state. None of the
// slices escape a generateSquadInfo call, so the Runtime keeps one scratch
// and reuses it across squads — generation runs per few kernels, and six
// fresh slices per squad added up on the hot path.
type genScratch struct {
	startK  []int
	ages    []sim.Time
	prior   []float64
	inSquad []float64
	theta   []float64
	target  []float64
	// Squad materialization buffers, recycled across generations: by the
	// time the next squad is generated the previous one has fully executed
	// (startSquad re-arms only from squadDone), so nothing references the
	// old entries or kernel-index backing anymore. A fresh Squad, flat
	// index buffer and entry slice per generation were the simulator
	// throughput benchmark's largest remaining per-squad allocation sites.
	flat    []int
	entries []SquadEntry
	squad   Squad
}

// grow resizes every slice to n and zeroes it.
func (g *genScratch) grow(n int) {
	if cap(g.startK) < n {
		g.startK = make([]int, n)
		g.ages = make([]sim.Time, n)
		g.prior = make([]float64, n)
		g.inSquad = make([]float64, n)
		g.theta = make([]float64, n)
		g.target = make([]float64, n)
	}
	g.startK = g.startK[:n]
	g.ages = g.ages[:n]
	g.prior = g.prior[:n]
	g.inSquad = g.inSquad[:n]
	g.theta = g.theta[:n]
	g.target = g.target[:n]
	for i := 0; i < n; i++ {
		g.startK[i] = 0
		g.ages[i] = 0
		g.prior[i] = 0
		g.inSquad[i] = 0
		g.theta[i] = 0
		g.target[i] = 0
	}
}

// generateSquad builds the next kernel squad from the active requests at
// virtual time now, advancing each chosen request's nextK. Generation stops
// when the cap is reached or a selected kernel completes a request (§4.3.2).
// Returns nil when no active request has unscheduled kernels.
func generateSquad(actives []*activeRequest, clients []*sharing.Client, now sim.Time, opts GenerateOptions) *Squad {
	var scr genScratch
	s, _ := generateSquadInfo(actives, clients, now, opts, &scr)
	return s
}

// generateSquadInfo is generateSquad plus the stop-reason metadata the
// observability layer publishes as decision events. scr is caller-owned
// scratch, valid only for the duration of the call.
func generateSquadInfo(actives []*activeRequest, clients []*sharing.Client, now sim.Time, opts GenerateOptions, scr *genScratch) (*Squad, genInfo) {
	maxK := opts.MaxKernels
	if maxK <= 0 {
		maxK = DefaultMaxSquadKernels
	}
	info := genInfo{flushClient: -1, paceLimited: -1}
	scr.grow(len(actives))

	// Selection only ever advances each request's kernel frontier, so the
	// picks per request form the contiguous range [startK[i], nextK) —
	// recording the starting frontier is enough to materialize the entries
	// from one exact-size buffer at the end.
	startK := scr.startK
	for i, a := range actives {
		if a != nil {
			startK[i] = a.nextK
		}
	}
	total := 0
	rrCursor := 0

	// Selection state per request (§4.3.1): age A = now - service start,
	// prior expected timeline P = tau at the last kernel scheduled in
	// EARLIER squads, and s = expected duration of kernels picked into THIS
	// squad. The tracked-kernel frontier makes te = A + s and tau = P + s.
	//
	// Selection is pace-guarded finish-first:
	//
	//  1. While any request is within a safety margin of falling behind its
	//     quota-isolated pace ((P+s) - A < theta), serve those, most-behind
	//     first by the relative-progress ratio — the compensation of
	//     §4.3.2, which also realizes the quota guarantee.
	//  2. Once every request is pace-safe, fill the squad with the request
	//     CLOSEST TO COMPLETION. Finishing requests early (instead of
	//     pinning all of them to fair-share pace) releases the whole GPU to
	//     the others sooner and lets lightly-loaded clients settle into
	//     alternating whole requests at near-solo latency — the
	//     bubble-squeezing payoff of §1.
	ages, prior, inSquad := scr.ages, scr.prior, scr.inSquad
	theta, target := scr.theta, scr.target
	for i, a := range actives {
		if a == nil {
			continue
		}
		ages[i] = now - a.serviceStart()
		if ages[i] < 1 {
			ages[i] = 1
		}
		prior[i] = float64(a.expectedCum(clients[i]))
		target[i] = float64(clients[i].Profile.Iso[a.partIdx]) * a.pace
		if target[i] < 1 {
			target[i] = 1
		}
		theta[i] = target[i] * paceSafetyFrac
	}
	// Duration cap: the squad's longest per-entry pace timeline may not
	// exceed the smallest safety margin among ALL deployed clients — idle
	// clients included, since any of them may submit mid-squad and must
	// have its resources re-configured within its own pace margin (the
	// "shrinks its resources instantly" property, §1). See
	// NoAdaptiveSizing.
	durationCap := 1e308
	if !opts.NoAdaptiveSizing {
		for i, c := range clients {
			if c == nil {
				continue
			}
			var t float64
			if a := actives[i]; a != nil {
				t = theta[i]
			} else {
				tgt := float64(c.Profile.IsoAtQuota(c.Quota))
				if c.SLOTarget > 0 {
					tgt = float64(c.SLOTarget)
				}
				t = tgt * paceSafetyFrac
			}
			if t > 0 && t < durationCap {
				durationCap = t
			}
		}
	}

	// Endgame flush target: a request more than half done, whose remaining
	// kernels fit the squad, may be finished outright — IF every peer still
	// meets its quota-isolated target afterwards. Completing a request
	// early releases the whole GPU (peers then run at full speed, which is
	// what makes the deadline check pass under light load) and shifts
	// client phases apart, letting lightly loaded clients alternate whole
	// requests at near-solo latency. Under tight targets the gate fails and
	// pace-based sharing proceeds (the workload-E property).
	flushTarget := -1
	if !opts.RoundRobin && !opts.NoFlush {
		bestP := 0.5
		for i, a := range actives {
			if a == nil || a.nextK >= a.req.Client.App.NumKernels() {
				continue
			}
			remain := a.req.Client.App.NumKernels() - a.nextK
			if remain > maxK {
				continue
			}
			p := prior[i] / target[i]
			if p <= bestP {
				continue
			}
			// Remaining full-GPU time of the flush candidate.
			prof := clients[i].Profile
			full := prof.Partitions - 1
			flushTime := float64(prof.Iso[full])
			if a.nextK > 0 {
				flushTime -= float64(prof.Kernels[a.nextK-1].Cum[full])
			}
			ok := true
			for j, b := range actives {
				if j == i || b == nil || b.nextK >= b.req.Client.App.NumKernels() {
					continue
				}
				pj := clients[j].Profile
				full := pj.Partitions - 1
				// Peer's remaining work at full-GPU speed.
				soloRemain := float64(pj.Iso[full])
				if b.nextK > 0 {
					soloRemain -= float64(pj.Kernels[b.nextK-1].Cum[full])
				}
				underFlush := float64(ages[j]) + flushTime + soloRemain
				if underFlush > target[j]*flushDeadlineSlack {
					ok = false
					break
				}
			}
			if ok {
				bestP, flushTarget = p, i
			}
		}
	}

	// kernelDelta returns the expected quota-pace duration of request i's
	// next kernel.
	kernelDelta := func(i int) float64 {
		a := actives[i]
		kp := &clients[i].Profile.Kernels[a.nextK]
		d := float64(kp.Cum[a.partIdx])
		if a.nextK > 0 {
			d -= float64(clients[i].Profile.Kernels[a.nextK-1].Cum[a.partIdx])
		}
		if d < 1 {
			d = 1
		}
		return d * a.pace
	}

	for total < maxK {
		sel := -1
		if opts.RoundRobin {
			// Fixed rotation over requests with kernels left.
			for probe := 0; probe < len(actives); probe++ {
				i := (rrCursor + probe) % len(actives)
				a := actives[i]
				if a != nil && a.nextK < a.req.Client.App.NumKernels() {
					sel = i
					rrCursor = i + 1
					break
				}
			}
		} else if flushTarget >= 0 {
			sel = flushTarget
		} else {
			// Pass 1: pace-at-risk requests, most behind first. The ratio is
			// recomputed per pick with the growing in-squad timeline, so
			// at-risk requests interleave in proportion to their lag and the
			// squad mixes — co-running beats serializing while several
			// requests need their pace.
			best := 0.0
			for i, a := range actives {
				if a == nil || a.nextK >= a.req.Client.App.NumKernels() {
					continue
				}
				cum := prior[i] + inSquad[i]
				if cum-float64(ages[i]) >= theta[i] {
					continue // comfortably ahead of pace
				}
				// Evaluated as if the next kernel were picked so fresh
				// requests (P=s=0) compare finitely.
				d := kernelDelta(i)
				u := (float64(ages[i]) + d) / (cum + d)
				if u > best {
					best, sel = u, i
				}
			}
			if sel < 0 {
				// Pass 2: everyone pace-safe — finish-first.
				bestP := -1.0
				for i, a := range actives {
					if a == nil || a.nextK >= a.req.Client.App.NumKernels() {
						continue
					}
					if p := (prior[i] + inSquad[i]) / target[i]; p > bestP {
						bestP, sel = p, i
					}
				}
			}
		}
		if sel < 0 {
			info.stopReason = "drained"
			break
		}
		a := actives[sel]
		// CUDA-graph granularity (§6.10): a selected kernel pulls in the
		// rest of its launch graph — graphs are single host calls and are
		// scheduled atomically, even past the size cap.
		graphEnd := a.req.Client.App.GraphEnd(a.nextK)
		for a.nextK < graphEnd {
			inSquad[sel] += kernelDelta(sel)
			a.nextK++
			total++
		}
		if a.nextK == a.req.Client.App.NumKernels() {
			// Selected kernel is the request's last: terminate generation.
			if sel == flushTarget {
				info.stopReason = "flush"
				info.flushClient = sel
			} else {
				info.stopReason = "request-end"
			}
			break
		}
		if inSquad[sel] >= durationCap {
			// Longest timeline hit the pace-guard margin.
			info.stopReason = "pace-cap"
			info.paceLimited = sel
			break
		}
	}
	if info.stopReason == "" {
		info.stopReason = "kernel-cap"
	}

	if total == 0 {
		return nil, info
	}

	flat := scr.flat[:0]
	if cap(flat) < total {
		flat = make([]int, 0, total)
	}
	entries := scr.entries[:0]
	for i, a := range actives {
		if a == nil || a.nextK == startK[i] {
			continue
		}
		first := len(flat)
		for k := startK[i]; k < a.nextK; k++ {
			flat = append(flat, k)
		}
		entries = append(entries, SquadEntry{
			Client:  clients[i],
			Request: a.req,
			Kernels: flat[first:len(flat):len(flat)],
		})
	}
	scr.flat = flat
	scr.entries = entries
	scr.squad.Entries = entries
	return &scr.squad, info
}
