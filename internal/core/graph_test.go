package core

import (
	"testing"

	"bless/internal/model"
	"bless/internal/profiler"
	"bless/internal/sharing"
	"bless/internal/sim"
)

// graphClients builds two clients whose apps are partitioned into launch
// graphs of the given size.
func graphClients(t *testing.T, graphSize int) []*sharing.Client {
	t.Helper()
	clients := make([]*sharing.Client, 2)
	for i, name := range []string{"resnet50", "vgg11"} {
		app := model.MustGet(name).WithGraphs(graphSize)
		if err := app.ValidateGraphs(); err != nil {
			t.Fatal(err)
		}
		p, err := profiler.ProfileApp(app, profiler.Options{})
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = &sharing.Client{ID: i, App: app, Profile: p, Quota: 0.5}
	}
	return clients
}

func TestGenerateSquadRespectsGraphAtomicity(t *testing.T) {
	clients := graphClients(t, 8)
	actives := activesFor(clients)
	for round := 0; round < 30; round++ {
		s := generateSquad(actives, clients, sim.Time(round+1)*sim.Millisecond, GenerateOptions{MaxKernels: 20})
		if s == nil {
			break
		}
		for _, e := range s.Entries {
			// Every entry must start at a graph boundary and end either at
			// one or at the request's last kernel.
			first := e.Kernels[0]
			if first != 0 && e.Client.App.GraphEnd(first-1) != first {
				t.Fatalf("entry for %s starts mid-graph at %d", e.Client.App.Name, first)
			}
			last := e.Kernels[len(e.Kernels)-1]
			if last != e.Client.App.NumKernels()-1 && e.Client.App.GraphEnd(last) != last+1 {
				t.Fatalf("entry for %s ends mid-graph at %d", e.Client.App.Name, last)
			}
		}
	}
}

func TestGraphEndHelpers(t *testing.T) {
	app := model.MustGet("vgg11").WithGraphs(10) // 31 kernels -> ends 10,20,30,31
	cases := []struct{ k, want int }{{0, 10}, {9, 10}, {10, 20}, {29, 30}, {30, 31}}
	for _, c := range cases {
		if got := app.GraphEnd(c.k); got != c.want {
			t.Errorf("GraphEnd(%d) = %d, want %d", c.k, got, c.want)
		}
	}
	plain := model.MustGet("vgg11")
	if got := plain.GraphEnd(5); got != 6 {
		t.Errorf("graphless GraphEnd(5) = %d, want 6", got)
	}
}

func TestRuntimeWithGraphsCompletesAndSaves(t *testing.T) {
	// Graph launches amortize host launch latency: the same workload
	// completes, and end-to-end latency does not regress versus per-kernel
	// launching by more than the scheduling-granularity loss.
	run := func(graphSize int) sim.Time {
		var clients []*sharing.Client
		if graphSize > 0 {
			clients = graphClients(t, graphSize)
		} else {
			clients = testClients(t, []float64{0.5, 0.5}, "resnet50", "vgg11")
		}
		env := newEnv(t, clients)
		rt := deployBLESS(t, env, DefaultOptions())
		r0 := submitAt(env, rt, clients[0], 0, 0)
		r1 := submitAt(env, rt, clients[1], 0, 0)
		env.Eng.Run()
		if r0.Done == 0 || r1.Done == 0 {
			t.Fatal("requests incomplete")
		}
		return (r0.Latency() + r1.Latency()) / 2
	}
	plain := run(0)
	graphs := run(8)
	if graphs > plain+plain/4 {
		t.Errorf("graph granularity avg %v regressed more than 25%% vs per-kernel %v", graphs, plain)
	}
}

func TestValidateGraphs(t *testing.T) {
	app := model.MustGet("vgg11")
	app.GraphEnds = []int{10, 5} // not ascending
	if err := app.ValidateGraphs(); err == nil {
		t.Error("non-ascending graph ends accepted")
	}
	app.GraphEnds = []int{10, 20} // does not cover all kernels
	if err := app.ValidateGraphs(); err == nil {
		t.Error("incomplete graph cover accepted")
	}
	app.GraphEnds = nil
	if err := app.ValidateGraphs(); err != nil {
		t.Errorf("nil graphs rejected: %v", err)
	}
}
