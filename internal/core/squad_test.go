package core

import (
	"testing"

	"bless/internal/model"
	"bless/internal/profiler"
	"bless/internal/sharing"
	"bless/internal/sim"
)

// testClients builds profiled clients from catalog names with given quotas.
func testClients(t testing.TB, quotas []float64, names ...string) []*sharing.Client {
	t.Helper()
	out := make([]*sharing.Client, len(names))
	for i, n := range names {
		app := model.MustGet(n)
		p, err := profiler.ProfileApp(app, profiler.Options{})
		if err != nil {
			t.Fatalf("profile %s: %v", n, err)
		}
		out[i] = &sharing.Client{ID: i, App: app, Profile: p, Quota: quotas[i]}
	}
	return out
}

// activesFor creates fresh active requests for all clients, arrived at 0.
func activesFor(clients []*sharing.Client) []*activeRequest {
	actives := make([]*activeRequest, len(clients))
	for i, c := range clients {
		actives[i] = &activeRequest{
			req:     &sharing.Request{Client: c, Arrival: 0},
			partIdx: c.Profile.QuotaPartition(c.Quota),
			pace:    1.0,
		}
	}
	return actives
}

func TestGenerateSquadRespectsCap(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "resnet50", "vgg11")
	actives := activesFor(clients)
	s := generateSquad(actives, clients, sim.Millisecond, GenerateOptions{MaxKernels: 6})
	if s == nil {
		t.Fatal("no squad generated")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Size() > 6 {
		t.Errorf("squad size %d exceeds cap 6", s.Size())
	}
}

func TestGenerateSquadQuotaPaceWeighting(t *testing.T) {
	// Two identical apps, 70%/30% quotas, equal arrival: across repeated
	// squads the high-quota request must complete its kernels sooner in
	// expected-pace terms — it reaches its last kernel within fewer
	// generation rounds than the low-quota peer (Fig 18a's earlier finish).
	clients := testClients(t, []float64{0.7, 0.3}, "resnet50", "resnet50")
	actives := activesFor(clients)
	now := sim.Millisecond
	round70, round30 := -1, -1
	for round := 0; round < 100 && (round70 < 0 || round30 < 0); round++ {
		s := generateSquad(actives, clients, now, GenerateOptions{MaxKernels: 50})
		if s == nil {
			break
		}
		// Advance virtual time by the squad's quota-pace duration estimate.
		now += EstimateSpatial(s, []int{76, 32})
		if round70 < 0 && actives[0].nextK == clients[0].App.NumKernels() {
			round70 = round
		}
		if round30 < 0 && actives[1].nextK == clients[1].App.NumKernels() {
			round30 = round
		}
	}
	if round70 < 0 || round30 < 0 {
		t.Fatalf("requests never fully scheduled (rounds %d, %d)", round70, round30)
	}
	if round70 > round30 {
		t.Errorf("high-quota request fully scheduled at round %d, after low-quota at %d", round70, round30)
	}
}

func TestGenerateSquadCompensatesLaggards(t *testing.T) {
	// Equal quotas, but request 0 arrived much earlier (it is lagging): it
	// must receive more kernels in the next squad (§4.3.2 compensation).
	clients := testClients(t, []float64{0.5, 0.5}, "resnet50", "resnet50")
	actives := activesFor(clients)
	// Both have already been scheduled 10 kernels.
	actives[0].nextK, actives[1].nextK = 10, 10
	actives[0].req.Arrival = 0
	actives[1].req.Arrival = 9 * sim.Millisecond // arrived later => less behind
	s := generateSquad(actives, clients, 10*sim.Millisecond, GenerateOptions{MaxKernels: 20})
	var nLag, nFresh int
	for _, e := range s.Entries {
		if e.Request == actives[0].req {
			nLag = len(e.Kernels)
		} else {
			nFresh = len(e.Kernels)
		}
	}
	if nLag <= nFresh {
		t.Errorf("lagging request got %d kernels vs %d; want compensation", nLag, nFresh)
	}
}

func TestGenerateSquadStopsAtRequestEnd(t *testing.T) {
	clients := testClients(t, []float64{1.0}, "vgg11")
	actives := activesFor(clients)
	actives[0].nextK = clients[0].App.NumKernels() - 2
	s := generateSquad(actives, clients, sim.Millisecond, GenerateOptions{MaxKernels: 50})
	if s == nil {
		t.Fatal("no squad")
	}
	// Only 2 kernels remained; the squad ends with the request even though
	// the cap allows 50.
	if s.Size() != 2 {
		t.Errorf("squad size %d, want 2 (ends with the request's last kernel)", s.Size())
	}
}

func TestGenerateSquadNilWhenIdle(t *testing.T) {
	clients := testClients(t, []float64{1.0}, "vgg11")
	actives := []*activeRequest{nil}
	if s := generateSquad(actives, clients, 0, GenerateOptions{}); s != nil {
		t.Error("squad generated with no active requests")
	}
}

func TestGenerateSquadExhaustedRequestIgnored(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	actives := activesFor(clients)
	actives[0].nextK = clients[0].App.NumKernels() // fully scheduled
	s := generateSquad(actives, clients, sim.Millisecond, GenerateOptions{MaxKernels: 10})
	if s == nil {
		t.Fatal("no squad")
	}
	for _, e := range s.Entries {
		if e.Client == clients[0] {
			t.Error("kernels selected from fully-scheduled request")
		}
	}
}

func TestGenerateSquadRoundRobinAblation(t *testing.T) {
	// With round-robin (the ablation), quota weighting disappears: equal
	// kernel counts despite 70/30 quotas.
	clients := testClients(t, []float64{0.7, 0.3}, "resnet50", "resnet50")
	actives := activesFor(clients)
	s := generateSquad(actives, clients, sim.Millisecond, GenerateOptions{MaxKernels: 40, RoundRobin: true})
	n0, n1 := 0, 0
	for _, e := range s.Entries {
		if e.Client == clients[0] {
			n0 = len(e.Kernels)
		} else {
			n1 = len(e.Kernels)
		}
	}
	if n0 != n1 {
		t.Errorf("round-robin gave %d vs %d kernels; want equal", n0, n1)
	}
}

func TestGenerateSquadAdvancesProgress(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	actives := activesFor(clients)
	s := generateSquad(actives, clients, sim.Millisecond, GenerateOptions{MaxKernels: 10})
	total := 0
	for _, a := range actives {
		total += a.nextK
	}
	if total != s.Size() {
		t.Errorf("nextK advanced by %d, squad size %d; must match", total, s.Size())
	}
	// Second squad continues where the first ended.
	s2 := generateSquad(actives, clients, 2*sim.Millisecond, GenerateOptions{MaxKernels: 10})
	for _, e2 := range s2.Entries {
		for _, e1 := range s.Entries {
			if e1.Client == e2.Client && e2.Kernels[0] != e1.Kernels[len(e1.Kernels)-1]+1 {
				t.Errorf("%s: second squad starts at %d, first ended at %d",
					e2.Client.App.Name, e2.Kernels[0], e1.Kernels[len(e1.Kernels)-1])
			}
		}
	}
}

func TestSquadValidateCatchesCorruption(t *testing.T) {
	clients := testClients(t, []float64{1.0}, "vgg11")
	good := &Squad{Entries: []SquadEntry{{
		Client:  clients[0],
		Request: &sharing.Request{Client: clients[0]},
		Kernels: []int{3, 4, 5},
	}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid squad rejected: %v", err)
	}
	bad := &Squad{Entries: []SquadEntry{{
		Client:  clients[0],
		Request: &sharing.Request{Client: clients[0]},
		Kernels: []int{3, 5},
	}}}
	if err := bad.Validate(); err == nil {
		t.Error("non-contiguous squad accepted")
	}
	empty := &Squad{}
	if err := empty.Validate(); err == nil {
		t.Error("empty squad accepted")
	}
	oob := &Squad{Entries: []SquadEntry{{
		Client:  clients[0],
		Request: &sharing.Request{Client: clients[0]},
		Kernels: []int{10_000},
	}}}
	if err := oob.Validate(); err == nil {
		t.Error("out-of-range kernel index accepted")
	}
}

func TestUrgencyNewRequestDominates(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	fresh := &activeRequest{req: &sharing.Request{Client: clients[0], Arrival: 0}, partIdx: 8, pace: 1}
	progressed := &activeRequest{req: &sharing.Request{Client: clients[1], Arrival: 0}, nextK: 20, partIdx: 8, pace: 1}
	now := 5 * sim.Millisecond
	if fresh.urgency(clients[0], now) <= progressed.urgency(clients[1], now) {
		t.Error("request with no scheduled kernels not most urgent")
	}
}

func TestSLOPaceStretchesExpectations(t *testing.T) {
	clients := testClients(t, []float64{0.5}, "resnet50")
	a := &activeRequest{req: &sharing.Request{Client: clients[0], Arrival: 0}, nextK: 40, partIdx: 8, pace: 1}
	b := &activeRequest{req: &sharing.Request{Client: clients[0], Arrival: 0}, nextK: 40, partIdx: 8, pace: 2}
	now := 10 * sim.Millisecond
	// Doubled pace (relaxed SLO) doubles the expected timeline, halving
	// urgency.
	ua, ub := a.urgency(clients[0], now), b.urgency(clients[0], now)
	if ub >= ua {
		t.Errorf("relaxed-SLO urgency %g >= strict %g; want lower", ub, ua)
	}
}
