package core

import (
	"fmt"

	"bless/internal/profiler"
	"bless/internal/sim"
)

// Multi-GPU placement (§4.2.2): when applications must be coordinated across
// several GPUs (as in GPUlet-style serving clusters), BLESS replicates its
// runtime per GPU and a central controller decides which GPU hosts which
// application, using the offline profiles' memory requirements and kernel
// statistics to avoid conflicts.

// PlacementApp is one application awaiting placement.
type PlacementApp struct {
	// Name identifies the application.
	Name string
	// Profile is the offline profile (memory footprint, kernel statistics).
	Profile *profiler.Profile
	// Quota is the GPU fraction the application needs on its host GPU.
	Quota float64
}

// PlacementGPU describes one target device.
type PlacementGPU struct {
	// ID names the device.
	ID string
	// Config is the device configuration (memory capacity, SMs).
	Config sim.Config
}

// Placement maps application index -> GPU index.
type Placement map[int]int

// PlacementOptions tunes the controller.
type PlacementOptions struct {
	// Admission bounds per-GPU co-location compatibility (§4.2.2); the
	// zero value selects profiler.DefaultAdmissionLimits.
	Admission profiler.AdmissionLimits
}

// Place assigns each application to a GPU such that (a) per-GPU quotas sum to
// at most 1, (b) combined memory footprints (plus per-client MPS contexts)
// fit the device, and (c) the §4.2.2 kernel-duration compatibility checks
// hold on every GPU. Applications are placed largest-memory-first onto the
// GPU with the most remaining memory (best-fit-decreasing); the search
// backtracks across eligible GPUs before failing.
func Place(apps []PlacementApp, gpus []PlacementGPU, opts PlacementOptions) (Placement, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("core: no applications to place")
	}
	if len(gpus) == 0 {
		return nil, fmt.Errorf("core: no GPUs available")
	}
	lim := opts.Admission
	if lim.MaxKernelDuration == 0 {
		lim = profiler.DefaultAdmissionLimits()
	}
	for i, a := range apps {
		if a.Profile == nil {
			return nil, fmt.Errorf("core: application %q has no profile", a.Name)
		}
		if a.Quota <= 0 || a.Quota > 1 {
			return nil, fmt.Errorf("core: application %q quota %g outside (0,1]", a.Name, a.Quota)
		}
		_ = i
	}

	// Aggregate capacity fast-fail: when the pool as a whole cannot hold
	// the tenant set, no assignment can succeed, and the backtracking
	// search below would prove that by exhausting an exponential tree one
	// rejection at a time. Both bounds are conservative (quota slack
	// matches the per-GPU check; context cost uses the cheapest device), so
	// a feasible placement is never rejected here — this only converts
	// silent exponential failure into an immediate, explicit error.
	var quotaSum float64
	var memNeed, memPool int64
	minCtx := gpus[0].Config.ContextMemBytes
	for _, g := range gpus {
		memPool += g.Config.MemoryBytes
		if g.Config.ContextMemBytes < minCtx {
			minCtx = g.Config.ContextMemBytes
		}
	}
	for _, a := range apps {
		quotaSum += a.Quota
		memNeed += a.Profile.MemoryBytes + int64(lim.ContextsPerClient)*minCtx
	}
	if quotaSum > float64(len(gpus))*1.0001 {
		return nil, fmt.Errorf("core: aggregate quota %.3f over-commits the pool (%d GPUs hold at most %d.0)",
			quotaSum, len(gpus), len(gpus))
	}
	if memNeed > memPool {
		return nil, fmt.Errorf("core: aggregate memory footprint %d bytes exceeds pool capacity %d bytes",
			memNeed, memPool)
	}

	// Largest memory footprint first. The index sorts run over buffers
	// allocated once per call and a stable insertion sort — identical order
	// to the sort.SliceStable formulation this replaces, without its
	// reflection and per-comparison closure costs.
	order := make([]int, len(apps))
	memKey := make([]int64, len(apps))
	for i := range order {
		order[i] = i
		memKey[i] = apps[i].Profile.MemoryBytes
	}
	sortIdxByKeyDesc(order, memKey)

	assigned := make([][]int, len(gpus)) // app indices per GPU
	placement := Placement{}
	// Per-depth candidate scratch: the recursion in place() nests inside the
	// candidate loop, so each depth owns a fixed slice of the shared buffers.
	candBuf := make([]int, len(order)*len(gpus))
	freeBuf := make([]int64, len(order)*len(gpus))

	var place func(step int) error
	place = func(step int) error {
		if step == len(order) {
			return nil
		}
		ai := order[step]
		app := apps[ai]

		// Try GPUs with the most free memory first. Free memory is computed
		// once per GPU per step (the comparison-driven sort recomputed it per
		// comparison), which cannot change the order: it is deterministic in
		// the current assignment.
		cand := candBuf[step*len(gpus) : (step+1)*len(gpus)]
		free := freeBuf[step*len(gpus) : (step+1)*len(gpus)]
		for i := range cand {
			cand[i] = i
			free[i] = freeMemory(gpus[i], apps, assigned[i], lim)
		}
		sortIdxByKeyDesc(cand, free)

		var lastErr error
		for _, gi := range cand {
			if err := fits(gpus[gi], apps, assigned[gi], ai, lim); err != nil {
				lastErr = err
				continue
			}
			assigned[gi] = append(assigned[gi], ai)
			placement[ai] = gi
			if err := place(step + 1); err == nil {
				return nil
			} else {
				lastErr = err
			}
			assigned[gi] = assigned[gi][:len(assigned[gi])-1]
			delete(placement, ai)
		}
		if lastErr == nil {
			lastErr = fmt.Errorf("core: no GPU fits application %q", app.Name)
		}
		return fmt.Errorf("core: placing %q: %w", app.Name, lastErr)
	}
	if err := place(0); err != nil {
		return nil, err
	}
	return placement, nil
}

// sortIdxByKeyDesc stable-sorts idx in place so that key[idx[i]] descends,
// preserving original order among equal keys (elements move only on a strict
// comparison) — the same order sort.SliceStable with a ">" less-func yields.
func sortIdxByKeyDesc(idx []int, key []int64) {
	for i := 1; i < len(idx); i++ {
		v := idx[i]
		j := i - 1
		for j >= 0 && key[idx[j]] < key[v] {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = v
	}
}

// fits checks whether adding app ai to the GPU's current assignment keeps the
// deployment admissible.
func fits(gpu PlacementGPU, apps []PlacementApp, current []int, ai int, lim profiler.AdmissionLimits) error {
	quota := apps[ai].Quota
	profiles := []*profiler.Profile{apps[ai].Profile}
	for _, ci := range current {
		quota += apps[ci].Quota
		profiles = append(profiles, apps[ci].Profile)
	}
	if quota > 1.0001 {
		return fmt.Errorf("quota sum %.3f exceeds GPU %s", quota, gpu.ID)
	}
	return profiler.CheckColocation(profiles, gpu.Config, lim)
}

// freeMemory estimates the GPU's remaining memory under its current
// assignment.
func freeMemory(gpu PlacementGPU, apps []PlacementApp, current []int, lim profiler.AdmissionLimits) int64 {
	free := gpu.Config.MemoryBytes
	for _, ci := range current {
		free -= apps[ci].Profile.MemoryBytes
		free -= int64(lim.ContextsPerClient) * gpu.Config.ContextMemBytes
	}
	return free
}
