package core

import (
	"bless/internal/sim"
)

// Kernel-squad performance estimators (§4.4.2). Both consume only offline
// profile data (t[n%][k] on the partition grid, plus each kernel's maximum
// active SM share d%), so they run in microseconds at squad granularity.
//
// Memory-management kernels (H2D/D2H copies) are summed into the total for
// every configuration, whether or not they actually overlap at runtime; the
// paper notes this uniform extension rarely changes which configuration wins.

// EstimateSpatial is the interference-free predictor (Equation 1): with the
// squad's clients strictly spatially isolated on smAlloc[i] SMs each, the
// squad duration is the longest per-client stack of kernel durations:
//
//	t = max_j sum_i t[n_j%][k_i^j]
//
// smAlloc must have one entry per squad entry.
func EstimateSpatial(s *Squad, smAlloc []int) sim.Time {
	var worst sim.Time
	for i := range s.Entries {
		e := &s.Entries[i]
		var stack sim.Time
		for _, k := range e.Kernels {
			stack += e.Client.Profile.KernelDurAt(k, smAlloc[i])
		}
		if stack > worst {
			worst = stack
		}
	}
	return worst
}

// EstimateUnrestricted is the workload-equivalence predictor (Equation 2):
// with no spatial restriction, kernels that would overlap (the i-th kernel of
// each client, breadth-first — Volta+ hardware schedules equal-priority
// queues fairly) are modeled as executing sequentially with each kernel
// occupying all the SMs the overlapped group activates together:
//
//	t = sum_i sum_j t[ sum_j d_i^j% ][k_i^j]
//
// Durations at SM counts a kernel cannot reach are interpolated (clamped) by
// the profile.
//
// beta augments the formula with the offline-calibrated co-residency
// interference coefficient (the paper's Fig 9 measurement): when a round's
// combined raw SM demand oversubscribes the device, the round is stretched by
// 1 + beta x oversubscription, capped at 2x. Pass 0 for the pure Equation 2.
func EstimateUnrestricted(s *Squad, deviceSMs int, beta float64) sim.Time {
	q := 0
	for i := range s.Entries {
		if n := len(s.Entries[i].Kernels); n > q {
			q = n
		}
	}
	var total sim.Time
	for round := 0; round < q; round++ {
		// Combined active SMs of this round's overlapped group.
		raw := 0
		for i := range s.Entries {
			e := &s.Entries[i]
			if round >= len(e.Kernels) {
				continue
			}
			kp := &e.Client.Profile.Kernels[e.Kernels[round]]
			if kp.IsCompute {
				raw += kp.MaxSMs
			}
		}
		combined := raw
		if combined > deviceSMs {
			combined = deviceSMs
		}
		if combined < 1 {
			combined = 1
		}
		stretch := 1.0
		if beta > 0 && raw > deviceSMs {
			stretch = 1 + beta*float64(raw-deviceSMs)/float64(deviceSMs)
			if stretch > 2 {
				stretch = 2
			}
		}
		for i := range s.Entries {
			e := &s.Entries[i]
			if round >= len(e.Kernels) {
				continue
			}
			d := e.Client.Profile.KernelDurAtUnbounded(e.Kernels[round], combined)
			total += sim.Time(float64(d) * stretch)
		}
	}
	return total
}
