package core

import (
	"strings"
	"testing"

	"bless/internal/model"
	"bless/internal/profiler"
	"bless/internal/sim"
)

func placementApps(t *testing.T, specs ...struct {
	name  string
	quota float64
}) []PlacementApp {
	t.Helper()
	out := make([]PlacementApp, len(specs))
	for i, s := range specs {
		p, err := profiler.ProfileApp(model.MustGet(s.name), profiler.Options{Partitions: 6})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = PlacementApp{Name: s.name, Profile: p, Quota: s.quota}
	}
	return out
}

func app(name string, quota float64) struct {
	name  string
	quota float64
} {
	return struct {
		name  string
		quota float64
	}{name, quota}
}

func twoGPUs() []PlacementGPU {
	return []PlacementGPU{
		{ID: "gpu0", Config: sim.DefaultConfig()},
		{ID: "gpu1", Config: sim.DefaultConfig()},
	}
}

func TestPlaceSpreadsByQuota(t *testing.T) {
	apps := placementApps(t,
		app("vgg11", 0.6), app("resnet50", 0.6),
		app("bert", 0.4), app("resnet101", 0.4),
	)
	pl, err := Place(apps, twoGPUs(), PlacementOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Quotas per GPU must not exceed 1: the 0.6s must land apart.
	sums := map[int]float64{}
	for ai, gi := range pl {
		sums[gi] += apps[ai].Quota
	}
	for gi, s := range sums {
		if s > 1.0001 {
			t.Errorf("gpu %d oversubscribed: quota sum %.2f", gi, s)
		}
	}
	if len(pl) != len(apps) {
		t.Errorf("placed %d of %d apps", len(pl), len(apps))
	}
}

func TestPlaceRespectsMemory(t *testing.T) {
	// Training apps are memory-hungry (4-12 GB); a 10 GB device holds few.
	apps := placementApps(t,
		app("resnet101-train", 0.5), app("resnet50-train", 0.5),
		app("vgg11-train", 0.5),
	)
	small := sim.DefaultConfig()
	small.MemoryBytes = 12 << 30
	gpus := []PlacementGPU{
		{ID: "a", Config: small},
		{ID: "b", Config: small},
		{ID: "c", Config: small},
	}
	pl, err := Place(apps, gpus, PlacementOptions{})
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]int64{}
	for ai, gi := range pl {
		used[gi] += apps[ai].Profile.MemoryBytes
	}
	for gi, u := range used {
		if u > small.MemoryBytes {
			t.Errorf("gpu %d memory oversubscribed: %d bytes", gi, u)
		}
	}
}

func TestPlaceFailsWhenImpossible(t *testing.T) {
	apps := placementApps(t, app("vgg11", 0.8), app("resnet50", 0.8))
	one := []PlacementGPU{{ID: "only", Config: sim.DefaultConfig()}}
	if _, err := Place(apps, one, PlacementOptions{}); err == nil {
		t.Error("1.6 total quota on one GPU accepted")
	}
}

func TestPlaceBacktracks(t *testing.T) {
	// Three 0.5-quota apps on two GPUs: naive best-fit might pair wrongly;
	// any valid assignment puts two on one device and one on the other.
	apps := placementApps(t, app("vgg11", 0.5), app("resnet50", 0.5), app("bert", 0.5))
	pl, err := Place(apps, twoGPUs(), PlacementOptions{})
	if err != nil {
		t.Fatal(err)
	}
	count := map[int]int{}
	for _, gi := range pl {
		count[gi]++
	}
	for gi, n := range count {
		if n > 2 {
			t.Errorf("gpu %d hosts %d 0.5-quota apps", gi, n)
		}
	}
}

func TestPlaceRejectsStarvationPairs(t *testing.T) {
	big := model.Synthetic("monster", 4, 2500*sim.Microsecond, 108, 0.3, 1)
	small := model.Synthetic("tiny", 50, 5*sim.Microsecond, 108, 0.3, 2)
	pb, err := profiler.ProfileApp(big, profiler.Options{Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := profiler.ProfileApp(small, profiler.Options{Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	apps := []PlacementApp{
		{Name: "monster", Profile: pb, Quota: 0.5},
		{Name: "tiny", Profile: ps, Quota: 0.5},
	}
	// One GPU: the starvation-prone pair must be rejected.
	one := []PlacementGPU{{ID: "only", Config: sim.DefaultConfig()}}
	if _, err := Place(apps, one, PlacementOptions{}); err == nil {
		t.Error("starvation-prone co-location accepted on a single GPU")
	}
	// Two GPUs: the controller must separate them.
	pl, err := Place(apps, twoGPUs(), PlacementOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pl[0] == pl[1] {
		t.Error("starvation-prone pair placed on the same GPU despite alternatives")
	}
}

func TestPlaceValidation(t *testing.T) {
	if _, err := Place(nil, twoGPUs(), PlacementOptions{}); err == nil {
		t.Error("empty app list accepted")
	}
	apps := placementApps(t, app("vgg11", 0.5))
	if _, err := Place(apps, nil, PlacementOptions{}); err == nil {
		t.Error("empty GPU list accepted")
	}
	apps[0].Quota = 0
	if _, err := Place(apps, twoGPUs(), PlacementOptions{}); err == nil {
		t.Error("zero quota accepted")
	}
	apps[0].Quota = 0.5
	apps[0].Profile = nil
	if _, err := Place(apps, twoGPUs(), PlacementOptions{}); err == nil {
		t.Error("profile-less app accepted")
	}
}

func TestPlaceErrorNamesApp(t *testing.T) {
	// 1.8 aggregate quota fits a 2-GPU pool, but no pair of 0.6s can share
	// a device with a third: the search must fail naming an application
	// (the aggregate fast-fail doesn't trigger — per-device packing does).
	apps := placementApps(t, app("vgg11", 0.6), app("resnet50", 0.6), app("bert", 0.6))
	two := []PlacementGPU{
		{ID: "a", Config: sim.DefaultConfig()},
		{ID: "b", Config: sim.DefaultConfig()},
	}
	// Shrink quota headroom so any two of them over-subscribe one device.
	apps[0].Quota, apps[1].Quota, apps[2].Quota = 0.7, 0.7, 0.6
	_, err := Place(apps, two, PlacementOptions{})
	if err == nil || !strings.Contains(err.Error(), "placing") {
		t.Errorf("error %v does not identify the failing application", err)
	}
}

// TestPlaceRejectsAggregateOvercommit pins the aggregate fast-fail: a
// tenant set whose total quota (or memory) exceeds the whole pool must be
// rejected immediately with an explicit pool-level error, not silently
// over-packed and not proven infeasible one backtrack at a time.
func TestPlaceRejectsAggregateOvercommit(t *testing.T) {
	// 2.4 total quota on a 2-GPU pool: over-committed in aggregate.
	apps := placementApps(t,
		app("vgg11", 0.8), app("resnet50", 0.8), app("bert", 0.8),
	)
	_, err := Place(apps, twoGPUs(), PlacementOptions{})
	if err == nil {
		t.Fatal("aggregate quota over-commit accepted")
	}
	if !strings.Contains(err.Error(), "aggregate quota") {
		t.Errorf("want pool-level quota error, got: %v", err)
	}

	// Aggregate memory over-commit: three training apps on tiny devices.
	apps = placementApps(t,
		app("resnet101-train", 0.3), app("resnet50-train", 0.3),
		app("vgg11-train", 0.3),
	)
	tiny := sim.DefaultConfig()
	tiny.MemoryBytes = 4 << 30
	gpus := []PlacementGPU{{ID: "a", Config: tiny}, {ID: "b", Config: tiny}}
	_, err = Place(apps, gpus, PlacementOptions{})
	if err == nil {
		t.Fatal("aggregate memory over-commit accepted")
	}
	if !strings.Contains(err.Error(), "aggregate memory") {
		t.Errorf("want pool-level memory error, got: %v", err)
	}

	// The pre-check must stay conservative: a feasible spread (0.6+0.6+0.4
	// over two GPUs) still places.
	apps = placementApps(t, app("vgg11", 0.6), app("resnet50", 0.6), app("bert", 0.4))
	if _, err := Place(apps, twoGPUs(), PlacementOptions{}); err != nil {
		t.Errorf("feasible deployment rejected by the aggregate pre-check: %v", err)
	}
}
