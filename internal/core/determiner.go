package core

import (
	"bless/internal/sim"
)

// The execution configuration determiner (§4.4): for a generated kernel
// squad, search the configuration space — the unrestricted case plus the
// C(N-1, K-1) strict spatial splits of N SM partitions over K active
// requests — and pick the configuration with the smallest estimated duration.
// On an A100 split into N=18 partitions with 2 active requests the space has
// 18 configurations.

// ExecConfig is the determiner's decision for one squad.
type ExecConfig struct {
	// Spatial selects strict spatial partitioning (with the Semi-SP tail
	// handled by the kernel manager); false means no SM restriction.
	Spatial bool
	// SMs is the per-entry SM grant when Spatial; nil otherwise.
	SMs []int
	// Estimate is the predicted squad duration for the chosen
	// configuration.
	Estimate sim.Time
	// Considered counts evaluated configurations (for overhead accounting
	// and the §6.9 scheduling-cost reproduction).
	Considered int
}

// DetermineOptions tunes the configuration search.
type DetermineOptions struct {
	// Partitions is N, the SM partition count (default 18 to match the
	// profiles).
	Partitions int
	// MaxEnumerate bounds exhaustive composition enumeration by entry
	// count; squads with more entries use quota-seeded hill climbing
	// (default 3: C(17,2)=136 configurations).
	MaxEnumerate int
	// ForceSpatialQuota disables the search (the Fig 20 ablation "w/o
	// configuration determiner"): the squad always runs strictly spatially
	// partitioned proportional to client quotas.
	ForceSpatialQuota bool
	// InterferenceBeta is the offline-calibrated co-residency interference
	// coefficient applied inside the workload-equivalence predictor (0 =
	// pure Equation 2).
	InterferenceBeta float64
	// QuotaGuard adds a quota-pace feasibility filter: prefer
	// configurations under which every entry's estimated stack stays within
	// the time that portion would take at the client's provisioned quota,
	// falling back to the unconstrained optimum when nothing is feasible.
	// Off by default: minimizing squad duration and compensating lagging
	// requests across squads (§4.3.2) measures better than constraining
	// each squad — the guard trades throughput for per-squad pacing and is
	// kept as an ablation knob.
	QuotaGuard bool
}

// Determine searches the execution configuration space for the squad.
// deviceSMs is the device SM count; quotas provide the per-entry provisioned
// fraction (used for the ablation and as the hill-climb seed).
func Determine(s *Squad, deviceSMs int, quotas []float64, opts DetermineOptions) ExecConfig {
	n := opts.Partitions
	if n <= 0 {
		n = 18
	}
	maxEnum := opts.MaxEnumerate
	if maxEnum <= 0 {
		maxEnum = 3
	}
	k := len(s.Entries)

	if opts.ForceSpatialQuota {
		sms := quotaSplit(deviceSMs, n, quotas)
		return ExecConfig{
			Spatial:    true,
			SMs:        sms,
			Estimate:   EstimateSpatial(s, sms),
			Considered: 1,
		}
	}

	// A single-entry squad always runs unrestricted: the lone request may
	// use the whole GPU (the bubble-squeezing property of §1).
	if k == 1 {
		return ExecConfig{
			Spatial:    false,
			Estimate:   EstimateUnrestricted(s, deviceSMs, opts.InterferenceBeta),
			Considered: 1,
		}
	}

	nsp := EstimateUnrestricted(s, deviceSMs, opts.InterferenceBeta)
	considered := 1

	// Per-entry quota-pace budgets: the time each entry's kernel run would
	// take at its client's provisioned quota. A configuration is
	// pace-feasible when no entry's estimated stack exceeds its budget
	// (small slack absorbs partition rounding), so accepting it can never
	// push a client behind the isolated-quota timeline. Only computed when
	// the guard is on — the default path never reads them.
	var budgets []sim.Time
	var minBudget sim.Time = 1 << 62
	if opts.QuotaGuard {
		budgets = make([]sim.Time, k)
		for i := range s.Entries {
			e := &s.Entries[i]
			qsms := e.Client.QuotaSMs(deviceSMs)
			var b sim.Time
			for _, kk := range e.Kernels {
				b += e.Client.Profile.KernelDurAt(kk, qsms)
			}
			budgets[i] = b + b/50
			if budgets[i] < minBudget {
				minBudget = budgets[i]
			}
		}
	}

	// Candidate tracking reuses three fixed slices: a scratch split mutated
	// per evaluation, and copy-on-improvement buffers for the two bests.
	// The search visits O(n^k) compositions, so per-candidate allocation
	// dominated the scheduler's hot path otherwise.
	scratch := make([]int, k)
	bestAnySMs := make([]int, k)
	bestFeasibleSMs := make([]int, k)
	var bestAnyEst, bestFeasibleEst sim.Time
	haveAny, haveFeasible := false, false
	evaluate := func(parts []int) sim.Time {
		for i, p := range parts {
			scratch[i] = deviceSMs * p / n
		}
		considered++
		est := EstimateSpatial(s, scratch)
		feasible := true
		if opts.QuotaGuard {
			for i := range s.Entries {
				var stack sim.Time
				for _, kk := range s.Entries[i].Kernels {
					stack += s.Entries[i].Client.Profile.KernelDurAt(kk, scratch[i])
				}
				if stack > budgets[i] {
					feasible = false
					break
				}
			}
		}
		if !haveAny || est < bestAnyEst {
			haveAny, bestAnyEst = true, est
			copy(bestAnySMs, scratch)
		}
		if feasible && (!haveFeasible || est < bestFeasibleEst) {
			haveFeasible, bestFeasibleEst = true, est
			copy(bestFeasibleSMs, scratch)
		}
		return est
	}

	if k <= maxEnum && k <= n {
		enumerateCompositions(n, k, evaluate)
	} else if k <= n {
		hillClimb(n, k, quotas, evaluate)
	}
	// else: more entries than partitions — spatial split impossible, NSP only.

	// The unrestricted case is pace-feasible when the whole squad finishes
	// within every entry's budget.
	nspFeasible := !opts.QuotaGuard || nsp <= minBudget

	// Prefer the fastest pace-feasible configuration; fall back to the
	// unconstrained optimum when nothing is feasible.
	spatialSMs, spatialEst, haveSpatial := bestFeasibleSMs, bestFeasibleEst, haveFeasible
	if !haveFeasible && !nspFeasible {
		spatialSMs, spatialEst, haveSpatial = bestAnySMs, bestAnyEst, haveAny
	}
	switch {
	case haveSpatial && nspFeasible == haveFeasible:
		// Both sides have equal feasibility standing: pick by estimate.
		if spatialEst < nsp {
			return ExecConfig{Spatial: true, SMs: spatialSMs, Estimate: spatialEst, Considered: considered}
		}
		return ExecConfig{Spatial: false, Estimate: nsp, Considered: considered}
	case haveSpatial && haveFeasible:
		// Only the spatial side is feasible.
		return ExecConfig{Spatial: true, SMs: spatialSMs, Estimate: spatialEst, Considered: considered}
	case haveSpatial && !nspFeasible:
		// Nothing is feasible: unconstrained optimum.
		if spatialEst < nsp {
			return ExecConfig{Spatial: true, SMs: spatialSMs, Estimate: spatialEst, Considered: considered}
		}
		return ExecConfig{Spatial: false, Estimate: nsp, Considered: considered}
	default:
		return ExecConfig{Spatial: false, Estimate: nsp, Considered: considered}
	}
}

// quotaSplit converts quotas into a partition-aligned SM split covering the
// device.
func quotaSplit(deviceSMs, n int, quotas []float64) []int {
	k := len(quotas)
	parts := make([]int, k)
	left := n
	for i, q := range quotas {
		p := int(q*float64(n) + 0.5)
		if p < 1 {
			p = 1
		}
		if p > left-(k-1-i) {
			p = left - (k - 1 - i)
		}
		parts[i] = p
		left -= p
	}
	// Give any slack to the largest-quota entry.
	if left > 0 {
		maxI := 0
		for i := 1; i < k; i++ {
			if quotas[i] > quotas[maxI] {
				maxI = i
			}
		}
		parts[maxI] += left
	}
	sms := make([]int, k)
	for i, p := range parts {
		sms[i] = deviceSMs * p / n
	}
	return sms
}

// enumerateCompositions visits every composition of n into k positive parts.
func enumerateCompositions(n, k int, visit func(parts []int) sim.Time) {
	parts := make([]int, k)
	var rec func(idx, left int)
	rec = func(idx, left int) {
		if idx == k-1 {
			parts[idx] = left
			visit(parts)
			return
		}
		// Reserve at least 1 partition for each remaining entry.
		for p := 1; p <= left-(k-1-idx); p++ {
			parts[idx] = p
			rec(idx+1, left-p)
		}
	}
	if n >= k {
		rec(0, n)
	}
}

// hillClimb starts from the quota-proportional composition and greedily moves
// one partition unit between entry pairs while the estimate improves. The
// search is deterministic and evaluates O(k^2) configurations per step.
func hillClimb(n, k int, quotas []float64, evaluate func(parts []int) sim.Time) {
	parts := make([]int, k)
	left := n
	for i := 0; i < k; i++ {
		q := 1.0 / float64(k)
		if i < len(quotas) {
			q = quotas[i]
		}
		p := int(q*float64(n) + 0.5)
		if p < 1 {
			p = 1
		}
		if p > left-(k-1-i) {
			p = left - (k - 1 - i)
		}
		parts[i] = p
		left -= p
	}
	if left > 0 {
		parts[k-1] += left
	}
	best := append([]int(nil), parts...)
	bestEst := evaluate(parts)

	// One candidate buffer serves the whole search: evaluate copies the
	// split out before estimating, so the buffer can be rewritten per
	// neighbor. A fresh slice per candidate was the fleet run's largest
	// allocation site.
	cand := make([]int, k)
	for iter := 0; iter < 4*n; iter++ {
		improved := false
		for from := 0; from < k && !improved; from++ {
			if best[from] <= 1 {
				continue
			}
			for to := 0; to < k && !improved; to++ {
				if to == from {
					continue
				}
				copy(cand, best)
				cand[from]--
				cand[to]++
				if est := evaluate(cand); est < bestEst {
					best, cand = cand, best
					bestEst = est
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
}
