package core

import (
	"testing"

	"bless/internal/sim"
)

func TestNewServeLaneValidation(t *testing.T) {
	if _, err := NewServeLane(0, 10, 10); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewServeLane(10, 0, 10); err == nil {
		t.Error("zero service accepted")
	}
	if _, err := NewServeLane(10, 10, -1); err == nil {
		t.Error("negative bound accepted")
	}
	if _, err := NewServeLane(10, 10, 0); err != nil {
		t.Errorf("zero bound rejected: %v", err)
	}
}

// TestServeLaneAdmitShed walks the G/D/1 recurrence by hand: interval 10,
// service 25, bound 30. Backlog grows 15 per request until the wait crosses
// the bound, then sheds until the lane drains back under it.
func TestServeLaneAdmitShed(t *testing.T) {
	l, err := NewServeLane(10, 25, 30)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		admitted         bool
		start, wait, rag sim.Time // rag = retry-after (shed only)
	}{
		{true, 0, 0, 0},     // seq 0: arrive 0, idle lane
		{true, 25, 15, 0},   // seq 1: arrive 10, busy till 25
		{true, 50, 30, 0},   // seq 2: arrive 20, wait exactly at bound
		{false, 75, 45, 15}, // seq 3: arrive 30, wait 45 > 30 — shed
		{false, 75, 35, 5},  // seq 4: arrive 40, backlog unchanged by shed
		{true, 75, 25, 0},   // seq 5: arrive 50, drained under bound again
	}
	var d ServeDecision
	for seq, w := range want {
		l.Decide(seq, &d)
		if d.Admitted != w.admitted || d.Start != w.start || d.Wait != w.wait || d.RetryAfter != w.rag {
			t.Fatalf("seq %d: got admitted=%v start=%d wait=%d retry=%d, want %+v",
				seq, d.Admitted, d.Start, d.Wait, d.RetryAfter, w)
		}
		if d.Admitted && d.Service != 25 {
			t.Fatalf("seq %d: service %d, want 25", seq, d.Service)
		}
	}
	if l.Admitted != 4 || l.Shed != 2 {
		t.Errorf("admitted/shed %d/%d, want 4/2", l.Admitted, l.Shed)
	}
	if l.Offered() != 6 || l.Next() != 6 {
		t.Errorf("offered/next %d/%d, want 6/6", l.Offered(), l.Next())
	}
}

func TestServeLaneSeqOrderEnforced(t *testing.T) {
	l, _ := NewServeLane(10, 5, 10)
	var d ServeDecision
	l.Decide(0, &d)
	for _, bad := range []int{0, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("out-of-order seq %d not caught", bad)
				}
			}()
			l.Decide(bad, &d)
		}()
	}
}

// TestServeLaneDigest: the digest covers seq, admission outcome and start —
// identical streams agree, any divergent decision disagrees.
func TestServeLaneDigest(t *testing.T) {
	mk := func(bound sim.Time, n int) uint64 {
		l, _ := NewServeLane(10, 25, bound)
		var d ServeDecision
		for seq := 0; seq < n; seq++ {
			l.Decide(seq, &d)
		}
		return l.Digest()
	}
	if mk(30, 16) != mk(30, 16) {
		t.Error("identical streams disagree")
	}
	if mk(30, 16) == mk(40, 16) {
		t.Error("different shed outcomes collide")
	}
	if mk(30, 16) == mk(30, 15) {
		t.Error("different lengths collide")
	}
}

func TestServeLaneDecideBatch(t *testing.T) {
	one, _ := NewServeLane(10, 25, 30)
	batch, _ := NewServeLane(10, 25, 30)
	var d ServeDecision
	var singles []ServeDecision
	for seq := 0; seq < 20; seq++ {
		one.Decide(seq, &d)
		singles = append(singles, d)
	}
	out := batch.DecideBatch(0, 12, nil)
	out = batch.DecideBatch(12, 8, out)
	if len(out) != 20 {
		t.Fatalf("batch decided %d, want 20", len(out))
	}
	for i := range out {
		if out[i] != singles[i] {
			t.Fatalf("seq %d: batch %+v != single %+v", i, out[i], singles[i])
		}
	}
	if one.Digest() != batch.Digest() {
		t.Error("batch and single-step digests diverge")
	}
}

func TestServeLaneHeadroom(t *testing.T) {
	l, _ := NewServeLane(10, 25, 30)
	if l.Headroom() != 30 {
		t.Errorf("idle headroom %d, want the full bound", l.Headroom())
	}
	var d ServeDecision
	l.Decide(0, &d)
	l.Decide(1, &d)
	// next=2 arrives at 20, busy=50 -> wait 30, headroom 0.
	if l.Headroom() != 0 {
		t.Errorf("backlogged headroom %d, want 0", l.Headroom())
	}
}

// TestServeDigestFold: the cross-tenant fold is order-independent (XOR) and
// sensitive to any lane's content.
func TestServeDigestFold(t *testing.T) {
	mk := func(bound sim.Time, n int) *ServeLane {
		l, _ := NewServeLane(10, 25, bound)
		var d ServeDecision
		for seq := 0; seq < n; seq++ {
			l.Decide(seq, &d)
		}
		return l
	}
	a, b, c := mk(30, 7), mk(40, 11), mk(0, 5)
	abc := ServeDigest([]*ServeLane{a, b, c})
	if abc != ServeDigest([]*ServeLane{c, a, b}) {
		t.Error("fold depends on lane order")
	}
	if abc == ServeDigest([]*ServeLane{a, b}) {
		t.Error("fold ignores a lane")
	}
	if abc == ServeDigest([]*ServeLane{a, b, mk(0, 6)}) {
		t.Error("fold ignores a lane's content")
	}
}

// TestServeDigestSeeded: name-seeded identical lanes must not cancel to zero
// in the XOR fold, and the seed is deterministic per tag.
func TestServeDigestSeeded(t *testing.T) {
	mk := func(tag string) *ServeLane {
		l, _ := NewServeLane(10, 25, 30)
		l.SeedDigest(tag)
		var d ServeDecision
		for seq := 0; seq < 9; seq++ {
			l.Decide(seq, &d)
		}
		return l
	}
	if mk("a").Digest() != mk("a").Digest() {
		t.Error("seed not deterministic")
	}
	if mk("a").Digest() == mk("b").Digest() {
		t.Error("seed ignores the tag")
	}
	if ServeDigest([]*ServeLane{mk("a"), mk("b")}) == 0 {
		t.Error("identical seeded lanes cancel in the fold")
	}
	unseeded := func() *ServeLane {
		l, _ := NewServeLane(10, 25, 30)
		var d ServeDecision
		for seq := 0; seq < 9; seq++ {
			l.Decide(seq, &d)
		}
		return l
	}
	if ServeDigest([]*ServeLane{unseeded(), unseeded()}) != 0 {
		t.Error("sanity: identical unseeded lanes should cancel (the hazard SeedDigest removes)")
	}
}
