package fleet

import (
	"strings"
	"testing"
)

// TestAdmitBatch: a valid batch admits atomically-validated and in order.
func TestAdmitBatch(t *testing.T) {
	_, f := pool(t, 2, nil)
	specs := []TenantSpec{
		{Name: "a", App: "resnet50", Quota: 0.4},
		{Name: "b", App: "vgg11", Quota: 0.4},
		{Name: "c", App: "resnet50", Quota: 0.4},
	}
	n, err := f.AdmitBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(specs) {
		t.Fatalf("admitted %d, want %d", n, len(specs))
	}
	snap := f.Snapshot()
	if len(snap.Tenants) != len(specs) {
		t.Fatalf("fleet holds %d tenants, want %d", len(snap.Tenants), len(specs))
	}
}

// TestAdmitBatchValidatesUpFront: any invalid spec rejects the whole batch
// before a single tenant places.
func TestAdmitBatchValidatesUpFront(t *testing.T) {
	_, f := pool(t, 2, nil)
	if err := f.Admit(TenantSpec{Name: "incumbent", App: "resnet50", Quota: 0.3}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		specs []TenantSpec
		want  string
	}{
		{"empty name", []TenantSpec{{App: "resnet50", Quota: 0.3}}, "needs a name"},
		{"within-batch dup", []TenantSpec{
			{Name: "x", App: "resnet50", Quota: 0.3},
			{Name: "x", App: "vgg11", Quota: 0.3},
		}, "twice"},
		{"existing tenant", []TenantSpec{
			{Name: "y", App: "resnet50", Quota: 0.3},
			{Name: "incumbent", App: "vgg11", Quota: 0.3},
		}, "already admitted"},
		{"quota range", []TenantSpec{
			{Name: "y", App: "resnet50", Quota: 0.3},
			{Name: "z", App: "vgg11", Quota: 1.5},
		}, "outside"},
	}
	for _, tc := range cases {
		n, err := f.AdmitBatch(tc.specs)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want mention of %q", tc.name, err, tc.want)
		}
		if n != 0 {
			t.Errorf("%s: %d tenants admitted before validation failure", tc.name, n)
		}
		if got := len(f.Snapshot().Tenants); got != 1 {
			t.Fatalf("%s: fleet mutated to %d tenants by rejected batch", tc.name, got)
		}
	}
}

// TestAdmitBatchStopsAtCapacity: when the pool runs out mid-batch, the
// error names where admission stopped and the prefix stays admitted.
func TestAdmitBatchStopsAtCapacity(t *testing.T) {
	_, f := pool(t, 1, nil)
	specs := []TenantSpec{
		{Name: "a", App: "resnet50", Quota: 0.6},
		{Name: "b", App: "vgg11", Quota: 0.6},
	}
	n, err := f.AdmitBatch(specs)
	if err == nil {
		t.Fatal("over-capacity batch admitted in full")
	}
	if !strings.Contains(err.Error(), "stopped at 1/2") {
		t.Errorf("error does not locate the stop: %v", err)
	}
	if n != 1 {
		t.Errorf("admitted %d, want the 1-tenant prefix", n)
	}
	if got := len(f.Snapshot().Tenants); got != 1 {
		t.Errorf("fleet holds %d tenants, want 1", got)
	}
}
