package fleet

import (
	"fmt"
	"sort"
)

// Live migration moves a tenant between devices without a service pause:
//
//	admitted ──Migrate──▶ migrating ──backlog drains──▶ admitted (on target)
//
// The apply step admits the tenant on the target first (sharing.Dynamic
// AddClient, quotas re-normalized bubble-free), flips routing so new
// requests flow to the target immediately, then starts a graceful leave on
// the source: the runtime finishes the source backlog and releases the
// client's memory and quota only when the last queued request completes —
// the chaos leave path doing double duty as the drain mechanism. A crash of
// the source or target mid-migration is handled by CrashDevice like any
// other device loss: outstanding requests of the lost device are re-routed,
// completed-exactly-once preserved.
//
// Migration triggers are not applied where they are called. They collect
// into a pending set and apply in one engine event at the same instant, in
// canonical (tenant, target) order — so the order triggers arrive in within
// an instant (rebalancer loops, RPCs, test permutations) cannot change the
// simulation.

// move is one pending migration trigger.
type move struct {
	tenant string
	target int
	reason string
}

// Migrate requests a live migration of the tenant onto the target device.
// The move is validated and applied at the end of the current instant; a
// move that no longer fits by then is rejected (counted, not fatal).
func (f *Fleet) Migrate(tenantName string, target int) error {
	t, ok := f.tenants[tenantName]
	if !ok {
		return fmt.Errorf("fleet: unknown tenant %q", tenantName)
	}
	if t.evicted {
		return fmt.Errorf("fleet: tenant %q was evicted", tenantName)
	}
	if target < 0 || target >= len(f.devices) {
		return fmt.Errorf("fleet: device %d out of range [0,%d)", target, len(f.devices))
	}
	if len(t.drains) > 0 {
		return fmt.Errorf("fleet: tenant %q is still draining a previous migration", tenantName)
	}
	for _, m := range f.moves {
		if m.tenant == tenantName {
			return fmt.Errorf("fleet: tenant %q already has a pending migration", tenantName)
		}
	}
	f.moves = append(f.moves, move{tenant: tenantName, target: target, reason: "requested"})
	f.armMoves()
	return nil
}

// armMoves schedules the apply event for the current instant (once).
func (f *Fleet) armMoves() {
	if f.movesArmed {
		return
	}
	f.movesArmed = true
	f.ctrl.Schedule(f.ctrl.Now(), f.applyMoves)
}

// applyMoves applies every migration collected this instant in canonical
// order, making the trigger order immaterial.
func (f *Fleet) applyMoves() {
	f.movesArmed = false
	moves := f.moves
	f.moves = nil
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].tenant != moves[j].tenant {
			return moves[i].tenant < moves[j].tenant
		}
		return moves[i].target < moves[j].target
	})
	for _, m := range moves {
		f.applyMove(m)
	}
}

// applyMove performs one migration: admit on target, flip routing, drain
// source. Rejections (tenant gone, target unfit by apply time) are counted.
func (f *Fleet) applyMove(m move) {
	t, ok := f.tenants[m.tenant]
	if !ok || t.evicted || t.host == nil {
		f.stats.MigrationsRejected++
		return
	}
	src := t.host
	if src.dev.id == m.target {
		return // already there: a no-op, not a rejection
	}
	dev := f.devices[m.target]
	if err := f.fits(t, dev); err != nil {
		f.stats.MigrationsRejected++
		return
	}
	dst, err := f.place(t, dev)
	if err != nil {
		f.stats.MigrationsRejected++
		return
	}
	// Routing flips before the source starts leaving: there is no instant
	// at which the tenant has nowhere to send requests.
	t.host = dst
	f.retarget(t)
	src.draining = true
	t.drains = append(t.drains, src)
	f.drainCount++
	t.migrations++
	f.stats.Migrations++
	if err := src.dev.rt.RemoveClient(src.local, false); err != nil {
		// The runtime refused the leave (cannot happen for a live client);
		// keep accounting consistent by treating the source as drained.
		src.draining = false
		t.drains = t.drains[:len(t.drains)-1]
		f.drainCount--
		f.finishDrain(src)
		return
	}
	if src.pending == 0 {
		// Empty backlog: the runtime released the client synchronously.
		f.finishDrain(src)
	}
}

// CrashDevice kills a device: every resident client crashes (queued kernel
// launches cancelled, nothing on the device ever completes again), displaced
// tenants are re-placed on surviving devices by the routing policy, and
// their outstanding requests are re-submitted to the new host in sequence
// order — completed exactly once fleet-wide, never twice. A tenant no
// surviving device can fit is evicted; its in-flight requests on the dead
// device are accounted lost-to-eviction.
func (f *Fleet) CrashDevice(id int) error {
	if id < 0 || id >= len(f.devices) {
		return fmt.Errorf("fleet: device %d out of range [0,%d)", id, len(f.devices))
	}
	d := f.devices[id]
	if d.dead {
		return fmt.Errorf("fleet: device %s already crashed", d.spec.Name)
	}
	now := f.now()
	if f.sharded {
		// Deliver the device's in-flight exchange records first: those
		// completions happened before the crash, and resubmitting them from
		// the teardown would duplicate a delivery.
		f.flushDead(id, now)
	}
	d.dead = true
	d.retired = true
	f.stats.DeviceCrashes++
	f.churned = true
	if f.checker != nil {
		f.checker.DeviceCrashed(now, id)
	}

	// Tear down every residency, local-ID order. Crashed clients' queued
	// work is cancelled inside the runtime; the fleet releases its mirror
	// of their subscription.
	displaced := make([]*tenant, 0, len(d.residents))
	for local := 0; local < d.nextLocal; local++ {
		res, ok := d.residents[local]
		if !ok {
			continue
		}
		_ = d.rt.RemoveClient(local, true)
		delete(d.residents, local)
		d.quota -= res.quota
		d.mem -= res.mem
		d.inflight -= res.pending
		t := res.t
		if res.draining {
			// A migration source died mid-drain: the tenant still has a
			// live host elsewhere; only the stranded backlog needs help.
			f.removeDrain(t, res)
			f.stats.MigrationsCompleted++
		} else {
			t.host = nil
			displaced = append(displaced, t)
		}
		if f.checker != nil {
			f.checker.TenantReleased(now, t.spec.Name, id)
		}
	}

	// Re-place displaced tenants in canonical name order, then re-submit
	// every request stranded on the dead device to its tenant's (new or
	// surviving) host.
	sort.Slice(displaced, func(i, j int) bool { return displaced[i].spec.Name < displaced[j].spec.Name })
	for _, t := range displaced {
		dev, err := f.route(t, id)
		if err != nil {
			f.evict(t, d)
			continue
		}
		res, err := f.place(t, dev)
		if err != nil {
			f.evict(t, d)
			continue
		}
		t.host = res
		f.retarget(t)
		t.migrations++
	}
	for _, name := range f.names {
		t := f.tenants[name]
		if t.evicted || t.host == nil {
			continue
		}
		f.resubmit(t, d)
	}
	return nil
}

// resubmit re-routes the tenant's requests stranded on the dead device to
// its current host, ascending sequence order. The dead device can never
// complete them (crash semantics cancel its queues and suppress its
// completions), so re-submission cannot create a duplicate.
func (f *Fleet) resubmit(t *tenant, dead *device) {
	var seqs []int
	for seq, res := range t.pending {
		if res.dev == dead {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) == 0 {
		return
	}
	sort.Ints(seqs)
	host := t.host
	now := f.now()
	for _, seq := range seqs {
		r := host.dev.shard.arena.New(host.client, seq, now)
		host.dev.rt.Submit(r)
		t.pending[seq] = host
		host.pending++
		host.dev.inflight++
		f.stats.Resubmitted++
		if f.checker != nil {
			f.checker.RequestRerouted(now, t.spec.Name, seq, dead.id, host.dev.id)
		}
	}
}

// evict gives up on a tenant no surviving device can host: its requests
// stranded on the dead device are lost (counted, exempted from the delivery
// invariant like a crashed client's), though backlog still draining on live
// devices finishes normally.
func (f *Fleet) evict(t *tenant, dead *device) {
	t.evicted = true
	t.host = nil
	f.cancelTimers(t)
	f.stats.Evicted++
	var lost []int
	for seq, res := range t.pending {
		if res.dev == dead {
			lost = append(lost, seq)
		}
	}
	sort.Ints(lost)
	for _, seq := range lost {
		delete(t.pending, seq)
	}
	f.stats.LostToEviction += len(lost)
	if f.checker != nil {
		f.checker.TenantEvicted(f.now(), t.spec.Name, lost)
	}
}
