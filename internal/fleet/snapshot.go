package fleet

import (
	"fmt"
	"sort"

	"bless/internal/sim"
	"bless/internal/snapshot"
)

// ExportState captures the fleet's complete observable logical state at the
// current barrier of a paused sharded run (RunTo with a stop point). Every
// section is keyed on canonical entities — devices by id, tenants in
// admission order, outstanding requests by ascending sequence, exchange
// records by their (deliver, dev, seq) key — and per-shard engine internals
// are reduced to the merged multiset of pending event instants, so the same
// logical state exports to identical bytes at any shard count or mapping.
//
// Pending engine events are closures; their firing instants are captured
// (EventTimes/ControlTimes) but their behavior is reconstructed on import by
// replaying the generating scenario to the same barrier, then proving the
// replayed export matches this one byte-for-byte.
func (f *Fleet) ExportState() (*snapshot.State, error) {
	if !f.sharded {
		return nil, fmt.Errorf("fleet: ExportState requires a sharded fleet (NewSharded)")
	}
	if !f.began {
		return nil, fmt.Errorf("fleet: ExportState before Begin")
	}
	st := &snapshot.State{
		At:             f.window,
		Epoch:          f.epoch,
		ShortfallTicks: f.shortfallTicks,
		Churned:        f.churned,
		Stats:          snapshot.Stats(f.Stats()),
	}

	st.Devices = make([]snapshot.DeviceState, 0, len(f.devices))
	var loads []sim.QueueLoad
	for _, d := range f.devices {
		ds := snapshot.DeviceState{
			ID:          d.id,
			Name:        d.spec.Name,
			SMs:         d.cfg.SMs,
			MemoryBytes: d.cfg.MemoryBytes,
			Deployed:    d.deployed,
			Retired:     d.retired,
			Dead:        d.dead,
			NextLocal:   d.nextLocal,
			Quota:       d.quota,
			Mem:         d.mem,
			Inflight:    d.inflight,
			Completed:   d.completed,
			Failed:      d.failed,
			SLOOK:       d.sloOK,
			SLOMiss:     d.sloMiss,
			MemUsed:     d.gpu.MemUsed(),
			Utilization: d.gpu.Utilization(),
		}
		locals := make([]int, 0, len(d.residents))
		for local := range d.residents {
			locals = append(locals, local)
		}
		sort.Ints(locals)
		for _, local := range locals {
			res := d.residents[local]
			ds.Residents = append(ds.Residents, snapshot.ResidentState{
				Local:    res.local,
				Tenant:   res.t.spec.Name,
				Quota:    res.quota,
				Mem:      res.mem,
				Draining: res.draining,
				Pending:  res.pending,
			})
		}
		loads = d.gpu.Loads(loads)
		for _, ql := range loads {
			owner := -1
			if id, ok := ql.Queue.Context().Owner(); ok {
				owner = id
			}
			ds.Queues = append(ds.Queues, snapshot.QueueState{
				Owner:   owner,
				Pending: ql.Pending,
				Paused:  ql.Paused,
				Running: ql.Running != nil,
			})
		}
		if d.deployed {
			rs := d.rt.ExportState()
			ds.Runtime = &rs
		}
		st.Devices = append(st.Devices, ds)
	}

	st.Tenants = make([]snapshot.TenantState, 0, len(f.names))
	for _, name := range f.names {
		t := f.tenants[name]
		ts := snapshot.TenantState{
			Name:       name,
			App:        t.spec.App,
			Quota:      t.spec.Quota,
			SLOTarget:  t.spec.SLOTarget,
			Think:      t.spec.Think,
			Requests:   t.spec.Requests,
			Host:       -1,
			Evicted:    t.evicted,
			NextSeq:    t.nextSeq,
			Completed:  t.completed,
			Failed:     t.failed,
			Migrations: t.migrations,
			LatencySum: t.latencySum,
			Order:      t.order,
			Latencies:  t.lats,
		}
		if !t.evicted && t.host != nil {
			ts.Host = t.host.dev.id
		}
		seqs := make([]int, 0, len(t.pending))
		for seq := range t.pending {
			seqs = append(seqs, seq)
		}
		sort.Ints(seqs)
		ts.PendingSeqs = seqs
		ts.PendingDevs = make([]int, len(seqs))
		for i, seq := range seqs {
			ts.PendingDevs[i] = t.pending[seq].dev.id
		}
		for _, res := range t.drains {
			ts.Drains = append(ts.Drains, res.dev.id)
		}
		sort.Ints(ts.Drains)
		for _, tm := range t.timers {
			ts.Timers = append(ts.Timers, tm.at)
		}
		sort.Slice(ts.Timers, func(i, j int) bool { return ts.Timers[i] < ts.Timers[j] })
		st.Tenants = append(st.Tenants, ts)
	}

	// Inbox is already held in canonical (deliver, dev, seq) order.
	st.Inbox = make([]snapshot.ExchangeRecord, 0, len(f.inbox))
	for i := range f.inbox {
		rec := &f.inbox[i]
		st.Inbox = append(st.Inbox, snapshot.ExchangeRecord{
			Deliver: rec.deliver,
			At:      rec.at,
			Dev:     rec.dev,
			Seq:     rec.seq,
			Tenant:  rec.res.t.spec.Name,
			Local:   rec.res.local,
			RSeq:    rec.rseq,
			Failed:  rec.failed,
			Lat:     rec.lat,
			Drained: rec.drained,
		})
	}

	st.ControlTimes = f.ctrl.PendingTimes(nil)
	for _, sh := range f.shards {
		st.EventTimes = sh.eng.PendingTimes(st.EventTimes)
	}
	sort.Slice(st.EventTimes, func(i, j int) bool { return st.EventTimes[i] < st.EventTimes[j] })

	if f.checker != nil {
		cp := f.checker.Checkpoint()
		st.Checker = &snapshot.CheckerState{
			Digest:    cp.Digest,
			Events:    cp.Events,
			Routed:    cp.Routed,
			Completed: cp.Completed,
			Rerouted:  cp.Rerouted,
		}
	}
	return st, nil
}
