package fleet

import (
	"strings"
	"testing"

	"bless/internal/invariant"
	"bless/internal/model"
	"bless/internal/profiler"
	"bless/internal/sim"
)

// testProfile is a process-cached resolver so fleet unit tests don't
// re-profile per test.
var profCache = map[string]*profiler.Profile{}

func testProfile(app string, cfg sim.Config) (*model.App, *profiler.Profile, error) {
	a, err := model.Get(app)
	if err != nil {
		return nil, nil, err
	}
	key := app + "/" + string(rune(cfg.SMs))
	if p, ok := profCache[key]; ok {
		return a, p, nil
	}
	p, err := profiler.ProfileApp(a, profiler.Options{Config: cfg})
	if err != nil {
		return nil, nil, err
	}
	profCache[key] = p
	return a, p, nil
}

func pool(t *testing.T, n int, checker *invariant.FleetChecker) (*sim.Engine, *Fleet) {
	t.Helper()
	eng := sim.NewEngine()
	devices := make([]DeviceSpec, n)
	for i := range devices {
		devices[i] = DeviceClass("", 108, 40<<30)
	}
	f, err := New(eng, Config{Devices: devices, Profile: testProfile, Checker: checker})
	if err != nil {
		t.Fatal(err)
	}
	return eng, f
}

func TestAdmitRoutesLeastLoaded(t *testing.T) {
	_, f := pool(t, 3, nil)
	for i, name := range []string{"a", "b", "c"} {
		if err := f.Admit(TenantSpec{Name: name, App: "resnet50", Quota: 0.3}); err != nil {
			t.Fatal(err)
		}
		snap := f.Snapshot()
		if got := snap.Tenants[i].Device; got != i {
			t.Fatalf("tenant %s placed on device %d, want %d (least-loaded spreads)", name, got, i)
		}
	}
	// Fourth tenant: all devices equally loaded, lowest index wins.
	if err := f.Admit(TenantSpec{Name: "d", App: "vgg11", Quota: 0.3}); err != nil {
		t.Fatal(err)
	}
	if got := f.Snapshot().Tenants[3].Device; got != 0 {
		t.Fatalf("tie broke to device %d, want 0", got)
	}
}

func TestAdmitRejectsWhenNothingFits(t *testing.T) {
	_, f := pool(t, 2, nil)
	for _, name := range []string{"a", "b"} {
		if err := f.Admit(TenantSpec{Name: name, App: "resnet50", Quota: 0.9}); err != nil {
			t.Fatal(err)
		}
	}
	err := f.Admit(TenantSpec{Name: "c", App: "resnet50", Quota: 0.5})
	if err == nil {
		t.Fatal("admission should fail: no device has 0.5 quota headroom")
	}
	if !strings.Contains(err.Error(), "no device fits") {
		t.Fatalf("unexpected error: %v", err)
	}
	if f.Stats().AdmitRejected != 1 {
		t.Fatalf("AdmitRejected = %d, want 1", f.Stats().AdmitRejected)
	}
}

func TestDuplicateTenantAndBadQuota(t *testing.T) {
	_, f := pool(t, 1, nil)
	if err := f.Admit(TenantSpec{Name: "a", App: "vgg11", Quota: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := f.Admit(TenantSpec{Name: "a", App: "vgg11", Quota: 0.4}); err == nil {
		t.Fatal("duplicate tenant admitted")
	}
	if err := f.Admit(TenantSpec{Name: "b", App: "vgg11", Quota: 1.5}); err == nil {
		t.Fatal("quota > 1 admitted")
	}
}

func TestMigrateDrainsSourceAndFlipsRouting(t *testing.T) {
	checker := invariant.NewFleetChecker(invariant.FleetOptions{})
	eng, f := pool(t, 2, checker)
	if err := f.Admit(TenantSpec{Name: "a", App: "resnet50", Quota: 0.5}); err != nil {
		t.Fatal(err)
	}
	// Backlog on the source, then migrate mid-flight.
	eng.Schedule(0, func() {
		for i := 0; i < 3; i++ {
			f.Submit("a")
		}
	})
	eng.Schedule(sim.Millisecond, func() {
		if err := f.Migrate("a", 1); err != nil {
			t.Errorf("migrate: %v", err)
		}
		// New work after the trigger flows to the target.
		f.Submit("a")
	})
	eng.Run()
	st := f.Stats()
	if st.Migrations != 1 || st.MigrationsCompleted != 1 {
		t.Fatalf("migrations=%d completed=%d, want 1/1", st.Migrations, st.MigrationsCompleted)
	}
	snap := f.Snapshot()
	if snap.Tenants[0].Device != 1 {
		t.Fatalf("tenant ended on device %d, want 1", snap.Tenants[0].Device)
	}
	if snap.Devices[0].QuotaSubscribed != 0 {
		t.Fatalf("source still subscribed %g after drain", snap.Devices[0].QuotaSubscribed)
	}
	rep := checker.Report(eng.Now())
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 4 {
		t.Fatalf("completed %d, want 4", rep.Completed)
	}
}

func TestMigrateRejectsSecondWhileDraining(t *testing.T) {
	eng, f := pool(t, 3, nil)
	if err := f.Admit(TenantSpec{Name: "a", App: "resnet50", Quota: 0.5}); err != nil {
		t.Fatal(err)
	}
	var second error
	eng.Schedule(0, func() {
		f.Submit("a")
		f.Migrate("a", 1)
	})
	// The move applies at the end of instant 0; by 1ms the source is
	// draining and a second migration must be refused.
	eng.Schedule(sim.Millisecond, func() { second = f.Migrate("a", 2) })
	eng.RunUntil(2 * sim.Millisecond)
	if second == nil {
		t.Fatal("second migration accepted while the first still drains")
	}
	eng.Run()
}

func TestCrashEvictsWhenNoCapacity(t *testing.T) {
	checker := invariant.NewFleetChecker(invariant.FleetOptions{})
	eng, f := pool(t, 2, checker)
	// Fill device 1 completely so a's tenant cannot be re-placed.
	if err := f.Admit(TenantSpec{Name: "a", App: "resnet50", Quota: 0.9}); err != nil {
		t.Fatal(err)
	}
	if err := f.Admit(TenantSpec{Name: "b", App: "resnet50", Quota: 0.9}); err != nil {
		t.Fatal(err)
	}
	eng.Schedule(0, func() { f.Submit("a") })
	eng.Schedule(sim.Millisecond, func() { f.CrashDevice(0) })
	eng.Run()
	st := f.Stats()
	if st.Evicted != 1 {
		t.Fatalf("evicted=%d, want 1", st.Evicted)
	}
	if _, err := f.Submit("a"); err == nil {
		t.Fatal("submit to evicted tenant succeeded")
	}
	// Eviction is exempt from the delivery check, like a crashed client.
	if err := checker.Report(eng.Now()).Err(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanRebalancePure(t *testing.T) {
	snap := Snapshot{
		Devices: []DeviceLoad{
			{Device: 0, QuotaSubscribed: 0.9},
			{Device: 1, QuotaSubscribed: 0.1},
		},
		Tenants: []TenantPlacement{
			{Name: "x", Quota: 0.3, Device: 0},
			{Name: "y", Quota: 0.3, Device: 0},
			{Name: "z", Quota: 0.3, Device: 0},
		},
	}
	a := planRebalance(7, 3, snap, 0.25, 4)
	if len(a) == 0 {
		t.Fatal("imbalanced pool produced no plan")
	}
	// Pure: same inputs, same plan; permuted tenant listing, same plan.
	b := planRebalance(7, 3, snap, 0.25, 4)
	perm := snap
	perm.Tenants = []TenantPlacement{snap.Tenants[2], snap.Tenants[0], snap.Tenants[1]}
	c := planRebalance(7, 3, perm, 0.25, 4)
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("plan not pure: %v vs %v vs %v", a, b, c)
		}
	}
	// Different (seed, epoch) may change tie-breaks but must stay valid.
	d := planRebalance(8, 4, snap, 0.25, 4)
	for _, m := range d {
		if m.target != 1 {
			t.Fatalf("move targets device %d, want 1", m.target)
		}
	}
}

func TestFleetCheckerCatchesViolations(t *testing.T) {
	c := invariant.NewFleetChecker(invariant.FleetOptions{})
	c.DeviceAdded(0, 0, 108)
	c.TenantAdmitted(0, "t", 0, 0.6)
	c.TenantAdmitted(0, "u", 0, 0.6) // 1.2 > capacity
	rep := c.Report(0)
	if rep.Ok() {
		t.Fatal("over-subscribed device not flagged")
	}
	if !strings.Contains(rep.Err().Error(), "exceeds SM capacity") {
		t.Fatalf("wrong violation: %v", rep.Err())
	}

	c = invariant.NewFleetChecker(invariant.FleetOptions{})
	c.DeviceAdded(0, 0, 108)
	c.TenantAdmitted(0, "t", 0, 0.5)
	c.RequestRouted(1, "t", 0, 0)
	c.RequestCompleted(2, "t", 0, 0, false)
	c.RequestCompleted(3, "t", 0, 0, false) // duplicate
	if err := c.Report(3).Err(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate delivery not flagged: %v", err)
	}

	c = invariant.NewFleetChecker(invariant.FleetOptions{})
	c.DeviceAdded(0, 0, 108)
	c.TenantAdmitted(0, "t", 0, 0.5)
	c.RequestRouted(1, "t", 0, 0)
	rep = c.Report(2)
	if rep.Lost != 1 {
		t.Fatalf("lost=%d, want 1 (routed, never completed)", rep.Lost)
	}
}
