// Package fleet is the control plane over a pool of BLESS devices: where
// internal/cluster places a fixed tenant set once at deployment time, fleet
// runs the pool as a living system — tenants are admitted against live
// per-device load, routed by a pluggable policy on top of the §4.2.2
// placement check, migrated between devices without a service pause (new
// requests flow to the target while the source drains through the graceful
// leave path), rebalanced when load skews, and the pool itself grows and
// shrinks under an autoscaler.
//
// Heterogeneity is physical: each device carries its own sim.Config, and a
// device's SM count is its speed profile — compute kernels scale with SMs up
// to their saturation point, so a 60-SM device genuinely runs slower than a
// 108-SM one and the profiles used for placement are re-derived per device
// class.
//
// A fleet runs in one of two execution modes. In embedded mode (New) every
// device shares the caller's engine and the caller drives submissions and
// control events directly — the mode unit tests and admission-only probes
// use. In sharded mode (NewSharded) each device is pinned to one of N
// engine shards advanced in lock-step windows by Run, with every
// cross-device interaction — routing flips, migration drains, crash
// recovery, control ticks — applied at window barriers in a canonical
// order. Cross-device rules are defined per device, never per shard, so the
// device→shard mapping is pure execution strategy: a run at any shard count
// (including one) is bit-identical to any other. Control decisions that can
// arrive in any order within one instant (migration triggers) are applied
// in a canonical order, so permuting the trigger order cannot change the
// outcome, and rebalance plans are pure functions of (seed, epoch,
// snapshot) — the discipline that keeps serial and parallel runs
// bit-identical.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"bless/internal/core"
	"bless/internal/invariant"
	"bless/internal/model"
	"bless/internal/obs"
	"bless/internal/profiler"
	"bless/internal/sharing"
	"bless/internal/sim"
)

// profileCache memoizes offline profiles per (app, device config)
// process-wide for the default profile function. Profiling is deterministic
// and profiles are immutable after construction, so fleets — and repeated
// fleet constructions in tests and benchmarks — can share them;
// re-profiling every admitted tenant dominated admission cost otherwise.
// sim.Config is all scalars, so the composite key is comparable.
var profileCache sync.Map // profileKey -> *profiler.Profile

type profileKey struct {
	app string
	cfg sim.Config
}

func defaultProfile(app string, cfg sim.Config) (*model.App, *profiler.Profile, error) {
	a, err := model.Get(app)
	if err != nil {
		return nil, nil, err
	}
	key := profileKey{app: app, cfg: cfg}
	if p, ok := profileCache.Load(key); ok {
		return a, p.(*profiler.Profile), nil
	}
	p, err := profiler.ProfileApp(a, profiler.Options{Config: cfg})
	if err != nil {
		return nil, nil, err
	}
	actual, _ := profileCache.LoadOrStore(key, p)
	return a, actual.(*profiler.Profile), nil
}

// DeviceSpec describes one device in the pool. The SM count in Config is the
// device's speed profile: fewer SMs means compute kernels (below their
// saturation point) run proportionally slower.
type DeviceSpec struct {
	// Name labels the device ("gpu0", "a100-3", ...).
	Name string
	// Config is the device simulation config (zero = sim.DefaultConfig).
	Config sim.Config
}

// TenantSpec describes one application tenancy.
type TenantSpec struct {
	// Name uniquely identifies the tenant in the fleet ("t042").
	Name string
	// App is the catalog application the tenant runs.
	App string
	// Quota is the provisioned GPU fraction in (0, 1] on whichever device
	// hosts the tenant.
	Quota float64
	// SLOTarget, when non-zero, is the latency target used for pacing and
	// for the SLO-attainment routing policy.
	SLOTarget sim.Time
	// Think is the closed-loop think time between a completion and the
	// tenant's next submission. Only sharded runs (Fleet.Run) drive the
	// closed loop; embedded-mode callers submit explicitly.
	Think sim.Time
	// Requests bounds the tenant's submissions in a sharded run (0 = keep
	// submitting until the horizon).
	Requests int
}

// ProfileFunc resolves an application and its offline profile for a device
// configuration. The harness passes its process-wide cached resolver; the
// default profiles from scratch per call.
type ProfileFunc func(app string, cfg sim.Config) (*model.App, *profiler.Profile, error)

// Config assembles a fleet.
type Config struct {
	// Seed keys deterministic control-plane decisions (rebalance plans).
	Seed int64
	// Devices is the initial pool.
	Devices []DeviceSpec
	// Runtime tunes every device's BLESS runtime.
	Runtime core.Options
	// InjectorFor, when set, builds a per-device fault injector attached to
	// that device's runtime (overriding Runtime.Injector). Injectors are
	// per-device so each is touched only by its device's shard — sharing one
	// stateful injector across devices would make fault decisions depend on
	// the shard mapping.
	InjectorFor func(device int) core.FaultInjector
	// Policy selects the routing policy (default PolicyLeastLoaded).
	Policy Policy
	// Profile resolves per-device-class profiles (default: profile from
	// scratch, uncached).
	Profile ProfileFunc
	// Checker, when set, receives every fleet-level event for invariant
	// verification (no lost/duplicated requests, fleet-wide quota
	// conservation, device capacity).
	Checker *invariant.FleetChecker
	// Rebalance enables the periodic rebalancer (nil = disabled).
	Rebalance *RebalanceConfig
	// Autoscale enables the autoscaler (nil = disabled). Requires Rebalance
	// (the control loop ticks on its interval).
	Autoscale *AutoscaleConfig
	// Shards is the engine-shard count for NewSharded (0 or 1 = one shard;
	// the coordinator/exchange path runs identically at every count).
	Shards int
	// ShardOf optionally overrides the device→shard mapping (default:
	// device id modulo shard count). The mapping is execution strategy
	// only; permuting it cannot change a run's digests.
	ShardOf func(device int) int
	// ExchangeLatency is the cross-device handoff latency ε applied to
	// migration-drain completion notifications in sharded runs (default
	// 100µs virtual). It models the routing-layer hop between a draining
	// source device and the tenant's owner, and bounds every lock-step
	// window so no shard can outrun a message addressed to it.
	ExchangeLatency sim.Time
}

// Stats counts control-plane activity over the fleet's lifetime.
type Stats struct {
	Admitted            int
	AdmitRejected       int
	Routed              int64
	Completed           int64
	Failed              int64
	Migrations          int
	MigrationsCompleted int
	MigrationsRejected  int
	Rebalances          int
	ScaleUps            int
	ScaleDowns          int
	DeviceCrashes       int
	Resubmitted         int64
	Evicted             int
	LostToEviction      int
	Epochs              int64
}

// residency is one tenant's presence on one device: a device-local client
// plus the fleet-side accounting mirrored from the runtime's lifecycle.
type residency struct {
	t        *tenant
	dev      *device
	local    int // device-local client ID
	quota    float64
	mem      int64 // placement-time memory estimate
	prof     *profiler.Profile
	client   *sharing.Client
	draining bool // migration source: no new requests, backlog finishing
	pending  int  // requests routed here and not yet completed
}

// tenant is the fleet-side tenant state.
type tenant struct {
	spec    TenantSpec
	host    *residency   // routing target for new requests
	drains  []*residency // migration sources still finishing their backlog
	evicted bool         // no capacity after a crash; tenant is gone
	nextSeq int
	pending map[int]*residency // outstanding seq -> residency it ran on

	completed  int
	failed     int
	order      []int // completion order of seqs (the digest substrate)
	lats       []sim.Time
	latencySum sim.Time
	migrations int

	// timers are the pending closed-loop submit events (sharded runs).
	// They live on the owner shard's engine and move with the host.
	timers []*workTimer
}

// device is one pool member: a simulated GPU, its BLESS runtime, and the
// obs-backed load registry the routing policies read.
type device struct {
	id       int
	spec     DeviceSpec
	cfg      sim.Config
	gpu      *sim.GPU
	env      *sharing.Env
	rt       *core.Runtime
	bus      *obs.Bus
	reg      *obs.Registry
	slo      *obs.SLOTracker
	deployed bool // core.Runtime deploys with its first resident
	retired  bool // cordoned by the autoscaler: no new placements
	dead     bool // crashed

	shard  *shardState // the engine shard this device is pinned to
	outSeq uint64      // per-device exchange-record ordinal (canonical tie-break)
	chkSeq uint64      // per-device checker-event ordinal (canonical tie-break)

	nextLocal int
	residents map[int]*residency // local ID -> residency (live and draining)
	quota     float64            // subscribed quota, draining residents included
	mem       int64              // subscribed memory estimate
	inflight  int
	completed int64
	failed    int64
	sloOK     int64
	sloMiss   int64
}

// Fleet is a running control plane. Not safe for concurrent use; like the
// engine it drives, a fleet is single-threaded within one simulation.
type Fleet struct {
	eng     *sim.Engine // embedded-mode engine (nil in sharded mode)
	ctrl    *sim.Engine // control-plane engine (== eng in embedded mode)
	cfg     Config
	policy  Policy
	profile ProfileFunc
	checker *invariant.FleetChecker

	// Sharded execution (NewSharded). The coordinator state — exchange
	// inbox, drain count, window bookkeeping — is only touched at barriers.
	sharded bool
	set     *sim.ShardSet
	shards  []*shardState
	eps     sim.Time // exchange latency ε, the windows' lookahead bound
	horizon sim.Time
	began   bool       // Begin ran: timers armed, control ticks scheduled
	window  sim.Time   // start of the current lock-step window (last barrier)
	inbox   []drainRec // pending cross-shard deliveries, (deliver, dev, seq) order
	chkBuf  []chkRec   // scratch for the per-window checker-event sort

	drainCount int // live migration-drain residencies fleet-wide

	devices []*device
	tenants map[string]*tenant
	names   []string // admission order, for deterministic iteration

	moves      []move // migration triggers collected this instant
	movesArmed bool

	epoch          int64
	shortfallTicks int
	churned        bool // crash since last tick: rebalance regardless

	stats Stats
}

// New assembles the pool and its per-device runtimes on the given engine —
// embedded mode: the caller owns the engine and drives submissions and
// control events directly.
func New(eng *sim.Engine, cfg Config) (*Fleet, error) {
	if eng == nil {
		return nil, fmt.Errorf("fleet: nil engine")
	}
	f, err := newFleet(cfg)
	if err != nil {
		return nil, err
	}
	f.eng, f.ctrl = eng, eng
	f.shards = []*shardState{{id: 0, eng: eng}}
	return f, f.addInitialDevices()
}

// newFleet validates the config and builds the engine-less skeleton shared
// by both constructors.
func newFleet(cfg Config) (*Fleet, error) {
	if len(cfg.Devices) == 0 {
		return nil, fmt.Errorf("fleet: need at least one device")
	}
	if cfg.Autoscale != nil && cfg.Rebalance == nil {
		return nil, fmt.Errorf("fleet: Autoscale requires Rebalance (the control loop ticks on its interval)")
	}
	f := &Fleet{
		cfg:     cfg,
		policy:  cfg.Policy,
		profile: cfg.Profile,
		checker: cfg.Checker,
		tenants: make(map[string]*tenant),
	}
	if f.policy == "" {
		f.policy = PolicyLeastLoaded
	}
	if _, err := policyRank(f.policy); err != nil {
		return nil, err
	}
	if f.profile == nil {
		f.profile = defaultProfile
	}
	return f, nil
}

func (f *Fleet) addInitialDevices() error {
	for _, spec := range f.cfg.Devices {
		if _, err := f.AddDevice(spec); err != nil {
			return err
		}
	}
	return nil
}

// now is the control-plane clock: the shared engine in embedded mode, the
// control engine in sharded mode. Only valid outside shard windows.
func (f *Fleet) now() sim.Time { return f.ctrl.Now() }

// shardIndex maps a device to its engine shard.
func (f *Fleet) shardIndex(dev int) int {
	n := len(f.shards)
	if n == 1 {
		return 0
	}
	if f.cfg.ShardOf != nil {
		return ((f.cfg.ShardOf(dev) % n) + n) % n
	}
	return dev % n
}

// AddDevice grows the pool by one device and returns its index. The device's
// runtime deploys lazily with its first resident.
func (f *Fleet) AddDevice(spec DeviceSpec) (int, error) {
	cfg := spec.Config
	if cfg.SMs == 0 {
		cfg = sim.DefaultConfig()
	}
	if err := cfg.Validate(); err != nil {
		return 0, fmt.Errorf("fleet: device %q: %w", spec.Name, err)
	}
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("gpu%d", len(f.devices))
	}
	sh := f.shards[f.shardIndex(len(f.devices))]
	opts := f.cfg.Runtime
	if f.cfg.InjectorFor != nil {
		opts.Injector = f.cfg.InjectorFor(len(f.devices))
	}
	d := &device{
		id:        len(f.devices),
		spec:      spec,
		cfg:       cfg,
		gpu:       sim.NewGPU(sh.eng, cfg),
		rt:        core.New(opts),
		bus:       obs.NewBus(),
		reg:       obs.NewRegistry(),
		slo:       obs.NewSLOTracker(),
		shard:     sh,
		residents: make(map[int]*residency),
	}
	d.env = &sharing.Env{Eng: sh.eng, GPU: d.gpu}
	// The obs signals are the device's load registry: request counters and
	// the latency histogram stream in from the runtime's decision bus.
	reg := d.reg
	d.bus.Subscribe(obs.SubscriberFunc(func(ev obs.Event) {
		switch ev.Kind {
		case obs.KindRequestAdmitted:
			reg.Counter("requests/admitted_total").Inc()
		case obs.KindRequestDone:
			if ev.Reason == "failed" {
				reg.Counter("requests/failed_total").Inc()
			} else {
				reg.Counter("requests/completed_total").Inc()
				reg.Histogram("latency/request_ns").Observe(ev.Actual)
			}
		case obs.KindClientJoin:
			reg.Counter("clients/joined_total").Inc()
		case obs.KindClientLeave:
			reg.Counter("clients/left_total").Inc()
		case obs.KindClientCrash:
			reg.Counter("clients/crashed_total").Inc()
		}
	}))
	d.rt.Observe(d.bus)
	dev := d
	d.env.OnComplete = func(r *sharing.Request) { f.completed(dev, r) }
	f.devices = append(f.devices, d)
	if f.checker != nil {
		f.checker.DeviceAdded(f.now(), d.id, cfg.SMs)
	}
	return d.id, nil
}

// Admit places a new tenant on the device the routing policy picks and
// starts it. Admission fails when no live device passes the §4.2.2 placement
// check for the tenant.
func (f *Fleet) Admit(spec TenantSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("fleet: tenant needs a name")
	}
	if _, ok := f.tenants[spec.Name]; ok {
		return fmt.Errorf("fleet: tenant %q already admitted", spec.Name)
	}
	if spec.Quota <= 0 || spec.Quota > 1 {
		return fmt.Errorf("fleet: tenant %q quota %g outside (0,1]", spec.Name, spec.Quota)
	}
	t := &tenant{spec: spec, pending: make(map[int]*residency)}
	dev, err := f.route(t, -1)
	if err != nil {
		f.stats.AdmitRejected++
		return fmt.Errorf("fleet: admitting %q: %w", spec.Name, err)
	}
	res, err := f.place(t, dev)
	if err != nil {
		f.stats.AdmitRejected++
		return fmt.Errorf("fleet: admitting %q: %w", spec.Name, err)
	}
	t.host = res
	f.tenants[spec.Name] = t
	f.names = append(f.names, spec.Name)
	f.stats.Admitted++
	return nil
}

// AdmitBatch admits a batch of tenants in one admission pass — the
// batch-admission entry point the serving front end uses to open a tenant
// set without per-tenant control-plane round-trips. The whole batch is
// pre-validated first (names, quotas, duplicates — including duplicates
// within the batch), so a malformed batch is rejected atomically before any
// tenant lands; placement then proceeds in batch order and stops at the
// first tenant the pool cannot host, reporting how many were admitted.
// Placement is load-aware per admission, so earlier tenants in the batch
// influence later routing exactly as sequential Admit calls would — the
// batch is a performance shape, not a different policy.
func (f *Fleet) AdmitBatch(specs []TenantSpec) (admitted int, err error) {
	seen := make(map[string]bool, len(specs))
	for _, spec := range specs {
		if spec.Name == "" {
			return 0, fmt.Errorf("fleet: batch tenant needs a name")
		}
		if seen[spec.Name] {
			return 0, fmt.Errorf("fleet: batch admits tenant %q twice", spec.Name)
		}
		seen[spec.Name] = true
		if _, ok := f.tenants[spec.Name]; ok {
			return 0, fmt.Errorf("fleet: tenant %q already admitted", spec.Name)
		}
		if spec.Quota <= 0 || spec.Quota > 1 {
			return 0, fmt.Errorf("fleet: tenant %q quota %g outside (0,1]", spec.Name, spec.Quota)
		}
	}
	for i, spec := range specs {
		if err := f.Admit(spec); err != nil {
			return i, fmt.Errorf("fleet: batch admission stopped at %d/%d: %w", i, len(specs), err)
		}
	}
	return len(specs), nil
}

// place creates a residency for the tenant on the device: the device-class
// profile is resolved, the local client built on the next dense slot, and
// the runtime deployed (first resident) or joined mid-run (sharing.Dynamic).
func (f *Fleet) place(t *tenant, dev *device) (*residency, error) {
	app, prof, err := f.profile(t.spec.App, dev.cfg)
	if err != nil {
		return nil, err
	}
	c := &sharing.Client{
		ID:        dev.nextLocal,
		App:       app,
		Profile:   prof,
		Quota:     t.spec.Quota,
		SLOTarget: t.spec.SLOTarget,
	}
	if !dev.deployed {
		dev.env.Clients = []*sharing.Client{c}
		if err := dev.rt.Deploy(dev.env); err != nil {
			dev.env.Clients = nil
			return nil, fmt.Errorf("device %s: %w", dev.spec.Name, err)
		}
		dev.deployed = true
	} else {
		if err := dev.rt.AddClient(c); err != nil {
			return nil, fmt.Errorf("device %s: %w", dev.spec.Name, err)
		}
	}
	lim := profiler.DefaultAdmissionLimits()
	res := &residency{
		t:      t,
		dev:    dev,
		local:  c.ID,
		quota:  t.spec.Quota,
		mem:    prof.MemoryBytes + int64(lim.ContextsPerClient)*dev.cfg.ContextMemBytes,
		prof:   prof,
		client: c,
	}
	dev.nextLocal++
	dev.residents[res.local] = res
	dev.quota += res.quota
	dev.mem += res.mem
	dev.slo.SetTarget(t.spec.Name, t.spec.SLOTarget)
	if f.checker != nil {
		f.checker.TenantAdmitted(f.now(), t.spec.Name, dev.id, res.quota)
	}
	return res, nil
}

// Submit routes the tenant's next request to its current host device at the
// current virtual time and returns the request handle.
func (f *Fleet) Submit(name string) (*sharing.Request, error) {
	t, ok := f.tenants[name]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown tenant %q", name)
	}
	return f.submit(t)
}

// submit issues the tenant's next request on its owner shard. In a sharded
// run it is only called from the owner shard (timers) or at barriers.
func (f *Fleet) submit(t *tenant) (*sharing.Request, error) {
	if t.evicted {
		return nil, fmt.Errorf("fleet: tenant %q was evicted", t.spec.Name)
	}
	seq := t.nextSeq
	t.nextSeq++
	res := t.host
	sh := res.dev.shard
	now := sh.eng.Now()
	r := sh.arena.New(res.client, seq, now)
	res.dev.rt.Submit(r)
	t.pending[seq] = res
	res.pending++
	res.dev.inflight++
	sh.routed++
	f.noteRouted(sh, now, res.dev, t, seq)
	return r, nil
}

// completed is every device's env.OnComplete: it settles the device-local
// request accounting and feeds the SLO tracker. Completions of live (owner)
// residencies settle the tenant-side accounting in place; completions of
// draining migration sources in a sharded run instead emit an exchange
// record delivered to the owner ε later at a barrier — the tenant may be
// owned by another shard, and the ε rule applies at every shard count so
// the shard mapping stays execution-only.
func (f *Fleet) completed(dev *device, r *sharing.Request) {
	res, ok := dev.residents[r.Client.ID]
	if !ok {
		return // completion for an already-released residency: impossible by construction
	}
	t := res.t
	lat := r.Latency()
	res.pending--
	dev.inflight--
	if r.Failed {
		dev.failed++
	} else {
		dev.completed++
	}
	if t.spec.SLOTarget > 0 {
		if !r.Failed && lat <= t.spec.SLOTarget {
			dev.sloOK++
		} else {
			dev.sloMiss++
		}
	}
	dev.slo.Observe(t.spec.Name, t.spec.SLOTarget, lat, r.Failed)
	sh := dev.shard
	if f.sharded && res.draining {
		drained := res.pending == 0
		if drained {
			f.finishDrainLocal(res, r.Done)
		}
		sh.outbox = append(sh.outbox, drainRec{
			deliver: r.Done + f.eps, at: r.Done,
			dev: dev.id, seq: dev.outSeq,
			res: res, rseq: r.Seq, failed: r.Failed, lat: lat,
			drained: drained,
		})
		dev.outSeq++
		return
	}
	delete(t.pending, r.Seq)
	if r.Failed {
		t.failed++
		sh.failed++
	} else {
		t.completed++
		sh.done++
		t.latencySum += lat
		t.lats = append(t.lats, lat)
	}
	t.order = append(t.order, r.Seq)
	f.noteCompleted(sh, r.Done, dev, t, r.Seq, r.Failed)
	if res.draining && res.pending == 0 {
		f.finishDrain(res)
	}
	if f.sharded {
		f.scheduleNext(t, r.Seq, r.Done, 0)
	}
}

// finishDrain retires a migration-source residency whose backlog has
// finished: the runtime has released the client (graceful-leave semantics),
// so the fleet-side subscription drops with it. Embedded mode and barriers
// only; window-time drain finishes go through finishDrainLocal.
func (f *Fleet) finishDrain(res *residency) {
	dev, t := res.dev, res.t
	delete(dev.residents, res.local)
	dev.quota -= res.quota
	dev.mem -= res.mem
	f.removeDrain(t, res)
	f.stats.MigrationsCompleted++
	if f.checker != nil {
		f.checker.TenantReleased(f.now(), t.spec.Name, dev.id)
	}
}

// removeDrain unlinks a drain residency from its tenant (no-op when the
// residency is not in the drain list) and settles the fleet-wide count.
func (f *Fleet) removeDrain(t *tenant, res *residency) {
	for i, d := range t.drains {
		if d == res {
			t.drains = append(t.drains[:i], t.drains[i+1:]...)
			f.drainCount--
			return
		}
	}
}

// Stats returns the control-plane counters, shard-local tallies merged.
func (f *Fleet) Stats() Stats {
	s := f.stats
	for _, sh := range f.shards {
		s.Routed += sh.routed
		s.Completed += sh.done
		s.Failed += sh.failed
		s.MigrationsCompleted += sh.drained
	}
	return s
}

// Devices returns the pool size, retired and crashed devices included.
func (f *Fleet) Devices() int { return len(f.devices) }

// Engine returns the shared simulation engine in embedded mode; nil for a
// sharded fleet (devices live on per-shard engines there).
func (f *Fleet) Engine() *sim.Engine { return f.eng }

// Elapsed reports the fleet's virtual time: the furthest device clock in a
// sharded run, the shared engine's clock in embedded mode.
func (f *Fleet) Elapsed() sim.Time {
	if !f.sharded {
		return f.eng.Now()
	}
	at := f.set.Now()
	if c := f.ctrl.Now(); c > at {
		at = c
	}
	return at
}

// TenantResult is one tenant's final outcome.
type TenantResult struct {
	Name       string
	App        string
	Quota      float64
	Device     int // final host (-1 if evicted)
	Completed  int
	Failed     int
	MeanLat    sim.Time
	Latencies  []sim.Time // successful-request latencies, completion order
	Migrations int
	Evicted    bool
}

// Results returns every tenant's outcome in admission order.
func (f *Fleet) Results() []TenantResult {
	out := make([]TenantResult, 0, len(f.names))
	for _, name := range f.names {
		t := f.tenants[name]
		tr := TenantResult{
			Name:       name,
			App:        t.spec.App,
			Quota:      t.spec.Quota,
			Device:     -1,
			Completed:  t.completed,
			Failed:     t.failed,
			Latencies:  t.lats,
			Migrations: t.migrations,
			Evicted:    t.evicted,
		}
		if !t.evicted && t.host != nil {
			tr.Device = t.host.dev.id
		}
		if t.completed > 0 {
			tr.MeanLat = t.latencySum / sim.Time(t.completed)
		}
		out = append(out, tr)
	}
	return out
}

// CompletionDigest folds every tenant's outcome — app, completion order,
// failure count, eviction — into one timing-free FNV-1a digest. Two runs of
// the same scenario must match bit-for-bit regardless of execution mode
// (serial vs parallel workers) or of the order same-instant migration
// triggers arrived in.
func (f *Fleet) CompletionDigest() uint64 {
	h := fnv.New64a()
	names := append([]string(nil), f.names...)
	sort.Strings(names)
	var buf [8]byte
	wInt := func(v int) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, name := range names {
		t := f.tenants[name]
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write([]byte(t.spec.App))
		h.Write([]byte{0})
		wInt(t.completed)
		wInt(t.failed)
		wInt(t.migrations)
		if t.evicted {
			wInt(1)
		} else {
			wInt(0)
		}
		wInt(len(t.order))
		for _, seq := range t.order {
			wInt(seq)
		}
	}
	return h.Sum64()
}
