// Package fleet is the control plane over a pool of BLESS devices: where
// internal/cluster places a fixed tenant set once at deployment time, fleet
// runs the pool as a living system — tenants are admitted against live
// per-device load, routed by a pluggable policy on top of the §4.2.2
// placement check, migrated between devices without a service pause (new
// requests flow to the target while the source drains through the graceful
// leave path), rebalanced when load skews, and the pool itself grows and
// shrinks under an autoscaler.
//
// Heterogeneity is physical: each device carries its own sim.Config, and a
// device's SM count is its speed profile — compute kernels scale with SMs up
// to their saturation point, so a 60-SM device genuinely runs slower than a
// 108-SM one and the profiles used for placement are re-derived per device
// class.
//
// All devices share one simulation engine, so a fleet run — migrations,
// crashes, autoscaling and all — remains a single deterministic virtual-time
// simulation. Control decisions that can arrive in any order within one
// instant (migration triggers) are applied in a canonical order, so
// permuting the trigger order cannot change the outcome, and rebalance plans
// are pure functions of (seed, epoch, snapshot) — the discipline that keeps
// serial and parallel runs bit-identical.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"

	"bless/internal/core"
	"bless/internal/invariant"
	"bless/internal/model"
	"bless/internal/obs"
	"bless/internal/profiler"
	"bless/internal/sharing"
	"bless/internal/sim"
)

// DeviceSpec describes one device in the pool. The SM count in Config is the
// device's speed profile: fewer SMs means compute kernels (below their
// saturation point) run proportionally slower.
type DeviceSpec struct {
	// Name labels the device ("gpu0", "a100-3", ...).
	Name string
	// Config is the device simulation config (zero = sim.DefaultConfig).
	Config sim.Config
}

// TenantSpec describes one application tenancy.
type TenantSpec struct {
	// Name uniquely identifies the tenant in the fleet ("t042").
	Name string
	// App is the catalog application the tenant runs.
	App string
	// Quota is the provisioned GPU fraction in (0, 1] on whichever device
	// hosts the tenant.
	Quota float64
	// SLOTarget, when non-zero, is the latency target used for pacing and
	// for the SLO-attainment routing policy.
	SLOTarget sim.Time
}

// ProfileFunc resolves an application and its offline profile for a device
// configuration. The harness passes its process-wide cached resolver; the
// default profiles from scratch per call.
type ProfileFunc func(app string, cfg sim.Config) (*model.App, *profiler.Profile, error)

// Config assembles a fleet.
type Config struct {
	// Seed keys deterministic control-plane decisions (rebalance plans).
	Seed int64
	// Devices is the initial pool.
	Devices []DeviceSpec
	// Runtime tunes every device's BLESS runtime.
	Runtime core.Options
	// Policy selects the routing policy (default PolicyLeastLoaded).
	Policy Policy
	// Profile resolves per-device-class profiles (default: profile from
	// scratch, uncached).
	Profile ProfileFunc
	// Checker, when set, receives every fleet-level event for invariant
	// verification (no lost/duplicated requests, fleet-wide quota
	// conservation, device capacity).
	Checker *invariant.FleetChecker
	// Rebalance enables the periodic rebalancer (nil = disabled).
	Rebalance *RebalanceConfig
	// Autoscale enables the autoscaler (nil = disabled). Requires Rebalance
	// (the control loop ticks on its interval).
	Autoscale *AutoscaleConfig
	// OnComplete observes every completed request with its owning tenant.
	OnComplete func(tenant string, r *sharing.Request)
}

// Stats counts control-plane activity over the fleet's lifetime.
type Stats struct {
	Admitted            int
	AdmitRejected       int
	Routed              int64
	Completed           int64
	Failed              int64
	Migrations          int
	MigrationsCompleted int
	MigrationsRejected  int
	Rebalances          int
	ScaleUps            int
	ScaleDowns          int
	DeviceCrashes       int
	Resubmitted         int64
	Evicted             int
	LostToEviction      int
	Epochs              int64
}

// residency is one tenant's presence on one device: a device-local client
// plus the fleet-side accounting mirrored from the runtime's lifecycle.
type residency struct {
	t        *tenant
	dev      *device
	local    int // device-local client ID
	quota    float64
	mem      int64 // placement-time memory estimate
	prof     *profiler.Profile
	client   *sharing.Client
	draining bool // migration source: no new requests, backlog finishing
	pending  int  // requests routed here and not yet completed
}

// tenant is the fleet-side tenant state.
type tenant struct {
	spec    TenantSpec
	host    *residency   // routing target for new requests
	drains  []*residency // migration sources still finishing their backlog
	evicted bool         // no capacity after a crash; tenant is gone
	nextSeq int
	pending map[int]*residency // outstanding seq -> residency it ran on

	completed  int
	failed     int
	order      []int // completion order of seqs (the digest substrate)
	latencySum sim.Time
	migrations int
}

// device is one pool member: a simulated GPU, its BLESS runtime, and the
// obs-backed load registry the routing policies read.
type device struct {
	id       int
	spec     DeviceSpec
	cfg      sim.Config
	gpu      *sim.GPU
	env      *sharing.Env
	rt       *core.Runtime
	bus      *obs.Bus
	reg      *obs.Registry
	slo      *obs.SLOTracker
	deployed bool // core.Runtime deploys with its first resident
	retired  bool // cordoned by the autoscaler: no new placements
	dead     bool // crashed

	nextLocal int
	residents map[int]*residency // local ID -> residency (live and draining)
	quota     float64            // subscribed quota, draining residents included
	mem       int64              // subscribed memory estimate
	inflight  int
	completed int64
	failed    int64
	sloOK     int64
	sloMiss   int64
}

// Fleet is a running control plane. Not safe for concurrent use; like the
// engine it drives, a fleet is single-threaded within one simulation.
type Fleet struct {
	eng     *sim.Engine
	cfg     Config
	policy  Policy
	profile ProfileFunc
	checker *invariant.FleetChecker

	devices []*device
	tenants map[string]*tenant
	names   []string // admission order, for deterministic iteration

	moves      []move // migration triggers collected this instant
	movesArmed bool

	epoch          int64
	shortfallTicks int
	churned        bool // crash since last tick: rebalance regardless

	arena sharing.RequestArena // chunked request allocation (never recycled)
	stats Stats
}

// New assembles the pool and its per-device runtimes on the given engine.
func New(eng *sim.Engine, cfg Config) (*Fleet, error) {
	if eng == nil {
		return nil, fmt.Errorf("fleet: nil engine")
	}
	if len(cfg.Devices) == 0 {
		return nil, fmt.Errorf("fleet: need at least one device")
	}
	if cfg.Autoscale != nil && cfg.Rebalance == nil {
		return nil, fmt.Errorf("fleet: Autoscale requires Rebalance (the control loop ticks on its interval)")
	}
	f := &Fleet{
		eng:     eng,
		cfg:     cfg,
		policy:  cfg.Policy,
		profile: cfg.Profile,
		checker: cfg.Checker,
		tenants: make(map[string]*tenant),
	}
	if f.policy == "" {
		f.policy = PolicyLeastLoaded
	}
	if _, err := policyRank(f.policy); err != nil {
		return nil, err
	}
	if f.profile == nil {
		f.profile = func(app string, cfg sim.Config) (*model.App, *profiler.Profile, error) {
			a, err := model.Get(app)
			if err != nil {
				return nil, nil, err
			}
			p, err := profiler.ProfileApp(a, profiler.Options{Config: cfg})
			if err != nil {
				return nil, nil, err
			}
			return a, p, nil
		}
	}
	for _, spec := range cfg.Devices {
		if _, err := f.AddDevice(spec); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// AddDevice grows the pool by one device and returns its index. The device's
// runtime deploys lazily with its first resident.
func (f *Fleet) AddDevice(spec DeviceSpec) (int, error) {
	cfg := spec.Config
	if cfg.SMs == 0 {
		cfg = sim.DefaultConfig()
	}
	if err := cfg.Validate(); err != nil {
		return 0, fmt.Errorf("fleet: device %q: %w", spec.Name, err)
	}
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("gpu%d", len(f.devices))
	}
	d := &device{
		id:        len(f.devices),
		spec:      spec,
		cfg:       cfg,
		gpu:       sim.NewGPU(f.eng, cfg),
		rt:        core.New(f.cfg.Runtime),
		bus:       obs.NewBus(),
		reg:       obs.NewRegistry(),
		slo:       obs.NewSLOTracker(),
		residents: make(map[int]*residency),
	}
	d.env = &sharing.Env{Eng: f.eng, GPU: d.gpu}
	// The obs signals are the device's load registry: request counters and
	// the latency histogram stream in from the runtime's decision bus.
	reg := d.reg
	d.bus.Subscribe(obs.SubscriberFunc(func(ev obs.Event) {
		switch ev.Kind {
		case obs.KindRequestAdmitted:
			reg.Counter("requests/admitted_total").Inc()
		case obs.KindRequestDone:
			if ev.Reason == "failed" {
				reg.Counter("requests/failed_total").Inc()
			} else {
				reg.Counter("requests/completed_total").Inc()
				reg.Histogram("latency/request_ns").Observe(ev.Actual)
			}
		case obs.KindClientJoin:
			reg.Counter("clients/joined_total").Inc()
		case obs.KindClientLeave:
			reg.Counter("clients/left_total").Inc()
		case obs.KindClientCrash:
			reg.Counter("clients/crashed_total").Inc()
		}
	}))
	d.rt.Observe(d.bus)
	dev := d
	d.env.OnComplete = func(r *sharing.Request) { f.completed(dev, r) }
	f.devices = append(f.devices, d)
	if f.checker != nil {
		f.checker.DeviceAdded(f.eng.Now(), d.id, cfg.SMs)
	}
	return d.id, nil
}

// Admit places a new tenant on the device the routing policy picks and
// starts it. Admission fails when no live device passes the §4.2.2 placement
// check for the tenant.
func (f *Fleet) Admit(spec TenantSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("fleet: tenant needs a name")
	}
	if _, ok := f.tenants[spec.Name]; ok {
		return fmt.Errorf("fleet: tenant %q already admitted", spec.Name)
	}
	if spec.Quota <= 0 || spec.Quota > 1 {
		return fmt.Errorf("fleet: tenant %q quota %g outside (0,1]", spec.Name, spec.Quota)
	}
	t := &tenant{spec: spec, pending: make(map[int]*residency)}
	dev, err := f.route(t, -1)
	if err != nil {
		f.stats.AdmitRejected++
		return fmt.Errorf("fleet: admitting %q: %w", spec.Name, err)
	}
	res, err := f.place(t, dev)
	if err != nil {
		f.stats.AdmitRejected++
		return fmt.Errorf("fleet: admitting %q: %w", spec.Name, err)
	}
	t.host = res
	f.tenants[spec.Name] = t
	f.names = append(f.names, spec.Name)
	f.stats.Admitted++
	return nil
}

// place creates a residency for the tenant on the device: the device-class
// profile is resolved, the local client built on the next dense slot, and
// the runtime deployed (first resident) or joined mid-run (sharing.Dynamic).
func (f *Fleet) place(t *tenant, dev *device) (*residency, error) {
	app, prof, err := f.profile(t.spec.App, dev.cfg)
	if err != nil {
		return nil, err
	}
	c := &sharing.Client{
		ID:        dev.nextLocal,
		App:       app,
		Profile:   prof,
		Quota:     t.spec.Quota,
		SLOTarget: t.spec.SLOTarget,
	}
	if !dev.deployed {
		dev.env.Clients = []*sharing.Client{c}
		if err := dev.rt.Deploy(dev.env); err != nil {
			dev.env.Clients = nil
			return nil, fmt.Errorf("device %s: %w", dev.spec.Name, err)
		}
		dev.deployed = true
	} else {
		if err := dev.rt.AddClient(c); err != nil {
			return nil, fmt.Errorf("device %s: %w", dev.spec.Name, err)
		}
	}
	lim := profiler.DefaultAdmissionLimits()
	res := &residency{
		t:      t,
		dev:    dev,
		local:  c.ID,
		quota:  t.spec.Quota,
		mem:    prof.MemoryBytes + int64(lim.ContextsPerClient)*dev.cfg.ContextMemBytes,
		prof:   prof,
		client: c,
	}
	dev.nextLocal++
	dev.residents[res.local] = res
	dev.quota += res.quota
	dev.mem += res.mem
	dev.slo.SetTarget(t.spec.Name, t.spec.SLOTarget)
	if f.checker != nil {
		f.checker.TenantAdmitted(f.eng.Now(), t.spec.Name, dev.id, res.quota)
	}
	return res, nil
}

// Submit routes the tenant's next request to its current host device at the
// current virtual time and returns the request handle.
func (f *Fleet) Submit(name string) (*sharing.Request, error) {
	t, ok := f.tenants[name]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown tenant %q", name)
	}
	if t.evicted {
		return nil, fmt.Errorf("fleet: tenant %q was evicted", name)
	}
	seq := t.nextSeq
	t.nextSeq++
	res := t.host
	r := f.arena.New(res.client, seq, f.eng.Now())
	res.dev.rt.Submit(r)
	t.pending[seq] = res
	res.pending++
	res.dev.inflight++
	f.stats.Routed++
	if f.checker != nil {
		f.checker.RequestRouted(f.eng.Now(), name, seq, res.dev.id)
	}
	return r, nil
}

// completed is every device's env.OnComplete: it settles the fleet-side
// request accounting, feeds the SLO tracker, detects drained migration
// sources, and drives the caller's observer.
func (f *Fleet) completed(dev *device, r *sharing.Request) {
	res, ok := dev.residents[r.Client.ID]
	if !ok {
		return // completion for an already-released residency: impossible by construction
	}
	t := res.t
	delete(t.pending, r.Seq)
	res.pending--
	dev.inflight--
	lat := r.Latency()
	if r.Failed {
		t.failed++
		dev.failed++
		f.stats.Failed++
	} else {
		t.completed++
		dev.completed++
		f.stats.Completed++
		t.latencySum += lat
	}
	if t.spec.SLOTarget > 0 {
		if !r.Failed && lat <= t.spec.SLOTarget {
			dev.sloOK++
		} else {
			dev.sloMiss++
		}
	}
	dev.slo.Observe(t.spec.Name, t.spec.SLOTarget, lat, r.Failed)
	t.order = append(t.order, r.Seq)
	if f.checker != nil {
		f.checker.RequestCompleted(f.eng.Now(), t.spec.Name, r.Seq, dev.id, r.Failed)
	}
	if res.draining && res.pending == 0 {
		f.finishDrain(res)
	}
	if f.cfg.OnComplete != nil {
		f.cfg.OnComplete(t.spec.Name, r)
	}
}

// finishDrain retires a migration-source residency whose backlog has
// finished: the runtime has released the client (graceful-leave semantics),
// so the fleet-side subscription drops with it.
func (f *Fleet) finishDrain(res *residency) {
	dev, t := res.dev, res.t
	delete(dev.residents, res.local)
	dev.quota -= res.quota
	dev.mem -= res.mem
	for i, d := range t.drains {
		if d == res {
			t.drains = append(t.drains[:i], t.drains[i+1:]...)
			break
		}
	}
	f.stats.MigrationsCompleted++
	if f.checker != nil {
		f.checker.TenantReleased(f.eng.Now(), t.spec.Name, dev.id)
	}
}

// Stats returns the control-plane counters.
func (f *Fleet) Stats() Stats { return f.stats }

// Devices returns the pool size, retired and crashed devices included.
func (f *Fleet) Devices() int { return len(f.devices) }

// Engine returns the shared simulation engine.
func (f *Fleet) Engine() *sim.Engine { return f.eng }

// TenantResult is one tenant's final outcome.
type TenantResult struct {
	Name       string
	App        string
	Quota      float64
	Device     int // final host (-1 if evicted)
	Completed  int
	Failed     int
	MeanLat    sim.Time
	Migrations int
	Evicted    bool
}

// Results returns every tenant's outcome in admission order.
func (f *Fleet) Results() []TenantResult {
	out := make([]TenantResult, 0, len(f.names))
	for _, name := range f.names {
		t := f.tenants[name]
		tr := TenantResult{
			Name:       name,
			App:        t.spec.App,
			Quota:      t.spec.Quota,
			Device:     -1,
			Completed:  t.completed,
			Failed:     t.failed,
			Migrations: t.migrations,
			Evicted:    t.evicted,
		}
		if !t.evicted && t.host != nil {
			tr.Device = t.host.dev.id
		}
		if t.completed > 0 {
			tr.MeanLat = t.latencySum / sim.Time(t.completed)
		}
		out = append(out, tr)
	}
	return out
}

// CompletionDigest folds every tenant's outcome — app, completion order,
// failure count, eviction — into one timing-free FNV-1a digest. Two runs of
// the same scenario must match bit-for-bit regardless of execution mode
// (serial vs parallel workers) or of the order same-instant migration
// triggers arrived in.
func (f *Fleet) CompletionDigest() uint64 {
	h := fnv.New64a()
	names := append([]string(nil), f.names...)
	sort.Strings(names)
	var buf [8]byte
	wInt := func(v int) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, name := range names {
		t := f.tenants[name]
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write([]byte(t.spec.App))
		h.Write([]byte{0})
		wInt(t.completed)
		wInt(t.failed)
		wInt(t.migrations)
		if t.evicted {
			wInt(1)
		} else {
			wInt(0)
		}
		wInt(len(t.order))
		for _, seq := range t.order {
			wInt(seq)
		}
	}
	return h.Sum64()
}
