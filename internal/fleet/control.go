package fleet

import (
	"fmt"
	"sort"

	"bless/internal/sim"
)

// The control loop ticks on the rebalance interval. Every tick is an epoch:
// the fleet snapshots itself and derives all decisions — scale-up,
// scale-down, rebalance moves — as pure functions of (seed, epoch,
// snapshot). Nothing reads wall clocks or map order, so two runs of the
// same scenario (serial, parallel workers, permuted trigger order) tick
// through identical epochs and produce bit-identical digests.

// RebalanceConfig tunes the fleet rebalancer.
type RebalanceConfig struct {
	// Interval is the control-loop period (default 10ms virtual).
	Interval sim.Time
	// Threshold is the normalized quota-subscription spread (max - min
	// across live devices) that counts as a shortfall tick (default 0.25).
	Threshold float64
	// SustainTicks is how many consecutive shortfall ticks arm a rebalance
	// — "sustained quota shortfall", not a transient (default 2). Churn (a
	// device crash) arms the next tick unconditionally.
	SustainTicks int
	// MaxMoves bounds migrations per epoch (default 4).
	MaxMoves int
}

func (c *RebalanceConfig) interval() sim.Time {
	if c.Interval > 0 {
		return c.Interval
	}
	return 10 * sim.Millisecond
}

func (c *RebalanceConfig) threshold() float64 {
	if c.Threshold > 0 {
		return c.Threshold
	}
	return 0.25
}

func (c *RebalanceConfig) sustain() int {
	if c.SustainTicks > 0 {
		return c.SustainTicks
	}
	return 2
}

func (c *RebalanceConfig) maxMoves() int {
	if c.MaxMoves > 0 {
		return c.MaxMoves
	}
	return 4
}

// AutoscaleConfig tunes the autoscaler.
type AutoscaleConfig struct {
	// Template is the device class new devices are cloned from.
	Template DeviceSpec
	// Min and Max bound the live (non-retired, non-dead) device count.
	Min, Max int
	// HighWatermark: mean quota subscription across live devices above
	// which the pool grows (default 0.85).
	HighWatermark float64
	// LowWatermark: mean subscription below which an empty device is
	// retired (default 0.30).
	LowWatermark float64
}

func (c *AutoscaleConfig) high() float64 {
	if c.HighWatermark > 0 {
		return c.HighWatermark
	}
	return 0.85
}

func (c *AutoscaleConfig) low() float64 {
	if c.LowWatermark > 0 {
		return c.LowWatermark
	}
	return 0.30
}

// Start arms the control loop: one tick per rebalance interval up to the
// horizon. Without a Rebalance config it is a no-op.
func (f *Fleet) Start(horizon sim.Time) {
	if f.cfg.Rebalance == nil {
		return
	}
	iv := f.cfg.Rebalance.interval()
	for at := iv; at <= horizon; at += iv {
		f.ctrl.Schedule(at, func() { f.tick() })
	}
}

// tick is one control-loop epoch.
func (f *Fleet) tick() {
	f.epoch++
	f.stats.Epochs++
	snap := f.Snapshot()

	if f.cfg.Autoscale != nil {
		f.autoscale(snap)
		// Scaling changed the pool; plan the epoch's moves on fresh state.
		snap = f.Snapshot()
	}

	rc := f.cfg.Rebalance
	if spread(snap) > rc.threshold() {
		f.shortfallTicks++
	} else {
		f.shortfallTicks = 0
	}
	if f.shortfallTicks < rc.sustain() && !f.churned {
		return
	}
	f.churned = false
	f.shortfallTicks = 0
	plan := planRebalance(f.cfg.Seed, f.epoch, snap, rc.threshold(), rc.maxMoves())
	if len(plan) == 0 {
		return
	}
	f.stats.Rebalances++
	for _, m := range plan {
		// Individual moves may no longer apply (tenant drained elsewhere,
		// capacity taken); applyMoves re-validates each.
		if err := f.Migrate(m.tenant, m.target); err != nil {
			f.stats.MigrationsRejected++
		}
	}
}

// autoscale grows the pool past the high watermark and retires idle devices
// below the low one. Scale-down is cordon-then-migrate: the device stops
// receiving placements and its tenants are moved off through the ordinary
// migration path, so capacity leaves the pool without dropping a request.
func (f *Fleet) autoscale(snap Snapshot) {
	ac := f.cfg.Autoscale
	live, total := 0, 0.0
	for _, d := range snap.Devices {
		if d.Dead || d.Retired {
			continue
		}
		live++
		total += d.QuotaSubscribed
	}
	if live == 0 {
		return
	}
	mean := total / float64(live)
	if mean > ac.high() && (ac.Max <= 0 || live < ac.Max) {
		spec := ac.Template
		if spec.Config.SMs == 0 {
			spec.Config = sim.DefaultConfig()
		}
		spec.Name = fmt.Sprintf("%s-as%d", nonEmpty(spec.Name, "gpu"), len(f.devices))
		if _, err := f.AddDevice(spec); err == nil {
			f.stats.ScaleUps++
			f.churned = true // rebalance onto the new capacity promptly
		}
		return
	}
	if mean < ac.low() && live > max(ac.Min, 1) {
		// Retire the emptiest cordon-able device: lowest subscription,
		// lowest index on ties. Only fully idle devices retire outright;
		// others are cordoned and drained by migration over later epochs.
		victim := -1
		best := 2.0
		for _, d := range snap.Devices {
			if d.Dead || d.Retired {
				continue
			}
			if d.QuotaSubscribed < best {
				best = d.QuotaSubscribed
				victim = d.Device
			}
		}
		if victim < 0 {
			return
		}
		d := f.devices[victim]
		d.retired = true
		f.stats.ScaleDowns++
		if f.checker != nil {
			f.checker.DeviceRetired(f.now(), victim)
		}
		// Move its tenants off through the canonical migration path.
		var names []string
		for local := 0; local < d.nextLocal; local++ {
			if res, ok := d.residents[local]; ok && !res.draining {
				names = append(names, res.t.spec.Name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			t := f.tenants[name]
			if dev, err := f.route(t, victim); err == nil {
				if err := f.Migrate(name, dev.id); err != nil {
					f.stats.MigrationsRejected++
				}
			}
		}
	}
}

// spread is the quota-subscription imbalance across live devices.
func spread(snap Snapshot) float64 {
	lo, hi := 2.0, -1.0
	for _, d := range snap.Devices {
		if d.Dead || d.Retired {
			continue
		}
		if d.QuotaSubscribed < lo {
			lo = d.QuotaSubscribed
		}
		if d.QuotaSubscribed > hi {
			hi = d.QuotaSubscribed
		}
	}
	if hi < 0 {
		return 0
	}
	return hi - lo
}

// planRebalance derives the epoch's migration plan purely from (seed,
// epoch, snapshot): repeatedly move a tenant from the most- to the
// least-subscribed live device while the spread exceeds the threshold and
// the move shrinks it. Candidate selection sorts by quota (biggest first),
// tie-broken by a seeded hash of (seed, epoch, tenant) then name — the
// deterministic derivation that keeps every execution mode bit-identical.
func planRebalance(seed, epoch int64, snap Snapshot, threshold float64, maxMoves int) []move {
	// Working copies of live-device subscriptions and tenant placement.
	type devState struct {
		id    int
		quota float64
	}
	var devs []devState
	idx := make(map[int]int)
	for _, d := range snap.Devices {
		if d.Dead || d.Retired {
			continue
		}
		idx[d.Device] = len(devs)
		devs = append(devs, devState{id: d.Device, quota: d.QuotaSubscribed})
	}
	if len(devs) < 2 {
		return nil
	}
	// Movable tenants per device: settled (not draining, not evicted).
	byDev := make(map[int][]TenantPlacement)
	moved := make(map[string]bool)
	for _, t := range snap.Tenants {
		if t.Evicted || t.Device < 0 || len(t.Draining) > 0 {
			continue
		}
		byDev[t.Device] = append(byDev[t.Device], t)
	}
	var plan []move
	for len(plan) < maxMoves {
		src, dst := 0, 0
		for i, d := range devs {
			if d.quota > devs[src].quota {
				src = i
			}
			if d.quota < devs[dst].quota {
				dst = i
			}
		}
		gap := devs[src].quota - devs[dst].quota
		if gap <= threshold {
			break
		}
		cands := byDev[devs[src].id]
		best := -1
		for i, c := range cands {
			if moved[c.Name] {
				continue
			}
			// The move must fit the target and shrink the gap.
			if devs[dst].quota+c.Quota > 1+quotaTolerance || c.Quota >= gap {
				continue
			}
			if best < 0 || rebalanceLess(seed, epoch, c, cands[best]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		c := cands[best]
		moved[c.Name] = true
		plan = append(plan, move{tenant: c.Name, target: devs[dst].id, reason: "rebalance"})
		devs[src].quota -= c.Quota
		devs[dst].quota += c.Quota
	}
	sort.Slice(plan, func(i, j int) bool { return plan[i].tenant < plan[j].tenant })
	return plan
}

// rebalanceLess orders rebalance candidates: biggest quota first (fewest
// moves close the gap fastest), then the seeded hash, then the name.
func rebalanceLess(seed, epoch int64, a, b TenantPlacement) bool {
	if a.Quota != b.Quota {
		return a.Quota > b.Quota
	}
	ha, hb := mixHash(seed, epoch, a.Name), mixHash(seed, epoch, b.Name)
	if ha != hb {
		return ha < hb
	}
	return a.Name < b.Name
}

// mixHash is splitmix64 over (seed, epoch, name) — the pure decision key.
func mixHash(seed, epoch int64, name string) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(epoch)
	for i := 0; i < len(name); i++ {
		x ^= uint64(name[i])
		x *= 0xff51afd7ed558ccd
	}
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func nonEmpty(s, fallback string) string {
	if s != "" {
		return s
	}
	return fallback
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
