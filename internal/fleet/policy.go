package fleet

import (
	"fmt"

	"bless/internal/profiler"
	"bless/internal/sim"
)

// Policy names a routing policy: how the control plane picks a host among
// the devices that pass the §4.2.2 placement check.
type Policy string

const (
	// PolicyLeastLoaded routes to the device with the lowest subscribed
	// quota per SM — normalizing by SM count so a half-subscribed 60-SM
	// device is "fuller" than a half-subscribed 108-SM one.
	PolicyLeastLoaded Policy = "least-loaded"
	// PolicyQuotaHeadroom routes to the device with the most absolute quota
	// headroom (1 - subscribed), packing tenants where the §6.2 guarantee
	// has the most slack.
	PolicyQuotaHeadroom Policy = "quota-headroom"
	// PolicySLO routes to the device with the best observed SLO attainment,
	// falling back to least-loaded while a device has no observations.
	PolicySLO Policy = "slo-attainment"
)

// policyRank returns the scoring function for a policy; lower scores win,
// device index breaks ties so ranking is total and deterministic.
func policyRank(p Policy) (func(d *device) float64, error) {
	switch p {
	case PolicyLeastLoaded:
		return func(d *device) float64 { return d.quota * 108.0 / float64(d.cfg.SMs) }, nil
	case PolicyQuotaHeadroom:
		return func(d *device) float64 { return -(1 - d.quota) }, nil
	case PolicySLO:
		return func(d *device) float64 {
			n := d.sloOK + d.sloMiss
			if n == 0 {
				// No signal yet: fall back to normalized load, offset so
				// observed devices with decent attainment still win.
				return d.quota * 108.0 / float64(d.cfg.SMs)
			}
			return -(float64(d.sloOK) / float64(n))
		}, nil
	default:
		return nil, fmt.Errorf("fleet: unknown policy %q (have %q, %q, %q)",
			p, PolicyLeastLoaded, PolicyQuotaHeadroom, PolicySLO)
	}
}

// fits is the §4.2.2 placement check against live state: quota headroom on
// the device (draining residents still count — their provisioning only
// releases when the backlog finishes) and the profiler's co-location
// admission check (aggregate memory with per-client context reserves,
// kernel-duration and starvation limits) over the residents plus the
// candidate.
func (f *Fleet) fits(t *tenant, dev *device) error {
	if dev.dead {
		return fmt.Errorf("device %s crashed", dev.spec.Name)
	}
	if dev.retired {
		return fmt.Errorf("device %s is cordoned", dev.spec.Name)
	}
	if dev.quota+t.spec.Quota > 1+quotaTolerance {
		return fmt.Errorf("device %s: quota %0.2f + %0.2f exceeds capacity", dev.spec.Name, dev.quota, t.spec.Quota)
	}
	_, prof, err := f.profile(t.spec.App, dev.cfg)
	if err != nil {
		return err
	}
	profiles := make([]*profiler.Profile, 0, len(dev.residents)+1)
	for local := 0; local < dev.nextLocal; local++ {
		if res, ok := dev.residents[local]; ok {
			profiles = append(profiles, res.prof)
		}
	}
	profiles = append(profiles, prof)
	return profiler.CheckColocation(profiles, dev.cfg, profiler.DefaultAdmissionLimits())
}

const quotaTolerance = 1e-9

// route picks the host for a tenant: among live devices passing fits, the
// policy's best-ranked one. exclude skips a device index (-1 for none) —
// the crash path uses it defensively.
func (f *Fleet) route(t *tenant, exclude int) (*device, error) {
	rank, err := policyRank(f.policy)
	if err != nil {
		return nil, err
	}
	var best *device
	var bestScore float64
	var lastErr error
	for _, d := range f.devices {
		if d.id == exclude {
			continue
		}
		if err := f.fits(t, d); err != nil {
			lastErr = err
			continue
		}
		if s := rank(d); best == nil || s < bestScore {
			best, bestScore = d, s
		}
	}
	if best == nil {
		if lastErr == nil {
			lastErr = fmt.Errorf("no devices in pool")
		}
		return nil, fmt.Errorf("no device fits: %w", lastErr)
	}
	return best, nil
}

// DeviceLoad is one device's live load view — the registry the routing
// policies and the rebalancer read, snapshotted.
type DeviceLoad struct {
	Device          int
	Name            string
	SMs             int
	MemoryBytes     int64
	Retired         bool
	Dead            bool
	Tenants         int // live (routable) residents
	Draining        int // migration sources finishing their backlog
	QuotaSubscribed float64
	MemSubscribed   int64
	Inflight        int
	Completed       int64
	Failed          int64
	Attainment      float64 // SLO attainment observed on this device (1 when unobserved)
	Utilization     float64 // average SM utilization up to now
}

// TenantPlacement is one tenant's placement view.
type TenantPlacement struct {
	Name       string
	App        string
	Quota      float64
	Device     int   // current host (-1 if evicted)
	Draining   []int // devices still finishing this tenant's pre-migration backlog
	Pending    int   // outstanding requests
	Migrations int
	Evicted    bool
}

// Snapshot is the fleet state at one instant: what the rebalancer plans
// from and what /debug/bless/fleet serves.
type Snapshot struct {
	At      sim.Time
	Epoch   int64
	Devices []DeviceLoad
	Tenants []TenantPlacement // admission order
}

// Snapshot captures the current fleet state.
func (f *Fleet) Snapshot() Snapshot {
	s := Snapshot{At: f.now(), Epoch: f.epoch}
	for _, d := range f.devices {
		live, draining := 0, 0
		for local := 0; local < d.nextLocal; local++ {
			res, ok := d.residents[local]
			if !ok {
				continue
			}
			if res.draining {
				draining++
			} else {
				live++
			}
		}
		att := 1.0
		if n := d.sloOK + d.sloMiss; n > 0 {
			att = float64(d.sloOK) / float64(n)
		}
		s.Devices = append(s.Devices, DeviceLoad{
			Device:          d.id,
			Name:            d.spec.Name,
			SMs:             d.cfg.SMs,
			MemoryBytes:     d.cfg.MemoryBytes,
			Retired:         d.retired,
			Dead:            d.dead,
			Tenants:         live,
			Draining:        draining,
			QuotaSubscribed: d.quota,
			MemSubscribed:   d.mem,
			Inflight:        d.inflight,
			Completed:       d.completed,
			Failed:          d.failed,
			Attainment:      att,
			Utilization:     d.gpu.Utilization(),
		})
	}
	for _, name := range f.names {
		t := f.tenants[name]
		tp := TenantPlacement{
			Name:       name,
			App:        t.spec.App,
			Quota:      t.spec.Quota,
			Device:     -1,
			Pending:    len(t.pending),
			Migrations: t.migrations,
			Evicted:    t.evicted,
		}
		if !t.evicted && t.host != nil {
			tp.Device = t.host.dev.id
		}
		for _, res := range t.drains {
			tp.Draining = append(tp.Draining, res.dev.id)
		}
		s.Tenants = append(s.Tenants, tp)
	}
	return s
}

// DeviceClass builds a device spec from the default A100 config with the SM
// count and memory overridden — the pool heterogeneity helper.
func DeviceClass(name string, sms int, memoryBytes int64) DeviceSpec {
	cfg := sim.DefaultConfig()
	cfg.SMs = sms
	cfg.MemoryBytes = memoryBytes
	return DeviceSpec{Name: name, Config: cfg}
}
