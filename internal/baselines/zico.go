package baselines

import (
	"fmt"

	"bless/internal/sharing"
	"bless/internal/sim"
)

// Zico models ZICO (Lim et al., ATC '21; §6.1): two training jobs share the
// GPU unboundedly, but iteration starts are coordinated tick-tock so the
// forward pass of one job overlaps the backward pass of the other, bounding
// the combined memory footprint. A job's next iteration may begin only once
// its peer's in-flight iteration has passed its midpoint (the
// forward/backward boundary). The coordination leaves bubbles whenever the
// phases drift (Fig 18b) — which BLESS's squad scheduling can reclaim.
type Zico struct {
	env     *sharing.Env
	host    *sim.Host
	clients []*clientQueues

	pending  [][]*sharing.Request
	inflight []bool
	progress []int
}

// NewZico returns a ZICO scheduler.
func NewZico() *Zico { return &Zico{} }

// Name implements sharing.Scheduler.
func (z *Zico) Name() string { return "ZICO" }

// Deploy implements sharing.Scheduler; ZICO coordinates exactly two training
// jobs.
func (z *Zico) Deploy(env *sharing.Env) error {
	if err := sharing.ValidateDeployment(env, false); err != nil {
		return err
	}
	if len(env.Clients) != 2 {
		return fmt.Errorf("baselines: ZICO coordinates exactly 2 training jobs, got %d", len(env.Clients))
	}
	cqs, err := deployPerClient(env, "zico", func(*sharing.Client) int { return 0 }, false, nil)
	if err != nil {
		return err
	}
	z.env, z.host, z.clients = env, sim.NewHost(env.GPU), cqs
	z.pending = make([][]*sharing.Request, 2)
	z.inflight = make([]bool, 2)
	z.progress = make([]int, 2)
	return nil
}

// Submit implements sharing.Scheduler.
func (z *Zico) Submit(r *sharing.Request) {
	id := r.Client.ID
	z.pending[id] = append(z.pending[id], r)
	z.tryStart(id)
}

// canStart reports whether client id's next iteration may begin: its peer is
// either idle or past the midpoint of its own iteration.
func (z *Zico) canStart(id int) bool {
	if z.inflight[id] || len(z.pending[id]) == 0 {
		return false
	}
	peer := 1 - id
	if !z.inflight[peer] {
		return true
	}
	half := z.clients[peer].c.App.NumKernels() / 2
	return z.progress[peer] >= half
}

// tryStart launches client id's next iteration if coordination allows.
func (z *Zico) tryStart(id int) {
	if !z.canStart(id) {
		return
	}
	r := z.pending[id][0]
	z.pending[id] = z.pending[id][1:]
	z.inflight[id] = true
	z.progress[id] = 0

	app := r.Client.App
	half := app.NumKernels() / 2
	last := app.NumKernels() - 1
	for i := range app.Kernels {
		i := i
		z.host.Launch(z.clients[id].q, &app.Kernels[i], func(sim.Time) {
			z.progress[id]++
			if z.progress[id] == half {
				// Peer's forward pass may now overlap our backward pass.
				z.tryStart(1 - id)
			}
			if i == last {
				z.inflight[id] = false
				z.env.Complete(r)
				z.tryStart(id)
				z.tryStart(1 - id)
			}
		})
	}
}
