package baselines

import (
	"bless/internal/sharing"
	"bless/internal/sim"
)

// Unbound is the UNBOUND scheme (§3.2, §6.1): every client gets an
// unrestricted MPS context (or CUDA stream) and the hardware scheduler
// multiplexes the whole GPU. Utilization is high but kernel execution is
// interfered and uncontrolled: latencies are neither predictable nor aligned
// with quotas (UNBOUND cannot express uneven quota assignments at all — the
// large deviations of Fig 14).
type Unbound struct {
	env     *sharing.Env
	host    *sim.Host
	clients []*clientQueues
	dyn     dynState
}

// NewUnbound returns an UNBOUND scheduler.
func NewUnbound() *Unbound { return &Unbound{} }

// Name implements sharing.Scheduler.
func (u *Unbound) Name() string { return "UNBOUND" }

// Deploy implements sharing.Scheduler.
func (u *Unbound) Deploy(env *sharing.Env) error {
	if err := sharing.ValidateDeployment(env, false); err != nil {
		return err
	}
	cqs, err := deployPerClient(env, "unbound", func(*sharing.Client) int { return 0 }, false, nil)
	if err != nil {
		return err
	}
	u.env, u.host, u.clients = env, sim.NewHost(env.GPU), cqs
	u.dyn.deployed(env.Clients)
	return nil
}

// Submit implements sharing.Scheduler.
func (u *Unbound) Submit(r *sharing.Request) {
	id := r.Client.ID
	if !u.dyn.accepts(id) {
		return
	}
	u.dyn.outstanding[id]++
	launchWholesale(u.env, u.host, u.clients[id], r, func() {
		u.dyn.outstanding[id]--
		if u.dyn.leaving[id] && u.dyn.outstanding[id] == 0 {
			u.retire(id)
		}
	})
}
