package baselines

import (
	"strings"
	"testing"

	"bless/internal/model"
	"bless/internal/profiler"
	"bless/internal/sharing"
	"bless/internal/sim"
)

// testClients builds profiled clients from catalog names with given quotas.
func testClients(t testing.TB, quotas []float64, names ...string) []*sharing.Client {
	t.Helper()
	out := make([]*sharing.Client, len(names))
	for i, n := range names {
		app := model.MustGet(n)
		p, err := profiler.ProfileApp(app, profiler.Options{})
		if err != nil {
			t.Fatalf("profile %s: %v", n, err)
		}
		out[i] = &sharing.Client{ID: i, App: app, Profile: p, Quota: quotas[i]}
	}
	return out
}

func newEnv(clients []*sharing.Client) *sharing.Env {
	eng := sim.NewEngine()
	return &sharing.Env{Eng: eng, GPU: sim.NewGPU(eng, sim.DefaultConfig()), Clients: clients}
}

// runPair deploys the scheduler with two clients, submits one request per
// client at t=0, runs to quiescence and returns the latencies.
func runPair(t *testing.T, s sharing.Scheduler, clients []*sharing.Client) [2]sim.Time {
	t.Helper()
	env := newEnv(clients)
	if err := s.Deploy(env); err != nil {
		t.Fatalf("%s Deploy: %v", s.Name(), err)
	}
	var reqs [2]*sharing.Request
	for i, c := range clients {
		r := &sharing.Request{Client: c, Arrival: 0}
		reqs[i] = r
		env.Eng.Schedule(0, func() { s.Submit(r) })
	}
	env.Eng.Run()
	var lats [2]sim.Time
	for i, r := range reqs {
		if r.Done == 0 {
			t.Fatalf("%s: request %d never completed", s.Name(), i)
		}
		lats[i] = r.Latency()
	}
	return lats
}

func TestAllSchedulersCompleteRequests(t *testing.T) {
	mk := []func() sharing.Scheduler{
		func() sharing.Scheduler { return NewStatic() },
		func() sharing.Scheduler { return NewUnbound() },
		func() sharing.Scheduler { return NewTemporal() },
		func() sharing.Scheduler { return NewGSlice() },
		func() sharing.Scheduler { return NewREEFPlus() },
	}
	for _, f := range mk {
		s := f()
		clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
		lats := runPair(t, s, clients)
		for i, l := range lats {
			if l <= 0 {
				t.Errorf("%s: request %d latency %v", s.Name(), i, l)
			}
		}
	}
}

func TestStaticMatchesISOWhenAlone(t *testing.T) {
	// STATIC with a single client IS the ISO baseline: quota-restricted,
	// isolated execution. Latency must match the profiled T[n%] closely.
	clients := testClients(t, []float64{0.5}, "resnet50")
	env := newEnv(clients)
	s := NewStatic()
	if err := s.Deploy(env); err != nil {
		t.Fatal(err)
	}
	r := &sharing.Request{Client: clients[0], Arrival: 0}
	env.Eng.Schedule(0, func() { s.Submit(r) })
	env.Eng.Run()
	iso := clients[0].Profile.IsoAtQuota(0.5)
	if diff := r.Latency() - iso; diff < -iso/50 || diff > iso/50 {
		t.Errorf("single-client STATIC latency %v, want ISO %v +-2%%", r.Latency(), iso)
	}
}

func TestStaticWastesBubbles(t *testing.T) {
	// Under STATIC, a lone request cannot exceed its quota even though the
	// rest of the GPU is idle — the defining bubble (Fig 3a).
	clients := testClients(t, []float64{1.0 / 3, 2.0 / 3}, "vgg11", "resnet50")
	env := newEnv(clients)
	s := NewStatic()
	if err := s.Deploy(env); err != nil {
		t.Fatal(err)
	}
	r := &sharing.Request{Client: clients[0], Arrival: 0}
	env.Eng.Schedule(0, func() { s.Submit(r) })
	env.Eng.Run()
	fullGPU := clients[0].Profile.Iso[clients[0].Profile.Partitions-1]
	if r.Latency() < fullGPU*3/2 {
		t.Errorf("STATIC lone request latency %v suspiciously close to full-GPU %v: quota not enforced",
			r.Latency(), fullGPU)
	}
}

func TestUnboundLoneRequestUsesWholeGPU(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "resnet50", "vgg11")
	env := newEnv(clients)
	u := NewUnbound()
	if err := u.Deploy(env); err != nil {
		t.Fatal(err)
	}
	r := &sharing.Request{Client: clients[0], Arrival: 0}
	env.Eng.Schedule(0, func() { u.Submit(r) })
	env.Eng.Run()
	fullGPU := clients[0].Profile.Iso[clients[0].Profile.Partitions-1]
	if r.Latency() > fullGPU+fullGPU/10 {
		t.Errorf("UNBOUND lone request latency %v, want near full-GPU %v", r.Latency(), fullGPU)
	}
}

func TestUnboundIgnoresQuotas(t *testing.T) {
	// Identical apps with very different quotas finish together under
	// UNBOUND — it cannot express quotas (Fig 14's deviation).
	clients := testClients(t, []float64{0.2, 0.8}, "resnet50", "resnet50")
	lats := runPair(t, NewUnbound(), clients)
	hi, lo := lats[0], lats[1]
	if hi < lo {
		hi, lo = lo, hi
	}
	if float64(hi)/float64(lo) > 1.1 {
		t.Errorf("UNBOUND latencies %v vs %v differ by >10%% despite identical apps", lats[0], lats[1])
	}
}

func TestTemporalSlowerThanSpatial(t *testing.T) {
	// Serializing two always-busy clients through time slices must be slower
	// on average than letting them share spatially.
	ct := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	tLats := runPair(t, NewTemporal(), ct)
	cs := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	sLats := runPair(t, NewStatic(), cs)
	tAvg := (tLats[0] + tLats[1]) / 2
	sAvg := (sLats[0] + sLats[1]) / 2
	if tAvg <= sAvg {
		t.Errorf("TEMPORAL avg %v not slower than STATIC avg %v", tAvg, sAvg)
	}
}

func TestTemporalQuotaProportionalSlices(t *testing.T) {
	// With a higher quota, the same app completes sooner under TEMPORAL.
	clients := testClients(t, []float64{0.25, 0.75}, "resnet50", "resnet50")
	lats := runPair(t, NewTemporal(), clients)
	if lats[1] >= lats[0] {
		t.Errorf("TEMPORAL: 75%%-quota client (%v) not faster than 25%%-quota client (%v)", lats[1], lats[0])
	}
}

func TestMIGRejectsInexpressibleQuota(t *testing.T) {
	clients := testClients(t, []float64{0.05, 0.5}, "vgg11", "resnet50")
	env := newEnv(clients)
	err := NewMIG().Deploy(env)
	if err == nil || !strings.Contains(err.Error(), "cannot express") {
		t.Errorf("MIG accepted a 5%% quota: err=%v", err)
	}
}

func TestMIGSupportedAndSlicing(t *testing.T) {
	if MIGSupported(0.1) {
		t.Error("quota 0.1 reported MIG-expressible")
	}
	if !MIGSupported(0.5) {
		t.Error("quota 0.5 reported inexpressible")
	}
	// 0.5 floors to 3 slices of 7.
	if got := MIGQuotaSMs(0.5, 108); got != 108*3/7 {
		t.Errorf("MIGQuotaSMs(0.5) = %d, want %d", got, 108*3/7)
	}
	if got := MIGQuotaSMs(1.0, 108); got != 108 {
		t.Errorf("MIGQuotaSMs(1.0) = %d, want 108", got)
	}
}

func TestMIGIsolationCoarseness(t *testing.T) {
	// MIG rounds 50% down to 3/7: slower than a true 50% MPS partition.
	cm := testClients(t, []float64{0.5, 0.5}, "resnet50", "resnet50")
	mLats := runPair(t, NewMIG(), cm)
	cs := testClients(t, []float64{0.5, 0.5}, "resnet50", "resnet50")
	sLats := runPair(t, NewStatic(), cs)
	if (mLats[0]+mLats[1])/2 <= (sLats[0]+sLats[1])/2 {
		t.Errorf("MIG avg %v not slower than STATIC avg %v despite coarser slices",
			(mLats[0]+mLats[1])/2, (sLats[0]+sLats[1])/2)
	}
}

func TestGSliceAdaptationLendsIdleSMs(t *testing.T) {
	// Client 1 stays idle; after an adaptation period, client 0's repeated
	// requests should run faster than its bare quota would allow.
	clients := testClients(t, []float64{0.5, 0.5}, "resnet50", "vgg11")
	env := newEnv(clients)
	g := NewGSlice()
	if err := g.Deploy(env); err != nil {
		t.Fatal(err)
	}
	// Burst of 12 requests at t=0: the backlog keeps client 0 busy well past
	// the idle-grace period of the always-idle client 1, whose SMs are then
	// lent out.
	var last *sharing.Request
	for i := 0; i < 12; i++ {
		r := &sharing.Request{Client: clients[0], Seq: i, Arrival: 0}
		env.Eng.Schedule(0, func() { g.Submit(r) })
		last = r
	}
	env.Eng.Run()
	// At the bare 50% quota the burst would take 12 x 13.9ms = 167ms;
	// lending begins after the ~60ms grace and must finish it clearly
	// sooner.
	iso := clients[0].Profile.IsoAtQuota(0.5)
	bare := 12 * iso
	if last.Done >= bare-bare/8 {
		t.Errorf("GSLICE burst makespan %v not meaningfully below bare-quota %v: adaptation not lending SMs",
			last.Done, bare)
	}
}

func TestGSliceWithoutAdaptationMatchesStatic(t *testing.T) {
	c1 := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	g := NewGSlice()
	g.DisableAdaptation = true
	gl := runPair(t, g, c1)
	c2 := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	sl := runPair(t, NewStatic(), c2)
	for i := range gl {
		if gl[i] != sl[i] {
			t.Errorf("frozen GSLICE latency %v != STATIC %v for client %d", gl[i], sl[i], i)
		}
	}
}

func TestREEFIgnoresQuotasEvenPartitioning(t *testing.T) {
	// REEF+ partitions the GPU evenly regardless of quota (the paper's MPS
	// replacement for kernel padding), with dispatch priority for the RT
	// client. Two identical apps with very different quotas therefore land
	// close together — the quota inflexibility behind its Fig 14 deviation.
	clients := testClients(t, []float64{0.7, 0.3}, "resnet50", "resnet50")
	rp := NewREEFPlus()
	lats := runPair(t, rp, clients)
	if rp.RTClient() != 0 {
		t.Fatalf("RT client = %d, want 0 (highest quota)", rp.RTClient())
	}
	if lats[0] > lats[1] {
		t.Errorf("REEF+ RT latency %v above BE latency %v", lats[0], lats[1])
	}
	// Both run on even 54-SM partitions: near the 50%-quota ISO, far from
	// what a 70/30 split would produce.
	isoHalf := clients[0].Profile.IsoAtQuota(0.5)
	for i, l := range lats {
		if l > isoHalf+isoHalf/4 {
			t.Errorf("REEF+ client %d latency %v far above even-partition ISO %v", i, l, isoHalf)
		}
	}
}

func TestZicoCoordinatesIterations(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "resnet50-train", "vgg11-train")
	env := newEnv(clients)
	z := NewZico()
	if err := z.Deploy(env); err != nil {
		t.Fatal(err)
	}
	var reqs []*sharing.Request
	for seq := 0; seq < 3; seq++ {
		for _, c := range clients {
			r := &sharing.Request{Client: c, Seq: seq, Arrival: 0}
			reqs = append(reqs, r)
			env.Eng.Schedule(0, func() { z.Submit(r) })
		}
	}
	env.Eng.Run()
	for _, r := range reqs {
		if r.Done == 0 {
			t.Fatalf("ZICO: %s iteration %d never completed", r.Client.App.Name, r.Seq)
		}
	}
	if !env.GPU.Quiescent() {
		t.Error("device not quiescent after ZICO drain")
	}
}

func TestZicoRequiresTwoClients(t *testing.T) {
	clients := testClients(t, []float64{0.4, 0.3, 0.3}, "vgg11-train", "resnet50-train", "vgg11-train")
	env := newEnv(clients)
	if err := NewZico().Deploy(env); err == nil {
		t.Error("ZICO accepted 3 clients")
	}
}

func TestDeployRejectsOversubscribedMemory(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	eng := sim.NewEngine()
	cfg := sim.DefaultConfig()
	cfg.MemoryBytes = 1 << 30
	env := &sharing.Env{Eng: eng, GPU: sim.NewGPU(eng, cfg), Clients: clients}
	for _, s := range []sharing.Scheduler{NewStatic(), NewUnbound(), NewTemporal(), NewGSlice()} {
		if err := s.Deploy(env); err == nil {
			t.Errorf("%s accepted an over-memory deployment", s.Name())
		}
		// Fresh env per scheduler: partial allocations may have landed.
		eng = sim.NewEngine()
		env = &sharing.Env{Eng: eng, GPU: sim.NewGPU(eng, cfg), Clients: clients}
	}
}

func TestDeployFailureReleasesMemory(t *testing.T) {
	clients := testClients(t, []float64{0.5, 0.5}, "vgg11", "resnet50")
	eng := sim.NewEngine()
	cfg := sim.DefaultConfig()
	// Room for the first app + context but not the second app.
	cfg.MemoryBytes = clients[0].App.MemoryBytes + cfg.ContextMemBytes + 100<<20
	env := &sharing.Env{Eng: eng, GPU: sim.NewGPU(eng, cfg), Clients: clients}
	if err := NewStatic().Deploy(env); err == nil {
		t.Fatal("over-memory deployment accepted")
	}
	if used := env.GPU.MemUsed(); used != 0 {
		t.Errorf("failed deployment left %d bytes reserved", used)
	}
}

func TestSchedulerNames(t *testing.T) {
	for _, c := range []struct {
		s    sharing.Scheduler
		want string
	}{
		{NewStatic(), "STATIC"},
		{NewUnbound(), "UNBOUND"},
		{NewTemporal(), "TEMPORAL"},
		{NewMIG(), "MIG"},
		{NewGSlice(), "GSLICE"},
		{NewREEFPlus(), "REEF+"},
		{NewZico(), "ZICO"},
	} {
		if got := c.s.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}
