package baselines

import (
	"bless/internal/sharing"
	"bless/internal/sim"
)

// DefaultRoundLen is the TEMPORAL scheduler's rotation period: each client
// receives RoundLen x quota of exclusive GPU time per round, the ms-scale
// slicing of cGPU-style temporal sharing systems.
const DefaultRoundLen = 10 * sim.Millisecond

// Temporal is the TEMPORAL scheme (§6.1): clients take round-robin time
// slices proportional to their quotas, each using the whole GPU during its
// slice, with a full context switch between slices. Kernels are
// un-preemptable, so a slice can overrun by one kernel. Bubbles appear
// whenever the active client cannot fill its slice while others wait —
// the worst utilization of the compared schemes (Fig 13/14).
type Temporal struct {
	// RoundLen overrides the rotation period (default DefaultRoundLen).
	RoundLen sim.Time

	env     *sharing.Env
	host    *sim.Host
	clients []*clientQueues
	// dyn tracks churn and per-client unfinished requests; queue emptiness is
	// not enough because launched kernels arrive a launch-latency later.
	dyn dynState

	cur      int
	rotating bool
	sliceEnd *sim.Event
}

// NewTemporal returns a TEMPORAL scheduler.
func NewTemporal() *Temporal { return &Temporal{} }

// Name implements sharing.Scheduler.
func (t *Temporal) Name() string { return "TEMPORAL" }

// Deploy implements sharing.Scheduler.
func (t *Temporal) Deploy(env *sharing.Env) error {
	if err := sharing.ValidateDeployment(env, false); err != nil {
		return err
	}
	// Every client runs unrestricted during its own slice.
	cqs, err := deployPerClient(env, "temporal", func(*sharing.Client) int { return 0 }, false, nil)
	if err != nil {
		return err
	}
	for _, cq := range cqs {
		cq.q.Pause() // nobody owns the GPU yet
	}
	if t.RoundLen <= 0 {
		t.RoundLen = DefaultRoundLen
	}
	t.env, t.host, t.clients = env, sim.NewHost(env.GPU), cqs
	t.dyn.deployed(env.Clients)
	t.cur = -1
	return nil
}

// Submit implements sharing.Scheduler.
func (t *Temporal) Submit(r *sharing.Request) {
	id := r.Client.ID
	if !t.dyn.accepts(id) {
		return
	}
	t.dyn.outstanding[id]++
	launchWholesale(t.env, t.host, t.clients[id], r, func() {
		t.dyn.outstanding[id]--
		if t.dyn.leaving[id] && t.dyn.outstanding[id] == 0 {
			t.retire(id)
		}
	})
	if !t.rotating {
		t.rotating = true
		t.advance(0)
	}
}

// advance hands the GPU to the next client in strict rotation, after the
// context-switch delay. The rotation is NOT work-conserving: an idle
// client's slice burns unused, exactly the temporal-sharing bubbles of
// Fig 1(a) — cGPU-style schedulers cannot reassign reserved time slices.
// Rotation stops only when no client has outstanding work at all.
func (t *Temporal) advance(delay sim.Time) {
	if t.sliceEnd != nil {
		t.sliceEnd.Cancel()
		t.sliceEnd = nil
	}
	any := false
	for i := range t.clients {
		if t.dyn.live[i] && t.dyn.outstanding[i] > 0 {
			any = true
			break
		}
	}
	if !any {
		t.rotating = false
		t.cur = -1
		return
	}
	// Departed clients drop out of the rotation; their reserved share folds
	// into the survivors' (renormalized) slices instead of burning idle.
	next := -1
	for step := 1; step <= len(t.clients); step++ {
		cand := (t.cur + step) % len(t.clients)
		if t.dyn.live[cand] {
			next = cand
			break
		}
	}
	if next < 0 {
		t.rotating = false
		t.cur = -1
		return
	}
	t.env.Eng.After(delay, func() {
		t.cur = next
		cq := t.clients[next]
		cq.q.Resume()
		slice := sim.Time(float64(t.RoundLen) * cq.c.Quota)
		if slice < sim.Millisecond {
			slice = sim.Millisecond
		}
		t.sliceEnd = t.env.Eng.After(slice, func() {
			cq.q.Pause()
			t.advance(t.env.GPU.Config().ContextSwitch)
		})
	})
}
