package baselines

import (
	"fmt"
	"math"

	"bless/internal/sharing"
	"bless/internal/sim"
)

// MIGSlices is the number of hardware slices an A100 exposes (7 GPU slices:
// 1g/2g/3g/4g/7g profiles compose from them).
const MIGSlices = 7

// MIG models Nvidia Multi-Instance GPU (§3.2): quotas are rounded DOWN to
// whole hardware slices (sevenths of the device) and each client's instance
// is fully isolated — private SMs and a private memory-bandwidth slice, so
// co-located clients never interfere. The cost is coarse granularity: a 7/18
// quota becomes 2/7 of the GPU, and quotas below one slice are undeployable —
// the paper's "MIG fails to provide such diverse quota configurations"
// (Fig 14).
type MIG struct {
	env     *sharing.Env
	host    *sim.Host
	clients []*clientQueues
}

// NewMIG returns a MIG scheduler.
func NewMIG() *MIG { return &MIG{} }

// Name implements sharing.Scheduler.
func (m *MIG) Name() string { return "MIG" }

// MIGSupported reports whether a quota is expressible as a non-zero number
// of hardware slices.
func MIGSupported(quota float64) bool {
	return int(math.Floor(quota*MIGSlices+1e-9)) >= 1
}

// MIGQuotaSMs returns the SM count of the instance a quota maps to.
func MIGQuotaSMs(quota float64, deviceSMs int) int {
	slices := int(math.Floor(quota*MIGSlices + 1e-9))
	if slices > MIGSlices {
		slices = MIGSlices
	}
	return deviceSMs * slices / MIGSlices
}

// Deploy implements sharing.Scheduler. It fails for quota sets MIG cannot
// express (any quota below one slice, or slice demand exceeding the device).
func (m *MIG) Deploy(env *sharing.Env) error {
	if err := sharing.ValidateDeployment(env, false); err != nil {
		return err
	}
	total := 0
	for _, c := range env.Clients {
		if !MIGSupported(c.Quota) {
			return fmt.Errorf("baselines: MIG cannot express quota %.3f for %q (below one of %d slices)",
				c.Quota, c.App.Name, MIGSlices)
		}
		total += int(math.Floor(c.Quota*MIGSlices + 1e-9))
	}
	if total > MIGSlices {
		return fmt.Errorf("baselines: MIG slice demand %d exceeds %d", total, MIGSlices)
	}
	cqs, err := deployPerClient(env, "mig", func(c *sharing.Client) int {
		return MIGQuotaSMs(c.Quota, env.GPU.Config().SMs)
	}, true /* isolated bandwidth */, nil)
	if err != nil {
		return err
	}
	m.env, m.host, m.clients = env, sim.NewHost(env.GPU), cqs
	return nil
}

// Submit implements sharing.Scheduler.
func (m *MIG) Submit(r *sharing.Request) {
	launchWholesale(m.env, m.host, m.clients[r.Client.ID], r, nil)
}
