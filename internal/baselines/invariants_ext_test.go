// External-package invariant coverage for the baseline schedulers: the
// universal simulator invariants (SM conservation, event order/FIFO) must
// hold for every system on the seed workloads, and the checker must detect
// the real bubbles ISO-style partitioning leaves (positive control). Lives in
// baselines_test so it can drive the schedulers through internal/harness
// without an import cycle.
package baselines_test

import (
	"testing"

	"bless/internal/harness"
	"bless/internal/invariant"
	"bless/internal/sim"
	"bless/internal/trace"
)

// seedPair is the repository's canonical co-location workload: a paced
// resnet50 against a dense vgg11 on an even quota split.
func seedPair() []harness.ClientSpec {
	return []harness.ClientSpec{
		{App: "resnet50", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 0)},
		{App: "vgg11", Quota: 0.5, Pattern: trace.Closed(0, 0)},
	}
}

// TestBaselinesUniversalInvariants: every scheduler — the six baselines and
// BLESS itself — must keep SM accounting conserved and queue execution
// FIFO-ordered on the seed workloads. Violations fail the run directly.
func TestBaselinesUniversalInvariants(t *testing.T) {
	systems := []string{"STATIC", "UNBOUND", "TEMPORAL", "MIG", "GSLICE", "REEF+", "ZICO", "BLESS"}
	for _, sys := range systems {
		t.Run(sys, func(t *testing.T) {
			sched, err := harness.NewSystem(sys)
			if err != nil {
				t.Fatal(err)
			}
			res, err := harness.Run(harness.RunConfig{
				Scheduler: sched,
				Clients:   seedPair(),
				Horizon:   120 * sim.Millisecond,
				Invariants: &invariant.Options{
					Enforce:         invariant.Universal(),
					FailOnViolation: true,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			rep := res.Invariants
			if rep.Kernels == 0 || rep.Samples == 0 {
				t.Fatalf("checker observed nothing: %d kernels, %d samples", rep.Kernels, rep.Samples)
			}
			for _, v := range rep.Violations {
				t.Errorf("%s: %v", sys, v)
			}
		})
	}
}

// TestISOBubbleViolationPositiveControl proves the checker detects real
// bubbles: ISO-style static partitioning (STATIC with one busy client and an
// idle partner) pins the busy client to its 50% partition while the partner's
// SMs sit idle — exactly the bubble BLESS eliminates (PAPER.md §3). The
// universal classes stay clean; the Bubble class must be breached.
func TestISOBubbleViolationPositiveControl(t *testing.T) {
	sched, err := harness.NewSystem("STATIC")
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(harness.RunConfig{
		Scheduler: sched,
		Clients: []harness.ClientSpec{
			// Saturating client, capped at its 54-SM partition.
			{App: "resnet50", Quota: 0.5, Pattern: trace.Closed(0, 0)},
			// Partner submits one request and then leaves its partition idle.
			{App: "vgg11", Quota: 0.5, Pattern: trace.Burst(1, 0)},
		},
		Horizon: 120 * sim.Millisecond,
		Invariants: &invariant.Options{
			Enforce:         invariant.Universal(),
			FailOnViolation: true,
		},
	})
	if err != nil {
		t.Fatal(err) // universal classes must stay clean
	}
	rep := res.Invariants
	if rep.BubbleFraction <= 0.10 {
		t.Fatalf("ISO partitioning shows bubble fraction %.3f, expected well above the 0.10 tolerance (bubble %v of %v demand)",
			rep.BubbleFraction, rep.BubbleTime, rep.DemandTime)
	}
	found := false
	for _, v := range rep.Observations {
		if v.Class == invariant.Bubble {
			found = true
		}
	}
	if !found {
		t.Errorf("bubble breach missing from observations: %+v", rep.Observations)
	}
}

// TestBLESSBubbleLessOnISOControl is the matching negative control: BLESS on
// the identical workload lends the idle partner's SMs to the busy client, so
// the bubble fraction must stay inside tolerance.
func TestBLESSBubbleLessOnISOControl(t *testing.T) {
	sched, err := harness.NewSystem("BLESS")
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(harness.RunConfig{
		Scheduler: sched,
		Clients: []harness.ClientSpec{
			{App: "resnet50", Quota: 0.5, Pattern: trace.Closed(0, 0)},
			{App: "vgg11", Quota: 0.5, Pattern: trace.Burst(1, 0)},
		},
		Horizon: 120 * sim.Millisecond,
		Invariants: &invariant.Options{
			Enforce:         invariant.All(),
			FailOnViolation: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Invariants.BubbleFraction; f > 0.10 {
		t.Errorf("BLESS left bubbles for %.1f%% of the demand window", f*100)
	}
}
