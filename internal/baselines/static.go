package baselines

import (
	"bless/internal/sharing"
	"bless/internal/sim"
)

// Static is the STATIC/ISO sharing scheme (§3.2): each client receives a
// fixed MPS context restricted to its quota's SM count for its whole
// lifetime, and requests are launched wholesale. Unused SMs of one client are
// never lent to another — the scheme that produces the GPU bubbles of
// Fig 3(a).
//
// Run with a single deployed client, Static is exactly the paper's ISO
// baseline: the application provisioned its SM quota, running isolatedly
// under MPS.
type Static struct {
	env     *sharing.Env
	host    *sim.Host
	clients []*clientQueues
	dyn     dynState
}

// NewStatic returns a STATIC scheduler.
func NewStatic() *Static { return &Static{} }

// Name implements sharing.Scheduler.
func (s *Static) Name() string { return "STATIC" }

// Deploy implements sharing.Scheduler.
func (s *Static) Deploy(env *sharing.Env) error {
	if err := sharing.ValidateDeployment(env, false); err != nil {
		return err
	}
	cqs, err := deployPerClient(env, "static", func(c *sharing.Client) int {
		return c.QuotaSMs(env.GPU.Config().SMs)
	}, false, nil)
	if err != nil {
		return err
	}
	s.env, s.host, s.clients = env, sim.NewHost(env.GPU), cqs
	s.dyn.deployed(env.Clients)
	return nil
}

// Submit implements sharing.Scheduler.
func (s *Static) Submit(r *sharing.Request) {
	id := r.Client.ID
	if !s.dyn.accepts(id) {
		return
	}
	s.dyn.outstanding[id]++
	launchWholesale(s.env, s.host, s.clients[id], r, func() {
		s.dyn.outstanding[id]--
		if s.dyn.leaving[id] && s.dyn.outstanding[id] == 0 {
			s.retire(id)
		}
	})
}
