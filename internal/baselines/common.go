// Package baselines implements the GPU-sharing systems BLESS is evaluated
// against (§6.1): STATIC quota isolation, TEMPORAL round-robin time slicing,
// MIG hardware partitioning, GSLICE adaptive MPS spatial sharing, UNBOUND
// hardware-scheduler sharing, REEF+ biased sharing with even spatial
// partitioning, and ZICO coordinated training sharing. All implement
// sharing.Scheduler and run on the same simulated device as BLESS, so every
// experiment compares scheduling policy like for like.
package baselines

import (
	"fmt"

	"bless/internal/sharing"
	"bless/internal/sim"
)

// clientQueues is the common per-client device state for wholesale-launching
// baselines: one context, one queue, a FIFO of requests.
type clientQueues struct {
	c   *sharing.Client
	ctx *sim.Context
	q   *sim.Queue
}

// deployPerClient reserves application memory and creates one context+queue
// per client with the SM limit chosen by limitFor. On failure, memory
// reserved for earlier clients is released so a rejected deployment leaves
// the device clean.
func deployPerClient(env *sharing.Env, sys string, limitFor func(c *sharing.Client) int, isolated bool, prioFor func(c *sharing.Client) int) ([]*clientQueues, error) {
	out := make([]*clientQueues, len(env.Clients))
	var reserved int64
	fail := func(c *sharing.Client, err error) ([]*clientQueues, error) {
		env.GPU.FreeMemory(reserved)
		return nil, fmt.Errorf("baselines: %s deploying %q: %w", sys, c.App.Name, err)
	}
	for i, c := range env.Clients {
		if err := env.GPU.AllocMemory(c.App.MemoryBytes); err != nil {
			return fail(c, err)
		}
		reserved += c.App.MemoryBytes
		prio := 0
		if prioFor != nil {
			prio = prioFor(c)
		}
		ctx, err := env.GPU.NewContext(sim.ContextOptions{
			SMLimit:  limitFor(c),
			Isolated: isolated,
			Priority: prio,
			Label:    fmt.Sprintf("%s/%s", sys, c.App.Name),
			Owner:    sim.OwnerTag(c.ID),
		})
		if err != nil {
			return fail(c, err)
		}
		reserved += env.GPU.Config().ContextMemBytes
		out[i] = &clientQueues{c: c, ctx: ctx, q: ctx.NewQueue(c.App.Name)}
	}
	return out, nil
}

// launchWholesale submits every kernel of the request asynchronously into the
// client's queue — the request-granularity launching of static, unbounded and
// MIG sharing (§3.2): once a request arrives, all its kernels enter the
// device queue and the host loses control of them. env.Complete fires when
// the last kernel retires; then, if non-nil, runs after it (schedulers use it
// for their own bookkeeping).
func launchWholesale(env *sharing.Env, host *sim.Host, cq *clientQueues, r *sharing.Request, then func()) {
	app := r.Client.App
	last := app.NumKernels() - 1
	for i := range app.Kernels {
		i := i
		var onDone func(sim.Time)
		if i == last {
			onDone = func(sim.Time) {
				env.Complete(r)
				if then != nil {
					then()
				}
			}
		}
		host.Launch(cq.q, &app.Kernels[i], onDone)
	}
}
