package baselines

// Client churn for the wholesale baselines: Static, Unbound and Temporal
// implement sharing.Dynamic (mid-run admission, graceful leave, crash) and
// sharing.QuotaReporter. On churn each scheme re-normalizes the survivors'
// effective quotas over the live provisioned sum — Static resizes its SM
// partitions, Temporal rescales its time slices, Unbound (which cannot
// express quotas) only updates the reported shares. A graceful leave drains
// the client's outstanding requests before releasing its memory; a crash
// cancels its queued kernel launches immediately (cancelled wholesale
// launches simply vanish — the dead client's requests never complete).

import (
	"fmt"

	"bless/internal/sharing"
	"bless/internal/sim"
)

// dynState is the churn bookkeeping shared by the wholesale baselines.
type dynState struct {
	prov        []float64 // provisioned quotas, fixed at deploy/admission
	live        []bool
	leaving     []bool
	outstanding []int // unfinished requests per client
}

// deployed initializes the state for the initial client set.
func (d *dynState) deployed(clients []*sharing.Client) {
	n := len(clients)
	d.prov = make([]float64, n)
	d.live = make([]bool, n)
	d.leaving = make([]bool, n)
	d.outstanding = make([]int, n)
	for i, c := range clients {
		d.prov[i] = c.Quota
		d.live[i] = true
	}
}

// add appends a joining client's slot.
func (d *dynState) add(c *sharing.Client) {
	d.prov = append(d.prov, c.Quota)
	d.live = append(d.live, true)
	d.leaving = append(d.leaving, false)
	d.outstanding = append(d.outstanding, 0)
}

// accepts reports whether the client may submit new work.
func (d *dynState) accepts(id int) bool {
	return id >= 0 && id < len(d.live) && d.live[id] && !d.leaving[id]
}

// removable validates a RemoveClient target.
func (d *dynState) removable(sys string, id int) error {
	if id < 0 || id >= len(d.live) {
		return fmt.Errorf("baselines: %s: unknown client %d", sys, id)
	}
	if !d.live[id] {
		return fmt.Errorf("baselines: %s: client %d already removed", sys, id)
	}
	if d.leaving[id] {
		return fmt.Errorf("baselines: %s: client %d already leaving", sys, id)
	}
	return nil
}

// renormalize updates the live clients' effective quotas to their share of
// the live provisioned sum and returns whether anything changed.
func (d *dynState) renormalize(cqs []*clientQueues) bool {
	sum := 0.0
	for i := range cqs {
		if d.live[i] {
			sum += d.prov[i]
		}
	}
	if sum <= 0 {
		return false
	}
	changed := false
	for i, cq := range cqs {
		if !d.live[i] {
			continue
		}
		eff := d.prov[i] / sum
		if eff > 1 {
			eff = 1
		}
		if eff != cq.c.Quota {
			cq.c.Quota = eff
			changed = true
		}
	}
	return changed
}

// effective lists the live clients' current effective quotas.
func (d *dynState) effective(cqs []*clientQueues) []sharing.ClientQuota {
	out := make([]sharing.ClientQuota, 0, len(cqs))
	for i, cq := range cqs {
		if d.live[i] {
			out = append(out, sharing.ClientQuota{ID: cq.c.ID, Quota: cq.c.Quota})
		}
	}
	return out
}

// admit validates a joining client and provisions its memory, context and
// queue; on failure everything is rolled back.
func admit(env *sharing.Env, sys string, c *sharing.Client, limit, next int) (*clientQueues, error) {
	if env == nil {
		return nil, fmt.Errorf("baselines: %s: AddClient before Deploy", sys)
	}
	if c.ID != next {
		return nil, fmt.Errorf("baselines: %s: client ID %d is not the next slot %d", sys, c.ID, next)
	}
	if c.Quota <= 0 || c.Quota > 1 {
		return nil, fmt.Errorf("baselines: %s: client %q quota %g outside (0,1]", sys, c.App.Name, c.Quota)
	}
	if err := env.GPU.AllocMemory(c.App.MemoryBytes); err != nil {
		return nil, fmt.Errorf("baselines: %s admitting %q: %w", sys, c.App.Name, err)
	}
	ctx, err := env.GPU.NewContext(sim.ContextOptions{
		SMLimit: limit,
		Label:   fmt.Sprintf("%s/%s", sys, c.App.Name),
		Owner:   sim.OwnerTag(c.ID),
	})
	if err != nil {
		env.GPU.FreeMemory(c.App.MemoryBytes)
		return nil, fmt.Errorf("baselines: %s admitting %q: %w", sys, c.App.Name, err)
	}
	return &clientQueues{c: c, ctx: ctx, q: ctx.NewQueue(c.App.Name)}, nil
}

// releaseMem returns a departed client's memory (application footprint plus
// its context).
func releaseMem(env *sharing.Env, c *sharing.Client) {
	env.GPU.FreeMemory(c.App.MemoryBytes + env.GPU.Config().ContextMemBytes)
}

// --- Static ---

// reprovision renormalizes effective quotas and resizes the surviving SM
// partitions accordingly: a departed client's SMs fold back into the
// survivors' partitions instead of idling.
func (s *Static) reprovision() {
	if !s.dyn.renormalize(s.clients) {
		return
	}
	sms := s.env.GPU.Config().SMs
	for i, cq := range s.clients {
		if s.dyn.live[i] {
			_ = cq.ctx.SetSMLimit(cq.c.QuotaSMs(sms))
		}
	}
}

// retire releases a drained or departed client and re-provisions.
func (s *Static) retire(id int) {
	s.dyn.live[id] = false
	s.dyn.leaving[id] = false
	releaseMem(s.env, s.clients[id].c)
	s.reprovision()
}

// AddClient implements sharing.Dynamic.
func (s *Static) AddClient(c *sharing.Client) error {
	cq, err := admit(s.env, "static", c, c.QuotaSMs(s.env.GPU.Config().SMs), len(s.clients))
	if err != nil {
		return err
	}
	s.clients = append(s.clients, cq)
	s.dyn.add(c)
	s.reprovision()
	return nil
}

// RemoveClient implements sharing.Dynamic.
func (s *Static) RemoveClient(id int, crashed bool) error {
	if err := s.dyn.removable("static", id); err != nil {
		return err
	}
	if !crashed && s.dyn.outstanding[id] > 0 {
		s.dyn.leaving[id] = true
		return nil
	}
	if crashed {
		s.clients[id].q.CancelPending()
		s.dyn.outstanding[id] = 0
	}
	s.retire(id)
	return nil
}

// EffectiveQuotas implements sharing.QuotaReporter.
func (s *Static) EffectiveQuotas() []sharing.ClientQuota { return s.dyn.effective(s.clients) }

// --- Unbound ---

// AddClient implements sharing.Dynamic.
func (u *Unbound) AddClient(c *sharing.Client) error {
	cq, err := admit(u.env, "unbound", c, 0, len(u.clients))
	if err != nil {
		return err
	}
	u.clients = append(u.clients, cq)
	u.dyn.add(c)
	u.dyn.renormalize(u.clients)
	return nil
}

// retire releases a drained or departed client and re-provisions.
func (u *Unbound) retire(id int) {
	u.dyn.live[id] = false
	u.dyn.leaving[id] = false
	releaseMem(u.env, u.clients[id].c)
	u.dyn.renormalize(u.clients)
}

// RemoveClient implements sharing.Dynamic.
func (u *Unbound) RemoveClient(id int, crashed bool) error {
	if err := u.dyn.removable("unbound", id); err != nil {
		return err
	}
	if !crashed && u.dyn.outstanding[id] > 0 {
		u.dyn.leaving[id] = true
		return nil
	}
	if crashed {
		u.clients[id].q.CancelPending()
		u.dyn.outstanding[id] = 0
	}
	u.retire(id)
	return nil
}

// EffectiveQuotas implements sharing.QuotaReporter.
func (u *Unbound) EffectiveQuotas() []sharing.ClientQuota { return u.dyn.effective(u.clients) }

// --- Temporal ---

// AddClient implements sharing.Dynamic: the joiner's queue starts paused and
// enters the rotation at the next slice boundary.
func (t *Temporal) AddClient(c *sharing.Client) error {
	cq, err := admit(t.env, "temporal", c, 0, len(t.clients))
	if err != nil {
		return err
	}
	cq.q.Pause()
	t.clients = append(t.clients, cq)
	t.dyn.add(c)
	t.dyn.renormalize(t.clients)
	return nil
}

// retire releases a drained or departed client; its reserved slice share
// folds back into the survivors' slices.
func (t *Temporal) retire(id int) {
	t.dyn.live[id] = false
	t.dyn.leaving[id] = false
	releaseMem(t.env, t.clients[id].c)
	t.dyn.renormalize(t.clients)
}

// RemoveClient implements sharing.Dynamic. A crashed client's pending
// launches are cancelled and its queue paused; if it held the GPU, the slice
// runs out and the rotation skips it from then on.
func (t *Temporal) RemoveClient(id int, crashed bool) error {
	if err := t.dyn.removable("temporal", id); err != nil {
		return err
	}
	if !crashed && t.dyn.outstanding[id] > 0 {
		t.dyn.leaving[id] = true
		return nil
	}
	if crashed {
		t.clients[id].q.CancelPending()
		t.clients[id].q.Pause()
		t.dyn.outstanding[id] = 0
	}
	t.retire(id)
	return nil
}

// EffectiveQuotas implements sharing.QuotaReporter.
func (t *Temporal) EffectiveQuotas() []sharing.ClientQuota { return t.dyn.effective(t.clients) }
