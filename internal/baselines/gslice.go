package baselines

import (
	"bless/internal/sharing"
	"bless/internal/sim"
)

// DefaultAdaptInterval is GSLICE's reallocation period.
const DefaultAdaptInterval = 20 * sim.Millisecond

// GSlice models GSLICE (Dhakal et al., SoCC '20; §6.1): inference clients
// spatially share the GPU through MPS contexts sized by quota, and an
// adaptive controller periodically rebalances SM allocations when workload
// changes — idle clients' SMs are lent to backlogged ones, proportional to
// quota, and returned when they become active again. Re-restricting a
// client's context costs the MPS context-switch vacuum. Between adaptation
// points the allocation is static, so sub-interval bubbles (and the
// interference of co-located kernels on shared bandwidth) remain — the gap
// BLESS closes (Fig 13).
type GSlice struct {
	// AdaptInterval overrides the reallocation period (default 20ms).
	AdaptInterval sim.Time
	// DisableAdaptation freezes allocations at quota (for ablations).
	DisableAdaptation bool

	env       *sharing.Env
	host      *sim.Host
	clients   []*clientQueues
	limits    []int
	idleSince []sim.Time
	armed     bool
}

// idleGrace is how long a client must stay idle before its SMs are lent out;
// real GSLICE reacts to sustained workload changes, not per-request gaps.
const idleGrace = 3 * DefaultAdaptInterval

// NewGSlice returns a GSLICE scheduler.
func NewGSlice() *GSlice { return &GSlice{} }

// Name implements sharing.Scheduler.
func (g *GSlice) Name() string { return "GSLICE" }

// Deploy implements sharing.Scheduler.
func (g *GSlice) Deploy(env *sharing.Env) error {
	if err := sharing.ValidateDeployment(env, false); err != nil {
		return err
	}
	cqs, err := deployPerClient(env, "gslice", func(c *sharing.Client) int {
		return c.QuotaSMs(env.GPU.Config().SMs)
	}, false, nil)
	if err != nil {
		return err
	}
	if g.AdaptInterval <= 0 {
		g.AdaptInterval = DefaultAdaptInterval
	}
	g.env, g.host, g.clients = env, sim.NewHost(env.GPU), cqs
	g.limits = make([]int, len(cqs))
	g.idleSince = make([]sim.Time, len(cqs))
	for i, cq := range cqs {
		g.limits[i] = cq.ctx.SMLimit
		g.idleSince[i] = -1
	}
	return nil
}

// Submit implements sharing.Scheduler.
func (g *GSlice) Submit(r *sharing.Request) {
	id := r.Client.ID
	g.idleSince[id] = -1
	// A client whose SMs were lent out gets its quota back immediately on
	// new work (one context-switch vacuum), so lending penalizes it by at
	// most that vacuum plus shared-bandwidth interference.
	if quota := g.clients[id].c.QuotaSMs(g.env.GPU.Config().SMs); g.limits[id] < quota {
		g.setLimit(id, quota)
	}
	launchWholesale(g.env, g.host, g.clients[id], r, nil)
	g.arm()
}

// setLimit re-restricts a client's context, charging the vacuum.
func (g *GSlice) setLimit(id, want int) {
	if g.limits[id] == want {
		return
	}
	g.limits[id] = want
	cq := g.clients[id]
	cq.q.Pause()
	if err := cq.ctx.SetSMLimit(want); err != nil {
		panic(err) // wants are clamped by callers; unreachable
	}
	g.env.Eng.After(g.env.GPU.Config().ContextSwitch, cq.q.Resume)
}

// arm starts the adaptation timer if it is not already running. The timer
// disarms itself once all clients are idle and allocations are back at their
// quotas, so a drained simulation terminates.
func (g *GSlice) arm() {
	if g.armed || g.DisableAdaptation {
		return
	}
	g.armed = true
	g.env.Eng.After(g.AdaptInterval, func() {
		g.armed = false
		g.adapt()
		for i, cq := range g.clients {
			if !cq.q.Idle() || g.limits[i] != cq.c.QuotaSMs(g.env.GPU.Config().SMs) {
				g.arm()
				return
			}
		}
	})
}

// adapt rebalances SM limits: clients idle past the grace period shrink to a
// minimal placeholder partition; their SMs are redistributed to backlogged
// clients proportional to quota. Changing a client's restriction pauses its
// queue for the context-switch vacuum.
func (g *GSlice) adapt() {
	deviceSMs := g.env.GPU.Config().SMs
	now := g.env.Eng.Now()
	lendable := make([]bool, len(g.clients))
	busyQuota := 0.0
	nLend := 0
	for i, cq := range g.clients {
		if cq.q.Idle() {
			if g.idleSince[i] < 0 {
				g.idleSince[i] = now
			}
			if now-g.idleSince[i] >= idleGrace {
				lendable[i] = true
				nLend++
				continue
			}
		} else {
			g.idleSince[i] = -1
		}
		busyQuota += cq.c.Quota
	}
	minSMs := deviceSMs / 18 // one partition placeholder for lenders
	if minSMs < 1 {
		minSMs = 1
	}
	spare := deviceSMs - nLend*minSMs
	for i, cq := range g.clients {
		var want int
		switch {
		case busyQuota == 0:
			// Nobody has work: everyone returns to quota (and the timer can
			// disarm).
			want = cq.c.QuotaSMs(deviceSMs)
		case lendable[i]:
			want = minSMs
		default:
			want = int(cq.c.Quota / busyQuota * float64(spare))
			if q := cq.c.QuotaSMs(deviceSMs); want < q {
				want = q // never below the provisioned quota
			}
			if want > deviceSMs {
				want = deviceSMs
			}
		}
		g.setLimit(i, want)
	}
}
