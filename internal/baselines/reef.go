package baselines

import (
	"bless/internal/sharing"
	"bless/internal/sim"
)

// REEFPlus models REEF+ (§6.1): the paper's strengthened variant of REEF
// (Han et al., OSDI '22) where dynamic kernel padding is replaced by MPS even
// spatial partitioning. One client is the real-time (RT) task — here the
// highest-quota client, ties broken by lowest ID — and launches its kernels
// into a high-priority unrestricted context that the hardware serves first
// (REEF's microsecond-scale preemption). Best-effort (BE) clients fill the
// GPU through even MPS partitions. The RT task's latency is excellent; BE
// tasks pay for it — biased sharing (Fig 3c), with large deviation under
// uneven quota assignments (Fig 14).
type REEFPlus struct {
	env     *sharing.Env
	host    *sim.Host
	clients []*clientQueues
	rt      int
}

// NewREEFPlus returns a REEF+ scheduler.
func NewREEFPlus() *REEFPlus { return &REEFPlus{} }

// Name implements sharing.Scheduler.
func (rp *REEFPlus) Name() string { return "REEF+" }

// RTClient returns the client ID designated real-time; valid after Deploy.
func (rp *REEFPlus) RTClient() int { return rp.rt }

// Deploy implements sharing.Scheduler.
func (rp *REEFPlus) Deploy(env *sharing.Env) error {
	if err := sharing.ValidateDeployment(env, false); err != nil {
		return err
	}
	rp.rt = 0
	for i, c := range env.Clients {
		if c.Quota > env.Clients[rp.rt].Quota {
			rp.rt = i
		}
	}
	// Even spatial partitioning for every client (the MPS replacement for
	// REEF's dynamic kernel padding); the RT client's context additionally
	// dispatches with priority, so its kernels never wait on BE occupancy —
	// REEF's microsecond-scale preemption at launch granularity.
	evenShare := env.GPU.Config().SMs / len(env.Clients)
	if evenShare < 1 {
		evenShare = 1
	}
	cqs, err := deployPerClient(env, "reef",
		func(*sharing.Client) int { return evenShare },
		false,
		func(c *sharing.Client) int {
			if c.ID == rp.rt {
				return 1 // RT preempts
			}
			return 0
		})
	if err != nil {
		return err
	}
	rp.env, rp.host, rp.clients = env, sim.NewHost(env.GPU), cqs
	return nil
}

// Submit implements sharing.Scheduler.
func (rp *REEFPlus) Submit(r *sharing.Request) {
	launchWholesale(rp.env, rp.host, rp.clients[r.Client.ID], r, nil)
}
