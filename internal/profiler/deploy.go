package profiler

import (
	"fmt"

	"bless/internal/sim"
)

// Deployment admission checks (§4.2.2): before accepting a set of
// applications onto one GPU, BLESS (a) avoids co-locating applications with
// very short kernels next to applications with extremely long kernels, which
// would starve the former inside every kernel squad, and (b) verifies the
// combined memory footprint — including per-client MPS contexts — fits the
// device.

// AdmissionLimits tunes the co-location compatibility checks.
type AdmissionLimits struct {
	// MaxKernelDuration rejects applications whose longest kernel exceeds
	// this bound (default 4ms; the paper deploys kernels up to ~3ms).
	MaxKernelDuration sim.Time
	// StarvationRatio rejects pairs where one app's longest kernel exceeds
	// this multiple of another app's mean kernel duration (default 400x —
	// a 3ms kernel next to 10us kernels is near the paper's working limit).
	StarvationRatio float64
	// ContextsPerClient is the number of pre-established MPS contexts each
	// client needs (default: one unrestricted + the restricted set).
	ContextsPerClient int
}

// DefaultAdmissionLimits returns limits matching the paper's deployment
// envelope.
func DefaultAdmissionLimits() AdmissionLimits {
	return AdmissionLimits{
		MaxKernelDuration: 4 * sim.Millisecond,
		StarvationRatio:   400,
		ContextsPerClient: 4,
	}
}

// fullGPUStats derives mean and max full-GPU compute-kernel durations from a
// profile's largest partition.
func fullGPUStats(p *Profile) (mean, max sim.Time) {
	last := p.Partitions - 1
	var total sim.Time
	n := 0
	for k := range p.Kernels {
		if !p.Kernels[k].IsCompute {
			continue
		}
		d := p.Kernels[k].Dur[last]
		total += d
		if d > max {
			max = d
		}
		n++
	}
	if n > 0 {
		mean = total / sim.Time(n)
	}
	return mean, max
}

// CheckColocation validates that the profiled applications can be deployed
// together on a device with the given configuration. It returns nil when the
// deployment is admissible and a descriptive error otherwise.
func CheckColocation(profiles []*Profile, cfg sim.Config, lim AdmissionLimits) error {
	if len(profiles) == 0 {
		return fmt.Errorf("profiler: no applications to deploy")
	}
	if lim.MaxKernelDuration == 0 {
		lim = DefaultAdmissionLimits()
	}

	// Memory: application footprints plus per-client extra MPS contexts.
	var mem int64
	for _, p := range profiles {
		mem += p.MemoryBytes
		mem += int64(lim.ContextsPerClient) * cfg.ContextMemBytes
	}
	if mem > cfg.MemoryBytes {
		return fmt.Errorf("profiler: deployment needs %.1f GB, device has %.1f GB: %w",
			float64(mem)/(1<<30), float64(cfg.MemoryBytes)/(1<<30), sim.ErrOutOfMemory)
	}

	type stat struct {
		name      string
		mean, max sim.Time
	}
	stats := make([]stat, len(profiles))
	for i, p := range profiles {
		mean, maxDur := fullGPUStats(p)
		stats[i] = stat{name: p.AppName, mean: mean, max: maxDur}
		if maxDur > lim.MaxKernelDuration {
			return fmt.Errorf("profiler: app %q has a %v kernel, exceeding the %v deployment limit",
				p.AppName, maxDur, lim.MaxKernelDuration)
		}
	}

	// Pairwise starvation check: an extremely long kernel monopolizes every
	// squad it appears in, starving co-located short-kernel apps.
	for i := range stats {
		for j := range stats {
			if i == j || stats[j].mean == 0 {
				continue
			}
			ratio := float64(stats[i].max) / float64(stats[j].mean)
			if ratio > lim.StarvationRatio {
				return fmt.Errorf("profiler: co-locating %q (max kernel %v) with %q (mean kernel %v) risks starvation (ratio %.0fx > %.0fx)",
					stats[i].name, stats[i].max, stats[j].name, stats[j].mean, ratio, lim.StarvationRatio)
			}
		}
	}
	return nil
}
