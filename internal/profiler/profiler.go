// Package profiler implements BLESS's offline profiling stage (§4.2).
//
// For each application provisioned some percentage of the GPU, the profiler
// measures the isolated latency T[n%] under an MPS SM restriction, the
// per-kernel duration t[n%][k], the cumulative duration from request start to
// the end of kernel k (tau[n%][k]), and each kernel's maximum active SM share
// (d%). The GPU is split into N partitions (N=18 on an A100: 6%, 12%, ...,
// 100%) to bound both the profiling cost and the runtime configuration search
// space. Profiling complexity for M applications is O(MN).
//
// The profiler treats applications as black boxes: it replays their kernel
// sequence through the simulator exactly as a client would (asynchronous
// wholesale launches into one restricted queue) and records observed timings.
// Scheduler-side code consumes only Profile data, never model internals —
// the same information boundary as the paper's CUDA-event-based profiler.
package profiler

import (
	"fmt"

	"bless/internal/model"
	"bless/internal/sim"
)

// DefaultPartitions is the paper's empirical N for the A100 (§4.2.1).
const DefaultPartitions = 18

// KernelProfile holds the measured statistics for one kernel across all SM
// partitions.
type KernelProfile struct {
	// Dur[p] is t[n%][k]: the kernel's duration with partition p+1 of N
	// (i.e. (p+1)/N of the GPU's SMs).
	Dur []sim.Time
	// Cum[p] is tau[n%][k]: time from request start to the end of this
	// kernel at partition p+1.
	Cum []sim.Time
	// MaxSMs is the maximum active SM count observed (full-GPU run); MaxSMs
	// over the device SM count is the paper's d%.
	MaxSMs int
	// IsCompute distinguishes compute kernels from memory-management
	// kernels (H2D/D2H), which the estimators account separately.
	IsCompute bool
}

// Profile is the offline-measured description of one application.
type Profile struct {
	// AppName is the profiled application's name.
	AppName string
	// Partitions is N, the number of SM partitions measured.
	Partitions int
	// DeviceSMs is the SM count of the profiling GPU (must match runtime).
	DeviceSMs int
	// PartitionSMs[p] is the SM count of partition p+1 (6, 12, ..., 108).
	PartitionSMs []int
	// Iso[p] is T[n%]: the isolated request latency at partition p+1.
	Iso []sim.Time
	// Kernels holds per-kernel statistics, in request order.
	Kernels []KernelProfile
	// MemoryBytes is the application's device memory requirement.
	MemoryBytes int64
	// Cost is the virtual time the profiling runs consumed (Table 1 reports
	// 0.38s-6.9s per application).
	Cost sim.Time
}

// NumKernels returns the profiled kernel count.
func (p *Profile) NumKernels() int { return len(p.Kernels) }

// PartitionFor returns the index of the smallest partition with at least the
// given SM count, clamped to the largest partition.
func (p *Profile) PartitionFor(sms int) int {
	for i, ps := range p.PartitionSMs {
		if ps >= sms {
			return i
		}
	}
	return len(p.PartitionSMs) - 1
}

// QuotaPartition returns the partition index for a fractional quota in (0,1].
func (p *Profile) QuotaPartition(quota float64) int {
	idx := int(quota*float64(p.Partitions)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= p.Partitions {
		idx = p.Partitions - 1
	}
	return idx
}

// IsoAtQuota returns T[n%] for a fractional quota.
func (p *Profile) IsoAtQuota(quota float64) sim.Time {
	return p.Iso[p.QuotaPartition(quota)]
}

// KernelDurAt returns the kernel's duration at an arbitrary SM count by
// linear interpolation between the measured partition grid points. Counts at
// or beyond the device size clamp to the full-GPU measurement; the paper
// interpolates identically when a kernel "cannot utilize so many SMs".
func (p *Profile) KernelDurAt(k, sms int) sim.Time {
	kp := &p.Kernels[k]
	if !kp.IsCompute {
		return kp.Dur[len(kp.Dur)-1]
	}
	if sms <= p.PartitionSMs[0] {
		// Below the smallest measured partition: scale up conservatively
		// (duration is inversely proportional to SMs in this regime).
		d := float64(kp.Dur[0]) * float64(p.PartitionSMs[0]) / float64(max(1, sms))
		return sim.Time(d)
	}
	last := len(p.PartitionSMs) - 1
	if sms >= p.PartitionSMs[last] {
		return kp.Dur[last]
	}
	// Find the surrounding grid points.
	hi := 1
	for p.PartitionSMs[hi] < sms {
		hi++
	}
	lo := hi - 1
	x0, x1 := p.PartitionSMs[lo], p.PartitionSMs[hi]
	y0, y1 := float64(kp.Dur[lo]), float64(kp.Dur[hi])
	frac := float64(sms-x0) / float64(x1-x0)
	return sim.Time(y0 + (y1-y0)*frac)
}

// KernelDurAtUnbounded is KernelDurAt without the saturation clamp: beyond
// the kernel's maximum active SM count the duration keeps shrinking as
// MaxSMs/sms of the saturated duration. The workload-equivalence predictor
// (Equation 2) uses this to model an overlapped kernel group as sequential
// execution in which every kernel occupies ALL the group's active SMs — the
// paper notes the duration "is interpolated if [the kernel] cannot utilize so
// many SMs".
func (p *Profile) KernelDurAtUnbounded(k, sms int) sim.Time {
	kp := &p.Kernels[k]
	if !kp.IsCompute || sms <= kp.MaxSMs {
		return p.KernelDurAt(k, sms)
	}
	sat := kp.Dur[len(kp.Dur)-1] // saturated (full-GPU) duration
	d := sim.Time(float64(sat) * float64(kp.MaxSMs) / float64(sms))
	if d < 1 {
		d = 1
	}
	return d
}

// Options configures a profiling run.
type Options struct {
	// Partitions is N (default 18).
	Partitions int
	// Config is the device to profile on (default DefaultConfig). The paper
	// requires the profiling GPU to match the runtime GPU model.
	Config sim.Config
}

// ProfileApp measures one application. Deterministic: profiling the same app
// twice yields identical data.
func ProfileApp(app *model.App, opts Options) (*Profile, error) {
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("profiler: %w", err)
	}
	n := opts.Partitions
	if n <= 0 {
		n = DefaultPartitions
	}
	cfg := opts.Config
	if cfg.SMs == 0 {
		cfg = sim.DefaultConfig()
	}
	if cfg.SMs < n {
		return nil, fmt.Errorf("profiler: %d partitions on a %d-SM device", n, cfg.SMs)
	}

	prof := &Profile{
		AppName:      app.Name,
		Partitions:   n,
		DeviceSMs:    cfg.SMs,
		PartitionSMs: make([]int, n),
		Iso:          make([]sim.Time, n),
		Kernels:      make([]KernelProfile, len(app.Kernels)),
		MemoryBytes:  app.MemoryBytes,
	}
	for p := 0; p < n; p++ {
		prof.PartitionSMs[p] = cfg.SMs * (p + 1) / n
	}
	for k := range prof.Kernels {
		prof.Kernels[k].Dur = make([]sim.Time, n)
		prof.Kernels[k].Cum = make([]sim.Time, n)
		prof.Kernels[k].IsCompute = app.Kernels[k].IsCompute()
	}

	// One full-GPU warm-up run records d% (max active SM usage), then one
	// run per partition records kernel durations — N+1 runs total (§4.2.1).
	warm := runSolo(app, cfg, cfg.SMs)
	prof.Cost += warm.total
	for k := range prof.Kernels {
		prof.Kernels[k].MaxSMs = warm.maxSMs[k]
	}
	for p := 0; p < n; p++ {
		r := runSolo(app, cfg, prof.PartitionSMs[p])
		prof.Cost += r.total
		prof.Iso[p] = r.total
		for k := range prof.Kernels {
			prof.Kernels[k].Dur[p] = r.dur[k]
			prof.Kernels[k].Cum[p] = r.cum[k]
		}
	}
	return prof, nil
}

// soloRun holds one measured isolated execution.
type soloRun struct {
	total  sim.Time
	dur    []sim.Time
	cum    []sim.Time
	maxSMs []int
}

// runSolo replays the application alone on a fresh simulated device with an
// SM-restricted context, measuring per-kernel timings the way CUDA events
// would: kernel duration excludes queue wait, cumulative time includes it.
func runSolo(app *model.App, cfg sim.Config, smLimit int) soloRun {
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, cfg)
	ctx, err := gpu.NewContext(sim.ContextOptions{SMLimit: smLimit, Label: "profile", NoMemCharge: true})
	if err != nil {
		panic(err) // smLimit validated by caller
	}
	q := ctx.NewQueue("profile")
	host := sim.NewHost(gpu)

	nk := len(app.Kernels)
	run := soloRun{
		dur:    make([]sim.Time, nk),
		cum:    make([]sim.Time, nk),
		maxSMs: make([]int, nk),
	}
	arrive := make([]sim.Time, nk)
	end := make([]sim.Time, nk)
	for i := range app.Kernels {
		i := i
		k := &app.Kernels[i]
		host.Launch(q, k, func(at sim.Time) { end[i] = at })
		arrive[i] = host.Now()
		run.maxSMs[i] = k.SMDemand(smLimit, cfg.SMs)
	}
	eng.Run()

	var prevEnd sim.Time
	for i := range app.Kernels {
		start := arrive[i]
		if prevEnd > start {
			start = prevEnd
		}
		run.dur[i] = end[i] - start
		run.cum[i] = end[i]
		prevEnd = end[i]
	}
	run.total = end[nk-1]
	return run
}

// ProfileAll profiles a set of applications, returning profiles in input
// order.
func ProfileAll(apps []*model.App, opts Options) ([]*Profile, error) {
	out := make([]*Profile, len(apps))
	for i, a := range apps {
		p, err := ProfileApp(a, opts)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
