package profiler

import (
	"encoding/json"
	"fmt"
	"io"
)

// Profile persistence: production deployments profile applications once at
// registration (§4.2) and reuse the data across scheduler restarts. Profiles
// serialize to a versioned JSON document; loading validates structural
// invariants so a corrupted or mismatched file fails fast instead of
// mis-steering the scheduler.

// profileFileVersion guards the on-disk schema.
const profileFileVersion = 1

// profileFile is the serialized form.
type profileFile struct {
	Version int      `json:"version"`
	Profile *Profile `json:"profile"`
}

// Save writes the profile as JSON.
func (p *Profile) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(profileFile{Version: profileFileVersion, Profile: p}); err != nil {
		return fmt.Errorf("profiler: saving %s: %w", p.AppName, err)
	}
	return nil
}

// Load reads a profile previously written by Save and validates it.
func Load(r io.Reader) (*Profile, error) {
	var f profileFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("profiler: loading profile: %w", err)
	}
	if f.Version != profileFileVersion {
		return nil, fmt.Errorf("profiler: profile file version %d, want %d", f.Version, profileFileVersion)
	}
	if f.Profile == nil {
		return nil, fmt.Errorf("profiler: profile file has no profile")
	}
	if err := f.Profile.Validate(); err != nil {
		return nil, err
	}
	return f.Profile, nil
}

// Validate checks the structural invariants the scheduler relies on:
// partition grids, per-kernel arrays sized to the grid, monotone isolated
// latencies and cumulative timelines.
func (p *Profile) Validate() error {
	if p.AppName == "" {
		return fmt.Errorf("profiler: profile has no application name")
	}
	if p.Partitions < 1 || p.DeviceSMs < p.Partitions {
		return fmt.Errorf("profiler: %s: %d partitions on %d SMs", p.AppName, p.Partitions, p.DeviceSMs)
	}
	if len(p.PartitionSMs) != p.Partitions || len(p.Iso) != p.Partitions {
		return fmt.Errorf("profiler: %s: grid arrays sized %d/%d, want %d",
			p.AppName, len(p.PartitionSMs), len(p.Iso), p.Partitions)
	}
	for i := 1; i < p.Partitions; i++ {
		if p.PartitionSMs[i] <= p.PartitionSMs[i-1] {
			return fmt.Errorf("profiler: %s: partition grid not ascending at %d", p.AppName, i)
		}
		if p.Iso[i] > p.Iso[i-1] {
			return fmt.Errorf("profiler: %s: isolated latency increases with SMs at partition %d", p.AppName, i)
		}
	}
	if len(p.Kernels) == 0 {
		return fmt.Errorf("profiler: %s: no kernels", p.AppName)
	}
	for k := range p.Kernels {
		kp := &p.Kernels[k]
		if len(kp.Dur) != p.Partitions || len(kp.Cum) != p.Partitions {
			return fmt.Errorf("profiler: %s: kernel %d arrays sized %d/%d, want %d",
				p.AppName, k, len(kp.Dur), len(kp.Cum), p.Partitions)
		}
		for pt := 0; pt < p.Partitions; pt++ {
			if kp.Dur[pt] <= 0 {
				return fmt.Errorf("profiler: %s: kernel %d non-positive duration at partition %d", p.AppName, k, pt)
			}
			if k > 0 && kp.Cum[pt] < p.Kernels[k-1].Cum[pt] {
				return fmt.Errorf("profiler: %s: cumulative timeline decreases at kernel %d partition %d", p.AppName, k, pt)
			}
		}
		if kp.MaxSMs < 0 || kp.MaxSMs > p.DeviceSMs {
			return fmt.Errorf("profiler: %s: kernel %d MaxSMs %d out of range", p.AppName, k, kp.MaxSMs)
		}
	}
	return nil
}
