package profiler

import (
	"bytes"
	"strings"
	"testing"

	"bless/internal/model"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	p, err := ProfileApp(model.MustGet("vgg11"), Options{Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.AppName != p.AppName || got.Partitions != p.Partitions || got.NumKernels() != p.NumKernels() {
		t.Errorf("round trip changed identity: %s/%d/%d vs %s/%d/%d",
			got.AppName, got.Partitions, got.NumKernels(), p.AppName, p.Partitions, p.NumKernels())
	}
	for pt := 0; pt < p.Partitions; pt++ {
		if got.Iso[pt] != p.Iso[pt] {
			t.Fatalf("iso[%d] changed: %v vs %v", pt, got.Iso[pt], p.Iso[pt])
		}
	}
	for k := range p.Kernels {
		for pt := 0; pt < p.Partitions; pt++ {
			if got.Kernels[k].Dur[pt] != p.Kernels[k].Dur[pt] {
				t.Fatalf("kernel %d dur[%d] changed", k, pt)
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"version":99,"profile":null}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := Load(strings.NewReader(`{"version":1}`)); err == nil {
		t.Error("missing profile accepted")
	}
}

func TestLoadValidatesInvariants(t *testing.T) {
	p, err := ProfileApp(model.MustGet("vgg11"), Options{Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(f func(*Profile)) error {
		var buf bytes.Buffer
		if err := p.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		f(loaded)
		var buf2 bytes.Buffer
		if err := loaded.Save(&buf2); err != nil {
			t.Fatal(err)
		}
		_, err = Load(&buf2)
		return err
	}
	if err := corrupt(func(q *Profile) { q.Iso[0] = 0 }); err == nil {
		t.Error("non-monotone iso accepted")
	}
	if err := corrupt(func(q *Profile) { q.Kernels[3].Dur[2] = -1 }); err == nil {
		t.Error("negative duration accepted")
	}
	if err := corrupt(func(q *Profile) { q.PartitionSMs[1] = q.PartitionSMs[0] }); err == nil {
		t.Error("non-ascending grid accepted")
	}
	if err := corrupt(func(q *Profile) { q.AppName = "" }); err == nil {
		t.Error("anonymous profile accepted")
	}
	if err := corrupt(func(q *Profile) { q.Kernels[0].MaxSMs = 10_000 }); err == nil {
		t.Error("out-of-range MaxSMs accepted")
	}
	if err := corrupt(func(q *Profile) {}); err != nil {
		t.Errorf("intact profile rejected: %v", err)
	}
}

func TestValidateFreshProfiles(t *testing.T) {
	for _, name := range model.Names() {
		p, err := ProfileApp(model.MustGet(name), Options{Partitions: 6})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: fresh profile invalid: %v", name, err)
		}
	}
}
