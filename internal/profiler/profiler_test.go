package profiler

import (
	"errors"
	"testing"
	"testing/quick"

	"bless/internal/model"
	"bless/internal/sim"
)

func profR50(t testing.TB) *Profile {
	t.Helper()
	p, err := ProfileApp(model.MustGet("resnet50"), Options{})
	if err != nil {
		t.Fatalf("ProfileApp: %v", err)
	}
	return p
}

func TestProfileShape(t *testing.T) {
	p := profR50(t)
	if p.Partitions != DefaultPartitions {
		t.Errorf("Partitions = %d, want %d", p.Partitions, DefaultPartitions)
	}
	if p.NumKernels() != 80 {
		t.Errorf("kernels = %d, want 80", p.NumKernels())
	}
	if len(p.PartitionSMs) != 18 || p.PartitionSMs[0] != 6 || p.PartitionSMs[17] != 108 {
		t.Errorf("partition grid = %v, want 6..108 step 6", p.PartitionSMs)
	}
	if p.MemoryBytes <= 0 {
		t.Error("no memory requirement recorded")
	}
}

func TestIsoLatencyMatchesSolo(t *testing.T) {
	app := model.MustGet("resnet50")
	p := profR50(t)
	// Full-partition isolated latency equals the analytic solo duration plus
	// small launch-pipelining gaps.
	cfg := sim.DefaultConfig()
	analytic := app.SoloDuration(cfg.SMs, cfg.PCIeBytesPerNS)
	got := p.Iso[p.Partitions-1]
	if got < analytic {
		t.Errorf("measured iso %v < analytic floor %v", got, analytic)
	}
	if got > analytic+analytic/10 {
		t.Errorf("measured iso %v >> analytic %v: launch gaps too large", got, analytic)
	}
}

func TestIsoMonotoneInPartition(t *testing.T) {
	p := profR50(t)
	for i := 1; i < p.Partitions; i++ {
		if p.Iso[i] > p.Iso[i-1] {
			t.Errorf("Iso[%d]=%v > Iso[%d]=%v: more SMs must not be slower",
				i, p.Iso[i], i-1, p.Iso[i-1])
		}
	}
}

func TestCumulativeConsistency(t *testing.T) {
	p := profR50(t)
	for pt := 0; pt < p.Partitions; pt++ {
		var prev sim.Time
		for k := range p.Kernels {
			cum := p.Kernels[k].Cum[pt]
			if cum < prev {
				t.Fatalf("partition %d kernel %d: cum %v < previous %v", pt, k, cum, prev)
			}
			prev = cum
		}
		last := p.Kernels[len(p.Kernels)-1].Cum[pt]
		if last != p.Iso[pt] {
			t.Errorf("partition %d: last cum %v != iso %v", pt, last, p.Iso[pt])
		}
	}
}

func TestKernelDurationsPositive(t *testing.T) {
	p := profR50(t)
	for pt := 0; pt < p.Partitions; pt++ {
		for k := range p.Kernels {
			if p.Kernels[k].Dur[pt] <= 0 {
				t.Fatalf("partition %d kernel %d: non-positive duration", pt, k)
			}
		}
	}
}

func TestKernelDurAtInterpolates(t *testing.T) {
	p := profR50(t)
	// Pick a compute kernel.
	k := -1
	for i := range p.Kernels {
		if p.Kernels[i].IsCompute {
			k = i
			break
		}
	}
	if k < 0 {
		t.Fatal("no compute kernel")
	}
	// Exactly on the grid.
	if got, want := p.KernelDurAt(k, 54), p.Kernels[k].Dur[8]; got != want {
		t.Errorf("KernelDurAt(54) = %v, want grid value %v", got, want)
	}
	// Between grid points: bounded by neighbours.
	lo, hi := p.Kernels[k].Dur[8], p.Kernels[k].Dur[7] // 54 and 48 SMs
	mid := p.KernelDurAt(k, 51)
	if mid < lo || mid > hi {
		t.Errorf("KernelDurAt(51) = %v outside [%v, %v]", mid, lo, hi)
	}
	// Beyond the device: clamps to full-GPU.
	if got, want := p.KernelDurAt(k, 500), p.Kernels[k].Dur[17]; got != want {
		t.Errorf("KernelDurAt(500) = %v, want clamp %v", got, want)
	}
	// Below the smallest grid point: slower than the 6-SM measurement.
	if got := p.KernelDurAt(k, 3); got < p.Kernels[k].Dur[0] {
		t.Errorf("KernelDurAt(3) = %v faster than 6-SM grid %v", got, p.Kernels[k].Dur[0])
	}
}

func TestKernelDurAtMonotoneProperty(t *testing.T) {
	p := profR50(t)
	f := func(kRaw uint16, a, b uint8) bool {
		k := int(kRaw) % p.NumKernels()
		if !p.Kernels[k].IsCompute {
			return true
		}
		s1, s2 := int(a)%120+1, int(b)%120+1
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		return p.KernelDurAt(k, s2) <= p.KernelDurAt(k, s1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuotaPartition(t *testing.T) {
	p := profR50(t)
	cases := []struct {
		quota float64
		want  int
	}{
		{1.0, 17},
		{0.5, 8},        // 9th partition = 54 SMs
		{1.0 / 3.0, 5},  // 6th partition = 36 SMs
		{2.0 / 3.0, 11}, // 12th = 72 SMs
		{0.01, 0},       // clamps low
		{2.0, 17},       // clamps high
	}
	for _, c := range cases {
		if got := p.QuotaPartition(c.quota); got != c.want {
			t.Errorf("QuotaPartition(%g) = %d, want %d", c.quota, got, c.want)
		}
	}
}

func TestPartitionFor(t *testing.T) {
	p := profR50(t)
	if got := p.PartitionFor(54); p.PartitionSMs[got] != 54 {
		t.Errorf("PartitionFor(54) -> %d SMs", p.PartitionSMs[got])
	}
	if got := p.PartitionFor(55); p.PartitionSMs[got] != 60 {
		t.Errorf("PartitionFor(55) -> %d SMs, want 60 (round up)", p.PartitionSMs[got])
	}
	if got := p.PartitionFor(1000); got != 17 {
		t.Errorf("PartitionFor(1000) = %d, want clamp to 17", got)
	}
}

func TestProfileDeterministic(t *testing.T) {
	p1 := profR50(t)
	p2 := profR50(t)
	for pt := 0; pt < p1.Partitions; pt++ {
		if p1.Iso[pt] != p2.Iso[pt] {
			t.Fatalf("partition %d: iso differs across runs (%v vs %v)", pt, p1.Iso[pt], p2.Iso[pt])
		}
	}
}

func TestProfileCostRealistic(t *testing.T) {
	// Table 1 reports profiling costs from 0.38s (R50) to 6.9s (BERT
	// training). Our N+1 simulated runs should land in the same regime.
	p := profR50(t)
	if p.Cost < 100*sim.Millisecond || p.Cost > 2*sim.Second {
		t.Errorf("profiling cost %v, want within [0.1s, 2s] for resnet50", p.Cost)
	}
}

func TestProfileAllPreservesOrder(t *testing.T) {
	apps := model.InferenceApps()[:2]
	ps, err := ProfileAll(apps, Options{Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	if ps[0].AppName != apps[0].Name || ps[1].AppName != apps[1].Name {
		t.Error("ProfileAll reordered results")
	}
}

func TestProfileRejectsBadInput(t *testing.T) {
	bad := &model.App{Name: "bad"}
	if _, err := ProfileApp(bad, Options{}); err == nil {
		t.Error("empty app accepted")
	}
	cfg := sim.DefaultConfig()
	cfg.SMs = 4
	if _, err := ProfileApp(model.MustGet("vgg11"), Options{Partitions: 18, Config: cfg}); err == nil {
		t.Error("more partitions than SMs accepted")
	}
}

func TestMemcpyKernelsNotComputeInProfile(t *testing.T) {
	p, err := ProfileApp(model.MustGet("vgg11"), Options{Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kernels[0].IsCompute {
		t.Error("h2d input kernel marked compute")
	}
	if p.Kernels[len(p.Kernels)-1].IsCompute {
		t.Error("d2h output kernel marked compute")
	}
	// Memcpy duration must be partition-independent.
	k0 := p.Kernels[0]
	if k0.Dur[0] != k0.Dur[len(k0.Dur)-1] {
		t.Errorf("memcpy duration varies with SM partition: %v vs %v", k0.Dur[0], k0.Dur[len(k0.Dur)-1])
	}
}

func TestCheckColocationAccepts(t *testing.T) {
	ps, err := ProfileAll(model.InferenceApps(), Options{Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckColocation(ps, sim.DefaultConfig(), DefaultAdmissionLimits()); err != nil {
		t.Errorf("paper's five inference apps rejected: %v", err)
	}
}

func TestCheckColocationRejectsOOM(t *testing.T) {
	ps, err := ProfileAll(model.InferenceApps(), Options{Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.MemoryBytes = 1 << 30
	err = CheckColocation(ps, cfg, DefaultAdmissionLimits())
	if !errors.Is(err, sim.ErrOutOfMemory) {
		t.Errorf("error = %v, want ErrOutOfMemory", err)
	}
}

func TestCheckColocationRejectsStarvation(t *testing.T) {
	// One app with a single 3ms monster kernel, one with 5us kernels.
	big := model.Synthetic("monster", 4, 3*sim.Millisecond, 108, 0.3, 1)
	small := model.Synthetic("tiny", 50, 5*sim.Microsecond, 108, 0.3, 2)
	ps, err := ProfileAll([]*model.App{big, small}, Options{Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckColocation(ps, sim.DefaultConfig(), DefaultAdmissionLimits()); err == nil {
		t.Error("starvation-prone pair accepted")
	}
}

func TestCheckColocationRejectsHugeKernel(t *testing.T) {
	huge := model.Synthetic("huge", 3, 20*sim.Millisecond, 108, 0.3, 3)
	ps, err := ProfileAll([]*model.App{huge}, Options{Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckColocation(ps, sim.DefaultConfig(), DefaultAdmissionLimits()); err == nil {
		t.Error("app with 20ms kernel accepted")
	}
}

func TestCheckColocationEmpty(t *testing.T) {
	if err := CheckColocation(nil, sim.DefaultConfig(), DefaultAdmissionLimits()); err == nil {
		t.Error("empty deployment accepted")
	}
}

func TestIsoAtQuota(t *testing.T) {
	p := profR50(t)
	if got, want := p.IsoAtQuota(0.5), p.Iso[8]; got != want {
		t.Errorf("IsoAtQuota(0.5) = %v, want partition value %v", got, want)
	}
	if got, want := p.IsoAtQuota(1.0), p.Iso[17]; got != want {
		t.Errorf("IsoAtQuota(1.0) = %v, want %v", got, want)
	}
}

func TestKernelDurAtUnbounded(t *testing.T) {
	p := profR50(t)
	k := -1
	for i := range p.Kernels {
		if p.Kernels[i].IsCompute && p.Kernels[i].MaxSMs < 80 {
			k = i
			break
		}
	}
	if k < 0 {
		t.Skip("no low-saturation kernel in profile")
	}
	sat := p.Kernels[k].MaxSMs
	// At or below saturation: matches the clamped interpolation.
	if got, want := p.KernelDurAtUnbounded(k, sat), p.KernelDurAt(k, sat); got != want {
		t.Errorf("at saturation: %v vs %v", got, want)
	}
	// Beyond saturation: keeps shrinking hyperbolically.
	beyond := p.KernelDurAtUnbounded(k, 2*sat)
	clamped := p.KernelDurAt(k, 2*sat)
	if beyond >= clamped {
		t.Errorf("unbounded duration %v not below clamped %v beyond saturation", beyond, clamped)
	}
	wantHalf := p.Kernels[k].Dur[p.Partitions-1] / 2
	if diff := beyond - wantHalf; diff < -sim.Microsecond || diff > sim.Microsecond {
		t.Errorf("unbounded at 2x saturation = %v, want ~half the saturated duration %v", beyond, wantHalf)
	}
}
