// Package serveapi defines the wire types of blessd's sustained-load
// serving surface (Planner.ServeOpen / Serve / ServeStats / ServeClose),
// shared between the daemon's planner and RPC clients like blessload. The
// types are pure data — all behavior lives in the planner.
package serveapi

// ServeTenant declares one tenant of an open serving deployment.
type ServeTenant struct {
	// Name identifies the tenant on the Serve path.
	Name string
	// App is a built-in application name (bless.Models).
	App string
	// Quota is the provisioned GPU fraction in (0, 1].
	Quota float64
	// RateRPS is the tenant's nominal offered rate (requests per virtual
	// second); request seq arrives at seq/RateRPS.
	RateRPS float64
	// BoundMS caps the virtual queueing delay an admitted request may see;
	// beyond it requests shed. 0 defaults to 4x the tenant's iso service
	// time.
	BoundMS float64
}

// ServeOpenRequest opens a serving deployment.
type ServeOpenRequest struct {
	// Tenants are the deployment's tenants.
	Tenants []ServeTenant
	// GPUs is the pool size for the placement admission pass (default 1).
	GPUs int
	// GPUSMs overrides the per-device SM count (default 108).
	GPUSMs int
	// Workers is the intake shard count (default 4).
	Workers int
	// BatchMax caps how many queued requests one batching window plans in a
	// single pass (default 64).
	BatchMax int
	// Trace records per-decision serve events into a bounded ring exposed
	// on /debug/bless/serve (off for the zero-alloc fast path).
	Trace bool
}

// ServeTenantInfo reports one tenant's derived admission parameters.
type ServeTenantInfo struct {
	Name string
	// Device is the host device index from the placement pass.
	Device int
	// Worker is the intake shard that owns the tenant's lane.
	Worker int
	// IntervalNS, ServiceNS and BoundNS are the lane parameters: nominal
	// inter-arrival gap, bubble-free iso cost at the tenant's quota, and
	// the shed bound (virtual ns).
	IntervalNS, ServiceNS, BoundNS int64
}

// ServeOpenReply reports the opened deployment.
type ServeOpenReply struct {
	Tenants []ServeTenantInfo
	Workers int
	GPUs    int
}

// ServeRequest is one admission request. Seq is the per-tenant request
// sequence number; each tenant's stream must arrive in seq order (0,1,2,…),
// which a closed-loop client satisfies by construction.
type ServeRequest struct {
	Tenant string
	Seq    int
}

// ServeReply is the admission decision.
type ServeReply struct {
	Seq      int
	Admitted bool
	// WaitNS is the virtual queueing delay; ServiceNS the charged iso cost
	// (admitted only); RetryAfterNS how long past the bound the lane runs
	// (shed only).
	WaitNS, ServiceNS, RetryAfterNS int64
}

// ServeTenantStats is one tenant's accounting in ServeStatsReply.
type ServeTenantStats struct {
	Name                    string
	Offered, Admitted, Shed uint64
	// Digest is the tenant's decision-chain digest (hex).
	Digest string
	// HeadroomNS is the lane's remaining bound at its current backlog;
	// negative means the next on-time arrival sheds.
	HeadroomNS int64
}

// ServeStatsReply is the open deployment's accounting.
type ServeStatsReply struct {
	Open                    bool
	Offered, Admitted, Shed uint64
	// Batches and BatchMeanSize describe the batching windows processed.
	Batches       uint64
	BatchMeanSize float64
	// Digest is the cross-tenant XOR fold of per-tenant decision digests —
	// identical between serial and concurrent intake of the same per-tenant
	// streams.
	Digest string
	// WaitMeanNS/WaitP50NS/WaitP99NS summarize admitted virtual queueing
	// delay.
	WaitMeanNS, WaitP50NS, WaitP99NS int64
	// DecisionMeanNS is the measured wall-clock scheduler cost per decision
	// on the intake workers; BudgetNS is the §6.9 budget for one request
	// (SchedPerKernel x the deployment's mean kernels per request); a
	// sustained DecisionMeanNS above BudgetNS means the front end, not the
	// GPU, is the bottleneck.
	DecisionMeanNS float64
	BudgetNS       int64
	WithinBudget   bool
	PerTenant      []ServeTenantStats
	// Violations are serve-invariant breaches (lost requests, in-quota
	// shedding); empty on a healthy run.
	Violations []string
}

// ServeCloseReply carries the final stats of the closed deployment.
type ServeCloseReply struct {
	Stats ServeStatsReply
}
