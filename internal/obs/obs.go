// Package obs is the unified observability layer: a fan-out bus for runtime
// decision events (squad formation, execution-configuration choice, context
// switches, pace-guard trips, endgame flushes), a streaming metrics registry
// cheap enough to stay always-on, and exporters — Chrome trace-event JSON
// (Perfetto-loadable) and metrics snapshots — reconstructing the visibility
// the paper's evaluation (§6) obtained from Nsight/CUDA-event profiling.
//
// The layer is layered on top of, not into, the simulator: kernel-level
// execution is observed through the sim.Tracer fan-out (GPU.AddTracer), and
// scheduler-level decisions are emitted by internal/core onto a Bus. With no
// subscribers attached, both paths are no-ops and the kernel hot path
// allocates nothing.
package obs

import (
	"fmt"
	"time"

	"bless/internal/sim"
)

// Kind enumerates the runtime decision events of the BLESS scheduling cycle.
type Kind int

const (
	// KindSquadFormed fires when the multi-task scheduler has generated a
	// kernel squad: members, per-member kernel ranges, and the reason squad
	// generation stopped (kernel cap, pace-guard duration cap, request end,
	// endgame flush, or backlog drained).
	KindSquadFormed Kind = iota
	// KindConfigChosen fires when the execution-configuration determiner has
	// picked SP / NSP / Semi-SP for the squad, with the predicted duration
	// and the number of configurations evaluated.
	KindConfigChosen
	// KindContextSwitch fires when a client's kernel launches are redirected
	// to a different GPU context, opening the ~50us MPS redirection vacuum
	// (§6.9). Reason says which way: "restrict" (default -> SM-restricted),
	// "unrestrict" (Semi-SP tail back to the default context), or
	// "re-restrict" (between restricted slots).
	KindContextSwitch
	// KindPaceGuardTrip fires when squad generation was cut short by the
	// pace-guard duration cap: a longer squad could have pushed a client
	// behind its quota-isolated pace.
	KindPaceGuardTrip
	// KindEndgameFlush fires when the scheduler elects to finish a nearly
	// done request outright instead of pace-sharing (§4.3.2's alternation
	// payoff).
	KindEndgameFlush
	// KindSquadDone fires when the squad's last kernel retires, carrying the
	// actual measured duration next to the determiner's prediction.
	KindSquadDone
	// KindKernelFault fires when fault injection fails a kernel execution;
	// Reason carries the kernel index and attempt number.
	KindKernelFault
	// KindKernelRetry fires when the runtime relaunches a faulted kernel
	// after backoff; Predicted carries the relaunch instant.
	KindKernelRetry
	// KindRequestAbort fires when the runtime fails a request outright;
	// Reason distinguishes "retries-exhausted" from "deadline".
	KindRequestAbort
	// KindContextFault fires when establishing an SM-restricted context
	// fails and the squad entry degrades to another context.
	KindContextFault
	// KindClientCrash, KindClientJoin and KindClientLeave mark client churn:
	// abrupt teardown, mid-run admission, and graceful drain respectively.
	KindClientCrash
	KindClientJoin
	KindClientLeave
	// KindQuotaReprovision fires per client whose effective quota changed
	// when quotas re-normalized over the live client set after churn.
	KindQuotaReprovision
	// KindRequestAdmitted fires when the runtime accepts a request at
	// Submit: the start of the request's lifecycle span. Seq identifies the
	// request within its client. The timestamp is host-clock stamped (like
	// every scheduler decision); the exact arrival instant is recoverable
	// from the completion event's latency.
	KindRequestAdmitted
	// KindRequestDone fires when a request completes — successfully or
	// aborted (Reason "ok" or "failed") — closing its lifecycle span.
	// Actual carries the request's exact latency (Done - Arrival).
	KindRequestDone
	// KindServeIntake fires per admission decision on the serving front
	// end's deterministic lanes: Client is the tenant, Seq the per-tenant
	// request sequence, Actual the virtual queueing delay. Reason is
	// "admit" or "shed".
	KindServeIntake
	// KindServeShed fires when the front end sheds a request because its
	// queueing delay would exceed the tenant's bound; Predicted carries the
	// retry-after delay returned to the client.
	KindServeShed
	// KindServeBatch fires once per intake batching window processed by a
	// worker; Considered carries the batch size.
	KindServeBatch
)

// String names the kind for exports and logs.
func (k Kind) String() string {
	switch k {
	case KindSquadFormed:
		return "squad_formed"
	case KindConfigChosen:
		return "config_chosen"
	case KindContextSwitch:
		return "context_switch"
	case KindPaceGuardTrip:
		return "pace_guard_trip"
	case KindEndgameFlush:
		return "endgame_flush"
	case KindSquadDone:
		return "squad_done"
	case KindKernelFault:
		return "kernel_fault"
	case KindKernelRetry:
		return "kernel_retry"
	case KindRequestAbort:
		return "request_abort"
	case KindContextFault:
		return "context_fault"
	case KindClientCrash:
		return "client_crash"
	case KindClientJoin:
		return "client_join"
	case KindClientLeave:
		return "client_leave"
	case KindQuotaReprovision:
		return "quota_reprovision"
	case KindRequestAdmitted:
		return "request_admitted"
	case KindRequestDone:
		return "request_done"
	case KindServeIntake:
		return "serve_intake"
	case KindServeShed:
		return "serve_shed"
	case KindServeBatch:
		return "serve_batch"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// SquadMember is one client's contribution to a squad, as seen by observers.
type SquadMember struct {
	// Client is the application name.
	Client string
	// From and To bound the member's kernel index range [From, To).
	From, To int
	// SMs is the member's SM grant under a spatial configuration (0 when
	// unrestricted).
	SMs int
}

// Event is one runtime decision, stamped with virtual time. Which fields are
// meaningful depends on Kind; unused fields are zero.
type Event struct {
	// At is the virtual time of the decision.
	At sim.Time
	// Kind classifies the event.
	Kind Kind
	// Squad is the 1-based sequence number of the squad the event belongs
	// to (0 when not squad-scoped).
	Squad int64
	// Client is the affected application name ("" when squad-wide).
	Client string
	// Mode is the chosen execution configuration ("NSP", "SP", "Semi-SP")
	// for KindConfigChosen and KindSquadDone.
	Mode string
	// Reason carries the squad stop reason, the context-switch direction, or
	// the pace-guard trigger.
	Reason string
	// Predicted is the determiner's estimated squad duration; Actual the
	// measured one (KindSquadDone).
	Predicted, Actual sim.Time
	// Considered counts configurations evaluated (KindConfigChosen).
	Considered int
	// Seq is the client-local request sequence number for request-scoped
	// events (admission, completion, kernel faults/retries, aborts). It is
	// only meaningful when RequestScoped(Kind) is true — Seq 0 is a valid
	// first request, so Kind, not Seq, decides request scope.
	Seq int
	// Device names the emitting device in multi-GPU (cluster) runs; empty
	// on single-device runs. Exporters use it to split lanes per device.
	Device string
	// Members lists the squad composition (KindSquadFormed).
	Members []SquadMember
}

// RequestScoped reports whether events of this kind carry a meaningful Seq,
// i.e. belong to one request's lifecycle rather than to a squad or client.
func (k Kind) RequestScoped() bool {
	switch k {
	case KindRequestAdmitted, KindRequestDone, KindKernelFault, KindKernelRetry, KindRequestAbort:
		return true
	}
	return false
}

// Subscriber receives published events. Publish runs synchronously inside
// the simulation loop; implementations must not mutate scheduler or device
// state and should be fast.
type Subscriber interface {
	Publish(ev Event)
}

// SubscriberFunc adapts a function to the Subscriber interface.
type SubscriberFunc func(ev Event)

// Publish implements Subscriber.
func (f SubscriberFunc) Publish(ev Event) { f(ev) }

// Bus fans decision events out to any number of subscribers, generalizing
// the old single-tracer pattern. A nil *Bus is valid and drops everything,
// so emitters need no nil checks beyond calling through the pointer.
//
// The bus self-accounts: it always counts delivered events, and with
// SelfAccount(true) it additionally wall-clocks the subscriber fan-out —
// extending the §6.9 overhead attribution to the tracing layer itself. The
// accounting is out-of-band (no virtual time is charged), so attaching
// subscribers never perturbs the simulation: digests are bit-identical with
// tracing on or off.
type Bus struct {
	subs []Subscriber

	account  bool
	emitted  int64
	wallNano int64
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe attaches a subscriber; nil subscribers are ignored.
func (b *Bus) Subscribe(s Subscriber) {
	if b != nil && s != nil {
		b.subs = append(b.subs, s)
	}
}

// Enabled reports whether any subscriber is attached: emitters can skip
// building expensive event payloads (member slices) when false.
func (b *Bus) Enabled() bool { return b != nil && len(b.subs) > 0 }

// Emit publishes the event to all subscribers in attachment order. Safe on a
// nil bus.
func (b *Bus) Emit(ev Event) {
	if b == nil || len(b.subs) == 0 {
		return
	}
	b.emitted++
	if b.account {
		start := time.Now()
		for _, s := range b.subs {
			s.Publish(ev)
		}
		b.wallNano += time.Since(start).Nanoseconds()
		return
	}
	for _, s := range b.subs {
		s.Publish(ev)
	}
}

// SelfAccount toggles wall-clock measurement of the subscriber fan-out.
// Event counting is always on; the timer costs two monotonic clock reads per
// event, so it is opt-in. Safe on a nil bus (no-op).
func (b *Bus) SelfAccount(on bool) {
	if b != nil {
		b.account = on
	}
}

// BusCost is the bus's self-measured publication cost.
type BusCost struct {
	// Events counts events delivered to at least one subscriber.
	Events int64
	// WallNS is real (not virtual) time spent inside subscriber fan-out,
	// accumulated only while SelfAccount is on.
	WallNS int64
}

// Cost returns the accumulated self-accounting. Safe on a nil bus.
func (b *Bus) Cost() BusCost {
	if b == nil {
		return BusCost{}
	}
	return BusCost{Events: b.emitted, WallNS: b.wallNano}
}

// Observable is implemented by schedulers that can emit decision events;
// the harness uses it to attach a bus without widening the
// sharing.Scheduler contract. Observe must be called before Deploy.
type Observable interface {
	Observe(bus *Bus)
}
