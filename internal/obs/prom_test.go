package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bless/internal/sim"
)

// fixtureRegistry builds a small deterministic registry.
func fixtureRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("requests/completed_total").Add(42)
	reg.Counter("obs/events_dropped_total").Add(3)
	reg.Gauge("cluster/devices").Set(4)
	reg.Gauge("sched/utilization").Set(0.875)
	h := reg.Histogram("latency/request_ns")
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Time(i) * 10 * sim.Microsecond)
	}
	return reg
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, fixtureRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheusSLO(&buf, fixtureSLO().Snapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom.golden.txt")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Prometheus exposition diverged from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestPrometheusNamesSanitized(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, fixtureRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		if !strings.HasPrefix(name, "bless_") {
			t.Errorf("metric %q lacks bless_ prefix", name)
		}
		if strings.ContainsAny(name, "/-.") {
			t.Errorf("metric %q contains unsanitized characters", name)
		}
	}
}

// TestMergeSnapshotsLossless is the fleet-merge property test: per-device
// registry snapshots merged with MergeSnapshots must yield exactly the
// histogram quantiles of one registry fed the combined stream — across
// three simulated devices with interleaved, device-skewed samples.
func TestMergeSnapshotsLossless(t *testing.T) {
	const devices = 3
	whole := NewRegistry()
	var parts []*Registry
	for d := 0; d < devices; d++ {
		parts = append(parts, NewRegistry())
	}
	for i := 0; i < 1000; i++ {
		d := i % devices
		// Device-skewed latencies so per-device distributions differ.
		lat := sim.Time((i%211)+1) * sim.Time(d+1) * 13 * sim.Microsecond
		whole.Histogram("latency/request_ns").Observe(lat)
		parts[d].Histogram("latency/request_ns").Observe(lat)
		whole.Counter("requests/completed_total").Inc()
		parts[d].Counter("requests/completed_total").Inc()
	}
	snaps := make([]Snapshot, devices)
	for d, p := range parts {
		snaps[d] = p.Snapshot()
	}
	merged := MergeSnapshots(snaps...)
	want := whole.Snapshot()

	if merged.Counters["requests/completed_total"] != want.Counters["requests/completed_total"] {
		t.Errorf("merged counter = %d, want %d",
			merged.Counters["requests/completed_total"], want.Counters["requests/completed_total"])
	}
	mh, wh := merged.Histograms["latency/request_ns"], want.Histograms["latency/request_ns"]
	if mh.Count != wh.Count || mh.SumNS != wh.SumNS || mh.MinNS != wh.MinNS || mh.MaxNS != wh.MaxNS {
		t.Errorf("merged histogram envelope %+v, want %+v", mh, wh)
	}
	if mh.P50NS != wh.P50NS || mh.P95NS != wh.P95NS || mh.P99NS != wh.P99NS {
		t.Errorf("merged quantiles p50/p95/p99 = %d/%d/%d, want %d/%d/%d",
			mh.P50NS, mh.P95NS, mh.P99NS, wh.P50NS, wh.P95NS, wh.P99NS)
	}
	if len(mh.Bucket) != len(wh.Bucket) {
		t.Fatalf("bucket lengths differ: %d vs %d", len(mh.Bucket), len(wh.Bucket))
	}
	for i := range mh.Bucket {
		if mh.Bucket[i] != wh.Bucket[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, mh.Bucket[i], wh.Bucket[i])
		}
	}
	// Gauges average across reporting devices.
	g := MergeSnapshots(
		Snapshot{Gauges: map[string]float64{"sched/utilization": 0.5}},
		Snapshot{Gauges: map[string]float64{"sched/utilization": 1.0}},
	)
	if g.Gauges["sched/utilization"] != 0.75 {
		t.Errorf("merged gauge = %v, want 0.75", g.Gauges["sched/utilization"])
	}
}
