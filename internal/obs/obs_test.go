package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bless/internal/sim"
)

func TestBusFanOut(t *testing.T) {
	bus := NewBus()
	var got []string
	bus.Subscribe(SubscriberFunc(func(ev Event) { got = append(got, "a:"+ev.Kind.String()) }))
	bus.Subscribe(SubscriberFunc(func(ev Event) { got = append(got, "b:"+ev.Kind.String()) }))
	bus.Subscribe(nil) // ignored
	bus.Emit(Event{Kind: KindEndgameFlush})
	if len(got) != 2 || got[0] != "a:endgame_flush" || got[1] != "b:endgame_flush" {
		t.Fatalf("fan-out wrong: %v", got)
	}
}

func TestNilBusSafe(t *testing.T) {
	var bus *Bus
	bus.Emit(Event{Kind: KindSquadFormed}) // must not panic
	bus.Subscribe(SubscriberFunc(func(Event) {}))
	if bus.Enabled() {
		t.Fatal("nil bus reports enabled")
	}
}

func TestBusEnabled(t *testing.T) {
	bus := NewBus()
	if bus.Enabled() {
		t.Fatal("empty bus reports enabled")
	}
	bus.Subscribe(SubscriberFunc(func(Event) {}))
	if !bus.Enabled() {
		t.Fatal("subscribed bus reports disabled")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindSquadFormed, KindConfigChosen, KindContextSwitch,
		KindPaceGuardTrip, KindEndgameFlush, KindSquadDone}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("squads_total").Add(3)
	r.Counter("squads_total").Inc()
	r.Gauge("utilization").Set(0.75)
	h := r.Histogram("latency")
	for _, v := range []sim.Time{sim.Millisecond, 2 * sim.Millisecond, 4 * sim.Millisecond} {
		h.Observe(v)
	}

	if got := r.Counter("squads_total").Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if got := r.Gauge("utilization").Value(); got != 0.75 {
		t.Fatalf("gauge = %g, want 0.75", got)
	}
	d := h.Digest()
	if d.Count != 3 || d.Min != sim.Millisecond || d.Max != 4*sim.Millisecond {
		t.Fatalf("histogram digest wrong: %+v", d)
	}

	snap := r.Snapshot()
	if snap.Counters["squads_total"] != 4 {
		t.Fatalf("snapshot counter wrong: %+v", snap.Counters)
	}
	hs := snap.Histograms["latency"]
	if hs.Count != 3 || hs.MinNS != int64(sim.Millisecond) || hs.MaxNS != int64(4*sim.Millisecond) {
		t.Fatalf("snapshot histogram wrong: %+v", hs)
	}
	if len(hs.Bucket) == 0 {
		t.Fatal("snapshot histogram dropped the mergeable buckets")
	}

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["squads_total"] != 4 || back.Histograms["latency"].Count != 3 {
		t.Fatalf("round-tripped snapshot wrong: %+v", back)
	}

	names := r.Names()
	want := []string{"latency", "squads_total", "utilization"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("b").Add(2)
		r.Counter("a").Add(1)
		r.Gauge("z").Set(1.5)
		r.Histogram("lat").Observe(5 * sim.Microsecond)
		var buf bytes.Buffer
		if err := r.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if build() != build() {
		t.Fatal("snapshot JSON is not deterministic")
	}
}

func TestBusSelfAccounting(t *testing.T) {
	bus := NewBus()
	var n int
	bus.Subscribe(SubscriberFunc(func(Event) { n++ }))
	bus.Emit(Event{Kind: KindSquadFormed})
	if c := bus.Cost(); c.Events != 1 || c.WallNS != 0 {
		t.Fatalf("cost without SelfAccount = %+v, want {1 0}", c)
	}
	bus.SelfAccount(true)
	bus.Emit(Event{Kind: KindSquadDone})
	bus.Emit(Event{Kind: KindRequestDone})
	c := bus.Cost()
	if c.Events != 3 {
		t.Fatalf("events = %d, want 3", c.Events)
	}
	if c.WallNS < 0 {
		t.Fatalf("wall ns negative: %d", c.WallNS)
	}
	if n != 3 {
		t.Fatalf("subscriber saw %d events, want 3", n)
	}
	var nilBus *Bus
	nilBus.SelfAccount(true) // must not panic
	if got := nilBus.Cost(); got != (BusCost{}) {
		t.Fatalf("nil bus cost = %+v", got)
	}
}

func TestBoundedCollectorDrops(t *testing.T) {
	c := NewBoundedCollector(2)
	c.Device = "gpu0"
	for i := 0; i < 5; i++ {
		c.Publish(Event{Kind: KindSquadFormed, Squad: int64(i)})
	}
	if len(c.Events) != 2 {
		t.Fatalf("kept %d events, want 2", len(c.Events))
	}
	if c.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", c.Dropped())
	}
	if c.Events[0].Device != "gpu0" {
		t.Fatalf("device not stamped: %+v", c.Events[0])
	}
}

func TestRequestScoped(t *testing.T) {
	scoped := []Kind{KindRequestAdmitted, KindRequestDone, KindKernelFault, KindKernelRetry, KindRequestAbort}
	for _, k := range scoped {
		if !k.RequestScoped() {
			t.Errorf("%v not request-scoped", k)
		}
	}
	for _, k := range []Kind{KindSquadFormed, KindConfigChosen, KindContextSwitch, KindSquadDone, KindClientCrash} {
		if k.RequestScoped() {
			t.Errorf("%v wrongly request-scoped", k)
		}
	}
}

// TestUntracedSpanPathZeroAlloc is the alloc gate for the untraced fast
// path: emitting on a nil or subscriber-less bus must not allocate — the
// cost of having observability compiled in but switched off is zero.
func TestUntracedSpanPathZeroAlloc(t *testing.T) {
	var nilBus *Bus
	empty := NewBus()
	allocs := testing.AllocsPerRun(1000, func() {
		nilBus.Emit(Event{Kind: KindRequestAdmitted, Client: "resnet50", Seq: 1})
		empty.Emit(Event{Kind: KindRequestDone, Client: "resnet50", Seq: 1, Actual: sim.Millisecond})
	})
	if allocs != 0 {
		t.Fatalf("untraced Emit allocates %v/op, want 0", allocs)
	}
}

// BenchmarkUntracedSpanPath feeds the CI bench gate's 0 allocs/op assertion
// (BENCH_sim.json); it measures Emit with no subscribers attached — the
// always-on cost every kernel-launch site pays.
func BenchmarkUntracedSpanPath(b *testing.B) {
	bus := NewBus()
	ev := Event{Kind: KindRequestAdmitted, Client: "resnet50", Seq: 1, At: sim.Microsecond}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Emit(ev)
	}
}
