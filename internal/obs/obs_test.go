package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bless/internal/sim"
)

func TestBusFanOut(t *testing.T) {
	bus := NewBus()
	var got []string
	bus.Subscribe(SubscriberFunc(func(ev Event) { got = append(got, "a:"+ev.Kind.String()) }))
	bus.Subscribe(SubscriberFunc(func(ev Event) { got = append(got, "b:"+ev.Kind.String()) }))
	bus.Subscribe(nil) // ignored
	bus.Emit(Event{Kind: KindEndgameFlush})
	if len(got) != 2 || got[0] != "a:endgame_flush" || got[1] != "b:endgame_flush" {
		t.Fatalf("fan-out wrong: %v", got)
	}
}

func TestNilBusSafe(t *testing.T) {
	var bus *Bus
	bus.Emit(Event{Kind: KindSquadFormed}) // must not panic
	bus.Subscribe(SubscriberFunc(func(Event) {}))
	if bus.Enabled() {
		t.Fatal("nil bus reports enabled")
	}
}

func TestBusEnabled(t *testing.T) {
	bus := NewBus()
	if bus.Enabled() {
		t.Fatal("empty bus reports enabled")
	}
	bus.Subscribe(SubscriberFunc(func(Event) {}))
	if !bus.Enabled() {
		t.Fatal("subscribed bus reports disabled")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindSquadFormed, KindConfigChosen, KindContextSwitch,
		KindPaceGuardTrip, KindEndgameFlush, KindSquadDone}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("squads_total").Add(3)
	r.Counter("squads_total").Inc()
	r.Gauge("utilization").Set(0.75)
	h := r.Histogram("latency")
	for _, v := range []sim.Time{sim.Millisecond, 2 * sim.Millisecond, 4 * sim.Millisecond} {
		h.Observe(v)
	}

	if got := r.Counter("squads_total").Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if got := r.Gauge("utilization").Value(); got != 0.75 {
		t.Fatalf("gauge = %g, want 0.75", got)
	}
	d := h.Digest()
	if d.Count != 3 || d.Min != sim.Millisecond || d.Max != 4*sim.Millisecond {
		t.Fatalf("histogram digest wrong: %+v", d)
	}

	snap := r.Snapshot()
	if snap.Counters["squads_total"] != 4 {
		t.Fatalf("snapshot counter wrong: %+v", snap.Counters)
	}
	hs := snap.Histograms["latency"]
	if hs.Count != 3 || hs.MinNS != int64(sim.Millisecond) || hs.MaxNS != int64(4*sim.Millisecond) {
		t.Fatalf("snapshot histogram wrong: %+v", hs)
	}
	if len(hs.Bucket) == 0 {
		t.Fatal("snapshot histogram dropped the mergeable buckets")
	}

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["squads_total"] != 4 || back.Histograms["latency"].Count != 3 {
		t.Fatalf("round-tripped snapshot wrong: %+v", back)
	}

	names := r.Names()
	want := []string{"latency", "squads_total", "utilization"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("b").Add(2)
		r.Counter("a").Add(1)
		r.Gauge("z").Set(1.5)
		r.Histogram("lat").Observe(5 * sim.Microsecond)
		var buf bytes.Buffer
		if err := r.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if build() != build() {
		t.Fatal("snapshot JSON is not deterministic")
	}
}
