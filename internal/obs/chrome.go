package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"bless/internal/sim"
	"bless/internal/timeline"
)

// Chrome trace-event JSON exporter (the "JSON Array Format" understood by
// Perfetto and chrome://tracing). Kernel spans become complete ("X") events,
// one thread lane per client; squads become spans on a dedicated scheduler
// lane; point decisions (context switches, pace-guard trips, flushes) become
// instant ("i") events on the affected client's lane, or the scheduler lane
// when squad-wide. Virtual time is deterministic, so exports are byte-stable
// and golden-testable.

// chromeEvent is one trace-event record. Field order follows the trace-event
// spec's conventional ordering; encoding/json emits struct fields in
// declaration order and sorts map keys, keeping output deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	chromePid    = 0 // single simulated process
	schedulerTid = 0 // scheduler decision lane; client lanes are 1..N
)

// usOf converts virtual nanoseconds to the trace format's microseconds.
func usOf(t sim.Time) float64 { return float64(t) / 1e3 }

// clientLaneOf names the lane of an event's client, prefixing the device in
// cluster exports ("gpu0/resnet50") so each device gets its own lane group.
func clientLaneOf(ev Event) string {
	if ev.Device != "" {
		return ev.Device + "/" + ev.Client
	}
	return ev.Client
}

// schedLaneOf names the scheduler lane an event's squad-wide decisions land
// on: the shared lane on single-device exports, a per-device one
// ("gpu1/scheduler") when the event is device-tagged.
func schedLaneOf(ev Event) string {
	if ev.Device != "" {
		return ev.Device + "/scheduler"
	}
	return ""
}

// WriteChromeTrace writes kernel spans and decision events as Chrome
// trace-event JSON. Lanes (one per distinct span lane, i.e. per client, with
// device-prefixed lane names in cluster exports) are announced with
// thread_name metadata so Perfetto labels them.
func WriteChromeTrace(w io.Writer, spans []timeline.Span, events []Event) error {
	// Assign lane tids: scheduler first, then client lanes in sorted order
	// for determinism. Decision events may reference clients that never ran
	// a kernel in the window; give them lanes too.
	laneSet := map[string]bool{}
	for _, s := range spans {
		laneSet[s.Lane] = true
	}
	for _, ev := range events {
		if ev.Client != "" {
			laneSet[clientLaneOf(ev)] = true
		} else if l := schedLaneOf(ev); l != "" {
			laneSet[l] = true
		}
	}
	lanes := make([]string, 0, len(laneSet))
	for l := range laneSet {
		lanes = append(lanes, l)
	}
	sort.Strings(lanes)
	tidOf := map[string]int{}
	for i, l := range lanes {
		tidOf[l] = i + 1
	}

	out := make([]chromeEvent, 0, len(spans)+len(events)+len(lanes)+2)

	// Metadata: process and lane names.
	meta := func(name string, tid int, label string) chromeEvent {
		return chromeEvent{
			Name: name, Ph: "M", Pid: chromePid, Tid: tid,
			Args: map[string]any{"name": label},
		}
	}
	out = append(out, meta("process_name", schedulerTid, "bless"))
	out = append(out, meta("thread_name", schedulerTid, "scheduler"))
	for _, l := range lanes {
		out = append(out, meta("thread_name", tidOf[l], l))
	}

	// Kernel spans.
	for _, s := range spans {
		dur := usOf(s.End - s.Start)
		out = append(out, chromeEvent{
			Name: s.Kernel, Cat: "kernel", Ph: "X",
			Ts: usOf(s.Start), Dur: &dur,
			Pid: chromePid, Tid: tidOf[s.Lane],
			Args: map[string]any{"queue": s.Queue, "avg_sms": round2(s.AvgSMs)},
		})
	}

	// Decision events.
	for _, ev := range events {
		tid := schedulerTid
		if ev.Client != "" {
			tid = tidOf[clientLaneOf(ev)]
		} else if l := schedLaneOf(ev); l != "" {
			tid = tidOf[l]
		}
		switch ev.Kind {
		case KindSquadDone:
			// Render the whole squad as a span on the scheduler lane: start
			// is completion minus the measured duration.
			dur := usOf(ev.Actual)
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("squad %d (%s)", ev.Squad, ev.Mode),
				Cat:  "squad", Ph: "X",
				Ts: usOf(ev.At - ev.Actual), Dur: &dur,
				Pid: chromePid, Tid: tid,
				Args: map[string]any{
					"predicted_us": usOf(ev.Predicted),
					"actual_us":    usOf(ev.Actual),
				},
			})
		case KindRequestDone:
			// Render the whole request lifecycle as a span on its client's
			// lane: Actual is the exact latency, so the span runs from the
			// arrival instant to completion.
			dur := usOf(ev.Actual)
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("request %d (%s)", ev.Seq, ev.Reason),
				Cat:  "request", Ph: "X",
				Ts: usOf(ev.At - ev.Actual), Dur: &dur,
				Pid: chromePid, Tid: tid,
				Args: map[string]any{
					"seq":        ev.Seq,
					"latency_us": usOf(ev.Actual),
					"outcome":    ev.Reason,
				},
			})
		case KindSquadFormed:
			args := map[string]any{"reason": ev.Reason}
			for _, m := range ev.Members {
				args[m.Client] = fmt.Sprintf("k%d-%d", m.From, m.To-1)
			}
			out = append(out, chromeEvent{
				Name: ev.Kind.String(), Cat: "decision", Ph: "i",
				Ts: usOf(ev.At), Pid: chromePid, Tid: tid, S: "t",
				Args: args,
			})
		case KindConfigChosen:
			args := map[string]any{
				"mode":         ev.Mode,
				"predicted_us": usOf(ev.Predicted),
				"considered":   ev.Considered,
			}
			for _, m := range ev.Members {
				if m.SMs > 0 {
					args[m.Client+"_sms"] = m.SMs
				}
			}
			out = append(out, chromeEvent{
				Name: ev.Kind.String(), Cat: "decision", Ph: "i",
				Ts: usOf(ev.At), Pid: chromePid, Tid: tid, S: "t",
				Args: args,
			})
		default:
			args := map[string]any{}
			if ev.Reason != "" {
				args["reason"] = ev.Reason
			}
			if ev.Squad != 0 {
				args["squad"] = ev.Squad
			}
			if ev.Kind.RequestScoped() {
				args["seq"] = ev.Seq
			}
			out = append(out, chromeEvent{
				Name: ev.Kind.String(), Cat: "decision", Ph: "i",
				Ts: usOf(ev.At), Pid: chromePid, Tid: tid, S: "t",
				Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// round2 rounds to two decimals so float formatting stays stable across
// accumulation orders.
func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}
