package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"bless/internal/sim"
	"bless/internal/timeline"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// fixtureTrace builds a small deterministic run: two client lanes, two
// squads, one decision event of every kind.
func fixtureTrace() ([]timeline.Span, []Event) {
	spans := []timeline.Span{
		{Lane: "resnet50", Kernel: "conv1", Queue: "resnet50/q", Start: 10 * sim.Microsecond, End: 110 * sim.Microsecond, AvgSMs: 54},
		{Lane: "vgg11", Kernel: "fc6", Queue: "vgg11/q", Start: 15 * sim.Microsecond, End: 95 * sim.Microsecond, AvgSMs: 54.333},
		{Lane: "resnet50", Kernel: "conv2", Queue: "resnet50/sm54", Start: 120 * sim.Microsecond, End: 300 * sim.Microsecond, AvgSMs: 40.5},
	}
	events := []Event{
		{At: 4 * sim.Microsecond, Kind: KindRequestAdmitted, Client: "resnet50", Seq: 0},
		{At: 5 * sim.Microsecond, Kind: KindSquadFormed, Squad: 1, Reason: "kernel-cap",
			Members: []SquadMember{
				{Client: "resnet50", From: 0, To: 2},
				{Client: "vgg11", From: 0, To: 1},
			}},
		{At: 6 * sim.Microsecond, Kind: KindConfigChosen, Squad: 1, Mode: "Semi-SP",
			Predicted: 290 * sim.Microsecond, Considered: 18,
			Members: []SquadMember{
				{Client: "resnet50", From: 0, To: 2, SMs: 54},
				{Client: "vgg11", From: 0, To: 1, SMs: 54},
			}},
		{At: 110 * sim.Microsecond, Kind: KindContextSwitch, Squad: 1, Client: "resnet50", Reason: "unrestrict"},
		{At: 150 * sim.Microsecond, Kind: KindPaceGuardTrip, Squad: 2, Client: "vgg11", Reason: "duration-cap"},
		{At: 200 * sim.Microsecond, Kind: KindEndgameFlush, Squad: 2, Client: "resnet50"},
		{At: 300 * sim.Microsecond, Kind: KindSquadDone, Squad: 1, Mode: "Semi-SP",
			Predicted: 290 * sim.Microsecond, Actual: 295 * sim.Microsecond},
		{At: 310 * sim.Microsecond, Kind: KindRequestDone, Client: "resnet50", Seq: 0,
			Reason: "ok", Actual: 306 * sim.Microsecond},
		// A device-tagged event lands on its device's own lane group.
		{At: 320 * sim.Microsecond, Kind: KindPaceGuardTrip, Device: "gpu1",
			Client: "bert", Squad: 3, Reason: "duration-cap"},
	}
	return spans, events
}

func TestChromeTraceGolden(t *testing.T) {
	spans, events := fixtureTrace()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, events); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace output diverged from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestChromeTraceIsValidTraceEventJSON(t *testing.T) {
	spans, events := fixtureTrace()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, events); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}

	lanes := map[float64]string{}
	var kernelSpans, squadSpans, requestSpans, instants int
	for _, ev := range out {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M":
			if ev["name"] == "thread_name" {
				args := ev["args"].(map[string]any)
				lanes[ev["tid"].(float64)] = args["name"].(string)
			}
		case "X":
			if _, ok := ev["dur"].(float64); !ok {
				t.Errorf("complete event without dur: %v", ev)
			}
			switch ev["cat"] {
			case "kernel":
				kernelSpans++
			case "squad":
				squadSpans++
			case "request":
				requestSpans++
			}
		case "i":
			instants++
			if s, _ := ev["s"].(string); s == "" {
				t.Errorf("instant event without scope: %v", ev)
			}
		default:
			t.Errorf("unexpected phase %q: %v", ph, ev)
		}
		// Every event must carry the required keys.
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event missing %q: %v", key, ev)
			}
		}
	}
	if kernelSpans != 3 {
		t.Errorf("kernel spans = %d, want 3", kernelSpans)
	}
	if squadSpans != 1 {
		t.Errorf("squad spans = %d, want 1", squadSpans)
	}
	if requestSpans != 1 {
		t.Errorf("request spans = %d, want 1", requestSpans)
	}
	if instants != 7 {
		t.Errorf("instant events = %d, want 7", instants)
	}
	// One lane per client plus the scheduler lane; device-tagged events get
	// device-prefixed lanes.
	wantLanes := map[string]bool{"scheduler": true, "resnet50": true, "vgg11": true, "gpu1/bert": true}
	for _, name := range lanes {
		delete(wantLanes, name)
	}
	if len(wantLanes) != 0 {
		t.Errorf("missing lanes: %v (have %v)", wantLanes, lanes)
	}
}

func TestCollectorGathersSpansAndEvents(t *testing.T) {
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())
	col := NewCollector()
	gpu.AddTracer(col.Recorder)
	bus := NewBus()
	bus.Subscribe(col)

	ctx, err := gpu.NewContext(sim.ContextOptions{Label: "c", NoMemCharge: true})
	if err != nil {
		t.Fatal(err)
	}
	q := ctx.NewQueue("q")
	k := &sim.Kernel{Name: "k", Kind: sim.Compute, Work: 108 * sim.Microsecond, SaturationSMs: 108}
	q.Enqueue(0, k, nil)
	bus.Emit(Event{At: 0, Kind: KindSquadFormed, Squad: 1, Reason: "drained"})
	eng.Run()

	if len(col.Recorder.Spans) != 1 {
		t.Fatalf("collector spans = %d, want 1", len(col.Recorder.Spans))
	}
	if len(col.Events) != 1 || col.Events[0].Kind != KindSquadFormed {
		t.Fatalf("collector events wrong: %+v", col.Events)
	}
	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty trace export")
	}
}
