package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"bless/internal/metrics"
)

// Prometheus text exposition for Registry snapshots and SLO trackers — the
// pull side of the observability layer. Stdlib-only by design (no client
// library dependency): the format is plain text, and emitting it directly
// keeps output byte-stable for golden tests.

// promName sanitizes a registry metric name into a Prometheus metric name:
// characters outside [a-zA-Z0-9_] become '_' (registry names use '/' as a
// namespace separator), and everything is prefixed "bless_".
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + len("bless_"))
	b.WriteString("bless_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects: shortest exact
// decimal, integral values without an exponent.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single samples,
// histograms as summaries (quantile-labeled samples plus _sum and _count).
// Output is sorted by metric name, byte-stable for a given snapshot.
func WritePrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
			return err
		}
		for _, q := range [...]struct {
			label string
			v     int64
		}{{"0.5", h.P50NS}, {"0.95", h.P95NS}, {"0.99", h.P99NS}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %d\n", pn, q.label, q.v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, h.SumNS, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheusSLO renders per-tenant SLO attainment in the Prometheus
// text format, tenant-labeled. Emitted after the registry metrics on the
// blessd /debug/bless/prom endpoint.
func WritePrometheusSLO(w io.Writer, s SLOSnapshot) error {
	if len(s.Tenants) == 0 {
		return nil
	}
	series := [...]struct {
		name, help string
		val        func(t TenantSLO) string
	}{
		{"bless_slo_target_ns", "gauge", func(t TenantSLO) string { return strconv.FormatInt(t.TargetNS, 10) }},
		{"bless_slo_attainment_pct", "gauge", func(t TenantSLO) string { return promFloat(t.AttainmentPct) }},
		{"bless_slo_requests_completed_total", "counter", func(t TenantSLO) string { return strconv.FormatInt(t.Completed, 10) }},
		{"bless_slo_requests_failed_total", "counter", func(t TenantSLO) string { return strconv.FormatInt(t.Failed, 10) }},
		{"bless_slo_latency_p50_ns", "gauge", func(t TenantSLO) string { return strconv.FormatInt(t.P50NS, 10) }},
		{"bless_slo_latency_p95_ns", "gauge", func(t TenantSLO) string { return strconv.FormatInt(t.P95NS, 10) }},
		{"bless_slo_latency_p99_ns", "gauge", func(t TenantSLO) string { return strconv.FormatInt(t.P99NS, 10) }},
	}
	for _, sr := range series {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", sr.name, sr.help); err != nil {
			return err
		}
		for _, t := range s.Tenants {
			if _, err := fmt.Fprintf(w, "%s{tenant=%q} %s\n", sr.name, t.Tenant, sr.val(t)); err != nil {
				return err
			}
		}
	}
	return nil
}

// MergeSnapshots folds per-device registry snapshots into one fleet-wide
// view: counters sum, histograms merge losslessly (each snapshot carries its
// digest's raw buckets, so the merged quantiles are exactly those of a
// single digest fed the combined stream), and gauges take the unweighted
// mean across the devices reporting them (a gauge is a level, not a flow —
// the fleet view reports the average level).
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	gaugeN := make(map[string]int)
	digests := make(map[string]*metrics.Digest)
	for _, s := range snaps {
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			out.Gauges[name] += v
			gaugeN[name]++
		}
		for name, hs := range s.Histograms {
			d := digests[name]
			if d == nil {
				d = &metrics.Digest{}
				digests[name] = d
			}
			part := digestOfSnapshot(hs)
			d.Merge(&part)
		}
	}
	for name, n := range gaugeN {
		out.Gauges[name] /= float64(n)
	}
	for name, d := range digests {
		out.Histograms[name] = histogramSnapshotOf(d)
	}
	return out
}
