package obs

import (
	"io"
	"strings"

	"bless/internal/sim"
	"bless/internal/timeline"
)

// Collector captures a complete run for export: kernel execution spans
// (as a sim.Tracer, via the embedded timeline.Recorder) plus the decision
// events published on a Bus (as a Subscriber). Attach both ways:
//
//	col := obs.NewCollector()
//	gpu.AddTracer(col.Recorder)
//	bus.Subscribe(col)
//
// and export with WriteChromeTrace after the run.
type Collector struct {
	// Recorder collects kernel spans; it implements sim.Tracer.
	Recorder *timeline.Recorder
	// Events are the decision events in publication (time) order.
	Events []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{Recorder: timeline.NewRecorder()}
}

// Publish implements Subscriber.
func (c *Collector) Publish(ev Event) { c.Events = append(c.Events, ev) }

// WriteChromeTrace exports everything collected as Chrome trace-event JSON.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, c.Recorder.Spans, c.Events)
}

// ClientLane maps a queue to its owning client's lane by stripping the
// context label's "/suffix" part. BLESS labels a client's contexts
// "app/default", "app/sm54", ...; collapsing them yields one trace lane per
// client regardless of which context each kernel ran in. Use as the
// Recorder's LaneOf.
func ClientLane(q *sim.Queue) string {
	label := q.Context().Label()
	if i := strings.IndexByte(label, '/'); i >= 0 {
		return label[:i]
	}
	return label
}
