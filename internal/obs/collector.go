package obs

import (
	"io"
	"strings"

	"bless/internal/sim"
	"bless/internal/timeline"
)

// Collector captures a complete run for export: kernel execution spans
// (as a sim.Tracer, via the embedded timeline.Recorder) plus the decision
// events published on a Bus (as a Subscriber). Attach both ways:
//
//	col := obs.NewCollector()
//	gpu.AddTracer(col.Recorder)
//	bus.Subscribe(col)
//
// and export with WriteChromeTrace after the run.
type Collector struct {
	// Recorder collects kernel spans; it implements sim.Tracer.
	Recorder *timeline.Recorder
	// Events are the decision events in publication (time) order.
	Events []Event
	// Device, when set, stamps every collected event with the emitting
	// device's name (cluster runs attach one collector per device).
	Device string
	// MaxEvents bounds the event buffer (0 = unbounded). A full collector
	// drops further events and counts them in Dropped — bounded collectors
	// never lose events silently; surface the counter in a registry
	// ("obs/events_dropped_total") and on the debug endpoints.
	MaxEvents int

	dropped int64
}

// NewCollector returns an empty, unbounded collector.
func NewCollector() *Collector {
	return &Collector{Recorder: timeline.NewRecorder()}
}

// NewBoundedCollector returns a collector that keeps at most maxEvents
// decision events and counts the overflow in Dropped.
func NewBoundedCollector(maxEvents int) *Collector {
	c := NewCollector()
	c.MaxEvents = maxEvents
	return c
}

// Publish implements Subscriber.
func (c *Collector) Publish(ev Event) {
	if c.MaxEvents > 0 && len(c.Events) >= c.MaxEvents {
		c.dropped++
		return
	}
	if c.Device != "" && ev.Device == "" {
		ev.Device = c.Device
	}
	c.Events = append(c.Events, ev)
}

// Dropped reports how many events the bounded buffer refused.
func (c *Collector) Dropped() int64 { return c.dropped }

// WriteChromeTrace exports everything collected as Chrome trace-event JSON.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, c.Recorder.Spans, c.Events)
}

// ClientLane maps a queue to its owning client's lane by stripping the
// context label's "/suffix" part. BLESS labels a client's contexts
// "app/default", "app/sm54", ...; collapsing them yields one trace lane per
// client regardless of which context each kernel ran in. Use as the
// Recorder's LaneOf.
func ClientLane(q *sim.Queue) string {
	label := q.Context().Label()
	if i := strings.IndexByte(label, '/'); i >= 0 {
		return label[:i]
	}
	return label
}
