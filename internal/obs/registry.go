package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"bless/internal/metrics"
	"bless/internal/sim"
)

// Counter is a monotonically increasing int64, safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float64, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a concurrent wrapper around the log-bucketed streaming
// metrics.Digest: O(1) observation, constant memory, mergeable snapshots.
type Histogram struct {
	mu sync.Mutex
	d  metrics.Digest
}

// Observe records one sample (typically a latency in virtual nanoseconds).
func (h *Histogram) Observe(v sim.Time) {
	h.mu.Lock()
	h.d.Observe(v)
	h.mu.Unlock()
}

// Digest returns a copy of the underlying digest; copies merge losslessly
// with Digest.Merge, which is how per-run or per-shard histograms aggregate.
func (h *Histogram) Digest() metrics.Digest {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.d
}

// Registry is a named collection of counters, gauges and histograms —
// the streaming metrics substrate shared by the harness, blessbench exports
// and the blessd debug endpoints. Get-or-create accessors make metric
// registration implicit; all methods are safe for concurrent use.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	histogram map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		histogram: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histogram[name]
	if !ok {
		h = &Histogram{}
		r.histogram[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's point-in-time distillation. Buckets
// carries the raw log2 histogram (trailing zero buckets trimmed), so
// external consumers can merge snapshots exactly; the quantiles are the
// digest approximations.
type HistogramSnapshot struct {
	Count  int64   `json:"count"`
	SumNS  int64   `json:"sum_ns"`
	MinNS  int64   `json:"min_ns"`
	MaxNS  int64   `json:"max_ns"`
	MeanNS int64   `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P95NS  int64   `json:"p95_ns"`
	P99NS  int64   `json:"p99_ns"`
	Bucket []int64 `json:"buckets_log2,omitempty"`
}

// Snapshot is a JSON-serializable point-in-time view of a Registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histogram))
	for k, v := range r.histogram {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		d := h.Digest()
		s.Histograms[k] = histogramSnapshotOf(&d)
	}
	return s
}

// histogramSnapshotOf distills a digest into its snapshot form. The trimmed
// raw buckets plus Count/Sum/Min/Max are everything the digest holds, so
// digestOfSnapshot inverts this exactly — the basis of lossless fleet merges.
func histogramSnapshotOf(d *metrics.Digest) HistogramSnapshot {
	hs := HistogramSnapshot{
		Count:  d.Count,
		SumNS:  int64(d.Sum),
		MinNS:  int64(d.Min),
		MaxNS:  int64(d.Max),
		MeanNS: int64(d.Mean()),
		P50NS:  int64(d.Quantile(0.50)),
		P95NS:  int64(d.Quantile(0.95)),
		P99NS:  int64(d.Quantile(0.99)),
	}
	last := -1
	for i, n := range d.Buckets {
		if n != 0 {
			last = i
		}
	}
	if last >= 0 {
		hs.Bucket = append([]int64(nil), d.Buckets[:last+1]...)
	}
	return hs
}

// digestOfSnapshot reconstructs the digest a HistogramSnapshot was taken
// from. Exact: the snapshot carries the full bucket array (trimmed) and the
// exact Count/Sum/Min/Max.
func digestOfSnapshot(hs HistogramSnapshot) metrics.Digest {
	d := metrics.Digest{
		Count: hs.Count,
		Sum:   sim.Time(hs.SumNS),
		Min:   sim.Time(hs.MinNS),
		Max:   sim.Time(hs.MaxNS),
	}
	copy(d.Buckets[:], hs.Bucket)
	return d
}

// WriteJSON renders the snapshot as indented JSON. Map keys are emitted in
// sorted order by encoding/json, so output is deterministic.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Names lists all registered metric names, sorted — handy for introspection
// and tests.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for k := range r.counters {
		out = append(out, k)
	}
	for k := range r.gauges {
		out = append(out, k)
	}
	for k := range r.histogram {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
