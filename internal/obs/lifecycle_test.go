package obs

import (
	"testing"

	"bless/internal/sim"
)

// fixtureLifecycleEvents is a hand-built stream for two devices: gpu0 runs
// resnet50 through a fault/retry cycle; gpu1 aborts vgg11's request.
func fixtureLifecycleEvents() []Event {
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }
	return []Event{
		{At: us(1), Kind: KindRequestAdmitted, Device: "gpu0", Client: "resnet50", Seq: 0},
		{At: us(2), Kind: KindSquadFormed, Device: "gpu0", Squad: 1, Reason: "kernel-cap",
			Members: []SquadMember{{Client: "resnet50", From: 0, To: 4}}},
		{At: us(3), Kind: KindConfigChosen, Device: "gpu0", Squad: 1, Mode: "NSP",
			Members: []SquadMember{{Client: "resnet50", From: 0, To: 4}}},
		{At: us(10), Kind: KindKernelFault, Device: "gpu0", Client: "resnet50", Seq: 0, Squad: 1, Reason: "kernel 2 attempt 1"},
		{At: us(15), Kind: KindKernelRetry, Device: "gpu0", Client: "resnet50", Seq: 0, Squad: 1, Predicted: us(15)},
		{At: us(20), Kind: KindContextSwitch, Device: "gpu0", Client: "resnet50", Squad: 1, Reason: "restrict"},
		{At: us(30), Kind: KindSquadDone, Device: "gpu0", Squad: 1, Mode: "NSP", Actual: us(28)},
		{At: us(40), Kind: KindRequestDone, Device: "gpu0", Client: "resnet50", Seq: 0, Reason: "ok", Actual: us(39)},

		{At: us(5), Kind: KindRequestAdmitted, Device: "gpu1", Client: "vgg11", Seq: 0},
		{At: us(25), Kind: KindRequestAbort, Device: "gpu1", Client: "vgg11", Seq: 0, Reason: "retries-exhausted"},
		{At: us(25), Kind: KindRequestDone, Device: "gpu1", Client: "vgg11", Seq: 0, Reason: "failed", Actual: us(20)},

		// Second resnet50 request, still open at collection time.
		{At: us(50), Kind: KindRequestAdmitted, Device: "gpu0", Client: "resnet50", Seq: 1},
	}
}

func TestLifecyclesReconstruct(t *testing.T) {
	ls := Lifecycles(fixtureLifecycleEvents())
	if len(ls) != 3 {
		t.Fatalf("lifecycles = %d, want 3", len(ls))
	}

	r := FindLifecycle(ls, "gpu0", "resnet50", 0)
	if r == nil {
		t.Fatal("gpu0/resnet50/0 lifecycle missing")
	}
	if !r.Completed || r.Failed {
		t.Errorf("completed/failed = %v/%v, want true/false", r.Completed, r.Failed)
	}
	if r.Admitted != 1*sim.Microsecond || r.Done != 40*sim.Microsecond {
		t.Errorf("admitted/done = %v/%v", r.Admitted, r.Done)
	}
	if r.Latency != 39*sim.Microsecond || r.Arrival != 1*sim.Microsecond {
		t.Errorf("latency/arrival = %v/%v", r.Latency, r.Arrival)
	}
	if r.Faults != 1 || r.Retries != 1 {
		t.Errorf("faults/retries = %d/%d, want 1/1", r.Faults, r.Retries)
	}
	if len(r.Squads) != 1 || r.Squads[0] != 1 {
		t.Errorf("squads = %v, want [1]", r.Squads)
	}
	// The full annotated stream: admission, squad formation, config choice,
	// fault, retry, context switch, squad done, completion.
	if len(r.Events) != 8 {
		t.Errorf("events = %d, want 8", len(r.Events))
	}
	for i := 1; i < len(r.Events); i++ {
		if r.Events[i].At < r.Events[i-1].At {
			t.Errorf("event %d out of order: %v < %v", i, r.Events[i].At, r.Events[i-1].At)
		}
	}

	v := FindLifecycle(ls, "gpu1", "vgg11", 0)
	if v == nil {
		t.Fatal("gpu1/vgg11/0 lifecycle missing")
	}
	if !v.Completed || !v.Failed || !v.Aborted || v.AbortReason != "retries-exhausted" {
		t.Errorf("vgg11 terminal state = %+v", v)
	}

	open := FindLifecycle(ls, "gpu0", "resnet50", 1)
	if open == nil {
		t.Fatal("open request lifecycle missing")
	}
	if open.Completed || open.Done != 0 {
		t.Errorf("open request should not be completed: %+v", open)
	}

	if FindLifecycle(ls, "gpu9", "nope", 0) != nil {
		t.Error("FindLifecycle invented a lifecycle")
	}
}

func TestLifecyclesPartialStream(t *testing.T) {
	// A bounded collector may drop the admission; the completion alone must
	// still reconstruct a (partial) lifecycle rather than be lost.
	events := fixtureLifecycleEvents()[7:8] // only the request_done
	ls := Lifecycles(events)
	if len(ls) != 1 {
		t.Fatalf("lifecycles = %d, want 1", len(ls))
	}
	if !ls[0].Completed || ls[0].Admitted != 0 {
		t.Errorf("partial lifecycle = %+v", ls[0])
	}
}
