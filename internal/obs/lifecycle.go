package obs

import (
	"sort"

	"bless/internal/sim"
)

// Request-lifecycle reconstruction: the runtime stamps every request with
// admission and completion events (plus faults, retries and aborts in
// between), and squad-scoped decisions name their member clients — so a
// collected event stream folds back into one span per request, from
// admission through every squad, retry and context switch to completion.
// This is the per-request view the paper's §6 claims (near-ideal latency
// under sharing) are actually about, and the layer fleet-wide SLO
// attainment is computed from.

// RequestLifecycle is one request's reconstructed lifecycle.
type RequestLifecycle struct {
	// Device names the hosting device in cluster runs ("" single-device).
	Device string
	// Client is the owning application's name.
	Client string
	// Seq is the client-local request sequence number.
	Seq int
	// Admitted is the admission event's (host-clock) timestamp; zero when
	// admission predates the collection window.
	Admitted sim.Time
	// Done is the completion instant; zero while the request is open.
	Done sim.Time
	// Latency is the exact request latency (Done - Arrival) carried by the
	// completion event; valid when Completed.
	Latency sim.Time
	// Arrival is the exact arrival instant recovered from the completion
	// event (Done - Latency); valid when Completed.
	Arrival sim.Time
	// Completed and Failed report the terminal state: a Failed request
	// completed aborted (retries exhausted or deadline exceeded).
	Completed, Failed bool
	// Faults and Retries count injected kernel faults and relaunches
	// attributed to this request.
	Faults, Retries int
	// Aborted marks an abort event seen; AbortReason carries its cause
	// ("retries-exhausted" or "deadline").
	Aborted     bool
	AbortReason string
	// Squads lists the squads (1-based per-device sequence numbers) that
	// serviced this request, in order.
	Squads []int64
	// Events is the request's full annotated event stream in publication
	// order: its request-scoped events plus the client- and squad-scoped
	// decisions (squad formation, config choice, context switches,
	// pace-guard trips, endgame flushes) that occurred while it was the
	// client's active request.
	Events []Event
}

// lifecycleKey identifies a request across devices. Within one device a
// client is identified by its application name: two same-name deployments on
// one device would alias (the runtime emits names, not client IDs) — the
// cluster's placement keeps duplicate deployments on distinct devices when
// their quotas forbid co-location, and harness runs use unique names.
type lifecycleKey struct {
	device, client string
	seq            int
}

// clientKey identifies a client lane across devices.
type clientKey struct {
	device, client string
}

// Lifecycles reconstructs per-request lifecycles from a collected event
// stream (publication order, as a Collector holds it). Events of requests
// whose admission predates the stream still reconstruct — entries are
// created lazily — so bounded collectors degrade to partial lifecycles, not
// errors. The result is sorted by (Device, Client, Seq).
func Lifecycles(events []Event) []RequestLifecycle {
	reqs := map[lifecycleKey]*RequestLifecycle{}
	// active tracks each client's in-service request: the lowest admitted,
	// not-yet-completed Seq (the runtime services one request per client at
	// a time, FIFO — §4.3).
	active := map[clientKey][]*RequestLifecycle{}
	// members remembers each squad's member clients so the member-less
	// squad_done event still reaches the right requests.
	members := map[string]map[int64][]string{} // device -> squad -> clients

	get := func(k lifecycleKey) *RequestLifecycle {
		r, ok := reqs[k]
		if !ok {
			r = &RequestLifecycle{Device: k.device, Client: k.client, Seq: k.seq}
			reqs[k] = r
		}
		return r
	}
	open := func(r *RequestLifecycle) {
		ck := clientKey{r.Device, r.Client}
		active[ck] = append(active[ck], r)
	}
	closeReq := func(r *RequestLifecycle) {
		ck := clientKey{r.Device, r.Client}
		q := active[ck]
		for i, o := range q {
			if o == r {
				active[ck] = append(q[:i], q[i+1:]...)
				break
			}
		}
	}
	// current returns the client's in-service request, if any.
	current := func(device, client string) *RequestLifecycle {
		q := active[clientKey{device, client}]
		if len(q) == 0 {
			return nil
		}
		return q[0]
	}
	attachSquad := func(ev Event, client string) {
		r := current(ev.Device, client)
		if r == nil {
			return
		}
		if n := len(r.Squads); ev.Squad > 0 && (n == 0 || r.Squads[n-1] != ev.Squad) {
			r.Squads = append(r.Squads, ev.Squad)
		}
		r.Events = append(r.Events, ev)
	}

	for _, ev := range events {
		switch {
		case ev.Kind == KindRequestAdmitted:
			r := get(lifecycleKey{ev.Device, ev.Client, ev.Seq})
			r.Admitted = ev.At
			r.Events = append(r.Events, ev)
			open(r)
		case ev.Kind == KindRequestDone:
			r := get(lifecycleKey{ev.Device, ev.Client, ev.Seq})
			r.Done = ev.At
			r.Latency = ev.Actual
			r.Arrival = ev.At - ev.Actual
			r.Completed = true
			r.Failed = ev.Reason == "failed"
			r.Events = append(r.Events, ev)
			closeReq(r)
		case ev.Kind.RequestScoped():
			r := get(lifecycleKey{ev.Device, ev.Client, ev.Seq})
			switch ev.Kind {
			case KindKernelFault:
				r.Faults++
			case KindKernelRetry:
				r.Retries++
			case KindRequestAbort:
				r.Aborted = true
				r.AbortReason = ev.Reason
			}
			if ev.Squad > 0 {
				if n := len(r.Squads); n == 0 || r.Squads[n-1] != ev.Squad {
					r.Squads = append(r.Squads, ev.Squad)
				}
			}
			r.Events = append(r.Events, ev)
		case len(ev.Members) > 0: // squad_formed, config_chosen
			dev := members[ev.Device]
			if dev == nil {
				dev = map[int64][]string{}
				members[ev.Device] = dev
			}
			if ev.Kind == KindSquadFormed {
				names := make([]string, len(ev.Members))
				for i, m := range ev.Members {
					names[i] = m.Client
				}
				dev[ev.Squad] = names
			}
			for _, m := range ev.Members {
				attachSquad(ev, m.Client)
			}
		case ev.Kind == KindSquadDone:
			for _, c := range members[ev.Device][ev.Squad] {
				attachSquad(ev, c)
			}
		case ev.Client != "":
			switch ev.Kind {
			case KindContextSwitch, KindPaceGuardTrip, KindEndgameFlush, KindContextFault:
				attachSquad(ev, ev.Client)
			}
			// Churn events (crash/join/leave/reprovision) are client-level,
			// not request-level; they stay out of lifecycles.
		}
	}

	out := make([]RequestLifecycle, 0, len(reqs))
	for _, r := range reqs {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		return a.Seq < b.Seq
	})
	return out
}

// FindLifecycle returns the lifecycle of (device, client, seq) from a
// Lifecycles result, or nil when absent.
func FindLifecycle(ls []RequestLifecycle, device, client string, seq int) *RequestLifecycle {
	i := sort.Search(len(ls), func(i int) bool {
		l := &ls[i]
		if l.Device != device {
			return l.Device >= device
		}
		if l.Client != client {
			return l.Client >= client
		}
		return l.Seq >= seq
	})
	if i < len(ls) && ls[i].Device == device && ls[i].Client == client && ls[i].Seq == seq {
		return &ls[i]
	}
	return nil
}
