package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"

	"bless/internal/metrics"
	"bless/internal/sim"
)

// SLOTracker maintains per-tenant latency-SLO attainment online: every
// completed request is compared against its tenant's target latency as it
// retires, and the latency distribution streams into a metrics.Digest — no
// post-hoc pass over stored result slices. Trackers merge losslessly (the
// digest is a bucket sum), which is how per-device attainment aggregates
// into the fleet-wide view.
//
// A tenant is an application name: duplicate deployments of one app (on one
// device or across a pool) fold into one tenant, each request judged against
// the target of its own deployment. All methods are safe for concurrent use.
type SLOTracker struct {
	mu      sync.Mutex
	tenants map[string]*tenantSLO
}

type tenantSLO struct {
	// target is the largest target registered for the tenant (deployments
	// of one app can carry different quotas, hence different ISO targets;
	// attainment is judged per observation against the observing
	// deployment's own target, this field only labels the snapshot).
	target sim.Time
	// targeted counts observations that carried a positive target;
	// attained those at or under it. Failed (aborted) requests count as
	// targeted misses — an SLO the scheduler gave up on is not met.
	targeted, attained int64
	failed             int64
	dig                metrics.Digest
}

// NewSLOTracker returns an empty tracker.
func NewSLOTracker() *SLOTracker {
	return &SLOTracker{tenants: make(map[string]*tenantSLO)}
}

func (t *SLOTracker) tenant(name string) *tenantSLO {
	ts, ok := t.tenants[name]
	if !ok {
		ts = &tenantSLO{}
		t.tenants[name] = ts
	}
	return ts
}

// SetTarget registers the tenant (so it appears in snapshots before any
// traffic) and raises its labeled target to at least target.
func (t *SLOTracker) SetTarget(name string, target sim.Time) {
	t.mu.Lock()
	ts := t.tenant(name)
	if target > ts.target {
		ts.target = target
	}
	t.mu.Unlock()
}

// Observe records one completed request: its latency joins the tenant's
// streaming digest (failed requests excluded — an aborted latency is not a
// service latency) and, when target is positive, the request counts toward
// attainment (met iff it finished, unfailed, within target).
func (t *SLOTracker) Observe(name string, target, latency sim.Time, failed bool) {
	t.mu.Lock()
	ts := t.tenant(name)
	if target > ts.target {
		ts.target = target
	}
	if failed {
		ts.failed++
	} else {
		ts.dig.Observe(latency)
	}
	if target > 0 {
		ts.targeted++
		if !failed && latency <= target {
			ts.attained++
		}
	}
	t.mu.Unlock()
}

// Merge folds another tracker into t, tenant by tenant. Digests merge
// exactly; counts sum; the labeled target is the maximum. The fleet
// aggregation path: merge every device's tracker into a fresh one.
func (t *SLOTracker) Merge(o *SLOTracker) {
	if o == nil {
		return
	}
	o.mu.Lock()
	type part struct {
		name string
		ts   tenantSLO
	}
	parts := make([]part, 0, len(o.tenants))
	for name, ts := range o.tenants {
		parts = append(parts, part{name, *ts})
	}
	o.mu.Unlock()

	t.mu.Lock()
	for _, p := range parts {
		ts := t.tenant(p.name)
		if p.ts.target > ts.target {
			ts.target = p.ts.target
		}
		ts.targeted += p.ts.targeted
		ts.attained += p.ts.attained
		ts.failed += p.ts.failed
		ts.dig.Merge(&p.ts.dig)
	}
	t.mu.Unlock()
}

// MergeSLO merges any number of per-device trackers into one fleet tracker.
func MergeSLO(trackers ...*SLOTracker) *SLOTracker {
	out := NewSLOTracker()
	for _, tr := range trackers {
		out.Merge(tr)
	}
	return out
}

// TenantSLO is one tenant's point-in-time attainment view.
type TenantSLO struct {
	Tenant   string `json:"tenant"`
	TargetNS int64  `json:"target_ns"`
	// Completed counts successful completions (the digest population);
	// Failed counts aborted requests.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	// Targeted counts completions judged against a target; Attained those
	// that met it. AttainmentPct = 100*Attained/Targeted (100 when nothing
	// was targeted — a vacuous SLO is a met SLO).
	Targeted      int64   `json:"targeted"`
	Attained      int64   `json:"attained"`
	AttainmentPct float64 `json:"attainment_pct"`
	MeanNS        int64   `json:"mean_ns"`
	P50NS         int64   `json:"p50_ns"`
	P95NS         int64   `json:"p95_ns"`
	P99NS         int64   `json:"p99_ns"`
	MaxNS         int64   `json:"max_ns"`
}

// SLOSnapshot is a JSON-serializable tracker distillation, tenants sorted
// by name for deterministic output.
type SLOSnapshot struct {
	Tenants []TenantSLO `json:"tenants"`
}

// Snapshot captures the tracker's current per-tenant attainment.
func (t *SLOTracker) Snapshot() SLOSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := SLOSnapshot{Tenants: make([]TenantSLO, 0, len(t.tenants))}
	for name, ts := range t.tenants {
		e := TenantSLO{
			Tenant:        name,
			TargetNS:      int64(ts.target),
			Completed:     ts.dig.Count,
			Failed:        ts.failed,
			Targeted:      ts.targeted,
			Attained:      ts.attained,
			AttainmentPct: 100,
			MeanNS:        int64(ts.dig.Mean()),
			P50NS:         int64(ts.dig.Quantile(0.50)),
			P95NS:         int64(ts.dig.Quantile(0.95)),
			P99NS:         int64(ts.dig.Quantile(0.99)),
			MaxNS:         int64(ts.dig.Max),
		}
		if ts.targeted > 0 {
			// Round to basis points so the JSON is byte-stable across
			// float formatting quirks.
			e.AttainmentPct = math.Round(10000*float64(ts.attained)/float64(ts.targeted)) / 100
		}
		out.Tenants = append(out.Tenants, e)
	}
	sort.Slice(out.Tenants, func(i, j int) bool { return out.Tenants[i].Tenant < out.Tenants[j].Tenant })
	return out
}

// WriteJSON renders the snapshot as indented JSON, deterministically.
func (s SLOSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
