package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"bless/internal/sim"
)

// fixtureSLO builds a deterministic two-tenant tracker: resnet50 with one
// miss and one failure, vgg11 untargeted.
func fixtureSLO() *SLOTracker {
	tr := NewSLOTracker()
	tr.SetTarget("resnet50", 2*sim.Millisecond)
	tr.Observe("resnet50", 2*sim.Millisecond, 1*sim.Millisecond, false)
	tr.Observe("resnet50", 2*sim.Millisecond, 1500*sim.Microsecond, false)
	tr.Observe("resnet50", 2*sim.Millisecond, 3*sim.Millisecond, false)  // miss
	tr.Observe("resnet50", 2*sim.Millisecond, 500*sim.Microsecond, true) // abort
	tr.Observe("vgg11", 0, 4*sim.Millisecond, false)
	tr.Observe("vgg11", 0, 5*sim.Millisecond, false)
	return tr
}

func TestSLOJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureSLO().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "slo.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SLO JSON diverged from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestSLOAttainment(t *testing.T) {
	s := fixtureSLO().Snapshot()
	if len(s.Tenants) != 2 {
		t.Fatalf("tenants = %d, want 2", len(s.Tenants))
	}
	rn := s.Tenants[0]
	if rn.Tenant != "resnet50" {
		t.Fatalf("tenant[0] = %q, want resnet50", rn.Tenant)
	}
	// 4 targeted observations, 2 attained (1ms, 1.5ms); the 3ms miss and
	// the failed request both count against attainment.
	if rn.Targeted != 4 || rn.Attained != 2 {
		t.Errorf("targeted/attained = %d/%d, want 4/2", rn.Targeted, rn.Attained)
	}
	if rn.AttainmentPct != 50 {
		t.Errorf("attainment = %v, want 50", rn.AttainmentPct)
	}
	if rn.Completed != 3 || rn.Failed != 1 {
		t.Errorf("completed/failed = %d/%d, want 3/1", rn.Completed, rn.Failed)
	}
	// Untargeted tenant: vacuous SLO reads 100%.
	vg := s.Tenants[1]
	if vg.Targeted != 0 || vg.AttainmentPct != 100 {
		t.Errorf("vgg11 targeted/attainment = %d/%v, want 0/100", vg.Targeted, vg.AttainmentPct)
	}
}

func TestSLOMergeMatchesCombinedStream(t *testing.T) {
	// Split one observation stream across three per-device trackers; the
	// merged tracker must be indistinguishable from a single tracker that
	// saw the whole stream.
	type ob struct {
		tenant          string
		target, latency sim.Time
		failed          bool
	}
	var stream []ob
	for i := 0; i < 300; i++ {
		lat := sim.Time(i%97+1) * 37 * sim.Microsecond
		stream = append(stream, ob{"resnet50", 2 * sim.Millisecond, lat, i%41 == 0})
		stream = append(stream, ob{"bert", 1 * sim.Millisecond, lat / 2, false})
	}
	whole := NewSLOTracker()
	parts := []*SLOTracker{NewSLOTracker(), NewSLOTracker(), NewSLOTracker()}
	for i, o := range stream {
		whole.Observe(o.tenant, o.target, o.latency, o.failed)
		parts[i%3].Observe(o.tenant, o.target, o.latency, o.failed)
	}
	merged := MergeSLO(parts...)

	var wantBuf, gotBuf bytes.Buffer
	if err := whole.Snapshot().WriteJSON(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if err := merged.Snapshot().WriteJSON(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
		t.Errorf("merged snapshot diverged from combined-stream snapshot.\nmerged:\n%s\nwhole:\n%s", gotBuf.Bytes(), wantBuf.Bytes())
	}
}
