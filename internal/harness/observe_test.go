package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"bless/internal/core"
	"bless/internal/sim"
)

func TestObservedPairRun(t *testing.T) {
	o, err := ObservedPairRun([2]string{"resnet50", "vgg11"}, [2]float64{0.5, 0.5}, "B", 100*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if o.Result == nil || o.Result.PerClient[0].Completed == 0 {
		t.Fatal("observed run completed no requests")
	}
	if len(o.Collector.Recorder.Spans) == 0 {
		t.Fatal("no kernel spans recorded")
	}
	if len(o.Collector.Events) == 0 {
		t.Fatal("no decision events collected")
	}
	// Lanes collapse to one per client.
	for _, l := range o.Collector.Recorder.Lanes() {
		if l != "resnet50" && l != "vgg11" {
			t.Errorf("unexpected lane %q, want one lane per client", l)
		}
	}

	// The streaming registry carries latency histograms matching the
	// post-processed result summaries.
	for _, cr := range o.Result.PerClient {
		d := o.Registry.Histogram("latency/" + cr.App).Digest()
		if int(d.Count) != len(cr.Latencies) {
			t.Errorf("%s: registry histogram count %d, want %d", cr.App, d.Count, len(cr.Latencies))
		}
		if d.Count > 0 && d.Mean() != cr.Summary.Mean {
			t.Errorf("%s: registry mean %v != summary mean %v", cr.App, d.Mean(), cr.Summary.Mean)
		}
	}
	if got := o.Registry.Counter("requests_completed_total").Value(); got == 0 {
		t.Error("completion counter never incremented")
	}

	// The overhead attribution must pass the cross-check against the host's
	// independent accounting.
	if err := VerifyOverheadAttribution(o.Stats, o.Overheads, o.Host, sim.DefaultConfig(), core.DefaultOptions().SchedPerKernel); err != nil {
		t.Errorf("overhead attribution: %v", err)
	}

	// Per-client overhead counters land in the metrics snapshot and sum to
	// the attributed totals.
	snap := o.Registry.Snapshot()
	var snapTotal, attrTotal int64
	for _, co := range o.Overheads {
		snapTotal += snap.Counters["overhead/"+co.Client+"/total_ns"]
		attrTotal += int64(co.Total())
	}
	if snapTotal != attrTotal {
		t.Errorf("snapshot overhead total %d != attributed total %d", snapTotal, attrTotal)
	}

	// The trace export must be valid JSON with the client lanes present.
	var buf bytes.Buffer
	if err := o.Collector.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	lanes := map[string]bool{}
	for _, ev := range events {
		if ev["name"] == "thread_name" {
			lanes[ev["args"].(map[string]any)["name"].(string)] = true
		}
	}
	for _, want := range []string{"scheduler", "resnet50", "vgg11"} {
		if !lanes[want] {
			t.Errorf("trace missing lane %q (have %v)", want, lanes)
		}
	}
}

func TestRunAttachesMultipleTracers(t *testing.T) {
	// RunConfig.Tracer and RunConfig.Tracers must all observe the run.
	var a, b countSpans
	pat, err := closedLoadPattern("vgg11", "C", sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rt := core.New(core.DefaultOptions())
	_, err = Run(RunConfig{
		Scheduler: rt,
		Clients: []ClientSpec{
			{App: "vgg11", Quota: 0.5, Pattern: pat},
			{App: "resnet50", Quota: 0.5, Pattern: pat},
		},
		Horizon: 50 * sim.Millisecond,
		Tracer:  &a,
		Tracers: []sim.Tracer{&b},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.ends == 0 || a.ends != b.ends {
		t.Fatalf("tracers observed %d and %d kernel ends, want equal and non-zero", a.ends, b.ends)
	}
}

type countSpans struct{ starts, ends int }

func (c *countSpans) KernelStart(sim.Time, *sim.Queue, *sim.Kernel) { c.starts++ }
func (c *countSpans) KernelEnd(sim.Time, *sim.Queue, *sim.Kernel, float64) {
	c.ends++
}
