package harness

import (
	"fmt"

	"bless/internal/baselines"
	"bless/internal/core"
	"bless/internal/sharing"
	"bless/internal/sim"
	"bless/internal/trace"
)

// InferenceModels are the five Table 1 inference applications, in the
// paper's order.
var InferenceModels = []string{"vgg11", "resnet50", "resnet101", "nasnet", "bert"}

// TrainingModels are the five Table 1 training applications.
var TrainingModels = []string{"vgg11-train", "resnet50-train", "resnet101-train", "nasnet-train", "bert-train"}

// PairQuotas are Table 2's seven 2-model quota assignments.
var PairQuotas = [][2]float64{
	{1.0 / 3, 2.0 / 3},
	{7.0 / 18, 11.0 / 18},
	{4.0 / 9, 5.0 / 9},
	{0.5, 0.5},
	{5.0 / 9, 4.0 / 9},
	{11.0 / 18, 7.0 / 18},
	{2.0 / 3, 1.0 / 3},
}

// FourModelQuotas is Table 2's 4-model assignment.
var FourModelQuotas = []float64{0.10, 0.20, 0.30, 0.40}

// EightModelQuotas is Table 2's 8-model assignment.
var EightModelQuotas = []float64{0.05, 0.05, 0.10, 0.10, 0.15, 0.15, 0.20, 0.20}

// NewSystem constructs a fresh scheduler by name. Each Run needs a fresh
// instance (schedulers hold per-run device state).
func NewSystem(name string) (sharing.Scheduler, error) {
	switch name {
	case "BLESS":
		return core.New(core.DefaultOptions()), nil
	case "BLESS-noSched":
		o := core.DefaultOptions()
		o.DisableFairSelection = true
		return core.New(o), nil
	case "BLESS-noDet":
		o := core.DefaultOptions()
		o.DisableDeterminer = true
		return core.New(o), nil
	case "TEMPORAL":
		return baselines.NewTemporal(), nil
	case "MIG":
		return baselines.NewMIG(), nil
	case "GSLICE":
		return baselines.NewGSlice(), nil
	case "STATIC":
		return baselines.NewStatic(), nil
	case "UNBOUND":
		return baselines.NewUnbound(), nil
	case "REEF+":
		return baselines.NewREEFPlus(), nil
	case "ZICO":
		return baselines.NewZico(), nil
	default:
		return nil, fmt.Errorf("harness: unknown system %q", name)
	}
}

// InferenceSystems are the systems compared on inference workloads (§6.1).
var InferenceSystems = []string{"TEMPORAL", "MIG", "GSLICE", "UNBOUND", "REEF+", "BLESS"}

// TrainingSystems are the systems compared on training workloads.
var TrainingSystems = []string{"TEMPORAL", "MIG", "UNBOUND", "ZICO", "BLESS"}

// loadFrac maps Table 2's workloads A/B/C to their closed-loop think-time
// fraction of the solo-run latency.
var loadFrac = map[string]float64{"A": 1.0 / 3, "B": 2.0 / 3, "C": 1.0}

// closedLoadPattern builds the closed-loop pattern of workload w for an app,
// with think time = frac x solo full-GPU latency (the QPS convention of §6.1,
// matching REEF's low load at workload C).
func closedLoadPattern(appName, w string, cfg sim.Config) (trace.Pattern, error) {
	frac, ok := loadFrac[w]
	if !ok {
		return trace.Pattern{}, fmt.Errorf("harness: unknown workload %q", w)
	}
	prof, err := ProfileFor(appName, cfg)
	if err != nil {
		return trace.Pattern{}, err
	}
	solo := prof.Iso[prof.Partitions-1]
	return trace.Closed(sim.Time(float64(solo)*frac), 0), nil
}

// runPairSystem runs one 2-client experiment for one system, returning the
// result or an error (e.g. MIG with inexpressible quotas).
func runPairSystem(system string, apps [2]string, quotas [2]float64, patterns [2]trace.Pattern, horizon sim.Time, gpu sim.Config) (*Result, error) {
	sched, err := NewSystem(system)
	if err != nil {
		return nil, err
	}
	return Run(RunConfig{
		Scheduler: sched,
		Clients: []ClientSpec{
			{App: apps[0], Quota: quotas[0], Pattern: patterns[0]},
			{App: apps[1], Quota: quotas[1], Pattern: patterns[1]},
		},
		Horizon: horizon,
		GPU:     gpu,
	})
}
