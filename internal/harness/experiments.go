package harness

import (
	"fmt"
	"sort"
	"strings"

	"bless/internal/sim"
)

// Table is a rendered experiment artifact: the rows/series of one paper
// table or figure.
type Table struct {
	// ID is the experiment identifier ("fig13", "table1", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, stringified.
	Rows [][]string
	// Notes carry commentary: paper reference values, substitutions,
	// caveats.
	Notes []string
}

// Render formats the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w+2, c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks horizons and sweep densities for tests and smoke runs;
	// the shapes remain, absolute statistics get noisier.
	Quick bool
	// Parallel is the worker count for an experiment's independent runs:
	// 0 = GOMAXPROCS, 1 = serial. Outputs are always folded in input order
	// (see ForEachParallel), so the rendered artifact is identical at every
	// setting.
	Parallel int
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the registry key ("fig13").
	ID string
	// Title describes what is reproduced.
	Title string
	// Run executes the experiment.
	Run func(opt Options) (*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// Experiments lists registered experiments sorted by ID.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		ids := make([]string, 0, len(registry))
		for k := range registry {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
	}
	return e, nil
}

// ms renders virtual time as milliseconds with two decimals.
func ms(t sim.Time) string { return fmt.Sprintf("%.2f", t.Milliseconds()) }

// pct renders a ratio as a signed percentage.
func pct(f float64) string { return fmt.Sprintf("%+.1f%%", f*100) }

// reduction computes 1 - new/old, the paper's "latency reduction" metric.
func reduction(baseline, system sim.Time) float64 {
	if baseline <= 0 {
		return 0
	}
	return 1 - float64(system)/float64(baseline)
}
