package harness

import (
	"fmt"

	"bless/internal/cluster"
	"bless/internal/sharing"
	"bless/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "cluster",
		Title: "§4.2.2 extension: multi-GPU cluster — central placement + per-device BLESS runtimes",
		Run:   runCluster,
	})
}

// runCluster deploys six applications across a three-GPU pool through the
// central controller and drives closed-loop load on every tenant, reporting
// the chosen placement and each application's latency against its
// isolated-quota baseline.
func runCluster(opt Options) (*Table, error) {
	t := &Table{
		ID:      "cluster",
		Title:   "Three-GPU cluster deployment under per-device BLESS",
		Columns: []string{"app", "quota", "gpu", "mean (ms)", "ISO (ms)", "vs ISO"},
		Notes: []string{
			"§4.2.2: BLESS extends to multiple GPUs by replicating its runtime per device; a central controller places applications by memory and kernel compatibility",
		},
	}
	cfg := sim.DefaultConfig()
	horizon := sim.Second
	if opt.Quick {
		horizon = 250 * sim.Millisecond
	}
	specs := []struct {
		name  string
		quota float64
	}{
		{"vgg11", 0.5}, {"resnet50", 0.5},
		{"bert", 0.6}, {"resnet101", 0.4},
		{"resnet50", 0.5}, {"vgg11", 0.5},
	}
	eng := sim.NewEngine()
	clients := make([]*sharing.Client, len(specs))
	for i, s := range specs {
		prof, err := ProfileFor(s.name, cfg)
		if err != nil {
			return nil, err
		}
		app, err := appFor(s.name)
		if err != nil {
			return nil, err
		}
		clients[i] = &sharing.Client{ID: i, App: app, Profile: prof, Quota: s.quota}
	}
	cl, err := cluster.Deploy(eng, clients, cluster.Config{GPUs: 3, GPU: cfg})
	if err != nil {
		return nil, err
	}

	// Closed-loop load at medium intensity per app.
	lat := make([][]sim.Time, len(clients))
	seqs := make([]int, len(clients))
	cl.OnComplete(func(app int, r *sharing.Request) {
		lat[app] = append(lat[app], r.Latency())
		prof := clients[app].Profile
		think := sim.Time(float64(prof.Iso[prof.Partitions-1]) * 2 / 3)
		at := r.Done + think
		if at > horizon {
			return
		}
		appIdx := app
		eng.Schedule(at, func() {
			seqs[appIdx]++
			cl.Submit(appIdx, seqs[appIdx])
		})
	})
	for ai := range clients {
		ai := ai
		eng.Schedule(0, func() { cl.Submit(ai, 0) })
	}
	eng.RunUntil(horizon)
	eng.Run()

	for ai, c := range clients {
		var total sim.Time
		for _, l := range lat[ai] {
			total += l
		}
		mean := sim.Time(0)
		if len(lat[ai]) > 0 {
			mean = total / sim.Time(len(lat[ai]))
		}
		iso := c.Profile.IsoAtQuota(c.Quota)
		t.Rows = append(t.Rows, []string{
			c.App.Name,
			fmt.Sprintf("%.0f%%", c.Quota*100),
			fmt.Sprintf("gpu%d", cl.Host(ai)),
			ms(mean), ms(iso),
			pct(float64(mean)/float64(iso) - 1),
		})
	}
	for gi, u := range cl.Utilization() {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("gpu%d", gi), "", "", "", "", fmt.Sprintf("util %.0f%%", u*100)})
	}
	return t, nil
}
