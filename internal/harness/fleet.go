package harness

import (
	"fmt"

	"bless/internal/chaos"
	"bless/internal/core"
	"bless/internal/fleet"
	"bless/internal/invariant"
	"bless/internal/metrics"
	"bless/internal/model"
	"bless/internal/profiler"
	"bless/internal/sim"
)

// Fleet scenarios: the harness front-end to the internal/fleet control
// plane. A FleetScenario is declarative — pool, tenants, workload, planned
// migrations, device crashes, autoscaling — and RunFleet drives it as one
// deterministic virtual-time simulation, with the fleet invariant checker
// attached and the timing-free completion digest computed for cross-mode
// comparison (serial vs parallel workers, permuted migration order).

// FleetTenant describes one tenant and its closed-loop workload.
type FleetTenant struct {
	// Name uniquely identifies the tenant; App is the catalog application.
	Name string
	App  string
	// Quota is the provisioned GPU fraction on whichever device hosts it.
	Quota float64
	// SLOTarget, when non-zero, drives pacing and the SLO routing policy.
	SLOTarget sim.Time
	// Think is the closed-loop think time between a completion and the next
	// submission.
	Think sim.Time
	// Requests bounds the tenant's submissions (0 = until the horizon).
	Requests int
}

// FleetMigration schedules one explicit migration trigger.
type FleetMigration struct {
	At     sim.Time
	Tenant string
	Target int
}

// FleetScenario is a declarative fleet run.
type FleetScenario struct {
	// Seed keys the control plane's deterministic decisions.
	Seed int64
	// Devices is the initial heterogeneous pool.
	Devices []fleet.DeviceSpec
	// Tenants are admitted in order at t=0.
	Tenants []FleetTenant
	// Horizon bounds new work; the run then drains.
	Horizon sim.Time
	// Policy selects the routing policy (default least-loaded).
	Policy fleet.Policy
	// Runtime tunes every device's BLESS runtime.
	Runtime core.Options
	// Rebalance/Autoscale enable the control loop (see fleet package).
	Rebalance *fleet.RebalanceConfig
	Autoscale *fleet.AutoscaleConfig
	// Migrations are explicit migration triggers.
	Migrations []FleetMigration
	// DeviceCrashes kill pool devices mid-run (chaos schedule).
	DeviceCrashes []chaos.DeviceEvent
	// Shards is the engine-shard count (0 or 1 = single shard). Every
	// count runs the same coordinator/exchange path and produces
	// bit-identical digests; N > 1 runs device windows across N goroutines.
	Shards int
	// ShardOf optionally overrides the device→shard mapping — execution
	// strategy only, so permuting it cannot move a digest (the metamorphic
	// suite asserts exactly that).
	ShardOf func(device int) int
	// ExchangeLatency overrides the cross-device handoff latency ε (0 =
	// fleet.DefaultExchangeLatency).
	ExchangeLatency sim.Time
	// Faults, when set, attaches a seeded per-device kernel/context fault
	// injector to every device runtime. Unlike a raw Runtime.Injector it is
	// declarative, so scenarios carrying it snapshot and replay exactly —
	// including barriers cut mid-fault-retry with backoff timers pending.
	Faults *FleetFaultPlan
	// Invariants attaches the fleet invariant checker.
	Invariants bool
	// Repro tags invariant violations with a reproduction command.
	Repro string
}

// FleetFaultPlan is a declarative fleet-wide fault spec: each device gets
// its own chaos.Injector compiled from these rates under a device-derived
// seed, so fault decisions are pure in (seed, device, client, seq, kernel,
// attempt) and independent of the shard mapping.
type FleetFaultPlan struct {
	// Seed keys every hashed fault decision (device-mixed per injector).
	Seed int64
	// KernelFaultRate / MaxFaultsPerKernel / CtxFaultRate mirror chaos.Plan.
	KernelFaultRate    float64
	MaxFaultsPerKernel int
	CtxFaultRate       float64
}

// injectorFor builds the per-device injector factory for the plan.
func (p *FleetFaultPlan) injectorFor() func(device int) core.FaultInjector {
	plan := *p
	return func(device int) core.FaultInjector {
		return chaos.NewInjector(chaos.Plan{
			// splitmix-style device mix keeps per-device decision streams
			// decorrelated while staying pure in (Seed, device).
			Seed:               plan.Seed ^ int64(uint64(device+1)*0x9E3779B97F4A7C15),
			KernelFaultRate:    plan.KernelFaultRate,
			MaxFaultsPerKernel: plan.MaxFaultsPerKernel,
			CtxFaultRate:       plan.CtxFaultRate,
		})
	}
}

// FleetTenantOutcome is one tenant's result.
type FleetTenantOutcome struct {
	Name       string
	App        string
	Quota      float64
	Device     int // final host (-1 if evicted)
	Completed  int
	Failed     int
	MeanLat    sim.Time
	P99Lat     sim.Time
	Migrations int
	Evicted    bool
}

// FleetResult is a fleet run's outcome.
type FleetResult struct {
	Tenants []FleetTenantOutcome
	Devices []fleet.DeviceLoad
	Stats   fleet.Stats
	// Invariants is the fleet checker's report (nil unless requested).
	Invariants *invariant.FleetReport
	// Digest is the timing-free completion digest — identical across
	// execution modes for one scenario.
	Digest uint64
	// Elapsed is the final virtual time.
	Elapsed sim.Time
}

// fleetProfile adapts the harness's process-wide profile cache for the
// fleet control plane: profiles are keyed per (app, device SM class), so
// heterogeneous pools profile each class exactly once per process.
func fleetProfile(app string, cfg sim.Config) (*model.App, *profiler.Profile, error) {
	a, err := model.Get(app)
	if err != nil {
		return nil, nil, err
	}
	p, err := ProfileFor(app, cfg)
	if err != nil {
		return nil, nil, err
	}
	return a, p, nil
}

// RunFleet drives the scenario to completion and reports. Every run — any
// sc.Shards, including the default single shard — goes through the fleet's
// sharded coordinator, so the closed-loop workload, migration drains and
// crash recovery follow the same exchange semantics at every shard count
// and the digests are bit-identical across counts and shard mappings.
func RunFleet(sc FleetScenario) (*FleetResult, error) {
	f, checker, horizon, err := buildFleet(sc)
	if err != nil {
		return nil, err
	}
	if err := f.Run(horizon); err != nil {
		return nil, err
	}
	return fleetReport(f, checker), nil
}

// buildFleet assembles the scenario's fleet without running it: pool built,
// tenants admitted at t=0, migration and crash triggers armed. RunFleet
// drives the result to completion; the snapshot export/import paths drive it
// barrier by barrier.
func buildFleet(sc FleetScenario) (*fleet.Fleet, *invariant.FleetChecker, sim.Time, error) {
	if len(sc.Tenants) == 0 {
		return nil, nil, 0, fmt.Errorf("harness: fleet scenario has no tenants")
	}
	horizon := sc.Horizon
	if horizon <= 0 {
		horizon = 100 * sim.Millisecond
	}
	var checker *invariant.FleetChecker
	if sc.Invariants {
		checker = invariant.NewFleetChecker(invariant.FleetOptions{Repro: sc.Repro})
	}

	var injectorFor func(device int) core.FaultInjector
	if sc.Faults != nil {
		injectorFor = sc.Faults.injectorFor()
	}
	f, err := fleet.NewSharded(fleet.Config{
		Seed:            sc.Seed,
		Devices:         sc.Devices,
		Runtime:         sc.Runtime,
		InjectorFor:     injectorFor,
		Policy:          sc.Policy,
		Profile:         fleetProfile,
		Checker:         checker,
		Rebalance:       sc.Rebalance,
		Autoscale:       sc.Autoscale,
		Shards:          sc.Shards,
		ShardOf:         sc.ShardOf,
		ExchangeLatency: sc.ExchangeLatency,
	})
	if err != nil {
		return nil, nil, 0, err
	}

	for _, t := range sc.Tenants {
		if err := f.Admit(fleet.TenantSpec{
			Name: t.Name, App: t.App, Quota: t.Quota, SLOTarget: t.SLOTarget,
			Think: t.Think, Requests: t.Requests,
		}); err != nil {
			return nil, nil, 0, err
		}
	}
	for _, m := range sc.Migrations {
		f.ScheduleMigration(m.At, m.Tenant, m.Target)
	}
	for _, e := range sc.DeviceCrashes {
		f.ScheduleCrash(e.At, e.Device)
	}
	return f, checker, horizon, nil
}

// fleetReport assembles the result of a finished fleet run.
func fleetReport(f *fleet.Fleet, checker *invariant.FleetChecker) *FleetResult {
	res := &FleetResult{
		Devices: f.Snapshot().Devices,
		Stats:   f.Stats(),
		Digest:  f.CompletionDigest(),
		Elapsed: f.Elapsed(),
	}
	for _, tr := range f.Results() {
		sum := metrics.Summarize(tr.Latencies)
		res.Tenants = append(res.Tenants, FleetTenantOutcome{
			Name:       tr.Name,
			App:        tr.App,
			Quota:      tr.Quota,
			Device:     tr.Device,
			Completed:  tr.Completed,
			Failed:     tr.Failed,
			MeanLat:    sum.Mean,
			P99Lat:     sum.P99,
			Migrations: tr.Migrations,
			Evicted:    tr.Evicted,
		})
	}
	if checker != nil {
		res.Invariants = checker.Report(f.Elapsed())
	}
	return res
}
