package harness

import (
	"strings"
	"testing"

	"bless/internal/sim"
	"bless/internal/trace"
)

func TestRunClosedLoopPair(t *testing.T) {
	sched, err := NewSystem("BLESS")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Scheduler: sched,
		Clients: []ClientSpec{
			{App: "vgg11", Quota: 0.5, Pattern: trace.Closed(10*sim.Millisecond, 0)},
			{App: "resnet50", Quota: 0.5, Pattern: trace.Closed(9*sim.Millisecond, 0)},
		},
		Horizon: 200 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, cr := range res.PerClient {
		if cr.Completed < 3 {
			t.Errorf("client %d completed %d requests, want >= 3", i, cr.Completed)
		}
		if cr.Submitted != cr.Completed {
			t.Errorf("client %d submitted %d but completed %d; drain incomplete", i, cr.Submitted, cr.Completed)
		}
		if cr.ISO <= 0 {
			t.Errorf("client %d missing ISO target", i)
		}
	}
	if res.AvgLatency <= 0 {
		t.Error("no average latency")
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization %g out of range", res.Utilization)
	}
}

func TestRunOpenLoopDrainsAfterHorizon(t *testing.T) {
	sched, err := NewSystem("STATIC")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Scheduler: sched,
		Clients: []ClientSpec{
			{App: "vgg11", Quota: 0.5, Pattern: trace.Periodic(20*sim.Millisecond, 0, 100*sim.Millisecond)},
			{App: "resnet50", Quota: 0.5, Pattern: trace.Burst(2, 95*sim.Millisecond)},
		},
		Horizon: 100 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Periodic: arrivals at 0,20,...,100 -> 6 requests; burst: 2 requests
	// at 95ms, completing past the horizon during drain.
	if res.PerClient[0].Completed != 6 {
		t.Errorf("periodic client completed %d, want 6", res.PerClient[0].Completed)
	}
	if res.PerClient[1].Completed != 2 {
		t.Errorf("burst client completed %d, want 2", res.PerClient[1].Completed)
	}
	if res.Elapsed <= 100*sim.Millisecond {
		t.Errorf("elapsed %v; drain did not extend past the horizon", res.Elapsed)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() sim.Time {
		sched, _ := NewSystem("BLESS")
		res, err := Run(RunConfig{
			Scheduler: sched,
			Clients: []ClientSpec{
				{App: "resnet50", Quota: 0.5, Pattern: trace.Poisson(80, 150*sim.Millisecond, 5)},
				{App: "bert", Quota: 0.5, Pattern: trace.Poisson(40, 150*sim.Millisecond, 6)},
			},
			Horizon: 150 * sim.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgLatency
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical configs produced different results: %v vs %v", a, b)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	sched, _ := NewSystem("BLESS")
	if _, err := Run(RunConfig{Scheduler: sched}); err == nil {
		t.Error("clientless config accepted")
	}
	sched2, _ := NewSystem("BLESS")
	if _, err := Run(RunConfig{
		Scheduler: sched2,
		Clients:   []ClientSpec{{App: "nope", Quota: 0.5, Pattern: trace.Burst(1, 0)}},
	}); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestNewSystemNames(t *testing.T) {
	for _, name := range append(append([]string{}, InferenceSystems...), "ZICO", "STATIC", "BLESS-noSched", "BLESS-noDet") {
		if _, err := NewSystem(name); err != nil {
			t.Errorf("NewSystem(%q): %v", name, err)
		}
	}
	if _, err := NewSystem("nope"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestProfileForCachesDeterministically(t *testing.T) {
	cfg := sim.DefaultConfig()
	p1, err := ProfileFor("vgg11", cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ProfileFor("vgg11", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("cache returned distinct profiles for identical keys")
	}
	if _, err := ProfileFor("nope", cfg); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	want := []string{"cluster", "design", "estacc", "fig1", "fig10", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig18", "fig19a", "fig19b",
		"fig19c", "fig20", "fig3", "fig9", "llm", "overhead", "slo",
		"table1", "traces"}
	if len(exps) != len(want) {
		t.Fatalf("%d experiments registered, want %d", len(exps), len(want))
	}
	for i, e := range exps {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	if _, err := Lookup("fig13"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID:      "x",
		Title:   "test",
		Columns: []string{"a", "bbbb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	out := tb.Render()
	for _, want := range []string{"== x: test ==", "bbbb", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestQuickExperimentsSmoke runs every registered experiment in quick mode —
// the end-to-end integration test of the whole repository.
func TestQuickExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take seconds")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb, err := e.Run(Options{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tb.Rows) == 0 {
				t.Errorf("%s produced no rows", e.ID)
			}
			if tb.Render() == "" {
				t.Errorf("%s rendered empty", e.ID)
			}
		})
	}
}
