package harness

import (
	"fmt"

	"bless/internal/core"
	"bless/internal/obs"
	"bless/internal/sim"
	"bless/internal/trace"
)

// ObservedRun bundles the artifacts of a fully instrumented run: the usual
// result plus the kernel timeline, the decision-event stream, the streaming
// metrics registry and the per-client overhead breakdown (§6.9).
type ObservedRun struct {
	// Result is the ordinary harness outcome.
	Result *Result
	// Collector holds the kernel timeline (one lane per client) and the
	// scheduler's decision events; WriteChromeTrace exports both.
	Collector *obs.Collector
	// Registry holds the streaming metrics: latency histograms, counters,
	// gauges, and the recorded overhead breakdown.
	Registry *obs.Registry
	// SLO is the per-tenant latency-SLO attainment, tracked online.
	SLO *obs.SLOTracker
	// Overheads is the per-client overhead attribution, deployment order.
	Overheads []core.ClientOverhead
	// Host is the simulated host's independent ground-truth accounting.
	Host sim.HostOverhead
	// Stats are the runtime's scheduling counters.
	Stats core.Stats
}

// ObservedPairRun executes one fig13-style run — two closed-loop clients
// under BLESS with the given quotas and workload intensity — with the full
// observability stack attached: a timeline recorder and decision-event
// collector for Chrome-trace export, and a streaming metrics registry
// holding latency histograms plus the §6.9 per-client overhead breakdown.
func ObservedPairRun(apps [2]string, quotas [2]float64, workload string, horizon sim.Time) (*ObservedRun, error) {
	cfg := sim.DefaultConfig()
	var pats [2]trace.Pattern
	for i, a := range apps {
		p, err := closedLoadPattern(a, workload, cfg)
		if err != nil {
			return nil, err
		}
		pats[i] = p
	}

	rt := core.New(core.DefaultOptions())
	col := obs.NewCollector()
	col.Recorder.LaneOf = obs.ClientLane // one lane per client, not per context
	bus := obs.NewBus()
	bus.Subscribe(col)
	bus.SelfAccount(true) // measure the tracing layer's own cost (§6.9)
	reg := obs.NewRegistry()
	slo := obs.NewSLOTracker()

	res, err := Run(RunConfig{
		Scheduler: rt,
		Clients: []ClientSpec{
			{App: apps[0], Quota: quotas[0], Pattern: pats[0]},
			{App: apps[1], Quota: quotas[1], Pattern: pats[1]},
		},
		Horizon:  horizon,
		GPU:      cfg,
		Tracers:  []sim.Tracer{col.Recorder},
		Bus:      bus,
		Registry: reg,
		SLO:      slo,
	})
	if err != nil {
		return nil, err
	}

	o := &ObservedRun{
		Result:    res,
		Collector: col,
		Registry:  reg,
		SLO:       slo,
		Overheads: rt.OverheadStats(),
		Host:      rt.HostOverhead(),
		Stats:     rt.Stats(),
	}
	RecordOverheads(reg, o.Stats, o.Overheads, o.Host)
	RecordTracingCost(reg, bus, col)
	return o, nil
}

// RecordTracingCost publishes the observability layer's self-accounting into
// the registry: events delivered, real time spent inside subscriber fan-out
// (only accrued while Bus.SelfAccount is on), and events refused by bounded
// collectors. This extends the §6.9 overhead attribution to the tracing
// layer itself — the cost of watching is measured like every other cost.
func RecordTracingCost(reg *obs.Registry, bus *obs.Bus, cols ...*obs.Collector) {
	cost := bus.Cost()
	reg.Counter("obs/events_total").Add(cost.Events)
	reg.Counter("obs/publish_wall_ns").Add(cost.WallNS)
	var dropped int64
	for _, c := range cols {
		if c != nil {
			dropped += c.Dropped()
		}
	}
	reg.Counter("obs/events_dropped_total").Add(dropped)
}

// RecordOverheads publishes the scheduling counters and the per-client
// overhead breakdown into the registry, so a metrics snapshot carries the
// full §6.9 accounting next to the latency histograms. Times are recorded as
// nanosecond counters (virtual time is integral nanoseconds).
func RecordOverheads(reg *obs.Registry, st core.Stats, ovh []core.ClientOverhead, host sim.HostOverhead) {
	reg.Counter("squads_total").Add(st.SquadsExecuted)
	reg.Counter("kernels_scheduled_total").Add(st.KernelsScheduled)
	reg.Counter("configs_evaluated_total").Add(st.ConfigsEvaluated)
	reg.Counter("spatial_squads_total").Add(st.SpatialSquads)

	for _, o := range ovh {
		p := "overhead/" + o.Client + "/"
		reg.Counter(p + "launches").Add(o.Launches)
		reg.Counter(p + "switches").Add(o.Switches)
		reg.Counter(p + "syncs").Add(o.Syncs)
		reg.Counter(p + "kernels").Add(o.Kernels)
		reg.Counter(p + "launch_ns").Add(int64(o.LaunchTime))
		reg.Counter(p + "switch_ns").Add(int64(o.SwitchTime))
		reg.Counter(p + "sync_ns").Add(int64(o.SyncTime))
		reg.Counter(p + "sched_ns").Add(int64(o.SchedTime))
		reg.Counter(p + "total_ns").Add(int64(o.Total()))
	}
	// Host ground truth, for cross-checking the attribution.
	reg.Counter("host/launch_ns").Add(int64(host.LaunchTime))
	reg.Counter("host/sync_ns").Add(int64(host.SyncTime))
	reg.Counter("host/sched_spend_ns").Add(int64(host.SpendTime))
	reg.Counter("host/launches").Add(host.Launches)
	reg.Counter("host/syncs").Add(host.Syncs)
}

// VerifyOverheadAttribution cross-checks the decision-level per-client
// attribution against the host's independently measured accounting. The
// launch and sync columns must match the host EXACTLY (same events, same
// unit costs, two independent code paths); the sched and switch columns are
// definitional (counts times the §6.9 unit costs) and must agree with the
// runtime's counters. Returns an error naming the first violated identity.
func VerifyOverheadAttribution(st core.Stats, ovh []core.ClientOverhead, host sim.HostOverhead, cfg sim.Config, schedPerKernel sim.Time) error {
	var launches, switches, kernels int64
	var launchT, switchT, syncT, schedT sim.Time
	for _, o := range ovh {
		launches += o.Launches
		switches += o.Switches
		kernels += o.Kernels
		launchT += o.LaunchTime
		switchT += o.SwitchTime
		syncT += o.SyncTime
		schedT += o.SchedTime
	}
	if launches != host.Launches || launchT != host.LaunchTime {
		return fmt.Errorf("launch attribution (%d calls, %v) != host measurement (%d calls, %v)",
			launches, launchT, host.Launches, host.LaunchTime)
	}
	if syncT != host.SyncTime {
		return fmt.Errorf("sync attribution %v != host measurement %v", syncT, host.SyncTime)
	}
	if host.Syncs != st.SquadsExecuted {
		return fmt.Errorf("host syncs %d != squads executed %d", host.Syncs, st.SquadsExecuted)
	}
	if kernels != st.KernelsScheduled {
		return fmt.Errorf("attributed kernels %d != kernels scheduled %d", kernels, st.KernelsScheduled)
	}
	if want := schedPerKernel * sim.Time(kernels); schedT != want {
		return fmt.Errorf("sched attribution %v != kernels x unit cost %v", schedT, want)
	}
	if want := cfg.ContextSwitch * sim.Time(switches); switchT != want {
		return fmt.Errorf("switch attribution %v != switches x unit cost %v", switchT, want)
	}
	// The host's busy time (launches + syncs + sched overspend) must be
	// covered by the attribution within 1%: launch and sync match exactly,
	// and the sched column bounds the overspend (scheduling overlapped with
	// device execution is attributed in full but only the excess stalls the
	// host).
	if host.SpendTime > schedT {
		return fmt.Errorf("host sched overspend %v exceeds attributed sched time %v", host.SpendTime, schedT)
	}
	attributed := launchT + syncT + schedT
	measured := host.LaunchTime + host.SyncTime + host.SpendTime
	if attributed < measured {
		diff := float64(measured-attributed) / float64(measured)
		if diff > 0.01 {
			return fmt.Errorf("attributed host overhead %v below measured %v by %.2f%%", attributed, measured, diff*100)
		}
	}
	return nil
}
