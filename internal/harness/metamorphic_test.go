package harness

import (
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"

	"bless/internal/invariant"
	"bless/internal/sim"
	"bless/internal/trace"
)

// TestDeterminismDigest is the determinism invariant end-to-end: the same
// configuration run twice folds to one digest, and a different workload folds
// to a different one.
func TestDeterminismDigest(t *testing.T) {
	mk := func(think sim.Time) func() (RunConfig, error) {
		return func() (RunConfig, error) {
			sched, err := NewSystem("BLESS")
			if err != nil {
				return RunConfig{}, err
			}
			return RunConfig{
				Scheduler: sched,
				Clients: []ClientSpec{
					{App: "resnet50", Quota: 0.5, Pattern: trace.Closed(think, 0)},
					{App: "vgg11", Quota: 0.5, Pattern: trace.Closed(0, 0)},
				},
				Horizon: 100 * sim.Millisecond,
			}, nil
		}
	}
	d1, err := VerifyDeterminism(mk(2 * sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := VerifyDeterminism(mk(3 * sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Errorf("distinct workloads folded to the same digest %016x", d1)
	}
}

// metamorphicSeeds returns how many random base workloads the metamorphic
// suite explores: INVARIANT_SEEDS overrides (the CI long job raises it),
// -short halves the default.
func metamorphicSeeds(t *testing.T) int {
	if s := os.Getenv("INVARIANT_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("INVARIANT_SEEDS=%q: want a positive integer", s)
		}
		return n
	}
	if testing.Short() {
		return 2
	}
	return 4
}

// verdictClasses reduces a report to its invariant verdict: the sorted set of
// classes with any breach (enforced or observed). Universal classes must
// never appear; policy classes characterize the schedule.
func verdictClasses(rep *invariant.Report) string {
	set := map[string]bool{}
	for _, v := range rep.Violations {
		set[v.Class.String()] = true
	}
	for _, v := range rep.Observations {
		set[v.Class.String()] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

// TestMetamorphicInvariantVerdicts checks the two metamorphic relations from
// the issue across randomized multi-seed workloads:
//
//  1. Permuting client deployment order relabels IDs but must not change
//     which invariant classes the schedule breaches.
//  2. Uniformly scaling every quota down (x0.9 leaves 10% of the device
//     unprovisioned) must not introduce breaches of classes that were clean —
//     looser quotas only make the guarantees easier.
//
// Universal classes (conservation, order) must stay clean under every
// transform.
func TestMetamorphicInvariantVerdicts(t *testing.T) {
	systems := []string{"BLESS", "STATIC", "TEMPORAL"}
	models := []string{"vgg11", "resnet50", "bert"}
	seeds := metamorphicSeeds(t)

	// Phase 1 (serial): draw every seed's base workload and its two
	// transforms from the per-seed rng. Each seed contributes three runs —
	// base, permuted, quota-scaled — at job indices 3*seed+{0,1,2}.
	type metaJob struct {
		sys   string
		specs []ClientSpec
	}
	jobs := make([]metaJob, 0, 3*seeds)
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(100 + seed)))
		sys := systems[seed%len(systems)]
		n := 2 + rng.Intn(2)
		specs := make([]ClientSpec, n)
		rem := 1.0
		for i := range specs {
			q := rem / float64(n-i)
			if i < n-1 {
				q *= 0.7 + 0.6*rng.Float64()
			}
			rem -= q
			specs[i] = ClientSpec{
				App:     models[rng.Intn(len(models))],
				Quota:   q,
				Pattern: trace.Closed(sim.Time(1+rng.Intn(6))*sim.Millisecond, 0),
			}
		}

		// Relation 1 input: permutation relabels IDs only.
		perm := make([]ClientSpec, n)
		for i, j := range rng.Perm(n) {
			perm[i] = specs[j]
		}
		// Relation 2 input: uniformly loosened quotas.
		scaled := make([]ClientSpec, n)
		copy(scaled, specs)
		for i := range scaled {
			scaled[i].Quota *= 0.9
		}
		jobs = append(jobs, metaJob{sys, specs}, metaJob{sys, perm}, metaJob{sys, scaled})
	}

	// Phase 2 (parallel): the runs are independent; a universal breach is an
	// immediate failure (FailOnViolation surfaces it as the run's error).
	results, err := RunParallel(0, func() []func() (RunConfig, error) {
		mks := make([]func() (RunConfig, error), len(jobs))
		for i, j := range jobs {
			mks[i] = func() (RunConfig, error) {
				sched, err := NewSystem(j.sys)
				if err != nil {
					return RunConfig{}, err
				}
				return RunConfig{
					Scheduler:  sched,
					Clients:    j.specs,
					Horizon:    120 * sim.Millisecond,
					Invariants: &invariant.Options{FailOnViolation: true}, // universal enforcement
				}, nil
			}
		}
		return mks
	}())
	if err != nil {
		t.Fatal(err)
	}

	// Phase 3 (serial): check both metamorphic relations per seed.
	for seed := 0; seed < seeds; seed++ {
		sys := jobs[3*seed].sys
		base := verdictClasses(results[3*seed].Invariants)
		permuted := verdictClasses(results[3*seed+1].Invariants)
		looser := verdictClasses(results[3*seed+2].Invariants)

		// Relation 1: permutation preserves the verdict exactly.
		if permuted != base {
			t.Errorf("seed %d (%s): permuting clients changed the verdict %q -> %q",
				seed, sys, base, permuted)
		}

		// Relation 2: uniformly loosening quotas never breaches a clean class.
		for _, c := range strings.Split(looser, ",") {
			if c != "" && !strings.Contains(base, c) {
				t.Errorf("seed %d (%s): scaling quotas x0.9 introduced a %q breach (base verdict %q, scaled %q)",
					seed, sys, c, base, looser)
			}
		}
	}
}
