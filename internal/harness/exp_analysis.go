package harness

import (
	"fmt"
	"math/rand"

	"bless/internal/core"
	"bless/internal/model"
	"bless/internal/sharing"
	"bless/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Fig 9: kernel-level and application-level interference",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Fig 10: estimator predictions vs actual across execution configurations (NasNet+ResNet50 squad)",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "estacc",
		Title: "§4.4.2: aggregate estimator accuracy and optimal-configuration match rate",
		Run:   runEstAcc,
	})
	register(Experiment{
		ID:    "fig17",
		Title: "Fig 17: kernel squad duration under SEQ / NSP / SP / Semi-SP",
		Run:   runFig17,
	})
}

// squadClient builds one profiled sharing.Client outside a scheduler run.
func squadClient(id int, name string, quota float64) (*sharing.Client, error) {
	app, err := model.Get(name)
	if err != nil {
		return nil, err
	}
	prof, err := ProfileFor(name, sim.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &sharing.Client{ID: id, App: app, Profile: prof, Quota: quota}, nil
}

// buildSquad assembles a squad from kernel ranges of two clients.
func buildSquad(c0, c1 *sharing.Client, from0, n0, from1, n1 int) *core.Squad {
	mk := func(from, n int) []int {
		ks := make([]int, n)
		for i := range ks {
			ks[i] = from + i
		}
		return ks
	}
	return &core.Squad{Entries: []core.SquadEntry{
		{Client: c0, Request: &sharing.Request{Client: c0}, Kernels: mk(from0, n0)},
		{Client: c1, Request: &sharing.Request{Client: c1}, Kernels: mk(from1, n1)},
	}}
}

// execSquad runs a squad on a fresh device under a given policy and returns
// the measured duration (time of the last kernel completion).
//
// Policies: "seq" serializes all kernels through one queue; "nsp" gives each
// entry an unrestricted context; "sp" restricts each entry to sms[i];
// "semi" restricts the first half of each entry and redirects the rest to an
// unrestricted context after the restricted head drains (+ context switch).
func execSquad(s *core.Squad, policy string, sms []int) (sim.Time, error) {
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())
	var last sim.Time
	record := func(at sim.Time) {
		if at > last {
			last = at
		}
	}

	switch policy {
	case "seq":
		ctx, err := gpu.NewContext(sim.ContextOptions{NoMemCharge: true})
		if err != nil {
			return 0, err
		}
		q := ctx.NewQueue("seq")
		// Breadth-first interleave into ONE queue: strict serialization.
		max := 0
		for i := range s.Entries {
			if n := len(s.Entries[i].Kernels); n > max {
				max = n
			}
		}
		for r := 0; r < max; r++ {
			for i := range s.Entries {
				e := &s.Entries[i]
				if r < len(e.Kernels) {
					q.Enqueue(0, &e.Client.App.Kernels[e.Kernels[r]], record)
				}
			}
		}
	case "nsp", "sp":
		for i := range s.Entries {
			e := &s.Entries[i]
			limit := 0
			if policy == "sp" {
				limit = sms[i]
			}
			ctx, err := gpu.NewContext(sim.ContextOptions{SMLimit: limit, NoMemCharge: true})
			if err != nil {
				return 0, err
			}
			q := ctx.NewQueue(e.Client.App.Name)
			for _, k := range e.Kernels {
				q.Enqueue(0, &e.Client.App.Kernels[k], record)
			}
		}
	case "semi":
		ctxSwitch := gpu.Config().ContextSwitch
		for i := range s.Entries {
			e := &s.Entries[i]
			rctx, err := gpu.NewContext(sim.ContextOptions{SMLimit: sms[i], NoMemCharge: true})
			if err != nil {
				return 0, err
			}
			uctx, err := gpu.NewContext(sim.ContextOptions{NoMemCharge: true})
			if err != nil {
				return 0, err
			}
			rq := rctx.NewQueue("head")
			uq := uctx.NewQueue("tail")
			split := (len(e.Kernels) + 1) / 2
			head, tail := e.Kernels[:split], e.Kernels[split:]
			app := e.Client.App
			remainingHead := len(head)
			for _, k := range head {
				k := k
				rq.Enqueue(0, &app.Kernels[k], func(at sim.Time) {
					record(at)
					remainingHead--
					if remainingHead == 0 {
						for _, tk := range tail {
							uq.Enqueue(at+ctxSwitch, &app.Kernels[tk], record)
						}
					}
				})
			}
			if len(head) == 0 {
				for _, tk := range tail {
					uq.Enqueue(0, &app.Kernels[tk], record)
				}
			}
		}
	default:
		return 0, fmt.Errorf("harness: unknown squad policy %q", policy)
	}
	eng.Run()
	return last, nil
}

// runFig9 measures (a) the slowdown of a compute kernel co-located with an
// increasingly memory-intensive co-runner, and (b) application-level mutual
// slowdown of quota-partitioned pairs.
func runFig9(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "Interference analysis",
		Columns: []string{"experiment", "case", "slowdown"},
		Notes: []string{
			"paper: kernel-level slowdown <= 2x even against highly memory-intensive co-runners; application-level average ~7%",
		},
	}

	// (a) Kernel level: a 50%-intensity compute kernel on 54 SMs vs a
	// co-runner on the other 54 SMs with rising memory intensity.
	for _, mem := range []float64{0.0, 0.25, 0.5, 0.75, 1.0} {
		base := &sim.Kernel{Name: "probe", Kind: sim.Compute, Work: 54 * sim.Millisecond, SaturationSMs: 108, MemIntensity: 0.5}
		solo := runKernelPair(base, nil, 0)
		co := &sim.Kernel{Name: "hog", Kind: sim.Compute, Work: 540 * sim.Millisecond, SaturationSMs: 108, MemIntensity: mem}
		dur := runKernelPair(base, co, 0)
		t.Rows = append(t.Rows, []string{
			"kernel-level",
			fmt.Sprintf("co-runner mem=%.2f", mem),
			fmt.Sprintf("%.2fx", float64(dur)/float64(solo)),
		})
	}

	// (b) Application level: mutual pairs under static 50/50 partitions;
	// slowdown vs the isolated 50% latency.
	apps := []string{"resnet50", "vgg11", "nasnet", "bert"}
	total, n := 0.0, 0
	for _, a := range apps {
		for _, b := range apps {
			if a == b {
				continue
			}
			slow, err := appPairSlowdown(a, b)
			if err != nil {
				return nil, err
			}
			total += slow
			n++
			t.Rows = append(t.Rows, []string{
				"app-level",
				fmt.Sprintf("%s vs %s", a, b),
				fmt.Sprintf("%+.1f%%", (slow-1)*100),
			})
		}
	}
	t.Rows = append(t.Rows, []string{"app-level", "average", fmt.Sprintf("%+.1f%%", (total/float64(n)-1)*100)})
	return t, nil
}

// runKernelPair measures base's duration on a 54-SM partition, optionally
// next to co on the other 54 SMs.
func runKernelPair(base, co *sim.Kernel, _ int) sim.Time {
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())
	ctx1, _ := gpu.NewContext(sim.ContextOptions{SMLimit: 54, NoMemCharge: true})
	var end sim.Time
	ctx1.NewQueue("q1").Enqueue(0, base, func(at sim.Time) { end = at })
	if co != nil {
		ctx2, _ := gpu.NewContext(sim.ContextOptions{SMLimit: 54, NoMemCharge: true})
		ctx2.NewQueue("q2").Enqueue(0, co, nil)
	}
	eng.RunUntil(10 * sim.Second)
	return end
}

// appPairSlowdown runs app a's full request on a 54-SM partition while app b
// continuously occupies the other partition, and compares with a's isolated
// 50% latency.
func appPairSlowdown(a, b string) (float64, error) {
	ca, err := squadClient(0, a, 0.5)
	if err != nil {
		return 0, err
	}
	cb, err := squadClient(1, b, 0.5)
	if err != nil {
		return 0, err
	}
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())
	ctxA, _ := gpu.NewContext(sim.ContextOptions{SMLimit: 54, NoMemCharge: true})
	ctxB, _ := gpu.NewContext(sim.ContextOptions{SMLimit: 54, NoMemCharge: true})
	qa, qb := ctxA.NewQueue("a"), ctxB.NewQueue("b")
	var done sim.Time
	for i := range ca.App.Kernels {
		last := i == len(ca.App.Kernels)-1
		qa.Enqueue(0, &ca.App.Kernels[i], func(at sim.Time) {
			if last {
				done = at
			}
		})
	}
	// b loops its request to keep pressure on for a's whole duration.
	var loopB func(at sim.Time)
	loopB = func(at sim.Time) {
		for i := range cb.App.Kernels {
			last := i == len(cb.App.Kernels)-1
			if last {
				qb.Enqueue(at, &cb.App.Kernels[i], func(end sim.Time) {
					if done == 0 {
						loopB(end)
					}
				})
			} else {
				qb.Enqueue(at, &cb.App.Kernels[i], nil)
			}
		}
	}
	loopB(0)
	eng.RunUntil(5 * sim.Second)
	iso := ca.Profile.IsoAtQuota(0.5)
	return float64(done) / float64(iso), nil
}

// runFig10 sweeps the 18 execution configurations for a NasNet+ResNet50
// squad, reporting predicted vs actual durations and the chosen optimum.
func runFig10(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "Estimator predictions across configurations, NasNet+ResNet50 squad",
		Columns: []string{"config", "predicted (ms)", "actual (ms)", "error"},
		Notes: []string{
			"paper: the predicted optimal configuration (54/54 SMs) matches the actual optimum",
		},
	}
	c0, err := squadClient(0, "nasnet", 0.5)
	if err != nil {
		return nil, err
	}
	c1, err := squadClient(1, "resnet50", 0.5)
	if err != nil {
		return nil, err
	}
	s := buildSquad(c0, c1, 0, 29, 0, 40)

	type point struct {
		name      string
		pred, act sim.Time
	}
	var pts []point
	bestPred, bestAct := -1, -1
	for p := 1; p <= 17; p++ {
		sms := []int{108 * p / 18, 108 * (18 - p) / 18}
		pred := core.EstimateSpatial(s, sms)
		act, err := execSquad(s, "sp", sms)
		if err != nil {
			return nil, err
		}
		pts = append(pts, point{fmt.Sprintf("SP %d/%d", sms[0], sms[1]), pred, act})
		if bestPred < 0 || pred < pts[bestPred].pred {
			bestPred = len(pts) - 1
		}
		if bestAct < 0 || act < pts[bestAct].act {
			bestAct = len(pts) - 1
		}
	}
	nspPred := core.EstimateUnrestricted(s, 108, sim.DefaultConfig().InterferenceBeta)
	nspAct, err := execSquad(s, "nsp", nil)
	if err != nil {
		return nil, err
	}
	pts = append(pts, point{"NSP", nspPred, nspAct})
	if nspPred < pts[bestPred].pred {
		bestPred = len(pts) - 1
	}
	if nspAct < pts[bestAct].act {
		bestAct = len(pts) - 1
	}

	for _, p := range pts {
		errFrac := float64(p.pred-p.act) / float64(p.act)
		t.Rows = append(t.Rows, []string{p.name, ms(p.pred), ms(p.act), pct(errFrac)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("predicted optimum: %s; actual optimum: %s", pts[bestPred].name, pts[bestAct].name))
	return t, nil
}

// runEstAcc samples many pair-wise squads, reporting both predictors' average
// error and how often the predicted optimal configuration matches the true
// optimum — the paper's 6.7% / 7.1% errors and 96.2% match rate.
func runEstAcc(opt Options) (*Table, error) {
	t := &Table{
		ID:      "estacc",
		Title:   "Aggregate estimator accuracy",
		Columns: []string{"metric", "value"},
		Notes: []string{
			"paper: interference-free error 6.7%, workload-equivalence error 7.1% (1500 pairs); optimal-config match 96.2% (2260 groups)",
		},
	}
	groups := 150
	if opt.Quick {
		groups = 30
	}
	rng := rand.New(rand.NewSource(42))
	models := InferenceModels
	beta := sim.DefaultConfig().InterferenceBeta

	var spErr, nspErr float64
	spN, nspN := 0, 0
	match, near, matchN := 0, 0, 0
	for g := 0; g < groups; g++ {
		a := models[rng.Intn(len(models))]
		b := models[rng.Intn(len(models))]
		ca, err := squadClient(0, a, 0.5)
		if err != nil {
			return nil, err
		}
		cb, err := squadClient(1, b, 0.5)
		if err != nil {
			return nil, err
		}
		n0 := 5 + rng.Intn(20)
		n1 := 5 + rng.Intn(20)
		f0 := rng.Intn(ca.App.NumKernels() - n0)
		f1 := rng.Intn(cb.App.NumKernels() - n1)
		s := buildSquad(ca, cb, f0, n0, f1, n1)

		// Interference-free predictor on a random strict split.
		p := 3 + rng.Intn(12)
		sms := []int{108 * p / 18, 108 * (18 - p) / 18}
		pred := core.EstimateSpatial(s, sms)
		act, err := execSquad(s, "sp", sms)
		if err != nil {
			return nil, err
		}
		spErr += absF(float64(pred-act) / float64(act))
		spN++

		// Workload-equivalence predictor.
		nPred := core.EstimateUnrestricted(s, 108, beta)
		nAct, err := execSquad(s, "nsp", nil)
		if err != nil {
			return nil, err
		}
		nspErr += absF(float64(nPred-nAct) / float64(nAct))
		nspN++

		// Optimal-configuration match over the full space.
		bestPredName, bestActName := "", ""
		var bestPred, bestAct sim.Time
		actualOf := map[string]sim.Time{}
		consider := func(name string, pr, ac sim.Time) {
			actualOf[name] = ac
			if bestPredName == "" || pr < bestPred {
				bestPredName, bestPred = name, pr
			}
			if bestActName == "" || ac < bestAct {
				bestActName, bestAct = name, ac
			}
		}
		for pp := 1; pp <= 17; pp += 2 {
			ss := []int{108 * pp / 18, 108 * (18 - pp) / 18}
			ac, err := execSquad(s, "sp", ss)
			if err != nil {
				return nil, err
			}
			consider(fmt.Sprintf("sp%d", pp), core.EstimateSpatial(s, ss), ac)
		}
		consider("nsp", nPred, nAct)
		matchN++
		if bestPredName == bestActName {
			match++
		}
		// A near-tie miss is harmless: the chosen configuration's ACTUAL
		// duration within 5% of the true optimum.
		if float64(actualOf[bestPredName]) <= float64(bestAct)*1.05 {
			near++
		}
	}
	t.Rows = append(t.Rows,
		[]string{"interference-free predictor avg error", fmt.Sprintf("%.1f%%", spErr/float64(spN)*100)},
		[]string{"workload-equivalence predictor avg error", fmt.Sprintf("%.1f%%", nspErr/float64(nspN)*100)},
		[]string{"optimal-config exact match rate", fmt.Sprintf("%.1f%% (%d groups)", float64(match)/float64(matchN)*100, matchN)},
		[]string{"chosen config within 5% of optimum", fmt.Sprintf("%.1f%%", float64(near)/float64(matchN)*100)},
	)
	return t, nil
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// runFig17 measures squad duration under the four execution policies for the
// paper's three application pairs.
func runFig17(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig17",
		Title:   "Kernel squad duration by execution policy",
		Columns: []string{"pair", "SEQ (ms)", "NSP (ms)", "SP (ms)", "Semi-SP (ms)", "Semi-SP vs SEQ"},
		Notes: []string{
			"paper: vs SEQ, NSP -6.5%, SP -12.9%, Semi-SP -17.6% on average; Semi-SP shortest",
		},
	}
	pairs := [][2]string{{"nasnet", "bert"}, {"bert", "resnet50"}, {"nasnet", "resnet50"}}
	for _, pair := range pairs {
		c0, err := squadClient(0, pair[0], 0.5)
		if err != nil {
			return nil, err
		}
		c1, err := squadClient(1, pair[1], 0.5)
		if err != nil {
			return nil, err
		}
		n0 := min(25, c0.App.NumKernels())
		n1 := min(25, c1.App.NumKernels())
		s := buildSquad(c0, c1, 1, n0, 1, n1)

		// Optimal strict split: the best spatial configuration by the
		// interference-free estimate (the determiner's spatial search).
		var sms []int
		var bestEst sim.Time
		for p := 1; p <= 17; p++ {
			cand := []int{108 * p / 18, 108 * (18 - p) / 18}
			if est := core.EstimateSpatial(s, cand); sms == nil || est < bestEst {
				sms, bestEst = cand, est
			}
		}

		seq, err := execSquad(s, "seq", nil)
		if err != nil {
			return nil, err
		}
		nsp, err := execSquad(s, "nsp", nil)
		if err != nil {
			return nil, err
		}
		sp, err := execSquad(s, "sp", sms)
		if err != nil {
			return nil, err
		}
		semi, err := execSquad(s, "semi", sms)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			pair[0] + "+" + pair[1],
			ms(seq), ms(nsp), ms(sp), ms(semi),
			pct(float64(semi)/float64(seq) - 1),
		})
	}
	return t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
