package harness

import (
	"fmt"

	"bless/internal/core"
	"bless/internal/sim"
	"bless/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "design",
		Title: "Design ablation: this implementation's own scheduling choices (flush, duration cap, Semi-SP)",
		Run:   runDesign,
	})
}

// runDesign ablates the design decisions DESIGN.md calls out beyond the
// paper's Fig 20: the endgame flush (which unlocks alternation at light
// load), the pace-margin duration cap on squads (which keeps quota guards
// responsive), and the Semi-SP mid-squad context switch. Each variant runs
// the symmetric low-load pair where these mechanisms matter most, plus the
// biased deployment that stresses the quota guard.
func runDesign(opt Options) (*Table, error) {
	t := &Table{
		ID:      "design",
		Title:   "Implementation design ablation",
		Columns: []string{"variant", "R50-pair avg @C (ms)", "vs full", "biased app1 vs ISO"},
		Notes: []string{
			"R50 pair at workload C is the alternation showcase; the biased column is workload E's quota-guarantee stress (sparse 8/9-quota R50 vs dense 1/9 BERT)",
		},
	}
	cfg := sim.DefaultConfig()
	horizon := sim.Second
	if opt.Quick {
		horizon = 300 * sim.Millisecond
	}

	prof, err := ProfileFor("resnet50", cfg)
	if err != nil {
		return nil, err
	}
	solo := prof.Iso[prof.Partitions-1]

	variants := []struct {
		name string
		opts core.Options
	}{
		{"full BLESS", core.DefaultOptions()},
		{"no endgame flush", withOpt(func(o *core.Options) { o.NoFlush = true })},
		{"no duration cap", withOpt(func(o *core.Options) { o.NoAdaptiveSizing = true })},
		{"no Semi-SP", withOpt(func(o *core.Options) { o.DisableSemiSP = true })},
		{"quota-guarded determiner", withOpt(func(o *core.Options) { o.QuotaGuard = true })},
	}

	var fullAvg sim.Time
	for _, v := range variants {
		// Alternation showcase.
		pat := trace.Closed(solo, 0)
		res, err := Run(RunConfig{
			Scheduler: core.New(v.opts),
			Clients: []ClientSpec{
				{App: "resnet50", Quota: 0.5, Pattern: pat},
				{App: "resnet50", Quota: 0.5, Pattern: pat},
			},
			Horizon: horizon,
			GPU:     cfg,
		})
		if err != nil {
			return nil, fmt.Errorf("design %s: %w", v.name, err)
		}
		if v.name == "full BLESS" {
			fullAvg = res.AvgLatency
		}

		// Quota-guard stress.
		biased, err := Run(RunConfig{
			Scheduler: core.New(v.opts),
			Clients: []ClientSpec{
				{App: "resnet50", Quota: 8.0 / 9, Pattern: trace.Closed(3*solo, 0)},
				{App: "bert", Quota: 1.0 / 9, Pattern: trace.Closed(0, 0)},
			},
			Horizon: horizon,
			GPU:     cfg,
		})
		if err != nil {
			return nil, fmt.Errorf("design %s (biased): %w", v.name, err)
		}
		app1 := biased.PerClient[0]

		t.Rows = append(t.Rows, []string{
			v.name,
			ms(res.AvgLatency),
			pct(float64(res.AvgLatency)/float64(fullAvg) - 1),
			pct(float64(app1.Summary.Mean)/float64(app1.ISO) - 1),
		})
	}
	return t, nil
}

func withOpt(mutate func(*core.Options)) core.Options {
	o := core.DefaultOptions()
	mutate(&o)
	return o
}
