package harness

import "testing"

// benchCorpusBatch measures one executor pass over the fixed six-case digest
// corpus (one workload per scheduler). The serial and parallel variants run
// the identical batch, so their ns/op ratio is the executor's wall-clock win;
// digests are identical by construction (see TestDigestCorpusParallel).
func benchCorpusBatch(b *testing.B, workers int) {
	b.Helper()
	cases := digestCorpus(6)
	mks := make([]func() (RunConfig, error), len(cases))
	for i := range cases {
		mks[i] = cases[i].mk
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunParallel(workers, mks); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentBatchSerial pins the one-worker cost of the batch.
func BenchmarkExperimentBatchSerial(b *testing.B) { benchCorpusBatch(b, 1) }

// BenchmarkExperimentBatchParallel runs the same batch at GOMAXPROCS workers;
// on an N-core machine ns/op should approach the serial time divided by
// min(N, 6).
func BenchmarkExperimentBatchParallel(b *testing.B) { benchCorpusBatch(b, 0) }
