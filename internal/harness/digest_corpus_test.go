package harness

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"bless/internal/chaos"
	"bless/internal/invariant"
	"bless/internal/sim"
	"bless/internal/trace"
)

// corpusCase is one deterministic workload of the digest corpus: mk builds a
// fresh RunConfig (schedulers are stateful, so every execution needs its own).
type corpusCase struct {
	name string
	mk   func() (RunConfig, error)
}

// digestCorpus generates the fixed workload corpus the determinism acceptance
// criteria are checked over: every scheduler, mixed arrival patterns, and a
// sprinkling of fault/churn plans. Generation is pure in the seed — the same
// corpus index always yields the same workload, so digests recorded before an
// optimization can be compared bit-for-bit after it.
func digestCorpus(n int) []corpusCase {
	systems := []string{"BLESS", "STATIC", "GSLICE", "UNBOUND", "TEMPORAL", "REEF+"}
	models := []string{"vgg11", "resnet50", "resnet101", "bert"}
	horizon := 120 * sim.Millisecond

	out := make([]corpusCase, 0, n)
	for seed := 0; seed < n; seed++ {
		rng := rand.New(rand.NewSource(int64(9000 + seed)))
		sys := systems[seed%len(systems)]
		nc := 2 + rng.Intn(2)
		specs := make([]ClientSpec, nc)
		rem := 1.0
		for i := range specs {
			q := rem / float64(nc-i)
			if i < nc-1 {
				q *= 0.7 + 0.6*rng.Float64()
			}
			rem -= q
			var pat trace.Pattern
			switch rng.Intn(3) {
			case 0:
				pat = trace.Closed(sim.Time(1+rng.Intn(8))*sim.Millisecond, 0)
			case 1:
				pat = trace.Poisson(10+15*rng.Float64(), horizon, int64(seed*10+i))
			default:
				pat = trace.Burst(1+rng.Intn(3), sim.Time(rng.Intn(10))*sim.Millisecond)
			}
			specs[i] = ClientSpec{App: models[rng.Intn(len(models))], Quota: q, Pattern: pat}
		}

		var fp *FaultPlan
		dynamicCapable := sys == "BLESS" || sys == "STATIC" || sys == "UNBOUND" || sys == "TEMPORAL"
		if seed%3 == 2 && dynamicCapable {
			fp = &FaultPlan{Plan: chaos.Plan{Seed: int64(500 + seed)}}
			if sys == "BLESS" {
				fp.Plan.KernelFaultRate = 0.01 * rng.Float64()
			}
			victim := rng.Intn(nc)
			churnAt := horizon/4 + sim.Time(rng.Int63n(int64(horizon/2)))
			if rng.Intn(2) == 0 {
				fp.Plan.Crashes = []chaos.ClientEvent{{Client: victim, At: churnAt}}
			} else {
				fp.Plan.Leaves = []chaos.ClientEvent{{Client: victim, At: churnAt}}
			}
		}

		out = append(out, corpusCase{
			name: fmt.Sprintf("seed%02d-%s", seed, sys),
			mk: func() (RunConfig, error) {
				sched, err := NewSystem(sys)
				if err != nil {
					return RunConfig{}, err
				}
				return RunConfig{
					Scheduler:  sched,
					Clients:    specs,
					Horizon:    horizon,
					Faults:     fp,
					Invariants: &invariant.Options{},
				}, nil
			},
		})
	}
	return out
}

// corpusSize is the corpus cardinality: INVARIANT_SEEDS scales it (the CI
// long job raises it), -short halves the default.
func corpusSize(t *testing.T) int {
	n := metamorphicSeeds(t)
	if n < 6 {
		n = 6 // at least one workload per scheduler
	}
	return n
}

// runCorpusCase executes one corpus workload and returns its digest.
func runCorpusCase(c corpusCase) (uint64, error) {
	cfg, err := c.mk()
	if err != nil {
		return 0, err
	}
	res, err := Run(cfg)
	if err != nil {
		return 0, err
	}
	return res.Invariants.Digest, nil
}

// TestDigestCorpusSerial runs the corpus serially and, when DIGEST_DUMP names
// a file, records "name digest" lines — the capture side of the pre- vs.
// post-optimization bit-identity check (diff two dumps taken at different
// commits of the simulator).
func TestDigestCorpusSerial(t *testing.T) {
	cases := digestCorpus(corpusSize(t))
	var dump strings.Builder
	for _, c := range cases {
		d, err := runCorpusCase(c)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		fmt.Fprintf(&dump, "%s %016x\n", c.name, d)
	}
	if path := os.Getenv("DIGEST_DUMP"); path != "" {
		if err := os.WriteFile(path, []byte(dump.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("digest corpus written to %s", path)
	}
}

// TestDigestCorpusParallel runs the same corpus through the parallel executor
// at several worker counts and requires every digest to match its serial run
// bit-for-bit — the executor's core guarantee: worker count changes wall
// clock, never output.
func TestDigestCorpusParallel(t *testing.T) {
	cases := digestCorpus(corpusSize(t))
	serial := make([]uint64, len(cases))
	for i, c := range cases {
		d, err := runCorpusCase(c)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		serial[i] = d
	}
	for _, workers := range []int{2, 4} {
		mks := make([]func() (RunConfig, error), len(cases))
		for i := range cases {
			mks[i] = cases[i].mk
		}
		results, err := RunParallel(workers, mks)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, res := range results {
			if got := res.Invariants.Digest; got != serial[i] {
				t.Errorf("workers=%d: %s: parallel digest %016x != serial %016x",
					workers, cases[i].name, got, serial[i])
			}
		}
	}
}
