package harness

import (
	"fmt"

	"bless/internal/sim"
	"bless/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "Fig 13: average latency of two symmetric applications with even quotas, workloads A/B/C, all systems (+ training)",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Fig 14: average latency deviation of 9 pair-wise applications across 7 uneven quota assignments",
		Run:   runFig14,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Fig 12: latency charts of pair-wise applications across quota assignments (4 cases)",
		Run:   runFig12,
	})
}

// runFig13 measures the headline comparison: for each of the five inference
// models deployed as a symmetric pair with 50/50 quotas, the per-system
// average latency under workloads A (high), B (medium) and C (low); plus the
// training comparison on an evenly shared pair.
func runFig13(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Average latency, symmetric pairs, even quotas",
		Columns: []string{"workload", "system", "avg latency (ms)", "vs BLESS", "utilization"},
		Notes: []string{
			"paper: BLESS reduces inference latency by 37.3% (TEMPORAL), 34.2% (MIG), 21.1% (GSLICE), 16.5% (UNBOUND), 13.5% (REEF+) on average",
			"paper training: BLESS -26.5% vs TEMPORAL, -7.5% vs MIG, -12.5% vs UNBOUND, -9.9% vs ZICO",
		},
	}
	cfg := sim.DefaultConfig()
	horizon := 2 * sim.Second
	models := InferenceModels
	if opt.Quick {
		horizon = 300 * sim.Millisecond
		models = models[:2]
	}

	// The (workload x model x system) grid plus the training comparison is a
	// set of fully independent runs: fan them out across the worker pool and
	// fold the results in input order, which reproduces the serial artifact
	// exactly.
	workloads := []string{"A", "B", "C"}
	type fig13Job struct {
		workload, model, sys string
		training             bool
	}
	var jobs []fig13Job
	for _, w := range workloads {
		for _, m := range models {
			for _, sys := range InferenceSystems {
				jobs = append(jobs, fig13Job{workload: w, model: m, sys: sys})
			}
		}
	}
	// Training: two models evenly sharing, closed-loop back-to-back
	// iterations (training runs continuously).
	trainPair := [2]string{"vgg11-train", "resnet50-train"}
	for _, sys := range TrainingSystems {
		jobs = append(jobs, fig13Job{workload: "train", sys: sys, training: true})
	}
	runs, err := ForEachParallel(opt.Parallel, jobs, func(_ int, j fig13Job) (*Result, error) {
		if j.training {
			pats := [2]trace.Pattern{trace.Closed(0, 0), trace.Closed(0, 0)}
			res, err := runPairSystem(j.sys, trainPair, [2]float64{0.5, 0.5}, pats, horizon, cfg)
			if err != nil {
				return nil, fmt.Errorf("fig13 training/%s: %w", j.sys, err)
			}
			return res, nil
		}
		pat, err := closedLoadPattern(j.model, j.workload, cfg)
		if err != nil {
			return nil, err
		}
		res, err := runPairSystem(j.sys, [2]string{j.model, j.model}, [2]float64{0.5, 0.5},
			[2]trace.Pattern{pat, pat}, horizon, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig13 %s/%s/%s: %w", j.workload, j.model, j.sys, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}

	idx := 0
	for _, w := range workloads {
		avgs := map[string][]sim.Time{}
		utils := map[string][]float64{}
		for range models {
			for _, sys := range InferenceSystems {
				res := runs[idx]
				idx++
				avgs[sys] = append(avgs[sys], res.AvgLatency)
				utils[sys] = append(utils[sys], res.Utilization)
			}
		}
		var bless sim.Time
		if l := avgs["BLESS"]; len(l) > 0 {
			bless = meanT(l)
		}
		for _, sys := range InferenceSystems {
			m := meanT(avgs[sys])
			t.Rows = append(t.Rows, []string{
				w, sys, ms(m),
				pct(float64(m)/float64(bless) - 1),
				fmt.Sprintf("%.2f", meanF(utils[sys])),
			})
		}
	}
	type trainOutcome struct {
		avg  sim.Time
		util float64
	}
	outcomes := map[string]trainOutcome{}
	for _, sys := range TrainingSystems {
		res := runs[idx]
		idx++
		outcomes[sys] = trainOutcome{avg: res.AvgLatency, util: res.Utilization}
	}
	blessTrain := outcomes["BLESS"].avg
	for _, sys := range TrainingSystems {
		o := outcomes[sys]
		t.Rows = append(t.Rows, []string{
			"train", sys, ms(o.avg),
			pct(float64(o.avg)/float64(blessTrain) - 1),
			fmt.Sprintf("%.2f", o.util),
		})
	}
	return t, nil
}

// runFig14 sweeps the 9 pair-wise deployments (5 symmetric + 4 asymmetric
// R50+other) over Table 2's seven quota assignments and reports each system's
// average latency deviation. MIG rows cover only the assignments its slicing
// can express.
func runFig14(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig14",
		Title:   "Average latency deviation across uneven quota assignments",
		Columns: []string{"system", "avg deviation (ms)", "quota configs supported"},
		Notes: []string{
			"paper: TEMPORAL 14.3ms, GSLICE 2.1ms, BLESS 0.6ms average deviation; MIG cannot express the diverse quotas",
			"deviation = sum_j max(mean_latency_j - ISO_j, 0), averaged over pairs x quota configs",
		},
	}
	cfg := sim.DefaultConfig()
	horizon := sim.Second
	pairs := ninePairs()
	quotaSet := PairQuotas
	if opt.Quick {
		horizon = 250 * sim.Millisecond
		pairs = pairs[:2]
		quotaSet = [][2]float64{{1.0 / 3, 2.0 / 3}, {0.5, 0.5}}
	}

	// The (system x pair x quota) sweep fans out in parallel. A run may be
	// unsupported (e.g. MIG with an inexpressible quota) without failing the
	// sweep, so the per-cell outcome carries its own error and the fold —
	// in input order — skips those cells exactly as the serial loop did.
	systems := []string{"TEMPORAL", "MIG", "GSLICE", "UNBOUND", "REEF+", "BLESS"}
	type fig14Job struct {
		sys  string
		pair [2]string
		q    [2]float64
	}
	var jobs []fig14Job
	for _, sys := range systems {
		for _, pair := range pairs {
			for _, q := range quotaSet {
				jobs = append(jobs, fig14Job{sys: sys, pair: pair, q: q})
			}
		}
	}
	type fig14Cell struct {
		res *Result
		err error
	}
	cells, err := ForEachParallel(opt.Parallel, jobs, func(_ int, j fig14Job) (fig14Cell, error) {
		p0, err := closedLoadPattern(j.pair[0], "B", cfg)
		if err != nil {
			return fig14Cell{}, err
		}
		p1, err := closedLoadPattern(j.pair[1], "B", cfg)
		if err != nil {
			return fig14Cell{}, err
		}
		res, err := runPairSystem(j.sys, j.pair, j.q, [2]trace.Pattern{p0, p1}, horizon, cfg)
		return fig14Cell{res: res, err: err}, nil
	})
	if err != nil {
		return nil, err
	}

	idx := 0
	for _, sys := range systems {
		var devs []sim.Time
		supported := 0
		total := 0
		for range pairs {
			for range quotaSet {
				cell := cells[idx]
				idx++
				total++
				if cell.err != nil {
					continue // unsupported (e.g. MIG quota)
				}
				supported++
				devs = append(devs, cell.res.Deviation)
			}
		}
		row := []string{sys, "n/a", fmt.Sprintf("%d/%d", supported, total)}
		if len(devs) > 0 {
			row[1] = ms(meanT(devs))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// runFig12 produces the latency-chart data: for four representative pair
// deployments, the (lat1, lat2) coordinates across the seven quota
// assignments, next to the ISO bound.
func runFig12(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig12",
		Title:   "Latency charts: per-quota (app1, app2) average latencies under BLESS vs the ISO bound",
		Columns: []string{"case", "quota split", "lat1 (ms)", "iso1 (ms)", "lat2 (ms)", "iso2 (ms)", "inside ISO region"},
		Notes: []string{
			"paper: under all quota assignments the BLESS latency pair is dominated by the ISO pair (Fig 12)",
			"case a/b: symmetric R50 pair at workloads B and C; case c: homogeneous kernels (R50+R101); case d: heterogeneous kernels (VGG11+BERT)",
		},
	}
	cfg := sim.DefaultConfig()
	horizon := sim.Second
	quotaSet := PairQuotas
	if opt.Quick {
		horizon = 250 * sim.Millisecond
		quotaSet = [][2]float64{{1.0 / 3, 2.0 / 3}, {0.5, 0.5}, {2.0 / 3, 1.0 / 3}}
	}
	cases := []struct {
		name     string
		apps     [2]string
		workload string
	}{
		{"a:R50+R50/B", [2]string{"resnet50", "resnet50"}, "B"},
		{"b:R50+R50/C", [2]string{"resnet50", "resnet50"}, "C"},
		{"c:R50+R101/B", [2]string{"resnet50", "resnet101"}, "B"},
		{"d:VGG+BERT/B", [2]string{"vgg11", "bert"}, "B"},
	}
	type fig12Job struct {
		name     string
		apps     [2]string
		workload string
		q        [2]float64
	}
	var jobs []fig12Job
	for _, c := range cases {
		for _, q := range quotaSet {
			jobs = append(jobs, fig12Job{name: c.name, apps: c.apps, workload: c.workload, q: q})
		}
	}
	runs, err := ForEachParallel(opt.Parallel, jobs, func(_ int, j fig12Job) (*Result, error) {
		p0, err := closedLoadPattern(j.apps[0], j.workload, cfg)
		if err != nil {
			return nil, err
		}
		p1, err := closedLoadPattern(j.apps[1], j.workload, cfg)
		if err != nil {
			return nil, err
		}
		return runPairSystem("BLESS", j.apps, j.q, [2]trace.Pattern{p0, p1}, horizon, cfg)
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		res := runs[i]
		l1, l2 := res.PerClient[0].Summary.Mean, res.PerClient[1].Summary.Mean
		i1, i2 := res.PerClient[0].ISO, res.PerClient[1].ISO
		inside := "yes"
		if l1 > i1 || l2 > i2 {
			inside = "no"
		}
		t.Rows = append(t.Rows, []string{
			j.name,
			fmt.Sprintf("%.2f/%.2f", j.q[0], j.q[1]),
			ms(l1), ms(i1), ms(l2), ms(i2), inside,
		})
	}
	return t, nil
}

// ninePairs returns the paper's 9 pair-wise deployments: the five symmetric
// pairs plus ResNet50 against each of the other four models.
func ninePairs() [][2]string {
	var out [][2]string
	for _, m := range InferenceModels {
		out = append(out, [2]string{m, m})
	}
	for _, m := range InferenceModels {
		if m != "resnet50" {
			out = append(out, [2]string{"resnet50", m})
		}
	}
	return out
}

func meanT(ts []sim.Time) sim.Time {
	if len(ts) == 0 {
		return 0
	}
	var total sim.Time
	for _, t := range ts {
		total += t
	}
	return total / sim.Time(len(ts))
}

func meanF(fs []float64) float64 {
	if len(fs) == 0 {
		return 0
	}
	total := 0.0
	for _, f := range fs {
		total += f
	}
	return total / float64(len(fs))
}
