package harness

import (
	"fmt"

	"bless/internal/model"
	"bless/internal/sim"
	"bless/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Motivation (Fig 1 / Fig 4b): one VGG11 + one ResNet50 request, quotas (1/3, 2/3), under each sharing scheme",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "table1",
		Title: "Table 1: application properties (duration, kernel count, profiling cost)",
		Run:   runTable1,
	})
}

// runFig1 reproduces the motivating example: a single overlapped request pair
// under STATIC, UNBOUND, REEF+ and BLESS. The paper measures average
// latencies of 16.8ms (static), 13.1ms (unbounded), 14.3ms (biased) and
// 11.3ms (BLESS's scheme) on its testbed — absolute values differ on the
// simulator, but the ordering and rough gaps must hold.
func runFig1(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig1",
		Title:   "Single overlapped request pair: VGG11 (1/3) + ResNet50 (2/3)",
		Columns: []string{"scheme", "vgg11 (ms)", "resnet50 (ms)", "avg (ms)", "vs STATIC"},
		Notes: []string{
			"paper (Fig 4b, different absolute scale): STATIC 16.8ms, UNBOUND 13.1ms, REEF+ 14.3ms, BLESS 11.3ms avg",
			"one request per client, simultaneous arrival",
		},
	}
	apps := [2]string{"vgg11", "resnet50"}
	quotas := [2]float64{1.0 / 3, 2.0 / 3}
	patterns := [2]trace.Pattern{trace.Burst(1, 0), trace.Burst(1, 0)}

	var staticAvg sim.Time
	for _, sys := range []string{"STATIC", "UNBOUND", "REEF+", "BLESS"} {
		res, err := runPairSystem(sys, apps, quotas, patterns, 200*sim.Millisecond, sim.Config{})
		if err != nil {
			return nil, err
		}
		avg := (res.PerClient[0].Summary.Mean + res.PerClient[1].Summary.Mean) / 2
		if sys == "STATIC" {
			staticAvg = avg
		}
		t.Rows = append(t.Rows, []string{
			sys,
			ms(res.PerClient[0].Summary.Mean),
			ms(res.PerClient[1].Summary.Mean),
			ms(avg),
			pct(float64(avg)/float64(staticAvg) - 1),
		})
	}
	return t, nil
}

// runTable1 regenerates Table 1 from the model catalog and the offline
// profiler.
func runTable1(opt Options) (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Application properties",
		Columns: []string{"app", "kind", "duration (ms)", "# kernels", "profile cost (s)"},
		Notes: []string{
			"paper: VGG 10.2/31/0.56s, R50 8.7/80/0.38s, R101 17.2/148/0.77s, NAS 32.7/458/1.61s, BERT 12.8/382/0.50s (inference)",
			"training: VGG 11.2/80, R50 25.2/306, R101 40.1/598, NAS 157.8/2824, BERT 186.1/5035",
		},
	}
	cfg := sim.DefaultConfig()
	names := append(append([]string{}, InferenceModels...), TrainingModels...)
	for _, name := range names {
		app, err := model.Get(name)
		if err != nil {
			return nil, err
		}
		prof, err := ProfileFor(name, cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			name,
			app.Kind.String(),
			ms(prof.Iso[prof.Partitions-1]),
			fmt.Sprintf("%d", app.NumKernels()),
			fmt.Sprintf("%.2f", float64(prof.Cost)/float64(sim.Second)),
		})
	}
	return t, nil
}
