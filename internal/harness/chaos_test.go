package harness

// Chaos suite: end-to-end fault injection, client churn and graceful
// degradation against the BLESS runtime and the dynamic baselines, verified
// by the invariant checker (universal classes plus Delivery) and by digest
// equality across same-seed runs.

import (
	"testing"

	"bless/internal/chaos"
	"bless/internal/invariant"
	"bless/internal/sim"
	"bless/internal/trace"
)

// chaosEnforce is the enforcement set for chaos runs: everything a fault or
// churn bug would break deterministically.
func chaosEnforce() *invariant.Options {
	return &invariant.Options{
		Enforce:         []invariant.Class{invariant.Conservation, invariant.Order, invariant.Delivery},
		FailOnViolation: true,
	}
}

// TestChaosAcceptance is the issue's acceptance scenario: a seeded fault plan
// with a client crash at a fixed timestamp, a 1% kernel fault rate, a
// transient stall, and a mid-run join. The run must pass the universal
// invariants plus Delivery, the surviving client must re-attain its
// (re-provisioned) quota outside the settle windows, and two runs of the
// same seed must produce identical digests.
func TestChaosAcceptance(t *testing.T) {
	mk := func() (RunConfig, error) {
		sched, err := NewSystem("BLESS")
		if err != nil {
			return RunConfig{}, err
		}
		return RunConfig{
			Scheduler: sched,
			Clients: []ClientSpec{
				{App: "resnet50", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 0)},
				{App: "vgg11", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 0)},
			},
			Horizon:    200 * sim.Millisecond,
			Invariants: chaosEnforce(),
			Faults: &FaultPlan{
				Plan: chaos.Plan{
					Seed:            1,
					KernelFaultRate: 0.01,
					Stalls:          []chaos.Stall{{At: 40 * sim.Millisecond, Dur: 200 * sim.Microsecond}},
					Crashes:         []chaos.ClientEvent{{Client: 1, At: 80 * sim.Millisecond}},
				},
				Joins: []Join{{
					At:   120 * sim.Millisecond,
					Spec: ClientSpec{App: "resnet101", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 0)},
				}},
			},
		}, nil
	}

	cfg, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos == nil {
		t.Fatal("fault plan ran but Result.Chaos is nil")
	}
	if res.Chaos.Crashes != 1 || res.Chaos.Joins != 1 {
		t.Fatalf("churn delivered: crashes=%d joins=%d, want 1 and 1", res.Chaos.Crashes, res.Chaos.Joins)
	}
	if res.Chaos.Injector.KernelFaults == 0 {
		t.Error("1% fault rate over a 200ms closed loop injected no kernel faults")
	}
	if res.Chaos.Runtime.Retries == 0 {
		t.Error("runtime recorded no retries despite injected faults")
	}
	rep := res.Invariants
	if rep == nil {
		t.Fatal("no invariant report")
	}
	if rep.Faults != rep.Retries+res.Chaos.Runtime.RetryAborts {
		t.Errorf("fault conservation: %d faults vs %d retries + %d aborts",
			rep.Faults, rep.Retries, res.Chaos.Runtime.RetryAborts)
	}
	// The survivor's quota is re-provisioned upward after the crash (0.5 →
	// ~0.5/0.5 of the live sum, then squeezed by the joiner); outside the
	// settle windows it must attain that share.
	if cr := rep.Clients[0]; !cr.Active || cr.Violated {
		t.Errorf("surviving client did not re-attain its quota: active=%v violated=%v share=%.2f",
			cr.Active, cr.Violated, cr.Share)
	}
	if cr := rep.Clients[1]; cr.Active {
		t.Error("crashed client still marked active")
	}
	if jr := res.PerClient[2]; jr.Completed == 0 {
		t.Error("joined client completed no requests")
	}
	// The crashed client's already-submitted work must not inflate the
	// survivor's accounting; its own lost requests are exempt (inactive).
	if cr := res.PerClient[0]; cr.Submitted != cr.Completed+cr.Failed {
		t.Errorf("survivor submitted %d but finished %d+%d", cr.Submitted, cr.Completed, cr.Failed)
	}

	// Same seed, same digest — chaos does not break replay.
	if _, err := VerifyDeterminism(mk); err != nil {
		t.Fatal(err)
	}
}

// TestChaosMetamorphicMaskedFault is the metamorphic check: a single forced
// kernel fault whose retry succeeds (fully masked) must reproduce the
// fault-free run's completion order and failure counts exactly — only
// latencies may shift.
func TestChaosMetamorphicMaskedFault(t *testing.T) {
	base := func(fp *FaultPlan) *Result {
		t.Helper()
		sched, err := NewSystem("BLESS")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(RunConfig{
			Scheduler: sched,
			Clients: []ClientSpec{
				{App: "resnet50", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 8)},
				{App: "vgg11", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 8)},
			},
			Horizon:    300 * sim.Millisecond,
			Invariants: chaosEnforce(),
			Faults:     fp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	clean := base(nil)
	masked := base(&FaultPlan{Plan: chaos.Plan{
		Forced: []chaos.ForcedFault{{Client: 0, Seq: 2, Kernel: 1, Times: 1}},
	}})

	if got := masked.Chaos.Runtime.Retries; got != 1 {
		t.Fatalf("masked run retried %d times, want exactly 1", got)
	}
	if masked.Chaos.Runtime.RetryAborts != 0 {
		t.Fatal("masked fault must not abort")
	}
	for i, cr := range masked.PerClient {
		if cr.Failed != 0 {
			t.Fatalf("client %d failed %d requests under a masked fault", i, cr.Failed)
		}
	}
	if a, b := CompletionDigest(clean), CompletionDigest(masked); a != b {
		t.Fatalf("masked fault changed the completion digest: %016x vs %016x", a, b)
	}
}

// TestChaosZeroRateInjectorIsTransparent: attaching an injector with an inert
// plan must not move the invariant digest — the fault hooks sit outside the
// fault-free hot path.
func TestChaosZeroRateInjectorIsTransparent(t *testing.T) {
	digest := func(fp *FaultPlan) uint64 {
		t.Helper()
		sched, err := NewSystem("BLESS")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(RunConfig{
			Scheduler: sched,
			Clients: []ClientSpec{
				{App: "resnet50", Quota: 0.5, Pattern: trace.Closed(3*sim.Millisecond, 0)},
				{App: "vgg11", Quota: 0.5, Pattern: trace.Closed(3*sim.Millisecond, 0)},
			},
			Horizon:    60 * sim.Millisecond,
			Invariants: chaosEnforce(),
			Faults:     fp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Invariants.Digest
	}
	without := digest(nil)
	with := digest(&FaultPlan{ForceInjector: true})
	if without != with {
		t.Fatalf("zero-rate injector moved the digest: %016x vs %016x", without, with)
	}
}

// TestChaosRetryExhaustionAborts: a kernel forced to fault past the retry
// budget must fail its request — counted, Delivery-balanced, and without
// wedging the squad cycle (later requests still complete).
func TestChaosRetryExhaustionAborts(t *testing.T) {
	sched, err := NewSystem("BLESS")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Scheduler: sched,
		Clients: []ClientSpec{
			{App: "resnet50", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 6)},
			{App: "vgg11", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 6)},
		},
		Horizon:    300 * sim.Millisecond,
		Invariants: chaosEnforce(),
		Faults: &FaultPlan{Plan: chaos.Plan{
			Forced: []chaos.ForcedFault{{Client: 0, Seq: 1, Kernel: 0, Times: 64}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos.Runtime.RetryAborts != 1 {
		t.Fatalf("retry aborts = %d, want 1", res.Chaos.Runtime.RetryAborts)
	}
	cr := res.PerClient[0]
	if cr.Failed != 1 {
		t.Fatalf("client 0 failed %d requests, want 1", cr.Failed)
	}
	if cr.Completed != 5 || cr.Submitted != 6 {
		t.Fatalf("client 0 submitted=%d completed=%d, want 6 and 5 (one aborted)", cr.Submitted, cr.Completed)
	}
	if other := res.PerClient[1]; other.Completed != 6 || other.Failed != 0 {
		t.Fatalf("client 1 completed=%d failed=%d, want 6 and 0", other.Completed, other.Failed)
	}
}

// TestChaosDeadlineAborts: a sub-service-time deadline must fail requests at
// squad boundaries while keeping Delivery exact.
func TestChaosDeadlineAborts(t *testing.T) {
	sched, err := NewSystem("BLESS")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Scheduler: sched,
		Clients: []ClientSpec{
			{App: "resnet50", Quota: 0.5, Pattern: trace.Closed(sim.Millisecond, 10)},
			{App: "vgg11", Quota: 0.5, Pattern: trace.Closed(sim.Millisecond, 10)},
		},
		Horizon:    400 * sim.Millisecond,
		Invariants: chaosEnforce(),
		Faults:     &FaultPlan{Deadline: 10 * sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos.Runtime.DeadlineAborts == 0 {
		t.Fatal("a 10µs deadline aborted nothing")
	}
	for i, cr := range res.PerClient {
		if cr.Submitted != cr.Completed+cr.Failed {
			t.Errorf("client %d: submitted %d != completed %d + failed %d", i, cr.Submitted, cr.Completed, cr.Failed)
		}
	}
}

// TestChaosGracefulLeaveDrains: a graceful leave finishes the backlog before
// releasing resources; nothing is lost.
func TestChaosGracefulLeaveDrains(t *testing.T) {
	sched, err := NewSystem("BLESS")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunConfig{
		Scheduler: sched,
		Clients: []ClientSpec{
			{App: "resnet50", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 0)},
			{App: "vgg11", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 0)},
		},
		Horizon:    150 * sim.Millisecond,
		Invariants: chaosEnforce(),
		Faults: &FaultPlan{Plan: chaos.Plan{
			Leaves: []chaos.ClientEvent{{Client: 1, At: 60 * sim.Millisecond}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chaos.Leaves != 1 {
		t.Fatalf("leaves = %d, want 1", res.Chaos.Leaves)
	}
	// The leaver's accepted requests all complete — graceful means drained.
	if cr := res.PerClient[1]; cr.Completed != cr.Submitted || cr.Failed != 0 {
		t.Fatalf("leaver submitted=%d completed=%d failed=%d; backlog not drained",
			cr.Submitted, cr.Completed, cr.Failed)
	}
	if cr := res.PerClient[0]; cr.Completed == 0 || cr.Submitted != cr.Completed+cr.Failed {
		t.Fatalf("survivor accounting off: %+v", cr)
	}
}

// TestChaosBaselinesChurn: the dynamic baselines survive a crash with the
// universal invariants and Delivery intact, and keep serving the survivor.
func TestChaosBaselinesChurn(t *testing.T) {
	for _, sys := range []string{"STATIC", "UNBOUND", "TEMPORAL"} {
		sys := sys
		t.Run(sys, func(t *testing.T) {
			sched, err := NewSystem(sys)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(RunConfig{
				Scheduler: sched,
				Clients: []ClientSpec{
					{App: "resnet50", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 0)},
					{App: "vgg11", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 0)},
				},
				Horizon:    150 * sim.Millisecond,
				Invariants: chaosEnforce(),
				Faults: &FaultPlan{Plan: chaos.Plan{
					Crashes: []chaos.ClientEvent{{Client: 1, At: 50 * sim.Millisecond}},
				}},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Chaos.Crashes != 1 {
				t.Fatalf("crashes = %d, want 1", res.Chaos.Crashes)
			}
			cr := res.PerClient[0]
			if cr.Completed < 10 {
				t.Errorf("survivor completed only %d requests", cr.Completed)
			}
			if cr.Submitted != cr.Completed+cr.Failed {
				t.Errorf("survivor submitted %d != completed %d + failed %d", cr.Submitted, cr.Completed, cr.Failed)
			}
		})
	}
}

// TestChaosChurnRequiresDynamic: a churn plan against a scheduler without
// sharing.Dynamic is a configuration error, not a silent no-op.
func TestChaosChurnRequiresDynamic(t *testing.T) {
	sched, err := NewSystem("MIG")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(RunConfig{
		Scheduler: sched,
		Clients: []ClientSpec{
			{App: "resnet50", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 0)},
			{App: "vgg11", Quota: 0.5, Pattern: trace.Closed(2*sim.Millisecond, 0)},
		},
		Horizon: 50 * sim.Millisecond,
		Faults: &FaultPlan{Plan: chaos.Plan{
			Crashes: []chaos.ClientEvent{{Client: 1, At: 20 * sim.Millisecond}},
		}},
	})
	if err == nil {
		t.Fatal("churn plan against a non-Dynamic scheduler was accepted")
	}
}
