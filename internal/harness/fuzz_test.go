package harness

import (
	"math/rand"
	"testing"

	"bless/internal/chaos"
	"bless/internal/invariant"
	"bless/internal/sim"
	"bless/internal/trace"
)

// The randomized suites follow one structure so the seeded rng stays
// deterministic while the runs themselves fan out:
//
//  1. Generate every trial's configuration serially from the shared rng —
//     draw order is part of the seed contract, so generation cannot move.
//  2. Execute all runs (including each trial's determinism repeat) through
//     the parallel executor; results come back slotted by input index.
//  3. Assert per trial in input order.
//
// Worker functions must not touch *testing.T — failures surface as errors
// from RunParallel and as assertions in phase 3.

// TestRandomDeploymentsInvariants throws randomized deployments and workloads
// at every scheduler and checks the invariants no configuration may break:
// every submitted request completes exactly once, completions are FIFO per
// client, the universal simulator invariants (SM conservation, event order)
// hold, and a repeated run folds to a bit-identical event digest.
func TestRandomDeploymentsInvariants(t *testing.T) {
	defer EnableInvariants(invariant.Options{FailOnViolation: true})()
	systems := []string{"BLESS", "STATIC", "GSLICE", "UNBOUND", "TEMPORAL", "REEF+"}
	models := []string{"vgg11", "resnet50", "resnet101", "bert"}
	rng := rand.New(rand.NewSource(2024))

	trials := 12
	if testing.Short() {
		trials = 6
	}
	type trialCase struct {
		sys   string
		specs []ClientSpec
	}
	cases := make([]trialCase, trials)
	for trial := range cases {
		// Random deployment: 2-4 clients, random quota split.
		n := 2 + rng.Intn(3)
		cuts := make([]float64, n-1)
		for i := range cuts {
			cuts[i] = 0.1 + 0.8*rng.Float64()
		}
		quotas := make([]float64, n)
		rem := 1.0
		for i := 0; i < n-1; i++ {
			q := rem * (0.2 + 0.6*rng.Float64()) / float64(n-i)
			if q < 0.05 {
				q = 0.05
			}
			quotas[i] = q
			rem -= q
		}
		quotas[n-1] = rem

		specs := make([]ClientSpec, n)
		for i := range specs {
			app := models[rng.Intn(len(models))]
			var pat trace.Pattern
			switch rng.Intn(3) {
			case 0:
				pat = trace.Closed(sim.Time(2+rng.Intn(20))*sim.Millisecond, 0)
			case 1:
				pat = trace.Poisson(10+20*rng.Float64(), 150*sim.Millisecond, int64(trial*10+i))
			default:
				pat = trace.Burst(1+rng.Intn(3), sim.Time(rng.Intn(20))*sim.Millisecond)
			}
			specs[i] = ClientSpec{App: app, Quota: quotas[i], Pattern: pat}
		}
		cases[trial] = trialCase{sys: systems[trial%len(systems)], specs: specs}
	}

	// Each trial runs twice (the determinism repeat); run r of trial i lands
	// at results[2*i+r].
	mks := make([]func() (RunConfig, error), 0, 2*trials)
	for _, c := range cases {
		mk := func() (RunConfig, error) {
			sched, err := NewSystem(c.sys)
			if err != nil {
				return RunConfig{}, err
			}
			return RunConfig{Scheduler: sched, Clients: c.specs, Horizon: 150 * sim.Millisecond}, nil
		}
		mks = append(mks, mk, mk)
	}
	results, err := RunParallel(0, mks)
	if err != nil {
		t.Fatal(err)
	}

	for trial, c := range cases {
		sys := c.sys
		r1, r2 := results[2*trial], results[2*trial+1]
		for i, cr := range r1.PerClient {
			if cr.Completed != cr.Submitted {
				t.Errorf("trial %d (%s) client %d: %d submitted, %d completed",
					trial, sys, i, cr.Submitted, cr.Completed)
			}
			for _, l := range cr.Latencies {
				if l <= 0 {
					t.Errorf("trial %d (%s) client %d: non-positive latency %v", trial, sys, i, l)
				}
			}
		}
		if r1.Utilization < 0 || r1.Utilization > 1.0+1e-9 {
			t.Errorf("trial %d (%s): utilization %g out of range", trial, sys, r1.Utilization)
		}

		// Determinism: aggregate metrics and the full event digest agree.
		if r1.AvgLatency != r2.AvgLatency || r1.Elapsed != r2.Elapsed {
			t.Errorf("trial %d (%s): repeat run diverged (%v/%v vs %v/%v)",
				trial, sys, r1.AvgLatency, r1.Elapsed, r2.AvgLatency, r2.Elapsed)
		}
		if r1.Invariants.Digest != r2.Invariants.Digest {
			t.Errorf("trial %d (%s): event digests diverged: %016x vs %016x",
				trial, sys, r1.Invariants.Digest, r2.Invariants.Digest)
		}
	}
}

// TestRandomChurnFaultInvariants extends the randomized sweep to degraded
// mode: every dynamic-capable scheduler is run under a seeded random fault
// plan (kernel faults, a transient stall) plus random client churn (a crash
// or graceful leave, sometimes a mid-run join), and must keep the delivery
// accounting exact — no request lost or duplicated, every injected fault
// either retried or aborted — while staying deterministic under replay.
func TestRandomChurnFaultInvariants(t *testing.T) {
	systems := []string{"BLESS", "STATIC", "UNBOUND", "TEMPORAL"}
	models := []string{"vgg11", "resnet50", "resnet101"}
	rng := rand.New(rand.NewSource(4025))

	trials := 12
	if testing.Short() {
		trials = 6
	}
	horizon := 150 * sim.Millisecond
	type trialCase struct {
		sys   string
		specs []ClientSpec
		fp    *FaultPlan
	}
	cases := make([]trialCase, trials)
	for trial := range cases {
		n := 2 + rng.Intn(2)
		specs := make([]ClientSpec, n)
		for i := range specs {
			specs[i] = ClientSpec{
				App:     models[rng.Intn(len(models))],
				Quota:   1.0 / float64(n),
				Pattern: trace.Closed(sim.Time(2+rng.Intn(10))*sim.Millisecond, 0),
			}
		}

		sys := systems[trial%len(systems)]
		fp := &FaultPlan{Plan: chaos.Plan{Seed: int64(1000 + trial)}}
		rate := 0.02 * rng.Float64()
		stall := chaos.Stall{
			At:  sim.Time(rng.Int63n(int64(horizon / 2))),
			Dur: sim.Time(rng.Int63n(int64(2 * sim.Millisecond))),
		}
		if sys == "BLESS" {
			// Only the BLESS runtime has a retry path; the baselines take
			// churn but accept no device-fault injector.
			fp.Plan.KernelFaultRate = rate
			fp.Plan.Stalls = []chaos.Stall{stall}
		}
		victim := rng.Intn(n)
		churnAt := horizon/4 + sim.Time(rng.Int63n(int64(horizon/2)))
		if rng.Intn(2) == 0 {
			fp.Plan.Crashes = []chaos.ClientEvent{{Client: victim, At: churnAt}}
		} else {
			fp.Plan.Leaves = []chaos.ClientEvent{{Client: victim, At: churnAt}}
		}
		if rng.Intn(2) == 0 {
			fp.Joins = []Join{{
				At: churnAt + 10*sim.Millisecond,
				Spec: ClientSpec{
					App:     models[rng.Intn(len(models))],
					Quota:   1.0 / float64(n),
					Pattern: trace.Closed(4*sim.Millisecond, 0),
				},
			}}
		}
		cases[trial] = trialCase{sys: sys, specs: specs, fp: fp}
	}

	mks := make([]func() (RunConfig, error), 0, 2*trials)
	for _, c := range cases {
		mk := func() (RunConfig, error) {
			sched, err := NewSystem(c.sys)
			if err != nil {
				return RunConfig{}, err
			}
			return RunConfig{
				Scheduler: sched,
				Clients:   c.specs,
				Horizon:   horizon,
				Faults:    c.fp,
				Invariants: &invariant.Options{
					FailOnViolation: true,
					Enforce: []invariant.Class{
						invariant.Conservation, invariant.Order, invariant.Delivery,
					},
				},
			}, nil
		}
		mks = append(mks, mk, mk)
	}
	results, err := RunParallel(0, mks)
	if err != nil {
		t.Fatal(err)
	}

	for trial, c := range cases {
		sys := c.sys
		r1, r2 := results[2*trial], results[2*trial+1]
		for i, cr := range r1.PerClient {
			if cr.Completed+cr.Failed > cr.Submitted {
				t.Errorf("trial %d (%s) client %d: %d submitted but %d completed + %d failed",
					trial, sys, i, cr.Submitted, cr.Completed, cr.Failed)
			}
		}
		if ch := r1.Chaos; ch == nil {
			t.Fatalf("trial %d (%s): fault plan ran but no chaos report", trial, sys)
		} else if ch.Crashes+ch.Leaves != 1 {
			t.Errorf("trial %d (%s): churn event not delivered: %+v", trial, sys, ch)
		}

		if r1.Invariants.Digest != r2.Invariants.Digest {
			t.Errorf("trial %d (%s): degraded-mode replay diverged: %016x vs %016x",
				trial, sys, r1.Invariants.Digest, r2.Invariants.Digest)
		}
		if CompletionDigest(r1) != CompletionDigest(r2) {
			t.Errorf("trial %d (%s): completion digests diverged under replay", trial, sys)
		}
	}
}

// TestBLESSQuotaPaceUnderPressure verifies the quota machinery end-to-end:
// with one client hammered by a dense peer, its average latency stays within
// the flush-slack envelope of its quota-isolated target across many random
// quota splits.
func TestBLESSQuotaPaceUnderPressure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 6
	if testing.Short() {
		trials = 3
	}
	qs := make([]float64, trials)
	for trial := range qs {
		qs[trial] = 0.3 + 0.5*rng.Float64()
	}

	mks := make([]func() (RunConfig, error), trials)
	for trial, q := range qs {
		mks[trial] = func() (RunConfig, error) {
			sched, err := NewSystem("BLESS")
			if err != nil {
				return RunConfig{}, err
			}
			prof, err := ProfileFor("resnet50", sim.DefaultConfig())
			if err != nil {
				return RunConfig{}, err
			}
			return RunConfig{
				Scheduler: sched,
				Clients: []ClientSpec{
					// Protected client: closed loop at its quota-isolated pace.
					{App: "resnet50", Quota: q, Pattern: trace.Closed(prof.IsoAtQuota(q), 0)},
					// Dense aggressor.
					{App: "bert", Quota: 1 - q, Pattern: trace.Closed(0, 0)},
				},
				Horizon: 500 * sim.Millisecond,
			}, nil
		}
	}
	results, err := RunParallel(0, mks)
	if err != nil {
		t.Fatal(err)
	}

	for trial, q := range qs {
		res := results[trial]
		iso := res.PerClient[0].ISO
		mean := res.PerClient[0].Summary.Mean
		// The flush gate bounds per-request harm at ~1.15x the quota target
		// plus one un-preemptable squad; allow 25% end to end.
		if mean > iso+iso/4 {
			t.Errorf("quota %.2f: mean %v exceeds ISO %v by more than 25%%", q, mean, iso)
		}
	}
}

// TestLoadCQuotaSweepInsideISO guards the headline Fig 12 property: at low
// load, both clients of an R50 pair sit inside the ISO region (each mean
// latency at or below its quota-isolated baseline) across quota splits.
func TestLoadCQuotaSweepInsideISO(t *testing.T) {
	cfg := sim.DefaultConfig()
	prof, err := ProfileFor("resnet50", cfg)
	if err != nil {
		t.Fatal(err)
	}
	solo := prof.Iso[prof.Partitions-1]
	qs := []float64{1.0 / 3, 0.5, 2.0 / 3}

	mks := make([]func() (RunConfig, error), len(qs))
	for i, q := range qs {
		mks[i] = func() (RunConfig, error) {
			sched, err := NewSystem("BLESS")
			if err != nil {
				return RunConfig{}, err
			}
			pat := trace.Closed(solo, 0) // workload C
			return RunConfig{
				Scheduler: sched,
				Clients: []ClientSpec{
					{App: "resnet50", Quota: q, Pattern: pat},
					{App: "resnet50", Quota: 1 - q, Pattern: pat},
				},
				Horizon: 500 * sim.Millisecond,
				GPU:     cfg,
			}, nil
		}
	}
	results, err := RunParallel(0, mks)
	if err != nil {
		t.Fatal(err)
	}

	for i, q := range qs {
		for j, cr := range results[i].PerClient {
			if cr.Summary.Mean > cr.ISO {
				t.Errorf("quota %.2f client %d: mean %v above ISO %v (outside the Fig 12 region)",
					q, j, cr.Summary.Mean, cr.ISO)
			}
		}
	}
}
