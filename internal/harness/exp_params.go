package harness

import (
	"fmt"

	"bless/internal/core"
	"bless/internal/sim"
	"bless/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig18",
		Title: "Fig 18: fine-grained analysis — squad timeline for a 70/30 R50 pair; BLESS on top of coordinated training",
		Run:   runFig18,
	})
	register(Experiment{
		ID:    "fig19a",
		Title: "Fig 19(a): squad-size sweep — average latency and quota flexibility",
		Run:   runFig19a,
	})
	register(Experiment{
		ID:    "fig19b",
		Title: "Fig 19(b): Semi-SP split-ratio sweep",
		Run:   runFig19b,
	})
	register(Experiment{
		ID:    "fig19c",
		Title: "Fig 19(c): SM-count sweep — latency reduction vs GSLICE on smaller GPU instances",
		Run:   runFig19c,
	})
	register(Experiment{
		ID:    "fig20",
		Title: "Fig 20: ablation — without multi-task scheduler / without configuration determiner",
		Run:   runFig20,
	})
	register(Experiment{
		ID:    "overhead",
		Title: "§6.9: scheduling overhead accounting",
		Run:   runOverhead,
	})
}

// runFig18 produces (a) the squad-by-squad timeline of two simultaneous R50
// requests at 70/30 quotas — showing quota-weighted composition and the
// earlier finish of the high-quota request — and (b) the training-iteration
// latency of a coordinated (ZICO-style) pair vs BLESS scheduling the same
// pair.
func runFig18(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig18",
		Title:   "Fine-grained analysis",
		Columns: []string{"part", "event", "detail"},
		Notes: []string{
			"paper (a): the scheduler selects more kernels from the 70%-quota request; it finishes earlier",
			"paper (b): BLESS reduces the coordinated-training iteration latency by 8.5% vs ZICO",
		},
	}

	// (a) Timeline.
	cfg := sim.DefaultConfig()
	opts := core.DefaultOptions()
	var rows [][]string
	opts.TraceSquad = func(at sim.Time, s *core.Squad, c core.ExecConfig) {
		desc := ""
		for _, e := range s.Entries {
			desc += fmt.Sprintf(" q%.0f%%[k%d..k%d]", e.Client.Quota*100, e.Kernels[0], e.Kernels[len(e.Kernels)-1])
		}
		mode := "NSP"
		if c.Spatial {
			mode = fmt.Sprintf("SP %v", c.SMs)
		}
		rows = append(rows, []string{"a:timeline", fmt.Sprintf("t=%v squad n=%d %s", at, s.Size(), mode), desc})
	}
	rt := core.New(opts)
	res, err := Run(RunConfig{
		Scheduler: rt,
		Clients: []ClientSpec{
			{App: "resnet50", Quota: 0.7, Pattern: trace.Burst(1, 0)},
			{App: "resnet50", Quota: 0.3, Pattern: trace.Burst(1, 0)},
		},
		Horizon: 200 * sim.Millisecond,
		GPU:     cfg,
	})
	if err != nil {
		return nil, err
	}
	maxRows := 12
	if len(rows) < maxRows {
		maxRows = len(rows)
	}
	t.Rows = append(t.Rows, rows[:maxRows]...)
	t.Rows = append(t.Rows, []string{"a:timeline",
		fmt.Sprintf("request latencies: 70%%-quota %s, 30%%-quota %s",
			ms(res.PerClient[0].Summary.Mean)+"ms", ms(res.PerClient[1].Summary.Mean)+"ms"),
		"high-quota request finishes earlier"})

	// (b) ZICO vs BLESS on a coordinated training pair.
	pair := [2]string{"vgg11-train", "resnet50-train"}
	pats := [2]trace.Pattern{trace.Closed(0, 8), trace.Closed(0, 8)}
	horizon := sim.Second
	zres, err := runPairSystem("ZICO", pair, [2]float64{0.5, 0.5}, pats, horizon, cfg)
	if err != nil {
		return nil, err
	}
	bres, err := runPairSystem("BLESS", pair, [2]float64{0.5, 0.5}, pats, horizon, cfg)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"b:training", "ZICO avg iteration", ms(zres.AvgLatency) + "ms"},
		[]string{"b:training", "BLESS avg iteration", ms(bres.AvgLatency) + "ms"},
		[]string{"b:training", "reduction", pct(float64(bres.AvgLatency)/float64(zres.AvgLatency) - 1)},
	)
	return t, nil
}

// runFig19a sweeps the squad-size cap over a symmetric pair (latency side)
// and checks the largest quota BLESS can still honour (flexibility side).
func runFig19a(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig19a",
		Title:   "Squad-size sweep",
		Columns: []string{"max kernels/squad", "avg latency (ms)", "max honoured quota"},
		Notes: []string{
			"paper: latency falls from 24.2ms to 20.6ms as the cap grows; cap 20 honours quotas up to 8/9, cap 100 only up to 3/4",
			"sweep runs with adaptive sizing off, measuring the raw cap",
		},
	}
	cfg := sim.DefaultConfig()
	horizon := sim.Second
	caps := []int{10, 20, 50, 100}
	if opt.Quick {
		horizon = 300 * sim.Millisecond
		caps = []int{20, 100}
	}
	quotaLevels := []float64{3.0 / 4, 5.0 / 6, 8.0 / 9}
	for _, cap := range caps {
		// Latency side: symmetric R50 pair, workload B.
		pat, err := closedLoadPattern("resnet50", "B", cfg)
		if err != nil {
			return nil, err
		}
		o := core.DefaultOptions()
		o.MaxSquadKernels = cap
		o.NoAdaptiveSizing = true
		res, err := Run(RunConfig{
			Scheduler: core.New(o),
			Clients: []ClientSpec{
				{App: "resnet50", Quota: 0.5, Pattern: pat},
				{App: "resnet50", Quota: 0.5, Pattern: pat},
			},
			Horizon: horizon,
			GPU:     cfg,
		})
		if err != nil {
			return nil, err
		}

		// Flexibility side: the largest quota for which the high-quota
		// client's average latency stays within 10% of its ISO target when
		// co-located with a dense low-quota peer.
		maxHonoured := "none"
		for _, q := range quotaLevels {
			o2 := core.DefaultOptions()
			o2.MaxSquadKernels = cap
			o2.NoAdaptiveSizing = true
			r2, err := Run(RunConfig{
				Scheduler: core.New(o2),
				Clients: []ClientSpec{
					{App: "resnet50", Quota: q, Pattern: pat},
					{App: "bert", Quota: 1 - q, Pattern: trace.Closed(0, 0)},
				},
				Horizon: horizon,
				GPU:     cfg,
			})
			if err != nil {
				return nil, err
			}
			if r2.PerClient[0].Summary.Mean <= r2.PerClient[0].ISO+r2.PerClient[0].ISO/10 {
				maxHonoured = fmt.Sprintf("%.2f", q)
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", cap), ms(res.AvgLatency), maxHonoured})
	}
	return t, nil
}

// runFig19b sweeps the Semi-SP split ratio, measuring squad durations for a
// representative spatial squad.
func runFig19b(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig19b",
		Title:   "Semi-SP split-ratio sweep (normalized squad duration)",
		Columns: []string{"split c%", "squad duration (ms)", "vs strict SP"},
		Notes: []string{
			"paper: the optimum is around c%=50%; 0% approaches NSP, 100% is strict SP",
		},
	}
	// A pair with high-saturation kernels and imbalanced stacks under the
	// quota split: the strict partition cannot equalize the stacks, and the
	// starved side's kernels CAN use the freed SMs — exactly where removing
	// the rear restriction pays off (Fig 7c).
	c0, err := squadClient(0, "vgg11", 0.5)
	if err != nil {
		return nil, err
	}
	c1, err := squadClient(1, "bert", 0.5)
	if err != nil {
		return nil, err
	}
	s := buildSquad(c0, c1, 1, 12, 1, 30)
	sms := []int{54, 54}
	spDur, err := execSquadSplit(s, sms, 1.0)
	if err != nil {
		return nil, err
	}
	for _, c := range []float64{0.0, 0.25, 0.5, 0.75, 1.0} {
		d, err := execSquadSplit(s, sms, c)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", c*100), ms(d), pct(float64(d)/float64(spDur) - 1),
		})
	}
	return t, nil
}

// execSquadSplit executes a squad with the first split fraction of each
// entry's kernels spatially restricted and the rest redirected to an
// unrestricted context after the head drains.
func execSquadSplit(s *core.Squad, sms []int, split float64) (sim.Time, error) {
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())
	var last sim.Time
	record := func(at sim.Time) {
		if at > last {
			last = at
		}
	}
	ctxSwitch := gpu.Config().ContextSwitch
	for i := range s.Entries {
		e := &s.Entries[i]
		rctx, err := gpu.NewContext(sim.ContextOptions{SMLimit: sms[i], NoMemCharge: true})
		if err != nil {
			return 0, err
		}
		uctx, err := gpu.NewContext(sim.ContextOptions{NoMemCharge: true})
		if err != nil {
			return 0, err
		}
		rq, uq := rctx.NewQueue("head"), uctx.NewQueue("tail")
		n := int(float64(len(e.Kernels))*split + 0.5)
		head, tail := e.Kernels[:n], e.Kernels[n:]
		app := e.Client.App
		if len(head) == 0 {
			for _, tk := range tail {
				uq.Enqueue(0, &app.Kernels[tk], record)
			}
			continue
		}
		remaining := len(head)
		for _, k := range head {
			rq.Enqueue(0, &app.Kernels[k], func(at sim.Time) {
				record(at)
				remaining--
				if remaining == 0 {
					for _, tk := range tail {
						uq.Enqueue(at+ctxSwitch, &app.Kernels[tk], record)
					}
				}
			})
		}
	}
	eng.Run()
	return last, nil
}

// runFig19c sweeps the device SM count (MIG-style GPU instances), comparing
// BLESS's latency reduction over GSLICE for a symmetric R50 pair at low load.
func runFig19c(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig19c",
		Title:   "SM-count sweep: BLESS latency reduction vs GSLICE (2x R50, low load)",
		Columns: []string{"SMs", "GSLICE (ms)", "BLESS (ms)", "reduction"},
		Notes: []string{
			"paper: the reduction shrinks from 54.4% (small instances) to 40.2% (full GPU) — larger GPUs are harder to saturate, so quota restriction costs less",
		},
	}
	smCounts := []int{28, 42, 56, 84, 108}
	if opt.Quick {
		smCounts = []int{42, 108}
	}
	for _, sms := range smCounts {
		cfg := sim.DefaultConfig()
		cfg.SMs = sms
		prof, err := ProfileFor("resnet50", cfg)
		if err != nil {
			return nil, err
		}
		solo := prof.Iso[prof.Partitions-1]
		pat := trace.Closed(solo, 0) // workload C
		var lat [2]sim.Time
		for i, sys := range []string{"GSLICE", "BLESS"} {
			sched, err := NewSystem(sys)
			if err != nil {
				return nil, err
			}
			res, err := Run(RunConfig{
				Scheduler: sched,
				Clients: []ClientSpec{
					{App: "resnet50", Quota: 0.5, Pattern: pat},
					{App: "resnet50", Quota: 0.5, Pattern: pat},
				},
				Horizon: sim.Second,
				GPU:     cfg,
			})
			if err != nil {
				return nil, err
			}
			lat[i] = res.AvgLatency
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", sms), ms(lat[0]), ms(lat[1]),
			fmt.Sprintf("%.1f%%", reduction(lat[0], lat[1])*100),
		})
	}
	return t, nil
}

// runFig20 is the ablation: full BLESS vs BLESS without the multi-task
// scheduler (round-robin selection) vs BLESS without the execution
// configuration determiner (fixed quota splits), on symmetric pairs at
// medium load.
func runFig20(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig20",
		Title:   "Ablation study",
		Columns: []string{"variant/workload", "avg latency (ms)", "vs full BLESS"},
		Notes: []string{
			"paper: w/o multi-task scheduler +16.5%; w/o determiner a further +7.6%",
		},
	}
	cfg := sim.DefaultConfig()
	horizon := sim.Second
	models := InferenceModels
	if opt.Quick {
		horizon = 300 * sim.Millisecond
		models = models[:2]
	}
	variants := []string{"BLESS", "BLESS-noSched", "BLESS-noDet"}
	for _, w := range []string{"B", "C"} {
		avgs := map[string][]sim.Time{}
		for _, m := range models {
			pat, err := closedLoadPattern(m, w, cfg)
			if err != nil {
				return nil, err
			}
			for _, v := range variants {
				sched, err := NewSystem(v)
				if err != nil {
					return nil, err
				}
				res, err := Run(RunConfig{
					Scheduler: sched,
					Clients: []ClientSpec{
						{App: m, Quota: 0.5, Pattern: pat},
						{App: m, Quota: 0.5, Pattern: pat},
					},
					Horizon: horizon,
					GPU:     cfg,
				})
				if err != nil {
					return nil, err
				}
				avgs[v] = append(avgs[v], res.AvgLatency)
			}
		}
		full := meanT(avgs["BLESS"])
		for _, v := range variants {
			m := meanT(avgs[v])
			t.Rows = append(t.Rows, []string{v + "/" + w, ms(m), pct(float64(m)/float64(full) - 1)})
		}
	}
	return t, nil
}

// runOverhead reports the §6.9 overhead accounting: the configured cost
// constants and the measured per-squad scheduler statistics from a real run.
func runOverhead(opt Options) (*Table, error) {
	t := &Table{
		ID:      "overhead",
		Title:   "Scheduling overhead accounting",
		Columns: []string{"source", "value"},
		Notes: []string{
			"paper: squad switch sync 20us, kernel launch 3us, MPS context redirection vacuum 50us, scheduler work 6.7us/kernel, MPS context memory ~230MB",
		},
	}
	cfg := sim.DefaultConfig()
	t.Rows = append(t.Rows,
		[]string{"squad-boundary sync", cfg.SquadSync.String()},
		[]string{"kernel launch", cfg.KernelLaunch.String()},
		[]string{"context redirection vacuum", cfg.ContextSwitch.String()},
		[]string{"scheduler work per kernel", core.DefaultOptions().SchedPerKernel.String()},
		[]string{"MPS context memory", fmt.Sprintf("%d MB", cfg.ContextMemBytes>>20)},
	)

	// Measured from a live instrumented run: squads, kernels/squad,
	// configurations evaluated per squad, and the per-client overhead
	// attribution derived from the decision stream. The attribution is
	// verified against the host's independent time accounting — a failed
	// identity fails the experiment.
	horizon := 500 * sim.Millisecond
	if opt.Quick {
		horizon = 100 * sim.Millisecond
	}
	o, err := ObservedPairRun([2]string{"resnet50", "vgg11"}, [2]float64{0.5, 0.5}, "B", horizon)
	if err != nil {
		return nil, err
	}
	st := o.Stats
	if st.SquadsExecuted > 0 {
		t.Rows = append(t.Rows,
			[]string{"measured squads executed", fmt.Sprintf("%d", st.SquadsExecuted)},
			[]string{"measured kernels per squad", fmt.Sprintf("%.1f", float64(st.KernelsScheduled)/float64(st.SquadsExecuted))},
			[]string{"measured configs evaluated per squad", fmt.Sprintf("%.1f", float64(st.ConfigsEvaluated)/float64(st.SquadsExecuted))},
			[]string{"measured spatial-squad share", fmt.Sprintf("%.0f%%", float64(st.SpatialSquads)/float64(st.SquadsExecuted)*100)},
		)
	}
	for _, co := range o.Overheads {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s overhead (launch+switch+sync+sched)", co.Client),
			fmt.Sprintf("%s = %s + %s + %s + %s",
				co.Total(), co.LaunchTime, co.SwitchTime, co.SyncTime, co.SchedTime),
		})
	}
	t.Rows = append(t.Rows,
		[]string{"host measured launch time", o.Host.LaunchTime.String()},
		[]string{"host measured sync time", o.Host.SyncTime.String()},
		[]string{"host sched overspend (not overlapped)", o.Host.SpendTime.String()},
	)
	if err := VerifyOverheadAttribution(st, o.Overheads, o.Host, cfg, core.DefaultOptions().SchedPerKernel); err != nil {
		return nil, fmt.Errorf("overhead attribution check failed: %w", err)
	}
	t.Notes = append(t.Notes, "attribution verified: launch/sync columns match the host's independent accounting exactly; sched/switch columns equal decision counts x unit costs")
	return t, nil
}
