package harness

// Chaos experiments: a RunConfig may carry a FaultPlan that injects seeded
// device faults (via internal/chaos) and schedules client churn — crashes,
// graceful leaves, and mid-run joins — against schedulers implementing
// sharing.Dynamic. The harness wires the injector into the device tracer
// fan-out and the scheduler's fault hooks, keeps the invariant checker's
// churn/delivery accounting in sync, and reports the degraded-mode activity
// in Result.Chaos. Everything is driven by the simulation clock, so a chaos
// run replays bit-identically from its plan.

import (
	"fmt"

	"bless/internal/chaos"
	"bless/internal/core"
	"bless/internal/obs"
	"bless/internal/sharing"
	"bless/internal/sim"
)

// Join schedules one mid-run client admission.
type Join struct {
	// At is the admission instant.
	At sim.Time
	// Spec declares the joining client. Open-loop arrival offsets in
	// Spec.Pattern are relative to the join instant; a closed loop seeds its
	// first request at the join instant.
	Spec ClientSpec
}

// FaultPlan configures fault injection and client churn for one run.
type FaultPlan struct {
	// Plan is the seeded device-fault plan (kernel faults, context faults,
	// transient stalls). Its Crashes and Leaves entries schedule client
	// departures by slot index.
	Plan chaos.Plan
	// Joins schedules mid-run admissions, in time order. Joined clients take
	// the next dense slot indices after the initial deployment.
	Joins []Join
	// Deadline, when nonzero, sets the scheduler's per-request deadline
	// (schedulers without deadline support ignore it).
	Deadline sim.Time
	// SettleWindow overrides the invariant checker's churn settle window.
	SettleWindow sim.Time
	// ForceInjector attaches the fault injector even when the plan injects
	// nothing (all rates zero). A zero-rate injector must leave the run's
	// digest unchanged; the benchmark gate and metamorphic tests rely on it.
	ForceInjector bool
}

// churns reports whether the plan schedules any client churn.
func (fp *FaultPlan) churns() bool {
	return len(fp.Plan.Crashes) > 0 || len(fp.Plan.Leaves) > 0 || len(fp.Joins) > 0
}

// ChaosReport summarizes a chaos run's degraded-mode activity.
type ChaosReport struct {
	// Injector counts the device-side injections (zero value when the plan
	// attached no injector).
	Injector chaos.Stats
	// Runtime counts the scheduler's degraded-mode handling, when the
	// scheduler exposes core.FaultStats.
	Runtime core.FaultStats
	// Crashes, Leaves and Joins count the churn events the harness delivered.
	Crashes, Leaves, Joins int
}

// faultStater is implemented by schedulers exposing degraded-mode counters.
type faultStater interface{ FaultStats() core.FaultStats }

// injectable is implemented by schedulers accepting a fault injector.
type injectable interface{ SetFaultInjector(core.FaultInjector) }

// deadliner is implemented by schedulers with per-request deadlines.
type deadliner interface{ SetRequestDeadline(sim.Time) }

// CompletionDigest folds a run's per-client completion orders and failure
// counts into one word. Unlike the invariant digest it ignores timing, so a
// fully masked fault (every retry succeeded, nothing aborted) must reproduce
// the fault-free digest even though latencies shifted — the metamorphic
// property the chaos suite checks.
func CompletionDigest(res *Result) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime
			v >>= 8
		}
	}
	for _, cr := range res.PerClient {
		h = (h ^ uint64(len(cr.App))) * prime
		for i := 0; i < len(cr.App); i++ {
			h = (h ^ uint64(cr.App[i])) * prime
		}
		word(uint64(len(cr.Order)))
		for _, seq := range cr.Order {
			word(uint64(seq))
		}
		word(uint64(cr.Failed))
	}
	return h
}

// RecordChaos publishes a chaos report's counters to a metrics registry
// (cmd/blessd surfaces them on /debug/bless).
func RecordChaos(reg *obs.Registry, rep *ChaosReport) {
	if reg == nil || rep == nil {
		return
	}
	reg.Counter("chaos_kernel_faults_total").Add(rep.Injector.KernelFaults)
	reg.Counter("chaos_ctx_faults_total").Add(rep.Injector.CtxFaults)
	reg.Counter("chaos_stall_delays_total").Add(rep.Injector.StallDelays)
	reg.Counter("chaos_retries_total").Add(rep.Runtime.Retries)
	reg.Counter("chaos_retry_aborts_total").Add(rep.Runtime.RetryAborts)
	reg.Counter("chaos_deadline_aborts_total").Add(rep.Runtime.DeadlineAborts)
	reg.Counter("chaos_cancelled_kernels_total").Add(rep.Runtime.CancelledKernels)
	reg.Counter("chaos_client_crashes_total").Add(int64(rep.Crashes))
	reg.Counter("chaos_client_leaves_total").Add(int64(rep.Leaves))
	reg.Counter("chaos_client_joins_total").Add(int64(rep.Joins))
}

// chaosRun is the per-run churn machinery Run delegates to.
type chaosRun struct {
	fp    *FaultPlan
	inj   *chaos.Injector
	alive []bool
	// crashes, leaves and joins count churn events actually delivered (an
	// admission the scheduler rejected, e.g. on memory exhaustion, does not
	// count as a join).
	crashes, leaves, joins int
}

// setupChaos validates the plan against the scheduler, attaches the injector
// and deadline, and returns the churn state. nInitial is the initially
// deployed client count; nTotal includes joiners.
func setupChaos(fp *FaultPlan, sched sharing.Scheduler, gpu *sim.GPU, nInitial, nTotal int) (*chaosRun, error) {
	cr := &chaosRun{fp: fp, alive: make([]bool, nTotal)}
	for i := 0; i < nInitial; i++ {
		cr.alive[i] = true
	}
	if fp == nil {
		return cr, nil
	}
	if fp.churns() {
		if _, ok := sched.(sharing.Dynamic); !ok {
			return nil, fmt.Errorf("harness: fault plan schedules churn but %s does not implement sharing.Dynamic", sched.Name())
		}
		for _, ev := range fp.Plan.Crashes {
			if ev.Client < 0 || ev.Client >= nTotal {
				return nil, fmt.Errorf("harness: fault plan crashes unknown client %d", ev.Client)
			}
		}
		for _, ev := range fp.Plan.Leaves {
			if ev.Client < 0 || ev.Client >= nTotal {
				return nil, fmt.Errorf("harness: fault plan removes unknown client %d", ev.Client)
			}
		}
	}
	if fp.Plan.DeviceFaults() || fp.ForceInjector {
		cr.inj = chaos.NewInjector(fp.Plan)
		gpu.AddTracer(cr.inj)
		if in, ok := sched.(injectable); ok {
			in.SetFaultInjector(cr.inj)
		} else if fp.Plan.KernelFaultRate > 0 || fp.Plan.CtxFaultRate > 0 || len(fp.Plan.Forced) > 0 {
			return nil, fmt.Errorf("harness: fault plan injects faults but %s accepts no injector", sched.Name())
		}
	}
	if fp.Deadline > 0 {
		if d, ok := sched.(deadliner); ok {
			d.SetRequestDeadline(fp.Deadline)
		}
	}
	return cr, nil
}

// report assembles the run's ChaosReport.
func (cr *chaosRun) report(sched sharing.Scheduler) *ChaosReport {
	if cr.fp == nil && cr.inj == nil {
		return nil
	}
	rep := &ChaosReport{}
	if cr.inj != nil {
		rep.Injector = cr.inj.Stats()
	}
	if fs, ok := sched.(faultStater); ok {
		rep.Runtime = fs.FaultStats()
	}
	rep.Crashes, rep.Leaves, rep.Joins = cr.crashes, cr.leaves, cr.joins
	return rep
}
