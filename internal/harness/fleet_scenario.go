package harness

import (
	"fmt"

	"bless/internal/chaos"
	"bless/internal/fleet"
	"bless/internal/sim"
)

// FleetScenarioN builds the canonical fleet scenario: nTenants inference
// tenants over an nDevices heterogeneous pool (cycling three device speed
// classes: full 108-SM A100s, 80-SM and 60-SM cut-downs), quotas sized so
// the pool starts near the autoscaler's high watermark — the run then
// exercises every control-plane path: policy routing at admission, explicit
// same-instant migrations (the permutation-metamorphic handles), sustained
// shortfall rebalancing, and scale-up. blessbench -fleet runs it at
// 200 tenants x 32 devices; -fleet -smoke at 24 x 4.
func FleetScenarioN(seed int64, nTenants, nDevices int, horizon sim.Time) FleetScenario {
	classes := []struct {
		sms int
		mem int64
	}{
		{108, 40 << 30},
		{80, 32 << 30},
		{60, 24 << 30},
	}
	devices := make([]fleet.DeviceSpec, nDevices)
	for i := range devices {
		c := classes[i%len(classes)]
		devices[i] = fleet.DeviceClass(fmt.Sprintf("gpu%d", i), c.sms, c.mem)
	}

	apps := []string{"vgg11", "resnet50", "resnet101", "bert"}
	quotas := []float64{0.13, 0.16, 0.10, 0.18}
	slos := []sim.Time{0, 120 * sim.Millisecond, 200 * sim.Millisecond, 150 * sim.Millisecond}
	tenants := make([]FleetTenant, nTenants)
	for i := range tenants {
		tenants[i] = FleetTenant{
			Name:      fmt.Sprintf("t%03d", i),
			App:       apps[i%len(apps)],
			Quota:     quotas[(i/len(apps))%len(quotas)],
			SLOTarget: slos[i%len(slos)],
			Think:     sim.Time(2+i%3) * sim.Millisecond,
		}
	}

	// Explicit migrations, all triggered at the same instant: the handles
	// the migration-order permutation suite shuffles.
	var migs []FleetMigration
	at := horizon / 3
	for i := 0; i < 4 && i < nTenants; i++ {
		migs = append(migs, FleetMigration{
			At:     at,
			Tenant: tenants[i].Name,
			Target: (i*7 + 1) % nDevices,
		})
	}

	return FleetScenario{
		Seed:    seed,
		Devices: devices,
		Tenants: tenants,
		Horizon: horizon,
		Policy:  fleet.PolicyLeastLoaded,
		Rebalance: &fleet.RebalanceConfig{
			Interval:     horizon / 8,
			Threshold:    0.25,
			SustainTicks: 2,
			MaxMoves:     4,
		},
		Autoscale: &fleet.AutoscaleConfig{
			Template:      fleet.DeviceClass("gpu", 108, 40<<30),
			Min:           nDevices,
			Max:           nDevices + 4,
			HighWatermark: 0.85,
			LowWatermark:  0.20,
		},
		Migrations: migs,
		Invariants: true,
		Repro:      fmt.Sprintf("blessbench -fleet (seed %d, %d tenants, %d devices)", seed, nTenants, nDevices),
	}
}

// WithDeviceCrash returns the scenario with one device crash scheduled —
// the chaos path: mid-run loss of a pool member while its tenants are live
// (and, when at coincides with a migration drain, mid-migration).
func (sc FleetScenario) WithDeviceCrash(device int, at sim.Time) FleetScenario {
	sc.DeviceCrashes = append(append([]chaos.DeviceEvent(nil), sc.DeviceCrashes...), chaos.DeviceEvent{Device: device, At: at})
	return sc
}
