// Package harness runs GPU-sharing experiments: it wires applications,
// offline profiles, workload patterns and a scheduler onto one simulated
// device, collects per-client latency distributions, and implements one
// experiment entry per table and figure of the paper's evaluation (§6). The
// cmd/blessbench binary and the repository-root benchmarks are thin wrappers
// over this package.
package harness

import (
	"fmt"
	"sync"

	"bless/internal/chaos"
	"bless/internal/invariant"
	"bless/internal/metrics"
	"bless/internal/model"
	"bless/internal/obs"
	"bless/internal/profiler"
	"bless/internal/sharing"
	"bless/internal/sim"
	"bless/internal/trace"
)

// ClientSpec declares one deployed application.
type ClientSpec struct {
	// App is the catalog application name (see model.Names).
	App string
	// Quota is the provisioned GPU fraction in (0, 1].
	Quota float64
	// SLOTarget, when non-zero, replaces the ISO latency as the pace target.
	SLOTarget sim.Time
	// Pattern is the client's arrival process.
	Pattern trace.Pattern
}

// RunConfig describes one experiment run.
type RunConfig struct {
	// Scheduler is the system under test.
	Scheduler sharing.Scheduler
	// Clients are the deployed applications with their workloads.
	Clients []ClientSpec
	// Horizon bounds request generation; the run then drains in-flight work.
	Horizon sim.Time
	// GPU overrides the device configuration (zero value = DefaultConfig).
	GPU sim.Config
	// Tracer, if set, observes every kernel execution (timeline capture).
	Tracer sim.Tracer
	// Tracers are additional kernel observers; all attach alongside Tracer
	// (the device fans out to every subscriber).
	Tracers []sim.Tracer
	// Bus, if set, is offered to the scheduler before deployment: schedulers
	// implementing obs.Observable publish their decision events to it.
	Bus *obs.Bus
	// Registry, if set, receives streaming run metrics: per-client request
	// latency histograms (latency/<app>), completion counters and the
	// device utilization gauge. Observations stream during the run instead
	// of being post-processed from stored samples.
	Registry *obs.Registry
	// SLO, if set, tracks per-tenant latency-SLO attainment online: every
	// completion is judged against its client's SLOTarget as it retires.
	SLO *obs.SLOTracker
	// Invariants, if set, attaches an invariant.Checker to the run; the
	// report lands in Result.Invariants and, with FailOnViolation, enforced
	// breaches fail the run. When nil, the process-wide EnableInvariants
	// setting applies.
	Invariants *invariant.Options
	// Faults, if set, runs the experiment under a seeded fault and churn
	// plan (see FaultPlan); the degraded-mode activity lands in Result.Chaos.
	Faults *FaultPlan
}

// ClientResult aggregates one client's outcome.
type ClientResult struct {
	// App is the application name.
	App string
	// Quota is the provisioned fraction.
	Quota float64
	// Latencies are per-request latencies in completion order.
	Latencies []sim.Time
	// Summary distills Latencies.
	Summary metrics.Summary
	// ISO is the isolated-quota latency target T[n%] from the profile.
	ISO sim.Time
	// Submitted and Completed count requests; Failed counts requests the
	// scheduler aborted (retry budget or deadline) — they are excluded from
	// Latencies.
	Submitted, Completed, Failed int
	// Order lists successful completions' request sequence numbers in
	// completion order (see CompletionDigest).
	Order []int
}

// Result is one experiment run's outcome.
type Result struct {
	// System is the scheduler's name.
	System string
	// PerClient holds per-application results, in deployment order.
	PerClient []ClientResult
	// AvgLatency is the mean of per-application mean latencies (§6.2).
	AvgLatency sim.Time
	// Deviation is the average-latency-deviation metric (§6.2).
	Deviation sim.Time
	// Utilization is the device's average SM utilization over the run.
	Utilization float64
	// Elapsed is the virtual time at drain.
	Elapsed sim.Time
	// Invariants is the checker's report when invariant checking was on
	// (RunConfig.Invariants or EnableInvariants), nil otherwise.
	Invariants *invariant.Report
	// Chaos summarizes fault injection and churn when the run carried a
	// FaultPlan, nil otherwise.
	Chaos *ChaosReport
}

// profileCache memoizes offline profiles per (app, device-SMs, partitions);
// profiling is deterministic, so sharing across runs is sound. It makes the
// benchmark harness tractable: Table 2 sweeps profile the same five apps
// hundreds of times otherwise.
var profileCache sync.Map // key string -> *profiler.Profile

// ProfileFor returns the (cached) offline profile of a catalog application on
// the given device.
func ProfileFor(appName string, cfg sim.Config) (*profiler.Profile, error) {
	key := fmt.Sprintf("%s/%d/%d", appName, cfg.SMs, profiler.DefaultPartitions)
	if p, ok := profileCache.Load(key); ok {
		return p.(*profiler.Profile), nil
	}
	app, err := model.Get(appName)
	if err != nil {
		return nil, err
	}
	p, err := profiler.ProfileApp(app, profiler.Options{Config: cfg})
	if err != nil {
		return nil, err
	}
	profileCache.Store(key, p)
	return p, nil
}

// appFor returns a fresh copy of a catalog application.
func appFor(name string) (*model.App, error) {
	return model.Get(name)
}

// Run executes one experiment and returns its result. Deterministic for a
// given configuration.
func Run(cfg RunConfig) (*Result, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("harness: no scheduler")
	}
	if len(cfg.Clients) == 0 {
		return nil, fmt.Errorf("harness: no clients")
	}
	gpuCfg := cfg.GPU
	if gpuCfg.SMs == 0 {
		gpuCfg = sim.DefaultConfig()
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = sim.Second
	}

	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, gpuCfg)
	gpu.AddTracer(cfg.Tracer) // nil-safe
	for _, tr := range cfg.Tracers {
		gpu.AddTracer(tr)
	}
	bus := cfg.Bus
	checker, checkerOpts := newRunChecker(&cfg, gpuCfg, horizon)
	if checker != nil {
		gpu.AddTracer(checker)
		if bus == nil {
			// The checker's digest covers decision events too; give the
			// scheduler a bus even when the caller wanted none.
			bus = obs.NewBus()
		}
		bus.Subscribe(checker)
	}
	if bus != nil {
		if o, ok := cfg.Scheduler.(obs.Observable); ok {
			o.Observe(bus)
		}
	}
	// The full client roster: the initial deployment plus any mid-run
	// joiners, at the next dense slot indices.
	nInitial := len(cfg.Clients)
	specs := append([]ClientSpec(nil), cfg.Clients...)
	if cfg.Faults != nil {
		for _, j := range cfg.Faults.Joins {
			specs = append(specs, j.Spec)
		}
	}
	clients := make([]*sharing.Client, len(specs))
	results := make([]ClientResult, len(specs))
	for i, spec := range specs {
		app, err := model.Get(spec.App)
		if err != nil {
			return nil, fmt.Errorf("harness: %w", err)
		}
		prof, err := ProfileFor(spec.App, gpuCfg)
		if err != nil {
			return nil, fmt.Errorf("harness: profiling %s: %w", spec.App, err)
		}
		clients[i] = &sharing.Client{
			ID:        i,
			App:       app,
			Profile:   prof,
			Quota:     spec.Quota,
			SLOTarget: spec.SLOTarget,
		}
		results[i] = ClientResult{
			App:   spec.App,
			Quota: spec.Quota,
			ISO:   prof.IsoAtQuota(spec.Quota),
		}
	}

	env := &sharing.Env{Eng: eng, GPU: gpu, Clients: clients[:nInitial:nInitial]}
	sched := cfg.Scheduler
	chs, err := setupChaos(cfg.Faults, sched, gpu, nInitial, len(specs))
	if err != nil {
		return nil, err
	}

	// Completion hook: record latency and keep closed loops spinning. Failed
	// (aborted) requests count separately — their latency is not a service
	// latency — but still respin a closed loop.
	seqs := make([]int, len(clients))
	arena := &sharing.RequestArena{}
	submit := func(id int, at sim.Time) {
		submitAt(env, sched, arena, clients[id], &seqs[id], at, &results[id], chs, checker)
	}
	env.OnComplete = func(r *sharing.Request) {
		id := r.Client.ID
		cr := &results[id]
		if checker != nil {
			checker.RequestCompleted(r.Done, id, r.Failed)
		}
		if cfg.SLO != nil {
			cfg.SLO.Observe(r.Client.App.Name, r.Client.SLOTarget, r.Latency(), r.Failed)
		}
		if r.Failed {
			cr.Failed++
			if cfg.Registry != nil {
				cfg.Registry.Counter("requests_failed_total").Inc()
			}
		} else {
			cr.Latencies = append(cr.Latencies, r.Latency())
			cr.Order = append(cr.Order, r.Seq)
			cr.Completed++
			if cfg.Registry != nil {
				cfg.Registry.Histogram("latency/" + r.Client.App.Name).Observe(r.Latency())
				cfg.Registry.Counter("requests_completed_total").Inc()
			}
		}
		p := &specs[id].Pattern
		if p.ClosedLoop() {
			if p.Limit > 0 && seqs[id] >= p.Limit {
				return
			}
			at := r.Done + p.Think
			if at > horizon {
				return
			}
			submit(id, at)
		}
	}

	if err := sched.Deploy(env); err != nil {
		return nil, fmt.Errorf("harness: deploy %s: %w", sched.Name(), err)
	}
	scheduleChurn(cfg.Faults, chs, eng, sched, clients, specs, checker, horizon, submit)

	// Seed arrivals for the initial deployment (joiners seed at their join
	// instant).
	for i := 0; i < nInitial; i++ {
		p := &specs[i].Pattern
		if p.ClosedLoop() {
			submit(i, 0)
			continue
		}
		for _, at := range p.Arrivals {
			if at > horizon {
				break
			}
			submit(i, at)
		}
	}

	// Run to the horizon, then drain in-flight work.
	eng.RunUntil(horizon)
	eng.Run()

	res := &Result{System: sched.Name(), Elapsed: eng.Now(), Utilization: gpu.Utilization()}
	res.Chaos = chs.report(sched)
	if cfg.Registry != nil {
		cfg.Registry.Gauge("sm_utilization").Set(res.Utilization)
		RecordChaos(cfg.Registry, res.Chaos)
	}
	perApp := make([][]sim.Time, len(results))
	sys := make([]sim.Time, len(results))
	iso := make([]sim.Time, len(results))
	for i := range results {
		results[i].Summary = metrics.Summarize(results[i].Latencies)
		perApp[i] = results[i].Latencies
		sys[i] = results[i].Summary.Mean
		iso[i] = results[i].ISO
	}
	res.PerClient = results
	res.AvgLatency = metrics.MeanOfMeans(perApp)
	dev, err := metrics.Deviation(sys, iso)
	if err != nil {
		return nil, err
	}
	res.Deviation = dev
	if checker != nil {
		rep := checker.Report()
		res.Invariants = rep
		if checkerOpts.FailOnViolation && rep.Err() != nil {
			return res, fmt.Errorf("harness: %s: %w", sched.Name(), rep.Err())
		}
	}
	return res, nil
}

// submitAt schedules one request submission. The accounting happens inside
// the scheduled closure, gated on the client still being present: requests of
// crashed or departed clients are dropped, not counted.
func submitAt(env *sharing.Env, s sharing.Scheduler, arena *sharing.RequestArena, c *sharing.Client, seq *int, at sim.Time, cr *ClientResult, chs *chaosRun, checker *invariant.Checker) {
	r := arena.New(c, *seq, at)
	*seq++
	env.Eng.Schedule(at, func() {
		if !chs.alive[c.ID] {
			return
		}
		cr.Submitted++
		if checker != nil {
			checker.RequestSubmitted(at, c.ID)
		}
		s.Submit(r)
	})
}

// scheduleChurn registers the fault plan's churn events with the engine:
// crashes and graceful leaves from the chaos plan, and admissions from the
// join schedule. Each event updates the scheduler, the liveness gates, and
// the invariant checker's churn accounting in one engine instant.
func scheduleChurn(fp *FaultPlan, chs *chaosRun, eng *sim.Engine, sched sharing.Scheduler,
	clients []*sharing.Client, specs []ClientSpec, checker *invariant.Checker,
	horizon sim.Time, submit func(id int, at sim.Time)) {
	if fp == nil || !fp.churns() {
		return
	}
	dyn := sched.(sharing.Dynamic) // validated in setupChaos
	refresh := func(at sim.Time) {
		if checker == nil {
			return
		}
		if qr, ok := sched.(sharing.QuotaReporter); ok {
			for _, cq := range qr.EffectiveQuotas() {
				checker.SetClientQuota(at, cq.ID, cq.Quota)
			}
		}
	}
	remove := func(ev chaos.ClientEvent, crashed bool) {
		eng.Schedule(ev.At, func() {
			if !chs.alive[ev.Client] {
				return
			}
			// Gate liveness first: crash teardown completes cancelled work
			// synchronously, and those completions must not respin the loop.
			chs.alive[ev.Client] = false
			if err := dyn.RemoveClient(ev.Client, crashed); err != nil {
				return
			}
			if crashed {
				chs.crashes++
			} else {
				chs.leaves++
			}
			if checker != nil {
				checker.SetClientActive(ev.At, ev.Client, false)
			}
			refresh(ev.At)
		})
	}
	for _, ev := range fp.Plan.Crashes {
		remove(ev, true)
	}
	for _, ev := range fp.Plan.Leaves {
		remove(ev, false)
	}
	for ji, j := range fp.Joins {
		id := len(specs) - len(fp.Joins) + ji
		at := j.At
		eng.Schedule(at, func() {
			if err := dyn.AddClient(clients[id]); err != nil {
				return // rejected admission (e.g. memory exhaustion)
			}
			chs.alive[id] = true
			chs.joins++
			if checker != nil {
				checker.SetClientActive(at, id, true)
			}
			refresh(at)
			p := &specs[id].Pattern
			if p.ClosedLoop() {
				submit(id, at)
				return
			}
			for _, off := range p.Arrivals {
				t := at + off
				if t > horizon {
					break
				}
				submit(id, t)
			}
		})
	}
}
