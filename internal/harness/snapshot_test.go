package harness

import (
	"testing"

	"bless/internal/chaos"
	"bless/internal/core"
	"bless/internal/sim"
	"bless/internal/snapshot"
)

// Snapshot/restore suite — the wasmd test-sim-import-export /
// test-sim-after-import discipline. The headline guarantee: for any
// seed/scenario/shard count, run-to-T → export → import into a fresh fleet →
// continue produces completion, invariant and checker digests bit-identical
// to the uninterrupted run, including snapshots cut mid-migration,
// mid-fault-retry, and around a device crash.

// snapshotPoints picks the barrier instants the matrix cuts at: early
// (closed loops ramping), the migration trigger instant itself, mid-drain
// (sources draining, exchange records possibly in flight), and late (near
// the horizon under rebalance/autoscale churn).
func snapshotPoints(sc FleetScenario) map[string]sim.Time {
	mig := sc.Migrations[0].At
	return map[string]sim.Time{
		"early":      5 * sim.Millisecond,
		"at-trigger": mig,
		"mid-drain":  mig + 50*sim.Microsecond,
		"late":       sc.Horizon - 7*sim.Millisecond,
	}
}

func mustExport(t *testing.T, sc FleetScenario, at sim.Time) []byte {
	t.Helper()
	data, err := ExportFleet(sc, at)
	if err != nil {
		t.Fatalf("export at %v: %v", at, err)
	}
	return data
}

func mustImport(t *testing.T, data []byte, shards int) *FleetResult {
	t.Helper()
	res, err := ImportFleet(data, shards)
	if err != nil {
		t.Fatalf("import at shards=%d: %v", shards, err)
	}
	return res
}

// TestImportExport proves the export side: a snapshot cut at a barrier is
// decodable, self-consistent, and — because the canonical state excludes
// per-shard internals — bit-identical no matter how many engine shards the
// exporting run used. The mid-drain point must actually catch a migration in
// flight for the matrix to mean anything.
func TestImportExport(t *testing.T) {
	sc := smokeFleetScenario(7)
	for name, at := range snapshotPoints(sc) {
		var ref *snapshot.Snapshot
		for _, shards := range []int{1, 2, 4} {
			run := sc
			run.Shards = shards
			data := mustExport(t, run, at)
			snap, err := snapshot.Decode(data)
			if err != nil {
				t.Fatalf("%s shards=%d: decode: %v", name, shards, err)
			}
			if snap.BarrierAt != at || snap.State.At != at {
				t.Fatalf("%s shards=%d: barrier %v / state %v, want %v", name, shards, snap.BarrierAt, snap.State.At, at)
			}
			if len(snap.State.Tenants) != len(sc.Tenants) {
				t.Fatalf("%s shards=%d: %d tenants in state, want %d", name, shards, len(snap.State.Tenants), len(sc.Tenants))
			}
			if snap.State.Checker == nil {
				t.Fatalf("%s shards=%d: checker state missing", name, shards)
			}
			if ref == nil {
				ref = snap
				continue
			}
			if got, want := snapshot.StateDigest(&snap.State), snapshot.StateDigest(&ref.State); got != want {
				t.Fatalf("%s: state at shards=%d (%016x) differs from shards=1 (%016x) — shard mapping leaked into canonical state",
					name, shards, got, want)
			}
		}
		if name == "mid-drain" {
			draining := 0
			for _, ts := range ref.State.Tenants {
				draining += len(ts.Drains)
			}
			if draining == 0 {
				t.Fatalf("mid-drain snapshot caught no draining residency — the point is mistimed")
			}
		}
	}
}

// TestSimulationAfterImport proves the restore side on the full matrix:
// multi-seed × snapshot point × import shard count, export cut at one count
// and imported at another, always converging to the uninterrupted run's
// completion digest, checker digest and stats, with clean invariants.
func TestSimulationAfterImport(t *testing.T) {
	seeds := []int64{7}
	if !testing.Short() {
		seeds = append(seeds, 11, 23)
	}
	for _, seed := range seeds {
		sc := smokeFleetScenario(seed)
		ref, err := RunFleet(sc)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		if err := ref.Invariants.Err(); err != nil {
			t.Fatalf("seed %d: reference invariants: %v", seed, err)
		}
		for name, at := range snapshotPoints(sc) {
			// Export at 1 shard; in the long matrix also cut at 4 shards —
			// the cross-count import (export@4 → import@2, etc.) is the
			// strongest form of "the mapping is execution strategy".
			exportCounts := []int{1}
			if !testing.Short() && name == "mid-drain" {
				exportCounts = append(exportCounts, 4)
			}
			for _, ec := range exportCounts {
				run := sc
				run.Shards = ec
				data := mustExport(t, run, at)
				for _, shards := range []int{1, 2, 4} {
					got := mustImport(t, data, shards)
					if err := got.Invariants.Err(); err != nil {
						t.Fatalf("seed %d %s export@%d import@%d: invariants: %v", seed, name, ec, shards, err)
					}
					if got.Digest != ref.Digest {
						t.Fatalf("seed %d %s export@%d import@%d: completion digest %016x != uninterrupted %016x",
							seed, name, ec, shards, got.Digest, ref.Digest)
					}
					if got.Invariants.Digest != ref.Invariants.Digest {
						t.Fatalf("seed %d %s export@%d import@%d: checker digest %016x != uninterrupted %016x",
							seed, name, ec, shards, got.Invariants.Digest, ref.Invariants.Digest)
					}
					if got.Stats != ref.Stats {
						t.Fatalf("seed %d %s export@%d import@%d: stats diverge:\n got %+v\nwant %+v",
							seed, name, ec, shards, got.Stats, ref.Stats)
					}
				}
			}
		}
	}
}

// TestSnapshotMidFaultRetry cuts the barrier while kernel-fault retries are
// in flight: the declarative fleet fault plan replays exactly, so a snapshot
// with nonzero retry counters and pending backoff timers must restore and
// converge like any other.
func TestSnapshotMidFaultRetry(t *testing.T) {
	sc := smokeFleetScenario(17)
	sc.Faults = &FleetFaultPlan{Seed: 99, KernelFaultRate: 0.03}
	sc.Repro = "snapshot mid-fault-retry seed 17"
	ref, err := RunFleet(sc)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if err := ref.Invariants.Err(); err != nil {
		t.Fatalf("reference invariants: %v", err)
	}
	at := 30 * sim.Millisecond
	data := mustExport(t, sc, at)
	snap, err := snapshot.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	var faults, retries int64
	for _, d := range snap.State.Devices {
		if d.Runtime != nil {
			faults += d.Runtime.Faults.KernelFaults
			retries += d.Runtime.Faults.Retries
		}
	}
	if faults == 0 || retries == 0 {
		t.Fatalf("barrier at %v caught no fault/retry activity (faults=%d retries=%d) — raise the rate or move the point", at, faults, retries)
	}
	for _, shards := range []int{1, 2, 4} {
		got := mustImport(t, data, shards)
		if err := got.Invariants.Err(); err != nil {
			t.Fatalf("shards=%d: invariants: %v", shards, err)
		}
		if got.Digest != ref.Digest || got.Invariants.Digest != ref.Invariants.Digest {
			t.Fatalf("shards=%d: digests diverge after mid-fault-retry restore", shards)
		}
	}
}

// TestSnapshotCrashRecovery is the crash-recovery story: a device crashes at
// the migration instant (sources draining, exchange records in flight).
// Restoring from the last pre-crash snapshot replays the crash and converges
// to the reference; restoring from a snapshot cut just *after* the crash —
// dead device in the pool, resubmitted requests outstanding — converges too.
func TestSnapshotCrashRecovery(t *testing.T) {
	base := smokeFleetScenario(13)
	sc := base.WithDeviceCrash(1, base.Migrations[0].At)
	sc.Repro = "snapshot crash recovery seed 13"
	ref, err := RunFleet(sc)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if ref.Stats.DeviceCrashes != 1 || ref.Stats.Resubmitted == 0 {
		t.Fatalf("crash scenario mistimed: %+v", ref.Stats)
	}
	points := map[string]sim.Time{
		"pre-crash":  sc.Migrations[0].At - sim.Millisecond,
		"post-crash": sc.Migrations[0].At + 50*sim.Microsecond,
	}
	for name, at := range points {
		data := mustExport(t, sc, at)
		snap, err := snapshot.Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		dead := 0
		for _, d := range snap.State.Devices {
			if d.Dead {
				dead++
			}
		}
		if name == "pre-crash" && dead != 0 {
			t.Fatalf("pre-crash snapshot already has %d dead device(s)", dead)
		}
		if name == "post-crash" && dead != 1 {
			t.Fatalf("post-crash snapshot has %d dead devices, want 1", dead)
		}
		for _, shards := range []int{1, 2, 4} {
			got := mustImport(t, data, shards)
			if err := got.Invariants.Err(); err != nil {
				t.Fatalf("%s shards=%d: invariants: %v", name, shards, err)
			}
			if got.Invariants.Lost != 0 {
				t.Fatalf("%s shards=%d: lost %d requests across restore+crash", name, shards, got.Invariants.Lost)
			}
			if got.Digest != ref.Digest || got.Invariants.Digest != ref.Invariants.Digest {
				t.Fatalf("%s shards=%d: restored run diverges from reference", name, shards)
			}
			if got.Stats != ref.Stats {
				t.Fatalf("%s shards=%d: stats diverge:\n got %+v\nwant %+v", name, shards, got.Stats, ref.Stats)
			}
		}
	}
}

// TestSnapshotQuiescent cuts the barrier past the drain: the snapshot holds
// the final quiescent state and import's continuation is a no-op, still
// reporting the reference digests.
func TestSnapshotQuiescent(t *testing.T) {
	sc := smokeFleetScenario(7)
	ref, err := RunFleet(sc)
	if err != nil {
		t.Fatal(err)
	}
	data := mustExport(t, sc, sc.Horizon+sim.Second)
	got := mustImport(t, data, 2)
	if got.Digest != ref.Digest || got.Invariants.Digest != ref.Invariants.Digest {
		t.Fatal("quiescent snapshot does not restore to the reference digests")
	}
}

// TestVerifyImport covers the one-call proof the CLI and the CI
// snapshot-replay stage use, including its rejection of corrupted input.
func TestVerifyImport(t *testing.T) {
	sc := smokeFleetScenario(7)
	data := mustExport(t, sc, 10*sim.Millisecond)
	v, err := VerifyImport(data, 2)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if v.Snapshot.BarrierAt != 10*sim.Millisecond {
		t.Fatalf("verdict barrier %v, want 10ms", v.Snapshot.BarrierAt)
	}
	if v.Imported.Digest != v.Reference.Digest || v.Imported.Stats != v.Reference.Stats {
		t.Fatal("verdict returned without digest/stat agreement")
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)/3] ^= 0x10
	if _, err := VerifyImport(bad, 2); err == nil {
		t.Fatal("corrupted snapshot verified without error")
	}
}

// BenchmarkSnapshotExport is the export hot path under the bench envelope:
// the smoke fleet scenario driven to the mid-horizon barrier and serialized.
func BenchmarkSnapshotExport(b *testing.B) {
	sc := smokeFleetScenario(7)
	at := sc.Horizon / 2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := ExportFleet(sc, at)
		if err != nil {
			b.Fatal(err)
		}
		if len(data) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// TestSnapshotRejectsUnserializable pins the export-side refusals: function
// and interface-valued scenario fields cannot cross a process boundary.
func TestSnapshotRejectsUnserializable(t *testing.T) {
	sc := smokeFleetScenario(7)
	sc.Runtime.TraceSquad = func(at sim.Time, squad *core.Squad, cfg core.ExecConfig) {}
	if _, err := ExportFleet(sc, sim.Millisecond); err == nil {
		t.Fatal("scenario with TraceSquad exported without error")
	}
	sc = smokeFleetScenario(7)
	sc.Runtime.Injector = chaos.NewInjector(chaos.Plan{Seed: 1, KernelFaultRate: 0.1})
	if _, err := ExportFleet(sc, sim.Millisecond); err == nil {
		t.Fatal("scenario with a raw Injector exported without error")
	}
	if _, err := ExportFleet(smokeFleetScenario(7), -sim.Millisecond); err == nil {
		t.Fatal("negative barrier exported without error")
	}
}
