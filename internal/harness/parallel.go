package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the deterministic parallel experiment executor.
//
// Simulation runs are embarrassingly parallel: each one owns a fresh engine,
// device and scheduler, and the only process-global state on the run path is
// read-mostly and race-safe (the profile cache is a sync.Map, the invariant
// toggle an atomic pointer, the model catalog and experiment registry are
// init-time constant). What parallelism must NOT change is any observable
// output, so the executor enforces one rule: results are slotted by input
// index, never by completion order. A caller that feeds inputs in a
// deterministic order and folds outputs in slice order gets bit-identical
// artifacts — the same tables, the same digests — at any worker count,
// including 1.

// Parallelism resolves a worker-count setting: n when positive, otherwise
// GOMAXPROCS (the blessbench -parallel default).
func Parallelism(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEachParallel applies fn to every input across a pool of `workers`
// goroutines (resolved via Parallelism) and returns the outputs ordered by
// input index. Every input is attempted even after a failure; the returned
// error is the lowest-indexed one, so the error, like the outputs, does not
// depend on goroutine scheduling. fn must confine itself to its own run
// state: it is called concurrently with other indices.
func ForEachParallel[I, O any](workers int, inputs []I, fn func(idx int, in I) (O, error)) ([]O, error) {
	out := make([]O, len(inputs))
	errs := make([]error, len(inputs))
	workers = Parallelism(workers)
	if workers > len(inputs) {
		workers = len(inputs)
	}
	if workers <= 1 {
		for i := range inputs {
			out[i], errs[i] = fn(i, inputs[i])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(inputs) {
						return
					}
					out[i], errs[i] = fn(i, inputs[i])
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("parallel input %d: %w", i, err)
		}
	}
	return out, nil
}

// RunParallel executes independent experiment runs across a worker pool.
// Each element of mks constructs one complete RunConfig — schedulers are
// stateful, so construction happens inside the worker, giving every run a
// private world. Results are ordered by input index.
func RunParallel(workers int, mks []func() (RunConfig, error)) ([]*Result, error) {
	return ForEachParallel(workers, mks, func(_ int, mk func() (RunConfig, error)) (*Result, error) {
		cfg, err := mk()
		if err != nil {
			return nil, err
		}
		return Run(cfg)
	})
}
