package harness

import (
	"fmt"

	"bless/internal/metrics"
	"bless/internal/sim"
	"bless/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "traces",
		Title: "§6.3: real-world trace loads (Twitter-shaped, Azure-shaped), mutual pairs",
		Run:   runTraces,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "Fig 15: 4-model and 8-model co-location (simultaneous arrivals)",
		Run:   runFig15,
	})
	register(Experiment{
		ID:    "fig16",
		Title: "Fig 16: extremely biased workload E (R50 at 8/9 quota + dense 1/9 client)",
		Run:   runFig16,
	})
	register(Experiment{
		ID:    "slo",
		Title: "§6.5: SLO guarantees — QoS violation rates under tight and loose targets",
		Run:   runSLO,
	})
}

// runTraces replays synthetic Twitter- and Azure-shaped loads over mutual
// application pairs and compares BLESS with TEMPORAL, MIG and GSLICE.
func runTraces(opt Options) (*Table, error) {
	t := &Table{
		ID:      "traces",
		Title:   "Real-world trace loads (synthetic equivalents)",
		Columns: []string{"trace", "system", "avg latency (ms)", "vs BLESS", "deviation (ms)"},
		Notes: []string{
			"paper Twitter (50/50 quotas): BLESS -18.4% vs TEMPORAL, -20.5% vs MIG, -7.3% vs GSLICE (dense load, few bubbles)",
			"paper Azure: BLESS -49.3% vs TEMPORAL, -41.2% vs MIG, -32.1% vs GSLICE (low load, abundant bubbles)",
			"traces are synthetic equivalents with the originals' load shape (see DESIGN.md)",
		},
	}
	cfg := sim.DefaultConfig()
	horizon := 2 * sim.Second
	pairs := mutualPairs()
	if opt.Quick {
		horizon = 400 * sim.Millisecond
		pairs = pairs[:2]
	}

	systems := []string{"TEMPORAL", "MIG", "GSLICE", "BLESS"}
	for _, tr := range []string{"twitter", "azure"} {
		avgs := map[string][]sim.Time{}
		devs := map[string][]sim.Time{}
		for pi, pair := range pairs {
			pats := [2]trace.Pattern{}
			for i, app := range pair {
				prof, err := ProfileFor(app, cfg)
				if err != nil {
					return nil, err
				}
				solo := prof.Iso[prof.Partitions-1]
				seed := int64(1000 + 10*pi + i)
				switch tr {
				case "twitter":
					// Dense tenancy: mean inter-arrival ~ 3x solo latency per
					// client keeps the two-tenant device loaded but stable.
					rate := float64(sim.Second) / (3.0 * float64(solo))
					pats[i] = trace.Twitter(rate, horizon, seed)
				case "azure":
					// Sparse bursty: short bursts separated by long idles.
					pats[i] = trace.Azure(2, solo, 12*solo, horizon, seed)
				}
			}
			for _, sys := range systems {
				res, err := runPairSystem(sys, pair, [2]float64{0.5, 0.5}, pats, horizon, cfg)
				if err != nil {
					continue // MIG-inexpressible configs etc.
				}
				avgs[sys] = append(avgs[sys], res.AvgLatency)
				devs[sys] = append(devs[sys], res.Deviation)
			}
		}
		bless := meanT(avgs["BLESS"])
		for _, sys := range systems {
			if len(avgs[sys]) == 0 {
				t.Rows = append(t.Rows, []string{tr, sys, "n/a", "", ""})
				continue
			}
			m := meanT(avgs[sys])
			t.Rows = append(t.Rows, []string{
				tr, sys, ms(m), pct(float64(m)/float64(bless) - 1), ms(meanT(devs[sys])),
			})
		}
	}
	return t, nil
}

// mutualPairs returns the 10 unordered pairs of the 5 inference models.
func mutualPairs() [][2]string {
	var out [][2]string
	for i := 0; i < len(InferenceModels); i++ {
		for j := i + 1; j < len(InferenceModels); j++ {
			out = append(out, [2]string{InferenceModels[i], InferenceModels[j]})
		}
	}
	return out
}

// runFig15 deploys 4 and 8 application instances whose requests arrive
// simultaneously and compares average latency and deviation. REEF+ is
// excluded, matching the paper (its spatial partitioning cannot be determined
// at runtime for many clients).
func runFig15(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig15",
		Title:   "Beyond pair-wise sharing: 4 and 8 co-located applications, simultaneous requests",
		Columns: []string{"deployment", "system", "avg latency (ms)", "vs BLESS", "deviation (ms)"},
		Notes: []string{
			"paper: 4 apps — BLESS -41.2% vs TEMPORAL, -18.3% vs GSLICE; 8 apps — -80.8% and -35.5%; BLESS deviation 0, TEMPORAL 74ms, GSLICE 5ms, UNBOUND 3.8ms",
		},
	}
	cfg := sim.DefaultConfig()
	cases := []struct {
		name   string
		apps   []string
		quotas []float64
	}{
		{"4 apps", []string{"vgg11", "resnet50", "resnet101", "bert"}, FourModelQuotas},
		{"8 apps", []string{"vgg11", "resnet50", "vgg11", "resnet50", "bert", "resnet101", "bert", "resnet101"}, EightModelQuotas},
	}
	if opt.Quick {
		cases = cases[:1]
	}
	systems := []string{"TEMPORAL", "GSLICE", "UNBOUND", "BLESS"}
	for _, c := range cases {
		type outcome struct {
			avg, dev sim.Time
		}
		got := map[string]outcome{}
		for _, sys := range systems {
			sched, err := NewSystem(sys)
			if err != nil {
				return nil, err
			}
			specs := make([]ClientSpec, len(c.apps))
			for i, app := range c.apps {
				specs[i] = ClientSpec{App: app, Quota: c.quotas[i], Pattern: trace.Burst(1, 0)}
			}
			res, err := Run(RunConfig{Scheduler: sched, Clients: specs, Horizon: sim.Second, GPU: cfg})
			if err != nil {
				return nil, fmt.Errorf("fig15 %s/%s: %w", c.name, sys, err)
			}
			got[sys] = outcome{avg: res.AvgLatency, dev: res.Deviation}
		}
		bless := got["BLESS"].avg
		for _, sys := range systems {
			o := got[sys]
			t.Rows = append(t.Rows, []string{
				c.name, sys, ms(o.avg), pct(float64(o.avg)/float64(bless) - 1), ms(o.dev),
			})
		}
	}
	return t, nil
}

// runFig16 reproduces the extremely biased workload E: App1 (R50) holds an
// 8/9 quota but issues sparse requests; App2 holds 1/9 and submits
// continuously. GSLICE and BLESS are compared on App1's latency and App2's
// throughput.
func runFig16(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig16",
		Title:   "Biased workload E: sparse high-quota App1 vs dense low-quota App2",
		Columns: []string{"system", "app1 latency (ms)", "app1 vs ISO", "app2 throughput (req/s)", "app2 vs GSLICE"},
		Notes: []string{
			"paper: App1 +6% over ISO with GSLICE, +9% with BLESS; App2 throughput 2.2x GSLICE under BLESS",
		},
	}
	cfg := sim.DefaultConfig()
	horizon := 2 * sim.Second
	if opt.Quick {
		horizon = 400 * sim.Millisecond
	}
	prof, err := ProfileFor("resnet50", cfg)
	if err != nil {
		return nil, err
	}
	soloR50 := prof.Iso[prof.Partitions-1]

	type outcome struct {
		app1Lat sim.Time
		app1ISO sim.Time
		app2Tph float64
	}
	got := map[string]outcome{}
	for _, sys := range []string{"GSLICE", "BLESS"} {
		sched, err := NewSystem(sys)
		if err != nil {
			return nil, err
		}
		res, err := Run(RunConfig{
			Scheduler: sched,
			Clients: []ClientSpec{
				// Sparse: think 3x its solo latency.
				{App: "resnet50", Quota: 8.0 / 9, Pattern: trace.Closed(3*soloR50, 0)},
				// Dense: back-to-back submissions.
				{App: "bert", Quota: 1.0 / 9, Pattern: trace.Closed(0, 0)},
			},
			Horizon: horizon,
			GPU:     cfg,
		})
		if err != nil {
			return nil, fmt.Errorf("fig16 %s: %w", sys, err)
		}
		got[sys] = outcome{
			app1Lat: res.PerClient[0].Summary.Mean,
			app1ISO: res.PerClient[0].ISO,
			app2Tph: metrics.Throughput(res.PerClient[1].Completed, res.Elapsed),
		}
	}
	gs := got["GSLICE"]
	for _, sys := range []string{"GSLICE", "BLESS"} {
		o := got[sys]
		t.Rows = append(t.Rows, []string{
			sys,
			ms(o.app1Lat),
			pct(float64(o.app1Lat)/float64(o.app1ISO) - 1),
			fmt.Sprintf("%.1f", o.app2Tph),
			fmt.Sprintf("%.2fx", o.app2Tph/gs.app2Tph),
		})
	}
	return t, nil
}

// runSLO verifies native SLO support (§6.5): QoS targets replace the ISO
// pace targets; violation rates are compared against UNBOUND and GSLICE.
func runSLO(opt Options) (*Table, error) {
	t := &Table{
		ID:      "slo",
		Title:   "SLO guarantees: QoS violation rates",
		Columns: []string{"setting", "system", "violations app1", "violations app2", "overall"},
		Notes: []string{
			"paper: BLESS 0.6% violations overall; UNBOUND 38.8%, GSLICE 50.1%",
			"setting a: tight targets (1.2x, 2x ISO) with medium load B; setting b: loose targets (1.5x, 3x ISO) with high load A; setting c: loose targets with bursty Poisson arrivals",
			"substrate note: this simulator's GSLICE/UNBOUND suffer far less interference than on real hardware, so their closed-loop violation rates undershoot the paper's 38.8%/50.1%",
		},
	}
	cfg := sim.DefaultConfig()
	horizon := 2 * sim.Second
	if opt.Quick {
		horizon = 400 * sim.Millisecond
	}
	apps := [2]string{"resnet50", "vgg11"}
	settings := []struct {
		name     string
		factors  [2]float64
		workload string // closed-loop load, or "poisson" for bursty arrivals
	}{
		{"a:tight/loadB", [2]float64{1.2, 2.0}, "B"},
		{"b:loose/loadA", [2]float64{1.5, 3.0}, "A"},
		{"c:bursty", [2]float64{1.5, 3.0}, "poisson"},
	}
	for _, st := range settings {
		for _, sys := range []string{"UNBOUND", "GSLICE", "BLESS"} {
			sched, err := NewSystem(sys)
			if err != nil {
				return nil, err
			}
			specs := make([]ClientSpec, 2)
			targets := [2]sim.Time{}
			for i, app := range apps {
				prof, err := ProfileFor(app, cfg)
				if err != nil {
					return nil, err
				}
				var pat trace.Pattern
				if st.workload == "poisson" {
					// Bursty arrivals: exponential gaps averaging 2.5x the
					// quota-isolated service time. Same-client bursts then
					// stress the end-to-end targets of every system.
					iso := prof.IsoAtQuota(0.5)
					rate := float64(sim.Second) / (2.5 * float64(iso))
					pat = trace.Poisson(rate, horizon, int64(300+10*i))
				} else {
					pat, err = closedLoadPattern(app, st.workload, cfg)
					if err != nil {
						return nil, err
					}
				}
				targets[i] = sim.Time(float64(prof.IsoAtQuota(0.5)) * st.factors[i])
				specs[i] = ClientSpec{App: app, Quota: 0.5, SLOTarget: targets[i], Pattern: pat}
			}
			res, err := Run(RunConfig{Scheduler: sched, Clients: specs, Horizon: horizon, GPU: cfg})
			if err != nil {
				return nil, fmt.Errorf("slo %s/%s: %w", st.name, sys, err)
			}
			v1 := metrics.QoSViolationRate(res.PerClient[0].Latencies, targets[0])
			v2 := metrics.QoSViolationRate(res.PerClient[1].Latencies, targets[1])
			n1, n2 := len(res.PerClient[0].Latencies), len(res.PerClient[1].Latencies)
			overall := 0.0
			if n1+n2 > 0 {
				overall = (v1*float64(n1) + v2*float64(n2)) / float64(n1+n2)
			}
			t.Rows = append(t.Rows, []string{
				st.name, sys,
				fmt.Sprintf("%.1f%%", v1*100),
				fmt.Sprintf("%.1f%%", v2*100),
				fmt.Sprintf("%.1f%%", overall*100),
			})
		}
	}
	return t, nil
}
