package harness

import (
	"fmt"
	"strings"
	"sync/atomic"

	"bless/internal/invariant"
	"bless/internal/sim"
)

// globalInvariants, when set, attaches an invariant checker to every Run that
// does not configure its own. It is the always-on switch: the test suite and
// `blessbench -invariants` flip it so every experiment they execute is
// verified without threading options through each call site.
var globalInvariants atomic.Pointer[invariant.Options]

// EnableInvariants turns on invariant checking for every subsequent Run
// without an explicit RunConfig.Invariants. Returns a restore function for
// scoped use (defer it in tests).
func EnableInvariants(opts invariant.Options) func() {
	prev := globalInvariants.Swap(&opts)
	return func() { globalInvariants.Store(prev) }
}

// reproSummary composes the replay description attached to violations when
// the caller supplied none: the exact run configuration in one line.
func reproSummary(cfg *RunConfig, gpuCfg sim.Config, horizon sim.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "harness.Run system=%s horizon=%v sms=%d clients=", cfg.Scheduler.Name(), horizon, gpuCfg.SMs)
	for i, s := range cfg.Clients {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%.3f", s.App, s.Quota)
	}
	return b.String()
}

// newRunChecker resolves the effective invariant options for a run and builds
// the checker, or returns nil when checking is off. The returned options are
// the resolved copy (repro filled in).
func newRunChecker(cfg *RunConfig, gpuCfg sim.Config, horizon sim.Time) (*invariant.Checker, *invariant.Options) {
	opts := cfg.Invariants
	if opts == nil {
		opts = globalInvariants.Load()
	}
	if opts == nil {
		return nil, nil
	}
	o := *opts
	if o.Repro == "" {
		o.Repro = reproSummary(cfg, gpuCfg, horizon)
	}
	ics := make([]invariant.Client, len(cfg.Clients))
	for i, s := range cfg.Clients {
		ics[i] = invariant.Client{ID: i, Name: s.App, Quota: s.Quota}
	}
	if fp := cfg.Faults; fp != nil {
		// Joiners occupy the next dense slots and start inactive: no quota
		// or delivery accounting until their admission lands.
		for _, j := range fp.Joins {
			ics = append(ics, invariant.Client{
				ID: len(ics), Name: j.Spec.App, Quota: j.Spec.Quota, StartsInactive: true,
			})
		}
		if o.SettleWindow == 0 && fp.SettleWindow > 0 {
			o.SettleWindow = fp.SettleWindow
		}
	}
	return invariant.New(ics, gpuCfg, o), &o
}

// VerifyDeterminism runs the configuration produced by mk twice and compares
// the invariant digests: any divergence means the simulation is leaking
// nondeterminism (map iteration order, host time, data races). mk must build
// a fresh scheduler each call — schedulers are stateful. Returns the agreed
// digest.
func VerifyDeterminism(mk func() (RunConfig, error)) (uint64, error) {
	one := func() (uint64, error) {
		cfg, err := mk()
		if err != nil {
			return 0, err
		}
		if cfg.Invariants == nil {
			cfg.Invariants = &invariant.Options{}
		}
		res, err := Run(cfg)
		if err != nil {
			return 0, err
		}
		return res.Invariants.Digest, nil
	}
	d1, err := one()
	if err != nil {
		return 0, err
	}
	d2, err := one()
	if err != nil {
		return 0, err
	}
	if d1 != d2 {
		return 0, fmt.Errorf("harness: nondeterminism detected: same configuration produced digests %016x and %016x", d1, d2)
	}
	return d1, nil
}
