package harness

import (
	"fmt"
	"testing"

	"bless/internal/sim"
)

// Shard-determinism suite: the device→shard mapping of a sharded fleet run
// is pure execution strategy, so neither the shard count nor the assignment
// of devices to shards may move the completion digest or the invariant
// checker's event digest by a single bit — including under chaos fault
// plans that crash a device mid-migration across a shard boundary.

// shardCounts are the counts the CI shard-determinism matrix runs; 3 is the
// deliberately-awkward one (devices per shard uneven).
var shardCounts = []int{1, 2, 3, 4, 8}

func runAtShards(t *testing.T, sc FleetScenario, shards int) *FleetResult {
	t.Helper()
	sc.Shards = shards
	res, err := RunFleet(sc)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	if err := res.Invariants.Err(); err != nil {
		t.Fatalf("shards=%d: invariants: %v", shards, err)
	}
	return res
}

// TestFleetShardCountDeterminism is the tentpole property: one scenario run
// at 1, 2, 3, 4 and 8 shards produces bit-identical completion and checker
// digests — the parallel run IS the serial run.
func TestFleetShardCountDeterminism(t *testing.T) {
	sc := smokeFleetScenario(7)
	ref := runAtShards(t, sc, 1)
	for _, n := range shardCounts[1:] {
		got := runAtShards(t, sc, n)
		if got.Digest != ref.Digest {
			t.Fatalf("shards=%d completion digest %016x != serial %016x", n, got.Digest, ref.Digest)
		}
		if got.Invariants.Digest != ref.Invariants.Digest {
			t.Fatalf("shards=%d checker digest %016x != serial %016x", n, got.Invariants.Digest, ref.Invariants.Digest)
		}
		if got.Stats != ref.Stats {
			t.Fatalf("shards=%d stats diverge:\n got %+v\nwant %+v", n, got.Stats, ref.Stats)
		}
	}
}

// TestFleetShardMappingMetamorphic permutes the device→shard assignment at
// a fixed shard count: round-robin, reversed, hashed, everything-on-one and
// odd/even splits must all agree with the serial digest.
func TestFleetShardMappingMetamorphic(t *testing.T) {
	sc := smokeFleetScenario(11)
	ref := runAtShards(t, sc, 1)
	mappings := map[string]func(dev int) int{
		"reversed":  func(dev int) int { return 3 - dev%4 },
		"hashed":    func(dev int) int { return int(uint64(dev)*0x9e3779b97f4a7c15>>59) % 4 },
		"all-on-0":  func(dev int) int { return 0 },
		"odd-even":  func(dev int) int { return dev % 2 },
		"div-block": func(dev int) int { return dev / 2 },
	}
	for name, mapping := range mappings {
		perm := sc
		perm.Shards = 4
		perm.ShardOf = mapping
		got, err := RunFleet(perm)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Digest != ref.Digest {
			t.Fatalf("mapping %s moved the completion digest: %016x vs %016x", name, got.Digest, ref.Digest)
		}
		if got.Invariants.Digest != ref.Invariants.Digest {
			t.Fatalf("mapping %s moved the checker digest: %016x vs %016x", name, got.Invariants.Digest, ref.Invariants.Digest)
		}
	}
}

// TestFleetShardChaosCrossShard is the chaos half of the suite: a device
// crash at the migration instant — sources draining, targets freshly
// admitted, exchange records in flight — with a shard mapping that forces
// every migration and crash recovery across a shard boundary. Digest
// identity and the fleet invariant class (exactly-once delivery, no lost
// requests) must survive at every shard count.
func TestFleetShardChaosCrossShard(t *testing.T) {
	base := smokeFleetScenario(13)
	sc := base.WithDeviceCrash(1, base.Migrations[0].At)
	sc.Repro = "fleet shard chaos seed 13"
	ref := runAtShards(t, sc, 1)
	if ref.Stats.DeviceCrashes != 1 {
		t.Fatalf("want 1 crash, got %d", ref.Stats.DeviceCrashes)
	}
	if ref.Stats.Resubmitted == 0 {
		t.Fatal("crash stranded no requests? expected re-submissions")
	}
	for _, n := range shardCounts[1:] {
		got := runAtShards(t, sc, n)
		if got.Digest != ref.Digest {
			t.Fatalf("shards=%d crash-run digest %016x != serial %016x", n, got.Digest, ref.Digest)
		}
		if got.Invariants.Digest != ref.Invariants.Digest {
			t.Fatalf("shards=%d crash-run checker digest diverged", n)
		}
		if got.Invariants.Lost != 0 {
			t.Fatalf("shards=%d lost %d requests across the crash", n, got.Invariants.Lost)
		}
	}
	// One-device-per-shard pushes every drain, delivery and recovery across
	// a shard boundary; a pathological mapping pinning the crashed device
	// alone on the last shard must change nothing either.
	for name, mapping := range map[string]func(dev int) int{
		"per-device": func(dev int) int { return dev },
		"crash-alone": func(dev int) int {
			if dev == 1 {
				return 7
			}
			return dev % 3
		},
	} {
		perm := sc
		perm.Shards = 8
		perm.ShardOf = mapping
		got, err := RunFleet(perm)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Digest != ref.Digest || got.Invariants.Digest != ref.Invariants.Digest {
			t.Fatalf("mapping %s moved a crash-run digest", name)
		}
	}
}

// TestFleetShardDeterminismWide runs the full matrix on a second seed with
// rebalancing pressure high enough to trigger control-plane migrations —
// the rebalancer's moves must also be shard-count-invariant.
func TestFleetShardDeterminismWide(t *testing.T) {
	if testing.Short() {
		t.Skip("wide matrix skipped in -short")
	}
	for _, seed := range []int64{3, 29} {
		sc := FleetScenarioN(seed, 32, 6, 80*sim.Millisecond)
		ref := runAtShards(t, sc, 1)
		for _, n := range []int{2, 5, 8} {
			got := runAtShards(t, sc, n)
			if got.Digest != ref.Digest || got.Invariants.Digest != ref.Invariants.Digest {
				t.Fatalf("seed %d shards=%d digests diverged", seed, n)
			}
		}
	}
}

// fleetShardedScenario is the 32-GPU benchmark scenario: BenchmarkFleetSmoke
// scale in device count, trimmed in horizon so one iteration stays tractable.
func fleetShardedScenario(seed int64) FleetScenario {
	return FleetScenarioN(seed, 96, 32, 80*sim.Millisecond)
}

// benchmarkFleetSharded is the gated parallel-speedup envelope: the same
// 32-GPU scenario at a fixed shard count. Entries for 1/4/8 shards live in
// BENCH_sim.json; on a multi-core runner ns/op must fall as shards rise
// while the digest stays pinned to the 1-shard run's.
func benchmarkFleetSharded(b *testing.B, shards int) {
	b.ReportAllocs()
	sc := fleetShardedScenario(7)
	sc.Shards = shards
	var digest uint64
	for i := 0; i < b.N; i++ {
		res, err := RunFleet(sc)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Invariants.Err(); err != nil {
			b.Fatal(err)
		}
		if digest == 0 {
			digest = res.Digest
		} else if res.Digest != digest {
			b.Fatalf("digest drifted across iterations: %016x vs %016x", res.Digest, digest)
		}
	}
}

func BenchmarkFleetSharded1(b *testing.B) { benchmarkFleetSharded(b, 1) }
func BenchmarkFleetSharded4(b *testing.B) { benchmarkFleetSharded(b, 4) }
func BenchmarkFleetSharded8(b *testing.B) { benchmarkFleetSharded(b, 8) }

// TestFleetShardedBenchScenarioDigest pins that the benchmark scenario
// itself is shard-count-invariant (the benchmark only checks within one
// count; this crosses counts once, cheaply, under -short skip).
func TestFleetShardedBenchScenarioDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("32-GPU matrix skipped in -short")
	}
	sc := fleetShardedScenario(7)
	ref := runAtShards(t, sc, 1)
	got := runAtShards(t, sc, 8)
	if got.Digest != ref.Digest || got.Invariants.Digest != ref.Invariants.Digest {
		t.Fatalf("32-GPU scenario digests diverge at 8 shards: %016x vs %016x", got.Digest, ref.Digest)
	}
	t.Log(fmt.Sprintf("32-GPU digest %016x stable at 1 and 8 shards", ref.Digest))
}
