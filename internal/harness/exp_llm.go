package harness

import (
	"fmt"

	"bless/internal/sim"
	"bless/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "llm",
		Title: "§6.10 extension: autoregressive (LLM-like) application co-located with BERT",
		Run:   runLLM,
	})
}

// runLLM exercises the paper's dynamic-application discussion (§6.10): an
// LLM-like autoregressive app — compute-dense prefill, bubble-heavy decode —
// shares the GPU with a BERT inference service. The decode phase occupies
// only a fraction of the SMs, so systems that reconfigure at kernel
// granularity (BLESS) let the co-tenant absorb the decode bubbles, while
// static quota partitioning strands them.
func runLLM(opt Options) (*Table, error) {
	t := &Table{
		ID:      "llm",
		Title:   "LLM co-location: llm (quota 1/2) + bert (quota 1/2), medium load",
		Columns: []string{"system", "llm mean (ms)", "llm vs ISO", "bert mean (ms)", "bert vs ISO", "utilization"},
		Notes: []string{
			"extension of §6.10: each request = prefill (saturating) + 48 decode steps (low occupancy)",
			"the LLM's decode kernels saturate below its 54-SM quota, so its ISO equals its solo latency: any sharing delay shows as a premium",
			"observed: BLESS keeps the co-tenant (bert) closest to ISO among quota-honouring systems; fully unbounded sharing wins on raw latency by ignoring quotas (cf. its Fig 14 deviation)",
		},
	}
	cfg := sim.DefaultConfig()
	horizon := 2 * sim.Second
	if opt.Quick {
		horizon = 300 * sim.Millisecond
	}
	llmProf, err := ProfileFor("llm", cfg)
	if err != nil {
		return nil, err
	}
	bertProf, err := ProfileFor("bert", cfg)
	if err != nil {
		return nil, err
	}
	llmPat := trace.Closed(sim.Time(float64(llmProf.Iso[llmProf.Partitions-1])*2/3), 0)
	bertPat := trace.Closed(sim.Time(float64(bertProf.Iso[bertProf.Partitions-1])*2/3), 0)

	for _, sys := range []string{"TEMPORAL", "STATIC", "GSLICE", "UNBOUND", "BLESS"} {
		res, err := runPairSystem(sys, [2]string{"llm", "bert"}, [2]float64{0.5, 0.5},
			[2]trace.Pattern{llmPat, bertPat}, horizon, cfg)
		if err != nil {
			return nil, fmt.Errorf("llm/%s: %w", sys, err)
		}
		llm, bert := res.PerClient[0], res.PerClient[1]
		t.Rows = append(t.Rows, []string{
			sys,
			ms(llm.Summary.Mean), pct(float64(llm.Summary.Mean)/float64(llm.ISO) - 1),
			ms(bert.Summary.Mean), pct(float64(bert.Summary.Mean)/float64(bert.ISO) - 1),
			fmt.Sprintf("%.2f", res.Utilization),
		})
	}
	return t, nil
}
