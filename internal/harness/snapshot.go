package harness

import (
	"bytes"
	"fmt"

	"bless/internal/chaos"
	"bless/internal/fleet"
	"bless/internal/sim"
	"bless/internal/snapshot"
)

// Snapshot export/import: the harness front-end to the snapshot wire format.
//
// ExportFleet runs a scenario to a virtual-time barrier and serializes the
// fleet's complete observable logical state together with the generating
// scenario. ImportFleet rebuilds the run in a fresh process by replaying the
// embedded scenario to the same barrier — pending engine events are closures
// and cannot cross a process boundary, so replay is how they are
// reconstructed — then *proves* the reconstruction by re-exporting at the
// barrier and comparing the canonical state bytes against the snapshot's
// state section. Any serialization drift, schema skew, or cross-process
// nondeterminism fails the import before the run continues; after the proof
// the run continues to completion and the caller compares final digests
// against an uninterrupted reference (the test-sim-import-export /
// test-sim-after-import discipline).

// ExportFleet drives the scenario to the virtual-time barrier at, cuts a
// snapshot there, and returns its canonical encoding. The barrier is forced
// at exactly at (digest-neutral — it only splits lock-step windows); a
// scenario that drains before at exports its final quiescent state.
//
// Function-valued scenario fields cannot be serialized: a non-nil
// Runtime.TraceSquad or Runtime.Injector is an error, and ShardOf (pure
// execution strategy, digest-invariant by the shard metamorphic suite) is
// dropped rather than captured.
func ExportFleet(sc FleetScenario, at sim.Time) ([]byte, error) {
	if at < 0 {
		return nil, fmt.Errorf("harness: snapshot barrier %v is negative", at)
	}
	wire, err := scenarioToWire(sc)
	if err != nil {
		return nil, err
	}
	f, _, horizon, err := buildFleet(sc)
	if err != nil {
		return nil, err
	}
	if err := f.Begin(horizon); err != nil {
		return nil, err
	}
	defer f.Finish()
	if _, err := f.RunTo(at); err != nil {
		return nil, err
	}
	st, err := f.ExportState()
	if err != nil {
		return nil, err
	}
	shards := sc.Shards
	if shards < 1 {
		shards = 1
	}
	snap := &snapshot.Snapshot{
		Seed:      sc.Seed,
		Shards:    shards,
		BarrierAt: at,
		Horizon:   horizon,
		Scenario:  wire,
		State:     *st,
	}
	snap.Scenario.Horizon = horizon
	return snapshot.Encode(snap), nil
}

// ImportFleet restores a snapshot: decode, replay the embedded scenario to
// the snapshot barrier, prove the replayed state matches the snapshot's
// state section byte-for-byte, then continue the run to completion and
// report. shards overrides the engine-shard count for the replay (0 = the
// exporting run's count) — the mapping is execution strategy, so a snapshot
// cut at one count imports at any other with identical state and digests.
func ImportFleet(data []byte, shards int) (*FleetResult, error) {
	snap, err := snapshot.Decode(data)
	if err != nil {
		return nil, err
	}
	sc := scenarioFromWire(snap.Scenario)
	if shards > 0 {
		sc.Shards = shards
	} else {
		sc.Shards = snap.Shards
	}
	f, checker, horizon, err := buildFleet(sc)
	if err != nil {
		return nil, fmt.Errorf("harness: rebuilding snapshot scenario: %w", err)
	}
	if err := f.Begin(horizon); err != nil {
		return nil, err
	}
	defer f.Finish()
	if _, err := f.RunTo(snap.BarrierAt); err != nil {
		return nil, err
	}
	st, err := f.ExportState()
	if err != nil {
		return nil, err
	}
	if got, want := snapshot.EncodeState(st), snapshot.EncodeState(&snap.State); !bytes.Equal(got, want) {
		return nil, fmt.Errorf(
			"harness: replayed state at %v diverges from snapshot (state digest %016x != %016x) — serialization drift or nondeterminism",
			snap.BarrierAt, snapshot.StateDigest(st), snapshot.StateDigest(&snap.State))
	}
	if _, err := f.RunTo(-1); err != nil {
		return nil, err
	}
	return fleetReport(f, checker), nil
}

// ImportVerdict is a fully verified restore: the imported run, the
// uninterrupted reference replayed from the snapshot's embedded scenario,
// and the decoded snapshot itself. VerifyImport only returns one when every
// digest agrees.
type ImportVerdict struct {
	Snapshot  *snapshot.Snapshot
	Imported  *FleetResult
	Reference *FleetResult
}

// VerifyImport is the whole restore proof in one call — what the CI
// snapshot-replay stage and `blessbench -snapshot-import` run: import the
// snapshot (which already proves the replayed barrier state byte-identical),
// continue to completion, replay the embedded scenario uninterrupted, and
// require completion digest, checker digest and stats to agree. shards is
// the import-side engine-shard count (0 = the exporting run's count); the
// reference runs single-shard, which the shard metamorphic suite makes
// equivalent.
func VerifyImport(data []byte, shards int) (*ImportVerdict, error) {
	snap, err := snapshot.Decode(data)
	if err != nil {
		return nil, err
	}
	imported, err := ImportFleet(data, shards)
	if err != nil {
		return nil, err
	}
	ref, err := RunFleet(scenarioFromWire(snap.Scenario))
	if err != nil {
		return nil, fmt.Errorf("harness: uninterrupted reference: %w", err)
	}
	if imported.Digest != ref.Digest {
		return nil, fmt.Errorf("harness: restored run's completion digest %016x != uninterrupted %016x",
			imported.Digest, ref.Digest)
	}
	if imported.Invariants != nil && ref.Invariants != nil && imported.Invariants.Digest != ref.Invariants.Digest {
		return nil, fmt.Errorf("harness: restored run's checker digest %016x != uninterrupted %016x",
			imported.Invariants.Digest, ref.Invariants.Digest)
	}
	if imported.Stats != ref.Stats {
		return nil, fmt.Errorf("harness: restored run's stats diverge from uninterrupted reference:\n got %+v\nwant %+v",
			imported.Stats, ref.Stats)
	}
	return &ImportVerdict{Snapshot: snap, Imported: imported, Reference: ref}, nil
}

// scenarioToWire converts a declarative fleet scenario to its
// process-independent wire form.
func scenarioToWire(sc FleetScenario) (snapshot.Scenario, error) {
	var w snapshot.Scenario
	if sc.Runtime.TraceSquad != nil {
		return w, fmt.Errorf("harness: scenario with Runtime.TraceSquad cannot be snapshotted (functions do not serialize)")
	}
	if sc.Runtime.Injector != nil {
		return w, fmt.Errorf("harness: scenario with Runtime.Injector cannot be snapshotted (injectors do not serialize)")
	}
	w.Seed = sc.Seed
	w.Policy = string(sc.Policy)
	w.Horizon = sc.Horizon
	w.ExchangeLatency = sc.ExchangeLatency
	w.Repro = sc.Repro
	w.Invariants = sc.Invariants
	for _, d := range sc.Devices {
		w.Devices = append(w.Devices, deviceToWire(d))
	}
	for _, t := range sc.Tenants {
		w.Tenants = append(w.Tenants, snapshot.TenantSpec{
			Name: t.Name, App: t.App, Quota: t.Quota,
			SLOTarget: t.SLOTarget, Think: t.Think, Requests: t.Requests,
		})
	}
	for _, m := range sc.Migrations {
		w.Migrations = append(w.Migrations, snapshot.Migration{At: m.At, Tenant: m.Tenant, Target: m.Target})
	}
	for _, c := range sc.DeviceCrashes {
		w.Crashes = append(w.Crashes, snapshot.Crash{At: c.At, Device: c.Device})
	}
	if sc.Rebalance != nil {
		w.Rebalance = &snapshot.Rebalance{
			Interval:     sc.Rebalance.Interval,
			Threshold:    sc.Rebalance.Threshold,
			SustainTicks: sc.Rebalance.SustainTicks,
			MaxMoves:     sc.Rebalance.MaxMoves,
		}
	}
	if sc.Autoscale != nil {
		w.Autoscale = &snapshot.Autoscale{
			Template:      deviceToWire(sc.Autoscale.Template),
			Min:           sc.Autoscale.Min,
			Max:           sc.Autoscale.Max,
			HighWatermark: sc.Autoscale.HighWatermark,
			LowWatermark:  sc.Autoscale.LowWatermark,
		}
	}
	if sc.Faults != nil {
		w.Faults = &snapshot.FaultPlan{
			Seed:               sc.Faults.Seed,
			KernelFaultRate:    sc.Faults.KernelFaultRate,
			MaxFaultsPerKernel: sc.Faults.MaxFaultsPerKernel,
			CtxFaultRate:       sc.Faults.CtxFaultRate,
		}
	}
	o := sc.Runtime
	w.Runtime = snapshot.RuntimeOptions{
		MaxSquadKernels:      o.MaxSquadKernels,
		SplitRatio:           o.SplitRatio,
		Partitions:           o.Partitions,
		SchedPerKernel:       o.SchedPerKernel,
		DisableFairSelection: o.DisableFairSelection,
		DisableDeterminer:    o.DisableDeterminer,
		DisableSemiSP:        o.DisableSemiSP,
		QuotaGuard:           o.QuotaGuard,
		NoAdaptiveSizing:     o.NoAdaptiveSizing,
		NoFlush:              o.NoFlush,
		RetryBackoff:         o.RetryBackoff,
		RetryBackoffCap:      o.RetryBackoffCap,
		MaxRetries:           o.MaxRetries,
		RequestDeadline:      o.RequestDeadline,
	}
	return w, nil
}

// scenarioFromWire rebuilds the declarative scenario a snapshot embeds.
func scenarioFromWire(w snapshot.Scenario) FleetScenario {
	sc := FleetScenario{
		Seed:            w.Seed,
		Policy:          fleet.Policy(w.Policy),
		Horizon:         w.Horizon,
		ExchangeLatency: w.ExchangeLatency,
		Repro:           w.Repro,
		Invariants:      w.Invariants,
	}
	for _, d := range w.Devices {
		sc.Devices = append(sc.Devices, deviceFromWire(d))
	}
	for _, t := range w.Tenants {
		sc.Tenants = append(sc.Tenants, FleetTenant{
			Name: t.Name, App: t.App, Quota: t.Quota,
			SLOTarget: t.SLOTarget, Think: t.Think, Requests: t.Requests,
		})
	}
	for _, m := range w.Migrations {
		sc.Migrations = append(sc.Migrations, FleetMigration{At: m.At, Tenant: m.Tenant, Target: m.Target})
	}
	for _, c := range w.Crashes {
		sc.DeviceCrashes = append(sc.DeviceCrashes, chaos.DeviceEvent{At: c.At, Device: c.Device})
	}
	if w.Rebalance != nil {
		sc.Rebalance = &fleet.RebalanceConfig{
			Interval:     w.Rebalance.Interval,
			Threshold:    w.Rebalance.Threshold,
			SustainTicks: w.Rebalance.SustainTicks,
			MaxMoves:     w.Rebalance.MaxMoves,
		}
	}
	if w.Autoscale != nil {
		sc.Autoscale = &fleet.AutoscaleConfig{
			Template:      deviceFromWire(w.Autoscale.Template),
			Min:           w.Autoscale.Min,
			Max:           w.Autoscale.Max,
			HighWatermark: w.Autoscale.HighWatermark,
			LowWatermark:  w.Autoscale.LowWatermark,
		}
	}
	if w.Faults != nil {
		sc.Faults = &FleetFaultPlan{
			Seed:               w.Faults.Seed,
			KernelFaultRate:    w.Faults.KernelFaultRate,
			MaxFaultsPerKernel: w.Faults.MaxFaultsPerKernel,
			CtxFaultRate:       w.Faults.CtxFaultRate,
		}
	}
	o := w.Runtime
	sc.Runtime.MaxSquadKernels = o.MaxSquadKernels
	sc.Runtime.SplitRatio = o.SplitRatio
	sc.Runtime.Partitions = o.Partitions
	sc.Runtime.SchedPerKernel = o.SchedPerKernel
	sc.Runtime.DisableFairSelection = o.DisableFairSelection
	sc.Runtime.DisableDeterminer = o.DisableDeterminer
	sc.Runtime.DisableSemiSP = o.DisableSemiSP
	sc.Runtime.QuotaGuard = o.QuotaGuard
	sc.Runtime.NoAdaptiveSizing = o.NoAdaptiveSizing
	sc.Runtime.NoFlush = o.NoFlush
	sc.Runtime.RetryBackoff = o.RetryBackoff
	sc.Runtime.RetryBackoffCap = o.RetryBackoffCap
	sc.Runtime.MaxRetries = o.MaxRetries
	sc.Runtime.RequestDeadline = o.RequestDeadline
	return sc
}

func deviceToWire(d fleet.DeviceSpec) snapshot.DeviceSpec {
	c := d.Config
	return snapshot.DeviceSpec{
		Name:             d.Name,
		SMs:              c.SMs,
		MemoryBytes:      c.MemoryBytes,
		PCIeBytesPerNS:   c.PCIeBytesPerNS,
		KernelLaunch:     c.KernelLaunch,
		ContextSwitch:    c.ContextSwitch,
		SquadSync:        c.SquadSync,
		ContextMemBytes:  c.ContextMemBytes,
		SlowdownCap:      c.SlowdownCap,
		BWSatOccupancy:   c.BWSatOccupancy,
		InterferenceBeta: c.InterferenceBeta,
	}
}

func deviceFromWire(d snapshot.DeviceSpec) fleet.DeviceSpec {
	return fleet.DeviceSpec{
		Name: d.Name,
		Config: sim.Config{
			SMs:              d.SMs,
			MemoryBytes:      d.MemoryBytes,
			PCIeBytesPerNS:   d.PCIeBytesPerNS,
			KernelLaunch:     d.KernelLaunch,
			ContextSwitch:    d.ContextSwitch,
			SquadSync:        d.SquadSync,
			ContextMemBytes:  d.ContextMemBytes,
			SlowdownCap:      d.SlowdownCap,
			BWSatOccupancy:   d.BWSatOccupancy,
			InterferenceBeta: d.InterferenceBeta,
		},
	}
}
