package harness

import (
	"fmt"
	"strings"

	"bless/internal/sim"
	"bless/internal/timeline"
	"bless/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Fig 3 (illustration): per-client execution timelines under each scheduling scheme",
		Run:   runFig3,
	})
}

// runFig3 reproduces the paper's scheduling-scheme illustration as ASCII
// Gantt charts: the same two-client request pair executed under static
// sharing, unbounded sharing, biased sharing (REEF+) and BLESS, with one
// timeline lane per client. Static sharing shows the quota bubbles, biased
// sharing favors the real-time client, and BLESS packs both.
func runFig3(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig3",
		Title:   "Scheduling-scheme timelines (VGG11 quota 1/3 + ResNet50 quota 2/3, simultaneous requests)",
		Columns: []string{"scheme", "timeline (shading = lane busy fraction)"},
		Notes: []string{
			"paper Fig 3: static sharing leaves bubbles; unbounded interleaves unpredictably; biased favors the RT client; Fig 4(a) (BLESS) squeezes the bubbles",
		},
	}
	apps := [2]string{"vgg11", "resnet50"}
	quotas := [2]float64{1.0 / 3, 2.0 / 3}
	width := 68

	for _, sys := range []string{"STATIC", "UNBOUND", "REEF+", "BLESS"} {
		sched, err := NewSystem(sys)
		if err != nil {
			return nil, err
		}
		rec := timeline.NewRecorder()
		rec.LaneOf = func(q *sim.Queue) string {
			label := q.Context().Label() + "/" + q.Label()
			for _, a := range apps {
				if strings.Contains(label, a) {
					return a
				}
			}
			return label
		}
		res, err := Run(RunConfig{
			Scheduler: sched,
			Clients: []ClientSpec{
				{App: apps[0], Quota: quotas[0], Pattern: trace.Burst(1, 0)},
				{App: apps[1], Quota: quotas[1], Pattern: trace.Burst(1, 0)},
			},
			Horizon: 100 * sim.Millisecond,
			Tracer:  rec,
		})
		if err != nil {
			return nil, err
		}
		chart := rec.Gantt(width)
		first := true
		for _, line := range strings.Split(strings.TrimRight(chart, "\n"), "\n") {
			name := ""
			if first {
				name = sys
				first = false
			}
			t.Rows = append(t.Rows, []string{name, line})
		}
		t.Rows = append(t.Rows, []string{"", fmt.Sprintf("avg latency %sms, utilization %.0f%%",
			ms(res.AvgLatency), res.Utilization*100)})
	}
	return t, nil
}
