package harness

import (
	"math/rand"
	"testing"

	"bless/internal/fleet"
	"bless/internal/sim"
)

// smokeFleetScenario is the scaled-down canonical scenario used across the
// fleet tests: 24 tenants on a 4-device heterogeneous pool, short horizon.
func smokeFleetScenario(seed int64) FleetScenario {
	return FleetScenarioN(seed, 24, 4, 60*sim.Millisecond)
}

func TestRunFleetSmoke(t *testing.T) {
	res, err := RunFleet(smokeFleetScenario(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Invariants == nil {
		t.Fatal("no invariant report")
	}
	if err := res.Invariants.Err(); err != nil {
		t.Fatalf("fleet invariants: %v", err)
	}
	if res.Stats.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if res.Stats.Migrations == 0 {
		t.Fatal("no migrations happened (scenario schedules explicit ones)")
	}
	for _, tn := range res.Tenants {
		if tn.Evicted {
			t.Fatalf("tenant %s evicted in a crash-free run", tn.Name)
		}
		if tn.Completed == 0 {
			t.Errorf("tenant %s completed nothing", tn.Name)
		}
	}
	t.Logf("completed=%d migrations=%d (completed %d, rejected %d) scaleups=%d rebalances=%d digest=%016x",
		res.Stats.Completed, res.Stats.Migrations, res.Stats.MigrationsCompleted,
		res.Stats.MigrationsRejected, res.Stats.ScaleUps, res.Stats.Rebalances, res.Digest)
}

// TestFleetScenarioExercisesControlPlane pins that the canonical scenario
// actually walks the paths it claims to: live migration completes and the
// autoscaler grows the pool from its near-watermark start.
func TestFleetScenarioExercisesControlPlane(t *testing.T) {
	res, err := RunFleet(smokeFleetScenario(7))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MigrationsCompleted == 0 {
		t.Error("no migration ran to drain completion")
	}
	if res.Stats.ScaleUps == 0 {
		t.Error("autoscaler never scaled up despite near-watermark subscription")
	}
	if len(res.Devices) == len(smokeFleetScenario(7).Devices) {
		t.Error("device pool did not grow")
	}
}

// TestFleetDeterminismSerial pins run-to-run determinism: same scenario,
// same digests (completion and checker event digest).
func TestFleetDeterminismSerial(t *testing.T) {
	a, err := RunFleet(smokeFleetScenario(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFleet(smokeFleetScenario(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("completion digest differs across identical runs: %016x vs %016x", a.Digest, b.Digest)
	}
	if a.Invariants.Digest != b.Invariants.Digest {
		t.Fatalf("checker digest differs across identical runs: %016x vs %016x", a.Invariants.Digest, b.Invariants.Digest)
	}
}

// TestFleetDeterminismParallel pins the serial-vs-parallel identity the
// ISSUE requires: N copies of the scenario run under the parallel executor
// must all produce the serial run's digest.
func TestFleetDeterminismParallel(t *testing.T) {
	serial, err := RunFleet(smokeFleetScenario(5))
	if err != nil {
		t.Fatal(err)
	}
	inputs := []int{0, 1, 2, 3}
	results, err := ForEachParallel(4, inputs, func(_, _ int) (*FleetResult, error) {
		return RunFleet(smokeFleetScenario(5))
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Digest != serial.Digest {
			t.Fatalf("parallel copy %d digest %016x != serial %016x", i, r.Digest, serial.Digest)
		}
		if r.Invariants.Digest != serial.Invariants.Digest {
			t.Fatalf("parallel copy %d checker digest %016x != serial %016x", i, r.Invariants.Digest, serial.Invariants.Digest)
		}
	}
}

// TestFleetMigrationOrderMetamorphic is the migration-determinism suite:
// permuting the order same-instant migration triggers are scheduled in must
// not change the fleet completion digest (triggers apply in canonical
// order, not arrival order).
func TestFleetMigrationOrderMetamorphic(t *testing.T) {
	base := smokeFleetScenario(11)
	if len(base.Migrations) < 3 {
		t.Fatalf("scenario needs >=3 same-instant migrations, got %d", len(base.Migrations))
	}
	ref, err := RunFleet(base)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 4; trial++ {
		perm := base
		perm.Migrations = append([]FleetMigration(nil), base.Migrations...)
		rng.Shuffle(len(perm.Migrations), func(i, j int) {
			perm.Migrations[i], perm.Migrations[j] = perm.Migrations[j], perm.Migrations[i]
		})
		got, err := RunFleet(perm)
		if err != nil {
			t.Fatal(err)
		}
		if got.Digest != ref.Digest {
			t.Fatalf("trial %d: permuted migration order changed the digest: %016x vs %016x",
				trial, got.Digest, ref.Digest)
		}
		if got.Invariants.Digest != ref.Invariants.Digest {
			t.Fatalf("trial %d: permuted migration order changed the checker digest", trial)
		}
	}
}

// TestFleetDeviceCrashDelivery is the chaos coverage: a device crash mid-run
// (timed to land while migration drains are in flight) neither loses nor
// duplicates requests — the delivery half of the fleet invariant class.
func TestFleetDeviceCrashDelivery(t *testing.T) {
	base := smokeFleetScenario(13)
	// Crash the device right at the migration instant: sources are draining,
	// targets freshly admitted — the worst instant to lose a device.
	sc := base.WithDeviceCrash(1, base.Migrations[0].At)
	sc.Repro = "fleet crash test seed 13"
	res, err := RunFleet(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DeviceCrashes != 1 {
		t.Fatalf("want 1 device crash, got %d", res.Stats.DeviceCrashes)
	}
	if err := res.Invariants.Err(); err != nil {
		t.Fatalf("delivery invariant violated: %v", err)
	}
	if res.Invariants.Lost != 0 {
		t.Fatalf("%d requests lost across the crash", res.Invariants.Lost)
	}
	if res.Stats.Resubmitted == 0 {
		t.Error("crash stranded no requests? expected re-submissions")
	}
	// Determinism holds under chaos too.
	res2, err := RunFleet(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Digest != res.Digest {
		t.Fatalf("crash run digest not reproducible: %016x vs %016x", res2.Digest, res.Digest)
	}
}

// TestFleetPolicies pins that each routing policy produces a valid,
// deterministic placement.
func TestFleetPolicies(t *testing.T) {
	for _, pol := range []fleet.Policy{fleet.PolicyLeastLoaded, fleet.PolicyQuotaHeadroom, fleet.PolicySLO} {
		sc := smokeFleetScenario(17)
		sc.Policy = pol
		sc.Migrations = nil
		res, err := RunFleet(sc)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if err := res.Invariants.Err(); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		res2, err := RunFleet(sc)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.Digest != res2.Digest {
			t.Fatalf("%s: digest not reproducible", pol)
		}
	}
}

// BenchmarkFleetSmoke is the fleet control plane's wall-clock envelope: one
// smoke-scale scenario (24 tenants, 4 devices, migrations + rebalancing +
// autoscaling, invariants attached) per iteration. Gated in BENCH_sim.json.
func BenchmarkFleetSmoke(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunFleet(smokeFleetScenario(7))
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Invariants.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
