package snapshot

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"

	"bless/internal/sim"
)

// sampleSnapshot exercises every wire-format field at least once: optional
// sections present, nested slices non-empty, negative and boundary values.
func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Seed:      7,
		Shards:    4,
		BarrierAt: 25 * sim.Millisecond,
		Horizon:   60 * sim.Millisecond,
		Scenario: Scenario{
			Seed:            7,
			Policy:          "least-loaded",
			Horizon:         60 * sim.Millisecond,
			ExchangeLatency: 100 * sim.Microsecond,
			Repro:           "blessbench -fleet -smoke -seed 7",
			Invariants:      true,
			Devices: []DeviceSpec{
				{Name: "gpu0", SMs: 108, MemoryBytes: 40 << 30, PCIeBytesPerNS: 25,
					KernelLaunch: 3 * sim.Microsecond, ContextSwitch: 50 * sim.Microsecond,
					SquadSync: 20 * sim.Microsecond, ContextMemBytes: 230 << 20,
					SlowdownCap: 2, BWSatOccupancy: 0.5, InterferenceBeta: 0.3},
				{Name: "gpu1", SMs: 60, MemoryBytes: 24 << 30, PCIeBytesPerNS: 25},
			},
			Tenants: []TenantSpec{
				{Name: "t000", App: "vgg11", Quota: 0.13, Think: 2 * sim.Millisecond},
				{Name: "t001", App: "bert", Quota: 0.18, SLOTarget: 150 * sim.Millisecond,
					Think: 3 * sim.Millisecond, Requests: 12},
			},
			Migrations: []Migration{{At: 20 * sim.Millisecond, Tenant: "t000", Target: 1}},
			Crashes:    []Crash{{At: 20 * sim.Millisecond, Device: 1}},
			Rebalance:  &Rebalance{Interval: 10 * sim.Millisecond, Threshold: 0.25, SustainTicks: 2, MaxMoves: 4},
			Autoscale: &Autoscale{
				Template: DeviceSpec{Name: "gpu", SMs: 108, MemoryBytes: 40 << 30},
				Min:      2, Max: 6, HighWatermark: 0.85, LowWatermark: 0.2,
			},
			Faults: &FaultPlan{Seed: 99, KernelFaultRate: 0.02, MaxFaultsPerKernel: 2, CtxFaultRate: 0.01},
			Runtime: RuntimeOptions{
				MaxSquadKernels: 50, SplitRatio: 0.5, Partitions: 18,
				SchedPerKernel: 6700, QuotaGuard: true,
				RetryBackoff: 20 * sim.Microsecond, RetryBackoffCap: sim.Millisecond,
				MaxRetries: 8, RequestDeadline: 500 * sim.Millisecond,
			},
		},
		State: State{
			At:             25 * sim.Millisecond,
			Epoch:          2,
			ShortfallTicks: 1,
			Churned:        true,
			Stats: Stats{Admitted: 2, Routed: 40, Completed: 31, Failed: 1,
				Migrations: 1, Rebalances: 1, DeviceCrashes: 1, Resubmitted: 3, Epochs: 2},
			Devices: []DeviceState{
				{
					ID: 0, Name: "gpu0", SMs: 108, MemoryBytes: 40 << 30,
					Deployed: true, NextLocal: 3, Quota: 0.31, Mem: 5 << 30,
					Inflight: 2, Completed: 17, SLOOK: 9, SLOMiss: 1,
					MemUsed: 4 << 30, Utilization: 0.4375,
					Residents: []ResidentState{
						{Local: 0, Tenant: "t000", Quota: 0.13, Mem: 2 << 30, Pending: 1},
						{Local: 2, Tenant: "t001", Quota: 0.18, Mem: 3 << 30, Draining: true, Pending: 1},
					},
					Queues: []QueueState{
						{Owner: 0, Pending: 1, Running: true},
						{Owner: -1, Paused: true},
					},
					Runtime: &RuntimeState{
						Clients: []ClientState{
							{ID: 0, Provisioned: 0.13, Effective: 0.13, Queued: 1,
								ActiveSeq: 4, ActiveNextK: 7, ActiveInFlight: 2},
							{ID: 2, Provisioned: 0.18, Effective: 0.18, ActiveSeq: -1,
								Leaving: true},
						},
						SquadsExecuted: 9, SpatialSquads: 6, KernelsScheduled: 310,
						ConfigsEvaluated: 120, SquadRunning: true,
						Faults: FaultCounts{KernelFaults: 2, Retries: 2, Joins: 2},
					},
				},
				{ID: 1, Name: "gpu1", SMs: 60, MemoryBytes: 24 << 30, Dead: true},
			},
			Tenants: []TenantState{
				{
					Name: "t000", App: "vgg11", Quota: 0.13, Think: 2 * sim.Millisecond,
					Host: 0, NextSeq: 5, Completed: 4,
					LatencySum:  48 * sim.Millisecond,
					Order:       []int{0, 1, 2, 3},
					Latencies:   []sim.Time{12 * sim.Millisecond, 11 * sim.Millisecond, 13 * sim.Millisecond, 12 * sim.Millisecond},
					PendingSeqs: []int{4},
					PendingDevs: []int{0},
					Timers:      []sim.Time{27 * sim.Millisecond},
				},
				{
					Name: "t001", App: "bert", Quota: 0.18, SLOTarget: 150 * sim.Millisecond,
					Think: 3 * sim.Millisecond, Requests: 12,
					Host: 0, Evicted: false, NextSeq: 3, Completed: 2, Failed: 1,
					Migrations: 1, Drains: []int{0},
					PendingSeqs: []int{2}, PendingDevs: []int{0},
				},
			},
			Inbox: []ExchangeRecord{
				{Deliver: 25*sim.Millisecond + 40*sim.Microsecond, At: 25*sim.Millisecond - 60*sim.Microsecond,
					Dev: 0, Seq: 3, Tenant: "t001", Local: 2, RSeq: 2, Lat: 9 * sim.Millisecond, Drained: true},
			},
			ControlTimes: []sim.Time{30 * sim.Millisecond, 40 * sim.Millisecond},
			EventTimes:   []sim.Time{25*sim.Millisecond + 3*sim.Microsecond, 27 * sim.Millisecond},
			Checker:      &CheckerState{Digest: 0xdeadbeefcafef00d, Events: 81, Routed: 40, Completed: 31, Rerouted: 3},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	data := Encode(s)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// Canonical encoding: re-encoding the decoded snapshot must reproduce
	// the exact bytes, which subsumes a field-by-field comparison.
	if !bytes.Equal(Encode(got), data) {
		t.Fatal("re-encoded snapshot differs from original bytes")
	}
	if got.Scenario.Faults == nil || got.State.Checker == nil || got.State.Devices[0].Runtime == nil {
		t.Fatal("optional sections lost in round trip")
	}
	if StateDigest(&got.State) != StateDigest(&s.State) {
		t.Fatal("state digest moved across round trip")
	}
}

func TestSnapshotRoundTripMinimal(t *testing.T) {
	s := &Snapshot{Seed: 1, Shards: 1, Scenario: Scenario{Seed: 1}}
	got, err := Decode(Encode(s))
	if err != nil {
		t.Fatalf("decode minimal: %v", err)
	}
	if !bytes.Equal(Encode(got), Encode(s)) {
		t.Fatal("minimal snapshot not canonical")
	}
	if got.Scenario.Rebalance != nil || got.State.Checker != nil {
		t.Fatal("optional sections materialized from nothing")
	}
}

// TestSnapshotGolden pins the wire format: the header bytes exactly, and the
// digest of the full sample encoding. Any unintentional change to field
// order, widths, or endianness breaks this test — intentional changes must
// bump Version and update the golden values.
func TestSnapshotGolden(t *testing.T) {
	data := Encode(sampleSnapshot())
	const goldenHeader = "424c4553534e415001000000" // "BLESSNAP" + version 1 LE
	if got := hex.EncodeToString(data[:12]); got != goldenHeader {
		t.Fatalf("header drifted:\n got %s\nwant %s", got, goldenHeader)
	}
	const goldenDigest = uint64(0xb427185178a80904)
	if got := fnv1a(data); got != goldenDigest {
		t.Fatalf("wire format drifted: payload digest %#x, golden %#x — if intentional, bump Version and refresh", got, goldenDigest)
	}
}

func TestSnapshotDecodeRejectsBadMagic(t *testing.T) {
	data := Encode(sampleSnapshot())
	data[0] = 'X'
	if _, err := Decode(data); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic not rejected: %v", err)
	}
}

func TestSnapshotDecodeRejectsNewerVersion(t *testing.T) {
	s := sampleSnapshot()
	data := Encode(s)
	// Patch the version field (offset 8, LE u32) to Version+1 and re-seal
	// the digest — a well-formed snapshot from a future build.
	data[8] = byte(Version + 1)
	body := data[:len(data)-8]
	d := fnv1a(body)
	for i := 0; i < 8; i++ {
		data[len(body)+i] = byte(d >> (8 * i))
	}
	if _, err := Decode(data); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("forward-incompatible snapshot not rejected: %v", err)
	}
}

func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	data := Encode(sampleSnapshot())
	flip := append([]byte(nil), data...)
	flip[len(flip)/2] ^= 0x40
	if _, err := Decode(flip); err == nil {
		t.Fatal("corrupted payload not rejected")
	}
	trunc := data[:len(data)-9]
	if _, err := Decode(trunc); err == nil {
		t.Fatal("truncated payload not rejected")
	}
	if _, err := Decode(data[:4]); err == nil {
		t.Fatal("too-short payload not rejected")
	}
}

func TestSnapshotDecodeRejectsTrailingBytes(t *testing.T) {
	s := sampleSnapshot()
	w := &writer{}
	w.buf = append(w.buf, Magic...)
	w.u32(Version)
	w.i64(s.Seed)
	w.vint(s.Shards)
	w.time(s.BarrierAt)
	w.time(s.Horizon)
	encodeScenario(w, &s.Scenario)
	encodeState(w, &s.State)
	w.buf = append(w.buf, 0xAA) // smuggled trailing byte inside the sealed body
	w.u64(fnv1a(w.buf))
	if _, err := Decode(w.buf); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes not rejected: %v", err)
	}
}

func TestSnapshotDecodeRejectsHugeLength(t *testing.T) {
	// A corrupted slice length must fail cleanly, not attempt a giant alloc.
	w := &writer{}
	w.buf = append(w.buf, Magic...)
	w.u32(Version)
	w.i64(1)
	w.vint(1)
	w.time(0)
	w.time(0)
	w.i64(1)       // scenario seed
	w.str("p")     // policy
	w.time(0)      // horizon
	w.time(0)      // exchange latency
	w.str("")      // repro
	w.bool(false)  // invariants
	w.u32(1 << 30) // devices length: absurd
	w.u64(fnv1a(w.buf))
	if _, err := Decode(w.buf); err == nil {
		t.Fatal("absurd slice length not rejected")
	}
}
