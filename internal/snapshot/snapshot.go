// Package snapshot defines the versioned, canonical wire format for fleet
// runtime snapshots — the export/import primitive behind migration, upgrade
// and crash-recovery testing (the wasmd test-sim-import-export discipline).
//
// A snapshot is cut at a virtual-time barrier of a sharded fleet run and
// captures two things:
//
//   - the generating Scenario: everything needed to rebuild the fleet from
//     nothing in a fresh process (pool, tenants, control schedule, policy,
//     runtime options) — snapshots are self-contained; and
//   - the State: the complete observable logical state at the barrier —
//     per-device control-plane and BLESS-runtime state (clients, quotas,
//     backlogs, fault/retry counters), per-tenant progress (sequence
//     counters, completion order, outstanding requests, closed-loop timers),
//     in-flight cross-shard exchange records, the invariant checker's
//     digest, and the merged multiset of pending engine-event times.
//
// Pending engine events are closures and cannot be serialized; importing a
// snapshot therefore reconstructs them by deterministic replay of the
// Scenario to the same barrier, then proves the reconstruction by comparing
// the replayed state's canonical encoding byte-for-byte against the State
// section. Any serialization drift or cross-process nondeterminism fails the
// import before the run continues.
//
// Encoding is canonical by construction: fixed field order, little-endian
// fixed-width integers, float bits via math.Float64bits, length-prefixed
// strings and slices, and no maps — the same logical state always encodes to
// the same bytes, which is what makes the byte-compare proof and the golden
// tests possible. The trailing FNV-1a digest authenticates the payload
// against truncation and corruption; the leading version gates forward
// incompatibility (a snapshot written by a newer format version is rejected,
// never misparsed).
package snapshot

import (
	"fmt"
	"math"
	"sync/atomic"

	"bless/internal/sim"
)

// Magic identifies a BLESS snapshot stream.
const Magic = "BLESSNAP"

// Version is the current wire-format version. Decode rejects snapshots
// carrying a newer version; older versions are migrated here as the format
// evolves (none exist yet).
const Version = 1

// Snapshot is one exported fleet runtime state: header, generating scenario,
// and the canonical state at the barrier.
type Snapshot struct {
	// Seed keys the scenario's deterministic control-plane decisions.
	Seed int64
	// Shards is the engine-shard count the exporting run used. Advisory:
	// the shard mapping is execution strategy, so an import may replay at
	// any count and still reproduce State byte-for-byte.
	Shards int
	// BarrierAt is the virtual-time barrier the snapshot was cut at.
	BarrierAt sim.Time
	// Horizon is the scenario horizon (new work stops there; the run then
	// drains).
	Horizon sim.Time
	// Scenario regenerates the run from t=0 in a fresh process.
	Scenario Scenario
	// State is the canonical logical state at BarrierAt.
	State State
}

// Scenario is the declarative fleet scenario embedded in every snapshot —
// a process-independent mirror of harness.FleetScenario (the harness owns
// the conversion; this package stays dependency-light).
type Scenario struct {
	Seed            int64
	Policy          string
	Horizon         sim.Time
	ExchangeLatency sim.Time
	Repro           string
	Invariants      bool
	Devices         []DeviceSpec
	Tenants         []TenantSpec
	Migrations      []Migration
	Crashes         []Crash
	Rebalance       *Rebalance
	Autoscale       *Autoscale
	Faults          *FaultPlan
	Runtime         RuntimeOptions
}

// FaultPlan mirrors harness.FleetFaultPlan — the declarative, seeded fleet
// fault spec; per-device injectors are recompiled from it on replay.
type FaultPlan struct {
	Seed               int64
	KernelFaultRate    float64
	MaxFaultsPerKernel int
	CtxFaultRate       float64
}

// DeviceSpec is one pool device: its name and full simulation config.
type DeviceSpec struct {
	Name             string
	SMs              int
	MemoryBytes      int64
	PCIeBytesPerNS   float64
	KernelLaunch     sim.Time
	ContextSwitch    sim.Time
	SquadSync        sim.Time
	ContextMemBytes  int64
	SlowdownCap      float64
	BWSatOccupancy   float64
	InterferenceBeta float64
}

// TenantSpec is one tenant and its closed-loop workload.
type TenantSpec struct {
	Name      string
	App       string
	Quota     float64
	SLOTarget sim.Time
	Think     sim.Time
	Requests  int
}

// Migration is one scheduled live-migration trigger.
type Migration struct {
	At     sim.Time
	Tenant string
	Target int
}

// Crash is one scheduled device crash.
type Crash struct {
	At     sim.Time
	Device int
}

// Rebalance mirrors fleet.RebalanceConfig.
type Rebalance struct {
	Interval     sim.Time
	Threshold    float64
	SustainTicks int
	MaxMoves     int
}

// Autoscale mirrors fleet.AutoscaleConfig.
type Autoscale struct {
	Template      DeviceSpec
	Min, Max      int
	HighWatermark float64
	LowWatermark  float64
}

// RuntimeOptions is the serializable subset of core.Options. Function-valued
// and interface-valued fields (TraceSquad, Injector) cannot cross a process
// boundary; export refuses scenarios that set them.
type RuntimeOptions struct {
	MaxSquadKernels      int
	SplitRatio           float64
	Partitions           int
	SchedPerKernel       sim.Time
	DisableFairSelection bool
	DisableDeterminer    bool
	DisableSemiSP        bool
	QuotaGuard           bool
	NoAdaptiveSizing     bool
	NoFlush              bool
	RetryBackoff         sim.Time
	RetryBackoffCap      sim.Time
	MaxRetries           int
	RequestDeadline      sim.Time
}

// State is the complete observable logical fleet state at a barrier. Every
// field is keyed on canonical entities (devices by id, tenants by admission
// order, requests by sequence) — never on shards, goroutines or map order —
// so the encoding is identical at any engine-shard count or mapping.
type State struct {
	// At is the barrier instant (all engine clocks agree on it).
	At sim.Time
	// Epoch and ShortfallTicks/Churned are the control loop's state.
	Epoch          int64
	ShortfallTicks int
	Churned        bool
	// Stats are the merged control-plane counters (shard tallies folded).
	Stats Stats
	// Devices, id order.
	Devices []DeviceState
	// Tenants, admission order.
	Tenants []TenantState
	// Inbox holds in-flight cross-shard exchange records in canonical
	// (deliver, device, ordinal) order — a snapshot mid-migration carries
	// the drain completions still traveling to their tenants' owners.
	Inbox []ExchangeRecord
	// ControlTimes are the pending control-engine event instants (future
	// rebalance ticks, scheduled migrations and crashes), ascending.
	ControlTimes []sim.Time
	// EventTimes is the merged multiset of live pending engine-event
	// instants across all shards, ascending — the serializable shape of the
	// event queues (mapping-invariant: the same logical events pend
	// regardless of which shard holds them).
	EventTimes []sim.Time
	// Checker is the fleet invariant checker's running state (nil when the
	// run is unchecked).
	Checker *CheckerState
}

// Stats mirrors fleet.Stats, merged across shards.
type Stats struct {
	Admitted            int
	AdmitRejected       int
	Routed              int64
	Completed           int64
	Failed              int64
	Migrations          int
	MigrationsCompleted int
	MigrationsRejected  int
	Rebalances          int
	ScaleUps            int
	ScaleDowns          int
	DeviceCrashes       int
	Resubmitted         int64
	Evicted             int
	LostToEviction      int
	Epochs              int64
}

// DeviceState is one device's control-plane and runtime state.
type DeviceState struct {
	ID          int
	Name        string
	SMs         int
	MemoryBytes int64
	Deployed    bool
	Retired     bool
	Dead        bool
	NextLocal   int
	Quota       float64
	Mem         int64
	Inflight    int
	Completed   int64
	Failed      int64
	SLOOK       int64
	SLOMiss     int64
	// MemUsed and Utilization are the simulated device's view.
	MemUsed     int64
	Utilization float64
	// Residents, local-id order (live and draining).
	Residents []ResidentState
	// Queues is the device's per-queue simulator state, creation order.
	Queues []QueueState
	// Runtime is the BLESS runtime's state (nil until first resident).
	Runtime *RuntimeState
}

// ResidentState is one tenancy on one device.
type ResidentState struct {
	Local    int
	Tenant   string
	Quota    float64
	Mem      int64
	Draining bool
	Pending  int
}

// QueueState is one device queue's observable simulator state.
type QueueState struct {
	Owner   int
	Pending int
	Paused  bool
	Running bool
}

// RuntimeState is the BLESS runtime's serializable state: clients, quotas,
// backlogs, and the fault/retry counters.
type RuntimeState struct {
	Clients          []ClientState
	SquadsExecuted   int64
	SpatialSquads    int64
	KernelsScheduled int64
	ConfigsEvaluated int64
	SquadRunning     bool
	Faults           FaultCounts
}

// ClientState is one runtime client's state.
type ClientState struct {
	ID          int
	Provisioned float64
	Effective   float64
	Queued      int
	// ActiveSeq is the in-service request's sequence (-1 when idle);
	// ActiveNextK/ActiveInFlight describe its kernel progress.
	ActiveSeq      int
	ActiveNextK    int
	ActiveInFlight int
	Leaving        bool
	Dead           bool
	Released       bool
}

// FaultCounts mirrors core.FaultStats.
type FaultCounts struct {
	KernelFaults     int64
	Retries          int64
	RetryAborts      int64
	DeadlineAborts   int64
	CtxFaults        int64
	StallDelays      int64
	Crashes          int64
	Leaves           int64
	Joins            int64
	CancelledKernels int64
}

// ExchangeRecord is one in-flight cross-shard drain completion.
type ExchangeRecord struct {
	Deliver sim.Time
	At      sim.Time
	Dev     int
	Seq     uint64
	Tenant  string
	Local   int
	RSeq    int
	Failed  bool
	Lat     sim.Time
	Drained bool
}

// TenantState is one tenant's fleet-side state.
type TenantState struct {
	Name       string
	App        string
	Quota      float64
	SLOTarget  sim.Time
	Think      sim.Time
	Requests   int
	Host       int // current host device (-1 if evicted/none)
	Evicted    bool
	NextSeq    int
	Completed  int
	Failed     int
	Migrations int
	LatencySum sim.Time
	// Order is the completion order of sequence numbers — the digest
	// substrate.
	Order []int
	// Latencies are the successful completions' latencies, completion order.
	Latencies []sim.Time
	// PendingSeqs/PendingDevs are the outstanding requests (ascending seq)
	// and the device each is running on.
	PendingSeqs []int
	PendingDevs []int
	// Drains are the devices still finishing pre-migration backlog.
	Drains []int
	// Timers are the pending closed-loop submission instants.
	Timers []sim.Time
}

// CheckerState is the fleet invariant checker's running state at the
// barrier: the event digest and its feed counters.
type CheckerState struct {
	Digest    uint64
	Events    int64
	Routed    int64
	Completed int64
	Rerouted  int64
}

// fnvOffset/fnvPrime are the FNV-1a constants used across the repo.
const (
	fnvOffset uint64 = 1469598103934665603
	fnvPrime  uint64 = 1099511628211
)

func fnv1a(data []byte) uint64 {
	h := fnvOffset
	for _, b := range data {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// writer builds the canonical byte stream.
type writer struct{ buf []byte }

func (w *writer) u32(v uint32) {
	w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func (w *writer) u64(v uint64) {
	w.buf = append(w.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func (w *writer) i64(v int64)     { w.u64(uint64(v)) }
func (w *writer) vint(v int)      { w.i64(int64(v)) }
func (w *writer) time(t sim.Time) { w.i64(int64(t)) }
func (w *writer) f64(v float64)   { w.u64(math.Float64bits(v)) }

func (w *writer) bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *writer) times(ts []sim.Time) {
	w.u32(uint32(len(ts)))
	for _, t := range ts {
		w.time(t)
	}
}

func (w *writer) ints(vs []int) {
	w.u32(uint32(len(vs)))
	for _, v := range vs {
		w.vint(v)
	}
}

// reader consumes the canonical byte stream with a sticky error.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail("truncated at offset %d (need %d bytes, have %d)", r.off, n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (r *reader) i64() int64     { return int64(r.u64()) }
func (r *reader) vint() int      { return int(r.i64()) }
func (r *reader) time() sim.Time { return sim.Time(r.i64()) }
func (r *reader) f64() float64   { return math.Float64frombits(r.u64()) }

func (r *reader) bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("invalid bool byte %#x at offset %d", b[0], r.off-1)
		return false
	}
}

func (r *reader) str() string {
	n := int(r.u32())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// count validates a slice length against the remaining bytes (each element
// is at least min bytes) so a corrupted length cannot force a huge alloc.
func (r *reader) count(min int) int {
	n := int(r.u32())
	if r.err == nil && min > 0 && n > (len(r.buf)-r.off)/min {
		r.fail("slice length %d at offset %d exceeds remaining payload", n, r.off-4)
		return 0
	}
	return n
}

func (r *reader) times() []sim.Time {
	n := r.count(8)
	if n == 0 || r.err != nil {
		return nil
	}
	ts := make([]sim.Time, n)
	for i := range ts {
		ts[i] = r.time()
	}
	return ts
}

func (r *reader) ints() []int {
	n := r.count(8)
	if n == 0 || r.err != nil {
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = r.vint()
	}
	return vs
}

// sizeHint tracks the largest encoding produced so far (process-wide), so
// repeated exports pre-size their buffer once instead of paying the
// geometric-regrowth copies on every multi-megabyte snapshot.
var sizeHint atomic.Int64

func encodeBuf() []byte {
	n := int(sizeHint.Load())
	if n < 4096 {
		n = 4096
	}
	return make([]byte, 0, n)
}

func noteSize(n int) {
	for {
		cur := sizeHint.Load()
		if int64(n) <= cur || sizeHint.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// Encode serializes the snapshot to its canonical byte form:
//
//	magic[8] | version u32 | scenario | state | fnv1a(all preceding) u64
func Encode(s *Snapshot) []byte { return AppendEncode(encodeBuf(), s) }

// AppendEncode appends the snapshot's canonical byte form to buf and returns
// the extended slice, reusing buf's capacity — callers on a steady-state
// export path can hold one buffer across exports and encode without
// allocating.
func AppendEncode(buf []byte, s *Snapshot) []byte {
	w := &writer{buf: buf}
	start := len(buf)
	w.buf = append(w.buf, Magic...)
	w.u32(Version)
	w.i64(s.Seed)
	w.vint(s.Shards)
	w.time(s.BarrierAt)
	w.time(s.Horizon)
	encodeScenario(w, &s.Scenario)
	encodeState(w, &s.State)
	w.u64(fnv1a(w.buf[start:]))
	noteSize(len(w.buf) - start)
	return w.buf
}

// EncodeState serializes just the state section — the canonical bytes the
// import proof compares and the state digest is computed over.
func EncodeState(st *State) []byte { return AppendEncodeState(encodeBuf(), st) }

// AppendEncodeState appends the state section's canonical bytes to buf,
// reusing its capacity (see AppendEncode).
func AppendEncodeState(buf []byte, st *State) []byte {
	w := &writer{buf: buf}
	start := len(buf)
	encodeState(w, st)
	noteSize(len(w.buf) - start)
	return w.buf
}

// StateDigest is the FNV-1a digest of the state's canonical encoding.
func StateDigest(st *State) uint64 { return fnv1a(EncodeState(st)) }

// Decode parses and authenticates a snapshot stream. It rejects a bad magic,
// a version newer than this build supports, a payload digest mismatch
// (truncation/corruption), and trailing garbage.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(Magic)+4+8 {
		return nil, fmt.Errorf("snapshot: %d bytes is too short to be a snapshot", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q (want %q)", data[:len(Magic)], Magic)
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	r := &reader{buf: tail}
	if got, want := r.u64(), fnv1a(body); got != want {
		return nil, fmt.Errorf("snapshot: payload digest mismatch (%016x != %016x) — truncated or corrupted", got, want)
	}
	r = &reader{buf: body, off: len(Magic)}
	version := r.u32()
	if version > Version {
		return nil, fmt.Errorf("snapshot: format version %d is newer than this build supports (%d) — refusing to misparse", version, Version)
	}
	if version == 0 {
		return nil, fmt.Errorf("snapshot: invalid format version 0")
	}
	s := &Snapshot{}
	s.Seed = r.i64()
	s.Shards = r.vint()
	s.BarrierAt = r.time()
	s.Horizon = r.time()
	decodeScenario(r, &s.Scenario)
	decodeState(r, &s.State)
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after the state section", len(body)-r.off)
	}
	return s, nil
}

func encodeDeviceSpec(w *writer, d *DeviceSpec) {
	w.str(d.Name)
	w.vint(d.SMs)
	w.i64(d.MemoryBytes)
	w.f64(d.PCIeBytesPerNS)
	w.time(d.KernelLaunch)
	w.time(d.ContextSwitch)
	w.time(d.SquadSync)
	w.i64(d.ContextMemBytes)
	w.f64(d.SlowdownCap)
	w.f64(d.BWSatOccupancy)
	w.f64(d.InterferenceBeta)
}

func decodeDeviceSpec(r *reader, d *DeviceSpec) {
	d.Name = r.str()
	d.SMs = r.vint()
	d.MemoryBytes = r.i64()
	d.PCIeBytesPerNS = r.f64()
	d.KernelLaunch = r.time()
	d.ContextSwitch = r.time()
	d.SquadSync = r.time()
	d.ContextMemBytes = r.i64()
	d.SlowdownCap = r.f64()
	d.BWSatOccupancy = r.f64()
	d.InterferenceBeta = r.f64()
}

func encodeScenario(w *writer, sc *Scenario) {
	w.i64(sc.Seed)
	w.str(sc.Policy)
	w.time(sc.Horizon)
	w.time(sc.ExchangeLatency)
	w.str(sc.Repro)
	w.bool(sc.Invariants)
	w.u32(uint32(len(sc.Devices)))
	for i := range sc.Devices {
		encodeDeviceSpec(w, &sc.Devices[i])
	}
	w.u32(uint32(len(sc.Tenants)))
	for i := range sc.Tenants {
		t := &sc.Tenants[i]
		w.str(t.Name)
		w.str(t.App)
		w.f64(t.Quota)
		w.time(t.SLOTarget)
		w.time(t.Think)
		w.vint(t.Requests)
	}
	w.u32(uint32(len(sc.Migrations)))
	for _, m := range sc.Migrations {
		w.time(m.At)
		w.str(m.Tenant)
		w.vint(m.Target)
	}
	w.u32(uint32(len(sc.Crashes)))
	for _, c := range sc.Crashes {
		w.time(c.At)
		w.vint(c.Device)
	}
	w.bool(sc.Rebalance != nil)
	if sc.Rebalance != nil {
		w.time(sc.Rebalance.Interval)
		w.f64(sc.Rebalance.Threshold)
		w.vint(sc.Rebalance.SustainTicks)
		w.vint(sc.Rebalance.MaxMoves)
	}
	w.bool(sc.Autoscale != nil)
	if sc.Autoscale != nil {
		encodeDeviceSpec(w, &sc.Autoscale.Template)
		w.vint(sc.Autoscale.Min)
		w.vint(sc.Autoscale.Max)
		w.f64(sc.Autoscale.HighWatermark)
		w.f64(sc.Autoscale.LowWatermark)
	}
	w.bool(sc.Faults != nil)
	if sc.Faults != nil {
		w.i64(sc.Faults.Seed)
		w.f64(sc.Faults.KernelFaultRate)
		w.vint(sc.Faults.MaxFaultsPerKernel)
		w.f64(sc.Faults.CtxFaultRate)
	}
	o := &sc.Runtime
	w.vint(o.MaxSquadKernels)
	w.f64(o.SplitRatio)
	w.vint(o.Partitions)
	w.time(o.SchedPerKernel)
	w.bool(o.DisableFairSelection)
	w.bool(o.DisableDeterminer)
	w.bool(o.DisableSemiSP)
	w.bool(o.QuotaGuard)
	w.bool(o.NoAdaptiveSizing)
	w.bool(o.NoFlush)
	w.time(o.RetryBackoff)
	w.time(o.RetryBackoffCap)
	w.vint(o.MaxRetries)
	w.time(o.RequestDeadline)
}

func decodeScenario(r *reader, sc *Scenario) {
	sc.Seed = r.i64()
	sc.Policy = r.str()
	sc.Horizon = r.time()
	sc.ExchangeLatency = r.time()
	sc.Repro = r.str()
	sc.Invariants = r.bool()
	if n := r.count(16); n > 0 && r.err == nil {
		sc.Devices = make([]DeviceSpec, n)
		for i := range sc.Devices {
			decodeDeviceSpec(r, &sc.Devices[i])
		}
	}
	if n := r.count(16); n > 0 && r.err == nil {
		sc.Tenants = make([]TenantSpec, n)
		for i := range sc.Tenants {
			t := &sc.Tenants[i]
			t.Name = r.str()
			t.App = r.str()
			t.Quota = r.f64()
			t.SLOTarget = r.time()
			t.Think = r.time()
			t.Requests = r.vint()
		}
	}
	if n := r.count(16); n > 0 && r.err == nil {
		sc.Migrations = make([]Migration, n)
		for i := range sc.Migrations {
			m := &sc.Migrations[i]
			m.At = r.time()
			m.Tenant = r.str()
			m.Target = r.vint()
		}
	}
	if n := r.count(16); n > 0 && r.err == nil {
		sc.Crashes = make([]Crash, n)
		for i := range sc.Crashes {
			sc.Crashes[i].At = r.time()
			sc.Crashes[i].Device = r.vint()
		}
	}
	if r.bool() {
		sc.Rebalance = &Rebalance{
			Interval:     r.time(),
			Threshold:    r.f64(),
			SustainTicks: r.vint(),
			MaxMoves:     r.vint(),
		}
	}
	if r.bool() {
		a := &Autoscale{}
		decodeDeviceSpec(r, &a.Template)
		a.Min = r.vint()
		a.Max = r.vint()
		a.HighWatermark = r.f64()
		a.LowWatermark = r.f64()
		sc.Autoscale = a
	}
	if r.bool() {
		sc.Faults = &FaultPlan{
			Seed:               r.i64(),
			KernelFaultRate:    r.f64(),
			MaxFaultsPerKernel: r.vint(),
			CtxFaultRate:       r.f64(),
		}
	}
	o := &sc.Runtime
	o.MaxSquadKernels = r.vint()
	o.SplitRatio = r.f64()
	o.Partitions = r.vint()
	o.SchedPerKernel = r.time()
	o.DisableFairSelection = r.bool()
	o.DisableDeterminer = r.bool()
	o.DisableSemiSP = r.bool()
	o.QuotaGuard = r.bool()
	o.NoAdaptiveSizing = r.bool()
	o.NoFlush = r.bool()
	o.RetryBackoff = r.time()
	o.RetryBackoffCap = r.time()
	o.MaxRetries = r.vint()
	o.RequestDeadline = r.time()
}

func encodeState(w *writer, st *State) {
	w.time(st.At)
	w.i64(st.Epoch)
	w.vint(st.ShortfallTicks)
	w.bool(st.Churned)
	s := &st.Stats
	w.vint(s.Admitted)
	w.vint(s.AdmitRejected)
	w.i64(s.Routed)
	w.i64(s.Completed)
	w.i64(s.Failed)
	w.vint(s.Migrations)
	w.vint(s.MigrationsCompleted)
	w.vint(s.MigrationsRejected)
	w.vint(s.Rebalances)
	w.vint(s.ScaleUps)
	w.vint(s.ScaleDowns)
	w.vint(s.DeviceCrashes)
	w.i64(s.Resubmitted)
	w.vint(s.Evicted)
	w.vint(s.LostToEviction)
	w.i64(s.Epochs)
	w.u32(uint32(len(st.Devices)))
	for i := range st.Devices {
		d := &st.Devices[i]
		w.vint(d.ID)
		w.str(d.Name)
		w.vint(d.SMs)
		w.i64(d.MemoryBytes)
		w.bool(d.Deployed)
		w.bool(d.Retired)
		w.bool(d.Dead)
		w.vint(d.NextLocal)
		w.f64(d.Quota)
		w.i64(d.Mem)
		w.vint(d.Inflight)
		w.i64(d.Completed)
		w.i64(d.Failed)
		w.i64(d.SLOOK)
		w.i64(d.SLOMiss)
		w.i64(d.MemUsed)
		w.f64(d.Utilization)
		w.u32(uint32(len(d.Residents)))
		for _, res := range d.Residents {
			w.vint(res.Local)
			w.str(res.Tenant)
			w.f64(res.Quota)
			w.i64(res.Mem)
			w.bool(res.Draining)
			w.vint(res.Pending)
		}
		w.u32(uint32(len(d.Queues)))
		for _, q := range d.Queues {
			w.vint(q.Owner)
			w.vint(q.Pending)
			w.bool(q.Paused)
			w.bool(q.Running)
		}
		w.bool(d.Runtime != nil)
		if d.Runtime != nil {
			rt := d.Runtime
			w.u32(uint32(len(rt.Clients)))
			for _, c := range rt.Clients {
				w.vint(c.ID)
				w.f64(c.Provisioned)
				w.f64(c.Effective)
				w.vint(c.Queued)
				w.vint(c.ActiveSeq)
				w.vint(c.ActiveNextK)
				w.vint(c.ActiveInFlight)
				w.bool(c.Leaving)
				w.bool(c.Dead)
				w.bool(c.Released)
			}
			w.i64(rt.SquadsExecuted)
			w.i64(rt.SpatialSquads)
			w.i64(rt.KernelsScheduled)
			w.i64(rt.ConfigsEvaluated)
			w.bool(rt.SquadRunning)
			f := &rt.Faults
			w.i64(f.KernelFaults)
			w.i64(f.Retries)
			w.i64(f.RetryAborts)
			w.i64(f.DeadlineAborts)
			w.i64(f.CtxFaults)
			w.i64(f.StallDelays)
			w.i64(f.Crashes)
			w.i64(f.Leaves)
			w.i64(f.Joins)
			w.i64(f.CancelledKernels)
		}
	}
	w.u32(uint32(len(st.Tenants)))
	for i := range st.Tenants {
		t := &st.Tenants[i]
		w.str(t.Name)
		w.str(t.App)
		w.f64(t.Quota)
		w.time(t.SLOTarget)
		w.time(t.Think)
		w.vint(t.Requests)
		w.vint(t.Host)
		w.bool(t.Evicted)
		w.vint(t.NextSeq)
		w.vint(t.Completed)
		w.vint(t.Failed)
		w.vint(t.Migrations)
		w.time(t.LatencySum)
		w.ints(t.Order)
		w.times(t.Latencies)
		w.ints(t.PendingSeqs)
		w.ints(t.PendingDevs)
		w.ints(t.Drains)
		w.times(t.Timers)
	}
	w.u32(uint32(len(st.Inbox)))
	for i := range st.Inbox {
		rec := &st.Inbox[i]
		w.time(rec.Deliver)
		w.time(rec.At)
		w.vint(rec.Dev)
		w.u64(rec.Seq)
		w.str(rec.Tenant)
		w.vint(rec.Local)
		w.vint(rec.RSeq)
		w.bool(rec.Failed)
		w.time(rec.Lat)
		w.bool(rec.Drained)
	}
	w.times(st.ControlTimes)
	w.times(st.EventTimes)
	w.bool(st.Checker != nil)
	if st.Checker != nil {
		w.u64(st.Checker.Digest)
		w.i64(st.Checker.Events)
		w.i64(st.Checker.Routed)
		w.i64(st.Checker.Completed)
		w.i64(st.Checker.Rerouted)
	}
}

func decodeState(r *reader, st *State) {
	st.At = r.time()
	st.Epoch = r.i64()
	st.ShortfallTicks = r.vint()
	st.Churned = r.bool()
	s := &st.Stats
	s.Admitted = r.vint()
	s.AdmitRejected = r.vint()
	s.Routed = r.i64()
	s.Completed = r.i64()
	s.Failed = r.i64()
	s.Migrations = r.vint()
	s.MigrationsCompleted = r.vint()
	s.MigrationsRejected = r.vint()
	s.Rebalances = r.vint()
	s.ScaleUps = r.vint()
	s.ScaleDowns = r.vint()
	s.DeviceCrashes = r.vint()
	s.Resubmitted = r.i64()
	s.Evicted = r.vint()
	s.LostToEviction = r.vint()
	s.Epochs = r.i64()
	if n := r.count(32); n > 0 && r.err == nil {
		st.Devices = make([]DeviceState, n)
		for i := range st.Devices {
			d := &st.Devices[i]
			d.ID = r.vint()
			d.Name = r.str()
			d.SMs = r.vint()
			d.MemoryBytes = r.i64()
			d.Deployed = r.bool()
			d.Retired = r.bool()
			d.Dead = r.bool()
			d.NextLocal = r.vint()
			d.Quota = r.f64()
			d.Mem = r.i64()
			d.Inflight = r.vint()
			d.Completed = r.i64()
			d.Failed = r.i64()
			d.SLOOK = r.i64()
			d.SLOMiss = r.i64()
			d.MemUsed = r.i64()
			d.Utilization = r.f64()
			if n := r.count(16); n > 0 && r.err == nil {
				d.Residents = make([]ResidentState, n)
				for j := range d.Residents {
					res := &d.Residents[j]
					res.Local = r.vint()
					res.Tenant = r.str()
					res.Quota = r.f64()
					res.Mem = r.i64()
					res.Draining = r.bool()
					res.Pending = r.vint()
				}
			}
			if n := r.count(16); n > 0 && r.err == nil {
				d.Queues = make([]QueueState, n)
				for j := range d.Queues {
					q := &d.Queues[j]
					q.Owner = r.vint()
					q.Pending = r.vint()
					q.Paused = r.bool()
					q.Running = r.bool()
				}
			}
			if r.bool() {
				rt := &RuntimeState{}
				if n := r.count(32); n > 0 && r.err == nil {
					rt.Clients = make([]ClientState, n)
					for j := range rt.Clients {
						c := &rt.Clients[j]
						c.ID = r.vint()
						c.Provisioned = r.f64()
						c.Effective = r.f64()
						c.Queued = r.vint()
						c.ActiveSeq = r.vint()
						c.ActiveNextK = r.vint()
						c.ActiveInFlight = r.vint()
						c.Leaving = r.bool()
						c.Dead = r.bool()
						c.Released = r.bool()
					}
				}
				rt.SquadsExecuted = r.i64()
				rt.SpatialSquads = r.i64()
				rt.KernelsScheduled = r.i64()
				rt.ConfigsEvaluated = r.i64()
				rt.SquadRunning = r.bool()
				f := &rt.Faults
				f.KernelFaults = r.i64()
				f.Retries = r.i64()
				f.RetryAborts = r.i64()
				f.DeadlineAborts = r.i64()
				f.CtxFaults = r.i64()
				f.StallDelays = r.i64()
				f.Crashes = r.i64()
				f.Leaves = r.i64()
				f.Joins = r.i64()
				f.CancelledKernels = r.i64()
				d.Runtime = rt
			}
		}
	}
	if n := r.count(32); n > 0 && r.err == nil {
		st.Tenants = make([]TenantState, n)
		for i := range st.Tenants {
			t := &st.Tenants[i]
			t.Name = r.str()
			t.App = r.str()
			t.Quota = r.f64()
			t.SLOTarget = r.time()
			t.Think = r.time()
			t.Requests = r.vint()
			t.Host = r.vint()
			t.Evicted = r.bool()
			t.NextSeq = r.vint()
			t.Completed = r.vint()
			t.Failed = r.vint()
			t.Migrations = r.vint()
			t.LatencySum = r.time()
			t.Order = r.ints()
			t.Latencies = r.times()
			t.PendingSeqs = r.ints()
			t.PendingDevs = r.ints()
			t.Drains = r.ints()
			t.Timers = r.times()
		}
	}
	if n := r.count(32); n > 0 && r.err == nil {
		st.Inbox = make([]ExchangeRecord, n)
		for i := range st.Inbox {
			rec := &st.Inbox[i]
			rec.Deliver = r.time()
			rec.At = r.time()
			rec.Dev = r.vint()
			rec.Seq = r.u64()
			rec.Tenant = r.str()
			rec.Local = r.vint()
			rec.RSeq = r.vint()
			rec.Failed = r.bool()
			rec.Lat = r.time()
			rec.Drained = r.bool()
		}
	}
	st.ControlTimes = r.times()
	st.EventTimes = r.times()
	if r.bool() {
		st.Checker = &CheckerState{
			Digest:    r.u64(),
			Events:    r.i64(),
			Routed:    r.i64(),
			Completed: r.i64(),
			Rerouted:  r.i64(),
		}
	}
}
