// Package model provides the application substrate for the BLESS
// reproduction: DNN-like applications expressed as sequences of GPU kernels.
//
// The paper evaluates five models (VGG-11, ResNet50, ResNet101, NasNet, BERT)
// in both inference and training form, compiled with TVM/nnfusion or run
// under PyTorch (Table 1). Real compiled kernels are unavailable in this
// environment, so each application is a deterministic, seeded kernel-sequence
// generator calibrated so that
//
//   - the kernel count matches Table 1 exactly,
//   - the solo full-GPU latency matches Table 1,
//   - kernel durations span the paper's reported 3us-3ms range with
//     per-model heterogeneity (NasNet: many tiny cell kernels; VGG: few
//     fat convolutions; BERT inference: tensor-core GEMMs), and
//   - per-kernel SM saturation (the paper's d% statistic) and memory
//     intensity vary by kernel class, which is what drives bubbles,
//     interference and the estimator behaviour.
//
// The scheduler side of the system observes applications only through the
// offline profiler (kernel durations at each SM partition), so matching these
// observables preserves the behaviour the paper's mechanisms depend on.
package model

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"bless/internal/sim"
)

// Kind distinguishes inference services from training jobs.
type Kind int

const (
	// Inference applications serve latency-sensitive requests.
	Inference Kind = iota
	// Training applications run iterations (one request = one iteration).
	Training
)

// String returns "inference" or "training".
func (k Kind) String() string {
	if k == Training {
		return "training"
	}
	return "inference"
}

// App is a stationary GPU application: every request executes the same kernel
// sequence (the paper's deterministic-computation-pattern requirement, §4.2).
type App struct {
	// Name identifies the application, e.g. "resnet50" or "bert-train".
	Name string
	// Kind is Inference or Training.
	Kind Kind
	// Kernels is the per-request kernel sequence, in issue order.
	Kernels []sim.Kernel
	// MemoryBytes is the device memory footprint (weights + activations).
	MemoryBytes int64
	// GraphEnds optionally partitions the sequence into CUDA-graph-style
	// launch units (§6.10): each element is the exclusive end index of one
	// graph, ascending, with the last equal to len(Kernels). A graph is
	// launched with a single host call and scheduled atomically. Nil means
	// plain kernel granularity.
	GraphEnds []int
}

// GraphEnd returns the exclusive end index of the graph containing kernel k,
// or k+1 when the app has no graphs.
func (a *App) GraphEnd(k int) int {
	for _, e := range a.GraphEnds {
		if k < e {
			return e
		}
	}
	return k + 1
}

// WithGraphs returns a copy of the app partitioned into graphs of at most
// size kernels each — the simplest CUDA-graph capture policy.
func (a *App) WithGraphs(size int) *App {
	if size < 1 {
		panic("model: WithGraphs needs size >= 1")
	}
	b := a.Clone()
	for e := size; e < len(b.Kernels); e += size {
		b.GraphEnds = append(b.GraphEnds, e)
	}
	b.GraphEnds = append(b.GraphEnds, len(b.Kernels))
	return b
}

// ValidateGraphs checks graph-boundary well-formedness.
func (a *App) ValidateGraphs() error {
	if a.GraphEnds == nil {
		return nil
	}
	prev := 0
	for i, e := range a.GraphEnds {
		if e <= prev || e > len(a.Kernels) {
			return fmt.Errorf("model: app %q: graph end %d at index %d invalid", a.Name, e, i)
		}
		prev = e
	}
	if prev != len(a.Kernels) {
		return fmt.Errorf("model: app %q: graphs cover %d of %d kernels", a.Name, prev, len(a.Kernels))
	}
	return nil
}

// NumKernels returns the per-request kernel count.
func (a *App) NumKernels() int { return len(a.Kernels) }

// SoloDuration returns the analytic request latency when the app runs alone
// with sms SMs and exclusive PCIe bandwidth: the serial sum of isolated
// kernel durations (device-bound; host launch pipelining hides launch gaps).
func (a *App) SoloDuration(sms int, pcieBytesPerNS float64) sim.Time {
	var total sim.Time
	for i := range a.Kernels {
		total += a.Kernels[i].IsolatedDuration(sms, pcieBytesPerNS)
	}
	return total
}

// MeanKernelDuration returns the average full-GPU compute-kernel duration,
// the statistic the deployment checks use (§4.2.2).
func (a *App) MeanKernelDuration(sms int) sim.Time {
	var total sim.Time
	n := 0
	for i := range a.Kernels {
		if a.Kernels[i].IsCompute() {
			total += a.Kernels[i].IsolatedDuration(sms, 1)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / sim.Time(n)
}

// MaxKernelDuration returns the longest full-GPU kernel duration.
func (a *App) MaxKernelDuration(sms int) sim.Time {
	var max sim.Time
	for i := range a.Kernels {
		if d := a.Kernels[i].IsolatedDuration(sms, 25); d > max {
			max = d
		}
	}
	return max
}

// Validate checks every kernel in the sequence.
func (a *App) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("model: app has empty name")
	}
	if len(a.Kernels) == 0 {
		return fmt.Errorf("model: app %q has no kernels", a.Name)
	}
	for i := range a.Kernels {
		if err := a.Kernels[i].Validate(); err != nil {
			return fmt.Errorf("model: app %q kernel %d: %w", a.Name, i, err)
		}
	}
	return nil
}

// Clone returns a deep copy; mutating the copy's kernels does not affect the
// original.
func (a *App) Clone() *App {
	b := *a
	b.Kernels = append([]sim.Kernel(nil), a.Kernels...)
	b.GraphEnds = append([]int(nil), a.GraphEnds...)
	return &b
}

// kernelClass describes one family of kernels a model is built from.
type kernelClass struct {
	name string
	// weight is the relative share of kernels drawn from this class.
	weight float64
	// workMeanUS / workSigma parameterize a lognormal full-GPU duration in
	// microseconds (before global calibration).
	workMeanUS float64
	workSigma  float64
	// satLo, satHi bound the SM saturation point.
	satLo, satHi int
	// memLo, memHi bound the memory-bandwidth intensity.
	memLo, memHi float64
	tensorCore   bool
}

// Standard kernel classes for convolutional and transformer models.
var (
	classHeavyConv = kernelClass{name: "conv_heavy", workMeanUS: 600, workSigma: 0.5, satLo: 90, satHi: 108, memLo: 0.2, memHi: 0.4}
	classConv      = kernelClass{name: "conv", workMeanUS: 150, workSigma: 0.6, satLo: 60, satHi: 108, memLo: 0.25, memHi: 0.5}
	classCellConv  = kernelClass{name: "cell_conv", workMeanUS: 45, workSigma: 0.7, satLo: 24, satHi: 72, memLo: 0.3, memHi: 0.55}
	classGemm      = kernelClass{name: "gemm", workMeanUS: 120, workSigma: 0.5, satLo: 48, satHi: 96, memLo: 0.3, memHi: 0.5}
	classGemmTC    = kernelClass{name: "gemm_tc", workMeanUS: 60, workSigma: 0.4, satLo: 80, satHi: 108, memLo: 0.15, memHi: 0.35, tensorCore: true}
	classElemwise  = kernelClass{name: "elemwise", workMeanUS: 8, workSigma: 0.5, satLo: 100, satHi: 108, memLo: 0.7, memHi: 0.95}
	classPoolNorm  = kernelClass{name: "pool_norm", workMeanUS: 15, workSigma: 0.5, satLo: 36, satHi: 80, memLo: 0.5, memHi: 0.8}
	classFC        = kernelClass{name: "fc", workMeanUS: 40, workSigma: 0.4, satLo: 24, satHi: 60, memLo: 0.5, memHi: 0.75}
	classOptim     = kernelClass{name: "optim", workMeanUS: 12, workSigma: 0.4, satLo: 100, satHi: 108, memLo: 0.75, memHi: 0.95}
	classGradConv  = kernelClass{name: "grad_conv", workMeanUS: 200, workSigma: 0.6, satLo: 60, satHi: 108, memLo: 0.3, memHi: 0.55}
)

// spec fully describes one catalog application before calibration.
type spec struct {
	name       string
	kind       Kind
	kernels    int     // Table 1 kernel count
	soloUS     float64 // Table 1 solo duration in microseconds
	memBytes   int64   // device footprint
	inputKB    int64   // H2D transfer per request
	outputKB   int64   // D2H transfer per request
	seed       int64   // deterministic generation seed
	classes    []kernelClass
	hasMemcpys bool
}

// catalogSpecs pins the ten Table 1 applications. Class mixes reflect each
// architecture: VGG is a few fat convolutions, ResNets interleave convs with
// bn/relu elementwise kernels, NasNet is hundreds of small cell kernels, BERT
// inference is tensor-core GEMMs with softmax/layernorm elementwise kernels,
// and the training variants add backward and optimizer kernels.
var catalogSpecs = []spec{
	{
		name: "vgg11", kind: Inference, kernels: 31, soloUS: 10200,
		memBytes: 1300 << 20, inputKB: 602, outputKB: 4, seed: 101, hasMemcpys: true,
		classes: []kernelClass{
			withWeight(classHeavyConv, 8), withWeight(classElemwise, 14),
			withWeight(classPoolNorm, 5), withWeight(classFC, 4),
		},
	},
	{
		name: "resnet50", kind: Inference, kernels: 80, soloUS: 8700,
		memBytes: 900 << 20, inputKB: 602, outputKB: 4, seed: 102, hasMemcpys: true,
		classes: []kernelClass{
			withWeight(classConv, 30), withWeight(classElemwise, 36),
			withWeight(classPoolNorm, 12), withWeight(classFC, 2),
		},
	},
	{
		name: "resnet101", kind: Inference, kernels: 148, soloUS: 17200,
		memBytes: 1400 << 20, inputKB: 602, outputKB: 4, seed: 103, hasMemcpys: true,
		classes: []kernelClass{
			withWeight(classConv, 60), withWeight(classElemwise, 66),
			withWeight(classPoolNorm, 20), withWeight(classFC, 2),
		},
	},
	{
		name: "nasnet", kind: Inference, kernels: 458, soloUS: 32700,
		memBytes: 1600 << 20, inputKB: 602, outputKB: 4, seed: 104, hasMemcpys: true,
		classes: []kernelClass{
			withWeight(classCellConv, 220), withWeight(classElemwise, 160),
			withWeight(classPoolNorm, 70), withWeight(classFC, 8),
		},
	},
	{
		name: "bert", kind: Inference, kernels: 382, soloUS: 12800,
		memBytes: 1700 << 20, inputKB: 48, outputKB: 6, seed: 105, hasMemcpys: true,
		classes: []kernelClass{
			withWeight(classGemmTC, 145), withWeight(classElemwise, 170),
			withWeight(classPoolNorm, 55), withWeight(classFC, 12),
		},
	},
	{
		name: "vgg11-train", kind: Training, kernels: 80, soloUS: 11200,
		memBytes: 4 << 30, seed: 201,
		classes: []kernelClass{
			withWeight(classHeavyConv, 8), withWeight(classGradConv, 14),
			withWeight(classElemwise, 30), withWeight(classPoolNorm, 10),
			withWeight(classFC, 6), withWeight(classOptim, 12),
		},
	},
	{
		name: "resnet50-train", kind: Training, kernels: 306, soloUS: 25200,
		memBytes: 6 << 30, seed: 202,
		classes: []kernelClass{
			withWeight(classConv, 55), withWeight(classGradConv, 55),
			withWeight(classElemwise, 110), withWeight(classPoolNorm, 40),
			withWeight(classOptim, 46),
		},
	},
	{
		name: "resnet101-train", kind: Training, kernels: 598, soloUS: 40100,
		memBytes: 8 << 30, seed: 203,
		classes: []kernelClass{
			withWeight(classConv, 105), withWeight(classGradConv, 105),
			withWeight(classElemwise, 220), withWeight(classPoolNorm, 78),
			withWeight(classOptim, 90),
		},
	},
	{
		name: "nasnet-train", kind: Training, kernels: 2824, soloUS: 157800,
		memBytes: 10 << 30, seed: 204,
		classes: []kernelClass{
			withWeight(classCellConv, 900), withWeight(classGradConv, 500),
			withWeight(classElemwise, 900), withWeight(classPoolNorm, 300),
			withWeight(classOptim, 224),
		},
	},
	{
		name: "bert-train", kind: Training, kernels: 5035, soloUS: 186100,
		memBytes: 12 << 30, seed: 205,
		classes: []kernelClass{
			withWeight(classGemm, 1400), withWeight(classGemmTC, 400),
			withWeight(classElemwise, 1900), withWeight(classPoolNorm, 600),
			withWeight(classOptim, 735),
		},
	},
}

func withWeight(c kernelClass, w float64) kernelClass {
	c.weight = w
	return c
}

// build generates and calibrates one application from its spec. The result
// is deterministic for a given spec.
func (s *spec) build() *App {
	rng := rand.New(rand.NewSource(s.seed))
	n := s.kernels
	nMemcpy := 0
	if s.hasMemcpys {
		nMemcpy = 2 // one H2D input, one D2H output
	}
	nCompute := n - nMemcpy

	// Assign each compute kernel a class, spreading classes through the
	// sequence (real nets interleave conv->bn->relu; a round-robin draw
	// weighted by class share approximates that and avoids long runs of
	// identical kernels).
	totalW := 0.0
	for _, c := range s.classes {
		totalW += c.weight
	}
	kernels := make([]sim.Kernel, 0, n)
	if s.hasMemcpys {
		kernels = append(kernels, sim.Kernel{
			Name: s.name + "/h2d_input", Kind: sim.MemcpyH2D, Bytes: s.inputKB << 10,
		})
	}
	counts := make([]int, len(s.classes))
	for i := 0; i < nCompute; i++ {
		// Pick the class currently most under-represented vs. its weight —
		// a deterministic stride that interleaves classes.
		best, bestGap := 0, math.Inf(-1)
		for ci, c := range s.classes {
			gap := c.weight/totalW*float64(i+1) - float64(counts[ci])
			if gap > bestGap {
				best, bestGap = ci, gap
			}
		}
		counts[best]++
		c := s.classes[best]
		fullDurUS := math.Exp(math.Log(c.workMeanUS) + c.workSigma*rng.NormFloat64())
		if fullDurUS < 3 {
			fullDurUS = 3 // paper's minimum kernel duration
		}
		if fullDurUS > 3000 {
			fullDurUS = 3000
		}
		sat := c.satLo + rng.Intn(c.satHi-c.satLo+1)
		work := sim.Time(fullDurUS*float64(sat)) * sim.Microsecond
		kernels = append(kernels, sim.Kernel{
			Name:          fmt.Sprintf("%s/%s_%d", s.name, c.name, counts[best]),
			Kind:          sim.Compute,
			Work:          work,
			SaturationSMs: sat,
			MemIntensity:  c.memLo + rng.Float64()*(c.memHi-c.memLo),
			TensorCore:    c.tensorCore,
		})
	}
	if s.hasMemcpys {
		kernels = append(kernels, sim.Kernel{
			Name: s.name + "/d2h_output", Kind: sim.MemcpyD2H, Bytes: s.outputKB << 10,
		})
	}

	app := &App{Name: s.name, Kind: s.kind, Kernels: kernels, MemoryBytes: s.memBytes}
	calibrate(app, sim.Time(s.soloUS)*sim.Microsecond)
	return app
}

// calibrate uniformly scales compute work so the solo full-GPU latency
// matches target. Memcpy durations are fixed by transfer size.
func calibrate(a *App, target sim.Time) {
	cfg := sim.DefaultConfig()
	var memcpyT, computeT sim.Time
	for i := range a.Kernels {
		d := a.Kernels[i].IsolatedDuration(cfg.SMs, cfg.PCIeBytesPerNS)
		if a.Kernels[i].IsCompute() {
			computeT += d
		} else {
			memcpyT += d
		}
	}
	if computeT <= 0 {
		return
	}
	f := float64(target-memcpyT) / float64(computeT)
	if f <= 0 {
		f = 0.01
	}
	for i := range a.Kernels {
		if a.Kernels[i].IsCompute() {
			w := sim.Time(float64(a.Kernels[i].Work) * f)
			if w < 1 {
				w = 1
			}
			a.Kernels[i].Work = w
		}
	}
}

var catalog = func() map[string]*App {
	m := make(map[string]*App, len(catalogSpecs)+1)
	for i := range catalogSpecs {
		app := catalogSpecs[i].build()
		m[app.Name] = app
	}
	// The §6.10 dynamic-application extension: an LLM-like autoregressive
	// app (128-token prompt, 48 decode steps) with the prefill/decode phase
	// contrast that makes GPU sharing interesting.
	m["llm"] = Autoregressive("llm", 128, 48, 301)
	return m
}()

// Get returns a copy of the named catalog application. Valid names are
// "vgg11", "resnet50", "resnet101", "nasnet", "bert" and the same with a
// "-train" suffix.
func Get(name string) (*App, error) {
	a, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("model: unknown application %q (have %v)", name, Names())
	}
	return a.Clone(), nil
}

// MustGet is Get but panics on unknown names; for tests and examples.
func MustGet(name string) *App {
	a, err := Get(name)
	if err != nil {
		panic(err)
	}
	return a
}

// Names lists the catalog application names in sorted order.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// InferenceApps returns copies of the five inference applications in the
// paper's order: VGG, R50, R101, NAS, BERT.
func InferenceApps() []*App {
	return apps("vgg11", "resnet50", "resnet101", "nasnet", "bert")
}

// TrainingApps returns copies of the five training applications in the
// paper's order.
func TrainingApps() []*App {
	return apps("vgg11-train", "resnet50-train", "resnet101-train", "nasnet-train", "bert-train")
}

func apps(names ...string) []*App {
	out := make([]*App, len(names))
	for i, n := range names {
		out[i] = MustGet(n)
	}
	return out
}

// Synthetic builds a uniform synthetic application for tests and
// microbenchmarks: n compute kernels of roughly avgFullGPU duration each,
// saturating sat SMs with the given memory intensity, deterministically from
// seed.
func Synthetic(name string, n int, avgFullGPU sim.Time, sat int, memIntensity float64, seed int64) *App {
	if n < 1 {
		panic("model: Synthetic needs n >= 1")
	}
	if sat < 1 {
		sat = 1
	}
	rng := rand.New(rand.NewSource(seed))
	kernels := make([]sim.Kernel, n)
	for i := range kernels {
		jitter := 0.5 + rng.Float64() // 0.5x .. 1.5x
		kernels[i] = sim.Kernel{
			Name:          fmt.Sprintf("%s/k%d", name, i),
			Kind:          sim.Compute,
			Work:          sim.Time(float64(avgFullGPU)*jitter) * sim.Time(sat),
			SaturationSMs: sat,
			MemIntensity:  memIntensity,
		}
	}
	return &App{Name: name, Kind: Inference, Kernels: kernels, MemoryBytes: 512 << 20}
}
