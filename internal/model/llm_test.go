package model

import (
	"strings"
	"testing"

	"bless/internal/sim"
)

func TestAutoregressiveShape(t *testing.T) {
	app := Autoregressive("llm", 128, 32, 11)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1 h2d + 8 prefill + 32*4 decode + 1 d2h.
	if want := 1 + 8 + 32*4 + 1; app.NumKernels() != want {
		t.Errorf("kernel count = %d, want %d", app.NumKernels(), want)
	}
	// Phase contrast: prefill kernels saturate >= 96 SMs, decode kernels
	// at most 48.
	for i := range app.Kernels {
		k := &app.Kernels[i]
		if !k.IsCompute() {
			continue
		}
		switch {
		case strings.Contains(k.Name, "prefill"):
			if k.SaturationSMs < 96 {
				t.Errorf("%s saturates %d SMs, want >= 96", k.Name, k.SaturationSMs)
			}
		case strings.Contains(k.Name, "decode"):
			if k.SaturationSMs > 48 {
				t.Errorf("%s saturates %d SMs, want <= 48", k.Name, k.SaturationSMs)
			}
		}
	}
}

func TestAutoregressiveDeterministic(t *testing.T) {
	a := Autoregressive("llm", 64, 16, 3)
	b := Autoregressive("llm", 64, 16, 3)
	for i := range a.Kernels {
		if a.Kernels[i] != b.Kernels[i] {
			t.Fatal("Autoregressive not deterministic for equal seeds")
		}
	}
}

func TestAutoregressivePrefillScalesWithPrompt(t *testing.T) {
	short := Autoregressive("s", 32, 8, 5)
	long := Autoregressive("l", 256, 8, 5)
	var shortPrefill, longPrefill sim.Time
	for i := range short.Kernels {
		if strings.Contains(short.Kernels[i].Name, "prefill") {
			shortPrefill += short.Kernels[i].IsolatedDuration(108, 25)
		}
	}
	for i := range long.Kernels {
		if strings.Contains(long.Kernels[i].Name, "prefill") {
			longPrefill += long.Kernels[i].IsolatedDuration(108, 25)
		}
	}
	if longPrefill < 4*shortPrefill {
		t.Errorf("prefill scaling: 256 tokens %v vs 32 tokens %v, want ~8x", longPrefill, shortPrefill)
	}
}

func TestAutoregressiveDecodeLeavesBubbles(t *testing.T) {
	// Running decode solo on the full device must leave most SMs idle —
	// the sharing opportunity the §6.10 discussion points at.
	app := Autoregressive("llm", 32, 40, 7)
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())
	ctx, err := gpu.NewContext(sim.ContextOptions{NoMemCharge: true})
	if err != nil {
		t.Fatal(err)
	}
	q := ctx.NewQueue("llm")
	for i := range app.Kernels {
		q.Enqueue(0, &app.Kernels[i], nil)
	}
	eng.Run()
	if u := gpu.Utilization(); u > 0.5 {
		t.Errorf("solo LLM utilization %.2f, want < 0.5 (decode-dominated bubbles)", u)
	}
}

func TestAutoregressivePanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad args did not panic")
		}
	}()
	Autoregressive("bad", 0, 10, 1)
}
