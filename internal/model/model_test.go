package model

import (
	"math"
	"testing"
	"testing/quick"

	"bless/internal/sim"
)

// table1 pins the paper's Table 1: name -> (kernel count, solo duration us).
var table1 = map[string]struct {
	kernels int
	soloUS  float64
}{
	"vgg11":           {31, 10200},
	"resnet50":        {80, 8700},
	"resnet101":       {148, 17200},
	"nasnet":          {458, 32700},
	"bert":            {382, 12800},
	"vgg11-train":     {80, 11200},
	"resnet50-train":  {306, 25200},
	"resnet101-train": {598, 40100},
	"nasnet-train":    {2824, 157800},
	"bert-train":      {5035, 186100},
}

func TestCatalogMatchesTable1(t *testing.T) {
	cfg := sim.DefaultConfig()
	for name, want := range table1 {
		app, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if got := app.NumKernels(); got != want.kernels {
			t.Errorf("%s: %d kernels, want %d (Table 1)", name, got, want.kernels)
		}
		solo := app.SoloDuration(cfg.SMs, cfg.PCIeBytesPerNS)
		gotUS := solo.Microseconds()
		if math.Abs(gotUS-want.soloUS)/want.soloUS > 0.01 {
			t.Errorf("%s: solo duration %.0fus, want %.0fus +-1%% (Table 1)", name, gotUS, want.soloUS)
		}
	}
}

func TestCatalogValid(t *testing.T) {
	for _, name := range Names() {
		app := MustGet(name)
		if err := app.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a1 := MustGet("resnet50")
	a2 := MustGet("resnet50")
	if len(a1.Kernels) != len(a2.Kernels) {
		t.Fatal("two Gets returned different kernel counts")
	}
	for i := range a1.Kernels {
		if a1.Kernels[i] != a2.Kernels[i] {
			t.Fatalf("kernel %d differs between Gets: %+v vs %+v", i, a1.Kernels[i], a2.Kernels[i])
		}
	}
}

func TestGetReturnsIndependentCopies(t *testing.T) {
	a1 := MustGet("vgg11")
	a1.Kernels[0].Work = 42
	a2 := MustGet("vgg11")
	if a2.Kernels[0].Work == 42 {
		t.Error("mutating one Get's kernels leaked into another")
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("alexnet"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestKernelDurationRange(t *testing.T) {
	// The paper: kernel durations vary from 3us to 3ms; average per model in
	// roughly 10us..300us for well-deployable apps.
	cfg := sim.DefaultConfig()
	for _, name := range Names() {
		app := MustGet(name)
		for i := range app.Kernels {
			k := &app.Kernels[i]
			if !k.IsCompute() {
				continue
			}
			d := k.IsolatedDuration(cfg.SMs, cfg.PCIeBytesPerNS)
			if d < 1*sim.Microsecond || d > 4*sim.Millisecond {
				t.Errorf("%s kernel %s: full-GPU duration %v outside [1us, 4ms]", name, k.Name, d)
			}
		}
	}
}

func TestModelHeterogeneity(t *testing.T) {
	// NasNet kernels must be much shorter on average than VGG kernels —
	// that contrast is what exercises squad-size tradeoffs.
	vgg := MustGet("vgg11").MeanKernelDuration(108)
	nas := MustGet("nasnet").MeanKernelDuration(108)
	if nas >= vgg {
		t.Errorf("mean kernel durations: nasnet %v >= vgg %v, want nasnet shorter", nas, vgg)
	}
}

func TestBERTUsesTensorCores(t *testing.T) {
	bert := MustGet("bert")
	tc := 0
	for i := range bert.Kernels {
		if bert.Kernels[i].TensorCore {
			tc++
		}
	}
	if tc == 0 {
		t.Error("bert has no tensor-core kernels")
	}
	vgg := MustGet("vgg11")
	for i := range vgg.Kernels {
		if vgg.Kernels[i].TensorCore {
			t.Error("vgg11 has tensor-core kernels; paper says only BERT inference does")
			break
		}
	}
}

func TestInferenceAppsHaveMemcpys(t *testing.T) {
	for _, app := range InferenceApps() {
		if app.Kernels[0].Kind != sim.MemcpyH2D {
			t.Errorf("%s: first kernel is %v, want h2d input copy", app.Name, app.Kernels[0].Kind)
		}
		last := app.Kernels[len(app.Kernels)-1]
		if last.Kind != sim.MemcpyD2H {
			t.Errorf("%s: last kernel is %v, want d2h output copy", app.Name, last.Kind)
		}
	}
}

func TestInferenceTrainingSplit(t *testing.T) {
	if n := len(InferenceApps()); n != 5 {
		t.Errorf("%d inference apps, want 5", n)
	}
	if n := len(TrainingApps()); n != 5 {
		t.Errorf("%d training apps, want 5", n)
	}
	for _, a := range InferenceApps() {
		if a.Kind != Inference {
			t.Errorf("%s kind = %v, want inference", a.Name, a.Kind)
		}
	}
	for _, a := range TrainingApps() {
		if a.Kind != Training {
			t.Errorf("%s kind = %v, want training", a.Name, a.Kind)
		}
	}
}

func TestSoloDurationScalesDown(t *testing.T) {
	// Apps must be meaningfully slower on a third of the GPU, but less than
	// 3x slower (kernels saturate below 108 SMs, so small partitions hurt
	// sub-linearly... actually super-linear slowdown is impossible).
	app := MustGet("resnet50")
	full := app.SoloDuration(108, 25)
	third := app.SoloDuration(36, 25)
	if third <= full {
		t.Errorf("solo at 36 SMs (%v) not slower than at 108 (%v)", third, full)
	}
	if third > 3*full+sim.Millisecond {
		t.Errorf("solo at 36 SMs (%v) more than 3x full (%v): model broken", third, full)
	}
}

func TestSoloDurationMonotoneProperty(t *testing.T) {
	app := MustGet("vgg11")
	f := func(a, b uint8) bool {
		s1, s2 := int(a%108)+1, int(b%108)+1
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		return app.SoloDuration(s2, 25) <= app.SoloDuration(s1, 25)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSynthetic(t *testing.T) {
	app := Synthetic("syn", 10, 100*sim.Microsecond, 54, 0.5, 7)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if app.NumKernels() != 10 {
		t.Errorf("kernel count = %d, want 10", app.NumKernels())
	}
	// Average full-GPU duration should be near 100us (jitter is 0.5-1.5x).
	mean := app.MeanKernelDuration(108)
	if mean < 50*sim.Microsecond || mean > 150*sim.Microsecond {
		t.Errorf("mean duration %v, want ~100us", mean)
	}
	// Determinism.
	app2 := Synthetic("syn", 10, 100*sim.Microsecond, 54, 0.5, 7)
	for i := range app.Kernels {
		if app.Kernels[i] != app2.Kernels[i] {
			t.Fatal("Synthetic not deterministic for equal seeds")
		}
	}
}

func TestSyntheticPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Synthetic(n=0) did not panic")
		}
	}()
	Synthetic("bad", 0, sim.Microsecond, 1, 0, 1)
}

func TestMemoryFootprints(t *testing.T) {
	// All five inference apps must fit a 40GB device together (the paper
	// co-locates up to 8 instances).
	var total int64
	for _, a := range InferenceApps() {
		if a.MemoryBytes <= 0 {
			t.Errorf("%s: no memory footprint", a.Name)
		}
		total += a.MemoryBytes
	}
	if total >= 40<<30 {
		t.Errorf("inference apps need %d bytes, exceeding a 40GB device", total)
	}
}

func TestKindString(t *testing.T) {
	if Inference.String() != "inference" || Training.String() != "training" {
		t.Error("Kind.String mnemonics wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := MustGet("bert")
	b := a.Clone()
	b.Kernels[3].Work++
	if a.Kernels[3].Work == b.Kernels[3].Work {
		t.Error("Clone shares kernel backing array")
	}
}

func TestMaxKernelDuration(t *testing.T) {
	app := MustGet("vgg11")
	max := app.MaxKernelDuration(108)
	if max <= 0 {
		t.Fatal("no max duration")
	}
	for i := range app.Kernels {
		if d := app.Kernels[i].IsolatedDuration(108, 25); d > max {
			t.Errorf("kernel %d duration %v exceeds reported max %v", i, d, max)
		}
	}
	// Fewer SMs cannot shrink the max.
	if app.MaxKernelDuration(36) < max {
		t.Error("max duration shrank with fewer SMs")
	}
}

func TestWithGraphsPartition(t *testing.T) {
	app := MustGet("resnet50").WithGraphs(16) // 80 kernels -> 16,32,48,64,80
	if err := app.ValidateGraphs(); err != nil {
		t.Fatal(err)
	}
	if len(app.GraphEnds) != 5 || app.GraphEnds[4] != 80 {
		t.Errorf("graph ends = %v", app.GraphEnds)
	}
	// Original untouched.
	if MustGet("resnet50").GraphEnds != nil {
		t.Error("WithGraphs mutated the catalog copy source")
	}
}

func TestWithGraphsPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WithGraphs(0) did not panic")
		}
	}()
	MustGet("vgg11").WithGraphs(0)
}
