package model

import (
	"fmt"
	"math/rand"

	"bless/internal/sim"
)

// Autoregressive builds an LLM-inference-like application, the dynamic
// workload the paper's discussion (§6.10) proposes handling by treating each
// forward pass as its own DAG. This reproduction models a fixed-length
// generation as one stationary request DAG:
//
//   - a PREFILL phase: a few large tensor-core GEMM kernels whose work
//     scales with the prompt length — compute-dense, saturating the GPU;
//   - decodeSteps DECODE phases: per generated token, a handful of small
//     memory-bound kernels (attention over the KV cache, layernorms) that
//     individually occupy only part of the device.
//
// The phase contrast is the interesting property for GPU sharing: prefill
// saturates the device while decode leaves wide bubbles a co-located tenant
// can absorb — exactly the spatial-temporal opportunity BLESS targets.
func Autoregressive(name string, promptTokens, decodeSteps int, seed int64) *App {
	if promptTokens < 1 || decodeSteps < 1 {
		panic("model: Autoregressive needs promptTokens >= 1 and decodeSteps >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	var kernels []sim.Kernel

	// Input prompt transfer: ~2KB per token of activations.
	kernels = append(kernels, sim.Kernel{
		Name: name + "/h2d_prompt", Kind: sim.MemcpyH2D, Bytes: int64(promptTokens) * 2 << 10,
	})

	// Prefill: 8 GEMM layers, each ~6us of full-GPU time per 32 prompt
	// tokens (tensor cores), compute-bound, highly parallel.
	prefillLayers := 8
	for l := 0; l < prefillLayers; l++ {
		perLayerUS := 6.0 * float64(promptTokens) / 32.0 * (0.8 + 0.4*rng.Float64())
		if perLayerUS < 3 {
			perLayerUS = 3
		}
		sat := 96 + rng.Intn(13)
		kernels = append(kernels, sim.Kernel{
			Name:          fmt.Sprintf("%s/prefill_gemm_%d", name, l),
			Kind:          sim.Compute,
			Work:          sim.Time(perLayerUS*float64(sat)) * sim.Microsecond,
			SaturationSMs: sat,
			MemIntensity:  0.15 + 0.15*rng.Float64(),
			TensorCore:    true,
		})
	}

	// Decode: per token, 4 kernels — two small GEMVs (low occupancy), one
	// KV-cache attention read (memory-bound), one layernorm/sampling tail.
	for s := 0; s < decodeSteps; s++ {
		step := []sim.Kernel{
			{
				Name: fmt.Sprintf("%s/decode%d_gemv_a", name, s), Kind: sim.Compute,
				Work:          sim.Time(36*(0.8+0.4*rng.Float64())) * sim.Microsecond * 24,
				SaturationSMs: 24, MemIntensity: 0.55 + 0.2*rng.Float64(), TensorCore: true,
			},
			{
				Name: fmt.Sprintf("%s/decode%d_attn_kv", name, s), Kind: sim.Compute,
				Work:          sim.Time(54*(0.8+0.4*rng.Float64())) * sim.Microsecond * 36,
				SaturationSMs: 36, MemIntensity: 0.8 + 0.15*rng.Float64(),
			},
			{
				Name: fmt.Sprintf("%s/decode%d_gemv_b", name, s), Kind: sim.Compute,
				Work:          sim.Time(36*(0.8+0.4*rng.Float64())) * sim.Microsecond * 24,
				SaturationSMs: 24, MemIntensity: 0.55 + 0.2*rng.Float64(), TensorCore: true,
			},
			{
				Name: fmt.Sprintf("%s/decode%d_norm", name, s), Kind: sim.Compute,
				Work:          sim.Time(15*(0.8+0.4*rng.Float64())) * sim.Microsecond * 48,
				SaturationSMs: 48, MemIntensity: 0.6 + 0.2*rng.Float64(),
			},
		}
		kernels = append(kernels, step...)
	}

	// Generated-token output transfer.
	kernels = append(kernels, sim.Kernel{
		Name: name + "/d2h_tokens", Kind: sim.MemcpyD2H, Bytes: int64(decodeSteps) * 512,
	})

	return &App{
		Name:        name,
		Kind:        Inference,
		Kernels:     kernels,
		MemoryBytes: 6 << 30, // weights + KV cache
	}
}
