package invariant

// The determinism digest is a running FNV-1a 64 fold over every observed
// event: kernel enqueues, starts and ends, allocation snapshots, and decision
// bus events. Each record is tagged so reordering across record kinds cannot
// cancel out. Two runs of the same configuration must agree bit-for-bit; the
// first divergence is nondeterminism (map iteration order, host time leakage,
// data races) made visible as a one-word mismatch.

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211

	tagEnqueue  uint64 = 0xe1
	tagStart    uint64 = 0x51
	tagEnd      uint64 = 0xed
	tagSample   uint64 = 0xa5
	tagDecision uint64 = 0xdc
	tagFloat    uint64 = 0xf0
	tagChurn    uint64 = 0xc4
	tagRequest  uint64 = 0x4e
	tagRemoved  uint64 = 0xde
)

// mix folds a tagged 64-bit word into the digest, byte by byte.
func (c *Checker) mix(tag, v uint64) {
	h := c.digest
	h = (h ^ tag) * fnvPrime
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	c.digest = h
}

// mixString folds a length-prefixed string into the digest.
func (c *Checker) mixString(s string) {
	h := c.digest
	h = (h ^ uint64(len(s))) * fnvPrime
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	c.digest = h
}
