package invariant

import (
	"strings"
	"testing"
)

func TestCheckServeClean(t *testing.T) {
	vs := CheckServe([]ServeLaneStats{
		{Tenant: "calm", Interval: 100, Service: 50, Bound: 200, Offered: 10, Admitted: 10, NextSeq: 10},
		{Tenant: "hot", Interval: 10, Service: 50, Bound: 200, Offered: 10, Admitted: 6, Shed: 4, NextSeq: 10},
	})
	if len(vs) != 0 {
		t.Errorf("clean lanes flagged: %v", vs)
	}
}

func TestCheckServeViolations(t *testing.T) {
	cases := []struct {
		name string
		lane ServeLaneStats
		want string
	}{
		{
			name: "lost request",
			lane: ServeLaneStats{Tenant: "a", Interval: 10, Service: 50, Bound: 100, Offered: 10, Admitted: 8, Shed: 1, NextSeq: 10},
			want: "lost requests",
		},
		{
			name: "cursor drift",
			lane: ServeLaneStats{Tenant: "a", Interval: 10, Service: 50, Bound: 100, Offered: 10, Admitted: 9, Shed: 1, NextSeq: 9},
			want: "seq cursor",
		},
		{
			name: "in-quota shed",
			lane: ServeLaneStats{Tenant: "a", Interval: 60, Service: 50, Bound: 100, Offered: 10, Admitted: 9, Shed: 1, NextSeq: 10},
			want: "within its quota rate",
		},
	}
	for _, tc := range cases {
		vs := CheckServe([]ServeLaneStats{tc.lane})
		if len(vs) == 0 {
			t.Errorf("%s: not flagged", tc.name)
			continue
		}
		found := false
		for _, v := range vs {
			if v.Class != Serve {
				t.Errorf("%s: class %v, want Serve", tc.name, v.Class)
			}
			if strings.Contains(v.Msg, tc.want) {
				found = true
			}
			if v.Repro == "" {
				t.Errorf("%s: no repro recorded", tc.name)
			}
		}
		if !found {
			t.Errorf("%s: no violation mentions %q: %v", tc.name, tc.want, vs)
		}
	}
	if Serve.String() != "serve" {
		t.Errorf("Serve class renders %q", Serve.String())
	}
}
