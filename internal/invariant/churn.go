package invariant

// Churn and delivery accounting. The harness notifies the checker of client
// lifecycle transitions (join, leave, crash), effective-quota changes from
// re-provisioning, and the request lifecycle (submit / complete). The checker
// uses these to (a) suspend quota and bubble accrual for a settle window
// around each reconfiguration — attainment is only judged in steady state —
// and (b) verify the Delivery invariant: no request of a present client is
// lost or completed twice, and injected kernel faults are conserved as
// retries plus aborts.
//
// Every notification is folded into the determinism digest, so churn
// schedules are part of the replayable fingerprint.

import (
	"math"

	"bless/internal/sim"
)

// churn integrates history up to at, mutates state via f, and opens a settle
// window. Integration must run before the mutation (the old rates applied up
// to this instant), and lastSample must advance so the elapsed interval is
// not integrated a second time at the next allocation snapshot.
func (c *Checker) churn(at sim.Time, f func()) {
	c.integrate(at)
	f()
	if at > c.lastSample {
		c.lastSample = at
	}
	if until := at + c.opts.SettleWindow; until > c.suspendUntil {
		c.suspendUntil = until
	}
	c.churnEvents++
}

// SetClientActive marks a declared client present (joined) or absent (left or
// crashed) from at onward. Inactive clients accrue no quota entitlement and
// are exempt from the end-of-run quota and delivery verdicts — the guarantees
// cover surviving clients.
func (c *Checker) SetClientActive(at sim.Time, id int, active bool) {
	if id < 0 || id >= len(c.active) {
		return
	}
	c.churn(at, func() { c.active[id] = active })
	c.mix(tagChurn, uint64(at))
	c.mix(tagChurn, uint64(id))
	v := uint64(0)
	if active {
		v = 1
	}
	c.mix(tagChurn, v)
}

// SetClientQuota updates a client's effective quota after re-provisioning
// (see sharing.QuotaReporter). Attainment from at onward is judged against
// the new share.
func (c *Checker) SetClientQuota(at sim.Time, id int, quota float64) {
	if id < 0 || id >= len(c.quotaSMs) {
		return
	}
	c.churn(at, func() {
		c.quotaSMs[id] = quota * float64(c.cfg.SMs)
		c.clients[id].Quota = quota
	})
	c.mix(tagChurn, uint64(at))
	c.mix(tagChurn, uint64(id))
	c.mix(tagFloat, math.Float64bits(quota))
}

// RequestSubmitted records one request handed to the scheduler for client id.
func (c *Checker) RequestSubmitted(at sim.Time, id int) {
	if id < 0 || id >= len(c.submitted) {
		return
	}
	c.submitted[id]++
	c.mix(tagRequest, uint64(at))
	c.mix(tagRequest, uint64(id))
}

// RequestCompleted records one request finishing for client id — successfully
// (failed false) or aborted by the scheduler (failed true). A completion
// count exceeding the submission count is an immediate Delivery violation
// (a duplicated completion); lost requests are detected at Report time.
func (c *Checker) RequestCompleted(at sim.Time, id int, failed bool) {
	if id < 0 || id >= len(c.submitted) {
		return
	}
	if failed {
		c.failedReq[id]++
	} else {
		c.completedReq[id]++
	}
	if done := c.completedReq[id] + c.failedReq[id]; done > c.submitted[id] {
		c.violate(Delivery, at,
			"client %d completed %d requests but only %d were submitted: a completion was duplicated",
			id, done, c.submitted[id])
	}
	c.mix(tagRequest, uint64(at))
	c.mix(tagRequest, uint64(id))
	v := uint64(0)
	if failed {
		v = 1
	}
	c.mix(tagRequest, v)
}

// KernelsRemoved implements sim.RemovalTracer: crash teardown cancels a dead
// client's pending launches, so the checker drops them from its FIFO model
// (they will never start) and folds the cancellation into the digest.
func (c *Checker) KernelsRemoved(at sim.Time, q *sim.Queue, ks []*sim.Kernel) {
	c.monotonic(at, "kernel removal", q)
	s := c.qs(q)
	for _, k := range ks {
		for i, fk := range s.fifo {
			if fk == k {
				s.fifo = append(s.fifo[:i], s.fifo[i+1:]...)
				break
			}
		}
		c.mix(tagRemoved, uint64(at))
		c.mixString(q.Label())
		c.mixString(k.Name)
	}
}
