package invariant

import (
	"fmt"

	"bless/internal/sim"
)

// ServeLaneStats is one tenant lane's accounting as the serve front end
// reports it (see core.ServeLane and blessd's ServeStats).
type ServeLaneStats struct {
	// Tenant names the lane.
	Tenant string
	// Interval is the nominal inter-arrival gap; Service the bubble-free
	// per-request cost at the tenant's quota; Bound the admission delay
	// bound.
	Interval, Service, Bound sim.Time
	// Offered, Admitted and Shed count decisions; NextSeq is the next
	// expected per-tenant sequence number.
	Offered, Admitted, Shed uint64
	NextSeq                 int
}

// CheckServe verifies the serve path's admission contract over the final
// per-tenant lane statistics:
//
//   - No lost request: every offered request was decided exactly once, so
//     admitted+shed == offered and the lane consumed exactly offered
//     contiguous seqs (NextSeq == offered — the lane itself panics on a gap
//     or replay, this catches the counters drifting from the seq cursor).
//   - Shed fairness: a tenant offering at or below its provisioned
//     bubble-free rate (interval >= iso service time) is never shed — the
//     quota model promised that throughput, so any shed of in-quota load is
//     an admission-control breach, not an overload outcome.
func CheckServe(lanes []ServeLaneStats) []Violation {
	var out []Violation
	for _, l := range lanes {
		repro := fmt.Sprintf("tenant=%s interval=%d service=%d bound=%d", l.Tenant, l.Interval, l.Service, l.Bound)
		if l.Admitted+l.Shed != l.Offered {
			out = append(out, Violation{
				Class: Serve,
				Msg:   fmt.Sprintf("serve: tenant %s lost requests: offered %d != admitted %d + shed %d", l.Tenant, l.Offered, l.Admitted, l.Shed),
				Repro: repro,
			})
		}
		if uint64(l.NextSeq) != l.Offered {
			out = append(out, Violation{
				Class: Serve,
				Msg:   fmt.Sprintf("serve: tenant %s seq cursor %d disagrees with offered %d (non-contiguous intake)", l.Tenant, l.NextSeq, l.Offered),
				Repro: repro,
			})
		}
		if l.Interval >= l.Service && l.Shed > 0 {
			out = append(out, Violation{
				Class: Serve,
				Msg:   fmt.Sprintf("serve: tenant %s offers within its quota rate (interval %d >= service %d) yet shed %d requests", l.Tenant, l.Interval, l.Service, l.Shed),
				Repro: repro,
			})
		}
	}
	return out
}
