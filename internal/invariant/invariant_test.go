package invariant

import (
	"math/rand"
	"strings"
	"testing"

	"bless/internal/obs"
	"bless/internal/sim"
)

// runBrokenScheduler simulates a deliberately broken scheduler: two clients
// provisioned at 50% each, but the "scheduler" pins client 0's context to a
// 5-SM affinity limit while client 1 runs unrestricted. The workload is drawn
// from the given seed so the failure is replayable.
func runBrokenScheduler(t *testing.T, seed int64, opts Options) *Checker {
	t.Helper()
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())
	clients := []Client{
		{ID: 0, Name: "victim", Quota: 0.5},
		{ID: 1, Name: "hog", Quota: 0.5},
	}
	chk := New(clients, gpu.Config(), opts)
	gpu.AddTracer(chk)

	starved, err := gpu.NewContext(sim.ContextOptions{
		Label: "victim", NoMemCharge: true, SMLimit: 5, Owner: sim.OwnerTag(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := gpu.NewContext(sim.ContextOptions{
		Label: "hog", NoMemCharge: true, Owner: sim.OwnerTag(1),
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	at := sim.Time(0)
	for i := 0; i < 40; i++ {
		work := sim.Time(200+rng.Intn(200)) * sim.Microsecond
		k := &sim.Kernel{Name: "k", Kind: sim.Compute, Work: work, SaturationSMs: 108}
		starved.NewQueue("q").Enqueue(at, k, nil)
		greedy.NewQueue("q").Enqueue(at, k, nil)
		at += 50 * sim.Microsecond
	}
	eng.Run()
	return chk
}

// TestBrokenSchedulerQuotaViolationCaught is the acceptance test: a seeded
// quota violation must be detected and the violation must carry the
// replayable seed.
func TestBrokenSchedulerQuotaViolationCaught(t *testing.T) {
	const repro = "go test -run TestBrokenSchedulerQuotaViolationCaught ./internal/invariant  # seed=1337"
	chk := runBrokenScheduler(t, 1337, Options{
		Enforce: []Class{Conservation, Order, Quota},
		Repro:   repro,
	})
	rep := chk.Report()

	var quota *Violation
	for i := range rep.Violations {
		if rep.Violations[i].Class == Quota {
			quota = &rep.Violations[i]
			break
		}
	}
	if quota == nil {
		t.Fatalf("broken scheduler produced no quota violation; report: %+v", rep.Clients)
	}
	if !strings.Contains(quota.Msg, "victim") {
		t.Errorf("violation does not name the starved client: %s", quota.Msg)
	}
	if !strings.Contains(quota.Error(), "seed=1337") {
		t.Errorf("violation error lacks the replayable seed: %s", quota.Error())
	}
	// The starved client's report must show the shortfall; the hog is fine.
	if !rep.Clients[0].Violated {
		t.Error("victim client not marked violated")
	}
	if rep.Clients[0].Share > 0.5 {
		t.Errorf("victim share = %.2f, expected far below quota", rep.Clients[0].Share)
	}
	if rep.Clients[1].Violated {
		t.Error("hog client wrongly marked violated")
	}
	// Universal classes stay clean: the broken scheduler starves, it does not
	// fabricate SMs or reorder queues.
	for _, v := range rep.Violations {
		if v.Class == Conservation || v.Class == Order {
			t.Errorf("unexpected universal violation: %v", v)
		}
	}
}

// TestQuotaUnenforcedBecomesObservation checks the enforcement split: with
// the default (universal) enforcement set, the same broken run reports the
// quota breach as an observation, not a failure.
func TestQuotaUnenforcedBecomesObservation(t *testing.T) {
	chk := runBrokenScheduler(t, 1337, Options{})
	rep := chk.Report()
	if len(rep.Violations) != 0 {
		t.Fatalf("universal-only enforcement produced violations: %v", rep.Violations)
	}
	found := false
	for _, v := range rep.Observations {
		if v.Class == Quota {
			found = true
		}
	}
	if !found {
		t.Error("quota breach missing from observations")
	}
	if rep.Err() != nil {
		t.Errorf("Err() = %v, want nil", rep.Err())
	}
}

// fakeQueue builds a real queue (the checker dereferences Queue.Context) for
// fabricated-snapshot tests.
func fakeQueue(t *testing.T, gpu *sim.GPU, label string, limit int) *sim.Queue {
	t.Helper()
	ctx, err := gpu.NewContext(sim.ContextOptions{Label: label, NoMemCharge: true, SMLimit: limit})
	if err != nil {
		t.Fatal(err)
	}
	return ctx.NewQueue("q")
}

func TestConservationDetectsFabricatedLoads(t *testing.T) {
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig()) // 108 SMs

	t.Run("over-capacity", func(t *testing.T) {
		chk := New(nil, gpu.Config(), Options{})
		q := fakeQueue(t, gpu, "a", 0)
		chk.AllocationsChanged(0, []sim.QueueLoad{{Queue: q, Alloc: 200, Want: 200}})
		rep := chk.Report()
		if len(rep.Violations) == 0 || rep.Violations[0].Class != Conservation {
			t.Fatalf("200 SMs on a 108-SM device not flagged: %+v", rep.Violations)
		}
		if !strings.Contains(rep.Violations[0].Msg, "exceeds capacity") {
			t.Errorf("unexpected message: %s", rep.Violations[0].Msg)
		}
	})

	t.Run("over-context-limit", func(t *testing.T) {
		chk := New(nil, gpu.Config(), Options{})
		q := fakeQueue(t, gpu, "b", 10)
		chk.AllocationsChanged(0, []sim.QueueLoad{{Queue: q, Alloc: 30, Want: 30}})
		rep := chk.Report()
		if len(rep.Violations) == 0 || rep.Violations[0].Class != Conservation {
			t.Fatalf("30 SMs under a 10-SM affinity limit not flagged: %+v", rep.Violations)
		}
		if !strings.Contains(rep.Violations[0].Msg, "SM-affinity limit") {
			t.Errorf("unexpected message: %s", rep.Violations[0].Msg)
		}
	})

	t.Run("grant-above-demand", func(t *testing.T) {
		chk := New(nil, gpu.Config(), Options{})
		q := fakeQueue(t, gpu, "c", 0)
		k := &sim.Kernel{Name: "k", Kind: sim.Compute, Work: sim.Microsecond, SaturationSMs: 8}
		chk.AllocationsChanged(0, []sim.QueueLoad{{Queue: q, Running: k, Alloc: 50, Demand: 8, Want: 8}})
		rep := chk.Report()
		if len(rep.Violations) == 0 || rep.Violations[0].Class != Conservation {
			t.Fatalf("50-SM grant for an 8-SM demand not flagged: %+v", rep.Violations)
		}
	})
}

func TestOrderDetectsSyntheticViolations(t *testing.T) {
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())
	k1 := &sim.Kernel{Name: "k1", Kind: sim.Compute, Work: sim.Microsecond, SaturationSMs: 8}
	k2 := &sim.Kernel{Name: "k2", Kind: sim.Compute, Work: sim.Microsecond, SaturationSMs: 8}

	t.Run("time-regression", func(t *testing.T) {
		chk := New(nil, gpu.Config(), Options{})
		q := fakeQueue(t, gpu, "r", 0)
		chk.KernelEnqueued(100, q, k1)
		chk.KernelEnqueued(50, q, k2) // regresses
		rep := chk.Report()
		if len(rep.Violations) == 0 || rep.Violations[0].Class != Order {
			t.Fatalf("time regression not flagged: %+v", rep.Violations)
		}
		if !strings.Contains(rep.Violations[0].Msg, "virtual time regressed") {
			t.Errorf("unexpected message: %s", rep.Violations[0].Msg)
		}
	})

	t.Run("fifo-reorder", func(t *testing.T) {
		chk := New(nil, gpu.Config(), Options{})
		q := fakeQueue(t, gpu, "f", 0)
		chk.KernelEnqueued(0, q, k1)
		chk.KernelEnqueued(1, q, k2)
		chk.KernelStart(2, q, k2) // k1 was first
		rep := chk.Report()
		if len(rep.Violations) == 0 || rep.Violations[0].Class != Order {
			t.Fatalf("FIFO reorder not flagged: %+v", rep.Violations)
		}
		if !strings.Contains(rep.Violations[0].Msg, "FIFO") {
			t.Errorf("unexpected message: %s", rep.Violations[0].Msg)
		}
	})

	t.Run("overlapping-starts", func(t *testing.T) {
		chk := New(nil, gpu.Config(), Options{})
		q := fakeQueue(t, gpu, "o", 0)
		chk.KernelEnqueued(0, q, k1)
		chk.KernelEnqueued(1, q, k2)
		chk.KernelStart(2, q, k1)
		chk.KernelStart(3, q, k2) // k1 never ended
		rep := chk.Report()
		if len(rep.Violations) == 0 || rep.Violations[0].Class != Order {
			t.Fatalf("overlapping starts not flagged: %+v", rep.Violations)
		}
	})

	t.Run("mismatched-end", func(t *testing.T) {
		chk := New(nil, gpu.Config(), Options{})
		q := fakeQueue(t, gpu, "m", 0)
		chk.KernelEnqueued(0, q, k1)
		chk.KernelStart(1, q, k1)
		chk.KernelEnd(2, q, k2, 8) // wrong kernel
		rep := chk.Report()
		if len(rep.Violations) == 0 || rep.Violations[0].Class != Order {
			t.Fatalf("mismatched completion not flagged: %+v", rep.Violations)
		}
	})
}

// cleanRun drives a fair two-context workload through a real simulation and
// returns the checker's report and digest.
func cleanRun(t *testing.T, seed int64) *Report {
	t.Helper()
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())
	clients := []Client{
		{ID: 0, Name: "a", Quota: 0.5},
		{ID: 1, Name: "b", Quota: 0.5},
	}
	chk := New(clients, gpu.Config(), Options{Enforce: All()})
	gpu.AddTracer(chk)

	bus := obs.NewBus()
	bus.Subscribe(chk)

	rng := rand.New(rand.NewSource(seed))
	for i, cl := range clients {
		ctx, err := gpu.NewContext(sim.ContextOptions{
			Label: cl.Name, NoMemCharge: true, Owner: sim.OwnerTag(cl.ID),
		})
		if err != nil {
			t.Fatal(err)
		}
		q := ctx.NewQueue("q")
		at := sim.Time(0)
		for j := 0; j < 30; j++ {
			work := sim.Time(100+rng.Intn(150)) * sim.Microsecond
			k := &sim.Kernel{Name: "k", Kind: sim.Compute, Work: work, SaturationSMs: 108}
			q.Enqueue(at, k, nil)
			at += 20 * sim.Microsecond
		}
		bus.Emit(obs.Event{At: sim.Time(i), Kind: obs.KindSquadFormed, Client: cl.Name})
	}
	eng.Run()
	return chk.Report()
}

// TestFairRunSatisfiesAllInvariants is the negative control: an even
// max-min-fair split with saturating demand must pass every class.
func TestFairRunSatisfiesAllInvariants(t *testing.T) {
	rep := cleanRun(t, 7)
	if len(rep.Violations) != 0 {
		t.Fatalf("fair run violated invariants: %v", rep.Violations)
	}
	if rep.Kernels != 60 {
		t.Errorf("kernels = %d, want 60", rep.Kernels)
	}
	if rep.Samples == 0 || rep.Events != 2 {
		t.Errorf("samples = %d events = %d, want >0 and 2", rep.Samples, rep.Events)
	}
	for _, cr := range rep.Clients {
		if cr.Share < 0.85 {
			t.Errorf("client %q share = %.2f under a fair split", cr.Client.Name, cr.Share)
		}
	}
}

// TestDigestDeterminismAndSensitivity: same seed twice → identical digests;
// different seed → different digest.
func TestDigestDeterminismAndSensitivity(t *testing.T) {
	a := cleanRun(t, 7)
	b := cleanRun(t, 7)
	c := cleanRun(t, 8)
	if a.Digest != b.Digest {
		t.Errorf("same-seed digests differ: %x vs %x", a.Digest, b.Digest)
	}
	if a.Digest == c.Digest {
		t.Errorf("different-seed digests collide: %x", a.Digest)
	}
	if a.Digest == fnvOffset {
		t.Error("digest never folded any event")
	}
}

// TestMaxViolationsCap: a storm of violations is capped and counted.
func TestMaxViolationsCap(t *testing.T) {
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())
	chk := New(nil, gpu.Config(), Options{MaxViolations: 3})
	q := fakeQueue(t, gpu, "cap", 0)
	for i := 0; i < 10; i++ {
		chk.AllocationsChanged(sim.Time(i), []sim.QueueLoad{{Queue: q, Alloc: 500, Want: 500}})
	}
	rep := chk.Report()
	if len(rep.Violations) != 3 {
		t.Errorf("stored violations = %d, want 3", len(rep.Violations))
	}
	if rep.Dropped != 7 {
		t.Errorf("dropped = %d, want 7", rep.Dropped)
	}
}

// TestBubbleDetection fabricates a schedule where half the device idles while
// deferred demand exists, and checks the bubble verdict plus the tolerance
// gate on the slack knob.
func TestBubbleDetection(t *testing.T) {
	eng := sim.NewEngine()
	gpu := sim.NewGPU(eng, sim.DefaultConfig())

	run := func(idleSMs float64) *Report {
		chk := New(nil, gpu.Config(), Options{Enforce: All()})
		q := fakeQueue(t, gpu, "bub", 0)
		k := &sim.Kernel{Name: "k", Kind: sim.Compute, Work: sim.Millisecond, SaturationSMs: 108}
		// Constant picture over 10ms: kernel granted 108-idle SMs while
		// wanting all 108.
		load := []sim.QueueLoad{{Queue: q, Running: k, Alloc: 108 - idleSMs, Demand: 108, Want: 108}}
		chk.AllocationsChanged(0, load)
		chk.AllocationsChanged(10*sim.Millisecond, load)
		chk.AllocationsChanged(10*sim.Millisecond, nil) // close the window
		return chk.Report()
	}

	bubbly := run(54)
	if bubbly.BubbleFraction < 0.99 {
		t.Fatalf("bubble fraction = %.2f, want ~1", bubbly.BubbleFraction)
	}
	found := false
	for _, v := range bubbly.Violations {
		if v.Class == Bubble {
			found = true
		}
	}
	if !found {
		t.Errorf("half-idle device under full demand not flagged: %+v", bubbly.Violations)
	}

	tight := run(1) // within BubbleSlackSMs
	if tight.BubbleTime != 0 {
		t.Errorf("1 idle SM counted as bubble time: %v", tight.BubbleTime)
	}
	for _, v := range tight.Violations {
		if v.Class == Bubble {
			t.Errorf("slack-level idling wrongly flagged: %v", v)
		}
	}
}
