package invariant

import (
	"fmt"
	"sort"

	"bless/internal/sim"
)

// FleetChecker verifies the Fleet invariant class. The fleet control plane
// drives it directly with control-plane events (devices added/crashed,
// tenants placed/released, requests routed/re-routed/completed); the
// checker cross-checks them against three properties:
//
//   - Delivery: every routed request of a surviving tenant completes
//     exactly once, across migrations, crash re-routing and autoscaling.
//     A duplicate completion or a completion that was never routed is an
//     immediate violation; a request still outstanding at Report (for a
//     non-evicted tenant) is a lost request.
//   - Quota conservation: a tenant is provisioned on at most two devices at
//     any instant (host plus a draining migration source) and, at Report,
//     every surviving tenant on exactly one.
//   - Capacity: no device's subscribed quota exceeds its SM capacity
//     (fraction 1) within tolerance, at any event.
//
// Every event also folds into an FNV-1a digest (virtual times included), so
// two runs of one scenario — serial vs parallel workers, permuted
// same-instant migration triggers — must agree bit-for-bit.
type FleetChecker struct {
	opts FleetOptions

	devices    map[int]*fcDevice
	tenants    map[string]*fcTenant
	violations []Violation

	digest  uint64
	events  int64
	routed  int64
	done    int64
	rerouts int64
}

// FleetOptions configures a FleetChecker.
type FleetOptions struct {
	// Tolerance pads the capacity check (default 1e-6).
	Tolerance float64
	// Repro is attached to every violation ("blessbench -fleet -seed 7").
	Repro string
	// MaxViolations bounds recording (default 64; 0 = default).
	MaxViolations int
}

type fcDevice struct {
	sms        int
	subscribed float64
	dead       bool
	retired    bool
}

type fcTenant struct {
	quota       float64
	residencies map[int]int // device -> residency count
	outstanding map[int]bool
	completed   map[int]bool
	evicted     bool
}

// NewFleetChecker returns a checker ready to receive fleet events.
func NewFleetChecker(opts FleetOptions) *FleetChecker {
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-6
	}
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = 64
	}
	return &FleetChecker{
		opts:    opts,
		devices: make(map[int]*fcDevice),
		tenants: make(map[string]*fcTenant),
		digest:  1469598103934665603, // FNV-1a offset basis
	}
}

func (c *FleetChecker) violate(at sim.Time, format string, args ...any) {
	if len(c.violations) >= c.opts.MaxViolations {
		return
	}
	c.violations = append(c.violations, Violation{
		Class: Fleet, At: at,
		Msg:   fmt.Sprintf(format, args...),
		Repro: c.opts.Repro,
	})
}

// mix folds one event into the determinism digest.
func (c *FleetChecker) mix(vals ...uint64) {
	const prime = 1099511628211
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			c.digest ^= (v >> (8 * i)) & 0xff
			c.digest *= prime
		}
	}
	c.events++
}

func mixStr(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (c *FleetChecker) tenant(name string) *fcTenant {
	t, ok := c.tenants[name]
	if !ok {
		t = &fcTenant{
			residencies: make(map[int]int),
			outstanding: make(map[int]bool),
			completed:   make(map[int]bool),
		}
		c.tenants[name] = t
	}
	return t
}

// DeviceAdded records a pool member (initial or autoscaled).
func (c *FleetChecker) DeviceAdded(at sim.Time, dev, sms int) {
	c.devices[dev] = &fcDevice{sms: sms}
	c.mix(1, uint64(at), uint64(dev), uint64(sms))
}

// DeviceRetired records an autoscaler cordon.
func (c *FleetChecker) DeviceRetired(at sim.Time, dev int) {
	if d, ok := c.devices[dev]; ok {
		d.retired = true
	}
	c.mix(2, uint64(at), uint64(dev))
}

// DeviceCrashed records a device loss.
func (c *FleetChecker) DeviceCrashed(at sim.Time, dev int) {
	if d, ok := c.devices[dev]; ok {
		d.dead = true
	}
	c.mix(3, uint64(at), uint64(dev))
}

// TenantAdmitted records a residency: initial placement, migration target,
// or crash re-placement.
func (c *FleetChecker) TenantAdmitted(at sim.Time, tenant string, dev int, quota float64) {
	t := c.tenant(tenant)
	t.quota = quota
	t.residencies[dev]++
	total := 0
	for _, n := range t.residencies {
		total += n
	}
	if total > 2 {
		c.violate(at, "tenant %s provisioned on %d residencies (max 2: host + draining source)", tenant, total)
	}
	d, ok := c.devices[dev]
	if !ok {
		c.violate(at, "tenant %s admitted on unknown device %d", tenant, dev)
	} else {
		if d.dead {
			c.violate(at, "tenant %s admitted on crashed device %d", tenant, dev)
		}
		d.subscribed += quota
		if d.subscribed > 1+c.opts.Tolerance {
			c.violate(at, "device %d subscribed quota %.6f exceeds SM capacity", dev, d.subscribed)
		}
	}
	c.mix(4, uint64(at), mixStr(tenant), uint64(dev), uint64(quota*1e9))
}

// TenantReleased records a residency ending: drain complete or crash
// teardown.
func (c *FleetChecker) TenantReleased(at sim.Time, tenant string, dev int) {
	t := c.tenant(tenant)
	if t.residencies[dev] == 0 {
		c.violate(at, "tenant %s released from device %d it was not provisioned on", tenant, dev)
	} else {
		t.residencies[dev]--
		if t.residencies[dev] == 0 {
			delete(t.residencies, dev)
		}
		if d, ok := c.devices[dev]; ok {
			d.subscribed -= t.quota
		}
	}
	c.mix(5, uint64(at), mixStr(tenant), uint64(dev))
}

// TenantEvicted records a tenant no surviving device could host; its listed
// in-flight sequences died with the crashed device and are exempt from the
// lost-request check, the same way a crashed client's are.
func (c *FleetChecker) TenantEvicted(at sim.Time, tenant string, lost []int) {
	t := c.tenant(tenant)
	t.evicted = true
	for _, seq := range lost {
		delete(t.outstanding, seq)
	}
	c.mix(6, uint64(at), mixStr(tenant), uint64(len(lost)))
}

// RequestRouted records a request dispatched to a device.
func (c *FleetChecker) RequestRouted(at sim.Time, tenant string, seq, dev int) {
	t := c.tenant(tenant)
	if t.outstanding[seq] {
		c.violate(at, "tenant %s seq %d routed twice", tenant, seq)
	}
	if t.completed[seq] {
		c.violate(at, "tenant %s seq %d routed after completing", tenant, seq)
	}
	t.outstanding[seq] = true
	c.routed++
	c.mix(7, uint64(at), mixStr(tenant), uint64(seq), uint64(dev))
}

// RequestRerouted records a crash re-submission: the sequence stays
// outstanding, only its device changes.
func (c *FleetChecker) RequestRerouted(at sim.Time, tenant string, seq, from, to int) {
	t := c.tenant(tenant)
	if !t.outstanding[seq] {
		c.violate(at, "tenant %s seq %d re-routed while not outstanding", tenant, seq)
	}
	c.rerouts++
	c.mix(8, uint64(at), mixStr(tenant), uint64(seq), uint64(from), uint64(to))
}

// RequestCompleted records a completion (success or failure — both are
// exactly-once deliveries).
func (c *FleetChecker) RequestCompleted(at sim.Time, tenant string, seq, dev int, failed bool) {
	t := c.tenant(tenant)
	if t.completed[seq] {
		c.violate(at, "tenant %s seq %d completed twice (duplicate delivery)", tenant, seq)
	}
	if !t.outstanding[seq] {
		c.violate(at, "tenant %s seq %d completed while not outstanding", tenant, seq)
	}
	delete(t.outstanding, seq)
	t.completed[seq] = true
	c.done++
	fb := uint64(0)
	if failed {
		fb = 1
	}
	c.mix(9, uint64(at), mixStr(tenant), uint64(seq), uint64(dev), fb)
}

// FleetCheckpoint is the checker's running state mid-run: the event digest
// and its feed counters, without the end-of-run checks. Two runs of one
// scenario that agree on a Checkpoint at a barrier have fed identical event
// streams up to it — the substrate of the snapshot/restore proof.
type FleetCheckpoint struct {
	Digest    uint64
	Events    int64
	Routed    int64
	Completed int64
	Rerouted  int64
	// Violations counts breaches recorded so far.
	Violations int
}

// Checkpoint returns the checker's current running state. Unlike Report it
// runs no end-of-run checks and may be called at any barrier.
func (c *FleetChecker) Checkpoint() FleetCheckpoint {
	return FleetCheckpoint{
		Digest:     c.digest,
		Events:     c.events,
		Routed:     c.routed,
		Completed:  c.done,
		Rerouted:   c.rerouts,
		Violations: len(c.violations),
	}
}

// FleetReport is the checker's verdict.
type FleetReport struct {
	// Violations are the recorded breaches (bounded by MaxViolations).
	Violations []Violation
	// Digest folds every fleet event; equal scenarios must agree.
	Digest uint64
	// Events, Routed, Completed, Rerouted count the folded activity.
	Events    int64
	Routed    int64
	Completed int64
	Rerouted  int64
	// Lost counts requests still outstanding for surviving tenants at
	// Report time — each is also a violation.
	Lost int
}

// Ok reports a clean run.
func (r *FleetReport) Ok() bool { return len(r.Violations) == 0 }

// Err returns the first violation as an error, nil when clean.
func (r *FleetReport) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return r.Violations[0]
}

// Report runs the end-of-run checks (lost requests, final placement
// cardinality) and returns the verdict. Call once, after the simulation
// drains.
func (c *FleetChecker) Report(at sim.Time) *FleetReport {
	names := make([]string, 0, len(c.tenants))
	for name := range c.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	lost := 0
	for _, name := range names {
		t := c.tenants[name]
		if t.evicted {
			continue
		}
		if n := len(t.outstanding); n > 0 {
			lost += n
			seqs := make([]int, 0, n)
			for seq := range t.outstanding {
				seqs = append(seqs, seq)
			}
			sort.Ints(seqs)
			c.violate(at, "tenant %s lost %d request(s) (first seq %d): routed but never completed", name, n, seqs[0])
		}
		total := 0
		for _, cnt := range t.residencies {
			total += cnt
		}
		if total != 1 {
			c.violate(at, "tenant %s ends provisioned on %d devices (want exactly 1)", name, total)
		}
	}
	return &FleetReport{
		Violations: c.violations,
		Digest:     c.digest,
		Events:     c.events,
		Routed:     c.routed,
		Completed:  c.done,
		Rerouted:   c.rerouts,
		Lost:       lost,
	}
}
