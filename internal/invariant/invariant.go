// Package invariant is the simulator's machine-checked safety net: a
// pluggable checker that subscribes to the sim.GPU tracer fan-out and the
// internal/obs decision-event bus and verifies, on every simulated event, the
// properties BLESS's evaluation claims and a refactor could silently break:
//
//   - Conservation — allocated SMs never exceed device capacity, no context
//     exceeds its SM-affinity limit, and no kernel receives more than it
//     demanded (busy + idle always equals capacity).
//   - Order — virtual time never regresses across device events, and each
//     device queue executes strictly FIFO, one kernel at a time.
//   - Quota — every client's long-run attained SM share covers its
//     demand-capped provisioned quota within tolerance (the paper's stringent
//     quota guarantee, §6.2).
//   - Bubble — SMs do not sit idle while deferred demand exists (a paused
//     backlog or a kernel throttled below its appetite by a context cap): the
//     bubble-lessness the system is named for (§3.2, Fig 3).
//   - Determinism — two runs of the same configuration fold their event
//     streams to the same Digest, making any hidden nondeterminism (map
//     iteration, time-of-day leakage) a one-bit failure.
//
// Conservation and Order are universal: every scheduler must satisfy them.
// Quota and Bubble are policy properties that several baselines violate by
// design (that is the paper's thesis), so they are assessed on every run but
// only enforced when listed in Options.Enforce. Every violation carries the
// offending instant and a replayable repro string, so a CI failure is one
// command to reproduce.
package invariant

import (
	"fmt"
	"math"

	"bless/internal/obs"
	"bless/internal/sim"
)

// Class enumerates the invariant families the checker verifies.
type Class int

const (
	// Conservation covers SM accounting: total allocation within capacity,
	// per-context allocations within SM-affinity limits, grants never above
	// demand.
	Conservation Class = iota
	// Order covers virtual-time monotonicity and per-queue FIFO execution.
	Order
	// Quota covers the long-run attained-share guarantee per client.
	Quota
	// Bubble covers bubble-lessness: no sustained SM idling under deferred
	// demand.
	Bubble
	// Determinism covers digest equality across same-configuration runs. The
	// checker computes the digest; comparing two runs is the caller's step
	// (see harness.VerifyDeterminism).
	Determinism
	// Delivery covers request and kernel conservation under faults and
	// churn: every submitted request of a still-present client completes
	// exactly once (lost or duplicated completions are breaches), and every
	// injected kernel fault is answered by exactly one retry or abort — no
	// kernel is lost or double-counted across the retry path.
	Delivery
	// Fleet covers the multi-device control plane: no request is lost or
	// duplicated across live migration, device crash re-routing, or
	// autoscaling; every live tenant is provisioned on exactly one device
	// at settle points (at most two mid-migration); and no device's
	// subscribed quota exceeds its SM capacity. Checked by FleetChecker,
	// which the fleet control plane drives directly — it is not part of
	// the per-device tracer-driven enforcement sets.
	Fleet
	// Serve covers the sustained-load front end's admission contract: no
	// request is lost (every offered request is decided exactly once —
	// admitted+shed == offered, seqs contiguous per tenant), and shedding
	// is fair to provisioned load — a tenant offering at or below its
	// bubble-free quota rate (interval >= iso service time) never sheds.
	// Checked by CheckServe over the serve path's per-tenant lane stats.
	Serve
)

// String names the class for messages and exports.
func (c Class) String() string {
	switch c {
	case Conservation:
		return "conservation"
	case Order:
		return "order"
	case Quota:
		return "quota"
	case Bubble:
		return "bubble"
	case Determinism:
		return "determinism"
	case Delivery:
		return "delivery"
	case Fleet:
		return "fleet"
	case Serve:
		return "serve"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Universal lists the classes every scheduler must satisfy; they are the
// default enforcement set.
func Universal() []Class { return []Class{Conservation, Order} }

// All lists every enforceable class (Determinism is verified across runs, not
// within one, so it is not part of the in-run enforcement sets).
func All() []Class { return []Class{Conservation, Order, Quota, Bubble, Delivery} }

// Violation is one detected invariant breach.
type Violation struct {
	// Class is the violated invariant family.
	Class Class
	// At is the virtual time of the offending event (the run end for the
	// run-level Quota and Bubble verdicts).
	At sim.Time
	// Msg describes the breach, including the offending event's specifics.
	Msg string
	// Repro is the command or seed/config description that replays the run.
	Repro string
}

// Error formats the violation as a one-line diagnosis.
func (v Violation) Error() string {
	s := fmt.Sprintf("invariant %s violated at %v: %s", v.Class, v.At, v.Msg)
	if v.Repro != "" {
		s += fmt.Sprintf(" (reproduce: %s)", v.Repro)
	}
	return s
}

// Client declares one deployed client for quota attribution. Contexts tagged
// with sim.OwnerTag(ID) are attributed to it.
type Client struct {
	// ID is the client's slot index, matching sharing.Client.ID.
	ID int
	// Name is the application name, for messages.
	Name string
	// Quota is the provisioned GPU fraction in (0, 1].
	Quota float64
	// StartsInactive declares a client that joins mid-run (dynamic
	// admission): no quota or delivery accounting accrues until
	// SetClientActive marks it present.
	StartsInactive bool
}

// Options tunes the checker. The zero value enables the universal classes
// with the default tolerances.
type Options struct {
	// Repro is attached to every violation: the command or seed/config that
	// reproduces the run.
	Repro string
	// Enforce lists the classes whose breaches become Violations; the rest
	// are still assessed and reported in the Report but do not fail the run.
	// Nil means Universal().
	Enforce []Class
	// FailOnViolation asks embedding layers (harness.Run) to turn enforced
	// violations into a run error.
	FailOnViolation bool

	// SMSlack is the absolute SM tolerance for conservation comparisons,
	// absorbing float rounding in the max-min water-filling. Default 0.001.
	SMSlack float64
	// QuotaTolerance is the relative shortfall a client's long-run attained
	// share may show against its demand-capped quota share. Default 0.15
	// (squad granularity, context-switch vacuums and launch gaps all eat into
	// the ideal share).
	QuotaTolerance float64
	// MinDemandTime gates the run-level Quota and Bubble verdicts: windows
	// shorter than this carry too little signal. Default 2ms.
	MinDemandTime sim.Time
	// BubbleSlackSMs is the idle/deferred SM threshold below which an
	// instant does not count as a bubble. Default 2.
	BubbleSlackSMs float64
	// BubbleMaxFraction is the largest tolerated fraction of demand time
	// spent in bubbles. Default 0.10.
	BubbleMaxFraction float64
	// MaxViolations caps stored violations; further breaches only increment
	// the dropped counter. Default 16.
	MaxViolations int
	// SettleWindow pauses quota and bubble accrual for this long after every
	// churn or re-provisioning notification: reconfiguration is not instant
	// (in-flight kernels are un-preemptable), so attainment is only judged
	// outside the transition windows — the bounded re-attainment window of
	// the churn guarantee. Default 25ms.
	SettleWindow sim.Time
}

// withDefaults fills unset tuning knobs.
func (o Options) withDefaults() Options {
	if o.Enforce == nil {
		o.Enforce = Universal()
	}
	if o.SMSlack <= 0 {
		o.SMSlack = 0.001
	}
	if o.QuotaTolerance <= 0 {
		o.QuotaTolerance = 0.15
	}
	if o.MinDemandTime <= 0 {
		o.MinDemandTime = 2 * sim.Millisecond
	}
	if o.BubbleSlackSMs <= 0 {
		o.BubbleSlackSMs = 2
	}
	if o.BubbleMaxFraction <= 0 {
		o.BubbleMaxFraction = 0.10
	}
	if o.MaxViolations <= 0 {
		o.MaxViolations = 16
	}
	if o.SettleWindow <= 0 {
		o.SettleWindow = 25 * sim.Millisecond
	}
	return o
}

// ClientReport is one client's quota assessment.
type ClientReport struct {
	// Client echoes the declaration.
	Client Client
	// DemandTime is the total time the client had a nonzero SM appetite.
	DemandTime sim.Time
	// ExpectedSMTime is the integral of min(appetite, quota SMs) over time,
	// in SM-nanoseconds — the share the quota entitles the client to, capped
	// by what its kernels could actually occupy.
	ExpectedSMTime float64
	// AttainedSMTime is the integral of the client's SM allocations, in
	// SM-nanoseconds.
	AttainedSMTime float64
	// Share is AttainedSMTime / ExpectedSMTime (1 when nothing was expected).
	Share float64
	// Violated reports whether the quota invariant flagged this client
	// (regardless of whether Quota was enforced).
	Violated bool
	// Active reports whether the client was present at the end of the run;
	// departed (crashed or left) clients are exempt from the quota and
	// delivery verdicts.
	Active bool
	// Submitted, Completed and Failed count the client's request lifecycle
	// as reported via RequestSubmitted / RequestCompleted.
	Submitted, Completed, Failed int64
}

// Report is the checker's complete end-of-run assessment.
type Report struct {
	// Violations are the enforced-class breaches, in detection order.
	Violations []Violation
	// Observations are breaches of assessed-but-unenforced classes.
	Observations []Violation
	// Dropped counts violations beyond the MaxViolations cap.
	Dropped int
	// Clients are the per-client quota assessments, in declaration order.
	Clients []ClientReport
	// BubbleTime is the total time spent with idle SMs under deferred demand.
	BubbleTime sim.Time
	// DemandTime is the total time any client had a nonzero SM appetite.
	DemandTime sim.Time
	// BubbleFraction is BubbleTime / DemandTime (0 when no demand).
	BubbleFraction float64
	// Kernels counts retired kernels; Samples counts allocation snapshots;
	// Events counts decision-bus events.
	Kernels, Samples, Events int64
	// Faults, Retries and Aborts count the fault-path events observed on the
	// decision bus; ChurnEvents counts churn/re-provisioning notifications.
	Faults, Retries, Aborts, ChurnEvents int64
	// Digest folds the complete observed event stream; equal configurations
	// must produce equal digests (the Determinism invariant).
	Digest uint64
}

// Err returns the first enforced violation as an error, or nil.
func (r *Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return r.Violations[0]
}

// queueState is the checker's per-queue bookkeeping.
type queueState struct {
	// fifo holds enqueued-but-unstarted kernels in arrival order.
	fifo []*sim.Kernel
	// running is the kernel the queue reported started and not yet ended.
	running *sim.Kernel
	// sawEnqueue records whether the queue's enqueues are visible: FIFO
	// order is only checkable for kernels observed entering the queue.
	sawEnqueue bool
}

// sampleLoad is the checker's copy of one queue's load at the last snapshot.
type sampleLoad struct {
	client      int // -1 when the owning context is unowned
	alloc, want float64
}

// clientAccum integrates one client's allocation history.
type clientAccum struct {
	demandNS   float64
	expectedIn float64 // ∫ min(want, quotaSMs) dt
	attainedIn float64 // ∫ alloc dt
}

// Checker verifies the invariants over one run. Attach it to the device with
// GPU.AddTracer (it implements sim.Tracer, sim.AllocationTracer and
// sim.EnqueueTracer) and to the decision bus with Bus.Subscribe, run the
// simulation, then call Report. A Checker observes exactly one run; it is not
// safe for concurrent use (the simulation is single-threaded).
type Checker struct {
	opts     Options
	cfg      sim.Config
	clients  []Client
	quotaSMs []float64
	enforce  map[Class]bool

	violations   []Violation
	observations []Violation
	dropped      int

	lastAt  sim.Time
	digest  uint64
	kernels int64
	samples int64
	events  int64

	queues map[*sim.Queue]*queueState

	// piecewise-constant integration state
	haveSample bool
	lastSample sim.Time
	prev       []sampleLoad
	accum      []clientAccum
	bubbleNS   float64
	demandNS   float64

	// churn state: which clients are present, and until when accrual is
	// suspended after the latest churn notification (see churn.go).
	active       []bool
	suspendUntil sim.Time
	churnEvents  int64

	// delivery accounting (see churn.go).
	submitted    []int64
	completedReq []int64
	failedReq    []int64
	faultsSeen   int64
	retriesSeen  int64
	retryAborts  int64
	abortsSeen   int64

	finishedClients []ClientReport
	finished        *Report
}

// New creates a checker for a run on a device with the given configuration.
// clients may be nil when quota attribution is not wanted (only universal
// classes are then assessable).
func New(clients []Client, cfg sim.Config, opts Options) *Checker {
	opts = opts.withDefaults()
	c := &Checker{
		opts:    opts,
		cfg:     cfg,
		clients: clients,
		enforce: make(map[Class]bool, len(opts.Enforce)),
		queues:  make(map[*sim.Queue]*queueState),
		digest:  fnvOffset,
		accum:   make([]clientAccum, len(clients)),
	}
	for _, cl := range opts.Enforce {
		c.enforce[cl] = true
	}
	c.quotaSMs = make([]float64, len(clients))
	c.active = make([]bool, len(clients))
	c.submitted = make([]int64, len(clients))
	c.completedReq = make([]int64, len(clients))
	c.failedReq = make([]int64, len(clients))
	for i, cl := range clients {
		c.quotaSMs[i] = cl.Quota * float64(cfg.SMs)
		c.active[i] = !cl.StartsInactive
	}
	return c
}

// violate records a breach of class at time at.
func (c *Checker) violate(class Class, at sim.Time, format string, args ...any) {
	v := Violation{Class: class, At: at, Msg: fmt.Sprintf(format, args...), Repro: c.opts.Repro}
	sink := &c.observations
	if c.enforce[class] {
		sink = &c.violations
	}
	if len(*sink) >= c.opts.MaxViolations {
		c.dropped++
		return
	}
	*sink = append(*sink, v)
}

// qs returns (creating) the per-queue state.
func (c *Checker) qs(q *sim.Queue) *queueState {
	s := c.queues[q]
	if s == nil {
		s = &queueState{}
		c.queues[q] = s
	}
	return s
}

// monotonic checks virtual time never regresses across device events.
func (c *Checker) monotonic(at sim.Time, what string, q *sim.Queue) {
	if at < c.lastAt {
		c.violate(Order, at, "%s on queue %q at %v after an event at %v: virtual time regressed",
			what, q.Label(), at, c.lastAt)
		return
	}
	c.lastAt = at
}

// KernelEnqueued implements sim.EnqueueTracer.
func (c *Checker) KernelEnqueued(at sim.Time, q *sim.Queue, k *sim.Kernel) {
	c.monotonic(at, "enqueue", q)
	s := c.qs(q)
	s.sawEnqueue = true
	s.fifo = append(s.fifo, k)
	c.mix(tagEnqueue, uint64(at))
	c.mixString(q.Label())
	c.mixString(k.Name)
}

// KernelStart implements sim.Tracer.
func (c *Checker) KernelStart(at sim.Time, q *sim.Queue, k *sim.Kernel) {
	c.monotonic(at, "kernel start", q)
	s := c.qs(q)
	if s.running != nil {
		c.violate(Order, at, "kernel %q started on queue %q while %q still runs: queues execute one kernel at a time",
			k.Name, q.Label(), s.running.Name)
	}
	if s.sawEnqueue {
		if len(s.fifo) == 0 {
			c.violate(Order, at, "kernel %q started on queue %q without a matching enqueue", k.Name, q.Label())
		} else {
			if s.fifo[0] != k {
				c.violate(Order, at, "queue %q dispatched %q ahead of the earlier-enqueued %q: FIFO order violated",
					q.Label(), k.Name, s.fifo[0].Name)
			}
			s.fifo = s.fifo[1:]
		}
	}
	s.running = k
	c.mix(tagStart, uint64(at))
	c.mixString(q.Label())
	c.mixString(k.Name)
}

// KernelEnd implements sim.Tracer.
func (c *Checker) KernelEnd(at sim.Time, q *sim.Queue, k *sim.Kernel, avgSMs float64) {
	c.monotonic(at, "kernel end", q)
	s := c.qs(q)
	if s.running != k {
		name := "<none>"
		if s.running != nil {
			name = s.running.Name
		}
		c.violate(Order, at, "kernel %q ended on queue %q but %s was running: completions must match starts",
			k.Name, q.Label(), name)
	}
	s.running = nil
	c.kernels++
	c.mix(tagEnd, uint64(at))
	c.mixString(q.Label())
	c.mixString(k.Name)
	c.mix(tagFloat, math.Float64bits(avgSMs))
}

// Publish implements obs.Subscriber: decision events are folded into the
// digest. Their timestamps are host-clock stamped (the host runs ahead of the
// device while it launches), so they join the digest but not the device
// monotonicity check.
func (c *Checker) Publish(ev obs.Event) {
	c.events++
	switch ev.Kind {
	case obs.KindKernelFault:
		c.faultsSeen++
	case obs.KindKernelRetry:
		c.retriesSeen++
	case obs.KindRequestAbort:
		c.abortsSeen++
		if ev.Reason == "retries-exhausted" {
			c.retryAborts++
		}
	}
	c.mix(tagDecision, uint64(ev.At))
	c.mix(tagDecision, uint64(ev.Kind))
	c.mix(tagDecision, uint64(ev.Squad))
	c.mixString(ev.Client)
	c.mixString(ev.Mode)
	c.mixString(ev.Reason)
	c.mix(tagDecision, uint64(ev.Predicted))
	c.mix(tagDecision, uint64(ev.Actual))
	c.mix(tagDecision, uint64(ev.Considered))
	for _, m := range ev.Members {
		c.mixString(m.Client)
		c.mix(tagDecision, uint64(m.From))
		c.mix(tagDecision, uint64(m.To))
		c.mix(tagDecision, uint64(m.SMs))
	}
}

// AllocationsChanged implements sim.AllocationTracer: integrate the previous
// allocation picture up to now, then verify and store the new one.
func (c *Checker) AllocationsChanged(at sim.Time, loads []sim.QueueLoad) {
	c.integrate(at)
	c.verifySample(at, loads)
	c.store(loads)
	c.lastSample = at
	c.haveSample = true
	c.samples++

	total := 0.0
	for _, ql := range loads {
		total += ql.Alloc
	}
	c.mix(tagSample, uint64(at))
	c.mix(tagFloat, math.Float64bits(total))
}

// integrate advances the quota and bubble integrals over [lastSample, at]
// using the stored (piecewise-constant) loads.
func (c *Checker) integrate(at sim.Time) {
	if !c.haveSample || at <= c.lastSample {
		return
	}
	// Inside a churn settle window neither quota nor bubble accrual runs:
	// the device is legitimately reconfiguring. Integration resumes from
	// the window's end (rates are piecewise-constant, so the partial
	// interval integrates exactly).
	start := c.lastSample
	if start < c.suspendUntil {
		if at <= c.suspendUntil {
			return
		}
		start = c.suspendUntil
	}
	dt := float64(at - start)

	// Deferred demand is measured against each kernel's unrestricted appetite
	// (Want ignores context SM caps): an ISO partition starving behind its cap
	// while the partner's share idles IS the bubble the paper attacks, so caps
	// must not excuse it.
	totalAlloc, totalWant, deferred := 0.0, 0.0, 0.0
	perClientWant := map[int]float64{}
	perClientAlloc := map[int]float64{}
	for _, l := range c.prev {
		totalAlloc += l.alloc
		totalWant += l.want
		if d := l.want - l.alloc; d > 0 {
			deferred += d
		}
		if l.client >= 0 {
			perClientWant[l.client] += l.want
			perClientAlloc[l.client] += l.alloc
		}
	}

	if totalWant > 0 {
		c.demandNS += dt
		idle := float64(c.cfg.SMs) - totalAlloc
		if bubble := math.Min(idle, deferred); bubble > c.opts.BubbleSlackSMs {
			c.bubbleNS += dt
		}
	}

	for id := range c.accum {
		if !c.active[id] {
			continue // departed or not-yet-joined: no quota entitlement
		}
		want := perClientWant[id]
		if want <= 0 {
			continue
		}
		a := &c.accum[id]
		a.demandNS += dt
		a.expectedIn += math.Min(want, c.quotaSMs[id]) * dt
		a.attainedIn += perClientAlloc[id] * dt
	}
}

// verifySample checks the instantaneous conservation invariants on a fresh
// snapshot.
func (c *Checker) verifySample(at sim.Time, loads []sim.QueueLoad) {
	slack := c.opts.SMSlack
	total := 0.0
	perCtx := map[*sim.Context]float64{}
	for _, ql := range loads {
		if ql.Alloc < -slack {
			c.violate(Conservation, at, "queue %q holds a negative allocation %g", ql.Queue.Label(), ql.Alloc)
		}
		if ql.Running != nil && ql.Running.IsCompute() && ql.Alloc > ql.Demand+slack {
			c.violate(Conservation, at, "kernel %q on queue %q granted %.3f SMs above its demand %.3f",
				ql.Running.Name, ql.Queue.Label(), ql.Alloc, ql.Demand)
		}
		total += ql.Alloc
		perCtx[ql.Queue.Context()] += ql.Alloc
	}
	if cap := float64(c.cfg.SMs); total > cap+slack {
		c.violate(Conservation, at, "allocated %.3f SMs on a %d-SM device: busy+idle exceeds capacity", total, c.cfg.SMs)
	}
	for ctx, alloc := range perCtx {
		if ctx.SMLimit > 0 && alloc > float64(ctx.SMLimit)+slack {
			c.violate(Conservation, at, "context %q holds %.3f SMs above its SM-affinity limit %d",
				ctx.Label(), alloc, ctx.SMLimit)
		}
	}
}

// store copies the snapshot into the checker's own buffer (the device reuses
// the loads slice).
func (c *Checker) store(loads []sim.QueueLoad) {
	c.prev = c.prev[:0]
	for _, ql := range loads {
		ctx := ql.Queue.Context()
		client := -1
		if id, ok := ctx.Owner(); ok {
			client = id
		}
		c.prev = append(c.prev, sampleLoad{client: client, alloc: ql.Alloc, want: ql.Want})
	}
}

// Digest returns the fold of every event observed so far. Two runs of the
// same configuration must produce identical digests; any divergence is
// nondeterminism.
func (c *Checker) Digest() uint64 { return c.digest }

// Report finalizes the run-level Quota and Bubble verdicts and returns the
// complete assessment. Call after the simulation has drained; subsequent
// calls return the same report.
func (c *Checker) Report() *Report {
	if c.finished != nil {
		return c.finished
	}
	end := c.lastSample

	for i, cl := range c.clients {
		a := c.accum[i]
		cr := ClientReport{
			Client:         cl,
			DemandTime:     sim.Time(a.demandNS),
			ExpectedSMTime: a.expectedIn,
			AttainedSMTime: a.attainedIn,
			Share:          1,
			Active:         c.active[i],
			Submitted:      c.submitted[i],
			Completed:      c.completedReq[i],
			Failed:         c.failedReq[i],
		}
		if a.expectedIn > 0 {
			cr.Share = a.attainedIn / a.expectedIn
		}
		// Departed clients are exempt: the quota and delivery guarantees
		// cover the surviving set (their in-flight work was cancelled).
		if cr.Active {
			if done := cr.Completed + cr.Failed; done != cr.Submitted {
				c.violate(Delivery, end,
					"client %q submitted %d requests but %d completed (%d ok, %d failed): requests were lost or duplicated",
					cl.Name, cr.Submitted, done, cr.Completed, cr.Failed)
			}
		}
		if cr.Active && cr.DemandTime >= c.opts.MinDemandTime && cr.Share < 1-c.opts.QuotaTolerance {
			cr.Violated = true
			c.violate(Quota, end,
				"client %q attained %.1f%% of its demand-capped quota share (quota %.2f = %.1f SMs, demand time %v, tolerance %.0f%%)",
				cl.Name, cr.Share*100, cl.Quota, c.quotaSMs[i], cr.DemandTime, c.opts.QuotaTolerance*100)
		}
		c.finishedClients = append(c.finishedClients, cr)
	}

	rep := &Report{
		Violations:   c.violations,
		Observations: c.observations,
		Dropped:      c.dropped,
		Clients:      c.finishedClients,
		BubbleTime:   sim.Time(c.bubbleNS),
		DemandTime:   sim.Time(c.demandNS),
		Kernels:      c.kernels,
		Samples:      c.samples,
		Events:       c.events,
		Faults:       c.faultsSeen,
		Retries:      c.retriesSeen,
		Aborts:       c.abortsSeen,
		ChurnEvents:  c.churnEvents,
		Digest:       c.digest,
	}
	// Fault conservation: every injected kernel fault is answered by exactly
	// one retry or one terminal retry-abort — no fault vanishes on the retry
	// path and none is handled twice.
	if c.faultsSeen != c.retriesSeen+c.retryAborts {
		c.violate(Delivery, end,
			"%d kernel faults but %d retries + %d retry-aborts: the retry path lost or duplicated a fault",
			c.faultsSeen, c.retriesSeen, c.retryAborts)
	}
	if c.demandNS > 0 {
		rep.BubbleFraction = c.bubbleNS / c.demandNS
	}
	if rep.DemandTime >= c.opts.MinDemandTime && rep.BubbleFraction > c.opts.BubbleMaxFraction {
		c.violate(Bubble, end,
			"SMs idled under deferred demand for %.1f%% of the %v demand window (tolerance %.0f%%): the schedule leaves bubbles",
			rep.BubbleFraction*100, rep.DemandTime, c.opts.BubbleMaxFraction*100)
	}
	// The Quota/Bubble checks above may have appended; recapture the slices.
	rep.Violations = c.violations
	rep.Observations = c.observations
	c.finished = rep
	return rep
}
