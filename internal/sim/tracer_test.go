package sim

import "testing"

// countingTracer counts callbacks.
type countingTracer struct {
	starts, ends int
}

func (c *countingTracer) KernelStart(at Time, q *Queue, k *Kernel)            { c.starts++ }
func (c *countingTracer) KernelEnd(at Time, q *Queue, k *Kernel, avg float64) { c.ends++ }

// runOneKernel drives a single compute kernel to completion on gpu.
func runOneKernel(eng *Engine, gpu *GPU) {
	ctx, err := gpu.NewContext(ContextOptions{NoMemCharge: true})
	if err != nil {
		panic(err)
	}
	q := ctx.NewQueue("q")
	k := &Kernel{Name: "k", Kind: Compute, Work: 108 * Microsecond, SaturationSMs: 108}
	q.Enqueue(0, k, nil)
	eng.Run()
}

func TestAddTracerFanOut(t *testing.T) {
	eng := NewEngine()
	gpu := NewGPU(eng, DefaultConfig())
	a, b := &countingTracer{}, &countingTracer{}
	gpu.AddTracer(a)
	gpu.AddTracer(b)
	gpu.AddTracer(nil) // ignored
	runOneKernel(eng, gpu)
	if a.starts != 1 || a.ends != 1 || b.starts != 1 || b.ends != 1 {
		t.Fatalf("fan-out missed callbacks: a=%+v b=%+v", a, b)
	}
}

func TestRemoveTracer(t *testing.T) {
	eng := NewEngine()
	gpu := NewGPU(eng, DefaultConfig())
	a, b := &countingTracer{}, &countingTracer{}
	gpu.AddTracer(a)
	gpu.AddTracer(b)
	gpu.RemoveTracer(a)
	gpu.RemoveTracer(a) // absent: no-op
	runOneKernel(eng, gpu)
	if a.starts != 0 || b.starts != 1 {
		t.Fatalf("RemoveTracer failed: a=%+v b=%+v", a, b)
	}
}

func TestSetTracerShimReplacesAll(t *testing.T) {
	eng := NewEngine()
	gpu := NewGPU(eng, DefaultConfig())
	a, b := &countingTracer{}, &countingTracer{}
	gpu.AddTracer(a)
	gpu.SetTracer(b) // deprecated shim: replaces everything
	runOneKernel(eng, gpu)
	if a.starts != 0 || b.starts != 1 {
		t.Fatalf("SetTracer shim did not replace: a=%+v b=%+v", a, b)
	}
	gpu.SetTracer(nil)
	runOneKernel(eng, gpu)
	if b.starts != 1 {
		t.Fatalf("SetTracer(nil) did not detach: b=%+v", b)
	}
}

// kernelHotPath executes n kernels back to back through one queue; the
// per-kernel steady-state cost is what the tracing fan-out must not inflate.
func kernelHotPath(eng *Engine, q *Queue, k *Kernel, n int) {
	for i := 0; i < n; i++ {
		q.Enqueue(eng.Now(), k, nil)
		eng.Run()
	}
}

// TestNoTracerZeroExtraAllocs pins the acceptance requirement that tracing
// disabled adds zero allocations on the kernel hot path: the per-kernel
// allocation count with no tracers attached must not exceed the count of a
// device that never had tracer support exercised (the exec record and the
// completion event are the only per-kernel allocations either way).
func TestNoTracerZeroExtraAllocs(t *testing.T) {
	setup := func(attach bool) (*Engine, *Queue) {
		eng := NewEngine()
		gpu := NewGPU(eng, DefaultConfig())
		if attach {
			tr := &countingTracer{}
			gpu.AddTracer(tr)
			gpu.RemoveTracer(tr) // leave the device with zero tracers
		}
		ctx, err := gpu.NewContext(ContextOptions{NoMemCharge: true})
		if err != nil {
			t.Fatal(err)
		}
		return eng, ctx.NewQueue("q")
	}
	k := &Kernel{Name: "k", Kind: Compute, Work: 108 * Microsecond, SaturationSMs: 108}

	measure := func(attach bool) float64 {
		eng, q := setup(attach)
		kernelHotPath(eng, q, k, 8) // warm up
		return testing.AllocsPerRun(50, func() {
			kernelHotPath(eng, q, k, 1)
		})
	}
	base := measure(false)
	withSupport := measure(true)
	if withSupport > base {
		t.Fatalf("tracer support added allocations on the untraced hot path: %g > %g allocs/kernel", withSupport, base)
	}
}

// BenchmarkKernelHotPathUntraced and ...Traced guard the hot-path cost of the
// tracer fan-out: run with -benchmem and compare allocs/op.
func BenchmarkKernelHotPathUntraced(b *testing.B) {
	benchKernelHotPath(b, false)
}

func BenchmarkKernelHotPathTraced(b *testing.B) {
	benchKernelHotPath(b, true)
}

func benchKernelHotPath(b *testing.B, traced bool) {
	eng := NewEngine()
	gpu := NewGPU(eng, DefaultConfig())
	if traced {
		gpu.AddTracer(&countingTracer{})
	}
	ctx, err := gpu.NewContext(ContextOptions{NoMemCharge: true})
	if err != nil {
		b.Fatal(err)
	}
	q := ctx.NewQueue("q")
	k := &Kernel{Name: "k", Kind: Compute, Work: 108 * Microsecond, SaturationSMs: 108}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernelHotPath(eng, q, k, 1)
	}
}
