package sim

import (
	"fmt"
	"testing"
)

// BenchmarkReschedule measures the steady-state cost of the device's
// rate-recomputation hot path under a contended multi-queue load: four
// closed-loop queues (two unrestricted, two SM-restricted) keep the device
// saturated, every completion triggers a full reschedule, and every re-enqueue
// lands on a busy queue. One op is one kernel through enqueue, rate
// assignment and retirement. Run with -benchmem; scripts/bench_compare.sh
// gates allocs/op against the recorded baseline in BENCH_sim.json.
func BenchmarkReschedule(b *testing.B) {
	eng := NewEngine()
	g := NewGPU(eng, DefaultConfig())
	const nq = 4
	queues := make([]*Queue, nq)
	for i := 0; i < nq; i++ {
		limit := 0
		if i%2 == 1 {
			limit = 36 // mixed tiers: restricted contexts alongside unrestricted
		}
		ctx, err := g.NewContext(ContextOptions{
			SMLimit:     limit,
			NoMemCharge: true,
			Label:       fmt.Sprintf("c%d", i),
		})
		if err != nil {
			b.Fatal(err)
		}
		queues[i] = ctx.NewQueue(fmt.Sprintf("q%d", i))
	}
	k := &Kernel{
		Name:          "bench",
		Kind:          Compute,
		Work:          54 * Microsecond,
		SaturationSMs: 80,
		MemIntensity:  0.4,
	}

	remaining := b.N
	for _, q := range queues {
		q := q
		var relaunch func(at Time)
		relaunch = func(at Time) {
			if remaining > 0 {
				remaining--
				q.Enqueue(at, k, relaunch)
			}
		}
		// Prime each queue two deep so steady-state re-enqueues always hit a
		// busy queue (the common shape under closed-loop load).
		q.Enqueue(0, k, relaunch)
		q.Enqueue(0, k, relaunch)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for eng.Step() {
	}
}
