package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	e.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
	if e.Now() != 50 {
		t.Errorf("clock = %v, want 50", e.Now())
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break violated)", i, v, i)
		}
	}
}

func TestEnginePastEventsFireAtNow(t *testing.T) {
	e := NewEngine()
	e.Schedule(100, func() {
		e.Schedule(50, func() {
			if e.Now() != 100 {
				t.Errorf("past-scheduled event fired at %v, want clamped to 100", e.Now())
			}
		})
	})
	e.Run()
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if e.Now() != 0 {
		t.Errorf("clock advanced to %v by canceled event", e.Now())
	}
}

func TestEngineCancelFromCallback(t *testing.T) {
	e := NewEngine()
	fired := false
	var victim *Event
	e.Schedule(5, func() { victim.Cancel() })
	victim = e.Schedule(10, func() { fired = true })
	e.Run()
	if fired {
		t.Error("event canceled from an earlier callback still fired")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.After(1, recurse)
		}
	}
	e.After(1, recurse)
	e.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if e.Now() != 100 {
		t.Errorf("clock = %v, want 100", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=25, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Errorf("clock = %v after RunUntil(25), want 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Errorf("fired %d events total, want 4", len(fired))
	}
	if e.Now() != 100 {
		t.Errorf("clock = %v, want 100", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("ran %d events after Stop at 3, want 3", count)
	}
	e.Run()
	if count != 10 {
		t.Errorf("resumed run fired %d total, want 10", count)
	}
}

func TestEngineStepOnEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty engine reported an event")
	}
}

// Property: for any set of event timestamps, Run fires them in nondecreasing
// order and the clock ends at the maximum.
func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []int16) bool {
		e := NewEngine()
		var fired []Time
		var max Time
		for _, r := range raw {
			at := Time(r)
			if at < 0 {
				at = -at
			}
			if at > max {
				max = at
			}
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(raw) == 0 || e.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{3 * Microsecond, "3us"},
		{10200 * Microsecond, "10.2ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if ms := (1500 * Microsecond).Milliseconds(); ms != 1.5 {
		t.Errorf("Milliseconds = %g, want 1.5", ms)
	}
	if us := (2 * Millisecond).Microseconds(); us != 2000 {
		t.Errorf("Microseconds = %g, want 2000", us)
	}
}

func TestEventAt(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(42*Microsecond, func() {})
	if ev.At() != 42*Microsecond {
		t.Errorf("At() = %v, want 42us", ev.At())
	}
	var nilEv *Event
	nilEv.Cancel() // must not panic
}

func TestEnginePendingTimes(t *testing.T) {
	e := NewEngine()
	if got := e.PendingTimes(nil); len(got) != 0 {
		t.Fatalf("empty engine reported pending times %v", got)
	}
	e.Schedule(30, func() {})
	ev := e.Schedule(10, func() {})
	e.Schedule(20, func() {})
	e.Schedule(20, func() {})
	ev.Cancel()
	got := e.PendingTimes(nil)
	want := []Time{20, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Appends after a prefix without touching it, and the heap still runs.
	buf := e.PendingTimes([]Time{5})
	if buf[0] != 5 || len(buf) != 4 {
		t.Fatalf("prefix not preserved: %v", buf)
	}
	e.Run()
	if n := len(e.PendingTimes(nil)); n != 0 {
		t.Fatalf("%d pending times after drain", n)
	}
}
