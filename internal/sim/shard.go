package sim

import "sync"

// ShardSet is a group of engines advanced in lock-step windows: every shard
// runs its local events for the same virtual-time window [W, B) on its own
// goroutine, then all shards meet at a barrier with their clocks agreeing at
// exactly B. Shards must not share mutable state inside a window; anything
// that crosses shards belongs at the barrier, where the caller has exclusive
// single-threaded access to every engine.
//
// A ShardSet adds no semantics of its own — it is pure execution strategy.
// Callers that want a parallel run to be bit-identical to a one-shard run
// must put every cross-shard interaction behind a barrier with a canonical
// order (see internal/fleet for the exchange that does this).
type ShardSet struct {
	engines []*Engine

	// Persistent workers: one goroutine per extra shard, fed a deadline per
	// window. Shard 0 always runs on the caller's goroutine, so a one-shard
	// set degenerates to plain serial execution with zero synchronization.
	work []chan Time
	wg   sync.WaitGroup
}

// NewShardSet returns n engines, all at time zero. n must be >= 1.
func NewShardSet(n int) *ShardSet {
	if n < 1 {
		n = 1
	}
	s := &ShardSet{engines: make([]*Engine, n)}
	for i := range s.engines {
		s.engines[i] = NewEngine()
	}
	if n > 1 {
		s.work = make([]chan Time, n-1)
		for i := range s.work {
			ch := make(chan Time)
			s.work[i] = ch
			eng := s.engines[i+1]
			go func() {
				for deadline := range ch {
					if deadline == drainSentinel {
						eng.Run()
					} else {
						eng.RunBefore(deadline)
					}
					s.wg.Done()
				}
			}()
		}
	}
	return s
}

// drainSentinel makes a worker drain its engine completely (Run) instead of
// running a bounded window. No real window uses a negative deadline.
const drainSentinel = Time(-1)

// Len reports the shard count.
func (s *ShardSet) Len() int { return len(s.engines) }

// Shard returns shard i's engine.
func (s *ShardSet) Shard(i int) *Engine { return s.engines[i] }

// RunBefore advances every shard through the window ending at deadline:
// each engine fires its local events with timestamps strictly earlier than
// deadline (in parallel across shards) and ends with its clock at exactly
// deadline. Returns only after every shard has finished the window, so the
// caller observes a full barrier.
func (s *ShardSet) RunBefore(deadline Time) {
	s.dispatch(deadline)
}

// Run drains every shard completely in parallel — the final window, used
// once no cross-shard work can be generated anymore. Clocks end at each
// shard's own last event time.
func (s *ShardSet) Run() {
	s.dispatch(drainSentinel)
}

func (s *ShardSet) dispatch(deadline Time) {
	if len(s.engines) == 1 {
		if deadline == drainSentinel {
			s.engines[0].Run()
		} else {
			s.engines[0].RunBefore(deadline)
		}
		return
	}
	s.wg.Add(len(s.work))
	for _, ch := range s.work {
		ch <- deadline
	}
	if deadline == drainSentinel {
		s.engines[0].Run()
	} else {
		s.engines[0].RunBefore(deadline)
	}
	s.wg.Wait()
}

// PeekTime reports the earliest live event time across all shards; ok is
// false when every shard is drained. Only call at a barrier.
func (s *ShardSet) PeekTime() (Time, bool) {
	var min Time
	found := false
	for _, e := range s.engines {
		if at, ok := e.PeekTime(); ok && (!found || at < min) {
			min, found = at, true
		}
	}
	return min, found
}

// Now reports the maximum clock across shards — the set's notion of elapsed
// virtual time after a drain. At a barrier all clocks agree.
func (s *ShardSet) Now() Time {
	var max Time
	for _, e := range s.engines {
		if n := e.Now(); n > max {
			max = n
		}
	}
	return max
}

// Close stops the worker goroutines. The engines stay usable serially.
func (s *ShardSet) Close() {
	for _, ch := range s.work {
		close(ch)
	}
	s.work = nil
}
