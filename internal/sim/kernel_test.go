package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelValidate(t *testing.T) {
	cases := []struct {
		name string
		k    Kernel
		ok   bool
	}{
		{"valid compute", Kernel{Name: "k", Kind: Compute, Work: 1000, SaturationSMs: 10}, true},
		{"zero work", Kernel{Name: "k", Kind: Compute, Work: 0, SaturationSMs: 10}, false},
		{"negative work", Kernel{Name: "k", Kind: Compute, Work: -5, SaturationSMs: 10}, false},
		{"zero saturation", Kernel{Name: "k", Kind: Compute, Work: 100, SaturationSMs: 0}, false},
		{"valid h2d", Kernel{Name: "m", Kind: MemcpyH2D, Bytes: 4096}, true},
		{"zero bytes memcpy", Kernel{Name: "m", Kind: MemcpyD2H, Bytes: 0}, false},
		{"intensity too high", Kernel{Name: "k", Kind: Compute, Work: 100, SaturationSMs: 1, MemIntensity: 1.5}, false},
		{"intensity negative", Kernel{Name: "k", Kind: Compute, Work: 100, SaturationSMs: 1, MemIntensity: -0.1}, false},
		{"unknown kind", Kernel{Name: "k", Kind: KernelKind(99)}, false},
	}
	for _, c := range cases {
		err := c.k.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		}
	}
}

func TestIsolatedDurationScalesWithSMs(t *testing.T) {
	k := Kernel{Name: "k", Kind: Compute, Work: 108000, SaturationSMs: 108}
	if d := k.IsolatedDuration(108, 0); d != 1000 {
		t.Errorf("full GPU duration = %v, want 1000ns", d)
	}
	if d := k.IsolatedDuration(54, 0); d != 2000 {
		t.Errorf("half GPU duration = %v, want 2000ns", d)
	}
	if d := k.IsolatedDuration(1, 0); d != 108000 {
		t.Errorf("1 SM duration = %v, want 108000ns", d)
	}
}

func TestIsolatedDurationSaturates(t *testing.T) {
	k := Kernel{Name: "k", Kind: Compute, Work: 10000, SaturationSMs: 10}
	at10 := k.IsolatedDuration(10, 0)
	at108 := k.IsolatedDuration(108, 0)
	if at10 != at108 {
		t.Errorf("duration beyond saturation changed: %v at 10 SMs vs %v at 108", at10, at108)
	}
	if at10 != 1000 {
		t.Errorf("saturated duration = %v, want 1000ns", at10)
	}
}

func TestIsolatedDurationMemcpy(t *testing.T) {
	k := Kernel{Name: "m", Kind: MemcpyH2D, Bytes: 25000}
	if d := k.IsolatedDuration(0, 25.0); d != 1000 {
		t.Errorf("25000B at 25B/ns = %v, want 1000ns", d)
	}
}

func TestIsolatedDurationClampsSMs(t *testing.T) {
	k := Kernel{Name: "k", Kind: Compute, Work: 100, SaturationSMs: 4}
	if d := k.IsolatedDuration(0, 0); d != k.IsolatedDuration(1, 0) {
		t.Errorf("sms=0 clamped duration = %v, want %v", d, k.IsolatedDuration(1, 0))
	}
}

func TestSMDemand(t *testing.T) {
	k := Kernel{Kind: Compute, Work: 100, SaturationSMs: 50}
	if got := k.SMDemand(0, 108); got != 50 {
		t.Errorf("unrestricted demand = %d, want 50 (saturation)", got)
	}
	if got := k.SMDemand(30, 108); got != 30 {
		t.Errorf("limited demand = %d, want 30 (context cap)", got)
	}
	big := Kernel{Kind: Compute, Work: 100, SaturationSMs: 500}
	if got := big.SMDemand(0, 108); got != 108 {
		t.Errorf("oversaturated demand = %d, want 108 (device cap)", got)
	}
}

// Property: isolated duration is nonincreasing in the SM count and never
// below Work/SaturationSMs.
func TestIsolatedDurationMonotoneProperty(t *testing.T) {
	f := func(work uint32, sat, a, b uint8) bool {
		k := Kernel{
			Kind:          Compute,
			Work:          Time(work%1_000_000 + 1),
			SaturationSMs: int(sat%108) + 1,
		}
		s1, s2 := int(a%108)+1, int(b%108)+1
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		d1 := k.IsolatedDuration(s1, 0) // fewer SMs
		d2 := k.IsolatedDuration(s2, 0) // more SMs
		if d2 > d1 {
			return false // more SMs must not be slower
		}
		floor := k.IsolatedDuration(k.SaturationSMs, 0)
		return d2 >= floor
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKernelKindString(t *testing.T) {
	if Compute.String() != "compute" || MemcpyH2D.String() != "h2d" || MemcpyD2H.String() != "d2h" {
		t.Error("kind mnemonics wrong")
	}
	if KernelKind(42).String() != "KernelKind(42)" {
		t.Error("unknown kind fallback wrong")
	}
}
