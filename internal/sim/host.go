package sim

// Host models one host-side thread of control (a scheduler process). Kernel
// launches, scheduling computation and synchronization all consume host time
// serially: a launch issued while the host is busy queues behind the earlier
// work, exactly like a CPU thread calling into the CUDA runtime. The paper's
// overhead analysis (§6.9) — 3us per kernel launch, 20us squad sync, 50us MPS
// context redirection, 6.7us of scheduler work per kernel — is reproduced by
// charging those costs here in virtual time.
//
// The host clock may run ahead of the engine clock while a burst of work is
// being issued; launched kernels arrive at their device queues at the host
// timestamp of the launch.
type Host struct {
	gpu  *GPU
	free Time // host thread is busy until this instant

	acct HostOverhead
}

// HostOverhead is the host thread's time accounting by §6.9 category: how
// much host time was charged for kernel launches, squad-boundary syncs and
// scheduler computation, with the corresponding operation counts. It is the
// measured side against which decision-level overhead accounting (counts x
// unit costs) is verified.
type HostOverhead struct {
	// LaunchTime is total kernel-launch time charged (Launches x
	// Config.KernelLaunch).
	LaunchTime Time
	// SyncTime is total squad-boundary synchronization time charged.
	SyncTime Time
	// SpendTime is total scheduler computation charged through Spend.
	SpendTime Time
	// Launches and Syncs count the charged operations.
	Launches, Syncs int64
}

// Total sums the charged host time across categories.
func (o HostOverhead) Total() Time { return o.LaunchTime + o.SyncTime + o.SpendTime }

// Overhead returns the host time accounting accumulated so far.
func (h *Host) Overhead() HostOverhead { return h.acct }

// NewHost creates a host thread bound to the device.
func NewHost(gpu *GPU) *Host {
	return &Host{gpu: gpu}
}

// GPU returns the device this host drives.
func (h *Host) GPU() *GPU { return h.gpu }

// Now returns the instant at which the host thread is next free: the later of
// the engine clock and the end of already-issued host work.
func (h *Host) Now() Time {
	if n := h.gpu.eng.Now(); n > h.free {
		return n
	}
	return h.free
}

// Spend charges d nanoseconds of host computation (e.g. scheduler work).
func (h *Host) Spend(d Time) {
	h.free = h.Now() + d
	h.acct.SpendTime += d
}

// Launch charges one kernel-launch latency and enqueues k so that it reaches
// q at the end of the launch. onDone fires at kernel completion (may be nil).
func (h *Host) Launch(q *Queue, k *Kernel, onDone func(at Time)) {
	start := h.Now()
	h.free = start + h.gpu.cfg.KernelLaunch
	h.acct.LaunchTime += h.gpu.cfg.KernelLaunch
	h.acct.Launches++
	q.Enqueue(h.free, k, onDone)
}

// LaunchAt is Launch but the kernel additionally may not arrive at the queue
// before notBefore — used to model per-client context-redirection vacuums
// that delay one client's kernels without blocking the host or other queues.
func (h *Host) LaunchAt(q *Queue, k *Kernel, notBefore Time, onDone func(at Time)) {
	start := h.Now()
	h.free = start + h.gpu.cfg.KernelLaunch
	h.acct.LaunchTime += h.gpu.cfg.KernelLaunch
	h.acct.Launches++
	at := h.free
	if notBefore > at {
		at = notBefore
	}
	q.Enqueue(at, k, onDone)
}

// Sync charges one squad-boundary synchronization cost (§6.9).
func (h *Host) Sync() {
	h.free = h.Now() + h.gpu.cfg.SquadSync
	h.acct.SyncTime += h.gpu.cfg.SquadSync
	h.acct.Syncs++
}
