package sim

import (
	"math"
	"testing"
)

// TestWaterFill pins down the max-min fairness distribution the SM allocator
// is built on: demands at or below the fair share are fully satisfied, the
// remainder splits equally, and no capacity is invented or lost.
func TestWaterFill(t *testing.T) {
	cases := []struct {
		name     string
		demands  []float64
		capacity float64
		want     []float64
	}{
		{
			name:     "zero capacity",
			demands:  []float64{10, 20, 30},
			capacity: 0,
			want:     []float64{0, 0, 0},
		},
		{
			name:     "negative capacity grants nothing",
			demands:  []float64{5, 5},
			capacity: -1,
			want:     []float64{0, 0},
		},
		{
			name:     "no demands",
			demands:  nil,
			capacity: 108,
			want:     nil,
		},
		{
			name:     "single demand below capacity",
			demands:  []float64{40},
			capacity: 108,
			want:     []float64{40},
		},
		{
			name:     "single saturated demand",
			demands:  []float64{200},
			capacity: 108,
			want:     []float64{108},
		},
		{
			name:     "all demands fit",
			demands:  []float64{10, 20, 30},
			capacity: 108,
			want:     []float64{10, 20, 30},
		},
		{
			name:     "equal-demand tie splits equally",
			demands:  []float64{100, 100, 100},
			capacity: 108,
			want:     []float64{36, 36, 36},
		},
		{
			name:     "small demand satisfied, rest split remainder",
			demands:  []float64{8, 100, 100},
			capacity: 108,
			want:     []float64{8, 50, 50},
		},
		{
			name:     "zero demand entry",
			demands:  []float64{0, 60, 60},
			capacity: 100,
			want:     []float64{0, 50, 50},
		},
		{
			name:     "multi-round fill",
			demands:  []float64{10, 30, 200, 200},
			capacity: 120,
			want:     []float64{10, 30, 40, 40},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := waterFill(tc.demands, tc.capacity)
			if len(got) != len(tc.want) {
				t.Fatalf("waterFill(%v, %g) = %v, want %v", tc.demands, tc.capacity, got, tc.want)
			}
			for i := range got {
				if math.Abs(got[i]-tc.want[i]) > 1e-9 {
					t.Errorf("waterFill(%v, %g)[%d] = %g, want %g", tc.demands, tc.capacity, i, got[i], tc.want[i])
				}
			}
			// Conservation: grants sum to min(capacity, sum(demands)) and no
			// grant exceeds its demand.
			var sumD, sumG float64
			for i := range got {
				sumD += tc.demands[i]
				sumG += got[i]
				if got[i] > tc.demands[i]+1e-9 {
					t.Errorf("grant %d (%g) exceeds demand %g", i, got[i], tc.demands[i])
				}
				if got[i] < 0 {
					t.Errorf("negative grant %d: %g", i, got[i])
				}
			}
			wantSum := sumD
			if tc.capacity < wantSum {
				wantSum = tc.capacity
			}
			if wantSum < 0 {
				wantSum = 0
			}
			if math.Abs(sumG-wantSum) > 1e-9 {
				t.Errorf("grants sum to %g, want min(capacity, sum demands) = %g", sumG, wantSum)
			}
		})
	}
}

// TestWaterFillConservationRandomized sweeps structured demand grids and
// checks the conservation property holds everywhere (distributed rate is
// neither created nor destroyed).
func TestWaterFillConservationRandomized(t *testing.T) {
	// Deterministic pseudo-random demands (splitmix64), no global rand state.
	x := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z%10000) / 50.0 // [0, 200)
	}
	for n := 1; n <= 8; n++ {
		for trial := 0; trial < 50; trial++ {
			demands := make([]float64, n)
			var sumD float64
			for i := range demands {
				demands[i] = next()
				sumD += demands[i]
			}
			capacity := next()
			got := waterFill(demands, capacity)
			var sumG float64
			for i := range got {
				sumG += got[i]
				if got[i] > demands[i]+1e-9 || got[i] < 0 {
					t.Fatalf("n=%d trial=%d: grant %g outside [0, demand %g]", n, trial, got[i], demands[i])
				}
			}
			wantSum := math.Min(capacity, sumD)
			if wantSum < 0 {
				wantSum = 0
			}
			if math.Abs(sumG-wantSum) > 1e-6 {
				t.Fatalf("n=%d trial=%d: grants sum %g, want %g (demands %v, capacity %g)",
					n, trial, sumG, wantSum, demands, capacity)
			}
		}
	}
}
