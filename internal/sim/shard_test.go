package sim

import (
	"sync/atomic"
	"testing"
)

// TestRunBeforeWindowSemantics pins the window primitive: strictly-before
// firing, clock landing exactly on the deadline, queued events surviving.
func TestRunBeforeWindowSemantics(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunBefore(15)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 10 {
		t.Fatalf("RunBefore(15) fired %v, want [5 10]", fired)
	}
	if e.Now() != 15 {
		t.Fatalf("clock at %v after RunBefore(15), want 15", e.Now())
	}
	// The event at exactly the deadline fires in the next window.
	e.RunBefore(16)
	if len(fired) != 3 || fired[2] != 15 {
		t.Fatalf("second window fired %v, want the deadline event", fired)
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("drain fired %v", fired)
	}
}

// TestRunBeforeSchedulesWithinWindow: events scheduled by callbacks inside
// the window still fire if they land before the deadline.
func TestRunBeforeSchedulesWithinWindow(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(1, func() {
		n++
		e.Schedule(2, func() { n++ })
		e.Schedule(9, func() { n++ }) // at deadline: next window
	})
	e.RunBefore(9)
	if n != 2 {
		t.Fatalf("fired %d events in window, want 2", n)
	}
	if at, ok := e.PeekTime(); !ok || at != 9 {
		t.Fatalf("PeekTime = %v,%v, want 9,true", at, ok)
	}
}

// TestPeekTimeSkipsCanceled: canceled heads are discarded, not reported.
func TestPeekTimeSkipsCanceled(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(3, func() {})
	e.Schedule(7, func() {})
	ev.Cancel()
	if at, ok := e.PeekTime(); !ok || at != 7 {
		t.Fatalf("PeekTime = %v,%v, want 7,true", at, ok)
	}
	e.Run()
	if _, ok := e.PeekTime(); ok {
		t.Fatal("PeekTime reports events on a drained engine")
	}
}

// TestShardSetLockStep: shards advance through identical windows and agree
// on the clock at every barrier; per-shard event streams are undisturbed.
func TestShardSetLockStep(t *testing.T) {
	s := NewShardSet(4)
	defer s.Close()
	var counts [4]int64
	for i := 0; i < s.Len(); i++ {
		i := i
		eng := s.Shard(i)
		var tick func()
		next := Time(i + 1)
		tick = func() {
			atomic.AddInt64(&counts[i], 1)
			next += Time(i + 1)
			if next <= 100 {
				eng.Schedule(next, tick)
			}
		}
		eng.Schedule(next, tick)
	}
	for w := Time(10); w <= 110; w += 10 {
		s.RunBefore(w)
		for i := 0; i < s.Len(); i++ {
			if got := s.Shard(i).Now(); got != w {
				t.Fatalf("shard %d clock %v at barrier %v", i, got, w)
			}
		}
	}
	for i, want := range []int64{100, 50, 33, 25} {
		if counts[i] != want {
			t.Fatalf("shard %d fired %d events, want %d", i, counts[i], want)
		}
	}
}

// TestShardSetMatchesSerial: the same workload split over 1 and 3 shards
// produces identical per-stream firing orders — the execution-strategy-only
// guarantee the fleet's digest identity builds on.
func TestShardSetMatchesSerial(t *testing.T) {
	run := func(shards int) [3][]Time {
		s := NewShardSet(shards)
		defer s.Close()
		var got [3][]Time
		for d := 0; d < 3; d++ {
			d := d
			eng := s.Shard(d % shards)
			step := Time(3 + d)
			var at Time
			var tick func()
			tick = func() {
				got[d] = append(got[d], eng.Now())
				at += step
				if at < 60 {
					eng.Schedule(at, tick)
				}
			}
			at = step
			eng.Schedule(at, tick)
		}
		for w := Time(20); w <= 80; w += 20 {
			s.RunBefore(w)
		}
		s.Run()
		return got
	}
	a, b := run(1), run(3)
	for d := 0; d < 3; d++ {
		if len(a[d]) != len(b[d]) {
			t.Fatalf("stream %d length differs: %d vs %d", d, len(a[d]), len(b[d]))
		}
		for i := range a[d] {
			if a[d][i] != b[d][i] {
				t.Fatalf("stream %d diverges at %d: %v vs %v", d, i, a[d][i], b[d][i])
			}
		}
	}
}

// TestShardSetDrain: Run drains all shards in parallel.
func TestShardSetDrain(t *testing.T) {
	s := NewShardSet(2)
	defer s.Close()
	var n int64
	for i := 0; i < s.Len(); i++ {
		eng := s.Shard(i)
		for at := Time(1); at <= 5; at++ {
			eng.Schedule(at, func() { atomic.AddInt64(&n, 1) })
		}
	}
	s.Run()
	if n != 10 {
		t.Fatalf("drained %d events, want 10", n)
	}
	if _, ok := s.PeekTime(); ok {
		t.Fatal("events left after Run")
	}
}
